(* Workload generators shared by the report tables and the Bechamel
   benches (DESIGN.md experiments index). *)

module C = Csrtl_core

(* An N-stage adder chain over two registers: the size-sweep workload
   of experiment C3.  Sequential (handshake-executable) and
   conflict-free by construction. *)
let chain n =
  let b =
    C.Builder.create ~name:(Printf.sprintf "chain%d" n) ~cs_max:((2 * n) + 1)
      ()
  in
  C.Builder.reg b ~init:(C.Word.nat 1) "R0";
  C.Builder.reg b ~init:(C.Word.nat 2) "R1";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add ] "ADD";
  for i = 0 to n - 1 do
    let read = (2 * i) + 1 in
    C.Builder.binary b ~fu:"ADD"
      ~a:(C.Transfer.From_reg "R0", "BA")
      ~b:(C.Transfer.From_reg "R1", "BB")
      ~read ~write:(read + 1, "BA")
      ~dst:(C.Transfer.To_reg (if i mod 2 = 0 then "R1" else "R0"))
  done;
  C.Builder.finish b

(* A wide model: [w] independent adder lanes running in parallel over
   [n] steps; stresses per-cycle activity instead of schedule
   length. *)
let parallel_lanes ~lanes ~steps =
  let b =
    C.Builder.create
      ~name:(Printf.sprintf "lanes%dx%d" lanes steps)
      ~cs_max:((2 * steps) + 1)
      ()
  in
  for l = 0 to lanes - 1 do
    C.Builder.reg b ~init:(C.Word.nat (l + 1)) (Printf.sprintf "A%d" l);
    C.Builder.reg b ~init:(C.Word.nat (l + 2)) (Printf.sprintf "B%d" l);
    C.Builder.buses b [ Printf.sprintf "BA%d" l; Printf.sprintf "BB%d" l ];
    C.Builder.unit_ b ~ops:[ C.Ops.Add ] (Printf.sprintf "ADD%d" l)
  done;
  for i = 0 to steps - 1 do
    let read = (2 * i) + 1 in
    for l = 0 to lanes - 1 do
      C.Builder.binary b
        ~fu:(Printf.sprintf "ADD%d" l)
        ~a:(C.Transfer.From_reg (Printf.sprintf "A%d" l), Printf.sprintf "BA%d" l)
        ~b:(C.Transfer.From_reg (Printf.sprintf "B%d" l), Printf.sprintf "BB%d" l)
        ~read
        ~write:(read + 1, Printf.sprintf "BA%d" l)
        ~dst:
          (C.Transfer.To_reg
             (Printf.sprintf (if i mod 2 = 0 then "B%d" else "A%d") l))
    done
  done;
  C.Builder.finish b

(* The controller alone: the pure cost of the six-phase discipline. *)
let controller_only cs_max =
  let b = C.Builder.create ~name:"ctrl" ~cs_max () in
  C.Builder.reg b ~init:(C.Word.nat 0) "R0";
  C.Builder.finish b

let time_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (r, (t1 -. t0) *. 1e6)

(* median-of-3 wall-clock microseconds *)
let wall_us f =
  let xs = List.init 3 (fun _ -> snd (time_it f)) in
  match List.sort compare xs with
  | [ _; m; _ ] -> m
  | _ -> assert false
