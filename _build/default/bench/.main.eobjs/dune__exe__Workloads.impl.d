bench/workloads.ml: Csrtl_core List Printf Unix
