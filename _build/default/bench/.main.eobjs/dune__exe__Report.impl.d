bench/report.ml: Array Csrtl_clocked Csrtl_core Csrtl_handshake Csrtl_hls Csrtl_iks Csrtl_kernel Csrtl_verify Csrtl_vhdl Format List Printf String Workloads
