bench/main.mli:
