let iterations = 20

let pi = Fixed.of_float (4.0 *. atan 1.0)

let atan_table =
  Array.init iterations (fun i ->
      Fixed.of_float (atan (ldexp 1.0 (-i))))

let gain =
  let k = ref 1.0 in
  for i = 0 to iterations - 1 do
    k := !k *. sqrt (1.0 +. ldexp 1.0 (-2 * i))
  done;
  Fixed.of_float !k

let inv_gain = Fixed.div Fixed.one gain

let vector ~x ~y =
  let x = ref x and y = ref y and z = ref Fixed.zero in
  for i = 0 to iterations - 1 do
    let dx = Fixed.asr_ !y i in
    let dy = Fixed.asr_ !x i in
    if Fixed.is_neg !y then begin
      (* rotate counter-clockwise *)
      x := Fixed.sub !x dx;
      y := Fixed.add !y dy;
      z := Fixed.sub !z atan_table.(i)
    end
    else begin
      x := Fixed.add !x dx;
      y := Fixed.sub !y dy;
      z := Fixed.add !z atan_table.(i)
    end
  done;
  (!x, !z)

let rotate ~x ~y ~angle =
  let x = ref x and y = ref y and z = ref angle in
  for i = 0 to iterations - 1 do
    let dx = Fixed.asr_ !y i in
    let dy = Fixed.asr_ !x i in
    if Fixed.is_neg !z then begin
      x := Fixed.add !x dx;
      y := Fixed.sub !y dy;
      z := Fixed.add !z atan_table.(i)
    end
    else begin
      x := Fixed.sub !x dx;
      y := Fixed.add !y dy;
      z := Fixed.sub !z atan_table.(i)
    end
  done;
  (!x, !y)

let atan2 ~y ~x =
  if Fixed.signed x = 0 && Fixed.signed y = 0 then Fixed.zero
  else if Fixed.is_neg x then begin
    (* pre-rotate by pi: atan2 y x = atan2 (-y) (-x) +- pi *)
    let _, a = vector ~x:(Fixed.neg x) ~y:(Fixed.neg y) in
    if Fixed.is_neg y then Fixed.sub a pi else Fixed.add a pi
  end
  else
    let _, a = vector ~x ~y in
    a

let magnitude ~x ~y =
  let x = Fixed.abs_ x in
  let m, _ = vector ~x ~y in
  Fixed.mul m inv_gain

let range_bits = 8

let divide ~y ~x =
  (* Linear vectoring: drive y to 0 by adding/subtracting x shifted;
     the quotient accumulates the matching powers of two.  Iterations
     start at -range_bits to cover quotients up to 2^range_bits. *)
  let y = ref y and q = ref Fixed.zero in
  for i = -range_bits to iterations - 1 do
    let dx = if i >= 0 then Fixed.asr_ x i else Fixed.shl x (-i) in
    let dq =
      if i >= 0 then Fixed.asr_ Fixed.one i else Fixed.shl Fixed.one (-i)
    in
    if Fixed.is_neg !y then begin
      y := Fixed.add !y dx;
      q := Fixed.sub !q dq
    end
    else begin
      y := Fixed.sub !y dx;
      q := Fixed.add !q dq
    end
  done;
  (* the loop overshoots by up to one last step; recenter *)
  if Fixed.is_neg !y then Fixed.sub !q (Fixed.asr_ Fixed.one (iterations - 1))
  else !q

let newton_iterations = 6

let sqrt_ v =
  if Fixed.signed v <= 0 then Fixed.zero
  else begin
    (* seed: 2^(floor(log2 v)/2) in fixed point, then Newton *)
    let s = Fixed.signed v in
    let msb =
      let rec go i = if s lsr i = 0 then i - 1 else go (i + 1) in
      go 0
    in
    (* v ~ 2^(msb-16) in real terms; sqrt ~ 2^((msb-16)/2) *)
    let e = (msb - Fixed.frac_bits) / 2 in
    let x0 =
      if e >= 0 then Fixed.shl Fixed.one e else Fixed.asr_ Fixed.one (-e)
    in
    let x = ref x0 in
    for _ = 1 to newton_iterations do
      x := Fixed.asr_ (Fixed.add !x (divide ~y:v ~x:!x)) 1
    done;
    !x
  end
