(** Microcode-to-transfers translation.

    "We have extracted the register transfers from the microcode ...
    This could be easily automated.  We have written a C program,
    that translates the microcode tables given in [10] to transfer
    process instances" (paper §3).  This module is that translator:
    each microinstruction at address [n] becomes tuples reading at
    control step [n] and writing at [n + unit latency]; operands
    routed over a direct link get a dedicated bus (named by
    {!Datapath.direct_operand_bus}), exactly the paper's modeling of
    direct links as extra resources. *)

val to_model :
  ?inputs:(string * Csrtl_core.Word.t) list ->
  ?reg_init:(Datapath.loc * Csrtl_core.Word.t) list ->
  Microcode.program -> Csrtl_core.Model.t
(** Runs {!Microcode.check}, builds the Fig. 3 datapath, adds the
    direct-link buses the program uses, and emits one transfer tuple
    per issue.  The result is validated. *)

val tuples_of_instr : Microcode.instr -> Csrtl_core.Transfer.t list
(** The tuples a single word contributes — the paper's table-row to
    tuple mapping, usable without building a whole model. *)

val run :
  ?inputs:(string * Csrtl_core.Word.t) list ->
  ?reg_init:(Datapath.loc * Csrtl_core.Word.t) list ->
  Microcode.program -> Csrtl_core.Observation.t
(** Translate and execute with the reference interpreter. *)

val final_loc :
  Csrtl_core.Observation.t -> Datapath.loc -> Csrtl_core.Word.t
(** Final register-file/register content after the run. *)
