module C = Csrtl_core

type t = {
  mutable next_addr : int;
  mutable rev_instrs : Microcode.instr list;
  values : (Datapath.loc, Fixed.t) Hashtbl.t;
  mutable free_regs : Datapath.loc list;
  mutable consts : (Fixed.t * Datapath.loc) list;
  mutable next_const : int;
  inputs : (string * Fixed.t) list;
}

exception Out_of_registers
exception Out_of_constants

let create ?(inputs = []) () =
  { next_addr = 1; rev_instrs = []; values = Hashtbl.create 64;
    free_regs = List.init 16 (fun i -> Datapath.R i);
    consts = []; next_const = 0; inputs }

let value t (loc : Datapath.loc) =
  match loc with
  | Datapath.In name ->
    (* tracking is best-effort: generators of data-independent
       programs (e.g. the workspace check) reference input ports
       without supplying values *)
    Option.value ~default:Fixed.zero (List.assoc_opt name t.inputs)
  | _ ->
    (match Hashtbl.find_opt t.values loc with
     | Some v -> v
     | None -> Fixed.zero)

let const t v =
  match List.assoc_opt v t.consts with
  | Some loc -> loc
  | None ->
    if t.next_const >= 32 then raise Out_of_constants;
    let loc = Datapath.M t.next_const in
    t.next_const <- t.next_const + 1;
    t.consts <- (v, loc) :: t.consts;
    Hashtbl.replace t.values loc v;
    loc

let alloc t =
  match t.free_regs with
  | [] -> raise Out_of_registers
  | loc :: rest ->
    t.free_regs <- rest;
    loc

let free t loc = t.free_regs <- loc :: t.free_regs

(* A result written at step [addr + latency] is latched at that
   step's [cr] and readable from the following step on, so sequential
   issues are spaced by latency + 1. *)
let emit t (issues : Microcode.issue list) latency =
  t.rev_instrs <- { Microcode.addr = t.next_addr; issues } :: t.rev_instrs;
  t.next_addr <- t.next_addr + latency + 1

let track t dst op args =
  Hashtbl.replace t.values dst (C.Ops.eval op args)

let op2 t ?dst unit_ op a b =
  let dst = match dst with Some d -> d | None -> alloc t in
  let va = value t a and vb = value t b in
  emit t
    [ Microcode.issue
        ~a:(Microcode.reg ~route:Microcode.Bus_a a)
        ~b:(Microcode.reg ~route:Microcode.Bus_b b)
        ~dst ~wb:Microcode.Bus_a ~op unit_ ]
    (Datapath.unit_latency unit_);
  track t dst op [| va; vb |];
  dst

let op1 t ?dst unit_ op a =
  let dst = match dst with Some d -> d | None -> alloc t in
  let va = value t a in
  emit t
    [ Microcode.issue
        ~a:(Microcode.reg ~route:Microcode.Bus_a a)
        ~dst ~wb:Microcode.Bus_b ~op unit_ ]
    (Datapath.unit_latency unit_);
  track t dst op [| va |];
  dst

let op0 t ?dst unit_ op =
  let dst = match dst with Some d -> d | None -> alloc t in
  emit t
    [ Microcode.issue ~dst ~wb:Microcode.Bus_a ~op unit_ ]
    (Datapath.unit_latency unit_);
  track t dst op [||];
  dst

let mov t ~src ~dst =
  ignore (op1 t ~dst Datapath.COPY C.Ops.Pass src)

let words t = List.length t.rev_instrs

let finish t ~name =
  let program =
    { Microcode.pname = name; instrs = List.rev t.rev_instrs }
  in
  Microcode.check program;
  let inputs = List.map (fun (n, v) -> (n, (v : Fixed.t))) t.inputs in
  let reg_init = List.map (fun (v, loc) -> (loc, (v : Fixed.t))) t.consts in
  (program, inputs, reg_init)
