module C = Csrtl_core

type loc =
  | P | Z | Y | X | F
  | R of int
  | J of int
  | M of int
  | In of string

type unit_sel = MULT | ZADD | YADD | XADD | COPY | FLAG

let loc_name = function
  | P -> "P"
  | Z -> "Z"
  | Y -> "Y"
  | X -> "X"
  | F -> "F"
  | R i -> Printf.sprintf "R%d" i
  | J i -> Printf.sprintf "J%d" i
  | M i -> Printf.sprintf "M%d" i
  | In s -> s

let unit_name = function
  | MULT -> "MULT"
  | ZADD -> "ZADD"
  | YADD -> "YADD"
  | XADD -> "XADD"
  | COPY -> "COPY"
  | FLAG -> "FLAG"

let unit_latency = function
  | MULT -> 2
  | ZADD | YADD | XADD | COPY | FLAG -> 1

let shift_ops =
  List.concat
    (List.init (Cordic.range_bits + 1) (fun i ->
         if i = 0 then []
         else [ C.Ops.Shli i ]))
  @ List.init Cordic.iterations (fun i -> C.Ops.Asri i)

let adder_ops =
  [ C.Ops.Add; C.Ops.Sub; C.Ops.Pass; C.Ops.Neg; C.Ops.Abs; C.Ops.Const 0;
    C.Ops.Lts; C.Ops.Band ]
  @ shift_ops

let unit_ops = function
  | MULT -> [ C.Ops.Mul; C.Ops.Mulfx Fixed.frac_bits ]
  | ZADD | YADD | XADD -> adder_ops
  | COPY -> [ C.Ops.Pass ]
  | FLAG -> [ C.Ops.Const 0; C.Ops.Const 1 ]

let bus_a = "BusA"
let bus_b = "BusB"

let all_register_locs =
  [ P; Z; Y; X; F ]
  @ List.init 16 (fun i -> R i)
  @ List.init 6 (fun i -> J i)
  @ List.init 32 (fun i -> M i)

let base_builder ?(inputs = []) ?(reg_init = []) ~name ~cs_max () =
  let b = C.Builder.create ~name ~cs_max () in
  List.iter
    (fun loc ->
      let init = List.assoc_opt loc reg_init in
      C.Builder.reg b ?init (loc_name loc))
    all_register_locs;
  List.iter
    (fun (port, v) -> C.Builder.input b ~value:v port)
    inputs;
  C.Builder.buses b [ bus_a; bus_b ];
  List.iter
    (fun u ->
      C.Builder.unit_ b ~latency:(unit_latency u) ~ops:(unit_ops u)
        (unit_name u))
    [ MULT; ZADD; YADD; XADD; COPY; FLAG ];
  b

let direct_operand_bus ~src u ~port =
  Printf.sprintf "%s_to_%s%d" (loc_name src) (unit_name u) port

let direct_result_bus u ~dst =
  Printf.sprintf "%s_to_%s" (unit_name u) (loc_name dst)
