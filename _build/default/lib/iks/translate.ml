module C = Csrtl_core

let source_of (loc : Datapath.loc) =
  match loc with
  | Datapath.In s -> C.Transfer.From_input s
  | Datapath.P | Datapath.Z | Datapath.Y | Datapath.X | Datapath.F
  | Datapath.R _ | Datapath.J _ | Datapath.M _ ->
    C.Transfer.From_reg (Datapath.loc_name loc)

let dest_of (loc : Datapath.loc) =
  match loc with
  | Datapath.In s ->
    invalid_arg ("Translate: input port " ^ s ^ " as destination")
  | Datapath.P | Datapath.Z | Datapath.Y | Datapath.X | Datapath.F
  | Datapath.R _ | Datapath.J _ | Datapath.M _ ->
    C.Transfer.To_reg (Datapath.loc_name loc)

let operand_bus (is : Microcode.issue) port (o : Microcode.operand) =
  match o.route with
  | Microcode.Bus_a -> Datapath.bus_a
  | Microcode.Bus_b -> Datapath.bus_b
  | Microcode.Direct ->
    Datapath.direct_operand_bus ~src:o.src is.unit_ ~port

let result_bus (is : Microcode.issue) dst =
  match is.wb with
  | Microcode.Bus_a -> Datapath.bus_a
  | Microcode.Bus_b -> Datapath.bus_b
  | Microcode.Direct -> Datapath.direct_result_bus is.unit_ ~dst

let tuple_of_issue addr (is : Microcode.issue) =
  let src_a, bus_a =
    match is.a with
    | None -> (None, None)
    | Some o -> (Some (source_of o.src), Some (operand_bus is 1 o))
  in
  let src_b, bus_b =
    match is.b with
    | None -> (None, None)
    | Some o -> (Some (source_of o.src), Some (operand_bus is 2 o))
  in
  let write_step = addr + Datapath.unit_latency is.unit_ in
  let write_bus, dst =
    match is.dst with
    | None -> (None, None)
    | Some d -> (Some (result_bus is d), Some (dest_of d))
  in
  { C.Transfer.src_a; bus_a; src_b; bus_b;
    read_step = Some addr;
    fu = Datapath.unit_name is.unit_;
    op = Some is.op;
    write_step = (if is.dst = None then None else Some write_step);
    write_bus; dst }

let tuples_of_instr (ins : Microcode.instr) =
  List.map (tuple_of_issue ins.addr) ins.issues

let direct_buses (p : Microcode.program) =
  let buses = ref [] in
  let note b = if not (List.mem b !buses) then buses := b :: !buses in
  List.iter
    (fun (ins : Microcode.instr) ->
      List.iter
        (fun (is : Microcode.issue) ->
          (match is.a with
           | Some ({ route = Microcode.Direct; _ } as o) ->
             note (Datapath.direct_operand_bus ~src:o.src is.unit_ ~port:1)
           | Some _ | None -> ());
          (match is.b with
           | Some ({ route = Microcode.Direct; _ } as o) ->
             note (Datapath.direct_operand_bus ~src:o.src is.unit_ ~port:2)
           | Some _ | None -> ());
          match is.dst, is.wb with
          | Some d, Microcode.Direct ->
            note (Datapath.direct_result_bus is.unit_ ~dst:d)
          | _, _ -> ())
        ins.issues)
    p.instrs;
  List.rev !buses

let to_model ?(inputs = []) ?(reg_init = []) (p : Microcode.program) =
  Microcode.check p;
  let cs_max =
    List.fold_left
      (fun acc (ins : Microcode.instr) ->
        List.fold_left
          (fun acc (is : Microcode.issue) ->
            max acc (ins.addr + Datapath.unit_latency is.unit_))
          acc ins.issues)
      1 p.instrs
  in
  let b = Datapath.base_builder ~inputs ~reg_init ~name:p.pname ~cs_max () in
  List.iter (C.Builder.bus b) (direct_buses p);
  List.iter
    (fun (ins : Microcode.instr) ->
      List.iter (fun t -> C.Builder.transfer b t) (tuples_of_instr ins))
    p.instrs;
  C.Builder.finish b

let run ?inputs ?reg_init p = C.Interp.run (to_model ?inputs ?reg_init p)

let final_loc obs loc =
  match C.Observation.final_reg obs (Datapath.loc_name loc) with
  | Some v -> v
  | None -> C.Word.disc
