(** IKS microcode words.

    The paper's §3 microcode tables pair an address with operation
    codes (opc1/opc2) whose code maps name bus sources/destinations
    and the operation each adder performs.  Here a microinstruction
    is that information made structural: a set of {e issues}, each
    naming the unit, the operation, the operand routes (bus A, bus B
    or a direct link) and the destination register.  The paper's
    worked example — store address 7, opc1 = 20, opc2 = 2 — is
    provided as {!paper_addr7}. *)

type route = Bus_a | Bus_b | Direct
type operand = { src : Datapath.loc; route : route }

type issue = {
  unit_ : Datapath.unit_sel;
  op : Csrtl_core.Ops.t;
  a : operand option;
  b : operand option;
  dst : Datapath.loc option;  (** [None]: result not written back *)
  wb : route;  (** route of the result transfer *)
}

type instr = { addr : int; issues : issue list }
type program = { pname : string; instrs : instr list }

val issue :
  ?a:operand -> ?b:operand -> ?dst:Datapath.loc -> ?wb:route ->
  op:Csrtl_core.Ops.t -> Datapath.unit_sel -> issue
(** [wb] defaults to [Bus_a]. *)

val reg : ?route:route -> Datapath.loc -> operand
(** Operand from a register/file/input; route defaults to [Bus_a]. *)

val paper_addr7 : instr
(** The paper's microprogram word at store address 7: J[6] to the
    Y-adder via bus A ([Y := 0 + y2]), Y to the X-adder via the
    direct link ([X := 0 + Rshift(x2, i)], here i = 1), [Z := 0 + 0],
    [F := 1]. *)

exception Bad_microcode of int * string
(** Instruction address and problem. *)

val check : program -> unit
(** Structural checks: positive, strictly increasing addresses; at
    most one use of each bus per word (operand side and result side
    counted per the six-phase discipline); operand count matching the
    operation arity; units not double-issued; non-overlapping
    multiplier results on a shared write route. *)

val pp_issue : Format.formatter -> issue -> unit
val pp_instr : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> program -> unit
