(** The IKS chip's RT structure (paper Fig. 3).

    Resources: the dual-port register file R (16 words), coefficient
    files J (6) and M (8), working registers P, Z, Y, X and the flag
    F; a 2-stage pipelined multiplier; three single-cycle multi-
    operation adders (Z-ADD, Y-ADD, X-ADD); buses A and B.  Direct
    links (e.g. register P to Z-ADD's right port, Z to the R file)
    are modeled as extra buses and a copy module, following the
    paper: "it is better to model more resources than to extend the
    VHDL subset".

    One sizing liberty, recorded in DESIGN.md: the coefficient file M
    holds 32 words here (the CORDIC arctangent table and the other
    constants the inverse-kinematics microprogram needs); the paper
    does not state its size and the original book is unavailable. *)

type loc =
  | P | Z | Y | X | F
  | R of int  (** 0..15 *)
  | J of int  (** 0..5 *)
  | M of int  (** 0..31 *)
  | In of string  (** entity input port *)

type unit_sel = MULT | ZADD | YADD | XADD | COPY | FLAG

val loc_name : loc -> string
val unit_name : unit_sel -> string
val unit_latency : unit_sel -> int
val unit_ops : unit_sel -> Csrtl_core.Ops.t list
(** Adders: add/sub/pass/neg/abs/const-zero plus immediate shifts (the paper's
    [Rshift(x2, i)]); MULT: [mul] and fixed-point [mulfx]; COPY:
    [pass]; FLAG: [const 0], [const 1]. *)

val bus_a : string
val bus_b : string

val all_register_locs : loc list

val base_builder :
  ?inputs:(string * Csrtl_core.Word.t) list ->
  ?reg_init:(loc * Csrtl_core.Word.t) list ->
  name:string -> cs_max:int -> unit -> Csrtl_core.Builder.t
(** Declare every Fig. 3 resource (registers, units, buses A/B) on a
    fresh builder; transfers are added by {!Translate}. *)

val direct_operand_bus : src:loc -> unit_sel -> port:int -> string
(** Canonical name of the dedicated bus modeling a direct operand
    link. *)

val direct_result_bus : unit_sel -> dst:loc -> string
