module C = Csrtl_core

type route = Bus_a | Bus_b | Direct
type operand = { src : Datapath.loc; route : route }

type issue = {
  unit_ : Datapath.unit_sel;
  op : C.Ops.t;
  a : operand option;
  b : operand option;
  dst : Datapath.loc option;
  wb : route;
}

type instr = { addr : int; issues : issue list }
type program = { pname : string; instrs : instr list }

let issue ?a ?b ?dst ?(wb = Bus_a) ~op unit_ = { unit_; op; a; b; dst; wb }
let reg ?(route = Bus_a) src = { src; route }

let paper_addr7 =
  { addr = 7;
    issues =
      [ (* (J[6], BusA, y2, 1): J[6] via bus A into the Y adder;
           Y := 0 + y2 *)
        issue ~a:(reg ~route:Bus_a (Datapath.J 5)) ~dst:Datapath.Y
          ~wb:Bus_b ~op:C.Ops.Pass Datapath.YADD;
        (* (Y, direct, x2, 1): Y via the direct link into the X adder;
           X := 0 + Rshift(x2, i) *)
        issue ~a:(reg ~route:Direct Datapath.Y) ~dst:Datapath.X ~wb:Direct
          ~op:(C.Ops.Asri 1) Datapath.XADD;
        (* Z := 0 + 0 *)
        issue ~dst:Datapath.Z ~wb:Direct ~op:(C.Ops.Const 0) Datapath.ZADD;
        (* F := 1 *)
        issue ~dst:Datapath.F ~wb:Direct ~op:(C.Ops.Const 1) Datapath.FLAG ]
  }

exception Bad_microcode of int * string

let fail addr fmt =
  Format.kasprintf (fun m -> raise (Bad_microcode (addr, m))) fmt

let check (p : program) =
  let last_addr = ref 0 in
  (* write-side bus slots across instruction boundaries *)
  let write_slots = Hashtbl.create 32 in
  let read_slots = Hashtbl.create 32 in
  List.iter
    (fun (ins : instr) ->
      if ins.addr <= !last_addr then
        fail ins.addr "addresses must be positive and strictly increasing";
      last_addr := ins.addr;
      let seen_units = ref [] in
      List.iter
        (fun (is : issue) ->
          if List.mem is.unit_ !seen_units then
            fail ins.addr "unit %s issued twice"
              (Datapath.unit_name is.unit_);
          seen_units := is.unit_ :: !seen_units;
          if not (List.exists (C.Ops.equal is.op) (Datapath.unit_ops is.unit_))
          then
            fail ins.addr "unit %s cannot perform %s"
              (Datapath.unit_name is.unit_)
              (C.Ops.to_string is.op);
          let supplied =
            (if is.a <> None then 1 else 0) + if is.b <> None then 1 else 0
          in
          if supplied <> C.Ops.arity is.op then
            fail ins.addr "%s needs %d operand(s), %d routed"
              (C.Ops.to_string is.op) (C.Ops.arity is.op) supplied;
          let note_read route =
            match route with
            | Direct -> ()
            | Bus_a | Bus_b ->
              let key = (ins.addr, route) in
              if Hashtbl.mem read_slots key then
                fail ins.addr "bus %s carries two operands"
                  (if route = Bus_a then "A" else "B");
              Hashtbl.replace read_slots key ()
          in
          Option.iter (fun (o : operand) -> note_read o.route) is.a;
          Option.iter (fun (o : operand) -> note_read o.route) is.b;
          match is.dst, is.wb with
          | None, _ -> ()
          | Some _, Direct -> ()
          | Some _, (Bus_a | Bus_b) ->
            let w = ins.addr + Datapath.unit_latency is.unit_ in
            let key = (w, is.wb) in
            if Hashtbl.mem write_slots key then
              fail ins.addr
                "result bus %s already carries a value at step %d"
                (if is.wb = Bus_a then "A" else "B")
                w;
            Hashtbl.replace write_slots key ())
        ins.issues)
    p.instrs

let pp_operand ppf (o : operand) =
  Format.fprintf ppf "%s%s"
    (Datapath.loc_name o.src)
    (match o.route with
     | Bus_a -> "@A"
     | Bus_b -> "@B"
     | Direct -> "@direct")

let pp_issue ppf (is : issue) =
  Format.fprintf ppf "%s.%s(%s)%s"
    (Datapath.unit_name is.unit_)
    (C.Ops.to_string is.op)
    (String.concat ", "
       (List.filter_map
          (Option.map (Format.asprintf "%a" pp_operand))
          [ is.a; is.b ]))
    (match is.dst with
     | None -> ""
     | Some d ->
       Printf.sprintf " -> %s%s" (Datapath.loc_name d)
         (match is.wb with
          | Bus_a -> "@A"
          | Bus_b -> "@B"
          | Direct -> "@direct"))

let pp_instr ppf (ins : instr) =
  Format.fprintf ppf "%4d: %s" ins.addr
    (String.concat " | "
       (List.map (Format.asprintf "%a" pp_issue) ins.issues))

let pp_program ppf (p : program) =
  Format.fprintf ppf "@[<v>microprogram %s (%d words)@,%a@]" p.pname
    (List.length p.instrs)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_instr)
    p.instrs
