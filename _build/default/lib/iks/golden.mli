(** Algorithmic-level golden model of the inverse kinematics solution.

    The paper verifies the abstract-RT IKS model "against a
    description at the algorithmic level" (§4).  This module is that
    algorithmic description: closed-form inverse kinematics of a
    2-link planar arm in Q16.16 fixed point, built from the exact
    {!Fixed}/{!Cordic} operation repertoire the datapath offers —
    so the microcode replay ({!Ikprog}) matches it bit-for-bit.
    [solve_float] is an independent floating-point reference used to
    bound the fixed-point error in the tests. *)

type solution = {
  theta1 : Fixed.t;  (** shoulder angle, Q16.16 radians *)
  theta2 : Fixed.t;  (** elbow angle *)
  reachable : bool;
}

val solve :
  l1:Fixed.t -> l2:Fixed.t -> px:Fixed.t -> py:Fixed.t -> solution
(** Elbow-down solution: theta2 = atan2(+sqrt(1 - D^2), D) with
    D = (px^2 + py^2 - l1^2 - l2^2) / (2 l1 l2);
    theta1 = atan2 py px - atan2 (l2 sin t2) (l1 + l2 cos t2).
    [reachable] is false when |D| > 1 (target outside the annulus);
    the angles are then meaningless. *)

val solve_float :
  l1:float -> l2:float -> px:float -> py:float -> (float * float) option

val forward :
  l1:float -> l2:float -> theta1:float -> theta2:float -> float * float
(** Forward kinematics, for round-trip checking. *)

val forward_fixed :
  l1:Fixed.t -> l2:Fixed.t -> theta1:Fixed.t -> theta2:Fixed.t ->
  Fixed.t * Fixed.t
(** Fixed-point forward kinematics built from the datapath's operation
    repertoire (CORDIC rotation mode for the trigonometry), mirrored
    operation-for-operation by {!Ikprog.build_fk}. *)

val in_workspace :
  l1:Fixed.t -> l2:Fixed.t -> px:Fixed.t -> py:Fixed.t -> bool
(** Annulus check (l1-l2)^2 <= px^2+py^2 <= (l1+l2)^2 — the fully
    data-independent part of the IKS computation ({!Ikprog.build_workspace}
    generates static microcode for it). *)
