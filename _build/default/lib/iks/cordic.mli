(** CORDIC — the IKS chip's angle engine (paper §3: "we have modeled
    resources (called MACC ... and cordic core)").

    Classic integer CORDIC over {!Fixed} Q16.16 values.  Angles are
    radians in Q16.16.  Both modes are implemented with plain shifts,
    adds and sign tests, so the microcode generator can replay the
    exact operation sequence on the datapath. *)

val iterations : int
(** 20 — enough for ~1e-4 radian accuracy in Q16.16. *)

val atan_table : Fixed.t array
(** [atan (2^-i)] for each iteration, Q16.16 radians. *)

val gain : Fixed.t
(** The CORDIC gain K = prod sqrt(1 + 2^-2i) for {!iterations}. *)

val inv_gain : Fixed.t
(** 1/K, used to compensate magnitudes. *)

val vector : x:Fixed.t -> y:Fixed.t -> Fixed.t * Fixed.t
(** Vectoring mode: rotate [(x, y)] onto the positive x axis.
    Returns [(magnitude, angle)] = [(K * sqrt(x^2+y^2), atan2 y x)].
    [x] must be positive (the callers pre-rotate; the golden model's
    {!atan2} handles all quadrants). *)

val rotate : x:Fixed.t -> y:Fixed.t -> angle:Fixed.t -> Fixed.t * Fixed.t
(** Rotation mode: rotate [(x, y)] by [angle]; results carry the gain
    K. *)

val atan2 : y:Fixed.t -> x:Fixed.t -> Fixed.t
(** Full-quadrant atan2 via pre-rotation + {!vector}. *)

val magnitude : x:Fixed.t -> y:Fixed.t -> Fixed.t
(** sqrt(x^2 + y^2), gain-compensated. *)

val divide : y:Fixed.t -> x:Fixed.t -> Fixed.t
(** Linear-mode vectoring: [y / x] for [x > 0], |y/x| < 2^{!range_bits}.
    The IKS chip has no divider; quotients are computed by the CORDIC
    core in linear mode, shift-add iterations only, which is what the
    microcode generator replays. *)

val range_bits : int
(** Pre-scaling iterations of {!divide}: quotients up to 2^8. *)

val newton_iterations : int
(** Newton steps in {!sqrt_} (6). *)

val sqrt_ : Fixed.t -> Fixed.t
(** Non-negative square root by Newton iteration with a shift-based
    seed; divisions via {!divide} so the datapath replay is
    bit-exact. *)

val pi : Fixed.t
