(** The inverse-kinematics microprogram.

    Generates IKS microcode computing the 2-link planar-arm inverse
    kinematics for a given target, mirroring {!Golden.solve}
    operation by operation (products on MULT, sums/shifts on the
    three adders, quotients and angles as CORDIC shift-add loops).
    Data-dependent rotation directions are resolved at generation
    time from the tracked values ({!Asm}), producing the straight-
    line transfer schedule the paper's §3 works with; the golden
    model and the datapath run therefore agree {e bit-for-bit},
    which the test suite asserts.

    Results land in the J file: J0 = theta1, J1 = theta2, F = 1 when
    the target is reachable (F = 0 and zero angles otherwise). *)

type t = {
  program : Microcode.program;
  inputs : (string * Csrtl_core.Word.t) list;  (** L1 L2 PX PY drives *)
  reg_init : (Datapath.loc * Csrtl_core.Word.t) list;  (** constant pool *)
  expected : Golden.solution;  (** golden-model result *)
}

val build : l1:Fixed.t -> l2:Fixed.t -> px:Fixed.t -> py:Fixed.t -> t

val theta1_loc : Datapath.loc
val theta2_loc : Datapath.loc
val flag_loc : Datapath.loc

val run : t -> Csrtl_core.Observation.t
(** Translate to a model and execute with the interpreter. *)

val solve_on_datapath :
  l1:Fixed.t -> l2:Fixed.t -> px:Fixed.t -> py:Fixed.t -> Golden.solution
(** End to end: generate, translate, simulate, read the J file. *)

val build_fk :
  l1:Fixed.t -> l2:Fixed.t -> theta1:Fixed.t -> theta2:Fixed.t -> t
(** Forward kinematics: rotation-mode CORDIC for cos/sin, mirroring
    {!Golden.forward_fixed} bit-for-bit.  Results: J0 = x, J1 = y,
    F = 1.  The [expected] field carries (x, y) in the theta slots. *)

val forward_on_datapath :
  l1:Fixed.t -> l2:Fixed.t -> theta1:Fixed.t -> theta2:Fixed.t ->
  Fixed.t * Fixed.t

val build_workspace :
  unit -> Microcode.program * (Datapath.loc * Csrtl_core.Word.t) list
(** The annulus check of {!Golden.in_workspace} as {e fully static}
    microcode (plus its constant pool): no trace-resolved decisions at
    all, the same words run for every input.  Inputs L1 L2 PX PY; F
    ends 1 iff the target is inside the workspace. *)

val workspace_on_datapath :
  l1:Fixed.t -> l2:Fixed.t -> px:Fixed.t -> py:Fixed.t -> bool

val build_fir :
  coeffs:Fixed.t list -> xs:Fixed.t list -> t
(** An FIR dot-product microprogram on the same datapath — the MACC
    idiom the chip's multiplier/accumulator structure exists for:
    y = sum coeffs_i * xs_i, accumulated through the MULT and Z adder.
    Result in J0; [expected] carries it in the theta1 slot. *)

val fir_on_datapath : coeffs:Fixed.t list -> xs:Fixed.t list -> Fixed.t
