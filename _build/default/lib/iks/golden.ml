type solution = {
  theta1 : Fixed.t;
  theta2 : Fixed.t;
  reachable : bool;
}

let solve ~l1 ~l2 ~px ~py =
  let open Fixed in
  let px2 = mul px px in
  let py2 = mul py py in
  let l12 = mul l1 l1 in
  let l22 = mul l2 l2 in
  let num = sub (sub (add px2 py2) l12) l22 in
  let den = shl (mul l1 l2) 1 in
  let d = Cordic.divide ~y:num ~x:den in
  let one_minus_d2 = sub one (mul d d) in
  if Fixed.is_neg one_minus_d2 then
    { theta1 = zero; theta2 = zero; reachable = false }
  else begin
    let s = Cordic.sqrt_ one_minus_d2 in
    let theta2 = Cordic.atan2 ~y:s ~x:d in
    let sin2 = s in
    let cos2 = d in
    let wx = add l1 (mul l2 cos2) in
    let wy = mul l2 sin2 in
    let theta1 =
      sub (Cordic.atan2 ~y:py ~x:px) (Cordic.atan2 ~y:wy ~x:wx)
    in
    { theta1; theta2; reachable = true }
  end

let solve_float ~l1 ~l2 ~px ~py =
  let d =
    ((px *. px) +. (py *. py) -. (l1 *. l1) -. (l2 *. l2))
    /. (2.0 *. l1 *. l2)
  in
  if Float.abs d > 1.0 then None
  else begin
    let t2 = atan2 (sqrt (1.0 -. (d *. d))) d in
    let t1 =
      atan2 py px -. atan2 (l2 *. sin t2) (l1 +. (l2 *. cos t2))
    in
    Some (t1, t2)
  end

let forward ~l1 ~l2 ~theta1 ~theta2 =
  let x = (l1 *. cos theta1) +. (l2 *. cos (theta1 +. theta2)) in
  let y = (l1 *. sin theta1) +. (l2 *. sin (theta1 +. theta2)) in
  (x, y)

let forward_fixed ~l1 ~l2 ~theta1 ~theta2 =
  let open Fixed in
  (* unit vectors from rotation mode, gain-compensated via the seed *)
  let cos_sin angle =
    Cordic.rotate ~x:Cordic.inv_gain ~y:Fixed.zero ~angle
  in
  let c1, s1 = cos_sin theta1 in
  let c12, s12 = cos_sin (add theta1 theta2) in
  let x = add (mul l1 c1) (mul l2 c12) in
  let y = add (mul l1 s1) (mul l2 s12) in
  (x, y)

let in_workspace ~l1 ~l2 ~px ~py =
  let open Fixed in
  let r2 = add (mul px px) (mul py py) in
  let inner = sub l1 l2 in
  let lo = mul inner inner in
  let outer = add l1 l2 in
  let hi = mul outer outer in
  (not (lt r2 lo)) && not (lt hi r2)
