lib/iks/cordic.ml: Array Fixed
