lib/iks/translate.mli: Csrtl_core Datapath Microcode
