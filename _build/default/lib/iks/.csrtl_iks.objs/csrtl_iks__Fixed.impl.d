lib/iks/fixed.ml: Csrtl_core Float Printf
