lib/iks/ikprog.ml: Array Asm Cordic Csrtl_core Datapath Fixed Golden List Microcode Printf Translate
