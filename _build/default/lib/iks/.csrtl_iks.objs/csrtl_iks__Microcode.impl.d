lib/iks/microcode.ml: Csrtl_core Datapath Format Hashtbl List Option Printf String
