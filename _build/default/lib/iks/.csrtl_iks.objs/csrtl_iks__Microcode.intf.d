lib/iks/microcode.mli: Csrtl_core Datapath Format
