lib/iks/datapath.ml: Cordic Csrtl_core Fixed List Printf
