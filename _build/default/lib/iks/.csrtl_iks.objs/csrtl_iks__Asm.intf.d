lib/iks/asm.mli: Csrtl_core Datapath Fixed Microcode
