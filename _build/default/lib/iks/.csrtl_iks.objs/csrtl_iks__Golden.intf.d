lib/iks/golden.mli: Fixed
