lib/iks/ikprog.mli: Csrtl_core Datapath Fixed Golden Microcode
