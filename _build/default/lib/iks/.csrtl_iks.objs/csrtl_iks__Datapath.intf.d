lib/iks/datapath.mli: Csrtl_core
