lib/iks/cordic.mli: Fixed
