lib/iks/fixed.mli:
