lib/iks/golden.ml: Cordic Fixed Float
