lib/iks/translate.ml: Csrtl_core Datapath List Microcode
