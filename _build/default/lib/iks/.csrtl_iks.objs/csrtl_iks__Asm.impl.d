lib/iks/asm.ml: Csrtl_core Datapath Fixed Hashtbl List Microcode Option
