(** Q16.16 fixed-point arithmetic on 32-bit words.

    The IKS chip computes in fixed point; this module is the numeric
    substrate shared by the golden model and the microcode
    generator.  Values are 32-bit two's-complement words as stored in
    model registers (naturals in {!Csrtl_core.Word} terms); all
    operations mask back into the word domain, so a golden-model
    computation and the same operation sequence on the datapath agree
    bit-for-bit. *)

type t = int
(** A 32-bit word (non-negative int, two's-complement reading). *)

val frac_bits : int
(** 16. *)

val one : t
val zero : t
val of_int : int -> t
val of_float : float -> t
val to_float : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** Fixed-point product: [(a * b) >> frac_bits], computed exactly the
    way the datapath does it — full product then arithmetic shift. *)

val div : t -> t -> t
(** Fixed-point quotient [(a << frac_bits) / b], truncating toward
    zero.  Raises [Division_by_zero] when [b] is 0. *)

val asr_ : t -> int -> t
val shl : t -> int -> t

val lt : t -> t -> bool
(** Signed comparison. *)

val is_neg : t -> bool
val abs_ : t -> t
val signed : t -> int
val to_string : t -> string
