module C = Csrtl_core
module D = Datapath

type t = {
  program : Microcode.program;
  inputs : (string * C.Word.t) list;
  reg_init : (Datapath.loc * C.Word.t) list;
  expected : Golden.solution;
}

let theta1_loc = D.J 0
let theta2_loc = D.J 1
let flag_loc = D.F

let shift_op i =
  if i >= 0 then C.Ops.Asri i else C.Ops.Shli (-i)

(* Quotient y/x as a CORDIC linear-vectoring loop (cf. Cordic.divide):
   per iteration, shift x and 1 by the iteration index, then add or
   subtract depending on the sign of the running y. *)
let emit_divide a ~y ~x =
  let one_c = Asm.const a Fixed.one in
  let yw = Asm.op1 a D.COPY C.Ops.Pass y in
  let q = Asm.op0 a D.ZADD (C.Ops.Const 0) in
  let dx = Asm.alloc a in
  let dq = Asm.alloc a in
  for i = -Cordic.range_bits to Cordic.iterations - 1 do
    ignore (Asm.op1 a ~dst:dx D.XADD (shift_op i) x);
    ignore (Asm.op1 a ~dst:dq D.XADD (shift_op i) one_c);
    if Fixed.is_neg (Asm.value a yw) then begin
      ignore (Asm.op2 a ~dst:yw D.ZADD C.Ops.Add yw dx);
      ignore (Asm.op2 a ~dst:q D.YADD C.Ops.Sub q dq)
    end
    else begin
      ignore (Asm.op2 a ~dst:yw D.ZADD C.Ops.Sub yw dx);
      ignore (Asm.op2 a ~dst:q D.YADD C.Ops.Add q dq)
    end
  done;
  if Fixed.is_neg (Asm.value a yw) then begin
    ignore
      (Asm.op1 a ~dst:dq D.XADD (C.Ops.Asri (Cordic.iterations - 1)) one_c);
    ignore (Asm.op2 a ~dst:q D.YADD C.Ops.Sub q dq)
  end;
  Asm.free a dx;
  Asm.free a dq;
  Asm.free a yw;
  q

(* Newton square root mirroring Cordic.sqrt_: shift-based seed from
   the tracked magnitude, then x <- (x + v/x) / 2. *)
let emit_sqrt a v =
  let one_c = Asm.const a Fixed.one in
  let vv = Fixed.signed (Asm.value a v) in
  if vv <= 0 then Asm.op0 a D.ZADD (C.Ops.Const 0)
  else begin
    let msb =
      let rec go i = if vv lsr i = 0 then i - 1 else go (i + 1) in
      go 0
    in
    let e = (msb - Fixed.frac_bits) / 2 in
    let x = Asm.op1 a D.XADD (shift_op (-e)) one_c in
    for _ = 1 to Cordic.newton_iterations do
      let d = emit_divide a ~y:v ~x in
      let s = Asm.op2 a D.ZADD C.Ops.Add x d in
      ignore (Asm.op1 a ~dst:x D.XADD (C.Ops.Asri 1) s);
      Asm.free a d;
      Asm.free a s
    done;
    x
  end

(* Circular vectoring mirroring Cordic.vector; returns the angle
   accumulator (the magnitude in x is freed). *)
let emit_vector_angle a ~x ~y =
  let xw = Asm.op1 a D.COPY C.Ops.Pass x in
  let yw = Asm.op1 a D.COPY C.Ops.Pass y in
  let z = Asm.op0 a D.ZADD (C.Ops.Const 0) in
  let dx = Asm.alloc a in
  let dy = Asm.alloc a in
  for i = 0 to Cordic.iterations - 1 do
    let at = Asm.const a Cordic.atan_table.(i) in
    ignore (Asm.op1 a ~dst:dx D.XADD (C.Ops.Asri i) yw);
    ignore (Asm.op1 a ~dst:dy D.XADD (C.Ops.Asri i) xw);
    if Fixed.is_neg (Asm.value a yw) then begin
      ignore (Asm.op2 a ~dst:xw D.ZADD C.Ops.Sub xw dx);
      ignore (Asm.op2 a ~dst:yw D.YADD C.Ops.Add yw dy);
      ignore (Asm.op2 a ~dst:z D.ZADD C.Ops.Sub z at)
    end
    else begin
      ignore (Asm.op2 a ~dst:xw D.ZADD C.Ops.Add xw dx);
      ignore (Asm.op2 a ~dst:yw D.YADD C.Ops.Sub yw dy);
      ignore (Asm.op2 a ~dst:z D.ZADD C.Ops.Add z at)
    end
  done;
  Asm.free a dx;
  Asm.free a dy;
  Asm.free a xw;
  Asm.free a yw;
  z

(* Full-quadrant atan2 mirroring Cordic.atan2. *)
let emit_atan2 a ~y ~x =
  let pi_c = Asm.const a Cordic.pi in
  let vx = Asm.value a x and vy = Asm.value a y in
  if Fixed.signed vx = 0 && Fixed.signed vy = 0 then
    Asm.op0 a D.ZADD (C.Ops.Const 0)
  else if Fixed.is_neg vx then begin
    let nx = Asm.op1 a D.YADD C.Ops.Neg x in
    let ny = Asm.op1 a D.YADD C.Ops.Neg y in
    let z = emit_vector_angle a ~x:nx ~y:ny in
    Asm.free a nx;
    Asm.free a ny;
    let r =
      if Fixed.is_neg vy then Asm.op2 a D.ZADD C.Ops.Sub z pi_c
      else Asm.op2 a D.ZADD C.Ops.Add z pi_c
    in
    Asm.free a z;
    r
  end
  else emit_vector_angle a ~x ~y

let build ~l1 ~l2 ~px ~py =
  let expected = Golden.solve ~l1 ~l2 ~px ~py in
  let a =
    Asm.create
      ~inputs:[ ("L1", l1); ("L2", l2); ("PX", px); ("PY", py) ]
      ()
  in
  let inl1 = D.In "L1" and inl2 = D.In "L2" in
  let inpx = D.In "PX" and inpy = D.In "PY" in
  let one_c = Asm.const a Fixed.one in
  let mulf x y = Asm.op2 a D.MULT (C.Ops.Mulfx Fixed.frac_bits) x y in
  let px2 = mulf inpx inpx in
  let py2 = mulf inpy inpy in
  let l12 = mulf inl1 inl1 in
  let l22 = mulf inl2 inl2 in
  let sum = Asm.op2 a D.ZADD C.Ops.Add px2 py2 in
  Asm.free a px2;
  Asm.free a py2;
  let t = Asm.op2 a D.YADD C.Ops.Sub sum l12 in
  Asm.free a sum;
  Asm.free a l12;
  let num = Asm.op2 a D.YADD C.Ops.Sub t l22 in
  Asm.free a t;
  Asm.free a l22;
  let l1l2 = mulf inl1 inl2 in
  let den = Asm.op1 a D.XADD (C.Ops.Shli 1) l1l2 in
  Asm.free a l1l2;
  let d = emit_divide a ~y:num ~x:den in
  Asm.free a num;
  Asm.free a den;
  let d2 = mulf d d in
  let omd = Asm.op2 a D.YADD C.Ops.Sub one_c d2 in
  Asm.free a d2;
  if Fixed.is_neg (Asm.value a omd) then begin
    (* target out of reach: zero the results, clear the flag *)
    ignore (Asm.op0 a ~dst:theta1_loc D.ZADD (C.Ops.Const 0));
    ignore (Asm.op0 a ~dst:theta2_loc D.YADD (C.Ops.Const 0));
    ignore (Asm.op0 a ~dst:flag_loc D.FLAG (C.Ops.Const 0))
  end
  else begin
    let s = emit_sqrt a omd in
    let theta2 = emit_atan2 a ~y:s ~x:d in
    let l2cos = mulf inl2 d in
    let wx = Asm.op2 a D.ZADD C.Ops.Add inl1 l2cos in
    Asm.free a l2cos;
    let wy = mulf inl2 s in
    Asm.free a s;
    Asm.free a d;
    let t1a = emit_atan2 a ~y:inpy ~x:inpx in
    let t1b = emit_atan2 a ~y:wy ~x:wx in
    Asm.free a wx;
    Asm.free a wy;
    let theta1 = Asm.op2 a D.YADD C.Ops.Sub t1a t1b in
    Asm.free a t1a;
    Asm.free a t1b;
    Asm.mov a ~src:theta1 ~dst:theta1_loc;
    Asm.mov a ~src:theta2 ~dst:theta2_loc;
    Asm.free a theta1;
    Asm.free a theta2;
    ignore (Asm.op0 a ~dst:flag_loc D.FLAG (C.Ops.Const 1))
  end;
  Asm.free a omd;
  let program, inputs, reg_init = Asm.finish a ~name:"iks_ik" in
  { program; inputs; reg_init; expected }

let run t =
  Translate.run ~inputs:t.inputs ~reg_init:t.reg_init t.program

let solve_on_datapath ~l1 ~l2 ~px ~py =
  let t = build ~l1 ~l2 ~px ~py in
  let obs = run t in
  { Golden.theta1 = Translate.final_loc obs theta1_loc;
    theta2 = Translate.final_loc obs theta2_loc;
    reachable = C.Word.equal (Translate.final_loc obs flag_loc) C.Word.one }

(* Rotation-mode CORDIC mirroring Cordic.rotate: starts from the
   gain-compensated unit vector, returns (cos, sin) of the angle. *)
let emit_cos_sin a ~angle =
  let invk = Asm.const a Cordic.inv_gain in
  let xw = Asm.op1 a D.COPY C.Ops.Pass invk in
  let yw = Asm.op0 a D.YADD (C.Ops.Const 0) in
  let zw = Asm.op1 a D.COPY C.Ops.Pass angle in
  let dx = Asm.alloc a in
  let dy = Asm.alloc a in
  for i = 0 to Cordic.iterations - 1 do
    let at = Asm.const a Cordic.atan_table.(i) in
    ignore (Asm.op1 a ~dst:dx D.XADD (C.Ops.Asri i) yw);
    ignore (Asm.op1 a ~dst:dy D.XADD (C.Ops.Asri i) xw);
    if Fixed.is_neg (Asm.value a zw) then begin
      ignore (Asm.op2 a ~dst:xw D.ZADD C.Ops.Add xw dx);
      ignore (Asm.op2 a ~dst:yw D.YADD C.Ops.Sub yw dy);
      ignore (Asm.op2 a ~dst:zw D.ZADD C.Ops.Add zw at)
    end
    else begin
      ignore (Asm.op2 a ~dst:xw D.ZADD C.Ops.Sub xw dx);
      ignore (Asm.op2 a ~dst:yw D.YADD C.Ops.Add yw dy);
      ignore (Asm.op2 a ~dst:zw D.ZADD C.Ops.Sub zw at)
    end
  done;
  Asm.free a dx;
  Asm.free a dy;
  Asm.free a zw;
  (xw, yw)

let build_fk ~l1 ~l2 ~theta1 ~theta2 =
  let fx, fy = Golden.forward_fixed ~l1 ~l2 ~theta1 ~theta2 in
  let a =
    Asm.create
      ~inputs:[ ("L1", l1); ("L2", l2); ("TH1", theta1); ("TH2", theta2) ]
      ()
  in
  let mulf x y = Asm.op2 a D.MULT (C.Ops.Mulfx Fixed.frac_bits) x y in
  let th1 = D.In "TH1" and th2 = D.In "TH2" in
  let th12 = Asm.op2 a D.ZADD C.Ops.Add th1 th2 in
  let c1, s1 = emit_cos_sin a ~angle:th1 in
  let c12, s12 = emit_cos_sin a ~angle:th12 in
  Asm.free a th12;
  let xa = mulf (D.In "L1") c1 in
  let xb = mulf (D.In "L2") c12 in
  Asm.free a c1;
  Asm.free a c12;
  let x = Asm.op2 a D.ZADD C.Ops.Add xa xb in
  Asm.free a xa;
  Asm.free a xb;
  let ya = mulf (D.In "L1") s1 in
  let yb = mulf (D.In "L2") s12 in
  Asm.free a s1;
  Asm.free a s12;
  let y = Asm.op2 a D.YADD C.Ops.Add ya yb in
  Asm.free a ya;
  Asm.free a yb;
  Asm.mov a ~src:x ~dst:theta1_loc;
  Asm.mov a ~src:y ~dst:theta2_loc;
  Asm.free a x;
  Asm.free a y;
  ignore (Asm.op0 a ~dst:flag_loc D.FLAG (C.Ops.Const 1));
  let program, inputs, reg_init = Asm.finish a ~name:"iks_fk" in
  { program; inputs; reg_init;
    expected = { Golden.theta1 = fx; theta2 = fy; reachable = true } }

let forward_on_datapath ~l1 ~l2 ~theta1 ~theta2 =
  let t = build_fk ~l1 ~l2 ~theta1 ~theta2 in
  let obs = run t in
  (Translate.final_loc obs theta1_loc, Translate.final_loc obs theta2_loc)

(* The annulus test needs no data-dependent decisions at all: the same
   microcode words run for every input, like the paper's extracted
   schedules. *)
let build_workspace () =
  let a = Asm.create ~inputs:[] () in
  let mulf x y = Asm.op2 a D.MULT (C.Ops.Mulfx Fixed.frac_bits) x y in
  let l1 = D.In "L1" and l2 = D.In "L2" in
  let px = D.In "PX" and py = D.In "PY" in
  let px2 = mulf px px in
  let py2 = mulf py py in
  let r2 = Asm.op2 a D.ZADD C.Ops.Add px2 py2 in
  Asm.free a px2;
  Asm.free a py2;
  let inner = Asm.op2 a D.YADD C.Ops.Sub l1 l2 in
  let lo = mulf inner inner in
  Asm.free a inner;
  let outer = Asm.op2 a D.YADD C.Ops.Add l1 l2 in
  let hi = mulf outer outer in
  Asm.free a outer;
  (* in = (not r2 < lo) and (not hi < r2) = (1 - (r2<lo)) * (1 - (hi<r2)) *)
  let below = Asm.op2 a D.XADD C.Ops.Lts r2 lo in
  let above = Asm.op2 a D.XADD C.Ops.Lts hi r2 in
  Asm.free a r2;
  Asm.free a lo;
  Asm.free a hi;
  let one_c = Asm.const a (C.Word.nat 1) in
  let not_below = Asm.op2 a D.ZADD C.Ops.Sub one_c below in
  let not_above = Asm.op2 a D.YADD C.Ops.Sub one_c above in
  Asm.free a below;
  Asm.free a above;
  let inside = Asm.op2 a D.XADD C.Ops.Band not_below not_above in
  Asm.free a not_below;
  Asm.free a not_above;
  Asm.mov a ~src:inside ~dst:flag_loc;
  Asm.free a inside;
  let program, _, reg_init = Asm.finish a ~name:"iks_workspace" in
  (program, reg_init)

let workspace_on_datapath ~l1 ~l2 ~px ~py =
  let program, reg_init = build_workspace () in
  let obs =
    Translate.run
      ~inputs:[ ("L1", l1); ("L2", l2); ("PX", px); ("PY", py) ]
      ~reg_init program
  in
  C.Word.equal (Translate.final_loc obs flag_loc) C.Word.one

(* FIR dot product: the datapath's bread-and-butter DSP use.  The
   coefficients live in the constant pool; samples arrive as input
   ports X0..Xn-1. *)
let build_fir ~coeffs ~xs =
  if List.length coeffs <> List.length xs then
    invalid_arg "Ikprog.build_fir: coefficient/sample count mismatch";
  let inputs =
    List.mapi (fun i x -> (Printf.sprintf "X%d" i, (x : Fixed.t))) xs
  in
  let a = Asm.create ~inputs () in
  let mulf x y = Asm.op2 a D.MULT (C.Ops.Mulfx Fixed.frac_bits) x y in
  let acc =
    List.mapi
      (fun i c ->
        let cl = Asm.const a c in
        (i, cl))
      coeffs
    |> List.fold_left
         (fun acc (i, cl) ->
           let p = mulf (D.In (Printf.sprintf "X%d" i)) cl in
           match acc with
           | None ->
             Some p
           | Some sum ->
             let s = Asm.op2 a D.ZADD C.Ops.Add sum p in
             Asm.free a sum;
             Asm.free a p;
             Some s)
         None
  in
  let expected_value =
    List.fold_left2
      (fun s c x -> Fixed.add s (Fixed.mul c x))
      Fixed.zero coeffs xs
  in
  (match acc with
   | Some sum ->
     Asm.mov a ~src:sum ~dst:theta1_loc;
     Asm.free a sum
   | None -> ignore (Asm.op0 a ~dst:theta1_loc D.ZADD (C.Ops.Const 0)));
  ignore (Asm.op0 a ~dst:flag_loc D.FLAG (C.Ops.Const 1));
  let program, inputs, reg_init = Asm.finish a ~name:"iks_fir" in
  { program; inputs; reg_init;
    expected =
      { Golden.theta1 = expected_value; theta2 = Fixed.zero;
        reachable = true } }

let fir_on_datapath ~coeffs ~xs =
  let t = build_fir ~coeffs ~xs in
  let obs = run t in
  Translate.final_loc obs theta1_loc
