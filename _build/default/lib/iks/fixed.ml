module W = Csrtl_core.Word

type t = int

let frac_bits = 16
let one = 1 lsl frac_bits
let zero = 0
let of_int n = W.mask (n lsl frac_bits)

let of_float f =
  W.mask (int_of_float (Float.round (f *. float_of_int one)))

let to_float v = float_of_int (W.to_signed v) /. float_of_int one

let add a b = W.mask (W.to_signed a + W.to_signed b)
let sub a b = W.mask (W.to_signed a - W.to_signed b)
let neg a = W.mask (- W.to_signed a)

let mul a b =
  (* The datapath multiplier produces the full signed product and the
     shifter renormalizes; OCaml's 63-bit ints hold the intermediate
     exactly. *)
  W.mask ((W.to_signed a * W.to_signed b) asr frac_bits)

let div a b =
  let sb = W.to_signed b in
  if sb = 0 then raise Division_by_zero
  else W.mask (W.to_signed a * one / sb)

let asr_ a n = W.mask (W.to_signed a asr n)
let shl a n = W.mask (W.to_signed a lsl n)
let lt a b = W.to_signed a < W.to_signed b
let is_neg a = W.to_signed a < 0
let abs_ a = W.mask (abs (W.to_signed a))
let signed = W.to_signed
let to_string v = Printf.sprintf "%.5f" (to_float v)
