(** Microprogram macro-assembler for the IKS datapath.

    The generation side of the paper's §3 flow: where the authors
    extracted transfers from the book's microcode listing, we
    generate the microcode itself and let {!Translate} turn it into
    transfers.  The assembler

    - issues one operation per word, sequentially, spacing addresses
      by the issuing unit's latency so results are always ready (the
      microcode programmer's hazard discipline, automated);
    - pools constants into the coefficient file M (initial values);
    - allocates temporaries from the register file R with explicit
      {!free};
    - tracks the concrete value of every register as it would be
      computed, so that data-dependent control decisions (CORDIC
      rotation directions, division steps, Newton seeds) can be
      resolved at generation time — the straight-line microcode for a
      {e given} input, which is exactly the form the paper's extracted
      transfer schedules have.  {!value} exposes the tracked values
      and doubles as the expected result. *)

type t

exception Out_of_registers
exception Out_of_constants

val create : ?inputs:(string * Fixed.t) list -> unit -> t

val const : t -> Fixed.t -> Datapath.loc
(** Pool a constant into the M file. *)

val alloc : t -> Datapath.loc
(** A free R-file temporary. *)

val free : t -> Datapath.loc -> unit

val op2 :
  t -> ?dst:Datapath.loc -> Datapath.unit_sel -> Csrtl_core.Ops.t ->
  Datapath.loc -> Datapath.loc -> Datapath.loc
(** Emit a binary issue (operands via buses A and B, result via bus
    A); allocates the destination unless given.  Returns where the
    result lives. *)

val op1 :
  t -> ?dst:Datapath.loc -> Datapath.unit_sel -> Csrtl_core.Ops.t ->
  Datapath.loc -> Datapath.loc

val op0 :
  t -> ?dst:Datapath.loc -> Datapath.unit_sel -> Csrtl_core.Ops.t ->
  Datapath.loc

val mov : t -> src:Datapath.loc -> dst:Datapath.loc -> unit
(** Register-to-register move through the COPY unit. *)

val value : t -> Datapath.loc -> Fixed.t
(** Tracked content (input ports included; inputs without a supplied
    value read as zero — fine for data-independent generators, fatal
    precision only matters to trace-resolved ones, which must supply
    all inputs). *)

val words : t -> int
(** Instructions emitted so far. *)

val finish :
  t -> name:string ->
  Microcode.program
  * (string * Csrtl_core.Word.t) list
  * (Datapath.loc * Csrtl_core.Word.t) list
(** The program, the input-port drives, and the register initial
    values (constant pool). *)
