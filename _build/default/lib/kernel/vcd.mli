(** Value Change Dump (IEEE 1364) waveform output.

    Clock-free models never advance physical time, so by default the
    VCD time axis is the kernel {e cycle} counter (one VCD tick per
    simulation cycle), which renders the paper's phase/step timeline
    directly in any waveform viewer.  [~axis:`Time] uses physical
    time instead, for clocked models. *)

type axis = [ `Cycle | `Time ]

type t

val attach :
  ?axis:axis -> Scheduler.t -> out:Buffer.t -> Signal.t list -> t
(** Write a VCD header for the listed signals (empty = all existing)
    and stream their events into [out]. *)

val finish : t -> unit
(** Flush the final timestamp. *)

val to_file : t -> string -> unit
(** [finish] and write the buffer to a file. *)
