(** Process suspension primitives.

    Kernel processes are ordinary OCaml functions; they suspend by
    performing the {!Wait} effect, which the scheduler handles by
    capturing the continuation.  These functions may only be called
    from inside a process body started by {!Scheduler.add_process}. *)

type wait_spec = {
  on : Types.signal list;  (** sensitivity list *)
  until : (unit -> bool) option;
      (** [wait until]: after an event on [on], resume only when the
          predicate holds (VHDL re-suspends otherwise). *)
  for_ : Time.t option;  (** timeout clause *)
  keyed : (Types.signal * Types.value * (Types.signal * Types.value) option)
          option;
      (** value-keyed wait, see {!wait_keyed} *)
}

type _ Effect.t += Wait : wait_spec -> unit Effect.t

val wait_on : Types.signal list -> unit
(** Suspend until an event occurs on any listed signal. *)

val wait_until : Types.signal list -> (unit -> bool) -> unit
(** VHDL [wait until cond]: suspend; on each event on the sensitivity
    list evaluate [cond]; resume when it is true.  Note that, as in
    VHDL, the process suspends even if [cond] already holds. *)

val wait_for : Time.t -> unit
(** Suspend for a physical-time delay. *)

val wait_forever : unit -> unit
(** Suspend permanently (VHDL [wait;]). *)

val wait_keyed :
  ?extra:Types.signal * Types.value -> Types.signal -> Types.value -> unit
(** [wait_keyed s v] suspends until an event sets [s] to exactly [v];
    with [~extra:(s2, v2)] the process additionally requires
    [s2 = v2] at that moment (it stays registered otherwise).
    Semantically equal to [wait_until [s; s2] (fun () -> ...)] for
    monotonic control signals, but the kernel indexes the waiters by
    value, so only matching processes are scanned per event — the
    optimization that makes the paper's statically-scheduled TRANS
    processes cheap.  See the [kernel/wait-*] ablation benches. *)

val name : Types.process -> string
val activations : Types.process -> int
