type wait_spec = {
  on : Types.signal list;
  until : (unit -> bool) option;
  for_ : Time.t option;
  keyed : (Types.signal * Types.value * (Types.signal * Types.value) option)
          option;
}

type _ Effect.t += Wait : wait_spec -> unit Effect.t

let wait_on sigs =
  Effect.perform (Wait { on = sigs; until = None; for_ = None; keyed = None })

let wait_until sigs pred =
  Effect.perform
    (Wait { on = sigs; until = Some pred; for_ = None; keyed = None })

let wait_for t =
  Effect.perform (Wait { on = []; until = None; for_ = Some t; keyed = None })

let wait_forever () =
  Effect.perform (Wait { on = []; until = None; for_ = None; keyed = None })

let wait_keyed ?extra s v =
  Effect.perform
    (Wait { on = []; until = None; for_ = None; keyed = Some (s, v, extra) })

let name (p : Types.process) = p.pname
let activations (p : Types.process) = p.activations
