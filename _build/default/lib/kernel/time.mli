(** Physical simulation time.

    The kernel counts physical time in femtoseconds, stored in an
    OCaml [int].  Clock-free models per the paper never advance
    physical time; clocked baselines do.  63-bit ints give ~2.5 hours
    of simulated time at femtosecond resolution, far beyond any model
    in this repository. *)

type t = int

val zero : t
val fs : int -> t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t

val add : t -> t -> t
val compare : t -> t -> int
val to_string : t -> string

val pp : Format.formatter -> t -> unit
