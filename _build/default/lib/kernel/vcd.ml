type axis = [ `Cycle | `Time ]

type t = {
  kernel : Scheduler.t;
  out : Buffer.t;
  axis : axis;
  codes : (int, string) Hashtbl.t;  (* signal id -> VCD id code *)
  mutable last_stamp : int;
  mutable stamped : bool;
}

(* VCD identifier codes: printable ASCII 33..126, shortest first. *)
let code_of_index i =
  let base = 94 in
  let rec go i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let width = 32

let emit_value buf code v =
  (* 32-bit two's-complement binary vector. *)
  Buffer.add_char buf 'b';
  for bit = width - 1 downto 0 do
    Buffer.add_char buf (if (v lsr bit) land 1 = 1 then '1' else '0')
  done;
  Buffer.add_char buf ' ';
  Buffer.add_string buf code;
  Buffer.add_char buf '\n'

let stamp t =
  let here =
    match t.axis with
    | `Cycle -> Scheduler.delta_count t.kernel
    | `Time -> Scheduler.now t.kernel
  in
  if (not t.stamped) || here <> t.last_stamp then begin
    Buffer.add_string t.out (Printf.sprintf "#%d\n" here);
    t.last_stamp <- here;
    t.stamped <- true
  end

let attach ?(axis = `Cycle) k ~out sigs =
  let sigs = match sigs with [] -> Scheduler.signals k | l -> l in
  let t =
    { kernel = k; out; axis; codes = Hashtbl.create 16; last_stamp = 0;
      stamped = false }
  in
  Buffer.add_string out "$date csrtl $end\n";
  Buffer.add_string out "$version csrtl kernel $end\n";
  Buffer.add_string out
    (match axis with
     | `Cycle -> "$timescale 1ns $end\n$comment axis=delta-cycles $end\n"
     | `Time -> "$timescale 1fs $end\n");
  Buffer.add_string out "$scope module top $end\n";
  List.iteri
    (fun i s ->
      let code = code_of_index i in
      Hashtbl.replace t.codes (Signal.id s) code;
      Buffer.add_string out
        (Printf.sprintf "$var integer %d %s %s $end\n" width code
           (Signal.name s)))
    sigs;
  Buffer.add_string out "$upscope $end\n$enddefinitions $end\n";
  Buffer.add_string out "$dumpvars\n";
  List.iter
    (fun s ->
      match Hashtbl.find_opt t.codes (Signal.id s) with
      | Some code -> emit_value out code (Signal.value s)
      | None -> ())
    sigs;
  Buffer.add_string out "$end\n";
  Scheduler.on_event k (fun s ->
      match Hashtbl.find_opt t.codes (Signal.id s) with
      | None -> ()
      | Some code ->
        stamp t;
        emit_value t.out code (Signal.value s));
  t

let finish t =
  t.stamped <- false;
  stamp t

let to_file t path =
  finish t;
  let oc = open_out path in
  Buffer.output_buffer oc t.out;
  close_out oc
