lib/kernel/types.ml: Effect Hashtbl Int Map Time
