lib/kernel/trace.mli: Format Scheduler Signal Time Types
