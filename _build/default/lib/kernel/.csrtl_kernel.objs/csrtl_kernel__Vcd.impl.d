lib/kernel/vcd.ml: Buffer Char Hashtbl List Printf Scheduler Signal String
