lib/kernel/time.ml: Format Int Printf
