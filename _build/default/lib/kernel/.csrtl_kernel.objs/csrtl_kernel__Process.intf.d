lib/kernel/process.mli: Effect Time Types
