lib/kernel/scheduler.ml: Effect Format Hashtbl Int List Option Printf Process Signal Time Time_map Types
