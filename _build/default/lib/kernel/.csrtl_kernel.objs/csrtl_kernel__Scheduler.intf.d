lib/kernel/scheduler.mli: Format Signal Time Types
