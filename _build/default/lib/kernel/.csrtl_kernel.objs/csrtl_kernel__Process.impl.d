lib/kernel/process.ml: Effect Time Types
