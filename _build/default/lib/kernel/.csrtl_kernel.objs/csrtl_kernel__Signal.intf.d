lib/kernel/signal.mli: Format Types
