lib/kernel/signal.ml: Array Format List Types
