lib/kernel/trace.ml: Format Hashtbl List Scheduler Signal Time Types
