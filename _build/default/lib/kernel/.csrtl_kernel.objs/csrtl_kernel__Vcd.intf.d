lib/kernel/vcd.mli: Buffer Scheduler Signal
