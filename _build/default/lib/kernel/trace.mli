(** In-memory event traces.

    Records every event (value change) on a chosen set of signals,
    stamped with physical time and the kernel cycle counter.  The
    paper relies on exactly this view: "simulation results allow
    easily to locate design errors ... in specific simulation cycles
    associated with a specific phase of a specific control step". *)

type entry = {
  cycle : int;  (** kernel simulation-cycle number *)
  at : Time.t;
  signal : Signal.t;
  value : Types.value;
}

type t

val attach : Scheduler.t -> Signal.t list -> t
(** Start recording events on the given signals (empty list = all
    signals existing at attach time). *)

val entries : t -> entry list
(** Events in chronological order. *)

val length : t -> int

val history : t -> Signal.t -> (int * Types.value) list
(** [(cycle, value)] changes of one signal, chronological. *)

val value_at_cycle : t -> Signal.t -> int -> Types.value option
(** Last recorded value of the signal at or before the given cycle;
    [None] if the signal had not yet changed. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
