(** Signals: named, possibly resolved, simulation state variables.

    A signal follows VHDL semantics: processes contribute values
    through private drivers; the effective value of a resolved signal
    is computed by its resolution function over all driver values, and
    changes to the effective value are events that wake sensitive
    processes.  Signal creation lives in {!Scheduler} (signals must be
    registered with a kernel); this module holds the pure accessors. *)

type t = Types.signal

val value : t -> Types.value
(** Effective value as of the current delta cycle. *)

val name : t -> string
val id : t -> int

val resolve : Types.t -> t -> Types.value
(** Recompute the effective value from the drivers.  Raises
    {!Types.Multiple_drivers} when an unresolved signal has more than
    one driver.  Updates kernel statistics. *)

val pp : Format.formatter -> t -> unit
(** Prints [name=value] using the signal's printer. *)

val print_value : t -> Types.value -> string
