type t = int

let zero = 0
let fs n = n
let ps n = n * 1_000
let ns n = n * 1_000_000
let us n = n * 1_000_000_000
let ms n = n * 1_000_000_000_000
let add = ( + )
let compare = Int.compare

(* Render using the largest unit that divides the value exactly, the
   way VHDL simulators print time stamps. *)
let to_string t =
  let units = [ (1_000_000_000_000, "ms"); (1_000_000_000, "us");
                (1_000_000, "ns"); (1_000, "ps"); (1, "fs") ] in
  if t = 0 then "0fs"
  else
    let rec pick = function
      | [] -> (1, "fs")
      | (k, u) :: rest -> if t mod k = 0 then (k, u) else pick rest
    in
    let k, u = pick units in
    Printf.sprintf "%d%s" (t / k) u

let pp ppf t = Format.pp_print_string ppf (to_string t)
