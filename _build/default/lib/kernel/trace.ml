type entry = {
  cycle : int;
  at : Time.t;
  signal : Signal.t;
  value : Types.value;
}

type t = {
  kernel : Scheduler.t;
  selected : (int, unit) Hashtbl.t option;  (* None = trace everything *)
  mutable rev_entries : entry list;
  mutable count : int;
}

let attach k sigs =
  let selected =
    match sigs with
    | [] -> None
    | _ ->
      let h = Hashtbl.create (List.length sigs) in
      List.iter (fun s -> Hashtbl.replace h (Signal.id s) ()) sigs;
      Some h
  in
  let t = { kernel = k; selected; rev_entries = []; count = 0 } in
  Scheduler.on_event k (fun s ->
      let wanted =
        match t.selected with
        | None -> true
        | Some h -> Hashtbl.mem h (Signal.id s)
      in
      if wanted then begin
        t.rev_entries <-
          { cycle = Scheduler.delta_count k; at = Scheduler.now k;
            signal = s; value = Signal.value s }
          :: t.rev_entries;
        t.count <- t.count + 1
      end);
  t

let entries t = List.rev t.rev_entries
let length t = t.count

let history t s =
  List.rev
    (List.filter_map
       (fun e ->
         if Signal.id e.signal = Signal.id s then Some (e.cycle, e.value)
         else None)
       t.rev_entries)

let value_at_cycle t s cycle =
  (* rev_entries is newest-first: the first matching entry with
     cycle <= requested is the latest one. *)
  let rec find = function
    | [] -> None
    | e :: rest ->
      if Signal.id e.signal = Signal.id s && e.cycle <= cycle then
        Some e.value
      else find rest
  in
  find t.rev_entries

let pp_entry ppf e =
  Format.fprintf ppf "[cycle %4d %a] %s <- %s" e.cycle Time.pp e.at
    (Signal.name e.signal)
    (Signal.print_value e.signal e.value)

let pp ppf t =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline pp_entry ppf
    (entries t)
