lib/vhdl/ast.mli:
