lib/vhdl/lint.ml: Ast Format Hashtbl Lexer List Parser Printf String
