lib/vhdl/extract.ml: Ast Csrtl_core Emit Format Hashtbl List Parser String
