lib/vhdl/lexer.ml: Array Buffer List Printf String
