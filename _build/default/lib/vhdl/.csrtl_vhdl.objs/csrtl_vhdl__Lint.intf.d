lib/vhdl/lint.mli: Ast Format
