lib/vhdl/parser.mli: Ast
