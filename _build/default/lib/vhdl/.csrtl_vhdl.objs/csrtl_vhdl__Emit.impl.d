lib/vhdl/emit.ml: Array Ast Csrtl_core List Pp Printf String
