lib/vhdl/pp.mli: Ast Format
