lib/vhdl/elab.mli: Ast Csrtl_kernel
