lib/vhdl/emit.mli: Ast Csrtl_core
