lib/vhdl/pp.ml: Ast Format List String
