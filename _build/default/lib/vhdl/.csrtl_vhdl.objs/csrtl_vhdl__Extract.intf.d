lib/vhdl/extract.mli: Ast Csrtl_core
