lib/vhdl/parser.ml: Array Ast Buffer Format Lexer List String
