lib/vhdl/ast.ml:
