lib/vhdl/lexer.mli:
