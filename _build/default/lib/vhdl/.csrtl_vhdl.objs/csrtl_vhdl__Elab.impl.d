lib/vhdl/elab.ml: Array Ast Csrtl_core Csrtl_kernel Format Hashtbl List Option Parser Printf Process Scheduler Signal String Types
