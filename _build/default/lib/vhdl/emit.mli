(** Emit paper-style VHDL from a clock-free model.

    The generated design file contains:
    - [csrtl] pragma comments carrying the resource inventory in
      [Rtm] directive syntax (workload data such as input drives and
      unit attributes have no standard VHDL encoding, so they ride
      along as structured comments; {!Extract} reads them back);
    - the support package [csrtl_rt]: the [Phase] enumeration, the
      [DISC]/[ILLEGAL] constants and the paper's resolution function;
    - the generic entities [CONTROLLER], [TRANS] and [REG], bodies
      exactly as printed in the paper (§2.2, §2.4, §2.5);
    - one entity+architecture per functional unit (§2.6 style:
      pipeline variables, compute at [cm]);
    - the top entity and its structural [transfer] architecture:
      resolved signal declarations and one component instantiation
      per register, unit, transfer leg and operation selection —
      the paper's §2.7 shape.

    Everything emitted parses back with {!Parser} and extracts back
    with {!Extract} (round-trip tested). *)

val support_package : Ast.design_unit list
(** [csrtl_rt] package alone. *)

val base_entities : Ast.design_unit list
(** CONTROLLER, TRANS, REG entities and architectures. *)

val fu_units : Csrtl_core.Model.t -> Ast.design_unit list
(** One entity/architecture pair per functional unit of the model. *)

val top : Csrtl_core.Model.t -> Ast.design_unit list
(** Top entity + structural architecture. *)

val design_file : Csrtl_core.Model.t -> Ast.design_file
(** Pragmas + package + entities + top, in dependency order. *)

val to_string : Csrtl_core.Model.t -> string

val mangle : string -> string
(** Canonical signal-name mangling, ["R1.in"] -> ["R1_in"]. *)

val self_checking :
  Csrtl_core.Model.t -> Csrtl_core.Observation.t -> Ast.design_file
(** A closed, self-checking testbench: input ports become internal
    signals with driver processes replaying the model's drives, and a
    [checker] process asserts the register values a reference run
    observed (changes only) at the first cycle of each following
    step.  Any conformant simulator — including {!Elab} — can run it
    unassisted.  Stays inside the subset ({!Lint}-clean). *)

val self_checking_to_string :
  Csrtl_core.Model.t -> Csrtl_core.Observation.t -> string
