(** Recursive-descent parser for the VHDL subset.

    Accepts everything {!Emit} produces (and the paper's hand-written
    style): packages with enumeration types, constants and resolution
    functions; entities; architectures with signal declarations,
    processes and component instantiations.  Keywords are recognized
    case-insensitively; identifier case is preserved. *)

exception Parse_error of int * string

val design_file : string -> Ast.design_file
val expr : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
