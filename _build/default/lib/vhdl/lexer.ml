type token =
  | Id of string
  | Num of int
  | Str of string
  | Tick
  | Lparen | Rparen | Semi | Colon | Comma
  | Arrow
  | Assign
  | Leq
  | Eq | Neq | Lt | Gt | Geq
  | Plus | Minus | Star | Amp | Dot
  | Eof

exception Lex_error of int * string

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_id_char c =
  is_id_start c || (c >= '0' && c <= '9') || c = '_'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let emit t = out := (t, !line) :: !out in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if is_id_start c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do
        incr i
      done;
      emit (Id (String.sub src start (!i - start)))
    end
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = '_')
      do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      let text = String.concat "" (String.split_on_char '_' text) in
      emit (Num (int_of_string text))
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let finished = ref false in
      while not !finished do
        if !i >= n then raise (Lex_error (!line, "unterminated string"));
        if src.[!i] = '"' then begin
          finished := true;
          incr i
        end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      emit (Str (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "=>" -> emit Arrow; i := !i + 2
      | Some ":=" -> emit Assign; i := !i + 2
      | Some "<=" -> emit Leq; i := !i + 2
      | Some "/=" -> emit Neq; i := !i + 2
      | Some ">=" -> emit Geq; i := !i + 2
      | Some _ | None ->
        (match c with
         | '\'' -> emit Tick; incr i
         | '(' -> emit Lparen; incr i
         | ')' -> emit Rparen; incr i
         | ';' -> emit Semi; incr i
         | ':' -> emit Colon; incr i
         | ',' -> emit Comma; incr i
         | '=' -> emit Eq; incr i
         | '<' -> emit Lt; incr i
         | '>' -> emit Gt; incr i
         | '+' -> emit Plus; incr i
         | '-' -> emit Minus; incr i
         | '*' -> emit Star; incr i
         | '&' -> emit Amp; incr i
         | '.' -> emit Dot; incr i
         | _ ->
           raise
             (Lex_error (!line, Printf.sprintf "unexpected character %C" c)))
    end
  done;
  emit Eof;
  Array.of_list (List.rev !out)

let token_to_string = function
  | Id s -> s
  | Num n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Tick -> "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Semi -> ";"
  | Colon -> ":"
  | Comma -> ","
  | Arrow -> "=>"
  | Assign -> ":="
  | Leq -> "<="
  | Eq -> "="
  | Neq -> "/="
  | Lt -> "<"
  | Gt -> ">"
  | Geq -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Amp -> "&"
  | Dot -> "."
  | Eof -> "<eof>"
