open Ast

let binop_str = function
  | And -> "and"
  | Or -> "or"
  | Eq -> "="
  | Neq -> "/="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Concat -> "&"

let rec expr ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Str s -> Format.fprintf ppf "%S" s
  | Name n -> Format.pp_print_string ppf n
  | Attr (n, a) -> Format.fprintf ppf "%s'%s" n a
  | Attr_call (n, a, args) ->
    Format.fprintf ppf "%s'%s(%a)" n a expr_list args
  | Index (n, i) -> Format.fprintf ppf "%s(%a)" n expr i
  | Call (f, args) -> Format.fprintf ppf "%s(%a)" f expr_list args
  | Binop (op, a, b) ->
    Format.fprintf ppf "%a %s %a" expr a (binop_str op) expr b
  | Unop (Not, e) -> Format.fprintf ppf "not %a" expr e
  | Unop (Neg, e) -> Format.fprintf ppf "-%a" expr e
  | Paren e -> Format.fprintf ppf "(%a)" expr e

and expr_list ppf args =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    expr ppf args

let type_name ppf (t : type_name) =
  match t.resolution with
  | None -> Format.pp_print_string ppf t.base
  | Some f -> Format.fprintf ppf "%s %s" f t.base

let mode_str = function In -> "in" | Out -> "out" | Inout -> "inout"

let init_part ppf = function
  | None -> ()
  | Some e -> Format.fprintf ppf " := %a" expr e

let rec stmt ppf = function
  | Wait -> Format.fprintf ppf "wait;"
  | Wait_on sigs ->
    Format.fprintf ppf "wait on %s;" (String.concat ", " sigs)
  | Wait_until e -> Format.fprintf ppf "wait until %a;" expr e
  | Signal_assign (n, e) -> Format.fprintf ppf "%s <= %a;" n expr e
  | Var_assign (n, e) -> Format.fprintf ppf "%s := %a;" n expr e
  | If (branches, els) ->
    (match branches with
     | [] -> ()
     | (c, body) :: rest ->
       Format.fprintf ppf "@[<v 2>if %a then@,%a@]" expr c stmts body;
       List.iter
         (fun (c, body) ->
           Format.fprintf ppf "@,@[<v 2>elsif %a then@,%a@]" expr c stmts
             body)
         rest;
       (match els with
        | [] -> ()
        | _ -> Format.fprintf ppf "@,@[<v 2>else@,%a@]" stmts els);
       Format.fprintf ppf "@,end if;")
  | For (v, lo, hi, body) ->
    Format.fprintf ppf "@[<v 2>for %s in %a to %a loop@,%a@]@,end loop;" v
      expr lo expr hi stmts body
  | Return e -> Format.fprintf ppf "return %a;" expr e
  | Assert_stmt (c, msg) ->
    Format.fprintf ppf "assert %a report %S severity error;" expr c msg
  | Null_stmt -> Format.fprintf ppf "null;"

and stmts ppf body =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut stmt ppf body

let object_decl ppf = function
  | Signal_decl (names, t, init) ->
    Format.fprintf ppf "signal %s: %a%a;" (String.concat ", " names)
      type_name t init_part init
  | Variable_decl (names, t, init) ->
    Format.fprintf ppf "variable %s: %a%a;" (String.concat ", " names)
      type_name t init_part init
  | Constant_decl (n, t, e) ->
    Format.fprintf ppf "constant %s: %a := %a;" n type_name t expr e

let decls ppf ds =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut object_decl ppf ds

let generic ppf (g : generic) =
  Format.fprintf ppf "%s: %s%a" g.gen_name g.gen_type init_part g.gen_default

let port ppf (p : port) =
  Format.fprintf ppf "%s: %s %a%a" p.port_name (mode_str p.mode) type_name
    p.port_type init_part p.port_default

let semi_list pp_elt ppf xs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@,")
    pp_elt ppf xs

let assoc ppf (a : assoc) =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, e) ->
      match name with
      | None -> expr ppf e
      | Some n -> Format.fprintf ppf "%s => %a" n expr e)
    ppf a

let process_pp ppf (p : process) =
  let label ppf = function
    | None -> ()
    | Some l -> Format.fprintf ppf "%s: " l
  in
  let sens ppf = function
    | [] -> ()
    | l -> Format.fprintf ppf " (%s)" (String.concat ", " l)
  in
  Format.fprintf ppf "@[<v>%aprocess%a@," label p.proc_label sens
    p.sensitivity;
  if p.proc_decls <> [] then Format.fprintf ppf "%a@," decls p.proc_decls;
  Format.fprintf ppf "@[<v 2>begin@,%a@]@,end process;@]" stmts p.body

let concurrent ppf = function
  | Proc p -> process_pp ppf p
  | Instance { inst_label; component; generic_map; port_map } ->
    Format.fprintf ppf "@[<v 2>%s: %s" inst_label component;
    if generic_map <> [] then
      Format.fprintf ppf "@,generic map (%a)" assoc generic_map;
    if port_map <> [] then Format.fprintf ppf "@,port map (%a)" assoc port_map;
    Format.fprintf ppf ";@]"
  | Concurrent_assign (n, e) -> Format.fprintf ppf "%s <= %a;" n expr e

let subprogram ppf (f : subprogram) =
  let param ppf (names, t) =
    Format.fprintf ppf "%s: %a" (String.concat ", " names) type_name t
  in
  Format.fprintf ppf "@[<v>@[<v 2>function %s (%a) return %s is@,%a@]@,"
    f.fun_name (semi_list param) f.fun_params f.fun_return decls f.fun_decls;
  Format.fprintf ppf "@[<v 2>begin@,%a@]@,end %s;@]" stmts f.fun_body
    f.fun_name

let package_decl ppf = function
  | Pkg_type_enum (n, items) ->
    Format.fprintf ppf "type %s is (%s);" n (String.concat ", " items)
  | Pkg_type_array (n, index, elem) ->
    Format.fprintf ppf "type %s is array (%s range <>) of %s;" n index elem
  | Pkg_subtype (n, t) ->
    Format.fprintf ppf "subtype %s is %a;" n type_name t
  | Pkg_constant (n, t, e) ->
    Format.fprintf ppf "constant %s: %a := %a;" n type_name t expr e
  | Pkg_function f -> subprogram ppf f
  | Pkg_function_decl sig_text ->
    Format.fprintf ppf "function %s;" sig_text
  | Pkg_comment c -> Format.fprintf ppf "-- %s" c

let design_unit ppf = function
  | Entity { ent_name; generics; ports } ->
    Format.fprintf ppf "@[<v 2>entity %s is" ent_name;
    if generics <> [] then
      Format.fprintf ppf "@,@[<v 2>generic (@,%a);@]" (semi_list generic)
        generics;
    if ports <> [] then
      Format.fprintf ppf "@,@[<v 2>port (@,%a);@]" (semi_list port) ports;
    Format.fprintf ppf "@]@,end %s;" ent_name
  | Architecture { arch_name; arch_entity; arch_decls; arch_stmts } ->
    Format.fprintf ppf "@[<v>@[<v 2>architecture %s of %s is" arch_name
      arch_entity;
    if arch_decls <> [] then Format.fprintf ppf "@,%a" decls arch_decls;
    Format.fprintf ppf "@]@,@[<v 2>begin@,%a@]@,end %s;@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut concurrent)
      arch_stmts arch_name
  | Package { pkg_name; pkg_decls } ->
    Format.fprintf ppf "@[<v>@[<v 2>package %s is@,%a@]@,end %s;@]" pkg_name
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut package_decl)
      pkg_decls pkg_name
  | Package_body { pkgb_name; pkgb_decls } ->
    Format.fprintf ppf "@[<v>@[<v 2>package body %s is@,%a@]@,end %s;@]"
      pkgb_name
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut package_decl)
      pkgb_decls pkgb_name
  | Use_clause u -> Format.fprintf ppf "use %s;" u
  | Comment c -> Format.fprintf ppf "-- %s" c

let design_file ppf units =
  Format.fprintf ppf "@[<v>%a@]@."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,@,")
       design_unit)
    units

let to_string units = Format.asprintf "%a" design_file units
