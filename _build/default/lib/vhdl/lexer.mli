(** Lexer for the VHDL subset. *)

type token =
  | Id of string  (** identifier, original case preserved *)
  | Num of int
  | Str of string
  | Tick
  | Lparen | Rparen | Semi | Colon | Comma
  | Arrow  (** [=>] *)
  | Assign  (** [:=] *)
  | Leq  (** [<=], both assignment and comparison *)
  | Eq | Neq | Lt | Gt | Geq
  | Plus | Minus | Star | Amp | Dot
  | Eof

exception Lex_error of int * string
(** Line number and message. *)

val tokenize : string -> (token * int) array
(** Tokens with their 1-based line numbers; comments ([-- ...]) are
    skipped.  Raises {!Lex_error} on unexpected characters. *)

val token_to_string : token -> string
