(** VHDL source rendering.

    Produces conventional VHDL'87-style text from the subset AST; the
    output of {!Emit} pretty-printed here parses back with {!Parser}
    (round-trip tested). *)

val expr : Format.formatter -> Ast.expr -> unit
val stmt : Format.formatter -> Ast.stmt -> unit
val design_unit : Format.formatter -> Ast.design_unit -> unit
val design_file : Format.formatter -> Ast.design_file -> unit
val to_string : Ast.design_file -> string
