(** Elaboration and execution of subset VHDL on the kernel.

    Where {!Extract} recovers a model from the structural text, this
    module {e runs the VHDL itself}: entities and architectures are
    elaborated hierarchically (generic and port maps bound, component
    instances recursed into), processes become kernel processes whose
    statement lists are interpreted directly — including [wait until]
    with the condition's signals as sensitivity, sensitivity-list
    processes, process variables, assertions — and resolved signals
    call the {e parsed} resolution function's body, not a built-in.

    The paper's §2.2–2.6 entity texts therefore execute exactly as
    printed, and the self-checking architectures {!Emit.self_checking}
    produces replay their embedded expectations here: the emitted VHDL
    is validated by running it, closing the loop
    model → VHDL → execution ≡ model.

    Deviations from full VHDL, documented: values are integers (the
    subset's only data), an uninitialized [Integer] signal starts at
    DISC rather than [Integer'left], [assert] failures are collected
    rather than printed, and [csrtl_*] helper functions without a
    parsed body take their semantics from {!Csrtl_core.Ops} (the
    builtin library).  Native [+ - *] follow VHDL Integer arithmetic
    (unbounded here), while the core masks to 32-bit words — emitted
    models agree with {!Csrtl_core.Simulate} as long as values stay
    within naturals, which the paper's models (and this repository's
    corpus) do. *)

exception Elab_error of string

type t = {
  kernel : Csrtl_kernel.Scheduler.t;
  lookup : string -> Csrtl_kernel.Signal.t;
      (** top architecture's signals and top entity ports, by
          (case-insensitive) name; raises [Not_found] *)
  failures : string list ref;  (** failed assertion messages, in order *)
}

val elaborate :
  ?generics:(string * int) list -> top:string -> Ast.design_file -> t
(** Build the hierarchy under the (last) architecture of entity
    [top].  [generics] bind the top entity's generics, if any. *)

val run : ?max_cycles:int -> t -> unit
(** {!Csrtl_kernel.Scheduler.run} with a safety bound
    (default 1_000_000 cycles). *)

val elaborate_and_run :
  ?generics:(string * int) list -> top:string -> string ->
  (t, string) result
(** Parse, elaborate, run; [Error] carries parse/elaboration
    messages. *)
