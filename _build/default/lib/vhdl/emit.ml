open Ast
module C = Csrtl_core

let mangle name = String.map (fun c -> if c = '.' then '_' else c) name

let word_expr (w : C.Word.t) =
  if C.Word.is_disc w then Name "DISC"
  else if C.Word.is_illegal w then Name "ILLEGAL"
  else Int w

let phase_name p = C.Phase.to_string p

let integer = plain "Integer"
let natural = plain "Natural"
let phase_t = plain "Phase"
let resolved_integer = resolved "resolve" "Integer"

(* -- support package ---------------------------------------------------- *)

let resolve_function =
  (* The paper's resolution function, §2.3. *)
  let s i = Index ("s", i) in
  { fun_name = "resolve";
    fun_params = [ ([ "s" ], plain "Integer_Vector") ];
    fun_return = "Integer";
    fun_decls = [ Variable_decl ([ "result" ], integer, Some (Name "DISC")) ];
    fun_body =
      [ For
          ( "i", Attr ("s", "Low"), Attr ("s", "High"),
            [ If
                ( [ ( Binop (Eq, s (Name "i"), Name "ILLEGAL"),
                      [ Var_assign ("result", Name "ILLEGAL") ] );
                    ( Binop (Neq, s (Name "i"), Name "DISC"),
                      [ If
                          ( [ ( Binop (Eq, Name "result", Name "DISC"),
                                [ Var_assign ("result", s (Name "i")) ] ) ],
                            [ Var_assign ("result", Name "ILLEGAL") ] ) ] ) ],
                  [] ) ] ) ;
        Return (Name "result") ] }

let support_package =
  [ Package
      { pkg_name = "csrtl_rt";
        pkg_decls =
          [ Pkg_type_enum
              ("Phase", List.map phase_name C.Phase.all);
            Pkg_constant ("DISC", integer, Int (-1));
            Pkg_constant ("ILLEGAL", integer, Int (-2));
            Pkg_type_array ("Integer_Vector", "Natural", "Integer");
            Pkg_function resolve_function ] } ]

(* -- base entities (paper text) ------------------------------------------ *)

let controller_entity =
  Entity
    { ent_name = "CONTROLLER";
      generics = [ { gen_name = "CS_MAX"; gen_type = "Natural";
                     gen_default = None } ];
      ports =
        [ { port_name = "CS"; mode = Inout; port_type = natural;
            port_default = Some (Int 0) };
          { port_name = "PH"; mode = Inout; port_type = phase_t;
            port_default = Some (Attr ("Phase", "High")) } ] }

let controller_arch =
  Architecture
    { arch_name = "transfer"; arch_entity = "CONTROLLER"; arch_decls = [];
      arch_stmts =
        [ Proc
            { proc_label = None; sensitivity = [ "PH" ]; proc_decls = [];
              body =
                [ If
                    ( [ ( Binop (Eq, Name "PH", Attr ("Phase", "High")),
                          [ If
                              ( [ ( Binop (Lt, Name "CS", Name "CS_MAX"),
                                    [ Signal_assign
                                        ("CS", Binop (Add, Name "CS", Int 1));
                                      Signal_assign
                                        ("PH", Attr ("Phase", "Low")) ] ) ],
                                [] ) ] ) ],
                      [ Signal_assign
                          ( "PH",
                            Attr_call ("Phase", "Succ", [ Name "PH" ]) ) ] )
                ] } ] }

let trans_entity =
  Entity
    { ent_name = "TRANS";
      generics =
        [ { gen_name = "S"; gen_type = "Natural"; gen_default = None };
          { gen_name = "P"; gen_type = "Phase"; gen_default = None } ];
      ports =
        [ { port_name = "CS"; mode = In; port_type = natural;
            port_default = None };
          { port_name = "PH"; mode = In; port_type = phase_t;
            port_default = None };
          { port_name = "InS"; mode = In; port_type = integer;
            port_default = None };
          { port_name = "OutS"; mode = Out; port_type = integer;
            port_default = Some (Name "DISC") } ] }

let trans_arch =
  let at p =
    Binop
      ( And,
        Binop (Eq, Name "CS", Name "S"),
        Binop (Eq, Name "PH", p) )
  in
  Architecture
    { arch_name = "transfer"; arch_entity = "TRANS"; arch_decls = [];
      arch_stmts =
        [ Proc
            { proc_label = None; sensitivity = []; proc_decls = [];
              body =
                [ Wait_until (at (Name "P"));
                  Signal_assign ("OutS", Name "InS");
                  Wait_until (at (Attr_call ("Phase", "Succ", [ Name "P" ])));
                  Signal_assign ("OutS", Name "DISC");
                  Wait ] } ] }

let reg_entity =
  Entity
    { ent_name = "REG";
      generics = [];
      ports =
        [ { port_name = "PH"; mode = In; port_type = phase_t;
            port_default = None };
          { port_name = "R_in"; mode = In; port_type = integer;
            port_default = None };
          { port_name = "R_out"; mode = Out; port_type = integer;
            port_default = Some (Name "DISC") } ] }

let reg_arch =
  Architecture
    { arch_name = "transfer"; arch_entity = "REG"; arch_decls = [];
      arch_stmts =
        [ Proc
            { proc_label = None; sensitivity = []; proc_decls = [];
              body =
                [ Wait_until (Binop (Eq, Name "PH", Name "cr"));
                  If
                    ( [ ( Binop (Neq, Name "R_in", Name "DISC"),
                          [ Signal_assign ("R_out", Name "R_in") ] ) ],
                      [] ) ] } ] }

let base_entities =
  [ controller_entity; controller_arch; trans_entity; trans_arch;
    reg_entity; reg_arch ]

(* -- functional-unit entities -------------------------------------------- *)

let fu_entity_name fu_name = "FU_" ^ fu_name

(* A VHDL expression computing [op in1 in2] where the operation is
   directly expressible; otherwise a call to a named helper function
   (declared, not defined — the OCaml semantics in Fu_state is
   authoritative and Extract reads operations from the pragmas). *)
let op_expr (op : C.Ops.t) =
  let a = Name "IN1" and b = Name "IN2" in
  match op with
  | C.Ops.Add -> Binop (Add, a, b)
  | C.Ops.Sub -> Binop (Sub, a, b)
  | C.Ops.Mul -> Binop (Mul, a, b)
  | C.Ops.Addi n -> Binop (Add, a, Int n)
  | C.Ops.Subi n -> Binop (Sub, a, Int n)
  | C.Ops.Muli n -> Binop (Mul, a, Int n)
  | C.Ops.Pass -> a
  | C.Ops.Neg -> Unop (Neg, a)
  | C.Ops.Const c -> Int c
  | C.Ops.Mac -> Binop (Add, Name "m0", Binop (Mul, a, b))
  | other ->
    let sanitized =
      String.map
        (fun c -> if c = ':' then '_' else c)
        (C.Ops.to_string other)
    in
    Call ("csrtl_" ^ sanitized, [ a; b ])

let fu_arch (fu : C.Model.fu) =
  let l = fu.latency in
  let m i = Printf.sprintf "m%d" i in
  let vars =
    [ Variable_decl
        ( List.init l m, integer, Some (Name "DISC") ) ]
  in
  let shift =
    List.init (l - 1) (fun i ->
        let dst = l - 1 - i in
        Var_assign (m dst, Name (m (dst - 1))))
  in
  let op_branches =
    List.mapi
      (fun idx op ->
        let body =
          match op with
          | C.Ops.Mac ->
            (* accumulate, treating a DISC accumulator as zero *)
            [ If
                ( [ ( Binop (Eq, Name "m0", Name "DISC"),
                      [ Var_assign
                          ("m0", Binop (Mul, Name "IN1", Name "IN2")) ] ) ],
                  [ Var_assign
                      ( "m0",
                        Binop
                          ( Add,
                            Name "m0",
                            Binop (Mul, Name "IN1", Name "IN2") ) ) ] ) ]
          | _ -> [ Var_assign ("m0", op_expr op) ]
        in
        (Binop (Eq, Name "OP", Int idx), body))
      fu.ops
  in
  let stateful_singleton =
    match fu.ops with
    | [ op ] -> C.Ops.is_stateful op
    | _ -> List.exists C.Ops.is_stateful fu.ops && false
  in
  let idle_body =
    (* hold-on-idle for a pure accumulator unit, reset otherwise
       (Fu_state semantics) *)
    if stateful_singleton then [ Null_stmt ]
    else [ Var_assign ("m0", Name "DISC") ]
  in
  let compute =
    If
      ( [ ( Binop
              ( Or,
                Binop (Eq, Name "OP", Name "ILLEGAL"),
                Paren
                  (Binop
                     ( Or,
                       Binop (Eq, Name "IN1", Name "ILLEGAL"),
                       Binop (Eq, Name "IN2", Name "ILLEGAL") )) ),
            [ Var_assign ("m0", Name "ILLEGAL") ] );
          ( Binop
              ( And,
                Binop (Eq, Name "IN1", Name "DISC"),
                Binop
                  ( And,
                    Binop (Eq, Name "IN2", Name "DISC"),
                    Binop (Eq, Name "OP", Name "DISC") ) ),
            idle_body ) ]
        @ op_branches,
        [ Var_assign ("m0", Name "ILLEGAL") ] )
  in
  let body =
    [ Wait_until (Binop (Eq, Name "PH", Name "cm"));
      Signal_assign ("O", Name (m (l - 1))) ]
    @ shift
    @ [ (if fu.sticky_illegal then
           If
             ( [ ( Binop (Neq, Name "m0", Name "ILLEGAL"),
                   [ compute ] ) ],
               [] )
         else compute) ]
  in
  Architecture
    { arch_name = "transfer"; arch_entity = fu_entity_name fu.fu_name;
      arch_decls = [];
      arch_stmts =
        [ Proc
            { proc_label = None; sensitivity = []; proc_decls = vars; body }
        ] }

let fu_entity (fu : C.Model.fu) =
  Entity
    { ent_name = fu_entity_name fu.fu_name;
      generics = [];
      ports =
        [ { port_name = "PH"; mode = In; port_type = phase_t;
            port_default = None };
          { port_name = "OP"; mode = In; port_type = integer;
            port_default = None };
          { port_name = "IN1"; mode = In; port_type = integer;
            port_default = None };
          { port_name = "IN2"; mode = In; port_type = integer;
            port_default = None };
          { port_name = "O"; mode = Out; port_type = integer;
            port_default = Some (Name "DISC") } ] }

let fu_units (m : C.Model.t) =
  List.concat_map (fun fu -> [ fu_entity fu; fu_arch fu ]) m.fus

(* -- top-level structural architecture ----------------------------------- *)

let top (m : C.Model.t) =
  let ports =
    List.map
      (fun (i : C.Model.input) ->
        { port_name = mangle i.in_name; mode = In; port_type = integer;
          port_default = Some (Name "DISC") })
      m.inputs
    @ List.map
        (fun o ->
          { port_name = mangle o; mode = Out; port_type = resolved_integer;
            port_default = Some (Name "DISC") })
        m.outputs
  in
  let entity = Entity { ent_name = mangle m.name; generics = []; ports } in
  let decls =
    [ Signal_decl ([ "CS" ], natural, Some (Int 0));
      Signal_decl ([ "PH" ], phase_t, Some (Attr ("Phase", "High"))) ]
    @ List.map
        (fun b -> Signal_decl ([ mangle b ], resolved_integer, None))
        m.buses
    @ List.concat_map
        (fun (r : C.Model.register) ->
          [ Signal_decl
              ([ mangle (r.reg_name ^ ".in") ], resolved_integer, None);
            Signal_decl
              ([ mangle (r.reg_name ^ ".out") ], integer,
               Some (word_expr r.init)) ])
        m.registers
    @ List.concat_map
        (fun (f : C.Model.fu) ->
          [ Signal_decl
              ( [ mangle (f.fu_name ^ ".in1"); mangle (f.fu_name ^ ".in2");
                  mangle (f.fu_name ^ ".op") ],
                resolved_integer, None );
            Signal_decl ([ mangle (f.fu_name ^ ".out") ], integer, None) ])
        m.fus
  in
  let reg_instances =
    List.map
      (fun (r : C.Model.register) ->
        Instance
          { inst_label = mangle r.reg_name ^ "_proc"; component = "REG";
            generic_map = [];
            port_map =
              [ (None, Name "PH");
                (None, Name (mangle (r.reg_name ^ ".in")));
                (None, Name (mangle (r.reg_name ^ ".out"))) ] })
      m.registers
  in
  let fu_instances =
    List.map
      (fun (f : C.Model.fu) ->
        Instance
          { inst_label = mangle f.fu_name ^ "_proc";
            component = fu_entity_name f.fu_name;
            generic_map = [];
            port_map =
              [ (None, Name "PH");
                (None, Name (mangle (f.fu_name ^ ".op")));
                (None, Name (mangle (f.fu_name ^ ".in1")));
                (None, Name (mangle (f.fu_name ^ ".in2")));
                (None, Name (mangle (f.fu_name ^ ".out"))) ] })
      m.fus
  in
  let legs, selects = C.Model.all_legs m in
  let trans_instances =
    List.mapi
      (fun idx (l : C.Transfer.leg) ->
        let src = mangle (C.Transfer.endpoint_name l.src) in
        let dst = mangle (C.Transfer.endpoint_name l.dst) in
        Instance
          { inst_label = Printf.sprintf "%s_%s_%d_%d" src dst l.step idx;
            component = "TRANS";
            generic_map =
              [ (None, Int l.step); (None, Name (phase_name l.phase)) ];
            port_map =
              [ (None, Name "CS"); (None, Name "PH"); (None, Name src);
                (None, Name dst) ] })
      legs
  in
  let select_instances =
    List.mapi
      (fun idx (s : C.Transfer.op_select) ->
        let index =
          match C.Model.find_fu m s.sel_fu with
          | None -> -2
          | Some f ->
            let rec find i = function
              | [] -> -2
              | op :: rest ->
                if C.Ops.equal op s.sel_op then i else find (i + 1) rest
            in
            find 0 f.ops
        in
        Instance
          { inst_label =
              Printf.sprintf "opsel_%s_%d_%d" (mangle s.sel_fu) s.sel_step
                idx;
            component = "TRANS";
            generic_map =
              [ (None, Int s.sel_step); (None, Name (phase_name C.Phase.Rb)) ];
            port_map =
              [ (None, Name "CS"); (None, Name "PH"); (None, Int index);
                (None, Name (mangle (s.sel_fu ^ ".op"))) ] })
      selects
  in
  let controller_instance =
    Instance
      { inst_label = "CONTROL"; component = "CONTROLLER";
        generic_map = [ (None, Int m.cs_max) ];
        port_map = [ (None, Name "CS"); (None, Name "PH") ] }
  in
  let arch =
    Architecture
      { arch_name = "transfer"; arch_entity = mangle m.name;
        arch_decls = decls;
        arch_stmts =
          reg_instances @ fu_instances @ trans_instances @ select_instances
          @ [ controller_instance ] }
  in
  [ entity; arch ]

(* -- pragmas -------------------------------------------------------------- *)

let pragmas (m : C.Model.t) =
  (* The resource inventory in Rtm directive syntax; transfers and
     cs_max are real VHDL content and are NOT duplicated here. *)
  let rtm_lines =
    C.Rtm.to_string { m with transfers = [] }
    |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    (* cs_max lives in the CONTROLLER generic *)
    |> List.filter (fun l ->
           not (String.length l >= 5 && String.sub l 0 5 = "csmax"))
  in
  List.map (fun l -> Comment ("csrtl " ^ l)) rtm_lines

let design_file (m : C.Model.t) =
  pragmas m
  @ support_package
  @ [ Use_clause "work.csrtl_rt.all" ]
  @ base_entities
  @ fu_units m
  @ top m

let to_string m = Pp.to_string (design_file m)

(* -- self-checking architecture ------------------------------------------- *)

(* A checker process asserting the reference observation: at the first
   cycle of each following step the previous step's register updates
   are visible, so the expectations from [obs] can be compared
   directly.  Only changes are asserted, keeping testbenches for long
   runs compact. *)
let checker_process (m : C.Model.t) (obs : C.Observation.t) =
  let at_step_ra s =
    Binop
      ( And,
        Binop (Eq, Name "CS", Int s),
        Binop (Eq, Name "PH", Name (phase_name C.Phase.Ra)) )
  in
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in
  for s = 1 to m.cs_max - 1 do
    let asserts =
      List.filter_map
        (fun (name, arr) ->
          let v = arr.(s - 1) in
          let prev = if s = 1 then C.Word.disc else arr.(s - 2) in
          if C.Word.equal v prev then None
          else
            Some
              (Assert_stmt
                 ( Binop (Eq, Name (mangle (name ^ ".out")), word_expr v),
                   Printf.sprintf "step %d: %s /= %s" s name
                     (C.Word.to_string v) )))
        obs.C.Observation.regs
    in
    if asserts <> [] then begin
      emit (Wait_until (at_step_ra (s + 1)));
      List.iter emit asserts
    end
  done;
  emit Wait;
  Proc
    { proc_label = Some "checker"; sensitivity = []; proc_decls = [];
      body = List.rev !stmts }

(* Input drives as subset VHDL: entity inputs become architecture
   signals driven by unrolled processes, closing the design into a
   self-contained testbench any conformant simulator can run. *)
let input_driver (m : C.Model.t) (i : C.Model.input) =
  let name = mangle i.in_name in
  let body =
    match i.drive with
    | C.Model.Const v -> [ Signal_assign (name, word_expr v); Wait ]
    | C.Model.Schedule _ ->
      let assigns = ref [ Signal_assign (name, word_expr (C.Model.input_value i 1)) ] in
      for s = 2 to m.cs_max do
        let v = C.Model.input_value i s in
        if not (C.Word.equal v (C.Model.input_value i (s - 1))) then
          assigns :=
            Signal_assign (name, word_expr v)
            :: Wait_until
                 (Binop
                    ( And,
                      Binop (Eq, Name "CS", Int (s - 1)),
                      Binop (Eq, Name "PH", Name (phase_name C.Phase.Cr)) ))
            :: !assigns
      done;
      List.rev (Wait :: !assigns)
  in
  Proc
    { proc_label = Some ("drive_" ^ name); sensitivity = [];
      proc_decls = []; body }

let self_checking (m : C.Model.t) (obs : C.Observation.t) =
  let top = mangle m.name in
  List.map
    (fun unit_ ->
      match unit_ with
      | Entity e when e.ent_name = top ->
        (* close the design: inputs turn into internal signals *)
        Entity
          { e with
            ports =
              List.filter
                (fun (p : port) ->
                  not
                    (List.exists
                       (fun (i : C.Model.input) ->
                         mangle i.in_name = p.port_name)
                       m.inputs))
                e.ports }
      | Architecture a when a.arch_entity = top ->
        Architecture
          { a with
            arch_decls =
              a.arch_decls
              @ List.map
                  (fun (i : C.Model.input) ->
                    Signal_decl
                      ([ mangle i.in_name ], integer, Some (Name "DISC")))
                  m.inputs;
            arch_stmts =
              List.map (fun (i : C.Model.input) -> input_driver m i) m.inputs
              @ a.arch_stmts
              @ [ checker_process m obs ] }
      | _ -> unit_)
    (design_file m)

let self_checking_to_string m obs = Pp.to_string (self_checking m obs)
