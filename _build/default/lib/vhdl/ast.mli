(** Abstract syntax of the paper's VHDL subset.

    Covers exactly what the paper's models need: a package with an
    enumeration type, constants and a resolution function; entities
    with generics and ports; architectures containing signal
    declarations, processes (sensitivity-list or wait-statement
    style) and component instantiations with generic/port maps.
    Sequential statements include signal/variable assignment,
    if/elsif/else, wait (until / on / plain), for loops and return
    (the latter two for resolution-function bodies). *)

type binop =
  | And | Or
  | Eq | Neq | Lt | Le | Gt | Ge
  | Add | Sub | Mul
  | Concat

type unop = Not | Neg

type expr =
  | Int of int
  | Str of string
  | Name of string
  | Attr of string * string  (** [Phase'High] *)
  | Attr_call of string * string * expr list  (** [Phase'Succ(PH)] *)
  | Index of string * expr  (** [v(i)] — array indexing or call-with-one-arg *)
  | Call of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Paren of expr

type type_name = {
  base : string;  (** [Integer], [Natural], [Phase], ... *)
  resolution : string option;  (** [resolved Integer] *)
}

type mode = In | Out | Inout

type port = {
  port_name : string;
  mode : mode;
  port_type : type_name;
  port_default : expr option;
}

type generic = {
  gen_name : string;
  gen_type : string;
  gen_default : expr option;
}

type stmt =
  | Wait  (** [wait;] — suspend forever *)
  | Wait_on of string list
  | Wait_until of expr
  | Signal_assign of string * expr
  | Var_assign of string * expr
  | If of (expr * stmt list) list * stmt list
      (** condition/branch chain ([if]/[elsif]...), else branch *)
  | For of string * expr * expr * stmt list  (** [for i in a to b loop] *)
  | Return of expr
  | Assert_stmt of expr * string
      (** [assert cond report "message" severity error;] *)
  | Null_stmt

type object_decl =
  | Signal_decl of string list * type_name * expr option
  | Variable_decl of string list * type_name * expr option
  | Constant_decl of string * type_name * expr

type process = {
  proc_label : string option;
  sensitivity : string list;  (** empty for wait-statement processes *)
  proc_decls : object_decl list;
  body : stmt list;
}

type assoc = (string option * expr) list
(** Positional or named association lists for maps. *)

type concurrent =
  | Proc of process
  | Instance of {
      inst_label : string;
      component : string;
      generic_map : assoc;
      port_map : assoc;
    }
  | Concurrent_assign of string * expr

type subprogram = {
  fun_name : string;
  fun_params : (string list * type_name) list;
  fun_return : string;
  fun_decls : object_decl list;
  fun_body : stmt list;
}

type package_decl =
  | Pkg_type_enum of string * string list
  | Pkg_type_array of string * string * string
      (** [type Name is array (Index range <>) of Elem] *)
  | Pkg_subtype of string * type_name
  | Pkg_constant of string * type_name * expr
  | Pkg_function of subprogram
  | Pkg_function_decl of string  (** forward declaration, body elsewhere *)
  | Pkg_comment of string

type design_unit =
  | Entity of {
      ent_name : string;
      generics : generic list;
      ports : port list;
    }
  | Architecture of {
      arch_name : string;
      arch_entity : string;
      arch_decls : object_decl list;
      arch_stmts : concurrent list;
    }
  | Package of { pkg_name : string; pkg_decls : package_decl list }
  | Package_body of { pkgb_name : string; pkgb_decls : package_decl list }
  | Use_clause of string
  | Comment of string  (** free-standing comment line, incl. pragmas *)

type design_file = design_unit list

val plain : string -> type_name
val resolved : string -> string -> type_name
(** [resolved f base]: type marked with resolution function [f]. *)
