exception Parse_error of int * string

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let line st = snd st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st fmt =
  Format.kasprintf (fun m -> raise (Parse_error (line st, m))) fmt

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected %s, found %s"
      (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek st))

let lc = String.lowercase_ascii

(* Keyword test: identifiers match case-insensitively. *)
let at_kw st kw =
  match peek st with Lexer.Id s -> lc s = kw | _ -> false

let expect_kw st kw =
  if at_kw st kw then advance st
  else
    fail st "expected keyword %s, found %s" kw
      (Lexer.token_to_string (peek st))

let ident st =
  match peek st with
  | Lexer.Id s ->
    advance st;
    s
  | t -> fail st "expected identifier, found %s" (Lexer.token_to_string t)

let ident_list st =
  let rec go acc =
    let id = ident st in
    if peek st = Lexer.Comma then begin
      advance st;
      go (id :: acc)
    end
    else List.rev (id :: acc)
  in
  go []

let keywords =
  [ "entity"; "architecture"; "package"; "body"; "is"; "begin"; "end";
    "process"; "signal"; "variable"; "constant"; "type"; "subtype"; "port";
    "generic"; "map"; "wait"; "until"; "on"; "if"; "then"; "elsif"; "else";
    "for"; "loop"; "return"; "null"; "function"; "in"; "out"; "inout";
    "and"; "or"; "not"; "to"; "use"; "of"; "array"; "range";
    "assert"; "report"; "severity" ]

let is_keyword s = List.mem (lc s) keywords

(* -- expressions -------------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  let a = parse_and st in
  if at_kw st "or" then begin
    advance st;
    Ast.Binop (Ast.Or, a, parse_or st)
  end
  else a

and parse_and st =
  let a = parse_rel st in
  if at_kw st "and" then begin
    advance st;
    Ast.Binop (Ast.And, a, parse_and st)
  end
  else a

and parse_rel st =
  let a = parse_add st in
  let op =
    match peek st with
    | Lexer.Eq -> Some Ast.Eq
    | Lexer.Neq -> Some Ast.Neq
    | Lexer.Lt -> Some Ast.Lt
    | Lexer.Leq -> Some Ast.Le
    | Lexer.Gt -> Some Ast.Gt
    | Lexer.Geq -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> a
  | Some op ->
    advance st;
    Ast.Binop (op, a, parse_add st)

and parse_add st =
  let rec go a =
    match peek st with
    | Lexer.Plus ->
      advance st;
      go (Ast.Binop (Ast.Add, a, parse_mul st))
    | Lexer.Minus ->
      advance st;
      go (Ast.Binop (Ast.Sub, a, parse_mul st))
    | Lexer.Amp ->
      advance st;
      go (Ast.Binop (Ast.Concat, a, parse_mul st))
    | _ -> a
  in
  go (parse_mul st)

and parse_mul st =
  let rec go a =
    match peek st with
    | Lexer.Star ->
      advance st;
      go (Ast.Binop (Ast.Mul, a, parse_unary st))
    | _ -> a
  in
  go (parse_unary st)

and parse_unary st =
  if at_kw st "not" then begin
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  end
  else
    match peek st with
    | Lexer.Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
    | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Num n ->
    advance st;
    Ast.Int n
  | Lexer.Str s ->
    advance st;
    Ast.Str s
  | Lexer.Lparen ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.Rparen;
    Ast.Paren e
  | Lexer.Id _ ->
    let name = ident st in
    (match peek st with
     | Lexer.Tick ->
       advance st;
       let attr = ident st in
       if peek st = Lexer.Lparen then begin
         advance st;
         let args = parse_args st in
         expect st Lexer.Rparen;
         Ast.Attr_call (name, attr, args)
       end
       else Ast.Attr (name, attr)
     | Lexer.Lparen ->
       advance st;
       let args = parse_args st in
       expect st Lexer.Rparen;
       (match args with
        | [ one ] -> Ast.Index (name, one)
        | _ -> Ast.Call (name, args))
     | _ -> Ast.Name name)
  | t -> fail st "expected expression, found %s" (Lexer.token_to_string t)

and parse_args st =
  let rec go acc =
    let e = parse_expr st in
    if peek st = Lexer.Comma then begin
      advance st;
      go (e :: acc)
    end
    else List.rev (e :: acc)
  in
  go []

(* -- types & declarations ------------------------------------------------ *)

let parse_type_name st =
  let first = ident st in
  (* Two consecutive identifiers: resolution function + base type. *)
  match peek st with
  | Lexer.Id s when not (is_keyword s) ->
    advance st;
    { Ast.base = s; resolution = Some first }
  | _ -> { Ast.base = first; resolution = None }

let parse_init_opt st =
  if peek st = Lexer.Assign then begin
    advance st;
    Some (parse_expr st)
  end
  else None

let parse_object_decl st =
  if at_kw st "signal" then begin
    advance st;
    let names = ident_list st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    let init = parse_init_opt st in
    expect st Lexer.Semi;
    Some (Ast.Signal_decl (names, t, init))
  end
  else if at_kw st "variable" then begin
    advance st;
    let names = ident_list st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    let init = parse_init_opt st in
    expect st Lexer.Semi;
    Some (Ast.Variable_decl (names, t, init))
  end
  else if at_kw st "constant" then begin
    advance st;
    let name = ident st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    expect st Lexer.Assign;
    let e = parse_expr st in
    expect st Lexer.Semi;
    Some (Ast.Constant_decl (name, t, e))
  end
  else None

(* -- statements ----------------------------------------------------------- *)

let rec parse_stmt st =
  if at_kw st "wait" then begin
    advance st;
    if at_kw st "until" then begin
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Wait_until e
    end
    else if at_kw st "on" then begin
      advance st;
      let sigs = ident_list st in
      expect st Lexer.Semi;
      Ast.Wait_on sigs
    end
    else begin
      expect st Lexer.Semi;
      Ast.Wait
    end
  end
  else if at_kw st "if" then parse_if st
  else if at_kw st "for" then begin
    advance st;
    let v = ident st in
    expect_kw st "in";
    let lo = parse_expr st in
    expect_kw st "to";
    let hi = parse_expr st in
    expect_kw st "loop";
    let body = parse_stmts st in
    expect_kw st "end";
    expect_kw st "loop";
    expect st Lexer.Semi;
    Ast.For (v, lo, hi, body)
  end
  else if at_kw st "return" then begin
    advance st;
    let e = parse_expr st in
    expect st Lexer.Semi;
    Ast.Return e
  end
  else if at_kw st "assert" then begin
    advance st;
    let cond = parse_expr st in
    expect_kw st "report";
    let msg =
      match peek st with
      | Lexer.Str s ->
        advance st;
        s
      | t -> fail st "expected a report string, found %s"
               (Lexer.token_to_string t)
    in
    expect_kw st "severity";
    let _level = ident st in
    expect st Lexer.Semi;
    Ast.Assert_stmt (cond, msg)
  end
  else if at_kw st "null" then begin
    advance st;
    expect st Lexer.Semi;
    Ast.Null_stmt
  end
  else begin
    let name = ident st in
    match peek st with
    | Lexer.Leq ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Signal_assign (name, e)
    | Lexer.Assign ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Var_assign (name, e)
    | t ->
      fail st "expected <= or := after %s, found %s" name
        (Lexer.token_to_string t)
  end

and parse_if st =
  expect_kw st "if";
  let cond = parse_expr st in
  expect_kw st "then";
  let body = parse_stmts st in
  let rec branches acc =
    if at_kw st "elsif" then begin
      advance st;
      let c = parse_expr st in
      expect_kw st "then";
      let b = parse_stmts st in
      branches ((c, b) :: acc)
    end
    else if at_kw st "else" then begin
      advance st;
      let b = parse_stmts st in
      expect_kw st "end";
      expect_kw st "if";
      expect st Lexer.Semi;
      (List.rev acc, b)
    end
    else begin
      expect_kw st "end";
      expect_kw st "if";
      expect st Lexer.Semi;
      (List.rev acc, [])
    end
  in
  let rest, els = branches [] in
  Ast.If ((cond, body) :: rest, els)

and at_stmt_start st =
  match peek st with
  | Lexer.Id s ->
    not
      (List.mem (lc s)
         [ "end"; "elsif"; "else"; "begin"; "process"; "entity";
           "architecture" ])
  | _ -> false

and parse_stmts st =
  let rec go acc =
    if at_stmt_start st then go (parse_stmt st :: acc) else List.rev acc
  in
  go []

(* -- concurrent statements -------------------------------------------------- *)

let parse_assoc st =
  let rec go acc =
    (* Named association: Id => expr; otherwise positional. *)
    let item =
      match peek st, fst st.toks.(st.pos + 1) with
      | Lexer.Id n, Lexer.Arrow ->
        advance st;
        advance st;
        (Some n, parse_expr st)
      | _, _ -> (None, parse_expr st)
    in
    if peek st = Lexer.Comma then begin
      advance st;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_process st label =
  expect_kw st "process";
  let sensitivity =
    if peek st = Lexer.Lparen then begin
      advance st;
      let l = ident_list st in
      expect st Lexer.Rparen;
      l
    end
    else []
  in
  if at_kw st "is" then advance st;
  let rec decls acc =
    match parse_object_decl st with
    | Some d -> decls (d :: acc)
    | None -> List.rev acc
  in
  let proc_decls = decls [] in
  expect_kw st "begin";
  let body = parse_stmts st in
  expect_kw st "end";
  expect_kw st "process";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  Ast.Proc { proc_label = label; sensitivity; proc_decls; body }

let parse_instance st label =
  let component = ident st in
  let generic_map =
    if at_kw st "generic" then begin
      advance st;
      expect_kw st "map";
      expect st Lexer.Lparen;
      let a = parse_assoc st in
      expect st Lexer.Rparen;
      a
    end
    else []
  in
  let port_map =
    if at_kw st "port" then begin
      advance st;
      expect_kw st "map";
      expect st Lexer.Lparen;
      let a = parse_assoc st in
      expect st Lexer.Rparen;
      a
    end
    else []
  in
  expect st Lexer.Semi;
  Ast.Instance { inst_label = label; component; generic_map; port_map }

let parse_concurrent st =
  if at_kw st "process" then parse_process st None
  else begin
    let name = ident st in
    match peek st with
    | Lexer.Colon ->
      advance st;
      if at_kw st "process" then parse_process st (Some name)
      else parse_instance st name
    | Lexer.Leq ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Concurrent_assign (name, e)
    | t ->
      fail st "expected : or <= after %s, found %s" name
        (Lexer.token_to_string t)
  end

(* -- design units -------------------------------------------------------- *)

let parse_generics st =
  if at_kw st "generic" then begin
    advance st;
    expect st Lexer.Lparen;
    let rec go acc =
      let name = ident st in
      expect st Lexer.Colon;
      let ty = ident st in
      let default = parse_init_opt st in
      let g = { Ast.gen_name = name; gen_type = ty; gen_default = default } in
      if peek st = Lexer.Semi then begin
        advance st;
        go (g :: acc)
      end
      else List.rev (g :: acc)
    in
    let gs = go [] in
    expect st Lexer.Rparen;
    expect st Lexer.Semi;
    gs
  end
  else []

let parse_ports st =
  if at_kw st "port" then begin
    advance st;
    expect st Lexer.Lparen;
    let rec go acc =
      let names = ident_list st in
      expect st Lexer.Colon;
      let mode =
        if at_kw st "in" then (advance st; Ast.In)
        else if at_kw st "out" then (advance st; Ast.Out)
        else if at_kw st "inout" then (advance st; Ast.Inout)
        else Ast.In
      in
      let ty = parse_type_name st in
      let default = parse_init_opt st in
      let ps =
        List.map
          (fun n ->
            { Ast.port_name = n; mode; port_type = ty;
              port_default = default })
          names
      in
      let acc = acc @ ps in
      if peek st = Lexer.Semi then begin
        advance st;
        go acc
      end
      else acc
    in
    let ps = go [] in
    expect st Lexer.Rparen;
    expect st Lexer.Semi;
    ps
  end
  else []

let parse_entity st =
  expect_kw st "entity";
  let name = ident st in
  expect_kw st "is";
  let generics = parse_generics st in
  let ports = parse_ports st in
  expect_kw st "end";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | Lexer.Id s when lc s = "entity" -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  Ast.Entity { ent_name = name; generics; ports }

let parse_architecture st =
  expect_kw st "architecture";
  let arch_name = ident st in
  expect_kw st "of";
  let arch_entity = ident st in
  expect_kw st "is";
  let rec decls acc =
    match parse_object_decl st with
    | Some d -> decls (d :: acc)
    | None -> List.rev acc
  in
  let arch_decls = decls [] in
  expect_kw st "begin";
  let rec stmts acc =
    if at_kw st "end" then List.rev acc
    else stmts (parse_concurrent st :: acc)
  in
  let arch_stmts = stmts [] in
  expect_kw st "end";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  Ast.Architecture { arch_name; arch_entity; arch_decls; arch_stmts }

let parse_subprogram st =
  expect_kw st "function";
  let fun_name = ident st in
  expect st Lexer.Lparen;
  let rec params acc =
    let names = ident_list st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    let p = (names, t) in
    if peek st = Lexer.Semi then begin
      advance st;
      params (p :: acc)
    end
    else List.rev (p :: acc)
  in
  let fun_params = params [] in
  expect st Lexer.Rparen;
  expect_kw st "return";
  let fun_return = ident st in
  if at_kw st "is" then begin
    advance st;
    let rec decls acc =
      match parse_object_decl st with
      | Some d -> decls (d :: acc)
      | None -> List.rev acc
    in
    let fun_decls = decls [] in
    expect_kw st "begin";
    let fun_body = parse_stmts st in
    expect_kw st "end";
    (match peek st with
     | Lexer.Id s when not (is_keyword s) -> advance st
     | _ -> ());
    expect st Lexer.Semi;
    Ast.Pkg_function { fun_name; fun_params; fun_return; fun_decls; fun_body }
  end
  else begin
    expect st Lexer.Semi;
    Ast.Pkg_function_decl fun_name
  end

let parse_package_decl st =
  if at_kw st "type" then begin
    advance st;
    let name = ident st in
    expect_kw st "is";
    if at_kw st "array" then begin
      advance st;
      expect st Lexer.Lparen;
      let index = ident st in
      expect_kw st "range";
      expect st Lexer.Lt;
      expect st Lexer.Gt;
      expect st Lexer.Rparen;
      expect_kw st "of";
      let elem = ident st in
      expect st Lexer.Semi;
      Some (Ast.Pkg_type_array (name, index, elem))
    end
    else begin
      expect st Lexer.Lparen;
      let items = ident_list st in
      expect st Lexer.Rparen;
      expect st Lexer.Semi;
      Some (Ast.Pkg_type_enum (name, items))
    end
  end
  else if at_kw st "subtype" then begin
    advance st;
    let name = ident st in
    expect_kw st "is";
    let t = parse_type_name st in
    expect st Lexer.Semi;
    Some (Ast.Pkg_subtype (name, t))
  end
  else if at_kw st "constant" then begin
    advance st;
    let name = ident st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    expect st Lexer.Assign;
    let e = parse_expr st in
    expect st Lexer.Semi;
    Some (Ast.Pkg_constant (name, t, e))
  end
  else if at_kw st "function" then Some (parse_subprogram st)
  else None

let parse_package st =
  expect_kw st "package";
  let is_body = at_kw st "body" in
  if is_body then advance st;
  let name = ident st in
  expect_kw st "is";
  let rec decls acc =
    match parse_package_decl st with
    | Some d -> decls (d :: acc)
    | None -> List.rev acc
  in
  let ds = decls [] in
  expect_kw st "end";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  if is_body then Ast.Package_body { pkgb_name = name; pkgb_decls = ds }
  else Ast.Package { pkg_name = name; pkg_decls = ds }

let parse_use st =
  expect_kw st "use";
  let buf = Buffer.create 16 in
  Buffer.add_string buf (ident st);
  let rec go () =
    match peek st with
    | Lexer.Dot ->
      advance st;
      Buffer.add_char buf '.';
      Buffer.add_string buf (ident st);
      go ()
    | _ -> ()
  in
  go ();
  expect st Lexer.Semi;
  Ast.Use_clause (Buffer.contents buf)

let parse_design_file st =
  let rec go acc =
    if peek st = Lexer.Eof then List.rev acc
    else if at_kw st "entity" then go (parse_entity st :: acc)
    else if at_kw st "architecture" then go (parse_architecture st :: acc)
    else if at_kw st "package" then go (parse_package st :: acc)
    else if at_kw st "use" then go (parse_use st :: acc)
    else fail st "expected a design unit, found %s"
        (Lexer.token_to_string (peek st))
  in
  go []

let design_file src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (l, m) -> raise (Parse_error (l, m))
  in
  let st = { toks; pos = 0 } in
  parse_design_file st

let expr src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (l, m) -> raise (Parse_error (l, m))
  in
  let st = { toks; pos = 0 } in
  let e = parse_expr st in
  if peek st <> Lexer.Eof then fail st "trailing tokens after expression";
  e
