(** Dataflow graphs extracted from IR programs.

    One node per operation; variable reassignment is resolved by
    renaming during construction, so the graph is in SSA form.
    Trivial copies ([x := y], [x := 5]) are forwarded away. *)

type operand =
  | Node of int  (** result of another node *)
  | In of string  (** program input *)
  | Lit of int  (** literal constant *)

type node = {
  id : int;
  op : Csrtl_core.Ops.t;
  args : operand list;  (** length = arity *)
}

type t = {
  program : Ir.program;
  nodes : node array;  (** topologically ordered: args refer backwards *)
  out_map : (string * operand) list;  (** program output -> producing value *)
}

val of_program : Ir.program -> t

val preds : node -> int list
(** Ids of nodes feeding this node. *)

val succs : t -> int -> int list
(** Ids of nodes consuming node [id]. *)

val depth : t -> int
(** Longest dependency chain (in nodes). *)

val size : t -> int

val pp : Format.formatter -> t -> unit
