module C = Csrtl_core

type expr =
  | Var of string
  | Lit of int
  | Bin of C.Ops.t * expr * expr
  | Un of C.Ops.t * expr

type stmt = { def : string; rhs : expr }

type program = {
  pname : string;
  inputs : string list;
  stmts : stmt list;
  outputs : string list;
}

exception Ill_formed of string

let fail fmt = Format.kasprintf (fun m -> raise (Ill_formed m)) fmt

let rec free_vars = function
  | Var v -> [ v ]
  | Lit _ -> []
  | Bin (_, a, b) -> free_vars a @ free_vars b
  | Un (_, a) -> free_vars a

let validate p =
  if p.stmts = [] then fail "program %s has no statements" p.pname;
  let defined = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace defined i ()) p.inputs;
  let rec check_expr = function
    | Var v ->
      if not (Hashtbl.mem defined v) then
        fail "variable %s used before definition" v
    | Lit _ -> ()
    | Bin (op, a, b) ->
      if C.Ops.arity op <> 2 then
        fail "operation %s is not binary" (C.Ops.to_string op);
      check_expr a;
      check_expr b
    | Un (op, a) ->
      if C.Ops.arity op <> 1 then
        fail "operation %s is not unary" (C.Ops.to_string op);
      check_expr a
  in
  List.iter
    (fun s ->
      check_expr s.rhs;
      Hashtbl.replace defined s.def ())
    p.stmts;
  List.iter
    (fun o ->
      if not (Hashtbl.mem defined o) then fail "output %s never assigned" o)
    p.outputs

let eval p input_values =
  validate p;
  let env = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match List.assoc_opt i input_values with
      | Some v -> Hashtbl.replace env i (C.Word.mask v)
      | None -> fail "missing input value for %s" i)
    p.inputs;
  let rec go = function
    | Var v -> Hashtbl.find env v
    | Lit c -> C.Word.mask c
    | Bin (op, a, b) -> C.Ops.eval op [| go a; go b |]
    | Un (op, a) -> C.Ops.eval op [| go a |]
  in
  List.iter (fun s -> Hashtbl.replace env s.def (go s.rhs)) p.stmts;
  List.map (fun o -> (o, Hashtbl.find env o)) p.outputs

let rec pp_expr ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Lit c -> Format.pp_print_int ppf c
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (C.Ops.to_string op) pp_expr b
  | Un (op, a) -> Format.fprintf ppf "%s(%a)" (C.Ops.to_string op) pp_expr a

let pp ppf p =
  Format.fprintf ppf "@[<v>program %s(%s) -> (%s)@," p.pname
    (String.concat ", " p.inputs)
    (String.concat ", " p.outputs);
  List.iter
    (fun s -> Format.fprintf ppf "  %s := %a@," s.def pp_expr s.rhs)
    p.stmts;
  Format.fprintf ppf "@]"
