module C = Csrtl_core

type binding = {
  schedule : Sched.t;
  model : C.Model.t;
  node_fu : (int * string) list;
  node_reg : (int * string) list;
  registers_used : int;
  copy_steps : int;
}

let fail fmt = Format.kasprintf (fun m -> raise (Sched.Unschedulable m)) fmt

(* per-step bus slot bookkeeping (reads and writes budgeted apart) *)
type bus_slots = {
  buses : int;
  reads : (int, int) Hashtbl.t;
  writes : (int, int) Hashtbl.t;
}

let fresh_slots buses =
  { buses; reads = Hashtbl.create 32; writes = Hashtbl.create 32 }

let used tbl step = Option.value ~default:0 (Hashtbl.find_opt tbl step)

let take_read slots step =
  let slot = used slots.reads step in
  if slot >= slots.buses then fail "bus overflow (reads) at step %d" step;
  Hashtbl.replace slots.reads step (slot + 1);
  slot

let take_write slots step =
  let slot = used slots.writes step in
  if slot >= slots.buses then fail "bus overflow (writes) at step %d" step;
  Hashtbl.replace slots.writes step (slot + 1);
  slot

let can_read slots step = used slots.reads step < slots.buses
let can_write slots step = used slots.writes step < slots.buses

let synthesize ?(reg_alloc = `Left_edge) (sched : Sched.t) =
  let dfg = sched.Sched.dfg in
  let res = sched.Sched.resources in
  let nodes = dfg.Dfg.nodes in
  let n = Array.length nodes in
  (* ---- unit binding: first fit within each class ---- *)
  let instance_windows : (string, (int * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let node_fu = Array.make n "" in
  Array.iter
    (fun (nd : Dfg.node) ->
      let cls = Sched.class_of res nd.Dfg.op in
      let r = sched.Sched.read_step.(nd.id) in
      let window =
        if cls.Sched.pipelined then (r, r)
        else (r, r + cls.Sched.latency - 1)
      in
      let rec try_instance i =
        if i >= cls.Sched.count then
          fail "class %s has no free instance for node %d" cls.Sched.cls_name
            nd.id
        else begin
          let name = Printf.sprintf "%s%d" cls.Sched.cls_name i in
          let windows =
            match Hashtbl.find_opt instance_windows name with
            | Some w -> w
            | None ->
              let w = ref [] in
              Hashtbl.replace instance_windows name w;
              w
          in
          let overlap (a1, a2) (b1, b2) = a1 <= b2 && b1 <= a2 in
          if List.exists (overlap window) !windows then try_instance (i + 1)
          else begin
            windows := window :: !windows;
            node_fu.(nd.id) <- name
          end
        end
      in
      try_instance 0)
    nodes;
  (* ---- output copy scheduling (COPY unit, one instance) ---- *)
  let slots = fresh_slots res.Sched.buses in
  (* replay the main schedule's bus usage *)
  Array.iter
    (fun (nd : Dfg.node) ->
      let cls = Sched.class_of res nd.Dfg.op in
      let r = sched.Sched.read_step.(nd.id) in
      for _ = 1 to C.Ops.arity nd.Dfg.op do
        ignore (take_read slots r)
      done;
      ignore (take_write slots (r + cls.Sched.latency)))
    nodes;
  let copy_busy = Hashtbl.create 8 in
  let copy_sched =
    List.map
      (fun (o, operand) ->
        let earliest =
          match operand with
          | Dfg.Node i ->
            Sched.write_step sched i + 1
          | Dfg.In _ | Dfg.Lit _ -> 1
        in
        let rec place s =
          if
            can_read slots s
            && can_write slots (s + 1)
            && not (Hashtbl.mem copy_busy s)
          then begin
            ignore (take_read slots s);
            ignore (take_write slots (s + 1));
            Hashtbl.replace copy_busy s ();
            (o, operand, s)
          end
          else place (s + 1)
        in
        place earliest)
      dfg.Dfg.out_map
  in
  let main_steps = sched.Sched.n_steps in
  let cs_max =
    List.fold_left
      (fun acc (_, _, s) -> max acc (s + 1))
      (max main_steps 1) copy_sched
  in
  (* ---- liveness and left-edge register allocation ---- *)
  let last_use = Array.make n 0 in
  Array.iter
    (fun (nd : Dfg.node) ->
      List.iter
        (fun p ->
          last_use.(p) <- max last_use.(p) sched.Sched.read_step.(nd.id))
        (Dfg.preds nd))
    nodes;
  List.iter
    (fun (_, operand, s) ->
      match operand with
      | Dfg.Node i -> last_use.(i) <- max last_use.(i) s
      | Dfg.In _ | Dfg.Lit _ -> ())
    copy_sched;
  let intervals =
    Array.to_list nodes
    |> List.map (fun (nd : Dfg.node) ->
           let birth = Sched.write_step sched nd.id in
           (nd.id, birth, max birth last_use.(nd.id)))
    |> List.sort (fun (_, b1, _) (_, b2, _) -> Int.compare b1 b2)
  in
  (* Left-edge with two constraints: the previous value's reads must
     be over (death <= birth — a read at [ra] and a latch at [cr] may
     share a step), and the write steps must differ (two latches into
     one register in the same step conflict). *)
  let reg_state = ref [] in  (* per register: (last write step, death) *)
  let node_reg = Array.make n "" in
  List.iter
    (fun (id, birth, death) ->
      let rec fit = function
        | [] ->
          let idx = List.length !reg_state in
          reg_state := !reg_state @ [ ref (birth, death) ];
          idx
        | st :: rest ->
          let last_write, d = !st in
          if d <= birth && last_write < birth then begin
            st := (birth, death);
            List.length !reg_state - List.length rest - 1
          end
          else fit rest
      in
      let idx =
        match reg_alloc with
        | `Left_edge -> fit !reg_state
        | `Naive ->
          (* one register per value: the sharing baseline the
             left-edge ablation is measured against *)
          let idx = List.length !reg_state in
          reg_state := !reg_state @ [ ref (birth, death) ];
          idx
      in
      node_reg.(id) <- Printf.sprintf "r%d" idx)
    intervals;
  let registers_used = List.length !reg_state in
  (* ---- literal pool ---- *)
  let literals = Hashtbl.create 8 in
  let note_lit c = if not (Hashtbl.mem literals c) then
      Hashtbl.replace literals c (Printf.sprintf "c%d" (Hashtbl.length literals))
  in
  Array.iter
    (fun (nd : Dfg.node) ->
      List.iter
        (function Dfg.Lit c -> note_lit c | Dfg.Node _ | Dfg.In _ -> ())
        nd.Dfg.args)
    nodes;
  List.iter
    (fun (_, operand, _) ->
      match operand with
      | Dfg.Lit c -> note_lit c
      | Dfg.Node _ | Dfg.In _ -> ())
    copy_sched;
  let source_of = function
    | Dfg.Node i -> C.Transfer.From_reg node_reg.(i)
    | Dfg.In x -> C.Transfer.From_input x
    | Dfg.Lit c -> C.Transfer.From_reg (Hashtbl.find literals c)
  in
  (* ---- emit the model ---- *)
  let b =
    C.Builder.create ~name:dfg.Dfg.program.Ir.pname ~cs_max ()
  in
  List.iter (fun x -> C.Builder.input b x) dfg.Dfg.program.Ir.inputs;
  List.iter (fun o -> C.Builder.output b o) dfg.Dfg.program.Ir.outputs;
  for i = 0 to registers_used - 1 do
    C.Builder.reg b (Printf.sprintf "r%d" i)
  done;
  Hashtbl.fold (fun c name acc -> (name, c) :: acc) literals []
  |> List.sort compare
  |> List.iter (fun (name, c) -> C.Builder.reg b ~init:(C.Word.mask c) name);
  for i = 0 to res.Sched.buses - 1 do
    C.Builder.bus b (Printf.sprintf "b%d" i)
  done;
  (* unit declarations: the operations each instance actually runs *)
  let instance_ops = Hashtbl.create 8 in
  Array.iter
    (fun (nd : Dfg.node) ->
      let name = node_fu.(nd.id) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt instance_ops name) in
      if not (List.exists (C.Ops.equal nd.Dfg.op) prev) then
        Hashtbl.replace instance_ops name (prev @ [ nd.Dfg.op ]))
    nodes;
  let sorted_instances =
    Hashtbl.fold (fun name ops acc -> (name, ops) :: acc) instance_ops []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, ops) ->
      let cls =
        List.find
          (fun (c : Sched.fu_class) ->
            String.length name >= String.length c.Sched.cls_name
            && String.sub name 0 (String.length c.Sched.cls_name)
               = c.Sched.cls_name)
          res.Sched.classes
      in
      C.Builder.unit_ b ~latency:cls.Sched.latency
        ~pipelined:cls.Sched.pipelined ~ops name)
    sorted_instances;
  if copy_sched <> [] then C.Builder.unit_ b ~ops:[ C.Ops.Pass ] "COPY";
  (* transfers, taking bus slots in the same per-step order *)
  Hashtbl.reset slots.reads;
  Hashtbl.reset slots.writes;
  let bus_name i = Printf.sprintf "b%d" i in
  Array.iter
    (fun (nd : Dfg.node) ->
      let r = sched.Sched.read_step.(nd.id) in
      let w = Sched.write_step sched nd.id in
      let wbus = bus_name (take_write slots w) in
      let dst = C.Transfer.To_reg node_reg.(nd.id) in
      match nd.Dfg.args with
      | [ a ] ->
        C.Builder.unary ~op:nd.Dfg.op b ~fu:node_fu.(nd.id)
          ~a:(source_of a, bus_name (take_read slots r))
          ~read:r ~write:(w, wbus) ~dst
      | [ a; b2 ] ->
        C.Builder.binary ~op:nd.Dfg.op b ~fu:node_fu.(nd.id)
          ~a:(source_of a, bus_name (take_read slots r))
          ~b:(source_of b2, bus_name (take_read slots r))
          ~read:r ~write:(w, wbus) ~dst
      | [] | _ :: _ :: _ :: _ ->
        fail "node %d has unsupported arity" nd.id)
    nodes;
  List.iter
    (fun (o, operand, s) ->
      C.Builder.unary ~op:C.Ops.Pass b ~fu:"COPY"
        ~a:(source_of operand, bus_name (take_read slots s))
        ~read:s
        ~write:(s + 1, bus_name (take_write slots (s + 1)))
        ~dst:(C.Transfer.To_output o))
    copy_sched;
  let model = C.Builder.finish b in
  { schedule = sched; model;
    node_fu = Array.to_list (Array.mapi (fun i f -> (i, f)) node_fu);
    node_reg = Array.to_list (Array.mapi (fun i r -> (i, r)) node_reg);
    registers_used;
    copy_steps = cs_max - main_steps }

let pp_report ppf b =
  Format.fprintf ppf
    "@[<v>%s: %d ops in %d steps (+%d copy), %d registers, %d buses, units: %s@]"
    b.schedule.Sched.dfg.Dfg.program.Ir.pname
    (Array.length b.schedule.Sched.dfg.Dfg.nodes)
    b.schedule.Sched.n_steps b.copy_steps b.registers_used
    b.schedule.Sched.resources.Sched.buses
    (String.concat ", "
       (List.sort_uniq String.compare (List.map snd b.node_fu)))
