module C = Csrtl_core

type t = {
  program : Ir.program;
  dfg : Dfg.t;
  schedule : Sched.t;
  binding : Synth.binding;
}

let compile ?(resources = Sched.default_resources ())
    ?(scheduler = `List) program =
  let dfg = Dfg.of_program program in
  let schedule =
    match scheduler with
    | `List -> Sched.list_schedule resources dfg
    | `Force_directed -> fst (Fds.schedule resources dfg)
  in
  (match Sched.verify schedule with
   | Ok () -> ()
   | Error es ->
     raise (Sched.Unschedulable (String.concat "; " es)));
  let binding = Synth.synthesize schedule in
  { program; dfg; schedule; binding }

let with_inputs (m : C.Model.t) values =
  { m with
    inputs =
      List.map
        (fun (i : C.Model.input) ->
          match List.assoc_opt i.in_name values with
          | Some v -> { i with drive = C.Model.Const (C.Word.mask v) }
          | None -> i)
        m.inputs }

let output_values flow ~inputs =
  let m = with_inputs flow.binding.Synth.model inputs in
  let obs = C.Interp.run m in
  List.map
    (fun o ->
      match C.Observation.output_writes obs o with
      | [] -> (o, C.Word.disc)
      | writes ->
        let _, v = List.nth writes (List.length writes - 1) in
        (o, v))
    flow.program.Ir.outputs

let check flow ~inputs =
  let expected = Ir.eval flow.program inputs in
  let m = with_inputs flow.binding.Synth.model inputs in
  let obs = C.Interp.run m in
  let errors = ref [] in
  let say fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  if C.Observation.has_conflict obs then
    say "generated model has resource conflicts";
  let actual = output_values flow ~inputs in
  List.iter
    (fun (o, want) ->
      match List.assoc_opt o actual with
      | Some got when C.Word.equal got want -> ()
      | Some got ->
        say "output %s: model %s, program %d" o (C.Word.to_string got) want
      | None -> say "output %s missing" o)
    expected;
  match List.rev !errors with [] -> Ok () | es -> Error es
