(** Resource-constrained scheduling of dataflow graphs onto control
    steps.

    Produces the paper's timing substrate: each operation gets a read
    step; its result is written [latency] steps later and is readable
    from the following step on (registers latch at [cr], reads happen
    at [ra]).  Implements ASAP, ALAP and priority list scheduling
    under functional-unit and bus constraints.

    The bus constraint reflects the six-phase discipline: a bus
    carries one operand during [ra]/[rb] {e and} one result during
    [wa]/[wb] of the same step, so reads and writes are budgeted
    separately per step. *)

type fu_class = {
  cls_name : string;
  cls_ops : Csrtl_core.Ops.t list;
  count : int;  (** instances available *)
  latency : int;
  pipelined : bool;
}

type resources = { classes : fu_class list; buses : int }

val default_resources :
  ?alus:int -> ?mults:int -> ?mult_latency:int -> ?buses:int -> unit ->
  resources
(** An ALU class (add/sub/min/max/shifts/logic, latency 1) and a
    multiplier class (mul, default latency 2, pipelined).  Defaults:
    1 ALU, 1 multiplier, 2 buses. *)

exception Unschedulable of string
(** No class implements an operation, or a constraint is infeasible
    (e.g. fewer buses than a single operation needs). *)

val class_of : resources -> Csrtl_core.Ops.t -> fu_class

type t = {
  dfg : Dfg.t;
  resources : resources;
  read_step : int array;  (** node id -> control step of operand read *)
  n_steps : int;  (** last write step of the schedule *)
}

val write_step : t -> int -> int
(** [read_step + latency] of the node's class. *)

val asap : resources -> Dfg.t -> int array
(** Dependency-only earliest read steps (resource-blind). *)

val alap : resources -> Dfg.t -> horizon:int -> int array
(** Latest read steps meeting the horizon. *)

val list_schedule : resources -> Dfg.t -> t
(** Priority list scheduling (least ALAP slack first) under the
    class and bus constraints. *)

val verify : t -> (unit, string list) result
(** Check all dependency, class-count, occupancy and bus constraints
    of a schedule (used by the property tests). *)

val reads_at : t -> int -> int list
(** Nodes reading at the given step. *)

val pp : Format.formatter -> t -> unit
