module C = Csrtl_core

type fu_class = {
  cls_name : string;
  cls_ops : C.Ops.t list;
  count : int;
  latency : int;
  pipelined : bool;
}

type resources = { classes : fu_class list; buses : int }

let default_resources ?(alus = 1) ?(mults = 1) ?(mult_latency = 2)
    ?(buses = 2) () =
  { classes =
      [ { cls_name = "ALU";
          cls_ops =
            [ C.Ops.Add; C.Ops.Sub; C.Ops.Min; C.Ops.Max; C.Ops.Band;
              C.Ops.Bor; C.Ops.Bxor; C.Ops.Shl; C.Ops.Shr; C.Ops.Asr;
              C.Ops.Neg; C.Ops.Abs; C.Ops.Bnot; C.Ops.Eq; C.Ops.Lt;
              C.Ops.Lts ];
          count = alus; latency = 1; pipelined = true };
        { cls_name = "MULT"; cls_ops = [ C.Ops.Mul ]; count = mults;
          latency = mult_latency; pipelined = true } ];
    buses }

exception Unschedulable of string

let fail fmt = Format.kasprintf (fun m -> raise (Unschedulable m)) fmt

let implements cls op =
  List.exists (C.Ops.equal op) cls.cls_ops
  ||
  (* immediate forms belong to the class of their base operation *)
  (match op with
   | C.Ops.Addi _ | C.Ops.Subi _ ->
     List.exists (C.Ops.equal C.Ops.Add) cls.cls_ops
   | C.Ops.Muli _ -> List.exists (C.Ops.equal C.Ops.Mul) cls.cls_ops
   | C.Ops.Shli _ | C.Ops.Shri _ | C.Ops.Asri _ ->
     List.exists (C.Ops.equal C.Ops.Shl) cls.cls_ops
   | _ -> false)

let class_of res op =
  match List.find_opt (fun cls -> implements cls op) res.classes with
  | Some cls -> cls
  | None -> fail "no unit class implements %s" (C.Ops.to_string op)

type t = {
  dfg : Dfg.t;
  resources : resources;
  read_step : int array;
  n_steps : int;
}

let node_class t id = class_of t.resources t.dfg.Dfg.nodes.(id).Dfg.op

let write_step t id = t.read_step.(id) + (node_class t id).latency

let asap res (dfg : Dfg.t) =
  let n = Array.length dfg.nodes in
  let read = Array.make n 1 in
  Array.iter
    (fun (nd : Dfg.node) ->
      let earliest =
        List.fold_left
          (fun acc p ->
            let lat = (class_of res dfg.nodes.(p).Dfg.op).latency in
            max acc (read.(p) + lat + 1))
          1 (Dfg.preds nd)
      in
      read.(nd.id) <- earliest)
    dfg.nodes;
  read

let alap res (dfg : Dfg.t) ~horizon =
  let n = Array.length dfg.nodes in
  let read = Array.make n 0 in
  (* process in reverse topological order *)
  for i = n - 1 downto 0 do
    let nd = dfg.nodes.(i) in
    let lat = (class_of res nd.Dfg.op).latency in
    let latest_from_succs =
      List.fold_left
        (fun acc s -> min acc (read.(s) - lat - 1))
        (horizon - lat) (Dfg.succs dfg nd.id)
    in
    read.(i) <- latest_from_succs
  done;
  read

let reads_at t step =
  Array.to_list t.dfg.Dfg.nodes
  |> List.filter_map (fun (nd : Dfg.node) ->
         if t.read_step.(nd.id) = step then Some nd.id else None)

(* Usage bookkeeping shared by the scheduler and the verifier. *)
type usage = {
  class_busy : (string * int, int) Hashtbl.t;  (* class, step -> readers *)
  bus_reads : (int, int) Hashtbl.t;  (* step -> operand transfers *)
  bus_writes : (int, int) Hashtbl.t;  (* step -> result transfers *)
}

let fresh_usage () =
  { class_busy = Hashtbl.create 32; bus_reads = Hashtbl.create 32;
    bus_writes = Hashtbl.create 32 }

let bump tbl key by =
  Hashtbl.replace tbl key (by + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let get tbl key = Option.value ~default:0 (Hashtbl.find_opt tbl key)

let occupancy_steps cls step =
  if cls.pipelined then [ step ]
  else List.init cls.latency (fun i -> step + i)

let fits res usage (nd : Dfg.node) cls step =
  let arity = C.Ops.arity nd.Dfg.op in
  List.for_all
    (fun s -> get usage.class_busy (cls.cls_name, s) < cls.count)
    (occupancy_steps cls step)
  && get usage.bus_reads step + arity <= res.buses
  && get usage.bus_writes (step + cls.latency) + 1 <= res.buses

let commit usage (nd : Dfg.node) cls step =
  List.iter
    (fun s -> bump usage.class_busy (cls.cls_name, s) 1)
    (occupancy_steps cls step);
  bump usage.bus_reads step (C.Ops.arity nd.Dfg.op);
  bump usage.bus_writes (step + cls.latency) 1

let list_schedule res (dfg : Dfg.t) =
  let n = Array.length dfg.nodes in
  (* feasibility of single operations *)
  Array.iter
    (fun (nd : Dfg.node) ->
      let cls = class_of res nd.Dfg.op in
      if C.Ops.arity nd.Dfg.op > res.buses then
        fail "operation %s needs %d buses but only %d exist"
          (C.Ops.to_string nd.Dfg.op)
          (C.Ops.arity nd.Dfg.op) res.buses;
      ignore cls)
    dfg.nodes;
  if n = 0 then { dfg; resources = res; read_step = [||]; n_steps = 0 }
  else begin
    let asap_steps = asap res dfg in
    let horizon =
      Array.fold_left max 1
        (Array.mapi
           (fun i r -> r + (class_of res dfg.nodes.(i).Dfg.op).latency)
           asap_steps)
    in
    let alap_steps = alap res dfg ~horizon in
    let read = Array.make n 0 in
    let scheduled = Array.make n false in
    let usage = fresh_usage () in
    let remaining = ref n in
    let step = ref 1 in
    while !remaining > 0 do
      let ready =
        Array.to_list dfg.nodes
        |> List.filter_map (fun (nd : Dfg.node) ->
               if scheduled.(nd.id) then None
               else
                 let ok =
                   List.for_all
                     (fun p ->
                       scheduled.(p)
                       && read.(p)
                          + (class_of res dfg.nodes.(p).Dfg.op).latency
                          < !step)
                     (Dfg.preds nd)
                 in
                 if ok then Some nd else None)
        |> List.sort (fun a b ->
               Int.compare alap_steps.(a.Dfg.id) alap_steps.(b.Dfg.id))
      in
      List.iter
        (fun (nd : Dfg.node) ->
          let cls = class_of res nd.Dfg.op in
          if fits res usage nd cls !step then begin
            commit usage nd cls !step;
            read.(nd.id) <- !step;
            scheduled.(nd.id) <- true;
            decr remaining
          end)
        ready;
      incr step;
      if !step > (4 * horizon) + (4 * n) + 8 then
        fail "list scheduling did not converge (infeasible resources?)"
    done;
    let n_steps =
      Array.to_list dfg.nodes
      |> List.fold_left
           (fun acc (nd : Dfg.node) ->
             max acc (read.(nd.id) + (class_of res nd.Dfg.op).latency))
           1
    in
    { dfg; resources = res; read_step = read; n_steps }
  end

let verify t =
  let errors = ref [] in
  let say fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let usage = fresh_usage () in
  Array.iter
    (fun (nd : Dfg.node) ->
      let cls = node_class t nd.Dfg.id in
      let r = t.read_step.(nd.id) in
      if r < 1 then say "node %d scheduled before step 1" nd.id;
      List.iter
        (fun p ->
          if write_step t p >= r then
            say "node %d reads at %d but its operand %d is written at %d"
              nd.id r p (write_step t p))
        (Dfg.preds nd);
      commit usage nd cls r)
    t.dfg.Dfg.nodes;
  Hashtbl.iter
    (fun (cls_name, step) used ->
      let cls =
        List.find (fun c -> c.cls_name = cls_name) t.resources.classes
      in
      if used > cls.count then
        say "class %s oversubscribed at step %d (%d > %d)" cls_name step
          used cls.count)
    usage.class_busy;
  Hashtbl.iter
    (fun step used ->
      if used > t.resources.buses then
        say "too many operand transfers at step %d (%d > %d)" step used
          t.resources.buses)
    usage.bus_reads;
  Hashtbl.iter
    (fun step used ->
      if used > t.resources.buses then
        say "too many result transfers at step %d (%d > %d)" step used
          t.resources.buses)
    usage.bus_writes;
  match List.rev !errors with [] -> Ok () | es -> Error es

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule of %s in %d steps@,"
    t.dfg.Dfg.program.Ir.pname t.n_steps;
  for s = 1 to t.n_steps do
    match reads_at t s with
    | [] -> ()
    | ids ->
      Format.fprintf ppf "  step %d: %s@," s
        (String.concat " "
           (List.map
              (fun id ->
                Printf.sprintf "n%d(%s)" id
                  (C.Ops.to_string t.dfg.Dfg.nodes.(id).Dfg.op))
              ids))
  done;
  Format.fprintf ppf "@]"
