(** Standard HLS benchmark programs.

    [diffeq] is the HAL differential-equation benchmark (Paulin &
    Knight) that 1990s high-level-synthesis papers — the flows the
    paper's §4 targets — schedule as their running example: one body
    iteration of the Euler solver for y'' + 3xy' + 3y = 0. *)

module C = Csrtl_core

let diffeq =
  { Ir.pname = "diffeq";
    inputs = [ "x"; "y"; "u"; "dx"; "a" ];
    stmts =
      [ { Ir.def = "t1"; rhs = Ir.Bin (C.Ops.Mul, Lit 3, Var "x") };
        { def = "t2"; rhs = Bin (C.Ops.Mul, Var "u", Var "dx") };
        { def = "t1u"; rhs = Bin (C.Ops.Mul, Var "t1", Var "u") };
        { def = "t3"; rhs = Bin (C.Ops.Mul, Var "t1u", Var "dx") };
        { def = "t4"; rhs = Bin (C.Ops.Mul, Lit 3, Var "y") };
        { def = "t5"; rhs = Bin (C.Ops.Mul, Var "t4", Var "dx") };
        { def = "x1"; rhs = Bin (C.Ops.Add, Var "x", Var "dx") };
        { def = "t6"; rhs = Bin (C.Ops.Sub, Var "u", Var "t3") };
        { def = "u1"; rhs = Bin (C.Ops.Sub, Var "t6", Var "t5") };
        { def = "y1"; rhs = Bin (C.Ops.Add, Var "y", Var "t2") };
        { def = "c"; rhs = Bin (C.Ops.Lt, Var "x1", Var "a") } ];
    outputs = [ "x1"; "y1"; "u1"; "c" ] }

(* An 8-tap FIR filter: y = sum c_i * x_i. *)
let fir taps =
  let inputs = List.init taps (fun i -> Printf.sprintf "x%d" i) in
  let coeffs = [ 7; -3; 12; 5; -8; 2; 9; -1; 4; 6; -2; 11 ] in
  let coeff i = List.nth coeffs (i mod List.length coeffs) in
  let products =
    List.init taps (fun i ->
        { Ir.def = Printf.sprintf "p%d" i;
          rhs =
            Ir.Bin (C.Ops.Mul, Ir.Lit (C.Word.mask (coeff i)),
                    Ir.Var (Printf.sprintf "x%d" i)) })
  in
  let rec sums i acc stmts =
    if i >= taps then (acc, List.rev stmts)
    else
      let def = Printf.sprintf "s%d" i in
      let stmt =
        { Ir.def;
          rhs = Ir.Bin (C.Ops.Add, Ir.Var acc, Ir.Var (Printf.sprintf "p%d" i)) }
      in
      sums (i + 1) def (stmt :: stmts)
  in
  let last, sum_stmts = sums 1 "p0" [] in
  { Ir.pname = Printf.sprintf "fir%d" taps;
    inputs;
    stmts = products @ sum_stmts @ [ { Ir.def = "y"; rhs = Ir.Var last } ];
    outputs = [ "y" ] }

(* Horner evaluation of a degree-n polynomial. *)
let horner degree =
  let coeff i = ((i * 13) mod 21) + 1 in
  let rec go i acc stmts =
    if i > degree then (acc, List.rev stmts)
    else
      let tdef = Printf.sprintf "t%d" i in
      let sdef = Printf.sprintf "s%d" i in
      let stmts =
        { Ir.def = sdef;
          rhs = Ir.Bin (C.Ops.Add, Ir.Var tdef, Ir.Lit (coeff i)) }
        :: { Ir.def = tdef; rhs = Ir.Bin (C.Ops.Mul, Ir.Var acc, Ir.Var "x") }
        :: stmts
      in
      go (i + 1) sdef stmts
  in
  let last, stmts = go 1 "c0" [] in
  { Ir.pname = Printf.sprintf "horner%d" degree;
    inputs = [ "x" ];
    stmts =
      ({ Ir.def = "c0"; rhs = Ir.Lit (coeff 0) } :: stmts);
    outputs = [ last ] }

(* A 4-point decimation-in-time FFT over pairs (re, im): the classic
   DSP kernel after FIR.  Twiddles for N=4 are 1 and -j, so the body
   is adds/subs plus the final swap-negate of the -j branch. *)
let fft4 =
  let v op a b = Ir.Bin (op, Ir.Var a, Ir.Var b) in
  { Ir.pname = "fft4";
    inputs =
      [ "x0r"; "x0i"; "x1r"; "x1i"; "x2r"; "x2i"; "x3r"; "x3i" ];
    stmts =
      [ (* stage 1: butterflies (x0,x2) and (x1,x3) *)
        { Ir.def = "a0r"; rhs = v C.Ops.Add "x0r" "x2r" };
        { def = "a0i"; rhs = v C.Ops.Add "x0i" "x2i" };
        { def = "a1r"; rhs = v C.Ops.Sub "x0r" "x2r" };
        { def = "a1i"; rhs = v C.Ops.Sub "x0i" "x2i" };
        { def = "a2r"; rhs = v C.Ops.Add "x1r" "x3r" };
        { def = "a2i"; rhs = v C.Ops.Add "x1i" "x3i" };
        { def = "a3r"; rhs = v C.Ops.Sub "x1r" "x3r" };
        { def = "a3i"; rhs = v C.Ops.Sub "x1i" "x3i" };
        (* stage 2: (a0,a2) with twiddle 1; (a1,a3) with twiddle -j:
           -j * (r + j i) = i - j r *)
        { def = "y0r"; rhs = v C.Ops.Add "a0r" "a2r" };
        { def = "y0i"; rhs = v C.Ops.Add "a0i" "a2i" };
        { def = "y2r"; rhs = v C.Ops.Sub "a0r" "a2r" };
        { def = "y2i"; rhs = v C.Ops.Sub "a0i" "a2i" };
        { def = "y1r"; rhs = v C.Ops.Add "a1r" "a3i" };
        { def = "y1i"; rhs = v C.Ops.Sub "a1i" "a3r" };
        { def = "y3r"; rhs = v C.Ops.Sub "a1r" "a3i" };
        { def = "y3i"; rhs = v C.Ops.Add "a1i" "a3r" } ];
    outputs =
      [ "y0r"; "y0i"; "y1r"; "y1i"; "y2r"; "y2i"; "y3r"; "y3i" ] }
