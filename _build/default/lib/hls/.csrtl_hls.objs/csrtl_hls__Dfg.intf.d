lib/hls/dfg.mli: Csrtl_core Format Ir
