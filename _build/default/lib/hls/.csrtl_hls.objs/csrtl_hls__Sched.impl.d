lib/hls/sched.ml: Array Csrtl_core Dfg Format Hashtbl Int Ir List Option Printf String
