lib/hls/fds.ml: Array Csrtl_core Dfg Format Hashtbl List Option Sched String
