lib/hls/examples.ml: Csrtl_core Ir List Printf
