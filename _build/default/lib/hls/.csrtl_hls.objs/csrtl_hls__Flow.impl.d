lib/hls/flow.ml: Csrtl_core Dfg Fds Format Ir List Sched String Synth
