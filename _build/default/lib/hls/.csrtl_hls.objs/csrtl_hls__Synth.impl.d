lib/hls/synth.ml: Array Csrtl_core Dfg Format Hashtbl Int Ir List Option Printf Sched String
