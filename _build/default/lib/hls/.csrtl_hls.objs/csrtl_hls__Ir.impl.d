lib/hls/ir.ml: Csrtl_core Format Hashtbl List String
