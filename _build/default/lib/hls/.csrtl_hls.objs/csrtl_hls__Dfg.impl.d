lib/hls/dfg.ml: Array Csrtl_core Format Hashtbl Ir List
