lib/hls/parse.mli: Ir
