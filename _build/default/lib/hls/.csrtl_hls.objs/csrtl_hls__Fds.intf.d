lib/hls/fds.mli: Dfg Sched
