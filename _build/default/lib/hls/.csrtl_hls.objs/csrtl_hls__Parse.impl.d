lib/hls/parse.ml: Buffer Csrtl_core Format Ir List Printf String
