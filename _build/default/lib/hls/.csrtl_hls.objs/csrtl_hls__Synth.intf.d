lib/hls/synth.mli: Csrtl_core Format Sched
