lib/hls/ir.mli: Csrtl_core Format
