lib/hls/flow.mli: Csrtl_core Dfg Ir Sched Synth
