lib/hls/examples.mli: Ir
