lib/hls/sched.mli: Csrtl_core Dfg Format
