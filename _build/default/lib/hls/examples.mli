(** Standard HLS benchmark programs. *)

val diffeq : Ir.program
(** The HAL differential-equation benchmark (one Euler iteration of
    y'' + 3xy' + 3y = 0): 10 operations, 6 multiplications. *)

val fir : int -> Ir.program
(** An n-tap FIR filter with fixed coefficients. *)

val horner : int -> Ir.program
(** Horner evaluation of a degree-n polynomial with fixed
    coefficients. *)

val fft4 : Ir.program
(** A 4-point decimation-in-time FFT (adds/subs only for N = 4):
    16 operations, 8 inputs, 8 outputs — a wide, shallow contrast to
    the deep diffeq graph. *)
