(** The end-to-end HLS flow of paper §4: program -> dataflow graph ->
    schedule -> binding -> clock-free RT model -> simulation check.

    "High level synthesis results are translated into our subset and
    can then be simulated at a high level before the next synthesis
    steps translate to a more concrete implementation.  We are using
    this method in order to verify the correctness of high level
    synthesis results at an early stage." *)

type t = {
  program : Ir.program;
  dfg : Dfg.t;
  schedule : Sched.t;
  binding : Synth.binding;
}

val compile :
  ?resources:Sched.resources ->
  ?scheduler:[ `List | `Force_directed ] ->
  Ir.program -> t
(** [`List] (default): resource-constrained priority list scheduling;
    [`Force_directed]: time-constrained {!Fds} — the class counts of
    [resources] are then treated as outputs (how many units the
    balanced schedule needs), only the bus budget constrains. *)

val with_inputs : Csrtl_core.Model.t -> (string * int) list -> Csrtl_core.Model.t
(** Instantiate the model's input ports with concrete values. *)

val check : t -> inputs:(string * int) list -> (unit, string list) result
(** Simulate the generated model ({!Csrtl_core.Interp}) on the inputs
    and compare every output port against {!Ir.eval} — the paper's
    early-stage verification of HLS results. *)

val output_values :
  t -> inputs:(string * int) list -> (string * Csrtl_core.Word.t) list
(** Output-port values produced by the model simulation. *)
