(** Algorithmic-level input language of the HLS flow.

    Straight-line arithmetic programs — the "algorithmic level" the
    paper's top-down design starts from (§1, §4: "high level
    synthesis, where the result of scheduling and allocation is given
    as a register transfer model").  Variables may be reassigned; the
    dataflow graph builder renames them internally. *)

type expr =
  | Var of string
  | Lit of int
  | Bin of Csrtl_core.Ops.t * expr * expr
  | Un of Csrtl_core.Ops.t * expr

type stmt = { def : string; rhs : expr }

type program = {
  pname : string;
  inputs : string list;
  stmts : stmt list;
  outputs : string list;  (** variables visible as entity outputs *)
}

exception Ill_formed of string

val validate : program -> unit
(** Raises {!Ill_formed} on use of undefined variables, outputs never
    assigned, arity mismatches, or empty programs. *)

val eval : program -> (string * int) list -> (string * int) list
(** Reference interpreter: given input values, the output values
    (word arithmetic, same as {!Csrtl_core.Ops.eval}). *)

val free_vars : expr -> string list

val pp : Format.formatter -> program -> unit
