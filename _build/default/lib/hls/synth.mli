(** Binding and model generation: schedule -> clock-free RT model.

    Performs the allocation steps the paper assumes upstream of its
    subset (§4: "high level synthesis results are translated into our
    subset and can then be simulated at a high level"):

    - {b unit binding}: nodes map to numbered instances of their
      class ([ALU0], [MULT1], ...), first-fit within each step;
    - {b register allocation}: node results live from their write
      step until their last consumer's read step; the left-edge
      algorithm packs them into registers [r0..rN] (a value read and
      a value written in the same step may share a register, because
      reads happen at [ra] and latches at [cr]);
    - {b literal pooling}: each distinct constant becomes a register
      with that initial value;
    - {b bus binding}: operand transfers get buses per read slot,
      result transfers per write slot;
    - {b output copies}: program outputs are copied to entity output
      ports through a dedicated [COPY] unit in trailing steps (the
      same trick the paper's IKS model uses for direct links).

    The generated model is validated and conflict-free by
    construction; {!Flow.run} checks it against the IR semantics. *)

type binding = {
  schedule : Sched.t;
  model : Csrtl_core.Model.t;
  node_fu : (int * string) list;  (** node -> unit instance name *)
  node_reg : (int * string) list;  (** node -> result register *)
  registers_used : int;
  copy_steps : int;  (** trailing steps appended for output copies *)
}

val synthesize : ?reg_alloc:[ `Left_edge | `Naive ] -> Sched.t -> binding
(** [`Left_edge] (default) packs values into shared registers;
    [`Naive] gives every value its own register — the ablation
    baseline quantifying what lifetime analysis saves. *)

val pp_report : Format.formatter -> binding -> unit
