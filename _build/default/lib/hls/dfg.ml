module C = Csrtl_core

type operand = Node of int | In of string | Lit of int
type node = { id : int; op : C.Ops.t; args : operand list }

type t = {
  program : Ir.program;
  nodes : node array;
  out_map : (string * operand) list;
}

let of_program (p : Ir.program) =
  Ir.validate p;
  let nodes = ref [] in
  let n = ref 0 in
  let fresh op args =
    let id = !n in
    incr n;
    nodes := { id; op; args } :: !nodes;
    Node id
  in
  (* current value of each source-level variable *)
  let env = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace env i (In i)) p.inputs;
  let rec build = function
    | Ir.Var v -> Hashtbl.find env v
    | Ir.Lit c -> Lit c
    | Ir.Bin (op, a, b) ->
      let va = build a in
      let vb = build b in
      fresh op [ va; vb ]
    | Ir.Un (op, a) ->
      let va = build a in
      fresh op [ va ]
  in
  List.iter
    (fun (s : Ir.stmt) -> Hashtbl.replace env s.def (build s.rhs))
    p.stmts;
  let out_map = List.map (fun o -> (o, Hashtbl.find env o)) p.outputs in
  { program = p; nodes = Array.of_list (List.rev !nodes); out_map }

let preds node =
  List.filter_map
    (function Node i -> Some i | In _ | Lit _ -> None)
    node.args

let succs t id =
  Array.to_list t.nodes
  |> List.filter_map (fun nd ->
         if List.mem id (preds nd) then Some nd.id else None)

let depth t =
  let n = Array.length t.nodes in
  let d = Array.make n 0 in
  Array.iter
    (fun nd ->
      let pd =
        List.fold_left (fun acc p -> max acc d.(p)) 0 (preds nd)
      in
      d.(nd.id) <- pd + 1)
    t.nodes;
  Array.fold_left max 0 d

let size t = Array.length t.nodes

let pp_operand ppf = function
  | Node i -> Format.fprintf ppf "n%d" i
  | In s -> Format.pp_print_string ppf s
  | Lit c -> Format.pp_print_int ppf c

let pp ppf t =
  Format.fprintf ppf "@[<v>dfg of %s (%d nodes, depth %d)@," t.program.pname
    (size t) (depth t);
  Array.iter
    (fun nd ->
      Format.fprintf ppf "  n%d := %s(%a)@," nd.id
        (C.Ops.to_string nd.op)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_operand)
        nd.args)
    t.nodes;
  List.iter
    (fun (o, v) -> Format.fprintf ppf "  out %s := %a@," o pp_operand v)
    t.out_map;
  Format.fprintf ppf "@]"
