(** Force-directed scheduling (Paulin & Knight).

    The classic {e time-constrained} companion to list scheduling: given
    a latency bound (horizon), balance the expected concurrency of each
    unit class across control steps so that the schedule needs as few
    units as possible.  Paulin & Knight introduced both the algorithm
    and the HAL differential-equation benchmark this library ships
    ({!Examples.diffeq}); 1990s HLS systems — the flows the paper's §4
    feeds from — used exactly this pairing.

    The implementation follows the standard formulation: time frames
    from ASAP/ALAP, distribution graphs per class, self force
    [DG(t) - avg(DG over frame)] plus first-order predecessor/successor
    forces from the frame narrowing a tentative assignment causes; the
    lowest-force feasible (operation, step) pair is fixed each round.
    Bus capacity (reads and result writes per step, as in {!Sched}) is
    respected as a hard feasibility constraint. *)

exception Infeasible of string

val schedule :
  ?horizon:int -> Sched.resources -> Dfg.t -> Sched.t * Sched.resources
(** [schedule res dfg] treats [res] class {e counts} as outputs, not
    constraints: the returned resources carry the number of instances
    of each class the balanced schedule actually needs (its maximum
    concurrent occupancy), with [res]'s bus budget enforced.  The
    default horizon is the resource-blind critical path (ASAP length),
    i.e. the fastest possible schedule.  The result satisfies
    {!Sched.verify} against the returned resources. *)

val units_needed : Sched.t -> (string * int) list
(** Maximum concurrent occupancy per class of any schedule. *)
