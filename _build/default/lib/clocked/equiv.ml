module C = Csrtl_core

type mismatch = {
  at_step : int;
  what : string;
  clock_free : C.Word.t;
  clocked : int;
}

let check ?scheme (m : C.Model.t) =
  let low = Lower.lower ?scheme m in
  let obs = C.Interp.run m in
  let res = Lower.run low in
  let mismatches = ref [] in
  (* Registers: compare at the end of every control step. *)
  List.iter
    (fun (name, trace) ->
      Array.iteri
        (fun idx cf ->
          if C.Word.is_nat cf then begin
            let step = idx + 1 in
            let hw = Lower.reg_value_after_step low res ~step name in
            if hw <> cf then
              mismatches :=
                { at_step = step; what = name; clock_free = cf; clocked = hw }
                :: !mismatches
          end)
        trace)
    obs.C.Observation.regs;
  (* Output ports: compare at the write step's final cycle. *)
  List.iter
    (fun (name, writes) ->
      List.iter
        (fun (step, cf) ->
          if C.Word.is_nat cf then begin
            let cycle = step * low.Lower.cycles_per_step in
            match List.nth_opt res.Eval.snapshots (cycle - 1) with
            | None ->
              mismatches :=
                { at_step = step; what = name; clock_free = cf;
                  clocked = -1 }
                :: !mismatches
            | Some snap ->
              let v =
                Option.value ~default:(-1)
                  (List.assoc_opt (Lower.output_tap name)
                     snap.Eval.tap_values)
              in
              let valid =
                Option.value ~default:0
                  (List.assoc_opt (Lower.output_valid_tap name)
                     snap.Eval.tap_values)
              in
              if valid = 0 || v <> cf then
                mismatches :=
                  { at_step = step; what = name; clock_free = cf;
                    clocked = v }
                  :: !mismatches
          end)
        writes)
    obs.C.Observation.outputs;
  match List.rev !mismatches with
  | [] -> Ok ()
  | ms -> Error ms

let check_all_schemes m =
  List.map
    (fun scheme -> (scheme, check ~scheme m))
    [ Lower.One_cycle_per_step; Lower.Two_phase ]

let pp_mismatch ppf mm =
  Format.fprintf ppf "step %d, %s: clock-free %s vs clocked %d" mm.at_step
    mm.what
    (C.Word.to_string mm.clock_free)
    mm.clocked
