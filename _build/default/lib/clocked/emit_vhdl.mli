(** Synthesizable clocked VHDL from a lowered netlist.

    The deliverable of the paper's "additional synthesis step leading
    to a synthesizable RT description, which can be performed by
    commercial synthesis tools" (§2.2): a conventional clocked VHDL
    architecture — a clock port, one process per register (waiting on
    the clock edge, guarded by its enable), concurrent assignments
    for arithmetic nodes and small sensitivity-list processes for
    multiplexers and comparators.

    The output stays within the grammar of {!Csrtl_vhdl.Parser} (so
    it round-trips through our own front end), but it is {e outside}
    the clock-free subset by construction — {!Csrtl_vhdl.Lint} flags
    its clock idioms, which is precisely the subset boundary the
    paper draws. *)

val design_file : name:string -> Lower.t -> Csrtl_vhdl.Ast.design_file
(** Entity [<name>_rtl] + architecture [rtl]. *)

val to_string : name:string -> Lower.t -> string
