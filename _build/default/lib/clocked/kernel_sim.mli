(** Event-driven simulation of a clocked netlist on the kernel.

    The "usual RT level" baseline the paper contrasts with: a clock
    generator advancing physical time, one kernel process per
    combinational node (sensitive to its operands) and one per
    register (sensitive to the clock edge).  Combinational settling
    costs delta cycles per clock cycle, which is exactly the overhead
    the clock-free discipline avoids — measured by the [speed/*]
    benchmarks and reported for DESIGN.md experiment C3. *)

type result = {
  final_regs : (string * int) list;
  cycles_run : int;
  stats : Csrtl_kernel.Types.stats;
  sim_time : Csrtl_kernel.Time.t;
}

val run :
  ?period:Csrtl_kernel.Time.t ->
  ?inputs:(string -> int -> int) ->
  Netlist.t -> cycles:int -> result
(** Default clock period 10 ns. *)
