(** Per-step equivalence of a clock-free model and its clocked
    lowering.

    The refinement relation: wherever the clock-free semantics
    produces a natural value (register content at the end of a step,
    output-port write), the clocked implementation must produce the
    same value at the corresponding clock edge; clock-free [DISC] is
    a don't-care the implementation may refine arbitrarily.  Models
    that produce ILLEGAL anywhere are rejected by {!Lower.lower}
    already. *)

type mismatch = {
  at_step : int;
  what : string;  (** register or output-port name *)
  clock_free : Csrtl_core.Word.t;
  clocked : int;
}

val check :
  ?scheme:Lower.scheme -> Csrtl_core.Model.t -> (unit, mismatch list) result
(** Lower, simulate both sides over the full schedule, and compare. *)

val check_all_schemes :
  Csrtl_core.Model.t -> (Lower.scheme * (unit, mismatch list) result) list

val pp_mismatch : Format.formatter -> mismatch -> unit
