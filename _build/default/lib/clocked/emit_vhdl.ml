module A = Csrtl_vhdl.Ast
module C = Csrtl_core

let node_sig id = Printf.sprintf "n%d" id
let reg_sig name = "r_" ^ Csrtl_vhdl.Emit.mangle name

let integer = A.plain "Integer"

(* Expression for an operand reference. *)
let ref_expr net id =
  match Netlist.node net id with
  | Netlist.Const v -> A.Int v
  | Netlist.Input name -> A.Name (Csrtl_vhdl.Emit.mangle name)
  | Netlist.Reg_q slot ->
    let name, _ = List.nth (Netlist.registers net) slot in
    A.Name (reg_sig name)
  | Netlist.Op _ | Netlist.Eq_const _ | Netlist.Mux _ -> A.Name (node_sig id)

(* Direct VHDL expression for an operation where one exists; helper
   function call otherwise (declared, bodies supplied by the target
   library, as in Csrtl_vhdl.Emit). *)
let op_expr net op args =
  let e i = ref_expr net (List.nth args i) in
  match (op : C.Ops.t), args with
  | C.Ops.Add, [ _; _ ] -> A.Binop (A.Add, e 0, e 1)
  | C.Ops.Sub, [ _; _ ] -> A.Binop (A.Sub, e 0, e 1)
  | C.Ops.Mul, [ _; _ ] -> A.Binop (A.Mul, e 0, e 1)
  | C.Ops.Addi n, [ _ ] -> A.Binop (A.Add, e 0, A.Int n)
  | C.Ops.Subi n, [ _ ] -> A.Binop (A.Sub, e 0, A.Int n)
  | C.Ops.Muli n, [ _ ] -> A.Binop (A.Mul, e 0, A.Int n)
  | C.Ops.Pass, [ _ ] -> e 0
  | C.Ops.Neg, [ _ ] -> A.Unop (A.Neg, e 0)
  | C.Ops.Const c, [] -> A.Int c
  | other, _ ->
    let sanitized =
      String.map
        (fun c -> if c = ':' then '_' else c)
        (C.Ops.to_string other)
    in
    A.Call ("csrtl_" ^ sanitized, List.map (fun a -> ref_expr net a) args)

let design_file ~name (low : Lower.t) =
  let net = low.Lower.net in
  let order = Netlist.comb_order net in
  let regs = Netlist.registers net in
  let ent_name = Csrtl_vhdl.Emit.mangle name ^ "_rtl" in
  (* ports: clock, model inputs, tap outputs *)
  let ports =
    { A.port_name = "clk"; mode = A.In; port_type = integer;
      port_default = None }
    :: List.map
         (fun (n, _) ->
           { A.port_name = Csrtl_vhdl.Emit.mangle n; mode = A.In;
             port_type = integer; port_default = Some (A.Int 0) })
         (Netlist.inputs net)
    @ List.map
        (fun (n, _) ->
          { A.port_name = "tap_" ^ Csrtl_vhdl.Emit.mangle n; mode = A.Out;
            port_type = integer; port_default = Some (A.Int 0) })
        (Netlist.taps net)
  in
  let entity = A.Entity { ent_name; generics = []; ports } in
  (* internal signals: one per comb node that needs a name, one per reg *)
  let named_nodes =
    Array.to_list order
    |> List.filter (fun id ->
           match Netlist.node net id with
           | Netlist.Op _ | Netlist.Eq_const _ | Netlist.Mux _ -> true
           | Netlist.Const _ | Netlist.Input _ | Netlist.Reg_q _ -> false)
  in
  let decls =
    (match named_nodes with
     | [] -> []
     | _ -> [ A.Signal_decl (List.map node_sig named_nodes, integer, None) ])
    @ List.map
        (fun (n, (r : Netlist.register)) ->
          A.Signal_decl
            ([ reg_sig n ], integer, Some (A.Int r.Netlist.init)))
        regs
  in
  (* combinational statements *)
  let comb_stmts =
    List.map
      (fun id ->
        match Netlist.node net id with
        | Netlist.Op (op, args) ->
          A.Concurrent_assign (node_sig id, op_expr net op args)
        | Netlist.Eq_const (a, v) ->
          (* comparator as a small sensitivity-list process *)
          let dep =
            match ref_expr net a with
            | A.Name n -> [ n ]
            | _ -> []
          in
          A.Proc
            { proc_label = Some (node_sig id ^ "_cmp");
              sensitivity = dep;
              proc_decls = [];
              body =
                [ A.If
                    ( [ ( A.Binop (A.Eq, ref_expr net a, A.Int v),
                          [ A.Signal_assign (node_sig id, A.Int 1) ] ) ],
                      [ A.Signal_assign (node_sig id, A.Int 0) ] ) ] }
        | Netlist.Mux { sel; cases; default } ->
          let deps =
            List.filter_map
              (fun e -> match e with A.Name n -> Some n | _ -> None)
              (ref_expr net sel :: ref_expr net default
               :: List.map (fun (_, c) -> ref_expr net c) cases)
            |> List.sort_uniq String.compare
          in
          let branches =
            List.map
              (fun (v, c) ->
                ( A.Binop (A.Eq, ref_expr net sel, A.Int v),
                  [ A.Signal_assign (node_sig id, ref_expr net c) ] ))
              cases
          in
          A.Proc
            { proc_label = Some (node_sig id ^ "_mux");
              sensitivity = deps;
              proc_decls = [];
              body =
                [ A.If
                    ( branches,
                      [ A.Signal_assign (node_sig id, ref_expr net default) ]
                    ) ] }
        | Netlist.Const _ | Netlist.Input _ | Netlist.Reg_q _ ->
          A.Concurrent_assign ("unused", A.Int 0))
      named_nodes
  in
  (* one clocked process per register *)
  let reg_stmts =
    List.map
      (fun (n, (r : Netlist.register)) ->
        let load = A.Signal_assign (reg_sig n, ref_expr net r.Netlist.next) in
        let body =
          match r.Netlist.enable with
          | None -> [ load ]
          | Some e ->
            [ A.If
                ( [ (A.Binop (A.Neq, ref_expr net e, A.Int 0), [ load ]) ],
                  [] ) ]
        in
        A.Proc
          { proc_label = Some ("reg_" ^ Csrtl_vhdl.Emit.mangle n);
            sensitivity = [];
            proc_decls = [];
            body = A.Wait_until (A.Binop (A.Eq, A.Name "clk", A.Int 1)) :: body
          })
      regs
  in
  (* output taps *)
  let tap_stmts =
    List.map
      (fun (n, id) ->
        A.Concurrent_assign
          ("tap_" ^ Csrtl_vhdl.Emit.mangle n, ref_expr net id))
      (Netlist.taps net)
  in
  let arch =
    A.Architecture
      { arch_name = "rtl"; arch_entity = ent_name; arch_decls = decls;
        arch_stmts = comb_stmts @ reg_stmts @ tap_stmts }
  in
  [ A.Comment
      (Printf.sprintf
         "clocked RTL lowered from clock-free model %s (%s scheme)" name
         (match low.Lower.scheme with
          | Lower.One_cycle_per_step -> "one-cycle-per-step"
          | Lower.Two_phase -> "two-phase"));
    entity; arch ]

let to_string ~name low = Csrtl_vhdl.Pp.to_string (design_file ~name low)
