type id = int

type node =
  | Input of string
  | Const of int
  | Reg_q of int
  | Op of Csrtl_core.Ops.t * id list
  | Eq_const of id * int
  | Mux of { sel : id; cases : (int * id) list; default : id }

type register = {
  reg_name : string;
  init : int;
  mutable next : id;
  mutable enable : id option;
}

type t = {
  mutable nodes : node array;
  mutable n : int;
  mutable regs : register array;
  mutable nregs : int;
  mutable reg_q : id array;  (* reg slot -> node id of its Q *)
  mutable tap_list : (string * id) list;  (* reverse order *)
  cache : (node, id) Hashtbl.t;  (* structural hashing of pure nodes *)
}

let create () =
  { nodes = Array.make 64 (Const 0); n = 0; regs = [||]; nregs = 0;
    reg_q = [||]; tap_list = []; cache = Hashtbl.create 64 }

let push t nd =
  if t.n = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.n) (Const 0) in
    Array.blit t.nodes 0 bigger 0 t.n;
    t.nodes <- bigger
  end;
  t.nodes.(t.n) <- nd;
  t.n <- t.n + 1;
  t.n - 1

(* Structural hashing keeps lowering output compact: identical pure
   nodes share one id. *)
let hashed t nd =
  match Hashtbl.find_opt t.cache nd with
  | Some id -> id
  | None ->
    let id = push t nd in
    Hashtbl.replace t.cache nd id;
    id

let input t name = hashed t (Input name)
let const t v = hashed t (Const v)

let op t o args =
  match o, args with
  | Csrtl_core.Ops.Pass, [ a ] -> a
  | _, _ -> hashed t (Op (o, args))

let eq_const t a v = hashed t (Eq_const (a, v))

let mux t ~sel ~cases ~default =
  match cases with
  | [] -> default
  | _ -> hashed t (Mux { sel; cases; default })

let rec or_reduce t = function
  | [] -> const t 0
  | [ x ] -> x
  | x :: rest -> op t Csrtl_core.Ops.Bor [ x; or_reduce t rest ]

let reg t ~name ~init =
  if t.nregs = Array.length t.regs then begin
    let grow = max 8 (2 * t.nregs) in
    let bigger_r =
      Array.make grow { reg_name = ""; init = 0; next = -1; enable = None }
    in
    Array.blit t.regs 0 bigger_r 0 t.nregs;
    t.regs <- bigger_r;
    let bigger_q = Array.make grow (-1) in
    Array.blit t.reg_q 0 bigger_q 0 t.nregs;
    t.reg_q <- bigger_q
  end;
  let slot = t.nregs in
  t.regs.(slot) <- { reg_name = name; init; next = -1; enable = None };
  t.nregs <- t.nregs + 1;
  let q = push t (Reg_q slot) in
  t.reg_q.(slot) <- q;
  q

let connect_reg t q ~next ~enable =
  match t.nodes.(q) with
  | Reg_q slot ->
    t.regs.(slot).next <- next;
    t.regs.(slot).enable <- enable
  | Input _ | Const _ | Op _ | Eq_const _ | Mux _ ->
    invalid_arg "Netlist.connect_reg: not a register output"

let tap t name id = t.tap_list <- (name, id) :: t.tap_list
let node t id = t.nodes.(id)
let size t = t.n

let registers t =
  List.init t.nregs (fun i -> (t.regs.(i).reg_name, t.regs.(i)))

let taps t = List.rev t.tap_list

let inputs t =
  let rec go i acc =
    if i < 0 then acc
    else
      match t.nodes.(i) with
      | Input name -> go (i - 1) ((name, i) :: acc)
      | Const _ | Reg_q _ | Op _ | Eq_const _ | Mux _ -> go (i - 1) acc
  in
  go (t.n - 1) []

let comb_order t =
  (* Nodes are created bottom-up (operands before users), so creation
     order already is a topological order of the combinational part;
     register Q nodes act as sources.  We validate rather than sort. *)
  let ok = Array.make t.n false in
  let order = Array.init t.n (fun i -> i) in
  Array.iter
    (fun id ->
      (match t.nodes.(id) with
       | Input _ | Const _ | Reg_q _ -> ()
       | Op (_, args) ->
         List.iter
           (fun a ->
             if a >= id then
               invalid_arg "Netlist.comb_order: combinational cycle")
           args
       | Eq_const (a, _) ->
         if a >= id then invalid_arg "Netlist.comb_order: combinational cycle"
       | Mux { sel; cases; default } ->
         if sel >= id || default >= id
            || List.exists (fun (_, c) -> c >= id) cases
         then invalid_arg "Netlist.comb_order: combinational cycle");
      ok.(id) <- true)
    order;
  order

let pp_stats ppf t =
  let count pred =
    let c = ref 0 in
    for i = 0 to t.n - 1 do
      if pred t.nodes.(i) then incr c
    done;
    !c
  in
  Format.fprintf ppf "nodes: %d (regs %d, ops %d, mux %d, cmp %d)" t.n
    t.nregs
    (count (function Op _ -> true | _ -> false))
    (count (function Mux _ -> true | _ -> false))
    (count (function Eq_const _ -> true | _ -> false))
