(** Levelized (oblivious) simulation of a clocked netlist.

    Evaluates all combinational nodes in topological order once per
    clock cycle, then performs the register update — the standard
    compiled-simulation execution model, and the fast baseline of the
    [speed/*] benchmarks. *)

type snapshot = {
  cycle : int;  (** 1-based cycle index *)
  tap_values : (string * int) list;  (** probe values during the cycle *)
  regs_after_edge : (string * int) list;  (** Q values after the edge *)
}

type result = {
  snapshots : snapshot list;  (** chronological *)
  final_regs : (string * int) list;
  comb_evals : int;  (** node evaluations performed *)
}

val run :
  ?inputs:(string -> int -> int) ->
  Netlist.t -> cycles:int -> result
(** [inputs name cycle] supplies input values (default 0). *)
