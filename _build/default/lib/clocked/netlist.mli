(** Word-level clocked RTL netlist.

    The target of the "additional synthesis step leading to a
    synthesizable RT description" (paper §2.2): a graph of
    combinational operators, multiplexers, comparators and
    edge-triggered registers with enables.  Buses of the clock-free
    model disappear into multiplexer trees; control steps become a
    step-counter register and decoded enables. *)

type id = int

type node =
  | Input of string
  | Const of int
  | Reg_q of int  (** output of register slot [i] *)
  | Op of Csrtl_core.Ops.t * id list
  | Eq_const of id * int  (** 1 when the operand equals the constant *)
  | Mux of { sel : id; cases : (int * id) list; default : id }
      (** selects the case whose constant equals the value of [sel] *)

type register = {
  reg_name : string;
  init : int;
  mutable next : id;
  mutable enable : id option;  (** [None] = always load *)
}

type t

val create : unit -> t

val input : t -> string -> id
val const : t -> int -> id
val op : t -> Csrtl_core.Ops.t -> id list -> id
val eq_const : t -> id -> int -> id
val mux : t -> sel:id -> cases:(int * id) list -> default:id -> id
val or_reduce : t -> id list -> id
(** 1 when any operand is nonzero (0 for the empty list). *)

val reg : t -> name:string -> init:int -> id
(** Declares a register slot and returns the id of its Q output; wire
    its [next]/[enable] with {!connect_reg}. *)

val connect_reg : t -> id -> next:id -> enable:id option -> unit
(** [id] must be the Q output returned by {!reg}. *)

val tap : t -> string -> id -> unit
(** Name a node as an observable probe. *)

val node : t -> id -> node
val size : t -> int
(** Number of nodes. *)

val registers : t -> (string * register) list
(** In declaration order. *)

val taps : t -> (string * id) list
val inputs : t -> (string * id) list

val comb_order : t -> id array
(** Topological order of all non-register nodes (register Q outputs
    are sources).  Raises [Invalid_argument] on a combinational
    cycle. *)

val pp_stats : Format.formatter -> t -> unit
