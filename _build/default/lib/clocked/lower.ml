module C = Csrtl_core

type scheme = One_cycle_per_step | Two_phase

exception Lowering_error of string

type t = {
  net : Netlist.t;
  scheme : scheme;
  model : C.Model.t;
  cycles_per_step : int;
  step_counter : Netlist.id;
}

let fail fmt = Format.kasprintf (fun m -> raise (Lowering_error m)) fmt

let output_tap o = o
let output_valid_tap o = o ^ ".valid"

(* The read part of a tuple, with its effective operation. *)
type read_use = {
  ru_step : int;
  ru_op : C.Ops.t;
  ru_a : C.Transfer.source option;
  ru_b : C.Transfer.source option;
}

let word_init (w : C.Word.t) = if C.Word.is_nat w then w else 0

let lower ?(scheme = One_cycle_per_step) (m : C.Model.t) =
  C.Model.validate_exn m;
  (match C.Conflict.check m with
   | [] -> ()
   | cs ->
     fail "model has %d resource conflict(s), e.g. %s" (List.length cs)
       (C.Conflict.to_string (List.hd cs)));
  let net = Netlist.create () in
  let cps = match scheme with One_cycle_per_step -> 1 | Two_phase -> 2 in
  (* Step counter: starts at 1, holds at cs_max + 1. *)
  let sc = Netlist.reg net ~name:"SC" ~init:1 in
  let running = Netlist.op net C.Ops.Lt [ sc; Netlist.const net (m.cs_max + 1) ] in
  (* Phase bit for the two-phase scheme: 0 = read/compute, 1 = write. *)
  let write_phase =
    match scheme with
    | One_cycle_per_step -> None
    | Two_phase ->
      let pb = Netlist.reg net ~name:"PB" ~init:0 in
      Netlist.connect_reg net pb
        ~next:(Netlist.op net C.Ops.Bxor [ pb; Netlist.const net 1 ])
        ~enable:None;
      Some pb
  in
  let gate enable_id =
    (* AND the enable with the write phase where applicable. *)
    match write_phase with
    | None -> enable_id
    | Some pb -> Netlist.op net C.Ops.Band [ enable_id; pb ]
  in
  let step_advance =
    match write_phase with
    | None -> running
    | Some pb -> Netlist.op net C.Ops.Band [ running; pb ]
  in
  Netlist.connect_reg net sc
    ~next:(Netlist.op net C.Ops.Add [ sc; step_advance ])
    ~enable:None;
  Netlist.tap net "SC" sc;
  (* Architectural registers: declared first so sources can refer to
     them; wired after the functional units exist. *)
  let arch_regs = Hashtbl.create 16 in
  List.iter
    (fun (r : C.Model.register) ->
      let q = Netlist.reg net ~name:r.reg_name ~init:(word_init r.init) in
      Hashtbl.replace arch_regs r.reg_name q)
    m.registers;
  let source_node = function
    | C.Transfer.From_reg r -> Hashtbl.find arch_regs r
    | C.Transfer.From_input i -> Netlist.input net i
  in
  (* Functional units: operand/operation muxes + pipeline registers. *)
  let fu_pipe_out = Hashtbl.create 8 in
  List.iter
    (fun (f : C.Model.fu) ->
      let reads =
        List.filter_map
          (fun (tr : C.Transfer.t) ->
            match tr.fu = f.fu_name, tr.read_step, C.Model.effective_op m tr with
            | true, Some s, Some op ->
              Some { ru_step = s; ru_op = op; ru_a = tr.src_a; ru_b = tr.src_b }
            | _, _, _ -> None)
          m.transfers
      in
      (* Pipeline chain P1 .. PL; P1 is also the MAC accumulator. *)
      let pipes =
        List.init f.latency (fun i ->
            Netlist.reg net
              ~name:(Printf.sprintf "%s.p%d" f.fu_name (i + 1))
              ~init:0)
      in
      let p1 = List.hd pipes in
      let comb_cases =
        List.map
          (fun ru ->
            let operands =
              match C.Ops.arity ru.ru_op, ru.ru_a, ru.ru_b with
              | 0, _, _ -> []
              | 1, Some a, _ -> [ source_node a ]
              | 2, Some a, Some b -> [ source_node a; source_node b ]
              | n, _, _ ->
                fail "unit %s step %d: operation %s needs %d operand(s)"
                  f.fu_name ru.ru_step (C.Ops.to_string ru.ru_op) n
            in
            let operands =
              if C.Ops.is_stateful ru.ru_op then operands @ [ p1 ]
              else operands
            in
            (ru.ru_step, Netlist.op net ru.ru_op operands))
          reads
      in
      let comb =
        Netlist.mux net ~sel:sc ~cases:comb_cases
          ~default:(Netlist.const net 0)
      in
      let stateful = List.exists C.Ops.is_stateful f.ops in
      let p1_enable =
        if stateful then
          (* accumulators only load on steps that actually read *)
          Some
            (gate
               (Netlist.or_reduce net
                  (List.map (fun ru -> Netlist.eq_const net sc ru.ru_step)
                     reads)))
        else
          match write_phase with None -> None | Some pb -> Some pb
      in
      Netlist.connect_reg net p1 ~next:comb ~enable:p1_enable;
      let rec chain prev = function
        | [] -> prev
        | p :: rest ->
          Netlist.connect_reg net p ~next:prev
            ~enable:(match write_phase with
                     | None -> None
                     | Some pb -> Some pb);
          chain p rest
      in
      let last = chain p1 (List.tl pipes) in
      Hashtbl.replace fu_pipe_out f.fu_name last)
    m.fus;
  (* Write-back: registers and output ports. *)
  let writes_to pred =
    List.filter_map
      (fun (tr : C.Transfer.t) ->
        match tr.write_step, tr.dst with
        | Some w, Some d when pred d -> Some (w, Hashtbl.find fu_pipe_out tr.fu)
        | _, _ -> None)
      m.transfers
  in
  List.iter
    (fun (r : C.Model.register) ->
      let q = Hashtbl.find arch_regs r.reg_name in
      let cases =
        writes_to (function
          | C.Transfer.To_reg name -> name = r.reg_name
          | C.Transfer.To_output _ -> false)
      in
      let enable =
        Netlist.or_reduce net
          (List.map (fun (w, _) -> Netlist.eq_const net sc w) cases)
      in
      Netlist.connect_reg net q
        ~next:(Netlist.mux net ~sel:sc ~cases ~default:q)
        ~enable:(Some (gate enable)))
    m.registers;
  List.iter
    (fun o ->
      let cases =
        writes_to (function
          | C.Transfer.To_output name -> name = o
          | C.Transfer.To_reg _ -> false)
      in
      Netlist.tap net (output_tap o)
        (Netlist.mux net ~sel:sc ~cases ~default:(Netlist.const net 0));
      Netlist.tap net (output_valid_tap o)
        (Netlist.or_reduce net
           (List.map (fun (w, _) -> Netlist.eq_const net sc w) cases)))
    m.outputs;
  { net; scheme; model = m; cycles_per_step = cps; step_counter = sc }

let cycles_needed t = t.model.cs_max * t.cycles_per_step

let input_function t name cycle =
  let step = ((cycle - 1) / t.cycles_per_step) + 1 in
  match
    List.find_opt (fun (i : C.Model.input) -> i.in_name = name)
      t.model.inputs
  with
  | None -> 0
  | Some i ->
    let v = C.Model.input_value i step in
    if C.Word.is_nat v then v else 0

let run t =
  Eval.run ~inputs:(input_function t) t.net ~cycles:(cycles_needed t)

let reg_value_after_step t (res : Eval.result) ~step name =
  let cycle = step * t.cycles_per_step in
  match List.nth_opt res.snapshots (cycle - 1) with
  | None -> fail "no snapshot for step %d" step
  | Some snap ->
    (match List.assoc_opt name snap.regs_after_edge with
     | Some v -> v
     | None -> fail "no register %s in snapshot" name)
