type snapshot = {
  cycle : int;
  tap_values : (string * int) list;
  regs_after_edge : (string * int) list;
}

type result = {
  snapshots : snapshot list;
  final_regs : (string * int) list;
  comb_evals : int;
}

let run ?(inputs = fun _ _ -> 0) net ~cycles =
  let order = Netlist.comb_order net in
  let n = Netlist.size net in
  let values = Array.make n 0 in
  let regs = Netlist.registers net in
  let reg_state =
    Array.of_list (List.map (fun (_, r) -> r.Netlist.init) regs)
  in
  let comb_evals = ref 0 in
  let eval_cycle cycle =
    Array.iter
      (fun id ->
        incr comb_evals;
        values.(id) <-
          (match Netlist.node net id with
           | Netlist.Input name -> inputs name cycle
           | Netlist.Const v -> v
           | Netlist.Reg_q slot -> reg_state.(slot)
           | Netlist.Op (o, args) ->
             Csrtl_core.Ops.eval o
               (Array.of_list (List.map (fun a -> values.(a)) args))
           | Netlist.Eq_const (a, v) -> if values.(a) = v then 1 else 0
           | Netlist.Mux { sel; cases; default } ->
             let s = values.(sel) in
             (match List.assoc_opt s cases with
              | Some c -> values.(c)
              | None -> values.(default))))
      order
  in
  let edge () =
    (* Sample all nexts first, then commit: edge-triggered semantics. *)
    let pending =
      List.mapi
        (fun slot (_, r) ->
          let load =
            match r.Netlist.enable with
            | None -> true
            | Some e -> values.(e) <> 0
          in
          if load && r.Netlist.next >= 0 then Some (slot, values.(r.Netlist.next))
          else None)
        regs
    in
    List.iter
      (function
        | Some (slot, v) -> reg_state.(slot) <- v
        | None -> ())
      pending
  in
  let reg_values () =
    List.mapi (fun slot (name, _) -> (name, reg_state.(slot))) regs
  in
  let snapshots = ref [] in
  for cycle = 1 to cycles do
    eval_cycle cycle;
    let tap_values =
      List.map (fun (name, id) -> (name, values.(id))) (Netlist.taps net)
    in
    edge ();
    snapshots :=
      { cycle; tap_values; regs_after_edge = reg_values () } :: !snapshots
  done;
  { snapshots = List.rev !snapshots; final_regs = reg_values ();
    comb_evals = !comb_evals }
