lib/clocked/emit_vhdl.mli: Csrtl_vhdl Lower
