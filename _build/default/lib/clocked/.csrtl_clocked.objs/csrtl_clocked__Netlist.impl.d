lib/clocked/netlist.ml: Array Csrtl_core Format Hashtbl List
