lib/clocked/equiv.ml: Array Csrtl_core Eval Format List Lower Option
