lib/clocked/eval.ml: Array Csrtl_core List Netlist
