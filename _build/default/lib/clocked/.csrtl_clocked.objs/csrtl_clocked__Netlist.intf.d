lib/clocked/netlist.mli: Csrtl_core Format
