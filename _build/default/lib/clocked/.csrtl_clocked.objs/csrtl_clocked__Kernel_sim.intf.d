lib/clocked/kernel_sim.mli: Csrtl_kernel Netlist
