lib/clocked/lower.mli: Csrtl_core Eval Netlist
