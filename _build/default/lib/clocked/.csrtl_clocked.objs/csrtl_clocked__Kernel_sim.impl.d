lib/clocked/kernel_sim.ml: Array Csrtl_core Csrtl_kernel List Netlist Printf Process Scheduler Signal Time Types
