lib/clocked/emit_vhdl.ml: Array Csrtl_core Csrtl_vhdl List Lower Netlist Printf String
