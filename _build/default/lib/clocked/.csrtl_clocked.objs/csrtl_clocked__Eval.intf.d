lib/clocked/eval.mli: Netlist
