lib/clocked/lower.ml: Csrtl_core Eval Format Hashtbl List Netlist Printf
