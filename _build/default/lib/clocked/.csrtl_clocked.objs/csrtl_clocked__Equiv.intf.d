lib/clocked/equiv.mli: Csrtl_core Format Lower
