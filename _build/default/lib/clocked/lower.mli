(** Lowering clock-free models to clocked netlists.

    The "additional synthesis step" of paper §2.2: "there are
    different ways to implement control steps" — this module offers
    two schemes and performs the classic refinements: buses become
    multiplexer trees, control steps become a step counter with
    decoded register enables, module latencies become pipeline
    registers, DISC disappears (clock-free "no value" is a don't-care
    the implementation may refine to anything; {!Equiv} checks
    exactly this refinement relation).

    Models with resource conflicts are rejected: a conflicted
    schedule has no meaningful clocked implementation. *)

type scheme =
  | One_cycle_per_step  (** one clock cycle per control step *)
  | Two_phase
      (** two cycles per step: a read/compute phase and a write
          phase; all state loads on the second edge *)

exception Lowering_error of string

type t = {
  net : Netlist.t;
  scheme : scheme;
  model : Csrtl_core.Model.t;
  cycles_per_step : int;
  step_counter : Netlist.id;
}

val lower : ?scheme:scheme -> Csrtl_core.Model.t -> t

val cycles_needed : t -> int
(** Clock cycles to execute the full schedule. *)

val input_function : t -> string -> int -> int
(** Adapt the model's input drives to per-cycle netlist inputs
    ([DISC] maps to 0). *)

val run : t -> Eval.result
(** Levelized simulation over the full schedule with the model's
    input drives. *)

val reg_value_after_step : t -> Eval.result -> step:int -> string -> int
(** Register Q after the final edge of the given control step. *)

val output_tap : string -> string
val output_valid_tap : string -> string
(** Tap naming for output-port probes. *)
