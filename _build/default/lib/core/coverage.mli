(** Activity and utilization analysis of a model run.

    The dual of {!Conflict}: where conflict analysis finds resources
    used {e twice}, coverage finds resources and transfers not really
    used at all.  Runs the interpreter once and reports

    - {e dead transfers}: tuples whose unit received only DISC
      operands at their read step (the computed value is DISC and the
      write-back never latches) — usually a schedule bug, e.g. reading
      a register before anything wrote it;
    - bus utilization: the fraction of control steps in which a bus
      carried a value on its read or write side;
    - unit utilization: the fraction of steps a unit computed on real
      operands;
    - registers never written, and registers written but never read
      by any transfer. *)

type report = {
  total_steps : int;
  dead_transfers : Transfer.t list;
  bus_utilization : (string * float) list;  (** 0.0 .. 1.0 *)
  unit_utilization : (string * float) list;
  never_written : string list;
      (** DISC-initialized registers that stay DISC (constant
          registers with a real init are a normal idiom) *)
  never_read : string list;  (** written registers no transfer reads *)
}

val analyze : Model.t -> report

val pp : Format.formatter -> report -> unit
