lib/core/observation.ml: Array Format Int List Option Phase Printf Stdlib String Word
