lib/core/word.mli: Format
