lib/core/elaborate.ml: Controller Csrtl_kernel Fu_state Hashtbl List Model Ops Option Phase Printf Process Resolve Scheduler Signal Transfer Word
