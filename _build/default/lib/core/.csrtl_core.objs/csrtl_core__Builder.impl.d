lib/core/builder.ml: List Model Ops Stdlib Transfer Word
