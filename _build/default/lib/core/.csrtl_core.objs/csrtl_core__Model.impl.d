lib/core/model.ml: Format Hashtbl List Ops Printf String Transfer Word
