lib/core/rtm.mli: Model
