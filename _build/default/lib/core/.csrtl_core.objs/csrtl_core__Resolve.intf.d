lib/core/resolve.mli: Csrtl_kernel Word
