lib/core/fu_state.ml: Array List Model Ops Word
