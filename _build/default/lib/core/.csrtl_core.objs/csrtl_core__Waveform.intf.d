lib/core/waveform.mli: Format Model Observation
