lib/core/observation.mli: Format Phase Word
