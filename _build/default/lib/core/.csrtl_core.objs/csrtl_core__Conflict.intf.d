lib/core/conflict.mli: Format Model Ops Phase
