lib/core/builder.mli: Model Ops Transfer Word
