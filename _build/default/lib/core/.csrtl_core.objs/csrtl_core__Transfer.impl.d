lib/core/transfer.ml: Format Hashtbl Int List Ops Phase Printf Stdlib String
