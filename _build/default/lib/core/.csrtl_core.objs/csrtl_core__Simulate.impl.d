lib/core/simulate.ml: Array Controller Csrtl_kernel Elaborate Hashtbl List Logs Model Observation Phase Process Scheduler Signal Transfer Types Vcd Word
