lib/core/ops.ml: Array Format List Printf String Word
