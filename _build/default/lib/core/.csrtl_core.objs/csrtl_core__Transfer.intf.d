lib/core/transfer.mli: Format Ops Phase
