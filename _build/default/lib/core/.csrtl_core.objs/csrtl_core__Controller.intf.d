lib/core/controller.mli: Csrtl_kernel Phase Word
