lib/core/word.ml: Format Int
