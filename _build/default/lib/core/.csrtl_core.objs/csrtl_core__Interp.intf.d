lib/core/interp.mli: Model Observation Phase Word
