lib/core/fu_state.mli: Model Word
