lib/core/resolve.ml: Array Csrtl_kernel List Word
