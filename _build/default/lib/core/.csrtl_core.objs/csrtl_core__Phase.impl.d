lib/core/phase.ml: Format Int Printf
