lib/core/reschedule.ml: Array Conflict Int List Model Ops Option Printf Transfer
