lib/core/dot.mli: Model
