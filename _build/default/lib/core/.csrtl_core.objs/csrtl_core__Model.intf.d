lib/core/model.mli: Format Ops Transfer Word
