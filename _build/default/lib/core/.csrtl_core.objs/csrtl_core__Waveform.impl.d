lib/core/waveform.ml: Array Buffer Format Hashtbl Int Interp List Model Observation Option Phase Printf String Word
