lib/core/rtm.ml: Buffer Format List Model Ops Printf Stdlib String Transfer Word
