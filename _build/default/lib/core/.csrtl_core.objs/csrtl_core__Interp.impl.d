lib/core/interp.ml: Array Fu_state Hashtbl List Model Observation Ops Option Phase Resolve Transfer Word
