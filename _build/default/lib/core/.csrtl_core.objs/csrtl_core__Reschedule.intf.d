lib/core/reschedule.mli: Model
