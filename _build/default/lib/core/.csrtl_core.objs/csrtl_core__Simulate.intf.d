lib/core/simulate.mli: Buffer Csrtl_kernel Elaborate Model Observation
