lib/core/dot.ml: Buffer Format Hashtbl List Model Ops Phase Printf String Transfer
