lib/core/controller.ml: Csrtl_kernel Phase Printf Process Scheduler Signal
