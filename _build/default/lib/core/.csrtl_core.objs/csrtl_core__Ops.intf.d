lib/core/ops.mli: Format Word
