lib/core/elaborate.mli: Controller Csrtl_kernel Model Transfer
