lib/core/coverage.mli: Format Model Transfer
