lib/core/conflict.ml: Format Hashtbl Int List Model Ops Option Phase Stdlib String Transfer
