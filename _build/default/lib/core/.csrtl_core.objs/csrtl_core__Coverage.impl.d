lib/core/coverage.ml: Array Format Hashtbl Interp List Model Observation Ops String Transfer Word
