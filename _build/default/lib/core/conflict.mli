(** Static resource-conflict analysis.

    The paper detects conflicts dynamically: a clash resolves to
    ILLEGAL "in specific simulation cycles associated with a specific
    phase of a specific control step".  This module predicts the same
    clashes from the schedule alone, which is possible because
    transfers are statically scheduled 9-tuples.  Dynamic detection
    (in {!Simulate} / {!Interp}) remains authoritative: a static
    double-drive is harmless if one source happens to be DISC. *)

type t =
  | Double_drive of {
      step : int;
      phase : Phase.t;  (** phase in which the drivers are active;
                            the ILLEGAL value is visible one phase later *)
      sink : string;  (** canonical signal name *)
      sources : string list;
    }
  | Op_clash of { step : int; fu : string; ops : Ops.t list }
      (** two transfers select different operations on one unit *)
  | Busy_unit of { fu : string; first_read : int; second_read : int }
      (** a non-pipelined unit is re-used before its latency elapsed *)

val check : Model.t -> t list
(** All potential conflicts, sorted by step. *)

val visible_at : t -> (int * Phase.t) option
(** Where the dynamic ILLEGAL would surface, when predictable. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
