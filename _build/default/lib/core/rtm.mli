(** Textual exchange format for clock-free models (".rtm").

    A line-based format mirroring the paper's tuple notation, used by
    the [csrtl] command-line tool and the test corpus:

    {v
    model fig1
    csmax 7
    reg R1 init 3
    reg R2 init 4
    bus B1
    bus B2
    unit ADD ops add latency 1
    # srcA busA srcB busB read fu[:op] write wbus dst
    transfer R1 B1 R2 B2 5 ADD 6 B1 R1
    v}

    Sources named [X!] refer to input ports, destinations [Y!] to
    output ports; ["-"] marks an absent tuple field.  [unit]
    attributes: [ops <op>[,<op>...]], [latency <n>], [nonpipelined],
    [transparent-illegal].  [input] drives: [const <w>] or
    [schedule <step>:<w> ...].  [#] starts a comment. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val of_string : string -> Model.t
(** Parse; the result is {e not} validated (use {!Model.validate} so
    tools can report conflicts in invalid files). *)

val of_file : string -> Model.t

val to_string : Model.t -> string
(** Render a model; [of_string (to_string m)] equals [m] up to input
    schedule normalization. *)

val to_file : Model.t -> string -> unit
