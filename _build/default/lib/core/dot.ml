let escape s =
  String.concat "" (List.map (fun c -> match c with
      | '"' -> "\\\""
      | c -> String.make 1 c)
      (List.init (String.length s) (String.get s)))

let node_defs (m : Model.t) buf =
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter
    (fun (r : Model.register) ->
      line "  %S [shape=box, style=filled, fillcolor=lightyellow];"
        r.reg_name)
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      line "  %S [shape=trapezium, style=filled, fillcolor=lightblue, label=\"%s\\n%s lat=%d\"];"
        f.fu_name (escape f.fu_name)
        (escape
           (String.concat "," (List.map Ops.to_string f.ops)
            |> fun s -> if String.length s > 24 then String.sub s 0 24 ^ "…" else s))
        f.latency)
    m.fus;
  List.iter
    (fun b ->
      line "  %S [shape=hexagon, style=filled, fillcolor=lightgray];" b)
    m.buses;
  List.iter
    (fun (i : Model.input) ->
      line "  %S [shape=invhouse, style=filled, fillcolor=palegreen];"
        i.in_name)
    m.inputs;
  List.iter
    (fun o -> line "  %S [shape=house, style=filled, fillcolor=mistyrose];" o)
    m.outputs

let resource_of_endpoint = function
  | Transfer.Reg_out r | Transfer.Reg_in r -> r
  | Transfer.Fu_in (f, _) | Transfer.Fu_out f -> f
  | Transfer.Bus b -> b
  | Transfer.In_port p | Transfer.Out_port p -> p

let to_dot ?(title = "") (m : Model.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %S {\n  rankdir=LR;\n  label=%S;\n"
       (if m.name = "" then "model" else m.name)
       (if title = "" then m.name else title));
  node_defs m buf;
  let legs, _ = Model.all_legs m in
  List.iter
    (fun (l : Transfer.leg) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S [label=\"%d/%s\"];\n"
           (resource_of_endpoint l.src)
           (resource_of_endpoint l.dst)
           l.step
           (Phase.to_string l.phase)))
    legs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let structure_only ?(title = "") (m : Model.t) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "digraph %S {\n  rankdir=LR;\n  label=%S;\n"
       (if m.name = "" then "model" else m.name)
       (if title = "" then m.name else title));
  node_defs m buf;
  let legs, _ = Model.all_legs m in
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (l : Transfer.leg) ->
      let edge =
        (resource_of_endpoint l.src, resource_of_endpoint l.dst)
      in
      if not (Hashtbl.mem seen edge) then begin
        Hashtbl.replace seen edge ();
        Buffer.add_string buf
          (Printf.sprintf "  %S -> %S;\n" (fst edge) (snd edge))
      end)
    legs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
