type t = {
  model_name : string;
  cs_max : int;
  regs : (string * Word.t array) list;
  outputs : (string * (int * Word.t) list) list;
  conflicts : (int * Phase.t * string) list;
}

let reg_trace t name = List.assoc_opt name t.regs

let final_reg t name =
  match reg_trace t name with
  | Some arr when Array.length arr > 0 -> Some arr.(Array.length arr - 1)
  | Some _ | None -> None

let output_writes t name =
  Option.value ~default:[] (List.assoc_opt name t.outputs)

let has_conflict t = t.conflicts <> []

let compare_conflict (s1, p1, n1) (s2, p2, n2) =
  let c = Int.compare s1 s2 in
  if c <> 0 then c
  else
    let c = Phase.compare p1 p2 in
    if c <> 0 then c else String.compare n1 n2

let normalize t =
  let by_name (a, _) (b, _) = String.compare a b in
  { t with
    regs = List.sort by_name t.regs;
    outputs =
      List.map (fun (n, ws) -> (n, List.sort Stdlib.compare ws)) t.outputs
      |> List.sort by_name;
    conflicts = List.sort_uniq compare_conflict t.conflicts }

let equal a b = normalize a = normalize b

let diff a b =
  let a = normalize a and b = normalize b in
  let out = ref [] in
  let say fmt = Format.kasprintf (fun s -> out := s :: !out) fmt in
  if a.cs_max <> b.cs_max then say "cs_max: %d vs %d" a.cs_max b.cs_max;
  let reg_names o = List.map fst o.regs in
  if reg_names a <> reg_names b then
    say "register sets differ: [%s] vs [%s]"
      (String.concat " " (reg_names a))
      (String.concat " " (reg_names b))
  else
    List.iter2
      (fun (n, va) (_, vb) ->
        if va <> vb then
          Array.iteri
            (fun i x ->
              if i < Array.length vb && x <> vb.(i) then
                say "%s at step %d: %s vs %s" n (i + 1) (Word.to_string x)
                  (Word.to_string vb.(i)))
            va)
      a.regs b.regs;
  if a.outputs <> b.outputs then say "output traces differ";
  if a.conflicts <> b.conflicts then begin
    let show (s, p, n) =
      Printf.sprintf "%d/%s:%s" s (Phase.to_string p) n
    in
    say "conflicts: [%s] vs [%s]"
      (String.concat " " (List.map show a.conflicts))
      (String.concat " " (List.map show b.conflicts))
  end;
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "@[<v>observation of %s (cs_max=%d)@," t.model_name
    t.cs_max;
  List.iter
    (fun (n, arr) ->
      Format.fprintf ppf "  %s: %s@," n
        (String.concat " "
           (Array.to_list (Array.map Word.to_string arr))))
    t.regs;
  List.iter
    (fun (n, ws) ->
      Format.fprintf ppf "  out %s: %s@," n
        (String.concat " "
           (List.map
              (fun (s, v) -> Printf.sprintf "%d:%s" s (Word.to_string v))
              ws)))
    t.outputs;
  List.iter
    (fun (s, p, n) ->
      Format.fprintf ppf "  ILLEGAL at step %d phase %s on %s@," s
        (Phase.to_string p) n)
    t.conflicts;
  Format.fprintf ppf "@]"
