type t = {
  name : string;
  cs_max : int;
  mutable registers : Model.register list;
  mutable fus : Model.fu list;
  mutable buses : string list;
  mutable inputs : Model.input list;
  mutable outputs : string list;
  mutable transfers : Transfer.t list;
}

let create ?(name = "model") ~cs_max () =
  { name; cs_max; registers = []; fus = []; buses = []; inputs = [];
    outputs = []; transfers = [] }

let reg b ?init name = b.registers <- Model.register ?init name :: b.registers

let unit_ b ?latency ?pipelined ?sticky_illegal ~ops name =
  b.fus <- Model.fu ?latency ?pipelined ?sticky_illegal ~ops name :: b.fus

let bus b name = b.buses <- name :: b.buses
let buses b names = List.iter (bus b) names

let input b ?value ?schedule name =
  let drive =
    match value, schedule with
    | Some v, None -> Model.Const v
    | None, Some s -> Model.Schedule (List.sort Stdlib.compare s)
    | None, None -> Model.Const Word.disc
    | Some _, Some _ ->
      invalid_arg "Builder.input: both value and schedule given"
  in
  b.inputs <- { Model.in_name = name; drive } :: b.inputs

let output b name = b.outputs <- name :: b.outputs
let transfer b t = b.transfers <- t :: b.transfers

let binary ?op b ~fu ~a:(src_a, bus_a) ~b:(src_b, bus_b) ~read
    ~write:(write_step, write_bus) ~dst =
  transfer b
    (Transfer.full ~src_a ~bus_a ~src_b ~bus_b ~read_step:read ~fu ?op
       ~write_step ~write_bus ~dst ())

let unary ?op b ~fu ~a:(src_a, bus_a) ~read ~write:(write_step, write_bus)
    ~dst =
  transfer b
    (Transfer.make ~src_a ~bus_a ~read_step:read ?op ~write_step ~write_bus
       ~dst ~fu ())

let read_only ?op b ~fu ?a ?b:operand_b ~read () =
  let src_a, bus_a =
    match a with Some (s, bb) -> (Some s, Some bb) | None -> (None, None)
  in
  let src_b, bus_b =
    match operand_b with
    | Some (s, bb) -> (Some s, Some bb)
    | None -> (None, None)
  in
  transfer b
    { Transfer.src_a; bus_a; src_b; bus_b; read_step = Some read; fu; op;
      write_step = None; write_bus = None; dst = None }

let write_only b ~fu ~write:(write_step, write_bus) ~dst =
  transfer b
    (Transfer.make ~write_step ~write_bus ~dst ~fu ())

let assemble b =
  { Model.name = b.name; cs_max = b.cs_max;
    registers = List.rev b.registers; fus = List.rev b.fus;
    buses = List.rev b.buses; inputs = List.rev b.inputs;
    outputs = List.rev b.outputs; transfers = List.rev b.transfers }

let finish b =
  let m = assemble b in
  Model.validate_exn m;
  m

let finish_unchecked = assemble

let fig1 ?(x = 3) ?(y = 4) () =
  let b = create ~name:"fig1" ~cs_max:7 () in
  reg b ~init:(Word.nat x) "R1";
  reg b ~init:(Word.nat y) "R2";
  buses b [ "B1"; "B2" ];
  unit_ b ~ops:[ Ops.Add ] "ADD";
  binary b ~fu:"ADD"
    ~a:(Transfer.From_reg "R1", "B1")
    ~b:(Transfer.From_reg "R2", "B2")
    ~read:5 ~write:(6, "B1") ~dst:(Transfer.To_reg "R1");
  finish b
