(** Register transfers: the paper's 9-tuples and their legs.

    A concrete register transfer is written as the tuple
    [(srcA, busA, srcB, busB, readStep, module, writeStep, writeBus,
    dstReg)] (paper Fig. 1); any field except the module may be absent
    ("-" in the paper).  A tuple {e decomposes} into up to six [TRANS]
    process instances — its {e legs} — one per phase slot, and legs
    {e recompose} into (partial) tuples.  This bidirectional mapping
    is the paper's §2.7 formal-semantics bridge; we also implement the
    [merge] the paper leaves implicit: joining a read-part and a
    write-part of the same functional unit whose step distance equals
    the unit's latency. *)

type source =
  | From_reg of string
  | From_input of string  (** entity input port, readable like a register output *)

type dest =
  | To_reg of string
  | To_output of string  (** entity output port, writable like a register input *)

type t = {
  src_a : source option;
  bus_a : string option;
  src_b : source option;
  bus_b : string option;
  read_step : int option;
  fu : string;
  op : Ops.t option;  (** §3 extension; [None] = unit's first operation *)
  write_step : int option;
  write_bus : string option;
  dst : dest option;
}

(** Sinks and sources of individual phase legs. *)
type endpoint =
  | Reg_out of string
  | Reg_in of string
  | Fu_in of string * int  (** port 1 or 2 *)
  | Fu_out of string
  | Bus of string
  | In_port of string
  | Out_port of string

(** One [TRANS] process instance: at control step [step], phase
    [phase], the value at [src] is transferred to [dst]. *)
type leg = {
  step : int;
  phase : Phase.t;
  src : endpoint;
  dst : endpoint;
}

(** Operation selection accompanying the read part of a transfer:
    which operation the unit performs on the operands read at
    [sel_step]. *)
type op_select = {
  sel_step : int;
  sel_fu : string;
  sel_op : Ops.t;
}

val make :
  ?src_a:source -> ?bus_a:string -> ?src_b:source -> ?bus_b:string ->
  ?read_step:int -> ?op:Ops.t -> ?write_step:int -> ?write_bus:string ->
  ?dst:dest -> fu:string -> unit -> t

val full :
  src_a:source -> bus_a:string -> src_b:source -> bus_b:string ->
  read_step:int -> fu:string -> ?op:Ops.t -> write_step:int ->
  write_bus:string -> dst:dest -> unit -> t
(** The complete 9-tuple of Fig. 1. *)

val decompose : t -> leg list * op_select list
(** Legs in phase order ([Ra] a, [Ra] b, [Rb] a, [Rb] b, [Wa], [Wb]),
    plus the op selection if the tuple has a read part. *)

val compose : leg list -> op_select list -> t list
(** Recompose legs into partial tuples, the inverse direction of the
    paper's §2.7 mapping.  Read legs pair by (step, bus, unit port);
    write legs pair by (step, bus, unit).  Unpairable legs yield
    tuples with the known fields only.  The result is sorted. *)

val merge : latency_of:(string -> int) -> t list -> t list
(** Join read-only and write-only partial tuples of the same unit when
    [write_step = read_step + latency], producing full tuples. *)

val leg_source_name : source -> string
val leg_dest_name : dest -> string

val endpoint_name : endpoint -> string
(** Canonical signal name, e.g. [R1.out], [ADD.in1], [B1]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** Paper notation: [(R1,B1,R2,B2,5,ADD,6,B1,R1)], with ["-"] for
    absent fields and [:op] after the unit when an operation is
    selected. *)

val pp_leg : Format.formatter -> leg -> unit
val to_string : t -> string
