exception Parse_error of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse_error (line, m))) fmt

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun w -> w <> "")

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let parse_word line s =
  match Word.of_string s with
  | Some w -> w
  | None -> fail line "expected a value (natural, DISC or ILLEGAL): %s" s

let parse_op line s =
  match Ops.of_string s with
  | Some op -> op
  | None -> fail line "unknown operation %s" s

(* [FU] or [FU:op] *)
let parse_fu_field line s =
  match String.index_opt s ':' with
  | None -> (s, None)
  | Some i ->
    let fu = String.sub s 0 i in
    let op = String.sub s (i + 1) (String.length s - i - 1) in
    (fu, Some (parse_op line op))

let parse_source s =
  if s = "-" then None
  else if String.length s > 1 && s.[String.length s - 1] = '!' then
    Some (Transfer.From_input (String.sub s 0 (String.length s - 1)))
  else Some (Transfer.From_reg s)

let parse_dest s =
  if s = "-" then None
  else if String.length s > 1 && s.[String.length s - 1] = '!' then
    Some (Transfer.To_output (String.sub s 0 (String.length s - 1)))
  else Some (Transfer.To_reg s)

let parse_opt_field s = if s = "-" then None else Some s

let parse_opt_int line s =
  if s = "-" then None
  else
    match int_of_string_opt s with
    | Some n -> Some n
    | None -> fail line "expected a step number or -: %s" s

let parse_unit_attrs line words =
  let ops = ref [] in
  let latency = ref 1 in
  let pipelined = ref true in
  let sticky = ref true in
  let rec go = function
    | [] -> ()
    | "ops" :: spec :: rest ->
      ops :=
        List.map (parse_op line) (String.split_on_char ',' spec);
      go rest
    | "latency" :: n :: rest ->
      (match int_of_string_opt n with
       | Some v -> latency := v
       | None -> fail line "bad latency %s" n);
      go rest
    | "nonpipelined" :: rest ->
      pipelined := false;
      go rest
    | "pipelined" :: rest ->
      pipelined := true;
      go rest
    | "transparent-illegal" :: rest ->
      sticky := false;
      go rest
    | w :: _ -> fail line "unknown unit attribute %s" w
  in
  go words;
  if !ops = [] then fail line "unit needs an ops list";
  (!ops, !latency, !pipelined, !sticky)

let parse_input_drive line words =
  match words with
  | [ "const"; v ] -> Model.Const (parse_word line v)
  | "schedule" :: entries when entries <> [] ->
    let parse_entry e =
      match String.index_opt e ':' with
      | None -> fail line "schedule entry must be step:value, got %s" e
      | Some i ->
        let s = String.sub e 0 i in
        let v = String.sub e (i + 1) (String.length e - i - 1) in
        (match int_of_string_opt s with
         | Some step -> (step, parse_word line v)
         | None -> fail line "bad step in schedule entry %s" e)
    in
    Model.Schedule (List.sort Stdlib.compare (List.map parse_entry entries))
  | [] -> Model.Const Word.disc
  | w :: _ -> fail line "unknown input drive %s" w

let of_string text =
  let name = ref "model" in
  let cs_max = ref None in
  let registers = ref [] in
  let fus = ref [] in
  let buses = ref [] in
  let inputs = ref [] in
  let outputs = ref [] in
  let transfers = ref [] in
  let handle_line lineno raw =
    let words = split_words (strip_comment raw) in
    match words with
    | [] -> ()
    | [ "model"; n ] -> name := n
    | [ "csmax"; n ] | [ "cs_max"; n ] ->
      (match int_of_string_opt n with
       | Some v -> cs_max := Some v
       | None -> fail lineno "bad csmax %s" n)
    | [ "reg"; n ] -> registers := Model.register n :: !registers
    | [ "reg"; n; "init"; v ] ->
      registers :=
        Model.register ~init:(parse_word lineno v) n :: !registers
    | "unit" :: n :: attrs ->
      let ops, latency, pipelined, sticky_illegal =
        parse_unit_attrs lineno attrs
      in
      fus :=
        Model.fu ~latency ~pipelined ~sticky_illegal ~ops n :: !fus
    | [ "bus"; n ] -> buses := n :: !buses
    | "bus" :: ns when ns <> [] -> buses := List.rev ns @ !buses
    | "input" :: n :: drive ->
      inputs :=
        { Model.in_name = n; drive = parse_input_drive lineno drive }
        :: !inputs
    | [ "output"; n ] -> outputs := n :: !outputs
    | [ "transfer"; sa; ba; sb; bb; rs; fu_field; ws; wb; dst ] ->
      let fu, op = parse_fu_field lineno fu_field in
      transfers :=
        { Transfer.src_a = parse_source sa;
          bus_a = parse_opt_field ba;
          src_b = parse_source sb;
          bus_b = parse_opt_field bb;
          read_step = parse_opt_int lineno rs;
          fu; op;
          write_step = parse_opt_int lineno ws;
          write_bus = parse_opt_field wb;
          dst = parse_dest dst }
        :: !transfers
    | "transfer" :: _ ->
      fail lineno "transfer needs 9 tuple fields"
    | w :: _ -> fail lineno "unknown directive %s" w
  in
  List.iteri
    (fun i l -> handle_line (i + 1) l)
    (String.split_on_char '\n' text);
  let cs_max =
    match !cs_max with
    | Some v -> v
    | None -> raise (Parse_error (0, "missing csmax directive"))
  in
  { Model.name = !name; cs_max;
    registers = List.rev !registers;
    fus = List.rev !fus;
    buses = List.rev !buses;
    inputs = List.rev !inputs;
    outputs = List.rev !outputs;
    transfers = List.rev !transfers }

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let render_source = function
  | None -> "-"
  | Some (Transfer.From_reg r) -> r
  | Some (Transfer.From_input i) -> i ^ "!"

let render_dest = function
  | None -> "-"
  | Some (Transfer.To_reg r) -> r
  | Some (Transfer.To_output o) -> o ^ "!"

let render_opt = function None -> "-" | Some s -> s
let render_opt_int = function None -> "-" | Some n -> string_of_int n

let to_string (m : Model.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "model %s" m.name;
  line "csmax %d" m.cs_max;
  List.iter
    (fun (r : Model.register) ->
      if Word.is_disc r.init then line "reg %s" r.reg_name
      else line "reg %s init %s" r.reg_name (Word.to_string r.init))
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      line "unit %s ops %s latency %d%s%s" f.fu_name
        (String.concat "," (List.map Ops.to_string f.ops))
        f.latency
        (if f.pipelined then "" else " nonpipelined")
        (if f.sticky_illegal then "" else " transparent-illegal"))
    m.fus;
  List.iter (fun b -> line "bus %s" b) m.buses;
  List.iter
    (fun (i : Model.input) ->
      match i.drive with
      | Model.Const v -> line "input %s const %s" i.in_name (Word.to_string v)
      | Model.Schedule entries ->
        line "input %s schedule %s" i.in_name
          (String.concat " "
             (List.map
                (fun (s, v) -> Printf.sprintf "%d:%s" s (Word.to_string v))
                entries)))
    m.inputs;
  List.iter (fun o -> line "output %s" o) m.outputs;
  List.iter
    (fun (t : Transfer.t) ->
      let fu_field =
        match t.op with
        | None -> t.fu
        | Some op -> t.fu ^ ":" ^ Ops.to_string op
      in
      line "transfer %s %s %s %s %s %s %s %s %s"
        (render_source t.src_a) (render_opt t.bus_a)
        (render_source t.src_b) (render_opt t.bus_b)
        (render_opt_int t.read_step) fu_field
        (render_opt_int t.write_step) (render_opt t.write_bus)
        (render_dest t.dst))
    m.transfers;
  Buffer.contents buf

let to_file m path =
  let oc = open_out path in
  output_string oc (to_string m);
  close_out oc
