type source = From_reg of string | From_input of string
type dest = To_reg of string | To_output of string

type t = {
  src_a : source option;
  bus_a : string option;
  src_b : source option;
  bus_b : string option;
  read_step : int option;
  fu : string;
  op : Ops.t option;
  write_step : int option;
  write_bus : string option;
  dst : dest option;
}

type endpoint =
  | Reg_out of string
  | Reg_in of string
  | Fu_in of string * int
  | Fu_out of string
  | Bus of string
  | In_port of string
  | Out_port of string

type leg = { step : int; phase : Phase.t; src : endpoint; dst : endpoint }
type op_select = { sel_step : int; sel_fu : string; sel_op : Ops.t }

let make ?src_a ?bus_a ?src_b ?bus_b ?read_step ?op ?write_step ?write_bus
    ?dst ~fu () =
  { src_a; bus_a; src_b; bus_b; read_step; fu; op; write_step; write_bus;
    dst }

let full ~src_a ~bus_a ~src_b ~bus_b ~read_step ~fu ?op ~write_step
    ~write_bus ~dst () =
  { src_a = Some src_a; bus_a = Some bus_a; src_b = Some src_b;
    bus_b = Some bus_b; read_step = Some read_step; fu; op;
    write_step = Some write_step; write_bus = Some write_bus;
    dst = Some dst }

let source_endpoint = function
  | From_reg r -> Reg_out r
  | From_input i -> In_port i

let dest_endpoint = function
  | To_reg r -> Reg_in r
  | To_output o -> Out_port o

let leg_source_name = function From_reg n | From_input n -> n
let leg_dest_name = function To_reg n | To_output n -> n

let endpoint_name = function
  | Reg_out r -> r ^ ".out"
  | Reg_in r -> r ^ ".in"
  | Fu_in (f, i) -> Printf.sprintf "%s.in%d" f i
  | Fu_out f -> f ^ ".out"
  | Bus b -> b
  | In_port p -> p
  | Out_port p -> p

let decompose t =
  let read_legs port src bus =
    match src, bus, t.read_step with
    | Some s, Some b, Some step ->
      [ { step; phase = Phase.Ra; src = source_endpoint s; dst = Bus b };
        { step; phase = Phase.Rb; src = Bus b; dst = Fu_in (t.fu, port) } ]
    | _, _, _ -> []
  in
  let write_legs =
    match t.write_step, t.write_bus with
    | Some step, Some b ->
      let wa =
        { step; phase = Phase.Wa; src = Fu_out t.fu; dst = Bus b }
      in
      (match t.dst with
       | Some d ->
         [ wa; { step; phase = Phase.Wb; src = Bus b;
                 dst = dest_endpoint d } ]
       | None -> [ wa ])
    | _, _ -> []
  in
  let legs =
    let ra_rb_a = read_legs 1 t.src_a t.bus_a in
    let ra_rb_b = read_legs 2 t.src_b t.bus_b in
    let by_phase p l = List.filter (fun leg -> leg.phase = p) l in
    let reads = ra_rb_a @ ra_rb_b in
    by_phase Phase.Ra reads @ by_phase Phase.Rb reads @ write_legs
  in
  let selects =
    match t.read_step, t.op with
    | Some step, Some op -> [ { sel_step = step; sel_fu = t.fu; sel_op = op } ]
    | Some _, None | None, _ -> []
  in
  (legs, selects)

(* -- recomposition ---------------------------------------------------- *)

let endpoint_source = function
  | Reg_out r -> Some (From_reg r)
  | In_port p -> Some (From_input p)
  | Reg_in _ | Fu_in _ | Fu_out _ | Bus _ | Out_port _ -> None

let endpoint_dest = function
  | Reg_in r -> Some (To_reg r)
  | Out_port p -> Some (To_output p)
  | Reg_out _ | Fu_in _ | Fu_out _ | Bus _ | In_port _ -> None

let compare_opt cmp a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let first_step t =
  match t.read_step, t.write_step with
  | Some r, Some w -> min r w
  | Some s, None | None, Some s -> s
  | None, None -> max_int

let compare a b =
  let c = Int.compare (first_step a) (first_step b) in
  if c <> 0 then c
  else
    let c = String.compare a.fu b.fu in
    if c <> 0 then c
    else
      let c = compare_opt Int.compare a.read_step b.read_step in
      if c <> 0 then c
      else
        let c = compare_opt Int.compare a.write_step b.write_step in
        if c <> 0 then c else Stdlib.compare a b

let equal a b = compare a b = 0

let compose legs selects =
  (* Pair Ra legs with Rb legs that forward the same bus at the same
     step; pair Wa legs with Wb legs likewise. *)
  let ra, rest =
    List.partition (fun l -> l.phase = Phase.Ra) legs
  in
  let rb, rest = List.partition (fun l -> l.phase = Phase.Rb) rest in
  let wa, rest = List.partition (fun l -> l.phase = Phase.Wa) rest in
  let wb, _ = List.partition (fun l -> l.phase = Phase.Wb) rest in
  let find_op fu step =
    List.find_map
      (fun s ->
        if s.sel_fu = fu && s.sel_step = step then Some s.sel_op else None)
      selects
  in
  (* Read tuples: one per Rb leg (the leg naming the unit port). *)
  let read_tuples =
    List.map
      (fun l ->
        let bus = match l.src with Bus b -> Some b | _ -> None in
        let fu, port =
          match l.dst with
          | Fu_in (f, p) -> (f, p)
          | _ -> ("?", 1)
        in
        let src =
          List.find_map
            (fun r ->
              if r.step = l.step && r.dst = l.src then
                endpoint_source r.src
              else None)
            ra
        in
        let t =
          { src_a = None; bus_a = None; src_b = None; bus_b = None;
            read_step = Some l.step; fu; op = find_op fu l.step;
            write_step = None; write_bus = None; dst = None }
        in
        if port = 1 then { t with src_a = src; bus_a = bus }
        else { t with src_b = src; bus_b = bus })
      rb
  in
  (* Merge port-1 and port-2 read tuples of the same (fu, step). *)
  let rec merge_reads acc = function
    | [] -> List.rev acc
    | t :: rest ->
      let same, rest =
        List.partition
          (fun u -> u.fu = t.fu && u.read_step = t.read_step)
          rest
      in
      let merged =
        List.fold_left
          (fun t u ->
            { t with
              src_a = (match t.src_a with None -> u.src_a | s -> s);
              bus_a = (match t.bus_a with None -> u.bus_a | s -> s);
              src_b = (match t.src_b with None -> u.src_b | s -> s);
              bus_b = (match t.bus_b with None -> u.bus_b | s -> s);
              op = (match t.op with None -> u.op | s -> s) })
          t same
      in
      merge_reads (merged :: acc) rest
  in
  let read_tuples = merge_reads [] read_tuples in
  (* Operation selections without operand legs come from arity-0
     operations (a constant producer): reconstruct their read part so
     the round trip stays exact. *)
  let read_tuples =
    read_tuples
    @ List.filter_map
        (fun (s : op_select) ->
          let covered =
            List.exists
              (fun t ->
                t.fu = s.sel_fu && t.read_step = Some s.sel_step)
              read_tuples
          in
          if covered then None
          else
            Some
              { src_a = None; bus_a = None; src_b = None; bus_b = None;
                read_step = Some s.sel_step; fu = s.sel_fu;
                op = Some s.sel_op; write_step = None; write_bus = None;
                dst = None })
        selects
  in
  (* Write tuples: one per Wa leg. *)
  let write_tuples =
    List.map
      (fun l ->
        let fu = match l.src with Fu_out f -> f | _ -> "?" in
        let bus = match l.dst with Bus b -> Some b | _ -> None in
        let dst =
          List.find_map
            (fun w ->
              if w.step = l.step && w.src = l.dst then endpoint_dest w.dst
              else None)
            wb
        in
        { src_a = None; bus_a = None; src_b = None; bus_b = None;
          read_step = None; fu; op = None; write_step = Some l.step;
          write_bus = bus; dst })
      wa
  in
  List.sort compare (read_tuples @ write_tuples)

let merge ~latency_of tuples =
  let reads, others =
    List.partition
      (fun t -> t.read_step <> None && t.write_step = None)
      tuples
  in
  let writes, rest =
    List.partition
      (fun t -> t.write_step <> None && t.read_step = None)
      others
  in
  let used = Hashtbl.create 8 in
  let merged =
    List.map
      (fun r ->
        let want =
          match r.read_step with
          | Some s -> Some (s + latency_of r.fu)
          | None -> None
        in
        let candidate =
          List.find_opt
            (fun w ->
              (not (Hashtbl.mem used w)) && w.fu = r.fu
              && w.write_step = want)
            writes
        in
        match candidate with
        | Some w ->
          Hashtbl.replace used w ();
          { r with write_step = w.write_step; write_bus = w.write_bus;
            dst = w.dst }
        | None -> r)
      reads
  in
  let leftover = List.filter (fun w -> not (Hashtbl.mem used w)) writes in
  List.sort compare (merged @ leftover @ rest)

(* -- printing ---------------------------------------------------------- *)

let pp_source ppf = function
  | From_reg r -> Format.pp_print_string ppf r
  | From_input i -> Format.fprintf ppf "%s!" i

let pp_dest ppf = function
  | To_reg r -> Format.pp_print_string ppf r
  | To_output o -> Format.fprintf ppf "%s!" o

let pp_opt pp_elt ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some x -> pp_elt ppf x

let pp ppf t =
  let str = Format.pp_print_string in
  let int ppf = Format.fprintf ppf "%d" in
  Format.fprintf ppf "(%a,%a,%a,%a,%a,%s%a,%a,%a,%a)"
    (pp_opt pp_source) t.src_a
    (pp_opt str) t.bus_a
    (pp_opt pp_source) t.src_b
    (pp_opt str) t.bus_b
    (pp_opt int) t.read_step
    t.fu
    (fun ppf -> function
      | None -> ()
      | Some op -> Format.fprintf ppf ":%s" (Ops.to_string op))
    t.op
    (pp_opt int) t.write_step
    (pp_opt str) t.write_bus
    (pp_opt pp_dest) t.dst

let pp_leg ppf l =
  Format.fprintf ppf "%s -> %s @%d/%s"
    (endpoint_name l.src) (endpoint_name l.dst) l.step
    (Phase.to_string l.phase)

let to_string t = Format.asprintf "%a" pp t
