(** Imperative construction API for clock-free models.

    A thin convenience layer over {!Model}: declare resources, record
    transfers in paper tuple notation, and [finish].  Also provides
    {!fig1}, the paper's running example. *)

type t

val create : ?name:string -> cs_max:int -> unit -> t

val reg : t -> ?init:Word.t -> string -> unit
val unit_ :
  t -> ?latency:int -> ?pipelined:bool -> ?sticky_illegal:bool ->
  ops:Ops.t list -> string -> unit
val bus : t -> string -> unit
val buses : t -> string list -> unit
val input : t -> ?value:Word.t -> ?schedule:(int * Word.t) list ->
  string -> unit
val output : t -> string -> unit

val transfer : t -> Transfer.t -> unit

val binary :
  ?op:Ops.t -> t -> fu:string -> a:Transfer.source * string ->
  b:Transfer.source * string -> read:int -> write:int * string ->
  dst:Transfer.dest -> unit
(** Full 9-tuple: read both operands at [read], write the result at
    [write] (step, bus). *)

val unary :
  ?op:Ops.t -> t -> fu:string -> a:Transfer.source * string ->
  read:int -> write:int * string -> dst:Transfer.dest -> unit

val read_only :
  ?op:Ops.t -> t -> fu:string -> ?a:Transfer.source * string ->
  ?b:Transfer.source * string -> read:int -> unit -> unit
(** Partial tuple: operands in, no write-back scheduled. *)

val write_only :
  t -> fu:string -> write:int * string -> dst:Transfer.dest -> unit

val finish : t -> Model.t
(** Assembles and validates the model ({!Model.validate_exn}). *)

val finish_unchecked : t -> Model.t
(** Assembles without validating — for tests that want invalid
    models. *)

val fig1 : ?x:int -> ?y:int -> unit -> Model.t
(** The paper's Fig. 1 example: registers [R1] (init [x], default 3)
    and [R2] (init [y], default 4), buses [B1]/[B2], pipelined adder
    [ADD]; the tuple [(R1,B1,R2,B2,5,ADD,6,B1,R1)] with [cs_max] 7.
    After step 6, [R1 = x + y]. *)
