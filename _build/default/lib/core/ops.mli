(** Operations performed by functional units.

    The paper's base model has single-operation modules (the ADD
    example); §3 extends it so "a register transfer also defines the
    operation to be performed by the module".  Each functional unit
    declares the list of operations it implements; a transfer selects
    one by index through a resolved op-select port (so two transfers
    selecting different operations in the same control step conflict
    into ILLEGAL, like any other resource conflict).

    Arithmetic wraps modulo [2 ^ Word.width]; [Asr], [Neg], [Lts] and
    the immediate arithmetic-shift forms use the two's-complement
    reading of naturals, which is how the IKS fixed-point microcode
    operates on this substrate. *)

type t =
  | Add | Sub | Mul
  | Band | Bor | Bxor  (** bitwise *)
  | Shl | Shr | Asr  (** shift by second operand *)
  | Shli of int | Shri of int | Asri of int  (** immediate shifts *)
  | Addi of int | Subi of int | Muli of int
  | Mulfx of int
      (** fixed-point multiply: full signed product, arithmetic right
          shift by [n] — the wide multiply/normalize of DSP datapaths
          such as the IKS MACC *)
  | Min | Max
  | Eq | Lt | Lts  (** comparisons: 1 / 0 *)
  | Pass  (** unary: copy first operand (direct links, reg-to-reg) *)
  | Neg | Bnot | Abs  (** unary *)
  | Const of int  (** produce a constant (paper's [F := 1]) *)
  | Mac  (** stateful: accumulator [m := m + a*b]; latency-1 units only *)

val arity : t -> int
(** 0 ([Const]), 1, or 2. *)

val is_stateful : t -> bool
(** [Mac] threads the unit's previous state. *)

val eval : t -> int array -> int
(** Apply to natural operands ([arity t] of them; [Mac] additionally
    takes the previous accumulator as a third element).  Pure
    arithmetic on in-range naturals; no sentinel handling. *)

val apply : t -> prev:Word.t -> Word.t -> Word.t -> Word.t
(** Full sentinel-lifted application following the paper's ADD model:
    all needed operands DISC -> DISC (or held accumulator for [Mac]);
    any operand ILLEGAL, or operands partially DISC -> ILLEGAL;
    otherwise {!eval}. *)

val to_string : t -> string
val of_string : string -> t option
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val commutative : t -> bool
(** Used by the verification library to normalize symbolic terms. *)
