let changes_at (obs : Observation.t) =
  (* steps (1-based) where any register changes value *)
  let interesting = Hashtbl.create 16 in
  List.iter
    (fun (_, arr) ->
      Array.iteri
        (fun i v ->
          let prev = if i = 0 then Word.disc else arr.(i - 1) in
          if not (Word.equal v prev) then
            Hashtbl.replace interesting (i + 1) ())
        arr)
    obs.Observation.regs;
  List.iter
    (fun (_, writes) ->
      List.iter (fun (s, _) -> Hashtbl.replace interesting s ()) writes)
    obs.Observation.outputs;
  List.iter
    (fun (s, _, _) -> Hashtbl.replace interesting s ())
    obs.Observation.conflicts;
  interesting

let pick_steps ~max_steps (obs : Observation.t) =
  let all = List.init obs.Observation.cs_max (fun i -> i + 1) in
  if List.length all <= max_steps then all
  else begin
    let interesting = changes_at obs in
    let marked = List.filter (fun s -> Hashtbl.mem interesting s) all in
    let head = List.filteri (fun i _ -> i < 2) all in
    let chosen = List.sort_uniq Int.compare (head @ marked) in
    (* still too many: keep the first max_steps *)
    List.filteri (fun i _ -> i < max_steps) chosen
  end

let render_steps (obs : Observation.t) steps =
  let buf = Buffer.create 1024 in
  let cell v = Word.to_string v in
  (* column widths *)
  let col_values =
    List.map
      (fun s ->
        let vals =
          List.map
            (fun (_, arr) -> cell arr.(s - 1))
            obs.Observation.regs
          @ List.concat_map
              (fun (_, writes) ->
                List.filter_map
                  (fun (w, v) -> if w = s then Some (cell v) else None)
                  writes)
              obs.Observation.outputs
        in
        let width =
          List.fold_left
            (fun acc str -> max acc (String.length str))
            (String.length (string_of_int s))
            vals
        in
        (s, width))
      steps
  in
  let name_width =
    List.fold_left
      (fun acc (n, _) -> max acc (String.length n))
      4
      (obs.Observation.regs
       @ List.map (fun (n, _) -> (n, [||])) obs.Observation.outputs)
  in
  let pad w s = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let header =
    pad name_width "step"
    :: List.map (fun (s, w) -> pad w (string_of_int s)) col_values
  in
  Buffer.add_string buf (String.concat "  " header);
  Buffer.add_char buf '\n';
  (* registers: elide values unchanged since the previous column *)
  List.iter
    (fun (name, arr) ->
      let last = ref None in
      let row =
        pad name_width name
        :: List.map
             (fun (s, w) ->
               let v = arr.(s - 1) in
               let shown =
                 match !last with
                 | Some p when Word.equal p v -> pad w "."
                 | Some _ | None -> pad w (cell v)
               in
               last := Some v;
               shown)
             col_values
      in
      Buffer.add_string buf (String.concat "  " row);
      Buffer.add_char buf '\n')
    obs.Observation.regs;
  (* outputs: value only at their write steps *)
  List.iter
    (fun (name, writes) ->
      let row =
        pad name_width name
        :: List.map
             (fun (s, w) ->
               match List.assoc_opt s writes with
               | Some v -> pad w (cell v)
               | None -> pad w "")
             col_values
      in
      Buffer.add_string buf (String.concat "  " row);
      Buffer.add_char buf '\n')
    obs.Observation.outputs;
  (* conflicts *)
  List.iter
    (fun (s, p, n) ->
      Buffer.add_string buf
        (Printf.sprintf "!! ILLEGAL on %s at step %d phase %s\n" n s
           (Phase.to_string p)))
    obs.Observation.conflicts;
  Buffer.contents buf

let render ?(max_steps = 32) obs =
  render_steps obs (pick_steps ~max_steps obs)

let render_full (obs : Observation.t) =
  render_steps obs (List.init obs.Observation.cs_max (fun i -> i + 1))

let pp ppf obs = Format.pp_print_string ppf (render obs)

let phase_view ?(from_step = 1) ?to_step (m : Model.t) =
  let to_step = Option.value ~default:m.Model.cs_max to_step in
  let entries = ref [] in
  let hook ~step ~phase ~sink v =
    if step >= from_step && step <= to_step && not (Word.is_disc v) then
      entries := (step, phase, sink, v) :: !entries
  in
  ignore (Interp.run_with_hook ~on_visible:hook m);
  let buf = Buffer.create 1024 in
  let current = ref (-1) in
  List.iter
    (fun (step, phase, sink, v) ->
      if step <> !current then begin
        current := step;
        Buffer.add_string buf (Printf.sprintf "step %d\n" step)
      end;
      Buffer.add_string buf
        (Printf.sprintf "  %-3s %-16s %s%s\n" (Phase.to_string phase) sink
           (Word.to_string v)
           (if Word.is_illegal v then "   <-- conflict" else "")))
    (List.rev !entries);
  if Buffer.length buf = 0 then "(no sink activity in the window)\n"
  else Buffer.contents buf
