type t = Ra | Rb | Cm | Wa | Wb | Cr

let all = [ Ra; Rb; Cm; Wa; Wb; Cr ]
let count = 6
let low = Ra
let high = Cr

let succ = function
  | Ra -> Rb
  | Rb -> Cm
  | Cm -> Wa
  | Wa -> Wb
  | Wb -> Cr
  | Cr -> Ra

let pred = function
  | Ra -> Cr
  | Rb -> Ra
  | Cm -> Rb
  | Wa -> Cm
  | Wb -> Wa
  | Cr -> Wb

let to_int = function
  | Ra -> 0
  | Rb -> 1
  | Cm -> 2
  | Wa -> 3
  | Wb -> 4
  | Cr -> 5

let of_int = function
  | 0 -> Some Ra
  | 1 -> Some Rb
  | 2 -> Some Cm
  | 3 -> Some Wa
  | 4 -> Some Wb
  | 5 -> Some Cr
  | _ -> None

let of_int_exn n =
  match of_int n with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Phase.of_int_exn: %d" n)

let to_string = function
  | Ra -> "ra"
  | Rb -> "rb"
  | Cm -> "cm"
  | Wa -> "wa"
  | Wb -> "wb"
  | Cr -> "cr"

let of_string = function
  | "ra" | "rA" -> Some Ra
  | "rb" | "rB" -> Some Rb
  | "cm" | "cM" -> Some Cm
  | "wa" | "wA" -> Some Wa
  | "wb" | "wB" -> Some Wb
  | "cr" | "cR" -> Some Cr
  | _ -> None

let equal a b = a = b
let compare a b = Int.compare (to_int a) (to_int b)
let pp ppf p = Format.pp_print_string ppf (to_string p)
