(** Schedule transformations on clock-free models.

    The paper's stated goal is "to map formal timing abstraction
    mechanisms to transformations on VHDL subsets" (§2.7); this module
    provides the canonical such transformation: {e compaction} —
    re-embedding the same transfers into the earliest control steps
    that preserve behaviour, with resource bindings (buses, units,
    registers) unchanged.

    A tuple may move earlier as long as
    - it still reads each register {e after} the write that produced
      the value it consumed (read-after-write),
    - every reader of the value it overwrites still reads {e before}
      the overwrite lands (write-after-read; a read and a write of one
      register may share a step — reads happen at [ra], latches at
      [cr]),
    - writers of one register keep their order (write-after-write),
    - no two tuples drive one bus's read side or write side in the
      same step, units accept at most one operand set per step
      (non-pipelined ones keep their latency window exclusive),
    - reads of an accumulator unit keep their order (hold-on-idle
      state folds over reads in step order); units whose state can
      reset on idle steps (a stateful operation alongside others) are
      pinned entirely,
    - tuples reading schedule-driven inputs, and partial tuples, stay
      where they are (their meaning depends on the step).

    Placement is a single earliest-feasible pass in original read
    order; each bound taken from a not-yet-moved tuple only relaxes
    when that tuple later moves, so the pass is sound.  The result is
    validated and statically conflict-free; the test suite
    additionally proves behaviour preservation symbolically
    ({!Csrtl_verify.Symsim} term equality). *)

val compact : Model.t -> Model.t
(** Earliest-feasible rescheduling; [cs_max] shrinks to the last
    write step.  Raises [Invalid_argument] if the input model does
    not validate or has static conflicts. *)

val compaction : Model.t -> int * int
(** [(original cs_max, compacted cs_max)] — the headline numbers. *)
