let combine a b =
  if Word.is_disc a then b
  else if Word.is_disc b then a
  else Word.illegal

let resolve values = Array.fold_left combine Word.disc values
let resolve_list values = List.fold_left combine Word.disc values

let incremental () =
  (* DISC contributes nothing; exactly one natural resolves to that
     natural (recovered from the running sum); anything else is a
     conflict. *)
  let nat_count = ref 0 in
  let illegal_count = ref 0 in
  let sum = ref 0 in
  let shift v delta =
    if Word.is_nat v then begin
      nat_count := !nat_count + delta;
      sum := !sum + (delta * v)
    end
    else if Word.is_illegal v then illegal_count := !illegal_count + delta
  in
  { Csrtl_kernel.Types.incr_add = (fun v -> shift v 1);
    incr_remove = (fun v -> shift v (-1));
    incr_read =
      (fun () ->
        if !illegal_count > 0 then Word.illegal
        else
          match !nat_count with
          | 0 -> Word.disc
          | 1 -> !sum
          | _ -> Word.illegal) }

let kernel_resolution = Csrtl_kernel.Types.Incremental incremental
