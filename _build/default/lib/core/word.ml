type t = int

let disc = -1
let illegal = -2

let nat n =
  if n < 0 then invalid_arg "Word.nat: negative"
  else n

let zero = 0
let one = 1

let is_nat v = v >= 0
let is_disc v = v = disc
let is_illegal v = v = illegal

let to_nat v = if v >= 0 then Some v else None

let to_nat_exn v =
  if v >= 0 then v
  else invalid_arg ("Word.to_nat_exn: " ^ if v = disc then "DISC" else "ILLEGAL")

let width = 32
let modulus = 1 lsl width
let mask n = n land (modulus - 1)

let to_signed v =
  if v < 0 then v
  else if v land (1 lsl (width - 1)) <> 0 then v - modulus
  else v

let of_signed = mask

let equal = Int.equal
let compare = Int.compare

let to_string v =
  if v = disc then "DISC"
  else if v = illegal then "ILLEGAL"
  else string_of_int v

let pp ppf v = Format.pp_print_string ppf (to_string v)

let of_string s =
  match s with
  | "DISC" | "disc" -> Some disc
  | "ILLEGAL" | "illegal" -> Some illegal
  | _ ->
    (match int_of_string_opt s with
     | Some n when n >= 0 -> Some n
     | Some _ | None -> None)
