(** The six phases of a control step (paper Fig. 2).

    Phases occur cyclically within each control step:
    [ra] register output ports to buses, [rb] buses to module input
    ports, [cm] modules compute, [wa] module output ports to buses,
    [wb] buses to register input ports, [cr] registers latch. *)

type t = Ra | Rb | Cm | Wa | Wb | Cr

val all : t list
(** In execution order. *)

val count : int
(** 6: the number of delta cycles one control step costs. *)

val low : t
(** [Ra] — VHDL [Phase'Low]. *)

val high : t
(** [Cr] — VHDL [Phase'High]. *)

val succ : t -> t
(** Cyclic successor ([succ Cr = Ra]). *)

val pred : t -> t

val to_int : t -> int
(** 0-based position, the kernel signal encoding. *)

val of_int : int -> t option
val of_int_exn : int -> t

val to_string : t -> string
(** Lower-case paper names: ["ra"], ["rb"], ["cm"], ["wa"], ["wb"],
    ["cr"]. *)

val of_string : string -> t option
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
