type hook = step:int -> phase:Phase.t -> sink:string -> Word.t -> unit

type state = {
  model : Model.t;
  regs : (string, Word.t) Hashtbl.t;
  fus : (string, Fu_state.t) Hashtbl.t;
  fu_out : (string, Word.t) Hashtbl.t;
  legs_at : (int * int, Transfer.leg list) Hashtbl.t;
  selects_at : (int, Transfer.op_select list) Hashtbl.t;
  op_index : (string, Ops.t -> Word.t) Hashtbl.t;
  (* one-phase-lagged resolved view of all contribution sinks *)
  mutable contribs : (string, Word.t list) Hashtbl.t;
  mutable visible : (string, Word.t) Hashtbl.t;
  mutable conflicts : (int * Phase.t * string) list;
  reg_trace : (string, Word.t array) Hashtbl.t;
  mutable out_writes : (string * (int * Word.t)) list;
}

let init (m : Model.t) =
  let regs = Hashtbl.create 16 in
  List.iter
    (fun (r : Model.register) -> Hashtbl.replace regs r.reg_name r.init)
    m.registers;
  let fus = Hashtbl.create 8 in
  let fu_out = Hashtbl.create 8 in
  let op_index = Hashtbl.create 8 in
  List.iter
    (fun (f : Model.fu) ->
      Hashtbl.replace fus f.fu_name (Fu_state.create f);
      Hashtbl.replace fu_out f.fu_name Word.disc;
      Hashtbl.replace op_index f.fu_name (fun op ->
          let rec find i = function
            | [] -> Word.illegal
            | o :: rest -> if Ops.equal o op then i else find (i + 1) rest
          in
          find 0 f.ops))
    m.fus;
  let legs, selects = Model.all_legs m in
  let legs_at = Hashtbl.create 32 in
  List.iter
    (fun (l : Transfer.leg) ->
      let key = (l.step, Phase.to_int l.phase) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt legs_at key) in
      Hashtbl.replace legs_at key (prev @ [ l ]))
    legs;
  let selects_at = Hashtbl.create 16 in
  List.iter
    (fun (s : Transfer.op_select) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt selects_at s.sel_step)
      in
      Hashtbl.replace selects_at s.sel_step (prev @ [ s ]))
    selects;
  let reg_trace = Hashtbl.create 16 in
  List.iter
    (fun (r : Model.register) ->
      Hashtbl.replace reg_trace r.reg_name (Array.make m.cs_max Word.disc))
    m.registers;
  { model = m; regs; fus; fu_out; legs_at; selects_at; op_index;
    contribs = Hashtbl.create 16; visible = Hashtbl.create 16;
    conflicts = []; reg_trace; out_writes = [] }

let contribute st sink v =
  let prev = Option.value ~default:[] (Hashtbl.find_opt st.contribs sink) in
  Hashtbl.replace st.contribs sink (v :: prev)

let visible st sink =
  Option.value ~default:Word.disc (Hashtbl.find_opt st.visible sink)

(* Turn last phase's contributions into this phase's visible values,
   recording sinks that newly become ILLEGAL. *)
let flip_phase ?on_visible st ~step ~phase =
  let new_visible = Hashtbl.create 16 in
  Hashtbl.iter
    (fun sink vs ->
      let v = Resolve.resolve_list vs in
      Hashtbl.replace new_visible sink v;
      (match on_visible with
       | Some f -> f ~step ~phase ~sink v
       | None -> ());
      if Word.is_illegal v && not (Word.is_illegal (visible st sink)) then
        st.conflicts <- (step, phase, sink) :: st.conflicts)
    st.contribs;
  st.visible <- new_visible;
  st.contribs <- Hashtbl.create 16

let source_value st step = function
  | Transfer.Reg_out r ->
    Option.value ~default:Word.disc (Hashtbl.find_opt st.regs r)
  | Transfer.In_port i ->
    (match
       List.find_opt (fun (x : Model.input) -> x.in_name = i)
         st.model.inputs
     with
     | Some inp -> Model.input_value inp step
     | None -> Word.disc)
  | Transfer.Bus b -> visible st b
  | Transfer.Fu_out f ->
    Option.value ~default:Word.disc (Hashtbl.find_opt st.fu_out f)
  | Transfer.Reg_in _ | Transfer.Fu_in _ | Transfer.Out_port _ ->
    Word.disc

let run_phase st ~step ~(phase : Phase.t) =
  let legs =
    Option.value ~default:[]
      (Hashtbl.find_opt st.legs_at (step, Phase.to_int phase))
  in
  List.iter
    (fun (l : Transfer.leg) ->
      contribute st
        (Transfer.endpoint_name l.dst)
        (source_value st step l.src))
    legs;
  match phase with
  | Phase.Rb ->
    let selects =
      Option.value ~default:[] (Hashtbl.find_opt st.selects_at step)
    in
    List.iter
      (fun (s : Transfer.op_select) ->
        match Hashtbl.find_opt st.op_index s.sel_fu with
        | Some index -> contribute st (s.sel_fu ^ ".op") (index s.sel_op)
        | None -> ())
      selects
  | Phase.Cm ->
    List.iter
      (fun (f : Model.fu) ->
        let u = Hashtbl.find st.fus f.fu_name in
        let out =
          Fu_state.step u
            ~op_index:(visible st (f.fu_name ^ ".op"))
            (visible st (f.fu_name ^ ".in1"))
            (visible st (f.fu_name ^ ".in2"))
        in
        Hashtbl.replace st.fu_out f.fu_name out)
      st.model.fus
  | Phase.Cr ->
    List.iter
      (fun (r : Model.register) ->
        let v = visible st (r.reg_name ^ ".in") in
        if not (Word.is_disc v) then Hashtbl.replace st.regs r.reg_name v)
      st.model.registers;
    List.iter
      (fun o ->
        let v = visible st o in
        if not (Word.is_disc v) then
          st.out_writes <- (o, (step, v)) :: st.out_writes)
      st.model.outputs;
    List.iter
      (fun (r : Model.register) ->
        let arr = Hashtbl.find st.reg_trace r.reg_name in
        arr.(step - 1) <- Hashtbl.find st.regs r.reg_name)
      st.model.registers
  | Phase.Ra | Phase.Wa | Phase.Wb -> ()

let run_with_hook ?on_visible (m : Model.t) =
  Model.validate_exn m;
  let st = init m in
  for step = 1 to m.cs_max do
    List.iter
      (fun phase ->
        flip_phase ?on_visible st ~step ~phase;
        run_phase st ~step ~phase)
      Phase.all
  done;
  let outputs =
    List.map
      (fun o ->
        ( o,
          List.rev
            (List.filter_map
               (fun (name, w) -> if name = o then Some w else None)
               st.out_writes) ))
      m.outputs
  in
  { Observation.model_name = m.name; cs_max = m.cs_max;
    regs =
      List.map
        (fun (r : Model.register) ->
          (r.reg_name, Hashtbl.find st.reg_trace r.reg_name))
        m.registers;
    outputs;
    conflicts = List.rev st.conflicts }

let run m = run_with_hook m
