(** Data values of the clock-free RT model.

    The paper models all data as VHDL [Integer]: natural numbers are
    regular values; two negative sentinels encode "no value" ([DISC],
    -1) and "conflict" ([ILLEGAL], -2).  This module keeps exactly
    that encoding so values pass through the kernel unchanged. *)

type t = int

val disc : t
(** "No value": the default contribution of every inactive driver. *)

val illegal : t
(** "Conflict": produced by the resolution function and propagated by
    functional units. *)

val nat : int -> t
(** Inject a natural number.  Raises [Invalid_argument] on negatives. *)

val zero : t
val one : t

val is_nat : t -> bool
val is_disc : t -> bool
val is_illegal : t -> bool

val to_nat : t -> int option
val to_nat_exn : t -> int

val width : int
(** Bit width of regular values (32).  Arithmetic in {!Ops} wraps
    modulo [2 ^ width], so every operation result is again a natural
    number and can never collide with the sentinels. *)

val mask : int -> t
(** Wrap an arbitrary integer into [0, 2^width): the two's-complement
    reading used by signed operations. *)

val to_signed : t -> int
(** Interpret a natural as a [width]-bit two's-complement integer.
    Sentinels map to themselves (callers test [is_nat] first). *)

val of_signed : int -> t
(** Inverse of {!to_signed} (same as {!mask}). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string : string -> t option
(** Parses ["DISC"], ["ILLEGAL"], or a natural literal. *)
