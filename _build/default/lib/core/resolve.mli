(** The paper's resolution function for buses and input ports.

    "The resolution function combining a list of integer values
    computes to DISC if all integers in the list are DISC.  It
    computes to ILLEGAL if at least one integer is ILLEGAL or if at
    least two integers are not DISC.  In this manner, it only computes
    to a natural number if exactly one natural number is in the list
    and all other values are DISC." *)

val resolve : Word.t array -> Word.t
val resolve_list : Word.t list -> Word.t

val combine : Word.t -> Word.t -> Word.t
(** Binary combination; [resolve] is its fold.  Commutative and
    associative with unit [Word.disc] — properties the test suite
    checks. *)

val incremental : unit -> Csrtl_kernel.Types.incr_state
(** Kernel-incremental form of {!resolve}: counts the natural and
    ILLEGAL contributions and keeps their running sum, so a bus with
    hundreds of drivers resolves in O(1) per update instead of O(n).
    Exactly equivalent to {!resolve} (property-tested). *)

val kernel_resolution : Csrtl_kernel.Types.resolution
(** [Incremental incremental], what {!Elaborate} attaches to buses,
    unit ports and register inputs. *)
