type report = {
  total_steps : int;
  dead_transfers : Transfer.t list;
  bus_utilization : (string * float) list;
  unit_utilization : (string * float) list;
  never_written : string list;
  never_read : string list;
}

let analyze (m : Model.t) =
  Model.validate_exn m;
  (* live sink values per (step, sink), from one interpreter run *)
  let live = Hashtbl.create 256 in
  let hook ~step ~phase:_ ~sink v =
    if Word.is_nat v || Word.is_illegal v then
      Hashtbl.replace live (step, sink) ()
  in
  let obs = Interp.run_with_hook ~on_visible:hook m in
  let alive step sink = Hashtbl.mem live (step, sink) in
  (* a tuple is dead when its unit saw no live operand at read+1 (the
     phase where bus values reach the unit ports); arity-0 tuples are
     always live *)
  let dead_transfers =
    List.filter
      (fun (t : Transfer.t) ->
        match t.read_step, Model.effective_op m t with
        | Some r, Some op when Ops.arity op > 0 ->
          let port i = t.fu ^ ".in" ^ string_of_int i in
          not (alive r (port 1) || alive r (port 2))
        | _, _ -> false)
      m.transfers
  in
  let steps_used sink =
    let n = ref 0 in
    for s = 1 to m.cs_max do
      if alive s sink then incr n
    done;
    !n
  in
  let ratio n = float_of_int n /. float_of_int (max 1 m.cs_max) in
  let bus_utilization =
    List.map (fun b -> (b, ratio (steps_used b))) m.buses
  in
  let unit_utilization =
    List.map
      (fun (f : Model.fu) ->
        (* a unit is busy in the steps where an input port is live *)
        let n = ref 0 in
        for s = 1 to m.cs_max do
          if alive s (f.fu_name ^ ".in1") || alive s (f.fu_name ^ ".in2")
             || alive s (f.fu_name ^ ".op")
          then incr n
        done;
        (f.fu_name, ratio !n))
      m.fus
  in
  let never_written =
    (* constant registers (non-DISC init, never stored to) are a
       normal idiom — the literal pools of Synth and Asm — so only
       DISC-initialized registers that stay DISC are reported *)
    List.filter_map
      (fun (r : Model.register) ->
        match Observation.reg_trace obs r.reg_name with
        | Some arr
          when Word.is_disc r.init
               && Array.for_all (fun v -> Word.equal v r.init) arr ->
          Some r.reg_name
        | Some _ | None -> None)
      m.registers
  in
  let read_regs =
    List.concat_map
      (fun (t : Transfer.t) ->
        List.filter_map
          (function
            | Some (Transfer.From_reg r) -> Some r
            | Some (Transfer.From_input _) | None -> None)
          [ t.src_a; t.src_b ])
      m.transfers
  in
  let never_read =
    List.filter_map
      (fun (t : Transfer.t) ->
        match t.dst with
        | Some (Transfer.To_reg r) when not (List.mem r read_regs) -> Some r
        | _ -> None)
      m.transfers
    |> List.sort_uniq String.compare
  in
  { total_steps = m.cs_max; dead_transfers; bus_utilization;
    unit_utilization; never_written; never_read }

let pp ppf r =
  Format.fprintf ppf "@[<v>coverage over %d control steps@," r.total_steps;
  List.iter
    (fun (b, u) ->
      Format.fprintf ppf "  bus %-12s %5.1f%%@," b (100.0 *. u))
    r.bus_utilization;
  List.iter
    (fun (f, u) ->
      Format.fprintf ppf "  unit %-11s %5.1f%%@," f (100.0 *. u))
    r.unit_utilization;
  List.iter
    (fun t ->
      Format.fprintf ppf "  DEAD transfer %a (operands never arrive)@,"
        Transfer.pp t)
    r.dead_transfers;
  List.iter
    (fun n -> Format.fprintf ppf "  register %s is never written@," n)
    r.never_written;
  List.iter
    (fun n ->
      Format.fprintf ppf
        "  register %s is written but never read by a transfer@," n)
    r.never_read;
  Format.fprintf ppf "@]"
