(** Event-driven simulation of a clock-free model with observation.

    Elaborates the model onto the kernel, attaches monitors (register
    snapshots at the start of each step, output-port sampling at [cr],
    ILLEGAL localization on every resolved sink), runs to quiescence,
    and packages an {!Observation.t} plus kernel statistics. *)

type result = {
  obs : Observation.t;
  cycles : int;  (** simulation cycles executed: [6 * cs_max], plus one
                     when a transfer writes back in the final step *)
  stats : Csrtl_kernel.Types.stats;
  elaborated : Elaborate.t;
}

val run :
  ?vcd:Buffer.t -> ?trace:bool -> ?wait_impl:[ `Keyed | `Predicate ] ->
  ?resolution_impl:[ `Incremental | `Fold ] ->
  Model.t -> result
(** [vcd] streams a waveform of all signals (delta-cycle axis).
    [trace] additionally prints each event to the [csrtl.sim] log
    source (debug level). *)

val expected_cycles : Model.t -> int
(** The paper's delta-cycle law for this model: [6 * cs_max], plus the
    trailing driver-release/register-update cycle if any transfer
    writes back in step [cs_max]. *)
