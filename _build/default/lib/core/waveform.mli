(** Text waveforms of control-step observations.

    Renders an {!Observation.t} as a step-by-step table — registers as
    rows, control steps as columns, repeated values elided — with
    output-port writes and ILLEGAL locations annotated.  The paper
    argues its models make simulation results easy to read ("there is
    a straightforward way of identifying register transfers"); this is
    that reading, in a terminal. *)

val render : ?max_steps:int -> Observation.t -> string
(** At most [max_steps] columns (default 32); longer runs are windowed
    around activity (first steps, then steps where any register
    changes). *)

val render_full : Observation.t -> string
(** Every step, no windowing. *)

val pp : Format.formatter -> Observation.t -> unit
(** [render] with defaults. *)

val phase_view : ?from_step:int -> ?to_step:int -> Model.t -> string
(** Re-runs the model with the interpreter and renders the resolved
    sink values (buses, unit ports, register inputs) phase by phase
    for the chosen step window — the debugging view the paper promises:
    "simulation results allow easily to locate design errors ... in
    specific simulation cycles associated with a specific phase of a
    specific control step". *)
