(** Graphviz rendering of RT structures.

    Regenerates the paper's structure figures: registers, functional
    units and buses as nodes, transfer legs as edges labelled with
    their control step — Fig. 1's adder fragment and Fig. 3's IKS
    datapath come out of the same function.  Feed the output to
    [dot -Tsvg]. *)

val to_dot : ?title:string -> Model.t -> string
(** The full model: every resource, every leg (step-labelled). *)

val structure_only : ?title:string -> Model.t -> string
(** Fig. 3 style: resources and which paths exist (deduplicated,
    unlabelled edges) — the "resources and used transfer paths" view
    the paper draws. *)
