type t =
  | Double_drive of {
      step : int;
      phase : Phase.t;
      sink : string;
      sources : string list;
    }
  | Op_clash of { step : int; fu : string; ops : Ops.t list }
  | Busy_unit of { fu : string; first_read : int; second_read : int }

let step_of = function
  | Double_drive { step; _ } | Op_clash { step; _ } -> step
  | Busy_unit { second_read; _ } -> second_read

let check m =
  let legs, selects = Model.all_legs m in
  let conflicts = ref [] in
  (* 1. Two legs driving the same sink in the same (step, phase). *)
  let by_sink = Hashtbl.create 32 in
  List.iter
    (fun (l : Transfer.leg) ->
      let key = (l.step, l.phase, Transfer.endpoint_name l.dst) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_sink key) in
      Hashtbl.replace by_sink key (l :: prev))
    legs;
  Hashtbl.iter
    (fun (step, phase, sink) ls ->
      (* Several legs with the same source are a redundant but harmless
         double drive only if the source is identical AND at most one
         value reaches the sink; the resolution function still yields
         ILLEGAL for two non-DISC drivers, so any multiplicity > 1 is
         reported. *)
      if List.length ls > 1 then
        conflicts :=
          Double_drive
            { step; phase; sink;
              sources =
                List.rev_map
                  (fun (l : Transfer.leg) -> Transfer.endpoint_name l.src)
                  ls }
          :: !conflicts)
    by_sink;
  (* 2. Conflicting operation selections on one unit. *)
  let by_sel = Hashtbl.create 16 in
  List.iter
    (fun (s : Transfer.op_select) ->
      let key = (s.sel_step, s.sel_fu) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_sel key) in
      Hashtbl.replace by_sel key (s.sel_op :: prev))
    selects;
  Hashtbl.iter
    (fun (step, fu) ops ->
      let distinct = List.sort_uniq Stdlib.compare ops in
      if List.length distinct > 1 then
        conflicts := Op_clash { step; fu; ops = distinct } :: !conflicts)
    by_sel;
  (* 3. Overlapping use of non-pipelined units. *)
  List.iter
    (fun (f : Model.fu) ->
      if not f.pipelined then begin
        let reads =
          List.filter_map
            (fun (t : Transfer.t) ->
              if t.fu = f.fu_name then t.read_step else None)
            m.transfers
          |> List.sort_uniq Int.compare
        in
        let rec scan = function
          | a :: (b :: _ as rest) ->
            if b - a < f.latency then
              conflicts :=
                Busy_unit
                  { fu = f.fu_name; first_read = a; second_read = b }
                :: !conflicts;
            scan rest
          | [ _ ] | [] -> ()
        in
        scan reads
      end)
    m.fus;
  List.sort (fun a b -> Int.compare (step_of a) (step_of b)) !conflicts

let visible_at = function
  | Double_drive { step; phase; _ } -> Some (step, Phase.succ phase)
  | Op_clash { step; _ } -> Some (step, Phase.Cm)
  | Busy_unit _ -> None

let pp ppf = function
  | Double_drive { step; phase; sink; sources } ->
    Format.fprintf ppf
      "double drive of %s at step %d phase %s (sources: %s); ILLEGAL \
       visible at phase %s"
      sink step (Phase.to_string phase)
      (String.concat ", " sources)
      (Phase.to_string (Phase.succ phase))
  | Op_clash { step; fu; ops } ->
    Format.fprintf ppf
      "conflicting operations on %s at step %d: %s" fu step
      (String.concat ", " (List.map Ops.to_string ops))
  | Busy_unit { fu; first_read; second_read } ->
    Format.fprintf ppf
      "non-pipelined unit %s read at step %d while the step-%d \
       computation is in flight"
      fu second_read first_read

let to_string c = Format.asprintf "%a" pp c
