(** Four-phase request/acknowledge channels on the kernel.

    The paper's §2.7 contrast: "execution is very fast, because we
    need not deal with asynchronous handshake, as it is often used
    for exchanging values between modules when more abstract timing
    is modeled by means of VHDL without introducing physical time."
    This module implements exactly that style — a req/ack wire pair
    plus a data wire, return-to-zero signalling — so the benchmark
    can measure what the clock-free discipline saves. *)

type t

val create : Csrtl_kernel.Scheduler.t -> string -> t

val send : Csrtl_kernel.Scheduler.t -> t -> Csrtl_core.Word.t -> unit
(** Producer side: place data, raise req, await ack, return to zero.
    Four signal events per transaction.  Must run inside a process. *)

val recv : Csrtl_kernel.Scheduler.t -> t -> Csrtl_core.Word.t
(** Consumer side, blocking. *)

val request : Csrtl_kernel.Scheduler.t -> t -> Csrtl_core.Word.t
(** Pull-style: raise req, the server answers with data on ack. *)

val serve : Csrtl_kernel.Scheduler.t -> t -> (unit -> Csrtl_core.Word.t) -> unit
(** Pull-style server side: await req, publish [f ()], complete the
    handshake.  One transaction; call in a loop to keep serving. *)

val events_per_transaction : int
(** Kernel signal events a complete 4-phase transaction costs (6:
    data, req up, ack up, req down, ack down — data may coincide). *)

val req : t -> Csrtl_kernel.Signal.t
val ack : t -> Csrtl_kernel.Signal.t
val data : t -> Csrtl_kernel.Signal.t
(** Raw wires, for servers multiplexing several channels. *)
