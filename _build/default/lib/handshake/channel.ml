open Csrtl_kernel
module C = Csrtl_core

type t = { req : Signal.t; ack : Signal.t; data : Signal.t }

let create k name =
  { req = Scheduler.signal k ~name:(name ^ ".req") ~init:0 ();
    ack = Scheduler.signal k ~name:(name ^ ".ack") ~init:0 ();
    data =
      Scheduler.signal k ~printer:C.Word.to_string ~name:(name ^ ".data")
        ~init:C.Word.disc () }

let send k ch v =
  Scheduler.assign k ch.data v;
  Scheduler.assign k ch.req 1;
  Process.wait_until [ ch.ack ] (fun () -> Signal.value ch.ack = 1);
  Scheduler.assign k ch.req 0;
  Process.wait_until [ ch.ack ] (fun () -> Signal.value ch.ack = 0)

let recv k ch =
  if Signal.value ch.req <> 1 then
    Process.wait_until [ ch.req ] (fun () -> Signal.value ch.req = 1);
  let v = Signal.value ch.data in
  Scheduler.assign k ch.ack 1;
  Process.wait_until [ ch.req ] (fun () -> Signal.value ch.req = 0);
  Scheduler.assign k ch.ack 0;
  v

let request k ch =
  Scheduler.assign k ch.req 1;
  Process.wait_until [ ch.ack ] (fun () -> Signal.value ch.ack = 1);
  let v = Signal.value ch.data in
  Scheduler.assign k ch.req 0;
  Process.wait_until [ ch.ack ] (fun () -> Signal.value ch.ack = 0);
  v

let serve k ch f =
  if Signal.value ch.req <> 1 then
    Process.wait_until [ ch.req ] (fun () -> Signal.value ch.req = 1);
  Scheduler.assign k ch.data (f ());
  Scheduler.assign k ch.ack 1;
  Process.wait_until [ ch.req ] (fun () -> Signal.value ch.req = 0);
  Scheduler.assign k ch.ack 0

let events_per_transaction = 6

let req ch = ch.req
let ack ch = ch.ack
let data ch = ch.data
