(** Handshake-style execution of a register-transfer schedule.

    The abstract-timing baseline: every resource is a kernel process
    — one server per register (get/put channels), one per functional
    unit (operation, operand and result channels) — and each transfer
    tuple becomes a sequence of 4-phase channel transactions driven
    by a sequencer.  No physical time, no clock, and also no control
    steps: synchronization is entirely by handshake, which is what
    the paper's §2.7 identifies as the expensive alternative.

    The executor runs tuples in schedule order, so it supports
    {e sequential} schedules: each tuple's write completes before the
    next tuple reads ([Not_sequential] otherwise).  That covers the
    chain workloads of the speed benchmarks; overlapped (pipelined)
    schedules have no faithful sequential-handshake equivalent, which
    is itself part of the paper's point. *)

exception Not_sequential of string

type result = {
  final_regs : (string * Csrtl_core.Word.t) list;
  outputs : (string * (int * Csrtl_core.Word.t) list) list;
  transactions : int;  (** completed 4-phase transactions *)
  stats : Csrtl_kernel.Types.stats;
}

val run : Csrtl_core.Model.t -> result
(** Validates, checks sequentiality, executes. *)

val check_sequential : Csrtl_core.Model.t -> (unit, string) Stdlib.result
