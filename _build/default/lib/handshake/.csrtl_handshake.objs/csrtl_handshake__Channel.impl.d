lib/handshake/channel.ml: Csrtl_core Csrtl_kernel Process Scheduler Signal
