lib/handshake/hs_model.mli: Csrtl_core Csrtl_kernel Stdlib
