lib/handshake/channel.mli: Csrtl_core Csrtl_kernel
