lib/handshake/hs_model.ml: Array Channel Csrtl_core Csrtl_kernel Hashtbl List Option Printf Process Scheduler Signal Types
