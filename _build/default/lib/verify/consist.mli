(** Consistency of the control-step semantics with the delta-cycle
    simulation semantics.

    Paper §2.7: "The close relationship of the register transfer
    model to the VHDL simulation delta cycle allows to prove the
    consistency of the dedicated semantics ... with VHDL simulation
    semantics."  Here the theorem is checked empirically and at
    scale: random models — conflict-free and deliberately conflicted
    — run through both {!Csrtl_core.Simulate} (event kernel) and
    {!Csrtl_core.Interp} (direct semantics), and the observations
    must be identical, including where ILLEGAL surfaces. *)

val random_model : ?conflict:bool -> ?size:int -> int -> Csrtl_core.Model.t
(** Deterministic pseudo-random model from a seed: several registers,
    multi-op units with mixed latencies, inputs, outputs, and a
    conflict-free schedule (bus slots and unit uses tracked during
    generation).  [conflict] injects a deliberate double drive. *)

val check : Csrtl_core.Model.t -> (unit, string list) result
(** Kernel observation vs interpreter observation, plus the
    delta-cycle law [cycles = expected_cycles]. *)

val run_batch :
  ?conflict_every:int -> seed:int -> count:int -> unit ->
  (int * string list) list
(** Check [count] random models (every [conflict_every]-th with an
    injected conflict, default 4); returns the failures. *)
