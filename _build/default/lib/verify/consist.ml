module C = Csrtl_core

let random_model ?(conflict = false) ?(size = 8) seed =
  let rnd = Random.State.make [| seed; 0xC0C0 |] in
  let n_regs = 2 + Random.State.int rnd 3 in
  let buses = [ "BA"; "BB"; "BC" ] in
  let b =
    C.Builder.create
      ~name:(Printf.sprintf "consist%d%s" seed (if conflict then "c" else ""))
      ~cs_max:((size * 3) + 2)
      ()
  in
  for i = 0 to n_regs - 1 do
    C.Builder.reg b
      ~init:(C.Word.nat (Random.State.int rnd 64))
      (Printf.sprintf "R%d" i)
  done;
  (if Random.State.int rnd 3 = 0 then
     (* step-scheduled input: the port value changes mid-run *)
     C.Builder.input b
       ~schedule:
         [ (1, C.Word.nat (Random.State.int rnd 64));
           (1 + Random.State.int rnd (size * 2),
            C.Word.nat (Random.State.int rnd 64)) ]
       "X"
   else C.Builder.input b ~value:(C.Word.nat (Random.State.int rnd 64)) "X");
  C.Builder.output b "OUT";
  C.Builder.buses b buses;
  C.Builder.unit_ b ~ops:[ C.Ops.Add; C.Ops.Sub; C.Ops.Max; C.Ops.Bxor ]
    "ALU";
  C.Builder.unit_ b ~latency:2 ~ops:[ C.Ops.Mul ] "MULT";
  C.Builder.unit_ b ~ops:[ C.Ops.Pass; C.Ops.Neg ] "COPY";
  let reg i = Printf.sprintf "R%d" (i mod n_regs) in
  (* One tuple per odd step: reads at step, writes at step+latency;
     steps spaced by 3 so even two-step units never overlap a bus or
     the writer of their destination. *)
  for i = 0 to size - 1 do
    let read = (i * 3) + 1 in
    let use_mult = Random.State.int rnd 4 = 0 in
    let fu, op, latency =
      if use_mult then ("MULT", C.Ops.Mul, 2)
      else
        ( "ALU",
          (match Random.State.int rnd 4 with
           | 0 -> C.Ops.Add
           | 1 -> C.Ops.Sub
           | 2 -> C.Ops.Max
           | _ -> C.Ops.Bxor),
          1 )
    in
    let src_a =
      if Random.State.int rnd 5 = 0 then C.Transfer.From_input "X"
      else C.Transfer.From_reg (reg (Random.State.int rnd n_regs))
    in
    let src_b = C.Transfer.From_reg (reg (Random.State.int rnd n_regs)) in
    let dst =
      if i = size - 1 then C.Transfer.To_output "OUT"
      else C.Transfer.To_reg (reg (Random.State.int rnd n_regs))
    in
    C.Builder.binary b ~op ~fu ~a:(src_a, "BA") ~b:(src_b, "BB") ~read
      ~write:(read + latency, "BC")
      ~dst
  done;
  if conflict then begin
    (* deliberate double drive of BA in some step *)
    let read = (3 * (1 + Random.State.int rnd (size - 1))) + 1 in
    C.Builder.unary b ~op:C.Ops.Pass ~fu:"COPY"
      ~a:(C.Transfer.From_reg (reg 0), "BA")
      ~read
      ~write:(read + 1, "BA")
      ~dst:(C.Transfer.To_reg (reg 1))
  end;
  C.Builder.finish_unchecked b

let check (m : C.Model.t) =
  match C.Model.validate m with
  | _ :: _ as errs ->
    Error (List.map (fun (e : C.Model.error) -> e.C.Model.message) errs)
  | [] ->
    let kr = C.Simulate.run m in
    let io = C.Interp.run m in
    let errors = ref [] in
    (match C.Observation.diff kr.C.Simulate.obs io with
     | [] -> ()
     | diffs -> errors := diffs);
    if kr.C.Simulate.cycles <> C.Simulate.expected_cycles m then
      errors :=
        Printf.sprintf "delta-cycle law violated: %d cycles, expected %d"
          kr.C.Simulate.cycles
          (C.Simulate.expected_cycles m)
        :: !errors;
    (match !errors with [] -> Ok () | es -> Error es)

let run_batch ?(conflict_every = 4) ~seed ~count () =
  let failures = ref [] in
  for i = 0 to count - 1 do
    let conflict = conflict_every > 0 && i mod conflict_every = 0 && i > 0 in
    let m = random_model ~conflict (seed + i) in
    match check m with
    | Ok () -> ()
    | Error es -> failures := (seed + i, es) :: !failures
  done;
  List.rev !failures
