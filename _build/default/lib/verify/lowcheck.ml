module C = Csrtl_core
module CL = Csrtl_clocked

type verdict =
  | Proved
  | Mismatch of {
      at_step : int;
      reg : string;
      clock_free : Sym.t;
      clocked : Sym.t;
    }

exception Control_not_concrete of string

let input_term (m : C.Model.t) name step =
  match
    List.find_opt (fun (i : C.Model.input) -> i.C.Model.in_name = name)
      m.C.Model.inputs
  with
  | None -> Sym.nat 0
  | Some i ->
    (match i.C.Model.drive with
     | C.Model.Const v when C.Word.is_disc v -> Sym.Sym name
     | C.Model.Const v -> Sym.of_word v
     | C.Model.Schedule _ ->
       let v = C.Model.input_value i step in
       if C.Word.is_nat v then Sym.of_word v else Sym.nat 0)

let as_nat = function
  | Sym.Nat n -> Some n
  | Sym.Disc | Sym.Illegal | Sym.Sym _ | Sym.App _ -> None

(* One symbolic clock cycle: combinational terms, then the edge. *)
let eval_cycle (m : C.Model.t) net order reg_state values ~step =
  Array.iter
    (fun id ->
      values.(id) <-
        (match CL.Netlist.node net id with
         | CL.Netlist.Input name -> input_term m name step
         | CL.Netlist.Const v -> Sym.nat v
         | CL.Netlist.Reg_q slot -> reg_state.(slot)
         | CL.Netlist.Op (op, args) ->
           let a i = values.(List.nth args i) in
           (match op, List.length args with
            | C.Ops.Mac, 3 ->
              (* the netlist threads the accumulator explicitly; build
                 the same shape Symsim's MAC produces *)
              Sym.normalize
                (Sym.App
                   ( C.Ops.Add,
                     [ a 2; Sym.App (C.Ops.Mul, [ a 0; a 1 ]) ] ))
            | _, _ ->
              Sym.normalize
                (Sym.App (op, List.map (fun x -> values.(x)) args)))
         | CL.Netlist.Eq_const (a, v) ->
           (match as_nat values.(a) with
            | Some n -> Sym.nat (if n = v then 1 else 0)
            | None ->
              raise
                (Control_not_concrete
                   (Printf.sprintf "comparator n%d has a symbolic operand"
                      id)))
         | CL.Netlist.Mux { sel; cases; default } ->
           (match as_nat values.(sel) with
            | Some s ->
              (match List.assoc_opt s cases with
               | Some c -> values.(c)
               | None -> values.(default))
            | None ->
              raise
                (Control_not_concrete
                   (Printf.sprintf "mux n%d has a symbolic select" id)))))
    order

let edge net regs reg_state values =
  let pending =
    List.mapi
      (fun slot (_, (r : CL.Netlist.register)) ->
        let load =
          match r.CL.Netlist.enable with
          | None -> true
          | Some e ->
            (match as_nat values.(e) with
             | Some n -> n <> 0
             | None ->
               raise (Control_not_concrete "symbolic register enable"))
        in
        if load && r.CL.Netlist.next >= 0 then
          Some (slot, values.(r.CL.Netlist.next))
        else None)
      regs
  in
  ignore net;
  List.iter
    (function
      | Some (slot, v) -> reg_state.(slot) <- v
      | None -> ())
    pending

let check ?scheme (m : C.Model.t) =
  let low = CL.Lower.lower ?scheme m in
  let net = low.CL.Lower.net in
  let order = CL.Netlist.comb_order net in
  let regs = CL.Netlist.registers net in
  let cps = low.CL.Lower.cycles_per_step in
  let reg_state =
    Array.of_list
      (List.map (fun (_, (r : CL.Netlist.register)) -> Sym.nat r.CL.Netlist.init) regs)
  in
  let values = Array.make (CL.Netlist.size net) Sym.Disc in
  let sym = Symsim.run m in
  let arch_regs =
    (* netlist register slots that correspond to model registers *)
    List.mapi (fun slot (name, _) -> (slot, name)) regs
    |> List.filter (fun (_, name) ->
           List.exists
             (fun (r : C.Model.register) -> r.C.Model.reg_name = name)
             m.C.Model.registers)
  in
  let result = ref Proved in
  (try
     for cycle = 1 to CL.Lower.cycles_needed low do
       let step = ((cycle - 1) / cps) + 1 in
       eval_cycle m net order reg_state values ~step;
       edge net regs reg_state values;
       if cycle mod cps = 0 && !result = Proved then
         (* end of control step [step]: compare architectural registers *)
         List.iter
           (fun (slot, name) ->
             match !result with
             | Mismatch _ -> ()
             | Proved ->
               let cf =
                 match List.assoc_opt name sym.Symsim.reg_at with
                 | Some arr -> arr.(step - 1)
                 | None -> Sym.Disc
               in
               if cf <> Sym.Disc && cf <> Sym.Illegal then begin
                 let hw = Sym.normalize reg_state.(slot) in
                 if not (Sym.equal cf hw) then
                   result :=
                     Mismatch
                       { at_step = step; reg = name; clock_free = cf;
                         clocked = hw }
               end)
           arch_regs
     done
   with Control_not_concrete why ->
     result :=
       Mismatch
         { at_step = 0; reg = why; clock_free = Sym.Disc;
           clocked = Sym.Disc });
  !result

let pp_verdict ppf = function
  | Proved -> Format.pp_print_string ppf "proved (all inputs)"
  | Mismatch { at_step; reg; clock_free; clocked } ->
    Format.fprintf ppf "step %d, %s: clock-free %s vs clocked %s" at_step
      reg (Sym.to_string clock_free) (Sym.to_string clocked)
