lib/verify/consist.mli: Csrtl_core
