lib/verify/equiv.mli: Csrtl_core Csrtl_hls Format Sym
