lib/verify/lowcheck.mli: Csrtl_clocked Csrtl_core Format Sym
