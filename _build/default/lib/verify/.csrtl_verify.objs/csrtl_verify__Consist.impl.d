lib/verify/consist.ml: Csrtl_core List Printf Random
