lib/verify/lowcheck.ml: Array Csrtl_clocked Csrtl_core Format List Printf Sym Symsim
