lib/verify/symsim.mli: Csrtl_core Sym
