lib/verify/symsim.ml: Array Csrtl_core Hashtbl List Option Sym
