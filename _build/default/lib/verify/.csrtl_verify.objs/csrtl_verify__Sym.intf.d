lib/verify/sym.mli: Csrtl_core Format
