lib/verify/equiv.ml: Csrtl_core Csrtl_hls Format Hashtbl List Printf Random String Sym Symsim
