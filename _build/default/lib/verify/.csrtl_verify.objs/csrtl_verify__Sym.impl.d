lib/verify/sym.ml: Array Csrtl_core Format Int List Printf Stdlib String
