module C = Csrtl_core

type result = {
  reg_final : (string * Sym.t) list;
  reg_at : (string * Sym.t array) list;
  out_writes : (string * (int * Sym.t) list) list;
  illegal_at : (int * C.Phase.t * string) list;
}

(* Symbolic functional-unit pipeline mirroring Fu_state. *)
type fu_pipe = { fu : C.Model.fu; slots : Sym.t array }

let fu_create (fu : C.Model.fu) =
  { fu; slots = Array.make fu.latency Sym.Disc }

let fu_busy u =
  let n = Array.length u.slots in
  let rec check i = i < n - 1 && (u.slots.(i) <> Sym.Disc || check (i + 1)) in
  n > 1 && check 0

let fu_step u ~op_index a b =
  let prev = u.slots.(0) in
  let no_operands = a = Sym.Disc && b = Sym.Disc in
  let next =
    if u.fu.C.Model.sticky_illegal && prev = Sym.Illegal then Sym.Illegal
    else if C.Word.is_illegal op_index then Sym.Illegal
    else if a = Sym.Illegal || b = Sym.Illegal then Sym.Illegal
    else if no_operands && C.Word.is_disc op_index then
      (match u.fu.C.Model.ops with
       | op :: _ when C.Ops.is_stateful op && List.length u.fu.C.Model.ops = 1
         ->
         prev
       | _ -> Sym.Disc)
    else
      let op =
        if C.Word.is_disc op_index then None
        else List.nth_opt u.fu.C.Model.ops op_index
      in
      match op with
      | None -> Sym.Illegal
      | Some op ->
        if (not u.fu.C.Model.pipelined) && fu_busy u && not no_operands then
          Sym.Illegal
        else Sym.apply op ~prev a b
  in
  let n = Array.length u.slots in
  let out = u.slots.(n - 1) in
  for i = n - 1 downto 1 do
    u.slots.(i) <- u.slots.(i - 1)
  done;
  u.slots.(0) <- next;
  out

let input_sym (i : C.Model.input) step =
  match i.drive with
  | C.Model.Const v when C.Word.is_disc v -> Sym.Sym i.in_name
  | C.Model.Const v -> Sym.of_word v
  | C.Model.Schedule _ -> Sym.of_word (C.Model.input_value i step)

let run (m : C.Model.t) =
  C.Model.validate_exn m;
  let regs = Hashtbl.create 16 in
  List.iter
    (fun (r : C.Model.register) ->
      Hashtbl.replace regs r.reg_name (Sym.of_word r.init))
    m.registers;
  let fus = Hashtbl.create 8 in
  let fu_out = Hashtbl.create 8 in
  let op_index_of = Hashtbl.create 8 in
  List.iter
    (fun (f : C.Model.fu) ->
      Hashtbl.replace fus f.fu_name (fu_create f);
      Hashtbl.replace fu_out f.fu_name Sym.Disc;
      Hashtbl.replace op_index_of f.fu_name (fun op ->
          let rec find i = function
            | [] -> C.Word.illegal
            | o :: rest -> if C.Ops.equal o op then i else find (i + 1) rest
          in
          find 0 f.ops))
    m.fus;
  let legs, selects = C.Model.all_legs m in
  let legs_at = Hashtbl.create 32 in
  List.iter
    (fun (l : C.Transfer.leg) ->
      let key = (l.step, C.Phase.to_int l.phase) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt legs_at key) in
      Hashtbl.replace legs_at key (prev @ [ l ]))
    legs;
  let selects_at = Hashtbl.create 16 in
  List.iter
    (fun (s : C.Transfer.op_select) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt selects_at s.sel_step)
      in
      Hashtbl.replace selects_at s.sel_step (prev @ [ s ]))
    selects;
  (* data contributions are symbolic; op-select contributions concrete *)
  let contribs : (string, Sym.t list) Hashtbl.t ref = ref (Hashtbl.create 16) in
  let op_contribs : (string, C.Word.t list) Hashtbl.t ref =
    ref (Hashtbl.create 8)
  in
  let visible = ref (Hashtbl.create 16) in
  let op_visible = ref (Hashtbl.create 8) in
  let illegal_at = ref [] in
  let out_writes = ref [] in
  let reg_trace = Hashtbl.create 16 in
  List.iter
    (fun (r : C.Model.register) ->
      Hashtbl.replace reg_trace r.reg_name (Array.make m.cs_max Sym.Disc))
    m.registers;
  let contribute sink v =
    let prev = Option.value ~default:[] (Hashtbl.find_opt !contribs sink) in
    Hashtbl.replace !contribs sink (v :: prev)
  in
  let op_contribute sink v =
    let prev =
      Option.value ~default:[] (Hashtbl.find_opt !op_contribs sink)
    in
    Hashtbl.replace !op_contribs sink (v :: prev)
  in
  let get_visible sink =
    Option.value ~default:Sym.Disc (Hashtbl.find_opt !visible sink)
  in
  let get_op_visible sink =
    Option.value ~default:C.Word.disc (Hashtbl.find_opt !op_visible sink)
  in
  let flip step phase =
    let nv = Hashtbl.create 16 in
    Hashtbl.iter
      (fun sink vs ->
        let v = Sym.resolve vs in
        Hashtbl.replace nv sink v;
        if v = Sym.Illegal && get_visible sink <> Sym.Illegal then
          illegal_at := (step, phase, sink) :: !illegal_at)
      !contribs;
    visible := nv;
    contribs := Hashtbl.create 16;
    let nov = Hashtbl.create 8 in
    Hashtbl.iter
      (fun sink vs ->
        let v = C.Resolve.resolve_list vs in
        Hashtbl.replace nov sink v;
        if C.Word.is_illegal v && not (C.Word.is_illegal (get_op_visible sink))
        then illegal_at := (step, phase, sink) :: !illegal_at)
      !op_contribs;
    op_visible := nov;
    op_contribs := Hashtbl.create 8
  in
  let source_value step = function
    | C.Transfer.Reg_out r ->
      Option.value ~default:Sym.Disc (Hashtbl.find_opt regs r)
    | C.Transfer.In_port i ->
      (match
         List.find_opt (fun (x : C.Model.input) -> x.in_name = i) m.inputs
       with
       | Some inp -> input_sym inp step
       | None -> Sym.Disc)
    | C.Transfer.Bus b -> get_visible b
    | C.Transfer.Fu_out f ->
      Option.value ~default:Sym.Disc (Hashtbl.find_opt fu_out f)
    | C.Transfer.Reg_in _ | C.Transfer.Fu_in _ | C.Transfer.Out_port _ ->
      Sym.Disc
  in
  for step = 1 to m.cs_max do
    List.iter
      (fun phase ->
        flip step phase;
        let ls =
          Option.value ~default:[]
            (Hashtbl.find_opt legs_at (step, C.Phase.to_int phase))
        in
        List.iter
          (fun (l : C.Transfer.leg) ->
            contribute
              (C.Transfer.endpoint_name l.dst)
              (source_value step l.src))
          ls;
        match phase with
        | C.Phase.Rb ->
          List.iter
            (fun (s : C.Transfer.op_select) ->
              match Hashtbl.find_opt op_index_of s.sel_fu with
              | Some index ->
                op_contribute (s.sel_fu ^ ".op") (index s.sel_op)
              | None -> ())
            (Option.value ~default:[] (Hashtbl.find_opt selects_at step))
        | C.Phase.Cm ->
          List.iter
            (fun (f : C.Model.fu) ->
              let u = Hashtbl.find fus f.fu_name in
              let out =
                fu_step u
                  ~op_index:(get_op_visible (f.fu_name ^ ".op"))
                  (get_visible (f.fu_name ^ ".in1"))
                  (get_visible (f.fu_name ^ ".in2"))
              in
              Hashtbl.replace fu_out f.fu_name out)
            m.fus
        | C.Phase.Cr ->
          List.iter
            (fun (r : C.Model.register) ->
              let v = get_visible (r.reg_name ^ ".in") in
              if v <> Sym.Disc then Hashtbl.replace regs r.reg_name v)
            m.registers;
          List.iter
            (fun o ->
              let v = get_visible o in
              if v <> Sym.Disc then
                out_writes := (o, (step, v)) :: !out_writes)
            m.outputs;
          List.iter
            (fun (r : C.Model.register) ->
              (Hashtbl.find reg_trace r.reg_name).(step - 1) <-
                Hashtbl.find regs r.reg_name)
            m.registers
        | C.Phase.Ra | C.Phase.Wa | C.Phase.Wb -> ())
      C.Phase.all
  done;
  { reg_at =
      List.map
        (fun (r : C.Model.register) ->
          ( r.reg_name,
            Array.map Sym.normalize (Hashtbl.find reg_trace r.reg_name) ))
        m.registers;
    reg_final =
      List.map
        (fun (r : C.Model.register) ->
          (r.reg_name, Sym.normalize (Hashtbl.find regs r.reg_name)))
        m.registers;
    out_writes =
      List.map
        (fun o ->
          ( o,
            List.rev
              (List.filter_map
                 (fun (name, (s, v)) ->
                   if name = o then Some (s, Sym.normalize v) else None)
                 !out_writes) ))
        m.outputs;
    illegal_at = List.rev !illegal_at }

let last_output res o =
  match List.assoc_opt o res.out_writes with
  | None | Some [] -> None
  | Some writes ->
    let _, v = List.nth writes (List.length writes - 1) in
    Some v
