module C = Csrtl_core

type t =
  | Disc
  | Illegal
  | Nat of int
  | Sym of string
  | App of C.Ops.t * t list

let nat n = Nat (C.Word.mask n)
let sym s = Sym s

let of_word w =
  if C.Word.is_disc w then Disc
  else if C.Word.is_illegal w then Illegal
  else Nat w

let rec compare_t a b =
  match a, b with
  | Nat x, Nat y -> Int.compare x y
  | Nat _, _ -> -1
  | _, Nat _ -> 1
  | Sym x, Sym y -> String.compare x y
  | Sym _, _ -> -1
  | _, Sym _ -> 1
  | Disc, Disc -> 0
  | Disc, _ -> -1
  | _, Disc -> 1
  | Illegal, Illegal -> 0
  | Illegal, _ -> -1
  | _, Illegal -> 1
  | App (o1, a1), App (o2, a2) ->
    let c = Stdlib.compare o1 o2 in
    if c <> 0 then c else List.compare compare_t a1 a2

(* Immediate forms are folded into their general forms so that, e.g.,
   [Addi 3 x] and [Add x 3] normalize identically. *)
let generalize op args =
  match op, args with
  | C.Ops.Addi n, [ a ] -> (C.Ops.Add, [ a; Nat (C.Word.mask n) ])
  | C.Ops.Subi n, [ a ] -> (C.Ops.Sub, [ a; Nat (C.Word.mask n) ])
  | C.Ops.Muli n, [ a ] -> (C.Ops.Mul, [ a; Nat (C.Word.mask n) ])
  | C.Ops.Shli n, [ a ] -> (C.Ops.Shl, [ a; Nat (C.Word.mask n) ])
  | C.Ops.Shri n, [ a ] -> (C.Ops.Shr, [ a; Nat (C.Word.mask n) ])
  | C.Ops.Asri n, [ a ] -> (C.Ops.Asr, [ a; Nat (C.Word.mask n) ])
  | _, _ -> (op, args)

let associative = function
  | C.Ops.Add | C.Ops.Mul | C.Ops.Band | C.Ops.Bor | C.Ops.Bxor
  | C.Ops.Min | C.Ops.Max ->
    true
  | _ -> false

let neutral = function
  | C.Ops.Add | C.Ops.Bor | C.Ops.Bxor -> Some 0
  | C.Ops.Mul -> Some 1
  | C.Ops.Band -> Some (C.Word.mask (-1))
  | _ -> None

let absorbing = function
  | C.Ops.Mul | C.Ops.Band -> Some 0
  | C.Ops.Bor -> Some (C.Word.mask (-1))
  | _ -> None

let rec normalize t =
  match t with
  | Disc | Illegal | Nat _ | Sym _ -> t
  | App (op, args) ->
    let args = List.map normalize args in
    let op, args = generalize op args in
    if List.exists (fun a -> a = Illegal) args then Illegal
    else if List.for_all (function Nat _ -> true | _ -> false) args then
      (* fully concrete: fold *)
      let ints =
        Array.of_list
          (List.map (function Nat n -> n | _ -> assert false) args)
      in
      Nat (C.Ops.eval op ints)
    else if associative op then begin
      (* flatten nested applications of the same operator *)
      let operands =
        List.concat_map
          (fun a ->
            match a with
            | App (op', args') when op' = op -> args'
            | _ -> [ a ])
          args
      in
      (* fold the concrete part *)
      let nats, others =
        List.partition (function Nat _ -> true | _ -> false) operands
      in
      let folded =
        match nats with
        | [] -> None
        | Nat first :: rest ->
          Some
            (List.fold_left
               (fun acc a ->
                 match a with
                 | Nat n -> C.Ops.eval op [| acc; n |]
                 | _ -> acc)
               first rest)
        | _ -> None
      in
      (match folded, absorbing op with
       | Some v, Some z when v = z -> Nat z
       | _, _ ->
         let keep_const =
           match folded, neutral op with
           | None, _ -> []
           | Some v, Some n when v = n -> []
           | Some v, _ -> [ Nat v ]
         in
         let operands = List.sort compare_t (others @ keep_const) in
         (match operands with
          | [] ->
            (match neutral op with Some n -> Nat n | None -> App (op, []))
          | [ one ] -> one
          | _ -> App (op, operands)))
    end
    else
      (match op, args with
       | C.Ops.Pass, [ a ] -> a
       | C.Ops.Sub, [ a; Nat 0 ] -> a
       | C.Ops.Sub, [ a; b ] when compare_t a b = 0 -> Nat 0
       | C.Ops.Shl, [ a; Nat 0 ]
       | C.Ops.Shr, [ a; Nat 0 ]
       | C.Ops.Asr, [ a; Nat 0 ] ->
         a
       | _, _ -> App (op, args))

let apply op ~prev x y =
  let arity = C.Ops.arity op in
  let operands = match arity with 0 -> [] | 1 -> [ x ] | _ -> [ x; y ] in
  if List.exists (fun a -> a = Illegal) operands then Illegal
  else if arity > 0 && List.for_all (fun a -> a = Disc) operands then
    if C.Ops.is_stateful op then prev else Disc
  else if List.exists (fun a -> a = Disc) operands then Illegal
  else
    match op with
    | C.Ops.Mac ->
      if prev = Illegal then Illegal
      else
        let acc = if prev = Disc then Nat 0 else prev in
        normalize (App (C.Ops.Add, [ acc; App (C.Ops.Mul, [ x; y ]) ]))
    | C.Ops.Const c -> Nat (C.Word.mask c)
    | _ -> normalize (App (op, operands))

let resolve values =
  let contributing = List.filter (fun v -> v <> Disc) values in
  if List.exists (fun v -> v = Illegal) contributing then Illegal
  else
    match contributing with
    | [] -> Disc
    | [ one ] -> one
    | _ :: _ :: _ -> Illegal

let equal a b = compare_t (normalize a) (normalize b) = 0

let rec eval env t =
  match t with
  | Disc -> C.Word.disc
  | Illegal -> C.Word.illegal
  | Nat n -> n
  | Sym s -> C.Word.mask (env s)
  | App (op, args) ->
    let vals = List.map (eval env) args in
    if List.exists C.Word.is_illegal vals then C.Word.illegal
    else if List.exists C.Word.is_disc vals then C.Word.illegal
    else
      (match op, Array.of_list vals with
       | _, arr when Array.length arr = C.Ops.arity op -> C.Ops.eval op arr
       | o, arr when associative o && Array.length arr > 2 ->
         (* flattened n-ary application *)
         Array.fold_left
           (fun acc v -> C.Ops.eval o [| acc; v |])
           arr.(0)
           (Array.sub arr 1 (Array.length arr - 1))
       | _, _ -> C.Word.illegal)

let rec vars_acc acc = function
  | Disc | Illegal | Nat _ -> acc
  | Sym s -> s :: acc
  | App (_, args) -> List.fold_left vars_acc acc args

let vars t = List.sort_uniq String.compare (vars_acc [] t)

let rec size = function
  | Disc | Illegal | Nat _ | Sym _ -> 1
  | App (_, args) -> List.fold_left (fun acc a -> acc + size a) 1 args

let rec to_string = function
  | Disc -> "DISC"
  | Illegal -> "ILLEGAL"
  | Nat n -> string_of_int n
  | Sym s -> s
  | App (op, args) ->
    Printf.sprintf "%s(%s)" (C.Ops.to_string op)
      (String.concat ", " (List.map to_string args))

let pp ppf t = Format.pp_print_string ppf (to_string t)
