(** Symbolic simulation of clock-free models.

    Runs the control-step semantics of {!Csrtl_core.Interp} with
    {!Sym.t} data: unconstrained inputs become free symbols, register
    contents become terms over them.  Operation selections and the
    transfer schedule stay concrete (they are static in the model),
    so the result is exact — per register and output port, the term
    the model computes.  This is the machinery behind the paper's §4
    claim that "formal semantics of initial algorithmic description
    and resulting register transfer level description are defined"
    and compared by "an automatic proving procedure". *)

type result = {
  reg_final : (string * Sym.t) list;
  reg_at : (string * Sym.t array) list;
      (** per register, the normalized term at the end of each control
          step (index [step - 1]) — what {!Lowcheck} compares against *)
  out_writes : (string * (int * Sym.t) list) list;
  illegal_at : (int * Csrtl_core.Phase.t * string) list;
      (** sinks that definitely become ILLEGAL *)
}

val run : Csrtl_core.Model.t -> result
(** Inputs driven with [Const DISC] become symbols named after the
    port; all other drives stay concrete. *)

val last_output : result -> string -> Sym.t option
(** The final value written to an output port. *)
