(** Translation validation for the clocked lowering.

    {!Csrtl_clocked.Equiv} checks the lowering numerically, on one
    input vector.  This module checks it {e symbolically}: the clocked
    netlist is evaluated over symbolic inputs (control stays concrete
    — the step counter, the decoded enables and the multiplexer
    selections all fold to constants, so data terms never blow up),
    and after each control step every architectural register's term
    must equal the clock-free model's term from {!Symsim}, for every
    step where the clock-free value is not DISC (don't-care).

    A [Proved] verdict holds for {e all} input values at once — the
    paper's "transformation ... can be performed automatically"
    upgraded with a per-run correctness certificate. *)

type verdict =
  | Proved
  | Mismatch of {
      at_step : int;
      reg : string;
      clock_free : Sym.t;
      clocked : Sym.t;
    }

val check :
  ?scheme:Csrtl_clocked.Lower.scheme -> Csrtl_core.Model.t -> verdict
(** Lower the model, run both symbolic simulations, compare normalized
    terms per (step, register).  Raises
    {!Csrtl_clocked.Lower.Lowering_error} on conflicted models, like
    the lowering itself.  Models whose inputs have [Const DISC] drives
    are treated as fully symbolic (as in {!Symsim}). *)

val pp_verdict : Format.formatter -> verdict -> unit
