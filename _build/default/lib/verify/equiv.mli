(** Equivalence of an RT model against an algorithmic description.

    The paper §4: "This register transfer level description is to be
    verified against a description at the algorithmic level ... An
    automatic proving procedure has been implemented, that performs
    the verification task."  Here the procedure is: symbolically
    simulate the model ({!Symsim}), symbolically evaluate the
    algorithmic program ({!Csrtl_hls.Ir}), normalize both terms
    ({!Sym.normalize}) and compare.  When normal forms differ the
    verdict falls back to randomized testing: a differing assignment
    refutes, agreement on all trials stays [Unproven] (normalization
    is sound but incomplete). *)

type verdict =
  | Proved  (** normal forms are equal *)
  | Refuted of (string * int) list  (** counterexample assignment *)
  | Unproven of string  (** terms differ syntactically; no refutation found *)

val equal_terms : ?trials:int -> ?seed:int -> Sym.t -> Sym.t -> verdict

val ir_term : Csrtl_hls.Ir.program -> string -> Sym.t
(** Symbolic value of one program output over symbols named after the
    program inputs. *)

val check_program :
  ?trials:int -> Csrtl_hls.Ir.program -> Csrtl_core.Model.t ->
  (string * verdict) list
(** Per program output: the model's final write to the same-named
    output port versus the program's term.  Model inputs must be the
    program inputs (left symbolic). *)

val check_flow : ?trials:int -> Csrtl_hls.Flow.t -> (string * verdict) list
(** {!check_program} applied to an HLS flow's generated model. *)

val all_proved : (string * verdict) list -> bool

val pp_verdict : Format.formatter -> verdict -> unit
