module C = Csrtl_core
module H = Csrtl_hls

type verdict =
  | Proved
  | Refuted of (string * int) list
  | Unproven of string

let equal_terms ?(trials = 64) ?(seed = 0x5eed) a b =
  let na = Sym.normalize a and nb = Sym.normalize b in
  if Sym.equal na nb then Proved
  else begin
    let vars = List.sort_uniq String.compare (Sym.vars na @ Sym.vars nb) in
    let rnd = Random.State.make [| seed |] in
    let rec try_trial i =
      if i >= trials then
        Unproven
          (Printf.sprintf "normal forms differ: %s vs %s" (Sym.to_string na)
             (Sym.to_string nb))
      else begin
        let assignment =
          List.map (fun v -> (v, Random.State.int rnd 1_000_000)) vars
        in
        let env v = List.assoc v assignment in
        if C.Word.equal (Sym.eval env na) (Sym.eval env nb) then
          try_trial (i + 1)
        else Refuted assignment
      end
    in
    try_trial 0
  end

let ir_term (p : H.Ir.program) output =
  H.Ir.validate p;
  let env = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace env i (Sym.Sym i)) p.inputs;
  let rec go = function
    | H.Ir.Var v -> Hashtbl.find env v
    | H.Ir.Lit c -> Sym.nat c
    | H.Ir.Bin (op, a, b) -> Sym.normalize (Sym.App (op, [ go a; go b ]))
    | H.Ir.Un (op, a) -> Sym.normalize (Sym.App (op, [ go a ]))
  in
  List.iter (fun (s : H.Ir.stmt) -> Hashtbl.replace env s.def (go s.rhs)) p.stmts;
  Sym.normalize (Hashtbl.find env output)

let check_program ?trials (p : H.Ir.program) (m : C.Model.t) =
  let res = Symsim.run m in
  List.map
    (fun o ->
      match Symsim.last_output res o with
      | None -> (o, Unproven "model never writes this output")
      | Some term -> (o, equal_terms ?trials (ir_term p o) term))
    p.outputs

let check_flow ?trials (flow : H.Flow.t) =
  check_program ?trials flow.H.Flow.program flow.H.Flow.binding.H.Synth.model

let all_proved verdicts =
  List.for_all (fun (_, v) -> v = Proved) verdicts

let pp_verdict ppf = function
  | Proved -> Format.pp_print_string ppf "proved"
  | Refuted assignment ->
    Format.fprintf ppf "refuted under {%s}"
      (String.concat ", "
         (List.map (fun (v, n) -> Printf.sprintf "%s=%d" v n) assignment))
  | Unproven why -> Format.fprintf ppf "unproven (%s)" why
