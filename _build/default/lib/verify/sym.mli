(** Symbolic word values with normalization.

    Plays the role of the "computer algebra simplification tool" the
    paper cites (Arditi & Collavizza) for relating abstraction
    levels: register contents become terms over the input symbols,
    and two descriptions agree when their normalized terms do.
    Sentinels are part of the domain, mirroring {!Csrtl_core.Word}:
    a symbolic value is either definitely DISC/ILLEGAL, a known
    natural, a free symbol, or an applied operation. *)

type t =
  | Disc
  | Illegal
  | Nat of int
  | Sym of string
  | App of Csrtl_core.Ops.t * t list

val nat : int -> t
val sym : string -> t
val of_word : Csrtl_core.Word.t -> t

val apply : Csrtl_core.Ops.t -> prev:t -> t -> t -> t
(** Symbolic counterpart of {!Csrtl_core.Ops.apply}: concrete
    sentinel behaviour when decidable, otherwise a normalized
    application term. *)

val resolve : t list -> t
(** Symbolic counterpart of the resolution function.  Symbols denote
    naturals, so two potentially-driving terms resolve to ILLEGAL. *)

val normalize : t -> t
(** Constant folding; neutral/absorbing elements ([x+0], [x*1],
    [x*0], [pass x]); flattening and sorting of associative-
    commutative operators ([Add], [Mul], bit operations); immediate
    operations folded into their general forms. *)

val equal : t -> t -> bool
(** Equality of normal forms. *)

val eval : (string -> int) -> t -> Csrtl_core.Word.t
(** Evaluate under an assignment of the free symbols. *)

val vars : t -> string list
(** Free symbols, sorted, without duplicates. *)

val size : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
