(* VHDL round trip (paper sections 2.7 and 4): "formal register
   transfer models can be easily translated to the VHDL register
   transfer model and vice versa."

   Emits the paper-style VHDL for Fig. 1, prints the interesting
   parts, parses it back, extracts the model, and shows that the
   behaviour is preserved.

   Run with: dune exec examples/vhdl_roundtrip.exe *)

open Csrtl_vhdl
module C = Csrtl_core

let () =
  let model = C.Builder.fig1 () in
  let text = Emit.to_string model in

  Format.printf "=== emitted VHDL (%d lines) ===@.@."
    (List.length (String.split_on_char '\n' text));
  (* print the package and the top architecture, elide the middle *)
  let lines = String.split_on_char '\n' text in
  let interesting line =
    let has frag =
      let nh = String.length line and nn = String.length frag in
      let rec go i =
        i + nn <= nh && (String.sub line i nn = frag || go (i + 1))
      in
      nn = 0 || go 0
    in
    has "csrtl" || has "entity" || has "architecture"
    || has "TRANS" || has "CONTROLLER" || has "REG" || has "signal"
    || has "type Phase" || has "constant"
  in
  List.iter
    (fun l -> if interesting l then Format.printf "%s@." l)
    lines;

  Format.printf "@.=== parsing it back ===@.@.";
  let units = Parser.design_file text in
  Format.printf "parsed %d design units@." (List.length units);

  let extracted = Extract.model_of_string text in
  Format.printf "extracted model: %s, cs_max=%d, %d transfer(s)@."
    extracted.C.Model.name extracted.C.Model.cs_max
    (List.length extracted.C.Model.transfers);
  List.iter
    (fun t -> Format.printf "  %a@." C.Transfer.pp t)
    extracted.C.Model.transfers;

  let o1 = C.Interp.run model in
  let o2 = C.Interp.run extracted in
  Format.printf "@.behaviour preserved: %b@."
    (C.Observation.equal
       { o1 with C.Observation.model_name = "m" }
       { o2 with C.Observation.model_name = "m" });

  (* round-trip an HLS-generated model too *)
  Format.printf "@.=== round-tripping an HLS-generated model ===@.@.";
  let flow = Csrtl_hls.Flow.compile (Csrtl_hls.Examples.fir 4) in
  let m2 = flow.Csrtl_hls.Flow.binding.Csrtl_hls.Synth.model in
  let m2 =
    Csrtl_hls.Flow.with_inputs m2
      (List.init 4 (fun i -> (Printf.sprintf "x%d" i, i + 1)))
  in
  let text2 = Emit.to_string m2 in
  let back = Extract.model_of_string text2 in
  Format.printf "fir4: %d transfers emitted, %d extracted@."
    (List.length m2.C.Model.transfers)
    (List.length back.C.Model.transfers);
  let b1 = C.Interp.run m2 and b2 = C.Interp.run back in
  Format.printf "behaviour preserved: %b@."
    (C.Observation.equal
       { b1 with C.Observation.model_name = "m" }
       { b2 with C.Observation.model_name = "m" })
