(* Resource-conflict localization (paper section 2.7):

   "simulation results allow easily to locate design errors leading
   to resource conflicts: it would result to ILLEGAL values of
   resolved signals in specific simulation cycles associated with a
   specific phase of a specific control step."

   Builds a model where two transfers drive bus B1 in the same step,
   shows the static prediction, the dynamic localization from both
   execution paths, and the resulting ILLEGAL propagation.

   Run with: dune exec examples/conflict_demo.exe *)

open Csrtl_core

let conflicted () =
  let b = Builder.create ~name:"conflict_demo" ~cs_max:6 () in
  Builder.reg b ~init:(Word.nat 10) "R1";
  Builder.reg b ~init:(Word.nat 20) "R2";
  Builder.reg b "R3";
  Builder.reg b "R4";
  Builder.buses b [ "B1"; "B2"; "B3" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD1";
  Builder.unit_ b ~ops:[ Ops.Sub ] "SUB1";
  (* Both tuples read at step 2 and both route operand A over B1. *)
  Builder.binary b ~fu:"ADD1"
    ~a:(Transfer.From_reg "R1", "B1")
    ~b:(Transfer.From_reg "R2", "B2")
    ~read:2 ~write:(3, "B1") ~dst:(Transfer.To_reg "R3");
  Builder.binary b ~fu:"SUB1"
    ~a:(Transfer.From_reg "R2", "B1")
    ~b:(Transfer.From_reg "R1", "B3")
    ~read:2 ~write:(3, "B2") ~dst:(Transfer.To_reg "R4");
  Builder.finish_unchecked b

let () =
  let m = conflicted () in
  Format.printf "=== a schedule with a bus conflict ===@.@.%a@." Model.pp m;

  Format.printf "@.--- static analysis (Conflict.check) ---@.";
  List.iter
    (fun c -> Format.printf "  %a@." Conflict.pp c)
    (Conflict.check m);

  Format.printf "@.--- dynamic localization (kernel simulation) ---@.";
  let r = Simulate.run m in
  List.iter
    (fun (step, phase, sink) ->
      Format.printf "  ILLEGAL on %s at control step %d, phase %s@." sink
        step (Phase.to_string phase))
    r.Simulate.obs.Observation.conflicts;

  Format.printf "@.--- consequence ---@.";
  List.iter
    (fun reg ->
      match Observation.final_reg r.Simulate.obs reg with
      | Some v -> Format.printf "  %s ends as %s@." reg (Word.to_string v)
      | None -> ())
    [ "R3"; "R4" ];

  Format.printf
    "@.The interpreter sees the identical failure: %b@."
    (Observation.equal r.Simulate.obs (Interp.run m));

  Format.printf
    "@.Lowering to clocked RTL refuses conflicted schedules:@.";
  (match Csrtl_clocked.Lower.lower m with
   | exception Csrtl_clocked.Lower.Lowering_error msg ->
     Format.printf "  Lowering_error: %s@." msg
   | _ -> Format.printf "  unexpectedly succeeded@.");

  (* fix the schedule: move the second read to step 3 — no conflicts *)
  Format.printf "@.--- repaired schedule (second read moved to step 4) ---@.";
  let fixed =
    { m with
      Model.transfers =
        List.map
          (fun (t : Transfer.t) ->
            if t.Transfer.fu = "SUB1" then
              { t with Transfer.read_step = Some 4; write_step = Some 5 }
            else t)
          m.Model.transfers }
  in
  Format.printf "  static conflicts: %d@."
    (List.length (Conflict.check fixed));
  let r2 = Simulate.run fixed in
  Format.printf "  dynamic conflicts: %d@."
    (List.length r2.Simulate.obs.Observation.conflicts);
  List.iter
    (fun reg ->
      match Observation.final_reg r2.Simulate.obs reg with
      | Some v -> Format.printf "  %s ends as %s@." reg (Word.to_string v)
      | None -> ())
    [ "R3"; "R4" ]
