The runnable examples keep their headline results (guard against
bitrot; full outputs are narrative and may evolve).

  $ ./quickstart.exe | grep -E "R1 after|interpreter agrees|clocked lowering"
    R1 after the run: 7 (3 + 4)
  interpreter agrees with the kernel: true
  clocked lowering (one cycle per step) is equivalent per step

  $ ./iks_demo.exe | grep -E "bit-exact match|reachable$|out of reach$"
  bit-exact match:  true
    target (2.5, 1.0): reachable
    target (5.0, 0.0): out of reach
    target (0.2, 0.1): out of reach

  $ ./hls_flow.exe | grep -c "proved"
  8

  $ ./conflict_demo.exe | grep -E "identical failure|Lowering_error" | head -2
  The interpreter sees the identical failure: true
    Lowering_error: model has 1 resource conflict(s), e.g. double drive of B1 at step 2 phase ra (sources: R1.out, R2.out); ILLEGAL visible at phase rb

  $ ./vhdl_roundtrip.exe | grep -c "behaviour preserved: true"
  2

  $ ./design_flow.exe | grep -E "proved$|dataflow preserved|subset-conformant|equivalent for all inputs" | head -8
    x1: proved
    y1: proved
    u1: proved
    c: proved
    dataflow preserved (symbolic check)
    subset-conformant: true
    lowering proved equivalent for all inputs

The paper's literal code (sections 2.2-2.7, assembled in
paper_fig1.vhd) executes under the interpreting front end:

  $ csrtl run-vhdl paper_fig1.vhd --top example --show R1_out
  simulation cycles: 42
  R1_out = 6
  assertions: all passed
