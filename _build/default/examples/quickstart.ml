(* Quickstart: the paper's Fig. 1 example, end to end.

   Builds the two-register adder model, shows the 9-tuple and its six
   TRANS legs, simulates it on the delta-cycle kernel and on the
   reference interpreter, and demonstrates the paper's delta-cycle
   law (6 cycles per control step).

   Run with: dune exec examples/quickstart.exe *)

open Csrtl_core

let () =
  Format.printf "=== paper Fig. 1: (R1,B1,R2,B2,5,ADD,6,B1,R1) ===@.@.";
  let model = Builder.fig1 ~x:3 ~y:4 () in
  Format.printf "%a@." Model.pp model;

  (* The tuple <-> TRANS-instance mapping of paper section 2.7. *)
  let legs, selects = Model.all_legs model in
  Format.printf "@.The tuple decomposes into %d TRANS instances:@."
    (List.length legs);
  List.iter (fun l -> Format.printf "  %a@." Transfer.pp_leg l) legs;
  let recomposed =
    Transfer.merge ~latency_of:(Model.fu_latency model)
      (Transfer.compose legs selects)
  in
  Format.printf "...and they recompose to: %s@.@."
    (String.concat " " (List.map Transfer.to_string recomposed));

  (* Event-driven simulation on the kernel. *)
  let result = Simulate.run model in
  Format.printf "kernel simulation: %d simulation cycles (= 6 x cs_max = %d)@."
    result.Simulate.cycles
    (6 * model.Model.cs_max);
  Format.printf "  kernel stats: %a@." Csrtl_kernel.Scheduler.pp_stats
    result.Simulate.stats;
  (match Observation.final_reg result.Simulate.obs "R1" with
   | Some v -> Format.printf "  R1 after the run: %s (3 + 4)@." (Word.to_string v)
   | None -> assert false);

  (* Register timeline: R1 holds 3 until the write-back at step 6. *)
  (match Observation.reg_trace result.Simulate.obs "R1" with
   | Some arr ->
     Format.printf "  R1 per step:";
     Array.iter (fun v -> Format.printf " %s" (Word.to_string v)) arr;
     Format.printf "@."
   | None -> ());

  (* The direct control-step interpreter agrees exactly. *)
  let interp = Interp.run model in
  Format.printf "@.interpreter agrees with the kernel: %b@."
    (Observation.equal result.Simulate.obs interp);

  (* And the clocked lowering refines it (paper section 2.2). *)
  (match Csrtl_clocked.Equiv.check model with
   | Ok () ->
     Format.printf
       "clocked lowering (one cycle per step) is equivalent per step@."
   | Error ms ->
     List.iter
       (fun m ->
         Format.printf "MISMATCH %a@." Csrtl_clocked.Equiv.pp_mismatch m)
       ms)
