  $ ./quickstart.exe | grep -E "R1 after|interpreter agrees|clocked lowering"
  $ ./iks_demo.exe | grep -E "bit-exact match|reachable$|out of reach$"
  $ ./hls_flow.exe | grep -c "proved"
  $ ./conflict_demo.exe | grep -E "identical failure|Lowering_error" | head -2
  $ ./vhdl_roundtrip.exe | grep -c "behaviour preserved: true"
  $ ./design_flow.exe | grep -E "proved$|dataflow preserved|subset-conformant|equivalent for all inputs" | head -8
  $ csrtl run-vhdl paper_fig1.vhd --top example --show R1_out
