(* The paper's section 4 application: simulating high-level-synthesis
   results at the abstract RT level, then verifying them against the
   algorithmic description and lowering them to clocked RTL.

   Uses the classic HAL differential-equation benchmark.

   Run with: dune exec examples/hls_flow.exe *)

open Csrtl_hls
module C = Csrtl_core
module V = Csrtl_verify

let () =
  Format.printf "=== HLS flow: HAL differential-equation benchmark ===@.@.";
  let program = Examples.diffeq in
  Format.printf "%a@." Ir.pp program;

  (* schedule under two resource budgets *)
  List.iter
    (fun (label, resources) ->
      let flow = Flow.compile ~resources program in
      Format.printf "@.--- %s ---@." label;
      Format.printf "%a@." Sched.pp flow.Flow.schedule;
      Format.printf "%a@." Synth.pp_report flow.Flow.binding;
      (* simulate the generated clock-free model on a test vector *)
      let inputs = [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 100) ] in
      (match Flow.check flow ~inputs with
       | Ok () ->
         Format.printf
           "simulation matches the algorithmic semantics on %s@."
           (String.concat ", "
              (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) inputs))
       | Error es -> List.iter (Format.printf "MISMATCH %s@.") es);
      (* the paper's automatic proving procedure: symbolic equivalence *)
      let verdicts = V.Equiv.check_flow flow in
      List.iter
        (fun (o, v) ->
          Format.printf "  output %s: %a@." o V.Equiv.pp_verdict v)
        verdicts;
      (* and the succeeding synthesis step: lower to clocked RTL *)
      let m = Flow.with_inputs flow.Flow.binding.Synth.model inputs in
      match Csrtl_clocked.Equiv.check m with
      | Ok () -> Format.printf "  clocked lowering equivalent per step@."
      | Error ms ->
        List.iter
          (fun mm ->
            Format.printf "  MISMATCH %a@." Csrtl_clocked.Equiv.pp_mismatch
              mm)
          ms)
    [ ("1 ALU, 1 multiplier, 2 buses", Sched.default_resources ());
      ( "2 ALUs, 2 multipliers, 4 buses",
        Sched.default_resources ~alus:2 ~mults:2 ~buses:4 () ) ];

  (* show the symbolic terms the proving procedure compares *)
  Format.printf "@.--- symbolic terms (proving procedure internals) ---@.";
  let flow = Flow.compile program in
  let res = V.Symsim.run flow.Flow.binding.Synth.model in
  List.iter
    (fun o ->
      match V.Symsim.last_output res o with
      | Some term ->
        Format.printf "  %s = %s@." o (V.Sym.to_string term)
      | None -> ())
    program.Ir.outputs
