(* The complete top-down flow the paper's introduction motivates:

     algorithmic description
       -> (schedule + allocate)        high-level synthesis, section 4
       -> clock-free RT model          the paper's subset, section 2
       -> verified against the source  "automatic proving procedure"
       -> compacted                    transformations on the subset
       -> emitted as subset VHDL       section 2.7 (lint-clean)
       -> lowered to clocked RTL       the succeeding synthesis step
       -> proven equivalent            symbolic translation validation
       -> emitted as clocked VHDL      outside the subset, by design

   Run with: dune exec examples/design_flow.exe *)

module C = Csrtl_core
module H = Csrtl_hls
module V = Csrtl_verify

let bar title = Format.printf "@.--- %s ---@." title

let () =
  Format.printf "=== top-down design flow: HAL differential equation ===@.";

  bar "1. algorithmic level";
  let program = H.Examples.diffeq in
  Format.printf "%a" H.Ir.pp program;

  bar "2. high-level synthesis (force-directed, time-constrained)";
  let flow =
    H.Flow.compile ~scheduler:`Force_directed
      ~resources:(H.Sched.default_resources ~buses:4 ())
      program
  in
  Format.printf "%a@.%a@." H.Sched.pp flow.H.Flow.schedule
    H.Synth.pp_report flow.H.Flow.binding;
  let model = flow.H.Flow.binding.H.Synth.model in

  bar "3. verification against the algorithmic level";
  List.iter
    (fun (o, v) -> Format.printf "  %s: %a@." o V.Equiv.pp_verdict v)
    (V.Equiv.check_flow flow);

  bar "4. schedule compaction (a transformation on the subset)";
  let before, after = C.Reschedule.compaction model in
  Format.printf "  %d -> %d control steps@." before after;
  let model = C.Reschedule.compact model in
  (match
     let s1 = V.Symsim.run flow.H.Flow.binding.H.Synth.model in
     let s2 = V.Symsim.run model in
     List.for_all2
       (fun (_, a) (_, b) -> V.Sym.equal a b)
       s1.V.Symsim.reg_final s2.V.Symsim.reg_final
   with
   | true -> Format.printf "  dataflow preserved (symbolic check)@."
   | false -> Format.printf "  DATAFLOW CHANGED@.");

  bar "5. the clock-free subset VHDL (lint-clean)";
  let vhdl = Csrtl_vhdl.Emit.to_string model in
  Format.printf "  %d lines of VHDL@."
    (List.length (String.split_on_char '\n' vhdl));
  (match Csrtl_vhdl.Lint.check_source vhdl with
   | Ok findings ->
     Format.printf "  subset-conformant: %b@."
       (Csrtl_vhdl.Lint.conformant findings)
   | Error msg -> Format.printf "  lint error: %s@." msg);

  bar "6. the succeeding synthesis step: clocked RTL";
  let low = Csrtl_clocked.Lower.lower model in
  Format.printf "  netlist: %a@." Csrtl_clocked.Netlist.pp_stats
    low.Csrtl_clocked.Lower.net;
  (match V.Lowcheck.check model with
   | V.Lowcheck.Proved ->
     Format.printf "  lowering proved equivalent for all inputs@."
   | v -> Format.printf "  %a@." V.Lowcheck.pp_verdict v);

  bar "7. clocked VHDL (outside the subset, as the linter shows)";
  let rtl = Csrtl_clocked.Emit_vhdl.to_string ~name:"diffeq" low in
  Format.printf "  %d lines of clocked VHDL@."
    (List.length (String.split_on_char '\n' rtl));
  (match Csrtl_vhdl.Lint.check_source rtl with
   | Ok findings ->
     let errors =
       List.filter
         (fun (f : Csrtl_vhdl.Lint.finding) ->
           f.Csrtl_vhdl.Lint.severity = Csrtl_vhdl.Lint.Error)
         findings
     in
     Format.printf
       "  subset linter flags %d clock idioms (the boundary the paper \
        draws)@."
       (List.length errors)
   | Error msg -> Format.printf "  %s@." msg);

  bar "8. simulate the final model, with a waveform";
  let m =
    H.Flow.with_inputs model
      [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 100) ]
  in
  let obs = C.Interp.run m in
  Format.printf "%s@." (C.Waveform.render obs)
