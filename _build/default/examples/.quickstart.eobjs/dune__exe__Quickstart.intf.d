examples/quickstart.mli:
