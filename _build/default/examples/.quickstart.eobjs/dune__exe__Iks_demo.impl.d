examples/iks_demo.ml: Csrtl_core Csrtl_iks Fixed Format Golden Ikprog List Microcode Translate
