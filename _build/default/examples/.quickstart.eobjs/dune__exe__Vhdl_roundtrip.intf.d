examples/vhdl_roundtrip.mli:
