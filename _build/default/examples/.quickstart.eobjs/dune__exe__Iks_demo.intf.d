examples/iks_demo.mli:
