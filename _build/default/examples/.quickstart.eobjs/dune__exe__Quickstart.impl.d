examples/quickstart.ml: Array Builder Csrtl_clocked Csrtl_core Csrtl_kernel Format Interp List Model Observation Simulate String Transfer Word
