examples/conflict_demo.mli:
