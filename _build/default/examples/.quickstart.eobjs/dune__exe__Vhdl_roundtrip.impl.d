examples/vhdl_roundtrip.ml: Csrtl_core Csrtl_hls Csrtl_vhdl Emit Extract Format List Parser Printf String
