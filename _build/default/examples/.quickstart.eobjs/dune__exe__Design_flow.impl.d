examples/design_flow.ml: Csrtl_clocked Csrtl_core Csrtl_hls Csrtl_verify Csrtl_vhdl Format List String
