examples/conflict_demo.ml: Builder Conflict Csrtl_clocked Csrtl_core Format Interp List Model Observation Ops Phase Simulate Transfer Word
