examples/hls_flow.ml: Csrtl_clocked Csrtl_core Csrtl_hls Csrtl_verify Examples Flow Format Ir List Printf Sched String Synth
