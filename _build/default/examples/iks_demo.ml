(* The paper's section 3 application: the IKS (inverse kinematics
   solution) chip at the abstract register-transfer level.

   Shows the microcode-table-to-transfers translation on the paper's
   worked example (store address 7), then generates and runs a
   complete inverse-kinematics microprogram on the Fig. 3 datapath,
   comparing against the algorithmic golden model.

   Run with: dune exec examples/iks_demo.exe *)

open Csrtl_iks
module C = Csrtl_core

let () =
  Format.printf "=== paper Table (store address 7) -> transfers ===@.@.";
  Format.printf "%a@.@." Microcode.pp_instr Microcode.paper_addr7;
  let tuples = Translate.tuples_of_instr Microcode.paper_addr7 in
  Format.printf "derived transfer tuples (cf. paper section 3):@.";
  List.iter (fun t -> Format.printf "  %a@." C.Transfer.pp t) tuples;

  Format.printf "@.=== inverse kinematics on the Fig. 3 datapath ===@.@.";
  let l1 = Fixed.of_float 2.0 and l2 = Fixed.of_float 1.5 in
  let px = Fixed.of_float 2.5 and py = Fixed.of_float 1.0 in
  Format.printf "arm: l1=%s l2=%s   target: (%s, %s)@." (Fixed.to_string l1)
    (Fixed.to_string l2) (Fixed.to_string px) (Fixed.to_string py);

  let t = Ikprog.build ~l1 ~l2 ~px ~py in
  let words = List.length t.Ikprog.program.Microcode.instrs in
  Format.printf "generated microprogram: %d words@." words;
  Format.printf "first words:@.";
  List.iteri
    (fun i ins -> if i < 6 then Format.printf "  %a@." Microcode.pp_instr ins)
    t.Ikprog.program.Microcode.instrs;
  Format.printf "  ...@.";

  let model =
    Translate.to_model ~inputs:t.Ikprog.inputs ~reg_init:t.Ikprog.reg_init
      t.Ikprog.program
  in
  Format.printf
    "translated clock-free model: cs_max=%d, %d transfers, %d conflicts@."
    model.C.Model.cs_max
    (List.length model.C.Model.transfers)
    (List.length (C.Conflict.check model));

  let obs = C.Interp.run model in
  let theta1 = Translate.final_loc obs Ikprog.theta1_loc in
  let theta2 = Translate.final_loc obs Ikprog.theta2_loc in
  Format.printf "@.datapath result:  theta1 = %s rad, theta2 = %s rad@."
    (Fixed.to_string theta1) (Fixed.to_string theta2);
  Format.printf "golden model:     theta1 = %s rad, theta2 = %s rad@."
    (Fixed.to_string t.Ikprog.expected.Golden.theta1)
    (Fixed.to_string t.Ikprog.expected.Golden.theta2);
  Format.printf "bit-exact match:  %b@."
    (theta1 = t.Ikprog.expected.Golden.theta1
     && theta2 = t.Ikprog.expected.Golden.theta2);

  (match
     Golden.solve_float ~l1:2.0 ~l2:1.5 ~px:2.5 ~py:1.0
   with
   | Some (t1, t2) ->
     Format.printf "float reference:  theta1 = %.5f rad, theta2 = %.5f rad@."
       t1 t2
   | None -> ());

  (* forward kinematics as a second microprogram: round trip on the
     datapath itself *)
  Format.printf "@.=== forward kinematics on the datapath ===@.@.";
  let rx, ry =
    Ikprog.forward_on_datapath ~l1 ~l2 ~theta1 ~theta2
  in
  Format.printf "FK(theta1, theta2) = (%s, %s)  (target was (2.5, 1.0))@."
    (Fixed.to_string rx) (Fixed.to_string ry);

  (* and the fully static workspace check *)
  Format.printf "@.=== workspace check (static microcode) ===@.@.";
  let wp, _ = Ikprog.build_workspace () in
  Format.printf "%d static words; same program for every input@."
    (List.length wp.Microcode.instrs);
  List.iter
    (fun (px, py) ->
      Format.printf "  target (%.1f, %.1f): %s@." px py
        (if
           Ikprog.workspace_on_datapath ~l1 ~l2 ~px:(Fixed.of_float px)
             ~py:(Fixed.of_float py)
         then "reachable"
         else "out of reach"))
    [ (2.5, 1.0); (5.0, 0.0); (0.2, 0.1) ]
