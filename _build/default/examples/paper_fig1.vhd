-- The paper's running example, assembled verbatim from the code
-- fragments printed in sections 2.2-2.7 of "Register Transfer Level
-- VHDL Models without Clocks" (Mutz, DATE 1998): the support package
-- with the resolution function, CONTROLLER / TRANS / REG as printed,
-- the ADD module of section 2.6, and the Fig. 1 architecture with its
-- six TRANS instances (R1 <- R1 + R2 scheduled at steps 5/6).
--
-- Run it with the interpreting VHDL front end:
--
--   csrtl run-vhdl examples/paper_fig1.vhd --top example --show R1_out
--
-- Both registers start at 3, so R1 ends at 6, and the run takes
-- exactly 6 * CS_MAX = 42 delta cycles (no write-back in step 7).
package csrtl_rt is
  type Phase is (ra, rb, cm, wa, wb, cr);
  constant DISC: Integer := -1;
  constant ILLEGAL: Integer := -2;
  type Integer_Vector is array (Natural range <>) of Integer;
  function resolve (s: Integer_Vector) return Integer is
    variable result: Integer := DISC;
  begin
    for i in s'Low to s'High loop
      if s(i) = ILLEGAL then
        result := ILLEGAL;
      elsif s(i) /= DISC then
        if result = DISC then
          result := s(i);
        else
          result := ILLEGAL;
        end if;
      end if;
    end loop;
    return result;
  end resolve;
end csrtl_rt;

entity CONTROLLER is
  generic (CS_MAX: Natural);
  port (CS: inout Natural := 0; PH: inout Phase := Phase'High);
end CONTROLLER;
architecture transfer of CONTROLLER is
begin
  process (PH)
  begin
    if PH = Phase'High then
      if CS < CS_MAX then
        CS <= CS + 1;
        PH <= Phase'Low;
      end if;
    else
      PH <= Phase'Succ(PH);
    end if;
  end process;
end transfer;

entity TRANS is
  generic (S: Natural; P: Phase);
  port (CS: in Natural; PH: in Phase;
        InS: in Integer; OutS: out Integer := DISC);
end TRANS;
architecture transfer of TRANS is
begin
  process
  begin
    wait until CS = S and PH = P;
    OutS <= InS;
    wait until CS = S and PH = Phase'Succ(P);
    OutS <= DISC;
    wait;
  end process;
end transfer;

entity REG is
  port (PH: in Phase; R_in: in Integer; R_out: out Integer := DISC);
end REG;
architecture transfer of REG is
begin
  process
  begin
    wait until PH = cr;
    if R_in /= DISC then
      R_out <= R_in;
    end if;
  end process;
end transfer;

entity ADD is
  port (PH: in Phase; M_in1, M_in2: in Integer;
        M_out: out Integer := DISC);
end ADD;
architecture transfer of ADD is
begin
  process
    variable M: Integer := DISC;
  begin
    wait until PH = cm;
    M_out <= M;
    if M /= ILLEGAL then
      if M_in1 = DISC and M_in2 = DISC then
        M := DISC;
      elsif M_in1 /= DISC and M_in2 /= DISC then
        M := M_in1 + M_in2;
      else
        M := ILLEGAL;
      end if;
    end if;
  end process;
end transfer;

entity example is
end example;
architecture transfer of example is
  signal CS: Natural := 0;
  signal PH: Phase := Phase'High;
  signal ADD_in1, ADD_in2: resolve Integer;
  signal ADD_out: Integer;
  signal R1_in, R2_in: resolve Integer;
  signal R1_out, R2_out: Integer := 3;
  signal B1, B2: resolve Integer;
begin
  ADD_proc: ADD port map (PH, ADD_in1, ADD_in2, ADD_out);
  R1_proc: REG port map (PH, R1_in, R1_out);
  R2_proc: REG port map (PH, R2_in, R2_out);
  R1_out_B1_5: TRANS generic map (5, ra) port map (CS, PH, R1_out, B1);
  B1_ADD_in1_5: TRANS generic map (5, rb) port map (CS, PH, B1, ADD_in1);
  R2_out_B2_5: TRANS generic map (5, ra) port map (CS, PH, R2_out, B2);
  B2_ADD_in2_5: TRANS generic map (5, rb) port map (CS, PH, B2, ADD_in2);
  ADD_out_B1_6: TRANS generic map (6, wa) port map (CS, PH, ADD_out, B1);
  B1_R1_in_6: TRANS generic map (6, wb) port map (CS, PH, B1, R1_in);
  CONTROL: CONTROLLER generic map (7) port map (CS, PH);
end transfer;
