(* Tests of the clocked lowering: netlist construction, levelized
   evaluation, both control-step implementation schemes, the
   refinement-equivalence checker, and the event-driven clocked
   baseline. *)

module C = Csrtl_core
open Csrtl_clocked

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- netlist + eval ------------------------------------------------------- *)

let test_netlist_counter () =
  (* A free-running counter: q' = q + 1. *)
  let net = Netlist.create () in
  let q = Netlist.reg net ~name:"q" ~init:0 in
  let next = Netlist.op net C.Ops.Add [ q; Netlist.const net 1 ] in
  Netlist.connect_reg net q ~next ~enable:None;
  Netlist.tap net "q" q;
  let res = Eval.run net ~cycles:5 in
  Alcotest.(check (list (pair string int))) "final" [ ("q", 5) ]
    res.Eval.final_regs;
  let taps =
    List.map
      (fun (s : Eval.snapshot) -> List.assoc "q" s.Eval.tap_values)
      res.Eval.snapshots
  in
  Alcotest.(check (list int)) "ramp" [ 0; 1; 2; 3; 4 ] taps

let test_netlist_enable_and_mux () =
  (* Load 7 only when cycle counter equals 3 (via eq + enable). *)
  let net = Netlist.create () in
  let cnt = Netlist.reg net ~name:"cnt" ~init:1 in
  Netlist.connect_reg net cnt
    ~next:(Netlist.op net C.Ops.Add [ cnt; Netlist.const net 1 ])
    ~enable:None;
  let r = Netlist.reg net ~name:"r" ~init:0 in
  let en = Netlist.eq_const net cnt 3 in
  Netlist.connect_reg net r ~next:(Netlist.const net 7) ~enable:(Some en);
  let res = Eval.run net ~cycles:5 in
  Alcotest.(check (list (pair string int))) "final"
    [ ("cnt", 6); ("r", 7) ]
    res.Eval.final_regs;
  (* r loads exactly at the edge of cycle 3 *)
  let r_after =
    List.map
      (fun (s : Eval.snapshot) -> List.assoc "r" s.Eval.regs_after_edge)
      res.Eval.snapshots
  in
  Alcotest.(check (list int)) "r timeline" [ 0; 0; 7; 7; 7 ] r_after

let test_netlist_hash_consing () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let x = Netlist.op net C.Ops.Add [ a; Netlist.const net 1 ] in
  let y = Netlist.op net C.Ops.Add [ a; Netlist.const net 1 ] in
  check_int "shared node" x y

let test_netlist_inputs () =
  let net = Netlist.create () in
  let a = Netlist.input net "a" in
  let r = Netlist.reg net ~name:"r" ~init:0 in
  Netlist.connect_reg net r ~next:a ~enable:None;
  let res =
    Eval.run ~inputs:(fun _ cycle -> 10 * cycle) net ~cycles:3
  in
  Alcotest.(check (list (pair string int))) "final" [ ("r", 30) ]
    res.Eval.final_regs

(* -- lowering fig1 ----------------------------------------------------------- *)

let test_lower_fig1_one_cycle () =
  let m = C.Builder.fig1 () in
  let low = Lower.lower m in
  check_int "cycles" 7 (Lower.cycles_needed low);
  let res = Lower.run low in
  check_int "R1 after step 6" 7
    (Lower.reg_value_after_step low res ~step:6 "R1");
  check_int "R1 before write" 3
    (Lower.reg_value_after_step low res ~step:5 "R1");
  check_int "R2 untouched" 4
    (Lower.reg_value_after_step low res ~step:7 "R2")

let test_lower_rejects_conflicts () =
  let b = C.Builder.create ~name:"clash" ~cs_max:6 () in
  C.Builder.reg b ~init:(C.Word.nat 1) "R1";
  C.Builder.reg b ~init:(C.Word.nat 2) "R2";
  C.Builder.reg b "R3";
  C.Builder.buses b [ "B1"; "B2" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add ] "ADD";
  C.Builder.binary b ~fu:"ADD"
    ~a:(C.Transfer.From_reg "R1", "B1")
    ~b:(C.Transfer.From_reg "R2", "B2")
    ~read:2 ~write:(3, "B1") ~dst:(C.Transfer.To_reg "R3");
  C.Builder.binary b ~fu:"ADD"
    ~a:(C.Transfer.From_reg "R2", "B1")
    ~b:(C.Transfer.From_reg "R1", "B2")
    ~read:2 ~write:(3, "B2") ~dst:(C.Transfer.To_reg "R3");
  let m = C.Builder.finish_unchecked b in
  match Lower.lower m with
  | exception Lower.Lowering_error _ -> ()
  | _ -> Alcotest.fail "expected Lowering_error"

(* -- equivalence ---------------------------------------------------------------- *)

let mixed_model () =
  let b = C.Builder.create ~name:"mixed" ~cs_max:10 () in
  C.Builder.input b ~value:(C.Word.nat 5) "X";
  C.Builder.reg b ~init:(C.Word.nat 2) "R1";
  C.Builder.reg b "R2";
  C.Builder.reg b "R3";
  C.Builder.output b "Y";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add; C.Ops.Sub ] "ALU";
  C.Builder.unit_ b ~latency:2 ~ops:[ C.Ops.Mul ] "MULT";
  C.Builder.binary b ~op:C.Ops.Add ~fu:"ALU"
    ~a:(C.Transfer.From_input "X", "BA")
    ~b:(C.Transfer.From_reg "R1", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(C.Transfer.To_reg "R2");
  C.Builder.binary b ~fu:"MULT"
    ~a:(C.Transfer.From_reg "R2", "BA")
    ~b:(C.Transfer.From_reg "R2", "BB")
    ~read:3 ~write:(5, "BA") ~dst:(C.Transfer.To_reg "R3");
  C.Builder.binary b ~op:C.Ops.Sub ~fu:"ALU"
    ~a:(C.Transfer.From_reg "R3", "BA")
    ~b:(C.Transfer.From_reg "R2", "BB")
    ~read:6 ~write:(7, "BB") ~dst:(C.Transfer.To_output "Y");
  C.Builder.finish b

let test_equiv_one_cycle () =
  match Equiv.check (mixed_model ()) with
  | Ok () -> ()
  | Error ms ->
    Alcotest.fail
      (String.concat "; "
         (List.map (Format.asprintf "%a" Equiv.pp_mismatch) ms))

let test_equiv_two_phase () =
  match Equiv.check ~scheme:Lower.Two_phase (mixed_model ()) with
  | Ok () -> ()
  | Error ms ->
    Alcotest.fail
      (String.concat "; "
         (List.map (Format.asprintf "%a" Equiv.pp_mismatch) ms))

let test_equiv_mac () =
  (* Accumulating unit: R1 accumulates X*2 twice. *)
  let b = C.Builder.create ~name:"macs" ~cs_max:8 () in
  C.Builder.input b ~value:(C.Word.nat 3) "X";
  C.Builder.reg b ~init:(C.Word.nat 2) "K";
  C.Builder.reg b "ACC";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Mac ] "MACC";
  C.Builder.binary b ~fu:"MACC"
    ~a:(C.Transfer.From_input "X", "BA")
    ~b:(C.Transfer.From_reg "K", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(C.Transfer.To_reg "ACC");
  C.Builder.binary b ~fu:"MACC"
    ~a:(C.Transfer.From_input "X", "BA")
    ~b:(C.Transfer.From_reg "K", "BB")
    ~read:3 ~write:(4, "BA") ~dst:(C.Transfer.To_reg "ACC");
  let m = C.Builder.finish b in
  (* clock-free semantics: ACC = 6 then 12 *)
  let obs = C.Interp.run m in
  Alcotest.(check (option int)) "interp acc" (Some 12)
    (C.Observation.final_reg obs "ACC");
  match Equiv.check_all_schemes m with
  | [ (_, Ok ()); (_, Ok ()) ] -> ()
  | results ->
    let bad =
      List.filter_map
        (fun (_, r) -> match r with Ok () -> None | Error ms -> Some ms)
        results
    in
    Alcotest.fail
      (String.concat "; "
         (List.concat_map
            (List.map (Format.asprintf "%a" Equiv.pp_mismatch))
            bad))

let random_chain seed =
  let rnd = Random.State.make [| seed |] in
  let steps = 2 + Random.State.int rnd 5 in
  let cs_max = (steps * 2) + 2 in
  let b = C.Builder.create ~name:(Printf.sprintf "rc%d" seed) ~cs_max () in
  C.Builder.reg b ~init:(C.Word.nat (1 + Random.State.int rnd 40)) "R0";
  C.Builder.reg b ~init:(C.Word.nat (1 + Random.State.int rnd 40)) "R1";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add; C.Ops.Mul; C.Ops.Max ] "ALU";
  for i = 0 to steps - 1 do
    let op =
      match Random.State.int rnd 3 with
      | 0 -> C.Ops.Add
      | 1 -> C.Ops.Mul
      | _ -> C.Ops.Max
    in
    let read = (i * 2) + 1 in
    C.Builder.binary b ~op ~fu:"ALU"
      ~a:(C.Transfer.From_reg "R0", "BA")
      ~b:(C.Transfer.From_reg "R1", "BB")
      ~read ~write:(read + 1, "BA")
      ~dst:(C.Transfer.To_reg (if i mod 2 = 0 then "R1" else "R0"))
  done;
  C.Builder.finish b

let prop_equiv_random =
  QCheck.Test.make ~name:"lowering is equivalent on random chains (both schemes)"
    ~count:25
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = random_chain seed in
      List.for_all
        (fun (_, r) -> r = Ok ())
        (Equiv.check_all_schemes m))

(* -- event-driven clocked baseline ------------------------------------------- *)

let test_kernel_sim_matches_eval () =
  let m = mixed_model () in
  let low = Lower.lower m in
  let cycles = Lower.cycles_needed low in
  let ev = Eval.run ~inputs:(Lower.input_function low) low.Lower.net ~cycles in
  let ks =
    Kernel_sim.run ~inputs:(Lower.input_function low) low.Lower.net ~cycles
  in
  List.iter
    (fun (name, v) ->
      check_int ("reg " ^ name) v (List.assoc name ks.Kernel_sim.final_regs))
    ev.Eval.final_regs;
  (* the event-driven run advanced physical time; the clock-free model
     never would *)
  check_bool "time advanced" true (ks.Kernel_sim.sim_time > 0)

let test_kernel_sim_costs_more_events () =
  (* DESIGN.md C3: the clocked event-driven simulation needs more
     kernel activity than the clock-free discipline for the same
     schedule. *)
  let m = mixed_model () in
  let cf = C.Simulate.run m in
  let low = Lower.lower m in
  let ks =
    Kernel_sim.run ~inputs:(Lower.input_function low) low.Lower.net
      ~cycles:(Lower.cycles_needed low)
  in
  check_bool "clocked >= clock-free process runs" true
    (ks.Kernel_sim.stats.Csrtl_kernel.Types.process_runs
     >= cf.C.Simulate.stats.Csrtl_kernel.Types.process_runs)

(* -- clocked VHDL emission ------------------------------------------------- *)

let test_emit_vhdl_parses_and_is_outside_subset () =
  let m = mixed_model () in
  let low = Lower.lower m in
  let text = Emit_vhdl.to_string ~name:"mixed" low in
  (* parses with our own subset grammar *)
  (match Csrtl_vhdl.Parser.design_file text with
   | units -> check_bool "has units" true (List.length units >= 2)
   | exception Csrtl_vhdl.Parser.Parse_error (l, msg) ->
     Alcotest.fail (Printf.sprintf "line %d: %s" l msg));
  (* ...but is outside the clock-free subset: the linter must flag
     the clock idioms, which is exactly the boundary the paper draws *)
  match Csrtl_vhdl.Lint.check_source text with
  | Ok findings ->
    check_bool "not conformant" false (Csrtl_vhdl.Lint.conformant findings);
    check_bool "no-clocks findings" true
      (List.exists
         (fun (f : Csrtl_vhdl.Lint.finding) ->
           f.Csrtl_vhdl.Lint.rule = "no-clocks")
         findings)
  | Error msg -> Alcotest.fail msg

let test_emit_vhdl_structure () =
  let m = C.Builder.fig1 () in
  let low = Lower.lower m in
  let text = Emit_vhdl.to_string ~name:"fig1" low in
  let contains frag =
    let nh = String.length text and nn = String.length frag in
    let rec go i = i + nn <= nh && (String.sub text i nn = frag || go (i + 1)) in
    nn = 0 || go 0
  in
  List.iter
    (fun frag -> check_bool frag true (contains frag))
    [ "entity fig1_rtl is";
      "clk: in Integer";
      "architecture rtl of fig1_rtl is";
      "wait until clk = 1;";
      "reg_SC: process";
      "reg_R1: process" ];
  (* one register process per netlist register *)
  let regs = List.length (Netlist.registers low.Lower.net) in
  let count_occurrences needle =
    let nl = String.length needle in
    let rec go i acc =
      if i + nl > String.length text then acc
      else if String.sub text i nl = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check_int "one clocked process per register" regs
    (count_occurrences "wait until clk = 1;")

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "clocked"
    [ ( "netlist",
        [ Alcotest.test_case "counter" `Quick test_netlist_counter;
          Alcotest.test_case "enable and mux" `Quick
            test_netlist_enable_and_mux;
          Alcotest.test_case "hash consing" `Quick test_netlist_hash_consing;
          Alcotest.test_case "inputs" `Quick test_netlist_inputs ] );
      ( "lower",
        [ Alcotest.test_case "fig1 one-cycle" `Quick
            test_lower_fig1_one_cycle;
          Alcotest.test_case "rejects conflicts" `Quick
            test_lower_rejects_conflicts ] );
      ( "equiv",
        [ Alcotest.test_case "one cycle per step" `Quick test_equiv_one_cycle;
          Alcotest.test_case "two phase" `Quick test_equiv_two_phase;
          Alcotest.test_case "mac accumulator" `Quick test_equiv_mac ] );
      qsuite "equiv-props" [ prop_equiv_random ];
      ( "emit-vhdl",
        [ Alcotest.test_case "parses; outside the subset" `Quick
            test_emit_vhdl_parses_and_is_outside_subset;
          Alcotest.test_case "structure" `Quick test_emit_vhdl_structure ] );
      ( "kernel-sim",
        [ Alcotest.test_case "matches levelized" `Quick
            test_kernel_sim_matches_eval;
          Alcotest.test_case "costs more events" `Quick
            test_kernel_sim_costs_more_events ] ) ]
