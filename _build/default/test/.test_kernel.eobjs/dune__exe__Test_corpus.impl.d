test/test_corpus.ml: Alcotest Array Csrtl_clocked Csrtl_core Csrtl_kernel Csrtl_verify Csrtl_vhdl Filename Format List Printf String Sys
