test/test_handshake.ml: Alcotest Channel Csrtl_core Csrtl_handshake Csrtl_kernel Fmt Hs_model List
