test/test_iks.ml: Alcotest Cordic Csrtl_core Csrtl_iks Datapath Fixed Float Golden Ikprog List Microcode Printf Random Translate
