test/test_verify.ml: Alcotest Consist Csrtl_clocked Csrtl_core Csrtl_hls Csrtl_verify Equiv Format Hashtbl List Lowcheck Option Printf QCheck QCheck_alcotest String Sym Symsim
