test/test_iks.mli:
