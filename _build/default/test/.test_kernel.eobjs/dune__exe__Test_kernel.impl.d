test/test_kernel.ml: Alcotest Array Buffer Csrtl_kernel Printf Process Scheduler Signal String Time Trace Types Vcd
