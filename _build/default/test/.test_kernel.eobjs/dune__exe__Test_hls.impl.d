test/test_hls.ml: Alcotest Array Csrtl_clocked Csrtl_core Csrtl_hls Csrtl_verify Dfg Examples Fds Flow Format Int Ir List Parse Printf QCheck QCheck_alcotest Random Sched String Synth
