test/test_vhdl.mli:
