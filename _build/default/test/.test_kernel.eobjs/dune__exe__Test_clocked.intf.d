test/test_clocked.mli:
