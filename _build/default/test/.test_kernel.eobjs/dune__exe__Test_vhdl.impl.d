test/test_vhdl.ml: Alcotest Array Ast Csrtl_core Csrtl_kernel Csrtl_verify Csrtl_vhdl Elab Emit Extract Format Lexer Lint List Parser Pp Printf QCheck QCheck_alcotest Random String
