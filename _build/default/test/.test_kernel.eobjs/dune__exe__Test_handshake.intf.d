test/test_handshake.mli:
