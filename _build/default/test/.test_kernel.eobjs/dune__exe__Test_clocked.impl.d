test/test_clocked.ml: Alcotest Csrtl_clocked Csrtl_core Csrtl_kernel Csrtl_vhdl Emit_vhdl Equiv Eval Format Kernel_sim List Lower Netlist Printf QCheck QCheck_alcotest Random String
