(* Tests of the high-level-synthesis substrate: IR evaluation, DFG
   construction, ASAP/ALAP/list scheduling under resource
   constraints, binding, and the end-to-end flow check against the
   algorithmic semantics (paper §4). *)

open Csrtl_hls
module C = Csrtl_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let simple_program =
  (* s = (a+b) * (a-b); d = s + 1 *)
  { Ir.pname = "simple";
    inputs = [ "a"; "b" ];
    stmts =
      [ { Ir.def = "p"; rhs = Ir.Bin (C.Ops.Add, Var "a", Var "b") };
        { def = "q"; rhs = Bin (C.Ops.Sub, Var "a", Var "b") };
        { def = "s"; rhs = Bin (C.Ops.Mul, Var "p", Var "q") };
        { def = "d"; rhs = Bin (C.Ops.Add, Var "s", Lit 1) } ];
    outputs = [ "s"; "d" ] }

(* -- IR -------------------------------------------------------------------- *)

let test_ir_eval () =
  let out = Ir.eval simple_program [ ("a", 7); ("b", 3) ] in
  Alcotest.(check (list (pair string int))) "outputs"
    [ ("s", 40); ("d", 41) ] out

let test_ir_validate () =
  let bad =
    { Ir.pname = "bad"; inputs = [];
      stmts = [ { Ir.def = "x"; rhs = Ir.Var "nope" } ];
      outputs = [ "x" ] }
  in
  (match Ir.validate bad with
   | exception Ir.Ill_formed _ -> ()
   | () -> Alcotest.fail "expected Ill_formed");
  let bad_arity =
    { Ir.pname = "bad2"; inputs = [ "a" ];
      stmts = [ { Ir.def = "x"; rhs = Ir.Un (C.Ops.Add, Var "a") } ];
      outputs = [ "x" ] }
  in
  match Ir.validate bad_arity with
  | exception Ir.Ill_formed _ -> ()
  | () -> Alcotest.fail "expected arity error"

let test_ir_reassignment () =
  let p =
    { Ir.pname = "reassign"; inputs = [ "a" ];
      stmts =
        [ { Ir.def = "x"; rhs = Ir.Bin (C.Ops.Add, Var "a", Lit 1) };
          { def = "x"; rhs = Bin (C.Ops.Mul, Var "x", Lit 2) } ];
      outputs = [ "x" ] }
  in
  Alcotest.(check (list (pair string int))) "sequential semantics"
    [ ("x", 22) ]
    (Ir.eval p [ ("a", 10) ])

(* -- DFG -------------------------------------------------------------------- *)

let test_dfg_shape () =
  let g = Dfg.of_program simple_program in
  check_int "four nodes" 4 (Dfg.size g);
  check_int "depth three" 3 (Dfg.depth g);
  (* out s is node 2, out d is node 3 *)
  Alcotest.(check bool) "outputs resolved" true
    (List.length g.Dfg.out_map = 2)

let test_dfg_copy_forwarding () =
  let p =
    { Ir.pname = "copies"; inputs = [ "a" ];
      stmts =
        [ { Ir.def = "x"; rhs = Ir.Var "a" };
          { def = "y"; rhs = Var "x" };
          { def = "z"; rhs = Bin (C.Ops.Add, Var "y", Var "y") } ];
      outputs = [ "z" ] }
  in
  let g = Dfg.of_program p in
  check_int "copies forwarded away" 1 (Dfg.size g)

let test_dfg_diffeq () =
  let g = Dfg.of_program Examples.diffeq in
  check_int "eleven operations" 11 (Dfg.size g);
  check_bool "multiplications present" true
    (Array.exists
       (fun (nd : Dfg.node) -> nd.Dfg.op = C.Ops.Mul)
       g.Dfg.nodes)

(* -- scheduling --------------------------------------------------------------- *)

let test_asap_alap () =
  let res = Sched.default_resources () in
  let g = Dfg.of_program simple_program in
  let asap = Sched.asap res g in
  (* p,q at 1; s reads at 3 (alu lat 1 + 1); d at 6 (mul lat 2 + 1) *)
  Alcotest.(check (list int)) "asap" [ 1; 1; 3; 6 ] (Array.to_list asap);
  let alap = Sched.alap res g ~horizon:8 in
  check_int "d as late as possible" 7 alap.(3);
  check_bool "alap >= asap" true
    (List.for_all2 ( <= ) (Array.to_list asap) (Array.to_list alap))

let test_list_schedule_respects_constraints () =
  let res = Sched.default_resources ~alus:1 ~mults:1 ~buses:2 () in
  let g = Dfg.of_program Examples.diffeq in
  let s = Sched.list_schedule res g in
  Alcotest.(check (result unit (list string))) "verifies" (Ok ())
    (Sched.verify s);
  (* 6 multiplications on one multiplier: at least 6 distinct steps *)
  let mult_steps =
    Array.to_list g.Dfg.nodes
    |> List.filter_map (fun (nd : Dfg.node) ->
           if nd.Dfg.op = C.Ops.Mul then Some s.Sched.read_step.(nd.id)
           else None)
  in
  check_int "six mults serialized" 6
    (List.length (List.sort_uniq Int.compare mult_steps))

let test_more_resources_shorter_schedule () =
  (* diffeq is critical-path bound: more units must not hurt.  FIR is
     multiplier bound: more multipliers must shorten the schedule. *)
  let g = Dfg.of_program Examples.diffeq in
  let slow =
    Sched.list_schedule (Sched.default_resources ~alus:1 ~mults:1 ()) g
  in
  let fast =
    Sched.list_schedule
      (Sched.default_resources ~alus:2 ~mults:3 ~buses:6 ())
      g
  in
  check_bool "more units do not hurt" true
    (fast.Sched.n_steps <= slow.Sched.n_steps);
  let fir = Dfg.of_program (Examples.fir 8) in
  let fir_slow =
    Sched.list_schedule (Sched.default_resources ~mults:1 ()) fir
  in
  let fir_fast =
    Sched.list_schedule
      (Sched.default_resources ~mults:4 ~buses:8 ())
      fir
  in
  check_bool "parallel multipliers help fir" true
    (fir_fast.Sched.n_steps < fir_slow.Sched.n_steps)

let test_unschedulable_detected () =
  let g = Dfg.of_program simple_program in
  let no_mult =
    { Sched.classes =
        [ { Sched.cls_name = "ALU"; cls_ops = [ C.Ops.Add; C.Ops.Sub ];
            count = 1; latency = 1; pipelined = true } ];
      buses = 2 }
  in
  match Sched.list_schedule no_mult g with
  | exception Sched.Unschedulable _ -> ()
  | _ -> Alcotest.fail "expected Unschedulable"

(* -- synthesis + flow ----------------------------------------------------------- *)

let test_flow_simple () =
  let flow = Flow.compile simple_program in
  Alcotest.(check (result unit (list string))) "matches IR semantics"
    (Ok ())
    (Flow.check flow ~inputs:[ ("a", 7); ("b", 3) ])

let test_flow_diffeq () =
  let flow = Flow.compile Examples.diffeq in
  let inputs = [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 100) ] in
  Alcotest.(check (result unit (list string))) "diffeq verified" (Ok ())
    (Flow.check flow ~inputs);
  (* x1 = 3, y1 = y + u*dx = 8, u1 = u - 3xu dx - 3y dx = 3-18-15 *)
  let outs = Flow.output_values flow ~inputs in
  Alcotest.(check int) "x1" 3 (List.assoc "x1" outs);
  Alcotest.(check int) "y1" 8 (List.assoc "y1" outs);
  Alcotest.(check int) "u1" (C.Word.mask (3 - 18 - 15))
    (List.assoc "u1" outs);
  Alcotest.(check int) "c" 1 (List.assoc "c" outs)

let test_flow_fir () =
  let p = Examples.fir 8 in
  let flow = Flow.compile ~resources:(Sched.default_resources ~mults:2 ()) p in
  let inputs = List.init 8 (fun i -> (Printf.sprintf "x%d" i, i + 1)) in
  Alcotest.(check (result unit (list string))) "fir verified" (Ok ())
    (Flow.check flow ~inputs)

let test_flow_horner () =
  let flow = Flow.compile (Examples.horner 6) in
  Alcotest.(check (result unit (list string))) "horner verified" (Ok ())
    (Flow.check flow ~inputs:[ ("x", 3) ])

let test_flow_kernel_matches_interp () =
  (* The generated models also satisfy the kernel/interp consistency. *)
  let flow = Flow.compile simple_program in
  let m =
    Flow.with_inputs flow.Flow.binding.Synth.model [ ("a", 9); ("b", 4) ]
  in
  let k = (C.Simulate.run m).C.Simulate.obs in
  let i = C.Interp.run m in
  Alcotest.(check (list string)) "consistent" [] (C.Observation.diff k i)

let test_flow_lowers_to_clocked () =
  (* §4 chain: algorithm -> clock-free RT -> clocked RTL. *)
  let flow = Flow.compile simple_program in
  let m =
    Flow.with_inputs flow.Flow.binding.Synth.model [ ("a", 6); ("b", 2) ]
  in
  match Csrtl_clocked.Equiv.check m with
  | Ok () -> ()
  | Error ms ->
    Alcotest.fail
      (String.concat "; "
         (List.map (Format.asprintf "%a" Csrtl_clocked.Equiv.pp_mismatch) ms))

let prop_random_programs_verified =
  (* random straight-line programs synthesize to models matching the
     IR semantics under random resource budgets *)
  let gen_program seed =
    let rnd = Random.State.make [| seed |] in
    let n_stmts = 3 + Random.State.int rnd 8 in
    let vars = ref [ "a"; "b" ] in
    let stmts =
      List.init n_stmts (fun i ->
          let pick () =
            List.nth !vars (Random.State.int rnd (List.length !vars))
          in
          let op =
            match Random.State.int rnd 4 with
            | 0 -> C.Ops.Add
            | 1 -> C.Ops.Sub
            | 2 -> C.Ops.Mul
            | _ -> C.Ops.Max
          in
          let rhs =
            if Random.State.int rnd 5 = 0 then
              Ir.Bin (op, Ir.Var (pick ()), Ir.Lit (Random.State.int rnd 20))
            else Ir.Bin (op, Ir.Var (pick ()), Ir.Var (pick ()))
          in
          let def = Printf.sprintf "v%d" i in
          vars := def :: !vars;
          { Ir.def; rhs })
    in
    let outputs = [ (List.hd stmts).Ir.def; Printf.sprintf "v%d" (n_stmts - 1) ]
    in
    let outputs = List.sort_uniq String.compare outputs in
    ( { Ir.pname = Printf.sprintf "rand%d" seed; inputs = [ "a"; "b" ];
        stmts; outputs },
      rnd )
  in
  QCheck.Test.make ~name:"random programs synthesize correctly" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let p, rnd = gen_program seed in
      let resources =
        Sched.default_resources
          ~alus:(1 + Random.State.int rnd 2)
          ~mults:(1 + Random.State.int rnd 2)
          ~buses:(2 + Random.State.int rnd 3)
          ()
      in
      let flow = Flow.compile ~resources p in
      Flow.check flow
        ~inputs:[ ("a", Random.State.int rnd 100); ("b", Random.State.int rnd 100) ]
      = Ok ())

let prop_schedules_verify =
  QCheck.Test.make ~name:"list schedules always satisfy constraints" ~count:30
    QCheck.(pair (int_range 4 16) (int_range 1 3))
    (fun (taps, mults) ->
      let g = Dfg.of_program (Examples.fir taps) in
      let res = Sched.default_resources ~mults ~buses:2 () in
      let s = Sched.list_schedule res g in
      Sched.verify s = Ok ())

(* -- force-directed scheduling --------------------------------------------- *)

let test_fds_diffeq_balances_units () =
  (* The Paulin & Knight result: at the critical-path latency the
     balanced schedule needs 1 ALU + 1 multiplier where greedy list
     scheduling with abundant units uses 2 + 2. *)
  let g = Dfg.of_program Examples.diffeq in
  let res = Sched.default_resources ~buses:4 () in
  let fds, fds_res = Fds.schedule res g in
  Alcotest.(check (result unit (list string))) "verifies" (Ok ())
    (Sched.verify fds);
  Alcotest.(check (list (pair string int))) "balanced units"
    [ ("ALU", 1); ("MULT", 1) ]
    (Fds.units_needed fds);
  let greedy =
    Sched.list_schedule
      (Sched.default_resources ~alus:8 ~mults:8 ~buses:4 ())
      g
  in
  check_int "same latency as greedy" greedy.Sched.n_steps fds.Sched.n_steps;
  check_bool "fewer or equal units everywhere" true
    (List.for_all
       (fun (cls, n) ->
         match List.assoc_opt cls (Fds.units_needed greedy) with
         | Some m -> n <= m
         | None -> true)
       (Fds.units_needed fds));
  (* the returned resources carry the output counts *)
  check_bool "resource counts updated" true
    (List.for_all
       (fun (c : Sched.fu_class) -> c.Sched.count >= 1)
       fds_res.Sched.classes)

let test_fds_horizon_validation () =
  let g = Dfg.of_program Examples.diffeq in
  match Fds.schedule ~horizon:3 (Sched.default_resources ()) g with
  | exception Fds.Infeasible _ -> ()
  | _ -> Alcotest.fail "horizon below the critical path must fail"

let test_fds_relaxed_horizon_never_needs_more () =
  let g = Dfg.of_program (Examples.fir 8) in
  let res = Sched.default_resources ~buses:4 () in
  let tight, _ = Fds.schedule res g in
  let relaxed, _ =
    Fds.schedule ~horizon:(tight.Sched.n_steps + 6) res g
  in
  Alcotest.(check (result unit (list string))) "relaxed verifies" (Ok ())
    (Sched.verify relaxed);
  let total s =
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Fds.units_needed s)
  in
  check_bool "more time, no more units" true (total relaxed <= total tight)

let test_fds_flow_end_to_end () =
  List.iter
    (fun p ->
      let flow = Flow.compile ~scheduler:`Force_directed p in
      Alcotest.(check (result unit (list string)))
        (p.Ir.pname ^ " matches IR semantics")
        (Ok ())
        (Flow.check flow
           ~inputs:
             (List.map (fun i -> (i, 3 + String.length i)) p.Ir.inputs)))
    [ Examples.diffeq; Examples.fir 6; Examples.horner 4; simple_program ]

let prop_fds_schedules_verify =
  QCheck.Test.make ~name:"FDS schedules always satisfy constraints" ~count:25
    QCheck.(pair (int_range 4 14) (int_range 2 5))
    (fun (taps, buses) ->
      (* QCheck shrinking can escape int_range bounds; clamp *)
      let taps = max 4 taps and buses = max 2 buses in
      let g = Dfg.of_program (Examples.fir taps) in
      let res = Sched.default_resources ~buses () in
      let s, _ = Fds.schedule res g in
      Sched.verify s = Ok ())

(* -- fft4 ---------------------------------------------------------------------- *)

let test_fft4_against_dft () =
  (* the straight-line FFT equals the direct DFT (exact for N = 4:
     twiddles are +-1 and +-j) *)
  let xs = [ (5, 1); (2, -3); (-4, 2); (7, 0) ] in
  let inputs =
    List.concat
      (List.mapi
         (fun k (re, im) ->
           [ (Printf.sprintf "x%dr" k, C.Word.mask re);
             (Printf.sprintf "x%di" k, C.Word.mask im) ])
         xs)
  in
  let outs = Ir.eval Examples.fft4 inputs in
  (* direct DFT: X_k = sum_n x_n * exp(-2 pi i k n / 4) *)
  let dft k =
    let re = ref 0 and im = ref 0 in
    List.iteri
      (fun n (xr, xi) ->
        match k * n mod 4 with
        | 0 -> re := !re + xr; im := !im + xi
        | 1 -> (* * -j: (r+ji)(-j) = i - jr *)
          re := !re + xi; im := !im - xr
        | 2 -> re := !re - xr; im := !im - xi
        | _ -> re := !re - xi; im := !im + xr)
      xs;
    (!re, !im)
  in
  List.iteri
    (fun k _ ->
      let er, ei = dft k in
      check_int (Printf.sprintf "X%d re" k) (C.Word.mask er)
        (List.assoc (Printf.sprintf "y%dr" k) outs);
      check_int (Printf.sprintf "X%d im" k) (C.Word.mask ei)
        (List.assoc (Printf.sprintf "y%di" k) outs))
    xs

let test_fft4_flow () =
  (* wide and shallow: benefits from parallel ALUs *)
  let narrow = Flow.compile Examples.fft4 in
  let wide =
    Flow.compile
      ~resources:(Sched.default_resources ~alus:4 ~buses:8 ())
      Examples.fft4
  in
  check_bool "parallelism helps fft4" true
    (wide.Flow.schedule.Sched.n_steps < narrow.Flow.schedule.Sched.n_steps);
  let inputs =
    List.map (fun i -> (i, 3 + (7 * String.length i))) Examples.fft4.Ir.inputs
  in
  Alcotest.(check (result unit (list string))) "narrow verified" (Ok ())
    (Flow.check narrow ~inputs);
  Alcotest.(check (result unit (list string))) "wide verified" (Ok ())
    (Flow.check wide ~inputs);
  check_bool "symbolically proved" true
    (Csrtl_verify.Equiv.all_proved (Csrtl_verify.Equiv.check_flow wide))

let test_reg_alloc_ablation () =
  (* left-edge register sharing versus one-register-per-value *)
  let sched =
    Sched.list_schedule (Sched.default_resources ()) (Dfg.of_program Examples.diffeq)
  in
  let le = Synth.synthesize ~reg_alloc:`Left_edge sched in
  let naive = Synth.synthesize ~reg_alloc:`Naive sched in
  check_bool
    (Printf.sprintf "left-edge %d < naive %d" le.Synth.registers_used
       naive.Synth.registers_used)
    true
    (le.Synth.registers_used < naive.Synth.registers_used);
  check_int "naive = one per value" (Dfg.size le.Synth.schedule.Sched.dfg)
    naive.Synth.registers_used;
  (* both are correct *)
  let inputs = [ ("x", 2); ("y", 5); ("u", 3); ("dx", 1); ("a", 100) ] in
  List.iter
    (fun (b : Synth.binding) ->
      let m = Flow.with_inputs b.Synth.model inputs in
      let obs = C.Interp.run m in
      check_bool "conflict-free" false (C.Observation.has_conflict obs))
    [ le; naive ]

(* -- the .alg text format ------------------------------------------------- *)

let test_alg_parse_and_flow () =
  let src =
    {|program gcd_step   # one straight-line round
inputs a b
outputs hi lo d
hi = max(a, b)
lo = min(a, b)
d  = hi - lo
|}
  in
  let p = Parse.program_of_string src in
  Alcotest.(check string) "name" "gcd_step" p.Ir.pname;
  Alcotest.(check (list (pair string int))) "eval"
    [ ("hi", 21); ("lo", 9); ("d", 12) ]
    (Ir.eval p [ ("a", 9); ("b", 21) ]);
  let flow = Flow.compile p in
  Alcotest.(check (result unit (list string))) "flows" (Ok ())
    (Flow.check flow ~inputs:[ ("a", 9); ("b", 21) ])

let test_alg_roundtrip () =
  List.iter
    (fun p ->
      let p' = Parse.program_of_string (Parse.to_string p) in
      (* same meaning on a vector *)
      let inputs = List.map (fun i -> (i, 5 + String.length i)) p.Ir.inputs in
      Alcotest.(check (list (pair string int)))
        (p.Ir.pname ^ " roundtrip")
        (Ir.eval p inputs) (Ir.eval p' inputs))
    [ Examples.diffeq; Examples.fir 5; Examples.fft4 ]

let test_alg_errors () =
  let expect src frag =
    match Parse.program_of_string src with
    | exception Parse.Parse_error (_, msg) ->
      check_bool
        (Printf.sprintf "%S mentions %S" msg frag)
        true
        (let nh = String.length msg and nn = String.length frag in
         let rec go i =
           i + nn <= nh && (String.sub msg i nn = frag || go (i + 1))
         in
         nn = 0 || go 0)
    | _ -> Alcotest.fail ("no error for " ^ src)
  in
  expect "x = $\n" "unexpected character";
  expect "inputs a\nx = y + 1\noutputs x\n" "used before definition";
  expect "x = max(1)\noutputs x\n" "takes 2 argument";
  expect "x = frob(1, 2)\noutputs x\n" "unknown operation"

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hls"
    [ ( "ir",
        [ Alcotest.test_case "eval" `Quick test_ir_eval;
          Alcotest.test_case "validation" `Quick test_ir_validate;
          Alcotest.test_case "reassignment" `Quick test_ir_reassignment ] );
      ( "dfg",
        [ Alcotest.test_case "shape" `Quick test_dfg_shape;
          Alcotest.test_case "copy forwarding" `Quick
            test_dfg_copy_forwarding;
          Alcotest.test_case "diffeq" `Quick test_dfg_diffeq ] );
      ( "sched",
        [ Alcotest.test_case "asap/alap" `Quick test_asap_alap;
          Alcotest.test_case "list schedule constraints" `Quick
            test_list_schedule_respects_constraints;
          Alcotest.test_case "more resources, shorter schedule" `Quick
            test_more_resources_shorter_schedule;
          Alcotest.test_case "unschedulable detected" `Quick
            test_unschedulable_detected ] );
      ( "flow",
        [ Alcotest.test_case "simple" `Quick test_flow_simple;
          Alcotest.test_case "diffeq" `Quick test_flow_diffeq;
          Alcotest.test_case "fir" `Quick test_flow_fir;
          Alcotest.test_case "horner" `Quick test_flow_horner;
          Alcotest.test_case "kernel consistency" `Quick
            test_flow_kernel_matches_interp;
          Alcotest.test_case "lowers to clocked" `Quick
            test_flow_lowers_to_clocked ] );
      ( "alg-format",
        [ Alcotest.test_case "parse and flow" `Quick test_alg_parse_and_flow;
          Alcotest.test_case "print/parse roundtrip" `Quick
            test_alg_roundtrip;
          Alcotest.test_case "errors" `Quick test_alg_errors ] );
      ( "ablation",
        [ Alcotest.test_case "left-edge vs naive registers" `Quick
            test_reg_alloc_ablation ] );
      ( "fft4",
        [ Alcotest.test_case "equals the direct DFT" `Quick
            test_fft4_against_dft;
          Alcotest.test_case "flow, narrow and wide" `Quick test_fft4_flow ] );
      ( "fds",
        [ Alcotest.test_case "diffeq balances units" `Quick
            test_fds_diffeq_balances_units;
          Alcotest.test_case "horizon validation" `Quick
            test_fds_horizon_validation;
          Alcotest.test_case "relaxed horizon" `Quick
            test_fds_relaxed_horizon_never_needs_more;
          Alcotest.test_case "flow end to end" `Quick
            test_fds_flow_end_to_end ] );
      qsuite "props"
        [ prop_random_programs_verified; prop_schedules_verify;
          prop_fds_schedules_verify ] ]
