(* Tests of the clock-free RT model library: words, phases, the
   resolution function, tuples and legs, Fig. 1 end-to-end on both
   execution paths, conflict detection, the delta-cycle law. *)

open Csrtl_core

let word = Alcotest.testable (Fmt.of_to_string Word.to_string) Word.equal
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* -- Word --------------------------------------------------------------- *)

let test_word_sentinels () =
  check_bool "disc" true (Word.is_disc Word.disc);
  check_bool "illegal" true (Word.is_illegal Word.illegal);
  check_bool "nat not disc" false (Word.is_disc (Word.nat 0));
  Alcotest.check_raises "negative nat" (Invalid_argument "Word.nat: negative")
    (fun () -> ignore (Word.nat (-3)));
  Alcotest.(check string) "print disc" "DISC" (Word.to_string Word.disc);
  Alcotest.(check string) "print illegal" "ILLEGAL"
    (Word.to_string Word.illegal);
  Alcotest.(check (option int)) "of_string" (Some 12) (Word.of_string "12");
  Alcotest.(check (option int)) "of_string disc" (Some Word.disc)
    (Word.of_string "DISC");
  Alcotest.(check (option int)) "of_string junk" None (Word.of_string "-7")

let test_word_signed () =
  let minus_one = Word.of_signed (-1) in
  check_bool "still a natural" true (Word.is_nat minus_one);
  check_int "roundtrip" (-1) (Word.to_signed minus_one);
  check_int "positive unchanged" 1234 (Word.to_signed (Word.nat 1234));
  check_int "mask wraps" 0 (Word.mask (1 lsl Word.width))

(* -- Phase -------------------------------------------------------------- *)

let test_phase_order () =
  check_int "six phases" 6 (List.length Phase.all);
  Alcotest.(check (list string)) "order"
    [ "ra"; "rb"; "cm"; "wa"; "wb"; "cr" ]
    (List.map Phase.to_string Phase.all);
  check_bool "cyclic" true (Phase.succ Phase.Cr = Phase.Ra);
  List.iter
    (fun p -> check_bool "succ/pred inverse" true (Phase.pred (Phase.succ p) = p))
    Phase.all;
  List.iter
    (fun p ->
      Alcotest.(check (option string)) "int roundtrip"
        (Some (Phase.to_string p))
        (Option.map Phase.to_string (Phase.of_int (Phase.to_int p))))
    Phase.all

(* -- Resolution (paper definition + algebraic properties) --------------- *)

let test_resolution_paper_cases () =
  let r = Resolve.resolve_list in
  Alcotest.check word "all DISC" Word.disc
    (r [ Word.disc; Word.disc; Word.disc ]);
  Alcotest.check word "single natural" (Word.nat 5)
    (r [ Word.disc; Word.nat 5; Word.disc ]);
  Alcotest.check word "two naturals" Word.illegal
    (r [ Word.nat 5; Word.disc; Word.nat 5 ]);
  Alcotest.check word "one illegal poisons" Word.illegal
    (r [ Word.disc; Word.illegal ]);
  Alcotest.check word "empty" Word.disc (r []);
  Alcotest.check word "nat + illegal" Word.illegal
    (r [ Word.nat 1; Word.illegal ])

let arbitrary_word =
  QCheck.map
    (fun i -> if i = -1 then Word.disc else if i = -2 then Word.illegal else i)
    QCheck.(int_range (-2) 20)

let prop_resolution_commutative =
  QCheck.Test.make ~name:"resolution is commutative" ~count:500
    (QCheck.pair arbitrary_word arbitrary_word)
    (fun (a, b) -> Resolve.combine a b = Resolve.combine b a)

let prop_resolution_associative =
  QCheck.Test.make ~name:"resolution is associative" ~count:500
    (QCheck.triple arbitrary_word arbitrary_word arbitrary_word)
    (fun (a, b, c) ->
      Resolve.combine a (Resolve.combine b c)
      = Resolve.combine (Resolve.combine a b) c)

let prop_resolution_unit =
  QCheck.Test.make ~name:"DISC is the unit" ~count:100 arbitrary_word
    (fun a -> Resolve.combine Word.disc a = a && Resolve.combine a Word.disc = a)

let prop_resolution_nat_only_when_unique =
  QCheck.Test.make ~name:"natural result iff exactly one natural, no illegal"
    ~count:500
    (QCheck.list_of_size (QCheck.Gen.int_range 0 6) arbitrary_word)
    (fun vs ->
      let r = Resolve.resolve_list vs in
      let nats = List.length (List.filter Word.is_nat vs) in
      let ills = List.length (List.filter Word.is_illegal vs) in
      if Word.is_nat r then nats = 1 && ills = 0
      else if Word.is_disc r then nats = 0 && ills = 0
      else nats >= 2 || ills >= 1)

(* -- Ops ----------------------------------------------------------------- *)

let test_ops_eval () =
  check_int "add" 7 (Ops.eval Ops.Add [| 3; 4 |]);
  check_int "sub wraps" (Word.mask (-1)) (Ops.eval Ops.Sub [| 3; 4 |]);
  check_int "mul" 12 (Ops.eval Ops.Mul [| 3; 4 |]);
  check_int "shri" 2 (Ops.eval (Ops.Shri 2) [| 8 |]);
  check_int "asr keeps sign" (Word.of_signed (-2))
    (Ops.eval (Ops.Asri 1) [| Word.of_signed (-4) |]);
  check_int "const" 1 (Ops.eval (Ops.Const 1) [||]);
  check_int "mac" 14 (Ops.eval Ops.Mac [| 3; 4; 2 |]);
  check_int "lts signed" 1
    (Ops.eval Ops.Lts [| Word.of_signed (-1); Word.nat 0 |]);
  check_int "lt unsigned" 0
    (Ops.eval Ops.Lt [| Word.of_signed (-1); Word.nat 0 |])

let test_ops_apply_lifting () =
  let w = Alcotest.check word in
  w "both disc" Word.disc (Ops.apply Ops.Add ~prev:Word.disc Word.disc Word.disc);
  w "partial" Word.illegal (Ops.apply Ops.Add ~prev:Word.disc (Word.nat 1) Word.disc);
  w "illegal poisons" Word.illegal
    (Ops.apply Ops.Add ~prev:Word.disc Word.illegal (Word.nat 1));
  w "normal" (Word.nat 3) (Ops.apply Ops.Add ~prev:Word.disc (Word.nat 1) (Word.nat 2));
  w "unary ignores b" (Word.nat 5)
    (Ops.apply Ops.Pass ~prev:Word.disc (Word.nat 5) Word.disc);
  w "mac accumulates" (Word.nat 11)
    (Ops.apply Ops.Mac ~prev:(Word.nat 5) (Word.nat 2) (Word.nat 3));
  w "mac holds on disc" (Word.nat 5)
    (Ops.apply Ops.Mac ~prev:(Word.nat 5) Word.disc Word.disc)

let test_ops_string_roundtrip () =
  let ops =
    [ Ops.Add; Ops.Sub; Ops.Mul; Ops.Shri 3; Ops.Asri 1; Ops.Const 42;
      Ops.Pass; Ops.Mac; Ops.Lts; Ops.Addi 7 ]
  in
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Ops.to_string op) true
        (match Ops.of_string (Ops.to_string op) with
         | Some op' -> Ops.equal op op'
         | None -> false))
    ops;
  Alcotest.(check bool) "junk" true (Ops.of_string "frob" = None)

(* -- Tuples and legs ------------------------------------------------------ *)

let fig1_tuple =
  Transfer.full
    ~src_a:(Transfer.From_reg "R1") ~bus_a:"B1"
    ~src_b:(Transfer.From_reg "R2") ~bus_b:"B2"
    ~read_step:5 ~fu:"ADD" ~op:Ops.Add ~write_step:6 ~write_bus:"B1"
    ~dst:(Transfer.To_reg "R1") ()

let test_decompose_fig1 () =
  let legs, selects = Transfer.decompose fig1_tuple in
  check_int "six legs" 6 (List.length legs);
  check_int "one selection" 1 (List.length selects);
  let show (l : Transfer.leg) = Format.asprintf "%a" Transfer.pp_leg l in
  Alcotest.(check (list string)) "paper's six TRANS instances"
    [ "R1.out -> B1 @5/ra"; "R2.out -> B2 @5/ra"; "B1 -> ADD.in1 @5/rb";
      "B2 -> ADD.in2 @5/rb"; "ADD.out -> B1 @6/wa"; "B1 -> R1.in @6/wb" ]
    (List.map show legs)

let test_compose_recovers_partial_tuples () =
  (* Paper §2.7: legs recompose into a read tuple and a write tuple. *)
  let legs, selects = Transfer.decompose fig1_tuple in
  let tuples = Transfer.compose legs selects in
  check_int "read + write parts" 2 (List.length tuples);
  let strs = List.map Transfer.to_string tuples in
  Alcotest.(check (list string)) "partial tuples"
    [ "(R1,B1,R2,B2,5,ADD:add,-,-,-)"; "(-,-,-,-,-,ADD,6,B1,R1)" ]
    strs

let test_merge_restores_full_tuple () =
  let legs, selects = Transfer.decompose fig1_tuple in
  let tuples = Transfer.compose legs selects in
  let merged = Transfer.merge ~latency_of:(fun _ -> 1) tuples in
  check_int "one full tuple" 1 (List.length merged);
  Alcotest.(check string) "paper notation"
    "(R1,B1,R2,B2,5,ADD:add,6,B1,R1)"
    (Transfer.to_string (List.hd merged))

let test_partial_tuples_via_builder () =
  (* read-only and write-only tuples are legal models: the read part
     feeds the unit (result discarded), the write part forwards
     whatever the idle unit emits (DISC -> no latch) *)
  let b = Builder.create ~name:"partial" ~cs_max:6 () in
  Builder.reg b ~init:(Word.nat 5) "A";
  Builder.reg b ~init:(Word.nat 9) "KEEP";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  Builder.read_only b ~fu:"ADD"
    ~a:(Transfer.From_reg "A", "BA")
    ~b:(Transfer.From_reg "A", "BB")
    ~read:1 ();
  Builder.write_only b ~fu:"ADD" ~write:(4, "BA")
    ~dst:(Transfer.To_reg "KEEP");
  let m = Builder.finish b in
  let obs = Interp.run m in
  (* at step 4 the unit has long flushed (computed at step 1, output
     at step 2): the write-only tuple forwards DISC, KEEP holds *)
  Alcotest.(check (option word)) "KEEP unchanged" (Some (Word.nat 9))
    (Observation.final_reg obs "KEEP");
  check_bool "no conflicts" false (Observation.has_conflict obs);
  (* and kernel agrees *)
  Alcotest.(check (list string)) "kernel parity" []
    (Observation.diff (Simulate.run m).Simulate.obs obs)

let test_tuple_printing () =
  Alcotest.(check string) "full" "(R1,B1,R2,B2,5,ADD:add,6,B1,R1)"
    (Transfer.to_string fig1_tuple);
  let partial = Transfer.make ~fu:"ADD" () in
  Alcotest.(check string) "empty" "(-,-,-,-,-,ADD,-,-,-)"
    (Transfer.to_string partial)

let prop_decompose_compose_roundtrip =
  (* Random full tuples decompose and recompose into the same tuple. *)
  let gen =
    QCheck.Gen.(
      let name prefix = map (fun i -> Printf.sprintf "%s%d" prefix i) (int_range 1 4) in
      let* ra = name "R" in
      let* rb = name "Q" in
      let* ba = name "A" in
      let* bb = name "B" in
      let* wb = name "W" in
      let* rd = name "D" in
      let* f = name "F" in
      let* step = int_range 1 20 in
      let* lat = int_range 1 3 in
      return
        (Transfer.full ~src_a:(Transfer.From_reg ra) ~bus_a:ba
           ~src_b:(Transfer.From_reg rb) ~bus_b:bb ~read_step:step ~fu:f
           ~op:Ops.Add ~write_step:(step + lat) ~write_bus:wb
           ~dst:(Transfer.To_reg rd) (), lat))
  in
  QCheck.Test.make ~name:"decompose . compose . merge = id (full tuples)"
    ~count:300
    (QCheck.make gen)
    (fun (t, lat) ->
      let legs, selects = Transfer.decompose t in
      let back =
        Transfer.merge ~latency_of:(fun _ -> lat)
          (Transfer.compose legs selects)
      in
      back = [ t ])

(* -- Fig. 1 end-to-end ----------------------------------------------------- *)

let test_fig1_kernel () =
  let m = Builder.fig1 () in
  let r = Simulate.run m in
  Alcotest.(check (option word)) "R1 = 3 + 4 after step 6" (Some (Word.nat 7))
    (Observation.final_reg r.obs "R1");
  Alcotest.(check (option word)) "R2 unchanged" (Some (Word.nat 4))
    (Observation.final_reg r.obs "R2");
  check_bool "no conflicts" false (Observation.has_conflict r.obs)

let test_fig1_delta_law () =
  (* Paper §2.2: the complete simulation takes CS_MAX * 6 delta cycles
     (plus the trailing register-update cycle when the final step
     latches; fig1 writes back at step 6 < cs_max = 7). *)
  let m = Builder.fig1 () in
  let r = Simulate.run m in
  check_int "expected_cycles" (Simulate.expected_cycles m) r.cycles;
  check_int "6 * cs_max" (6 * m.cs_max) r.cycles

let test_fig1_interp_matches_kernel () =
  let m = Builder.fig1 ~x:10 ~y:32 () in
  let k = (Simulate.run m).obs in
  let i = Interp.run m in
  Alcotest.(check (list string)) "consistent" [] (Observation.diff k i)

let test_fig1_register_timeline () =
  let m = Builder.fig1 () in
  let i = Interp.run m in
  match Observation.reg_trace i "R1" with
  | None -> Alcotest.fail "missing R1"
  | Some arr ->
    (* R1 holds 3 through step 5 and 7 from step 6 on. *)
    Alcotest.check word "step 5" (Word.nat 3) arr.(4);
    Alcotest.check word "step 6" (Word.nat 7) arr.(5);
    Alcotest.check word "step 7" (Word.nat 7) arr.(6)

(* -- inputs, outputs, multi-step pipelines ------------------------------- *)

let chain_model () =
  (* X -> ADD1(+R0) -> R1 ; R1 -> ADD1(+R1) -> R2 using schedules *)
  let b = Builder.create ~name:"io" ~cs_max:8 () in
  Builder.input b ~value:(Word.nat 5) "X";
  Builder.reg b ~init:(Word.nat 2) "R1";
  Builder.reg b "R2";
  Builder.output b "Y";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  (* step 1: R2 := X + R1 = 7 *)
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_input "X", "BA")
    ~b:(Transfer.From_reg "R1", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(Transfer.To_reg "R2");
  (* step 3: Y := R2 + R2 — illegal? no: use two buses *)
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_reg "R2", "BA")
    ~b:(Transfer.From_reg "R1", "BB")
    ~read:3 ~write:(4, "BB") ~dst:(Transfer.To_output "Y");
  Builder.finish b

let test_inputs_outputs () =
  let m = chain_model () in
  let r = Simulate.run m in
  Alcotest.(check (option word)) "R2" (Some (Word.nat 7))
    (Observation.final_reg r.obs "R2");
  Alcotest.(check (list (pair int word))) "Y written once at step 4"
    [ (4, Word.nat 9) ]
    (Observation.output_writes r.obs "Y");
  let i = Interp.run m in
  Alcotest.(check (list string)) "interp agrees" [] (Observation.diff r.obs i)

let test_pipelined_two_stage () =
  (* A latency-2 pipelined unit accepts operands in consecutive steps. *)
  let b = Builder.create ~name:"pipe" ~cs_max:8 () in
  Builder.reg b ~init:(Word.nat 3) "A";
  Builder.reg b ~init:(Word.nat 4) "B";
  Builder.reg b "P1";
  Builder.reg b "P2";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~latency:2 ~ops:[ Ops.Mul ] "MULT";
  Builder.binary b ~fu:"MULT"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "B", "BB")
    ~read:1 ~write:(3, "BA") ~dst:(Transfer.To_reg "P1");
  Builder.binary b ~fu:"MULT"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "A", "BB")
    ~read:2 ~write:(4, "BB") ~dst:(Transfer.To_reg "P2");
  let m = Builder.finish b in
  let r = Simulate.run m in
  Alcotest.(check (option word)) "P1 = 12" (Some (Word.nat 12))
    (Observation.final_reg r.obs "P1");
  Alcotest.(check (option word)) "P2 = 9" (Some (Word.nat 9))
    (Observation.final_reg r.obs "P2");
  check_bool "no conflict" false (Observation.has_conflict r.obs);
  let i = Interp.run m in
  Alcotest.(check (list string)) "interp agrees" [] (Observation.diff r.obs i)

let test_nonpipelined_overlap_illegal () =
  let b = Builder.create ~name:"busy" ~cs_max:8 () in
  Builder.reg b ~init:(Word.nat 3) "A";
  Builder.reg b "P1";
  Builder.reg b "P2";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~latency:2 ~pipelined:false ~ops:[ Ops.Mul ] "MULT";
  Builder.binary b ~fu:"MULT"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "A", "BB")
    ~read:1 ~write:(3, "BA") ~dst:(Transfer.To_reg "P1");
  Builder.binary b ~fu:"MULT"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "A", "BB")
    ~read:2 ~write:(4, "BB") ~dst:(Transfer.To_reg "P2");
  let m = Builder.finish b in
  let conflicts = Conflict.check m in
  check_bool "static busy-unit conflict" true
    (List.exists
       (function Conflict.Busy_unit _ -> true | _ -> false)
       conflicts);
  let r = Simulate.run m in
  Alcotest.(check (option word)) "P2 poisoned" (Some Word.illegal)
    (Observation.final_reg r.obs "P2");
  let i = Interp.run m in
  Alcotest.(check (list string)) "interp agrees" [] (Observation.diff r.obs i)

(* -- conflicts ------------------------------------------------------------ *)

let conflicting_model () =
  let b = Builder.create ~name:"clash" ~cs_max:6 () in
  Builder.reg b ~init:(Word.nat 1) "R1";
  Builder.reg b ~init:(Word.nat 2) "R2";
  Builder.reg b "R3";
  Builder.buses b [ "B1"; "B2" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  (* Both sources drive B1 at step 2 phase ra: resource conflict. *)
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_reg "R1", "B1")
    ~b:(Transfer.From_reg "R2", "B2")
    ~read:2 ~write:(3, "B1") ~dst:(Transfer.To_reg "R3");
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_reg "R2", "B1")
    ~b:(Transfer.From_reg "R1", "B2")
    ~read:2 ~write:(3, "B2") ~dst:(Transfer.To_reg "R3");
  Builder.finish_unchecked b

let test_conflict_static_detection () =
  let m = conflicting_model () in
  let cs = Conflict.check m in
  check_bool "found" true (cs <> []);
  check_bool "double drive of B1 at step 2 ra" true
    (List.exists
       (function
         | Conflict.Double_drive { step = 2; phase = Phase.Ra; sink = "B1"; _ } ->
           true
         | _ -> false)
       cs)

let test_conflict_dynamic_localization () =
  (* Paper: a conflict results in ILLEGAL "in specific simulation
     cycles associated with a specific phase of a specific control
     step". *)
  let m = conflicting_model () in
  let r = Simulate.run m in
  check_bool "conflicts observed" true (Observation.has_conflict r.obs);
  check_bool "B1 ILLEGAL visible at step 2 phase rb" true
    (List.mem (2, Phase.Rb, "B1") r.obs.Observation.conflicts);
  let i = Interp.run m in
  Alcotest.(check (list string)) "interp agrees" [] (Observation.diff r.obs i)

let test_validation_errors () =
  let b = Builder.create ~name:"bad" ~cs_max:4 () in
  Builder.reg b "R1";
  Builder.buses b [ "B1" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_reg "NOPE", "B1")
    ~b:(Transfer.From_reg "R1", "B9")
    ~read:9 ~write:(10, "B1") ~dst:(Transfer.To_reg "R1");
  let m = Builder.finish_unchecked b in
  let errs = Model.validate m in
  check_bool "unknown register" true
    (List.exists (fun (e : Model.error) -> e.message = "unknown register NOPE") errs);
  check_bool "unknown bus" true
    (List.exists (fun (e : Model.error) -> e.message = "unknown bus B9") errs);
  check_bool "step range" true
    (List.exists
       (fun (e : Model.error) ->
         e.message = "read step 9 outside [1, 4]")
       errs)

let test_latency_contract_validated () =
  let b = Builder.create ~name:"lat" ~cs_max:6 () in
  Builder.reg b ~init:(Word.nat 1) "R1";
  Builder.buses b [ "B1"; "B2" ];
  Builder.unit_ b ~latency:2 ~ops:[ Ops.Add ] "ADD2";
  Builder.binary b ~fu:"ADD2"
    ~a:(Transfer.From_reg "R1", "B1")
    ~b:(Transfer.From_reg "R1", "B2")
    ~read:1 ~write:(2, "B1") ~dst:(Transfer.To_reg "R1");
  let m = Builder.finish_unchecked b in
  check_bool "latency mismatch reported" true
    (List.exists
       (fun (e : Model.error) ->
         e.message
         = "unit ADD2 has latency 2 but write step is 2 after read step 1")
       (Model.validate m))

(* -- op selection ---------------------------------------------------------- *)

let test_multi_op_unit () =
  let b = Builder.create ~name:"alu" ~cs_max:8 () in
  Builder.reg b ~init:(Word.nat 10) "A";
  Builder.reg b ~init:(Word.nat 3) "B";
  Builder.reg b "S";
  Builder.reg b "D";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add; Ops.Sub ] "ALU";
  Builder.binary b ~op:Ops.Add ~fu:"ALU"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "B", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(Transfer.To_reg "S");
  Builder.binary b ~op:Ops.Sub ~fu:"ALU"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "B", "BB")
    ~read:3 ~write:(4, "BA") ~dst:(Transfer.To_reg "D");
  let m = Builder.finish b in
  let r = Simulate.run m in
  Alcotest.(check (option word)) "sum" (Some (Word.nat 13))
    (Observation.final_reg r.obs "S");
  Alcotest.(check (option word)) "difference" (Some (Word.nat 7))
    (Observation.final_reg r.obs "D");
  let i = Interp.run m in
  Alcotest.(check (list string)) "interp agrees" [] (Observation.diff r.obs i)

let test_op_clash_detected () =
  let b = Builder.create ~name:"opclash" ~cs_max:6 () in
  Builder.reg b ~init:(Word.nat 10) "A";
  Builder.reg b ~init:(Word.nat 3) "B";
  Builder.reg b "S";
  Builder.buses b [ "BA"; "BB"; "BC"; "BD" ];
  Builder.unit_ b ~ops:[ Ops.Add; Ops.Sub ] "ALU";
  Builder.binary b ~op:Ops.Add ~fu:"ALU"
    ~a:(Transfer.From_reg "A", "BA") ~b:(Transfer.From_reg "B", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(Transfer.To_reg "S");
  Builder.read_only b ~op:Ops.Sub ~fu:"ALU"
    ~a:(Transfer.From_reg "A", "BC") ~b:(Transfer.From_reg "B", "BD")
    ~read:1 ();
  let m = Builder.finish_unchecked b in
  check_bool "static op clash" true
    (List.exists
       (function Conflict.Op_clash { fu = "ALU"; step = 1; _ } -> true | _ -> false)
       (Conflict.check m));
  let r = Simulate.run m in
  (* the unit inputs get double-driven too; the op port conflicts *)
  check_bool "dynamic illegal somewhere" true
    (Observation.has_conflict r.obs);
  let i = Interp.run m in
  Alcotest.(check (list string)) "interp agrees" [] (Observation.diff r.obs i)

(* -- random model consistency (C6 seed; full version in verify tests) ----- *)

let random_linear_model seed =
  (* A deterministic pseudo-random chain of adds/subs through two
     buses; always conflict-free by construction. *)
  let rnd = Random.State.make [| seed |] in
  let steps = 2 + Random.State.int rnd 6 in
  let cs_max = (steps * 2) + 2 in
  let b = Builder.create ~name:(Printf.sprintf "rand%d" seed) ~cs_max () in
  Builder.reg b ~init:(Word.nat (Random.State.int rnd 50)) "R0";
  Builder.reg b ~init:(Word.nat (Random.State.int rnd 50)) "R1";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add; Ops.Sub; Ops.Max ] "ALU";
  for i = 0 to steps - 1 do
    let op =
      match Random.State.int rnd 3 with
      | 0 -> Ops.Add
      | 1 -> Ops.Sub
      | _ -> Ops.Max
    in
    let read = (i * 2) + 1 in
    let dst = if i mod 2 = 0 then "R1" else "R0" in
    Builder.binary b ~op ~fu:"ALU"
      ~a:(Transfer.From_reg "R0", "BA")
      ~b:(Transfer.From_reg "R1", "BB")
      ~read ~write:(read + 1, "BA")
      ~dst:(Transfer.To_reg dst)
  done;
  Builder.finish b

let prop_kernel_interp_consistent =
  QCheck.Test.make ~name:"kernel and interpreter agree on random chains"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = random_linear_model seed in
      let k = (Simulate.run m).obs in
      let i = Interp.run m in
      Observation.equal k i)

let prop_delta_law =
  QCheck.Test.make ~name:"cycles = 6*cs_max (+1 on final write-back)"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = random_linear_model seed in
      (Simulate.run m).cycles = Simulate.expected_cycles m)

(* -- rtm format ------------------------------------------------------------ *)

let test_rtm_roundtrip () =
  let m = Builder.fig1 () in
  let text = Rtm.to_string m in
  let m' = Rtm.of_string text in
  check_bool "model equal" true (m = m');
  let r = Simulate.run m' in
  Alcotest.(check (option word)) "still computes" (Some (Word.nat 7))
    (Observation.final_reg r.obs "R1")

let test_rtm_parse_features () =
  let text =
    {|model demo
csmax 9
reg R1 init 3
reg ACC
bus BA BB
unit MUL ops mul latency 2
unit ALU ops add,sub latency 1 nonpipelined transparent-illegal
input X const 5
input Y schedule 1:4 3:9
output OUT
# a read-only tuple and one from an input to an output
transfer R1 BA X! BB 1 MUL 3 BA ACC
transfer ACC BA R1 BB 4 ALU:add - - -
|}
  in
  let m = Rtm.of_string text in
  Alcotest.(check string) "name" "demo" m.Model.name;
  check_int "csmax" 9 m.Model.cs_max;
  check_int "buses" 2 (List.length m.Model.buses);
  check_int "units" 2 (List.length m.Model.fus);
  (match Model.find_fu m "ALU" with
   | Some f ->
     check_bool "nonpipelined" false f.Model.pipelined;
     check_bool "transparent" false f.Model.sticky_illegal;
     check_int "two ops" 2 (List.length f.Model.ops)
   | None -> Alcotest.fail "ALU missing");
  (match m.Model.inputs with
   | [ x; y ] ->
     Alcotest.check word "const" (Word.nat 5) (Model.input_value x 7);
     Alcotest.check word "sched before" Word.disc (Model.input_value y 0);
     Alcotest.check word "sched 1" (Word.nat 4) (Model.input_value y 2);
     Alcotest.check word "sched 3" (Word.nat 9) (Model.input_value y 5)
   | _ -> Alcotest.fail "inputs missing");
  check_int "transfers" 2 (List.length m.Model.transfers);
  (match m.Model.transfers with
   | [ t1; t2 ] ->
     check_bool "input source parsed" true
       (t1.Transfer.src_b = Some (Transfer.From_input "X"));
     check_bool "read-only tuple" true
       (t2.Transfer.write_step = None && t2.Transfer.dst = None)
   | _ -> ());
  Alcotest.(check (list string)) "validates" []
    (List.map (fun (e : Model.error) -> e.message) (Model.validate m))

let test_rtm_errors () =
  let expect_error text frag =
    match Rtm.of_string text with
    | exception Rtm.Parse_error (_, msg) ->
      check_bool
        (Printf.sprintf "error %S mentions %S" msg frag)
        true
        (let nh = String.length msg and nn = String.length frag in
         let rec go i = i + nn <= nh && (String.sub msg i nn = frag || go (i + 1)) in
         nn = 0 || go 0)
    | _ -> Alcotest.fail ("no error for: " ^ text)
  in
  expect_error "csmax 5\nfrobnicate Z\n" "unknown directive";
  expect_error "csmax 5\ntransfer a b\n" "9 tuple fields";
  expect_error "csmax 5\nunit U latency 1\n" "ops list";
  expect_error "reg R1\n" "missing csmax";
  expect_error "csmax 5\nreg R1 init -9\n" "expected a value"

(* -- execution-path ablations are observably identical ------------------- *)

let prop_wait_and_resolution_impls_agree =
  QCheck.Test.make
    ~name:"keyed/predicate waits and incremental/fold resolution agree"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = random_linear_model seed in
      let base = (Simulate.run m).Simulate.obs in
      List.for_all
        (fun (wait_impl, resolution_impl) ->
          Observation.equal base
            (Simulate.run ~wait_impl ~resolution_impl m).Simulate.obs)
        [ (`Keyed, `Fold); (`Predicate, `Incremental); (`Predicate, `Fold) ])

let prop_incremental_resolution_equals_fold =
  (* random driver-value transition sequences: the counter-based state
     always reads back what folding the current values would give *)
  QCheck.Test.make ~name:"incremental resolution = fold resolution"
    ~count:300
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30)
              (pair (int_range 0 4) arbitrary_word))
    (fun transitions ->
      let st = Resolve.incremental () in
      let drivers = Array.make 5 Word.disc in
      Array.iter (fun v -> st.Csrtl_kernel.Types.incr_add v) drivers;
      List.for_all
        (fun (slot, v) ->
          st.Csrtl_kernel.Types.incr_remove drivers.(slot);
          st.Csrtl_kernel.Types.incr_add v;
          drivers.(slot) <- v;
          Word.equal (st.Csrtl_kernel.Types.incr_read ()) (Resolve.resolve drivers))
        transitions)

(* -- waveform + dot rendering ------------------------------------------------ *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_waveform_render () =
  let m = Builder.fig1 () in
  let obs = Interp.run m in
  let text = Waveform.render_full obs in
  check_bool "header row" true (contains text "step");
  check_bool "R1 row" true (contains text "R1");
  check_bool "initial 3" true (contains text "3");
  check_bool "result 7" true (contains text "7");
  (* repeated values elided *)
  check_bool "dittos" true (contains text ".");
  (* conflicts annotated *)
  let c = Interp.run (
    let b = Builder.create ~name:"w" ~cs_max:4 () in
    Builder.reg b ~init:(Word.nat 1) "A";
    Builder.reg b ~init:(Word.nat 2) "B";
    Builder.reg b "Z";
    Builder.buses b [ "BA"; "BB" ];
    Builder.unit_ b ~ops:[ Ops.Add ] "ADD1";
    Builder.unit_ b ~ops:[ Ops.Sub ] "SUB1";
    Builder.binary b ~fu:"ADD1" ~a:(Transfer.From_reg "A", "BA")
      ~b:(Transfer.From_reg "B", "BB") ~read:1 ~write:(2, "BA")
      ~dst:(Transfer.To_reg "Z");
    Builder.binary b ~fu:"SUB1" ~a:(Transfer.From_reg "B", "BA")
      ~b:(Transfer.From_reg "A", "BB") ~read:1 ~write:(2, "BB")
      ~dst:(Transfer.To_reg "Z");
    Builder.finish_unchecked b)
  in
  check_bool "illegal annotated" true
    (contains (Waveform.render_full c) "!! ILLEGAL")

let test_waveform_windowing () =
  (* long quiet run: windowed output stays within max_steps columns *)
  let b = Builder.create ~name:"long" ~cs_max:200 () in
  Builder.reg b ~init:(Word.nat 1) "A";
  Builder.reg b "Z";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  Builder.binary b ~fu:"ADD" ~a:(Transfer.From_reg "A", "BA")
    ~b:(Transfer.From_reg "A", "BB") ~read:150 ~write:(151, "BA")
    ~dst:(Transfer.To_reg "Z");
  let obs = Interp.run (Builder.finish b) in
  let text = Waveform.render ~max_steps:8 obs in
  let first_line = List.hd (String.split_on_char '\n' text) in
  check_bool "few columns" true (String.length first_line < 80);
  check_bool "activity step shown" true (contains first_line "151")

let test_coverage_report () =
  let m = Builder.fig1 () in
  let r = Coverage.analyze m in
  check_int "steps" 7 r.Coverage.total_steps;
  check_bool "no dead transfers" true (r.Coverage.dead_transfers = []);
  (* B1 carries a value in steps 5 (read) and 6 (write): 2/7 *)
  (match List.assoc_opt "B1" r.Coverage.bus_utilization with
   | Some u -> check_bool "B1 ~2/7" true (abs_float (u -. (2.0 /. 7.0)) < 1e-9)
   | None -> Alcotest.fail "B1 missing");
  (* R2 has a real init (a constant operand): not reported *)
  check_bool "constant register not flagged" false
    (List.mem "R2" r.Coverage.never_written)

let test_coverage_dead_transfer () =
  (* reading a register nothing ever wrote: the transfer is dead *)
  let b = Builder.create ~name:"dead" ~cs_max:5 () in
  Builder.reg b "EMPTY";
  Builder.reg b "DST";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_reg "EMPTY", "BA")
    ~b:(Transfer.From_reg "EMPTY", "BB")
    ~read:2 ~write:(3, "BA") ~dst:(Transfer.To_reg "DST");
  let m = Builder.finish b in
  let r = Coverage.analyze m in
  check_int "one dead transfer" 1 (List.length r.Coverage.dead_transfers);
  check_bool "DST stays unwritten" true
    (List.mem "DST" r.Coverage.never_written)

let test_phase_view () =
  let m = Builder.fig1 () in
  let text = Waveform.phase_view ~from_step:5 ~to_step:6 m in
  List.iter
    (fun frag -> check_bool frag true (contains text frag))
    [ "step 5"; "rb  B1"; "cm  ADD.in1"; "step 6"; "cr  R1.in" ];
  check_bool "window respected" false (contains text "step 4");
  (* conflicts flagged inline *)
  let c = conflicting_model () in
  check_bool "conflict marker" true
    (contains (Waveform.phase_view c) "<-- conflict")

let test_dot_output () =
  let m = Builder.fig1 () in
  let dot = Dot.to_dot m in
  List.iter
    (fun frag -> check_bool frag true (contains dot frag))
    [ "digraph"; "\"R1\""; "\"ADD\""; "\"B1\""; "5/ra"; "6/wb" ];
  let s = Dot.structure_only m in
  check_bool "structure has no step labels" false (contains s "5/ra");
  check_bool "structure has edges" true (contains s "\"R1\" -> \"B1\"")

(* -- schedule compaction ------------------------------------------------------ *)

let test_compact_fig1 () =
  let m = Builder.fig1 () in
  let before, after = Reschedule.compaction m in
  check_int "before" 7 before;
  check_int "after" 2 after;
  let m' = Reschedule.compact m in
  Alcotest.(check (option word)) "same result" (Some (Word.nat 7))
    (Observation.final_reg (Interp.run m') "R1");
  check_bool "conflict-free" true (Conflict.check m' = [])

let test_compact_preserves_dependent_chain () =
  (* a dependency chain cannot compact below its length *)
  let m = chain_model () in
  let m' = Reschedule.compact m in
  let o = Interp.run m and o' = Interp.run m' in
  Alcotest.(check (option word)) "R2 preserved"
    (Observation.final_reg o "R2")
    (Observation.final_reg o' "R2");
  (* outputs keep their values (steps may shift) *)
  Alcotest.(check (list word)) "output values preserved"
    (List.map snd (Observation.output_writes o "Y"))
    (List.map snd (Observation.output_writes o' "Y"))

let test_compact_pins_scheduled_inputs () =
  let b = Builder.create ~name:"pin" ~cs_max:12 () in
  Builder.input b ~schedule:[ (1, Word.nat 5); (8, Word.nat 9) ] "X";
  Builder.reg b ~init:(Word.nat 1) "R1";
  Builder.reg b "R2";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Add ] "ADD";
  (* reads the scheduled input at step 9: must not move *)
  Builder.binary b ~fu:"ADD"
    ~a:(Transfer.From_input "X", "BA")
    ~b:(Transfer.From_reg "R1", "BB")
    ~read:9 ~write:(10, "BA") ~dst:(Transfer.To_reg "R2");
  let m = Builder.finish b in
  let m' = Reschedule.compact m in
  (match m'.Model.transfers with
   | [ t ] ->
     Alcotest.(check (option int)) "pinned" (Some 9) t.Transfer.read_step
   | _ -> Alcotest.fail "one transfer");
  Alcotest.(check (option word)) "reads the step-9 value (9+1)"
    (Some (Word.nat 10))
    (Observation.final_reg (Interp.run m') "R2")

let test_compact_mac_order_preserved () =
  (* accumulator units: values fold over reads in order; compaction
     keeps the order and the results *)
  let build () =
    let b = Builder.create ~name:"mac" ~cs_max:8 () in
    Builder.reg b ~init:(Word.nat 7) "C0";
    Builder.reg b ~init:(Word.nat 12) "C1";
    Builder.reg b "ACC";
    Builder.input b ~value:(Word.nat 3) "X0";
    Builder.input b ~value:(Word.nat 5) "X1";
    Builder.buses b [ "BA"; "BB" ];
    Builder.unit_ b ~ops:[ Ops.Mac ] "MACC";
    Builder.binary b ~fu:"MACC"
      ~a:(Transfer.From_input "X0", "BA")
      ~b:(Transfer.From_reg "C0", "BB")
      ~read:1 ~write:(2, "BA") ~dst:(Transfer.To_reg "ACC");
    Builder.binary b ~fu:"MACC"
      ~a:(Transfer.From_input "X1", "BA")
      ~b:(Transfer.From_reg "C1", "BB")
      ~read:3 ~write:(4, "BA") ~dst:(Transfer.To_reg "ACC");
    Builder.finish b
  in
  let m = build () in
  let m' = Reschedule.compact m in
  check_bool "compacted" true (m'.Model.cs_max < m.Model.cs_max);
  Alcotest.(check (option word)) "21 + 60" (Some (Word.nat 81))
    (Observation.final_reg (Interp.run m') "ACC");
  (* reads stay in order on the unit *)
  (match m'.Model.transfers with
   | [ t1; t2 ] ->
     check_bool "order kept" true
       (Option.get t1.Transfer.read_step < Option.get t2.Transfer.read_step)
   | _ -> Alcotest.fail "two transfers")

let test_compact_pins_resettable_stateful_unit () =
  (* a stateful unit with other operations resets on idle steps: its
     tuples must not move at all *)
  let b = Builder.create ~name:"macmix" ~cs_max:9 () in
  Builder.reg b ~init:(Word.nat 2) "K";
  Builder.reg b "ACC";
  Builder.input b ~value:(Word.nat 3) "X";
  Builder.buses b [ "BA"; "BB" ];
  Builder.unit_ b ~ops:[ Ops.Mac; Ops.Add ] "MACC";
  Builder.binary b ~fu:"MACC"
    ~a:(Transfer.From_input "X", "BA")
    ~b:(Transfer.From_reg "K", "BB")
    ~read:5 ~write:(6, "BA") ~dst:(Transfer.To_reg "ACC");
  let m = Builder.finish b in
  let m' = Reschedule.compact m in
  (match m'.Model.transfers with
   | [ t ] ->
     Alcotest.(check (option int)) "pinned" (Some 5) t.Transfer.read_step
   | _ -> Alcotest.fail "one transfer");
  Alcotest.(check (option word)) "same value"
    (Observation.final_reg (Interp.run m) "ACC")
    (Observation.final_reg (Interp.run m') "ACC")

let test_compact_idempotent () =
  let m = Reschedule.compact (Builder.fig1 ()) in
  let m2 = Reschedule.compact m in
  check_int "fixpoint" m.Model.cs_max m2.Model.cs_max

let prop_compact_preserves_final_registers =
  QCheck.Test.make ~name:"compaction preserves final register values"
    ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = random_linear_model seed in
      let m' = Reschedule.compact m in
      let o = Interp.run m and o' = Interp.run m' in
      m'.Model.cs_max <= m.Model.cs_max
      && List.for_all
           (fun (r : Model.register) ->
             Observation.final_reg o r.Model.reg_name
             = Observation.final_reg o' r.Model.reg_name)
           m.Model.registers
      && Conflict.check m' = [])

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "core"
    [ ( "word",
        [ Alcotest.test_case "sentinels" `Quick test_word_sentinels;
          Alcotest.test_case "signed view" `Quick test_word_signed ] );
      ( "phase",
        [ Alcotest.test_case "order and cycle" `Quick test_phase_order ] );
      ( "resolution",
        [ Alcotest.test_case "paper cases" `Quick
            test_resolution_paper_cases ] );
      qsuite "resolution-props"
        [ prop_resolution_commutative; prop_resolution_associative;
          prop_resolution_unit; prop_resolution_nat_only_when_unique ];
      ( "ops",
        [ Alcotest.test_case "eval" `Quick test_ops_eval;
          Alcotest.test_case "sentinel lifting" `Quick
            test_ops_apply_lifting;
          Alcotest.test_case "string roundtrip" `Quick
            test_ops_string_roundtrip ] );
      ( "tuples",
        [ Alcotest.test_case "decompose fig1" `Quick test_decompose_fig1;
          Alcotest.test_case "compose partial tuples" `Quick
            test_compose_recovers_partial_tuples;
          Alcotest.test_case "merge restores full tuple" `Quick
            test_merge_restores_full_tuple;
          Alcotest.test_case "printing" `Quick test_tuple_printing;
          Alcotest.test_case "partial tuples execute" `Quick
            test_partial_tuples_via_builder ] );
      qsuite "tuple-props" [ prop_decompose_compose_roundtrip ];
      ( "fig1",
        [ Alcotest.test_case "kernel result" `Quick test_fig1_kernel;
          Alcotest.test_case "delta-cycle law" `Quick test_fig1_delta_law;
          Alcotest.test_case "interpreter consistency" `Quick
            test_fig1_interp_matches_kernel;
          Alcotest.test_case "register timeline" `Quick
            test_fig1_register_timeline ] );
      ( "models",
        [ Alcotest.test_case "inputs and outputs" `Quick test_inputs_outputs;
          Alcotest.test_case "two-stage pipeline" `Quick
            test_pipelined_two_stage;
          Alcotest.test_case "non-pipelined overlap poisons" `Quick
            test_nonpipelined_overlap_illegal;
          Alcotest.test_case "multi-op unit" `Quick test_multi_op_unit ] );
      ( "conflicts",
        [ Alcotest.test_case "static double drive" `Quick
            test_conflict_static_detection;
          Alcotest.test_case "dynamic localization" `Quick
            test_conflict_dynamic_localization;
          Alcotest.test_case "op clash" `Quick test_op_clash_detected;
          Alcotest.test_case "validation errors" `Quick
            test_validation_errors;
          Alcotest.test_case "latency contract" `Quick
            test_latency_contract_validated ] );
      ( "reschedule",
        [ Alcotest.test_case "fig1 compacts to 2 steps" `Quick
            test_compact_fig1;
          Alcotest.test_case "dependent chain preserved" `Quick
            test_compact_preserves_dependent_chain;
          Alcotest.test_case "scheduled inputs pinned" `Quick
            test_compact_pins_scheduled_inputs;
          Alcotest.test_case "accumulator order preserved" `Quick
            test_compact_mac_order_preserved;
          Alcotest.test_case "resettable stateful unit pinned" `Quick
            test_compact_pins_resettable_stateful_unit;
          Alcotest.test_case "idempotent" `Quick test_compact_idempotent ] );
      qsuite "reschedule-props"
        [ prop_compact_preserves_final_registers;
          QCheck.Test.make ~name:"compaction is idempotent" ~count:25
            QCheck.(int_range 0 10_000)
            (fun seed ->
              let m = Reschedule.compact (random_linear_model seed) in
              Reschedule.compact m = m) ];
      ( "render",
        [ Alcotest.test_case "coverage report" `Quick test_coverage_report;
          Alcotest.test_case "dead transfer detection" `Quick
            test_coverage_dead_transfer;
          Alcotest.test_case "waveform" `Quick test_waveform_render;
          Alcotest.test_case "waveform windowing" `Quick
            test_waveform_windowing;
          Alcotest.test_case "phase view" `Quick test_phase_view;
          Alcotest.test_case "dot" `Quick test_dot_output ] );
      ( "rtm",
        [ Alcotest.test_case "roundtrip" `Quick test_rtm_roundtrip;
          Alcotest.test_case "feature parsing" `Quick
            test_rtm_parse_features;
          Alcotest.test_case "errors" `Quick test_rtm_errors ] );
      qsuite "rtm-props"
        [ QCheck.Test.make ~name:"rtm print/parse identity on random models"
            ~count:30
            QCheck.(int_range 0 10_000)
            (fun seed ->
              let m = random_linear_model seed in
              Rtm.of_string (Rtm.to_string m) = m) ];
      qsuite "consistency-props"
        [ prop_kernel_interp_consistent; prop_delta_law;
          prop_wait_and_resolution_impls_agree;
          prop_incremental_resolution_equals_fold ] ]
