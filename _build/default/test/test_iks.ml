(* Tests of the IKS application (paper §3): fixed point, CORDIC,
   the golden inverse-kinematics model, the Fig. 3 datapath, the
   microcode translator (the paper's table-entry example), and the
   end-to-end bit-exact agreement of the generated microprogram on
   the clock-free datapath with the algorithmic golden model. *)

open Csrtl_iks
module C = Csrtl_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let close ?(tol = 2e-3) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.5f, got %.5f" msg expected actual

(* -- fixed point -------------------------------------------------------------- *)

let test_fixed_roundtrip () =
  List.iter
    (fun f -> close ~tol:1e-4 "roundtrip" f (Fixed.to_float (Fixed.of_float f)))
    [ 0.0; 1.0; -1.0; 3.14159; -2.71828; 100.125; -0.0001 ];
  check_int "one" 65536 Fixed.one;
  check_int "of_int" (3 * 65536) (Fixed.of_int 3)

let test_fixed_arith () =
  let a = Fixed.of_float 2.5 and b = Fixed.of_float (-1.25) in
  close "add" 1.25 (Fixed.to_float (Fixed.add a b));
  close "sub" 3.75 (Fixed.to_float (Fixed.sub a b));
  close "mul" (-3.125) (Fixed.to_float (Fixed.mul a b));
  close "div" (-2.0) (Fixed.to_float (Fixed.div a b));
  close "neg" 1.25 (Fixed.to_float (Fixed.neg b));
  check_bool "lt signed" true (Fixed.lt b a);
  check_bool "is_neg" true (Fixed.is_neg b);
  close "asr" 1.25 (Fixed.to_float (Fixed.asr_ a 1))

let test_fixed_matches_datapath_ops () =
  (* Fixed.mul and the Mulfx op agree bit-for-bit. *)
  let cases = [ (2.5, -1.25); (0.001, 300.0); (-7.5, -7.5); (1.0, 1.0) ] in
  List.iter
    (fun (x, y) ->
      let a = Fixed.of_float x and b = Fixed.of_float y in
      check_int
        (Printf.sprintf "mulfx %.3f*%.3f" x y)
        (Fixed.mul a b)
        (C.Ops.eval (C.Ops.Mulfx Fixed.frac_bits) [| a; b |]))
    cases

(* -- cordic -------------------------------------------------------------------- *)

let test_cordic_atan2 () =
  List.iter
    (fun (y, x) ->
      let a =
        Cordic.atan2 ~y:(Fixed.of_float y) ~x:(Fixed.of_float x)
      in
      close
        (Printf.sprintf "atan2 %.2f %.2f" y x)
        (atan2 y x) (Fixed.to_float a))
    [ (1.0, 1.0); (0.5, 2.0); (-1.0, 1.5); (1.0, -1.0); (-2.0, -0.5);
      (0.0, 1.0); (3.0, 0.1) ]

let test_cordic_magnitude () =
  List.iter
    (fun (x, y) ->
      let m =
        Cordic.magnitude ~x:(Fixed.of_float x) ~y:(Fixed.of_float y)
      in
      close
        (Printf.sprintf "mag %.2f %.2f" x y)
        (sqrt ((x *. x) +. (y *. y)))
        (Fixed.to_float m))
    [ (3.0, 4.0); (1.0, 1.0); (0.5, -0.7); (10.0, 0.0) ]

let test_cordic_rotate () =
  (* rotating (1, 0) by t gives K*(cos t, sin t) *)
  let t = 0.7 in
  let x, y =
    Cordic.rotate ~x:Fixed.one ~y:Fixed.zero ~angle:(Fixed.of_float t)
  in
  let k = Fixed.to_float Cordic.gain in
  close "cos" (k *. cos t) (Fixed.to_float x);
  close "sin" (k *. sin t) (Fixed.to_float y)

let test_cordic_divide () =
  List.iter
    (fun (y, x) ->
      let q =
        Cordic.divide ~y:(Fixed.of_float y) ~x:(Fixed.of_float x)
      in
      close ~tol:5e-3 (Printf.sprintf "div %.2f/%.2f" y x) (y /. x)
        (Fixed.to_float q))
    [ (1.0, 2.0); (-3.0, 4.0); (10.0, 0.7); (100.0, 3.0); (0.01, 5.0);
      (-120.0, 1.1) ]

let test_cordic_sqrt () =
  List.iter
    (fun v ->
      close ~tol:5e-3
        (Printf.sprintf "sqrt %.3f" v)
        (sqrt v)
        (Fixed.to_float (Cordic.sqrt_ (Fixed.of_float v))))
    [ 1.0; 2.0; 0.25; 16.0; 0.01; 120.0 ];
  check_int "sqrt 0" 0 (Cordic.sqrt_ Fixed.zero)

(* -- golden -------------------------------------------------------------------- *)

let golden_cases =
  [ (2.0, 1.5, 2.5, 1.0); (1.0, 1.0, 1.2, 0.8); (3.0, 2.0, -2.5, 3.0);
    (2.0, 2.0, 1.0, -2.8); (1.5, 1.0, 0.7, 2.0) ]

let test_golden_against_float () =
  List.iter
    (fun (l1, l2, px, py) ->
      match Golden.solve_float ~l1 ~l2 ~px ~py with
      | None -> Alcotest.fail "case should be reachable"
      | Some (t1, t2) ->
        let s =
          Golden.solve ~l1:(Fixed.of_float l1) ~l2:(Fixed.of_float l2)
            ~px:(Fixed.of_float px) ~py:(Fixed.of_float py)
        in
        check_bool "reachable" true s.Golden.reachable;
        close ~tol:6e-3
          (Printf.sprintf "theta1 (%.1f,%.1f)" px py)
          t1
          (Fixed.to_float s.Golden.theta1);
        close ~tol:6e-3 "theta2" t2 (Fixed.to_float s.Golden.theta2))
    golden_cases

let test_golden_forward_roundtrip () =
  List.iter
    (fun (l1, l2, px, py) ->
      let s =
        Golden.solve ~l1:(Fixed.of_float l1) ~l2:(Fixed.of_float l2)
          ~px:(Fixed.of_float px) ~py:(Fixed.of_float py)
      in
      let x, y =
        Golden.forward ~l1 ~l2
          ~theta1:(Fixed.to_float s.Golden.theta1)
          ~theta2:(Fixed.to_float s.Golden.theta2)
      in
      close ~tol:2e-2 "fk x" px x;
      close ~tol:2e-2 "fk y" py y)
    golden_cases

let test_golden_unreachable () =
  let s =
    Golden.solve ~l1:(Fixed.of_float 1.0) ~l2:(Fixed.of_float 1.0)
      ~px:(Fixed.of_float 5.0) ~py:(Fixed.of_float 0.0)
  in
  check_bool "unreachable" false s.Golden.reachable

(* -- microcode & translation ------------------------------------------------- *)

let test_paper_addr7_tuples () =
  (* The paper's §3 worked example: the table row at store address 7
     yields the transfers (J[6],BusA,y2,1), (Y,direct,x2,1) and the
     operations Y := 0 + y2, X := 0 + Rshift(x2,i), Z := 0+0, F := 1. *)
  let tuples = Translate.tuples_of_instr Microcode.paper_addr7 in
  let strs = List.map C.Transfer.to_string tuples in
  Alcotest.(check (list string)) "derived tuples"
    [ "(J5,BusA,-,-,7,YADD:pass,8,BusB,Y)";
      "(Y,Y_to_XADD1,-,-,7,XADD:asri:1,8,XADD_to_X,X)";
      "(-,-,-,-,7,ZADD:const:0,8,ZADD_to_Z,Z)";
      "(-,-,-,-,7,FLAG:const:1,8,FLAG_to_F,F)" ]
    strs

let test_paper_addr7_executes () =
  (* run the single word on the datapath: Y gets J[6], X gets the old
     Y shifted, Z zeroed, F set *)
  let prog =
    { Microcode.pname = "addr7"; instrs = [ Microcode.paper_addr7 ] }
  in
  let obs =
    Translate.run
      ~reg_init:
        [ (Datapath.J 5, C.Word.nat 40); (Datapath.Y, C.Word.nat 12);
          (Datapath.Z, C.Word.nat 99) ]
      prog
  in
  check_int "Y := J[6]" 40 (Translate.final_loc obs Datapath.Y);
  check_int "X := old Y >> 1" 6 (Translate.final_loc obs Datapath.X);
  check_int "Z := 0" 0 (Translate.final_loc obs Datapath.Z);
  check_int "F := 1" 1 (Translate.final_loc obs Datapath.F)

let test_microcode_check_rejects () =
  let bad_bus =
    { Microcode.pname = "bad";
      instrs =
        [ { Microcode.addr = 1;
            issues =
              [ Microcode.issue
                  ~a:(Microcode.reg ~route:Microcode.Bus_a (Datapath.R 0))
                  ~b:(Microcode.reg ~route:Microcode.Bus_a (Datapath.R 1))
                  ~dst:Datapath.Z ~op:C.Ops.Add Datapath.ZADD ] } ] }
  in
  (match Microcode.check bad_bus with
   | exception Microcode.Bad_microcode (1, _) -> ()
   | () -> Alcotest.fail "bus double use not caught");
  let bad_op =
    { Microcode.pname = "bad2";
      instrs =
        [ { Microcode.addr = 1;
            issues =
              [ Microcode.issue
                  ~a:(Microcode.reg (Datapath.R 0))
                  ~b:(Microcode.reg ~route:Microcode.Bus_b (Datapath.R 1))
                  ~dst:Datapath.Z ~op:C.Ops.Mul Datapath.ZADD ] } ] }
  in
  match Microcode.check bad_op with
  | exception Microcode.Bad_microcode (1, _) -> ()
  | () -> Alcotest.fail "wrong unit op not caught"

let test_translated_model_is_clean () =
  let t =
    Ikprog.build ~l1:(Fixed.of_float 2.0) ~l2:(Fixed.of_float 1.5)
      ~px:(Fixed.of_float 2.5) ~py:(Fixed.of_float 1.0)
  in
  let m = Translate.to_model ~inputs:t.Ikprog.inputs
      ~reg_init:t.Ikprog.reg_init t.Ikprog.program
  in
  Alcotest.(check (list string)) "no static conflicts" []
    (List.map C.Conflict.to_string (C.Conflict.check m));
  let obs = C.Interp.run m in
  check_bool "no dynamic conflicts" false (C.Observation.has_conflict obs)

(* -- end to end ----------------------------------------------------------------- *)

let test_ik_on_datapath_matches_golden_bitexact () =
  List.iter
    (fun (l1, l2, px, py) ->
      let l1 = Fixed.of_float l1 and l2 = Fixed.of_float l2 in
      let px = Fixed.of_float px and py = Fixed.of_float py in
      let golden = Golden.solve ~l1 ~l2 ~px ~py in
      let dp = Ikprog.solve_on_datapath ~l1 ~l2 ~px ~py in
      check_bool "reachable agrees" golden.Golden.reachable
        dp.Golden.reachable;
      check_int "theta1 bit-exact" golden.Golden.theta1 dp.Golden.theta1;
      check_int "theta2 bit-exact" golden.Golden.theta2 dp.Golden.theta2)
    golden_cases

let test_ik_unreachable_on_datapath () =
  let f = Fixed.of_float in
  let dp =
    Ikprog.solve_on_datapath ~l1:(f 1.0) ~l2:(f 1.0) ~px:(f 5.0)
      ~py:(f 0.0)
  in
  check_bool "flag cleared" false dp.Golden.reachable;
  check_int "theta1 zeroed" 0 dp.Golden.theta1

let test_ik_accuracy_vs_float () =
  let l1 = 2.0 and l2 = 1.5 and px = 2.5 and py = 1.0 in
  let dp =
    Ikprog.solve_on_datapath ~l1:(Fixed.of_float l1)
      ~l2:(Fixed.of_float l2) ~px:(Fixed.of_float px)
      ~py:(Fixed.of_float py)
  in
  match Golden.solve_float ~l1 ~l2 ~px ~py with
  | None -> Alcotest.fail "reachable"
  | Some (t1, t2) ->
    close ~tol:6e-3 "theta1 vs float" t1 (Fixed.to_float dp.Golden.theta1);
    close ~tol:6e-3 "theta2 vs float" t2 (Fixed.to_float dp.Golden.theta2)

let test_ik_program_shape () =
  let t =
    Ikprog.build ~l1:(Fixed.of_float 2.0) ~l2:(Fixed.of_float 1.5)
      ~px:(Fixed.of_float 2.5) ~py:(Fixed.of_float 1.0)
  in
  let n = List.length t.Ikprog.program.Microcode.instrs in
  check_bool (Printf.sprintf "substantial program (%d words)" n) true
    (n > 500);
  (* the event kernel and the interpreter agree on the FULL program:
     ~5700 TRANS processes, ~14k delta cycles *)
  let m =
    Translate.to_model ~inputs:t.Ikprog.inputs ~reg_init:t.Ikprog.reg_init
      t.Ikprog.program
  in
  let kr = C.Simulate.run m in
  let iobs = C.Interp.run m in
  Alcotest.(check (list string)) "kernel/interp agree on full IK" []
    (C.Observation.diff kr.C.Simulate.obs iobs);
  check_int "delta-cycle law at scale" (C.Simulate.expected_cycles m)
    kr.C.Simulate.cycles

(* -- forward kinematics and workspace check -------------------------------- *)

let test_fk_on_datapath_bitexact () =
  let f = Fixed.of_float in
  List.iter
    (fun (l1, l2, t1, t2) ->
      let l1 = f l1 and l2 = f l2 and t1 = f t1 and t2 = f t2 in
      let gx, gy = Golden.forward_fixed ~l1 ~l2 ~theta1:t1 ~theta2:t2 in
      let dx, dy = Ikprog.forward_on_datapath ~l1 ~l2 ~theta1:t1 ~theta2:t2 in
      check_int "x bit-exact" gx dx;
      check_int "y bit-exact" gy dy)
    [ (2.0, 1.5, 0.3, 0.9); (1.0, 1.0, -0.5, 1.2); (3.0, 2.0, 1.7, -0.4) ]

let test_fk_accuracy_vs_float () =
  let l1 = 2.0 and l2 = 1.5 and t1 = 0.3 and t2 = 0.9 in
  let f = Fixed.of_float in
  let dx, dy =
    Ikprog.forward_on_datapath ~l1:(f l1) ~l2:(f l2) ~theta1:(f t1)
      ~theta2:(f t2)
  in
  let ex, ey = Golden.forward ~l1 ~l2 ~theta1:t1 ~theta2:t2 in
  close ~tol:5e-3 "fk x" ex (Fixed.to_float dx);
  close ~tol:5e-3 "fk y" ey (Fixed.to_float dy)

let test_ik_fk_roundtrip_on_datapath () =
  (* solve inverse kinematics, feed the angles to forward kinematics,
     recover the target -- all on the datapath *)
  let f = Fixed.of_float in
  let l1 = f 2.0 and l2 = f 1.5 in
  let px = f 2.5 and py = f 1.0 in
  let s = Ikprog.solve_on_datapath ~l1 ~l2 ~px ~py in
  check_bool "reachable" true s.Golden.reachable;
  let rx, ry =
    Ikprog.forward_on_datapath ~l1 ~l2 ~theta1:s.Golden.theta1
      ~theta2:s.Golden.theta2
  in
  close ~tol:2e-2 "recovered x" 2.5 (Fixed.to_float rx);
  close ~tol:2e-2 "recovered y" 1.0 (Fixed.to_float ry)

let test_workspace_program_is_static () =
  (* the same words for every input: generation is data-independent *)
  let p1, _ = Ikprog.build_workspace () in
  let p2, _ = Ikprog.build_workspace () in
  check_bool "identical programs" true (p1 = p2);
  check_bool "small and static" true
    (List.length p1.Microcode.instrs < 20)

let test_workspace_on_datapath () =
  let f = Fixed.of_float in
  List.iter
    (fun (l1, l2, px, py, expected) ->
      let l1 = f l1 and l2 = f l2 and px = f px and py = f py in
      check_bool "matches golden" (Golden.in_workspace ~l1 ~l2 ~px ~py)
        (Ikprog.workspace_on_datapath ~l1 ~l2 ~px ~py);
      check_bool "matches expectation" expected
        (Ikprog.workspace_on_datapath ~l1 ~l2 ~px ~py))
    [ (2.0, 1.5, 2.5, 1.0, true);  (* inside the annulus *)
      (1.0, 1.0, 5.0, 0.0, false); (* beyond the outer radius *)
      (3.0, 1.0, 0.5, 0.5, false); (* inside the inner hole *)
      (2.0, 2.0, 0.1, 0.0, true)   (* inner radius 0: reachable *) ]

let test_ik_random_targets_bitexact () =
  (* random targets inside the annulus: generate, run, compare *)
  let rnd = Random.State.make [| 0x1C5 |] in
  for _ = 1 to 12 do
    let l1 = 1.0 +. Random.State.float rnd 2.0 in
    let l2 = 0.8 +. Random.State.float rnd 1.5 in
    (* pick a reachable target via forward kinematics *)
    let t1 = Random.State.float rnd 6.28 -. 3.14 in
    let t2 = 0.2 +. Random.State.float rnd 2.5 in
    let px, py = Golden.forward ~l1 ~l2 ~theta1:t1 ~theta2:t2 in
    let f = Fixed.of_float in
    let l1 = f l1 and l2 = f l2 and px = f px and py = f py in
    let golden = Golden.solve ~l1 ~l2 ~px ~py in
    if golden.Golden.reachable then begin
      let dp = Ikprog.solve_on_datapath ~l1 ~l2 ~px ~py in
      check_bool "reachable agrees" golden.Golden.reachable
        dp.Golden.reachable;
      check_int "theta1" golden.Golden.theta1 dp.Golden.theta1;
      check_int "theta2" golden.Golden.theta2 dp.Golden.theta2
    end
  done

let test_fir_on_datapath () =
  let f = Fixed.of_float in
  let coeffs = List.map f [ 0.5; -0.25; 1.5; 0.125 ] in
  let xs = List.map f [ 2.0; 4.0; -1.0; 8.0 ] in
  let expected =
    List.fold_left2
      (fun s c x -> Fixed.add s (Fixed.mul c x))
      Fixed.zero coeffs xs
  in
  let got = Ikprog.fir_on_datapath ~coeffs ~xs in
  check_int "dot product bit-exact" expected got;
  close ~tol:1e-4 "value" (-0.5) (Fixed.to_float got);
  (* no samples: zero *)
  check_int "empty" 0 (Ikprog.fir_on_datapath ~coeffs:[] ~xs:[])

let () =
  Alcotest.run "iks"
    [ ( "fixed",
        [ Alcotest.test_case "roundtrip" `Quick test_fixed_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_fixed_arith;
          Alcotest.test_case "matches datapath ops" `Quick
            test_fixed_matches_datapath_ops ] );
      ( "cordic",
        [ Alcotest.test_case "atan2" `Quick test_cordic_atan2;
          Alcotest.test_case "magnitude" `Quick test_cordic_magnitude;
          Alcotest.test_case "rotate" `Quick test_cordic_rotate;
          Alcotest.test_case "divide" `Quick test_cordic_divide;
          Alcotest.test_case "sqrt" `Quick test_cordic_sqrt ] );
      ( "golden",
        [ Alcotest.test_case "against float reference" `Quick
            test_golden_against_float;
          Alcotest.test_case "forward kinematics roundtrip" `Quick
            test_golden_forward_roundtrip;
          Alcotest.test_case "unreachable" `Quick test_golden_unreachable ] );
      ( "microcode",
        [ Alcotest.test_case "paper addr-7 tuples" `Quick
            test_paper_addr7_tuples;
          Alcotest.test_case "paper addr-7 executes" `Quick
            test_paper_addr7_executes;
          Alcotest.test_case "checker rejects bad words" `Quick
            test_microcode_check_rejects;
          Alcotest.test_case "translated model is conflict-free" `Quick
            test_translated_model_is_clean ] );
      ( "fk-workspace",
        [ Alcotest.test_case "forward kinematics bit-exact" `Quick
            test_fk_on_datapath_bitexact;
          Alcotest.test_case "forward kinematics vs float" `Quick
            test_fk_accuracy_vs_float;
          Alcotest.test_case "IK -> FK roundtrip on the datapath" `Quick
            test_ik_fk_roundtrip_on_datapath;
          Alcotest.test_case "workspace microcode is static" `Quick
            test_workspace_program_is_static;
          Alcotest.test_case "workspace check on the datapath" `Quick
            test_workspace_on_datapath ] );
      ( "end-to-end",
        [ Alcotest.test_case "datapath = golden, bit-exact" `Quick
            test_ik_on_datapath_matches_golden_bitexact;
          Alcotest.test_case "random reachable targets, bit-exact" `Quick
            test_ik_random_targets_bitexact;
          Alcotest.test_case "FIR dot product on the datapath" `Quick
            test_fir_on_datapath;
          Alcotest.test_case "unreachable target" `Quick
            test_ik_unreachable_on_datapath;
          Alcotest.test_case "accuracy vs float" `Quick
            test_ik_accuracy_vs_float;
          Alcotest.test_case "program shape + kernel parity" `Quick
            test_ik_program_shape ] ) ]
