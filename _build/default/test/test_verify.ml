(* Tests of the verification library: symbolic normalization,
   symbolic simulation, the algorithmic-vs-RT equivalence procedure
   (paper §4), and the kernel/interpreter consistency theorem
   (paper §2.7). *)

open Csrtl_verify
module C = Csrtl_core
module H = Csrtl_hls

let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* -- Sym --------------------------------------------------------------------- *)

let test_normalize_folding () =
  let t = Sym.App (C.Ops.Add, [ Sym.nat 2; Sym.nat 3 ]) in
  check_str "fold" "5" (Sym.to_string (Sym.normalize t));
  let t =
    Sym.App (C.Ops.Mul, [ Sym.sym "x"; Sym.nat 0 ])
  in
  check_str "absorb" "0" (Sym.to_string (Sym.normalize t));
  let t = Sym.App (C.Ops.Add, [ Sym.sym "x"; Sym.nat 0 ]) in
  check_str "neutral" "x" (Sym.to_string (Sym.normalize t))

let test_normalize_commutative () =
  let a =
    Sym.App (C.Ops.Add, [ Sym.sym "y"; Sym.App (C.Ops.Add, [ Sym.nat 1; Sym.sym "x" ]) ])
  in
  let b =
    Sym.App (C.Ops.Add, [ Sym.sym "x"; Sym.App (C.Ops.Add, [ Sym.sym "y"; Sym.nat 1 ]) ])
  in
  check_bool "flatten + sort" true (Sym.equal a b);
  let c = Sym.App (C.Ops.Sub, [ Sym.sym "x"; Sym.sym "y" ]) in
  let d = Sym.App (C.Ops.Sub, [ Sym.sym "y"; Sym.sym "x" ]) in
  check_bool "sub not commutative" false (Sym.equal c d)

let test_normalize_immediates () =
  let a = Sym.App (C.Ops.Addi 3, [ Sym.sym "x" ]) in
  let b = Sym.App (C.Ops.Add, [ Sym.sym "x"; Sym.nat 3 ]) in
  check_bool "addi = add const" true (Sym.equal a b)

let test_sym_eval () =
  let t =
    Sym.App (C.Ops.Mul, [ Sym.sym "x"; Sym.App (C.Ops.Add, [ Sym.sym "y"; Sym.nat 1 ]) ])
  in
  let env = function "x" -> 6 | _ -> 4 in
  Alcotest.(check int) "eval" 30 (Sym.eval env (Sym.normalize t));
  Alcotest.(check (list string)) "vars" [ "x"; "y" ] (Sym.vars t)

let test_sym_apply_sentinels () =
  check_bool "disc+disc" true
    (Sym.apply C.Ops.Add ~prev:Sym.Disc Sym.Disc Sym.Disc = Sym.Disc);
  check_bool "partial" true
    (Sym.apply C.Ops.Add ~prev:Sym.Disc (Sym.sym "x") Sym.Disc = Sym.Illegal);
  check_bool "illegal poisons" true
    (Sym.apply C.Ops.Add ~prev:Sym.Disc Sym.Illegal (Sym.sym "x")
     = Sym.Illegal)

let prop_normalize_sound =
  (* normalization preserves meaning on concrete assignments *)
  let gen =
    QCheck.Gen.(
      let rec term depth =
        if depth = 0 then
          oneof
            [ map (fun n -> Sym.nat n) (int_range 0 50);
              map (fun i -> Sym.sym (Printf.sprintf "v%d" i)) (int_range 0 3) ]
        else
          let* op =
            oneofl [ C.Ops.Add; C.Ops.Mul; C.Ops.Sub; C.Ops.Max; C.Ops.Bxor ]
          in
          let* a = term (depth - 1) in
          let* b = term (depth - 1) in
          return (Sym.App (op, [ a; b ]))
      in
      term 4)
  in
  QCheck.Test.make ~name:"normalization preserves evaluation" ~count:300
    (QCheck.make gen)
    (fun t ->
      let env v = (Hashtbl.hash v * 7919) mod 1000 in
      C.Word.equal (Sym.eval env t) (Sym.eval env (Sym.normalize t)))

(* -- Symsim -------------------------------------------------------------------- *)

let symbolic_io_model () =
  (* OUT = (X + R1) * X with R1 init 5, X symbolic *)
  let b = C.Builder.create ~name:"symio" ~cs_max:8 () in
  C.Builder.input b "X";
  C.Builder.reg b ~init:(C.Word.nat 5) "R1";
  C.Builder.reg b "T";
  C.Builder.output b "OUT";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add ] "ADD";
  C.Builder.unit_ b ~latency:2 ~ops:[ C.Ops.Mul ] "MULT";
  C.Builder.binary b ~fu:"ADD"
    ~a:(C.Transfer.From_input "X", "BA")
    ~b:(C.Transfer.From_reg "R1", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(C.Transfer.To_reg "T");
  C.Builder.binary b ~fu:"MULT"
    ~a:(C.Transfer.From_reg "T", "BA")
    ~b:(C.Transfer.From_input "X", "BB")
    ~read:3 ~write:(5, "BA") ~dst:(C.Transfer.To_output "OUT");
  C.Builder.finish b

let test_symsim_symbolic_output () =
  let res = Symsim.run (symbolic_io_model ()) in
  match Symsim.last_output res "OUT" with
  | None -> Alcotest.fail "no output"
  | Some term ->
    let expected =
      Sym.App
        (C.Ops.Mul,
         [ Sym.sym "X"; Sym.App (C.Ops.Add, [ Sym.sym "X"; Sym.nat 5 ]) ])
    in
    check_bool
      (Printf.sprintf "term %s" (Sym.to_string term))
      true
      (Sym.equal term expected)

let test_symsim_agrees_with_concrete () =
  let m = symbolic_io_model () in
  let res = Symsim.run m in
  let term = Option.get (Symsim.last_output res "OUT") in
  (* plug X = 7 concretely and compare with Interp *)
  let m7 = H.Flow.with_inputs m [ ("X", 7) ] in
  let obs = C.Interp.run m7 in
  let concrete =
    match C.Observation.output_writes obs "OUT" with
    | [ (_, v) ] -> v
    | _ -> C.Word.illegal
  in
  Alcotest.(check int) "symbolic eval = concrete run" concrete
    (Sym.eval (fun _ -> 7) term)

let test_symsim_detects_conflict () =
  let b = C.Builder.create ~name:"clash" ~cs_max:6 () in
  C.Builder.input b "X";
  C.Builder.reg b ~init:(C.Word.nat 1) "R1";
  C.Builder.reg b "R2";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add ] "ADD";
  C.Builder.binary b ~fu:"ADD"
    ~a:(C.Transfer.From_input "X", "BA")
    ~b:(C.Transfer.From_reg "R1", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(C.Transfer.To_reg "R2");
  C.Builder.binary b ~fu:"ADD"
    ~a:(C.Transfer.From_reg "R1", "BA")
    ~b:(C.Transfer.From_reg "R1", "BB")
    ~read:1 ~write:(2, "BB") ~dst:(C.Transfer.To_reg "R2");
  let m = C.Builder.finish_unchecked b in
  let res = Symsim.run m in
  check_bool "illegal located" true (res.Symsim.illegal_at <> [])

(* -- Equiv ---------------------------------------------------------------------- *)

let test_equiv_proved_for_hls_flows () =
  List.iter
    (fun p ->
      let flow = H.Flow.compile p in
      let verdicts = Equiv.check_flow flow in
      check_bool
        (p.H.Ir.pname ^ ": "
         ^ String.concat "; "
             (List.map
                (fun (o, v) ->
                  Format.asprintf "%s %a" o Equiv.pp_verdict v)
                verdicts))
        true
        (Equiv.all_proved verdicts))
    [ H.Examples.diffeq; H.Examples.fir 6; H.Examples.horner 4 ]

let test_equiv_refutes_wrong_model () =
  (* model computes (x - y), program says (x + y): refuted *)
  let p =
    { H.Ir.pname = "wrong"; inputs = [ "x"; "y" ];
      stmts = [ { H.Ir.def = "s"; rhs = H.Ir.Bin (C.Ops.Add, Var "x", Var "y") } ];
      outputs = [ "s" ] }
  in
  let b = C.Builder.create ~name:"wrong" ~cs_max:4 () in
  C.Builder.input b "x";
  C.Builder.input b "y";
  C.Builder.output b "s";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Sub ] "ALU";
  C.Builder.binary b ~fu:"ALU"
    ~a:(C.Transfer.From_input "x", "BA")
    ~b:(C.Transfer.From_input "y", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(C.Transfer.To_output "s");
  let m = C.Builder.finish b in
  match Equiv.check_program p m with
  | [ ("s", Equiv.Refuted _) ] -> ()
  | [ ("s", v) ] ->
    Alcotest.fail (Format.asprintf "expected refutation, got %a"
                     Equiv.pp_verdict v)
  | _ -> Alcotest.fail "unexpected verdict shape"

let test_equiv_equal_terms_api () =
  let x = Sym.sym "x" in
  check_bool "identical" true
    (Equiv.equal_terms
       (Sym.App (C.Ops.Add, [ x; Sym.nat 1 ]))
       (Sym.App (C.Ops.Addi 1, [ x ]))
     = Equiv.Proved);
  (match
     Equiv.equal_terms
       (Sym.App (C.Ops.Add, [ x; Sym.nat 1 ]))
       (Sym.App (C.Ops.Add, [ x; Sym.nat 2 ]))
   with
   | Equiv.Refuted _ -> ()
   | _ -> Alcotest.fail "expected refutation");
  (* (x+y)^2 vs x^2 + 2xy + y^2: equal but not syntactically *)
  let y = Sym.sym "y" in
  let sq t = Sym.App (C.Ops.Mul, [ t; t ]) in
  let lhs = sq (Sym.App (C.Ops.Add, [ x; y ])) in
  let rhs =
    Sym.App
      (C.Ops.Add,
       [ sq x; Sym.App (C.Ops.Mul, [ Sym.nat 2; x; y ]); sq y ])
  in
  match Equiv.equal_terms lhs rhs with
  | Equiv.Unproven _ -> ()
  | Equiv.Proved -> Alcotest.fail "normalization is not that strong"
  | Equiv.Refuted a ->
    Alcotest.fail
      (Format.asprintf "wrongly refuted: %a" Equiv.pp_verdict
         (Equiv.Refuted a))

(* -- Consist -------------------------------------------------------------------- *)

let test_consist_fig1 () =
  Alcotest.(check (result unit (list string))) "fig1 consistent" (Ok ())
    (Consist.check (C.Builder.fig1 ()))

let test_consist_batch () =
  let failures = Consist.run_batch ~seed:42 ~count:60 () in
  check_bool
    (String.concat "; "
       (List.concat_map (fun (s, es) ->
            List.map (Printf.sprintf "seed %d: %s" s) es)
          failures))
    true (failures = [])

let test_consist_conflict_models_agree () =
  (* even with injected conflicts, both semantics see the same ILLEGALs *)
  let m = Consist.random_model ~conflict:true 7 in
  let obs = C.Interp.run m in
  check_bool "conflict present" true (C.Observation.has_conflict obs);
  Alcotest.(check (result unit (list string))) "still consistent" (Ok ())
    (Consist.check m)

(* -- Lowcheck: symbolic translation validation ------------------------------ *)

let test_lowcheck_proves_hls_lowerings () =
  List.iter
    (fun p ->
      let flow = H.Flow.compile p in
      let m = flow.H.Flow.binding.H.Synth.model in
      List.iter
        (fun scheme ->
          match Lowcheck.check ~scheme m with
          | Lowcheck.Proved -> ()
          | v ->
            Alcotest.fail
              (Format.asprintf "%s: %a" p.H.Ir.pname Lowcheck.pp_verdict v))
        [ Csrtl_clocked.Lower.One_cycle_per_step;
          Csrtl_clocked.Lower.Two_phase ])
    [ H.Examples.diffeq; H.Examples.fir 6; H.Examples.horner 4 ]

let test_lowcheck_fig1 () =
  match Lowcheck.check (C.Builder.fig1 ()) with
  | Lowcheck.Proved -> ()
  | v -> Alcotest.fail (Format.asprintf "%a" Lowcheck.pp_verdict v)

let test_lowcheck_symbolic_io_model () =
  (* fully symbolic inputs: the proof covers every input at once *)
  let b = C.Builder.create ~name:"symio2" ~cs_max:8 () in
  C.Builder.input b "X";
  C.Builder.input b "Y";
  C.Builder.reg b ~init:(C.Word.nat 5) "R1";
  C.Builder.reg b "T";
  C.Builder.reg b "U";
  C.Builder.buses b [ "BA"; "BB" ];
  C.Builder.unit_ b ~ops:[ C.Ops.Add; C.Ops.Sub ] "ALU";
  C.Builder.unit_ b ~latency:2 ~ops:[ C.Ops.Mul ] "MULT";
  C.Builder.binary b ~op:C.Ops.Add ~fu:"ALU"
    ~a:(C.Transfer.From_input "X", "BA")
    ~b:(C.Transfer.From_reg "R1", "BB")
    ~read:1 ~write:(2, "BA") ~dst:(C.Transfer.To_reg "T");
  C.Builder.binary b ~fu:"MULT"
    ~a:(C.Transfer.From_reg "T", "BA")
    ~b:(C.Transfer.From_input "Y", "BB")
    ~read:3 ~write:(5, "BA") ~dst:(C.Transfer.To_reg "U");
  C.Builder.binary b ~op:C.Ops.Sub ~fu:"ALU"
    ~a:(C.Transfer.From_reg "U", "BA")
    ~b:(C.Transfer.From_reg "T", "BB")
    ~read:6 ~write:(7, "BB") ~dst:(C.Transfer.To_reg "T");
  let m = C.Builder.finish b in
  (match Lowcheck.check m with
   | Lowcheck.Proved -> ()
   | v -> Alcotest.fail (Format.asprintf "%a" Lowcheck.pp_verdict v));
  (* sanity: the symbolic terms involved really are symbolic *)
  let sym = Symsim.run m in
  match List.assoc_opt "U" sym.Symsim.reg_final with
  | Some term -> check_bool "symbolic result" true (Sym.vars term = [ "X"; "Y" ])
  | None -> Alcotest.fail "no U"

let prop_lowcheck_random_chains =
  QCheck.Test.make ~name:"lowering proved symbolically on random chains"
    ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let m = Consist.random_model ~size:5 seed in
      match C.Conflict.check m with
      | _ :: _ -> QCheck.assume_fail ()
      | [] -> Lowcheck.check m = Lowcheck.Proved)

let test_compaction_preserved_symbolically () =
  (* compaction is dataflow-preserving for every input at once *)
  List.iter
    (fun p ->
      let flow = H.Flow.compile p in
      let m = flow.H.Flow.binding.H.Synth.model in
      let m2 = C.Reschedule.compact m in
      let s1 = Symsim.run m and s2 = Symsim.run m2 in
      List.iter2
        (fun (n1, t1) (n2, t2) ->
          check_bool (p.H.Ir.pname ^ ": " ^ n1) true
            (n1 = n2 && Sym.equal t1 t2))
        s1.Symsim.reg_final s2.Symsim.reg_final;
      (* outputs keep their value sequences *)
      List.iter2
        (fun (o1, ws1) (o2, ws2) ->
          check_bool (p.H.Ir.pname ^ " out " ^ o1) true
            (o1 = o2
             && List.map snd ws1 = List.map snd ws2))
        s1.Symsim.out_writes s2.Symsim.out_writes)
    [ H.Examples.diffeq; H.Examples.fir 6; H.Examples.horner 4 ]

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "verify"
    [ ( "sym",
        [ Alcotest.test_case "folding" `Quick test_normalize_folding;
          Alcotest.test_case "commutative normal form" `Quick
            test_normalize_commutative;
          Alcotest.test_case "immediates" `Quick test_normalize_immediates;
          Alcotest.test_case "eval" `Quick test_sym_eval;
          Alcotest.test_case "sentinels" `Quick test_sym_apply_sentinels ] );
      qsuite "sym-props" [ prop_normalize_sound ];
      ( "symsim",
        [ Alcotest.test_case "symbolic output term" `Quick
            test_symsim_symbolic_output;
          Alcotest.test_case "agrees with concrete" `Quick
            test_symsim_agrees_with_concrete;
          Alcotest.test_case "locates conflicts" `Quick
            test_symsim_detects_conflict ] );
      ( "equiv",
        [ Alcotest.test_case "HLS flows proved" `Quick
            test_equiv_proved_for_hls_flows;
          Alcotest.test_case "wrong model refuted" `Quick
            test_equiv_refutes_wrong_model;
          Alcotest.test_case "equal_terms verdicts" `Quick
            test_equiv_equal_terms_api ] );
      ( "reschedule",
        [ Alcotest.test_case "compaction preserved symbolically" `Quick
            test_compaction_preserved_symbolically ] );
      ( "lowcheck",
        [ Alcotest.test_case "HLS lowerings proved, both schemes" `Quick
            test_lowcheck_proves_hls_lowerings;
          Alcotest.test_case "fig1" `Quick test_lowcheck_fig1;
          Alcotest.test_case "fully symbolic model" `Quick
            test_lowcheck_symbolic_io_model ] );
      qsuite "lowcheck-props" [ prop_lowcheck_random_chains ];
      ( "consist",
        [ Alcotest.test_case "fig1" `Quick test_consist_fig1;
          Alcotest.test_case "large-model soak" `Slow
            (fun () ->
              (* bigger random models than the quick batch *)
              let failures = ref [] in
              for seed = 500 to 519 do
                match Consist.check (Consist.random_model ~size:20 seed) with
                | Ok () -> ()
                | Error es -> failures := (seed, es) :: !failures
              done;
              Alcotest.(check int) "no disagreements" 0
                (List.length !failures));
          Alcotest.test_case "random batch" `Quick test_consist_batch;
          Alcotest.test_case "conflicted models agree" `Quick
            test_consist_conflict_models_agree ] ) ]
