  $ cat > fig1.rtm <<'RTM'
  > model fig1
  > csmax 7
  > reg R1 init 3
  > reg R2 init 4
  > bus B1 B2
  > unit ADD ops add latency 1
  > transfer R1 B1 R2 B2 5 ADD 6 B1 R1
  > RTM
  $ csrtl check fig1.rtm
  $ csrtl sim fig1.rtm --engine interp
  $ csrtl sim fig1.rtm | grep cycles
  $ csrtl info fig1.rtm | tail -2
  $ csrtl compact fig1.rtm | head -1
  $ csrtl coverage fig1.rtm | head -3
  $ csrtl export-vhdl fig1.rtm -o fig1.vhd
  $ csrtl lint fig1.vhd
  $ csrtl import-vhdl fig1.vhd | tail -1
  $ csrtl export-vhdl fig1.rtm --self-check -o fig1_tb.vhd
  $ csrtl run-vhdl fig1_tb.vhd --top fig1 --show R1_out
  $ csrtl selfcheck fig1.rtm
  $ csrtl lower fig1.rtm --vhdl fig1_rtl.vhd | tail -2
  $ csrtl lint fig1_rtl.vhd > /dev/null 2>&1; echo "exit $?"
  $ cat > clash.rtm <<'RTM'
  > model clash
  > csmax 6
  > reg R1 init 1
  > reg R2 init 2
  > reg R3
  > reg R4
  > bus B1 B2 B3
  > unit ADD ops add latency 1
  > unit SUB ops sub latency 1
  > transfer R1 B1 R2 B2 2 ADD 3 B1 R3
  > transfer R2 B1 R1 B3 2 SUB 3 B2 R4
  > RTM
  $ csrtl check clash.rtm
  $ csrtl trace clash.rtm --from 2 --to 2 | grep conflict
  $ csrtl check nonexistent.rtm 2>&1 | tail -1
  $ printf 'model broken\n' > broken.rtm
  $ csrtl sim broken.rtm
