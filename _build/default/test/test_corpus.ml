(* Regression corpus: every .rtm model under corpus/ is parsed,
   simulated on both execution paths, compared against its golden
   .expected observation dump, round-tripped through the VHDL
   emitter/extractor, and (when conflict-free) lowered and checked.
   To add a case: drop model.rtm into test/corpus/ and run with
   CSRTL_BLESS=1 once to record the golden file. *)

module C = Csrtl_core

let corpus_dir = "corpus"

let corpus_files () =
  Sys.readdir corpus_dir
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".rtm")
  |> List.sort String.compare

let read_file path =
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let golden_path rtm =
  Filename.concat corpus_dir (Filename.chop_suffix rtm ".rtm" ^ ".expected")

let bless = Sys.getenv_opt "CSRTL_BLESS" = Some "1"

let render obs = Format.asprintf "%a" C.Observation.pp obs

let check_case rtm () =
  let m = C.Rtm.of_file (Filename.concat corpus_dir rtm) in
  Alcotest.(check (list string))
    "validates" []
    (List.map
       (fun (e : C.Model.error) -> e.C.Model.message)
       (C.Model.validate m));
  let kr = C.Simulate.run m in
  let io = C.Interp.run m in
  Alcotest.(check (list string)) "kernel = interpreter" []
    (C.Observation.diff kr.C.Simulate.obs io);
  (* all four kernel configurations agree (keyed/predicate waits x
     incremental/fold resolution) *)
  List.iter
    (fun (wait_impl, resolution_impl) ->
      Alcotest.(check (list string)) "kernel configuration agrees" []
        (C.Observation.diff
           (C.Simulate.run ~wait_impl ~resolution_impl m).C.Simulate.obs io))
    [ (`Keyed, `Fold); (`Predicate, `Incremental); (`Predicate, `Fold) ];
  (* deterministic efficiency guard: the keyed kernel must not regress
     to super-linear process activity (see the ablation benches) *)
  let legs, selects = C.Model.all_legs m in
  let bound =
    (4 * (List.length legs + List.length selects))
    + (8 * m.C.Model.cs_max)
    + (8 * m.C.Model.cs_max
       * (List.length m.C.Model.registers + List.length m.C.Model.fus
          + List.length m.C.Model.inputs))
    + 64
  in
  Alcotest.(check bool)
    (Printf.sprintf "process runs %d within bound %d"
       kr.C.Simulate.stats.Csrtl_kernel.Types.process_runs bound)
    true
    (kr.C.Simulate.stats.Csrtl_kernel.Types.process_runs <= bound);
  Alcotest.(check int) "delta-cycle law" (C.Simulate.expected_cycles m)
    kr.C.Simulate.cycles;
  (* golden observation *)
  let actual = render io in
  let gpath = golden_path rtm in
  if bless then begin
    let oc = open_out gpath in
    output_string oc actual;
    close_out oc
  end
  else if Sys.file_exists gpath then
    Alcotest.(check string) "matches golden observation" (read_file gpath)
      actual
  else
    Alcotest.fail
      (Printf.sprintf "no golden file %s (run with CSRTL_BLESS=1)" gpath);
  (* VHDL round trip preserves behaviour *)
  let back = Csrtl_vhdl.Extract.model_of_string (Csrtl_vhdl.Emit.to_string m) in
  let io' = C.Interp.run back in
  Alcotest.(check (list string)) "VHDL round trip" []
    (C.Observation.diff
       { io with C.Observation.model_name = "x" }
       { io' with C.Observation.model_name = "x" });
  (* the emitted self-checking VHDL also EXECUTES as VHDL (Elab), its
     embedded assertions all pass, and the final register values match *)
  let self_check = Csrtl_vhdl.Emit.self_checking_to_string m io in
  (match
     Csrtl_vhdl.Elab.elaborate_and_run ~top:m.C.Model.name self_check
   with
   | Error msg -> Alcotest.fail ("Elab: " ^ msg)
   | Ok t ->
     Alcotest.(check (list string)) "embedded assertions pass" []
       !(t.Csrtl_vhdl.Elab.failures);
     List.iter
       (fun (r : C.Model.register) ->
         Alcotest.(check (option int))
           ("Elab register " ^ r.C.Model.reg_name)
           (C.Observation.final_reg io r.C.Model.reg_name)
           (Some
              (Csrtl_kernel.Signal.value
                 (t.Csrtl_vhdl.Elab.lookup (r.C.Model.reg_name ^ "_out")))))
       m.C.Model.registers);
  (* conflict-free models also lower and verify *)
  if C.Conflict.check m = [] then begin
    (match Csrtl_clocked.Equiv.check m with
     | Ok () -> ()
     | Error ms ->
       Alcotest.fail
         (String.concat "; "
            (List.map
               (Format.asprintf "%a" Csrtl_clocked.Equiv.pp_mismatch)
               ms)));
    match Csrtl_verify.Lowcheck.check m with
    | Csrtl_verify.Lowcheck.Proved -> ()
    | v ->
      Alcotest.fail
        (Format.asprintf "lowering not proved: %a"
           Csrtl_verify.Lowcheck.pp_verdict v)
  end
  else
    (* conflicted corpus entries must be diagnosed dynamically too *)
    Alcotest.(check bool) "conflict diagnosed" true
      (C.Observation.has_conflict io)

let () =
  let cases =
    List.map
      (fun rtm -> Alcotest.test_case rtm `Quick (check_case rtm))
      (corpus_files ())
  in
  Alcotest.run "corpus" [ ("models", cases) ]
