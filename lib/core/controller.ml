open Csrtl_kernel

type t = { cs : Signal.t; ph : Signal.t }

let phase_printer v =
  match Phase.of_int v with
  | Some p -> Phase.to_string p
  | None -> Printf.sprintf "?phase:%d" v

let add ?(init_step = 0) k ~cs_max =
  let ph =
    Scheduler.signal k ~printer:phase_printer ~name:"PH"
      ~init:(Phase.to_int Phase.high) ()
  in
  let cs = Scheduler.signal k ~name:"CS" ~init:init_step () in
  (* VHDL sensitivity-list process: the body runs once at
     initialization and then after every event on PH. *)
  let _p =
    Scheduler.add_process k ~name:"CONTROLLER" (fun () ->
        while true do
          let p = Signal.value ph in
          (if p = Phase.to_int Phase.high then begin
             if Signal.value cs < cs_max then begin
               Scheduler.assign k cs (Signal.value cs + 1);
               Scheduler.assign k ph (Phase.to_int Phase.low)
             end
           end
           else Scheduler.assign k ph (p + 1));
          Process.wait_on [ ph ]
        done)
  in
  { cs; ph }

let current_step t = Signal.value t.cs

let current_phase t =
  Phase.of_int_exn (Signal.value t.ph)
