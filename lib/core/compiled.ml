(* The phase-compiled executor.  Compilation ({!Sched}) lowers the
   model's legs, op-selections and injection overlay onto integer sink
   ids and flattens them into one action array per (control step,
   phase) slot; execution walks the 6 * cs_max slots replaying
   {!Interp}'s one-phase-lagged visibility discipline over
   preallocated arrays.  The only allocations after [of_model] are
   conflict report entries and the final observation. *)

type stats = {
  static_actions : int;
  contributions : int;
  resolutions : int;
  fu_evals : int;
  latches : int;
}

type t = {
  sched : Sched.t;
  cycles : int;
  fu_states : Fu_state.t array;
  (* ---- per-run state, preallocated and reset by [run] ---- *)
  visible : Word.t array;
  regs : Word.t array;
  reg_vis : Word.t array;
      (* the latched output view the datapath reads — equals [regs]
         except under a register-output tamper ({!Sched.reg_tamper}) *)
  fu_out : Word.t array;
  (* pending contributions of the current phase: [acc] accumulates via
     the resolution monoid, [pend_ids]/[pend_n] list the touched sinks,
     [in_pending] dedups.  At each flip the pending set becomes the
     live set (whose drivers release one phase later) and the arrays
     swap — a double buffer, no allocation. *)
  acc : Word.t array;
  in_pending : bool array;
  mutable pend_ids : int array;
  mutable pend_n : int;
  mutable live_ids : int array;
  mutable live_n : int;
  traces : Word.t array array;  (* register index -> per-step values *)
  out_steps : int array array;  (* output index -> steps written *)
  out_vals : Word.t array array;
  out_n : int array;
  mutable conflicts : (int * Phase.t * string) list;
  mutable st_contributions : int;
  mutable st_resolutions : int;
  mutable st_fu_evals : int;
  mutable st_latches : int;
}

let model t = t.sched.Sched.model
let cycles t = t.cycles

let blockers ~(inject : Inject.t) ~(config : Simulate.config) =
  let b = ref [] in
  let add why = b := why :: !b in
  if inject.Inject.oscillators <> [] then
    add
      "an injected oscillator never settles, so no static schedule \
       exists";
  if
    List.exists
      (fun (sb : Inject.saboteur) -> Phase.equal sb.Inject.sab_phase Phase.Cr)
      inject.Inject.saboteurs
  then
    add
      "a spurious driver contributing during cr releases into the next \
       control step, off the static schedule";
  (match config.Simulate.on_illegal with
   | Simulate.Record -> ()
   | Simulate.Halt ->
     add "the Halt conflict policy stops mid-schedule; use the kernel"
   | Simulate.Degrade ->
     add "the Degrade conflict policy is not static; use the kernel");
  List.rev !b

let compilable ?(inject = Inject.none) ?(config = Simulate.default)
    (_ : Model.t) =
  match blockers ~inject ~config with
  | [] -> Ok ()
  | bs -> Error (String.concat "; " bs)

let of_sched (sched : Sched.t) =
  let m = sched.Sched.model in
  let inject = sched.Sched.inject in
  let nsinks = sched.Sched.nsinks in
  let nregs = sched.Sched.nregs in
  let n1 = max nsinks 1 in
  let fu_states =
    Array.map (fun (p : Sched.fu_plan) -> Fu_state.create p.Sched.fu)
      sched.Sched.fu_plans
  in
  { sched;
    cycles = Simulate.expected_cycles_injected ~inject m 0;
    fu_states;
    visible = Array.make n1 Word.disc;
    regs = Array.make (max nregs 1) Word.disc;
    reg_vis = Array.make (max nregs 1) Word.disc;
    fu_out = Array.make (max (Array.length fu_states) 1) Word.disc;
    acc = Array.make n1 Word.disc; in_pending = Array.make n1 false;
    pend_ids = Array.make n1 0; pend_n = 0; live_ids = Array.make n1 0;
    live_n = 0;
    traces =
      Array.init (max nregs 1) (fun _ -> Array.make m.cs_max Word.disc);
    out_steps =
      Array.init
        (max (List.length m.outputs) 1)
        (fun _ -> Array.make m.cs_max 0);
    out_vals =
      Array.init
        (max (List.length m.outputs) 1)
        (fun _ -> Array.make m.cs_max Word.disc);
    out_n = Array.make (max (List.length m.outputs) 1) 0;
    conflicts = []; st_contributions = 0; st_resolutions = 0;
    st_fu_evals = 0; st_latches = 0 }

let of_model ?(inject = Inject.none) (m : Model.t) =
  Model.validate_exn m;
  of_sched (Sched.compile ~inject m)

let reset t =
  Array.fill t.visible 0 (Array.length t.visible) Word.disc;
  Array.fill t.acc 0 (Array.length t.acc) Word.disc;
  Array.fill t.in_pending 0 (Array.length t.in_pending) false;
  t.pend_n <- 0;
  t.live_n <- 0;
  Array.blit t.sched.Sched.reg_init 0 t.regs 0 t.sched.Sched.nregs;
  for r = 0 to t.sched.Sched.nregs - 1 do
    t.reg_vis.(r) <- Sched.reg_view_init t.sched r
  done;
  Array.iter Fu_state.reset t.fu_states;
  Array.fill t.fu_out 0 (Array.length t.fu_out) Word.disc;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) Word.disc) t.traces;
  Array.fill t.out_n 0 (Array.length t.out_n) 0;
  t.conflicts <- [];
  t.st_contributions <- 0;
  t.st_resolutions <- 0;
  t.st_fu_evals <- 0;
  t.st_latches <- 0

let[@inline] contribute t s v =
  t.st_contributions <- t.st_contributions + 1;
  if t.in_pending.(s) then t.acc.(s) <- Resolve.combine t.acc.(s) v
  else begin
    t.in_pending.(s) <- true;
    t.acc.(s) <- v;
    t.pend_ids.(t.pend_n) <- s;
    t.pend_n <- t.pend_n + 1
  end

(* Resolve last phase's contributions into this phase's visible values:
   live sinks not re-contributed release to DISC, pending sinks take
   their accumulated resolution, and a sink newly becoming ILLEGAL is
   localized as a conflict — the same two re-resolution cases as
   [Interp.flip_phase], over a swap of preallocated id arrays.  Each
   re-resolution passes through the sink's tamper, if any; sinks with
   no transaction keep their previous — possibly tampered — value. *)
let flip t ~step ~phase =
  for i = 0 to t.live_n - 1 do
    let s = t.live_ids.(i) in
    if not t.in_pending.(s) then begin
      let v = Sched.resolve_release t.sched s ~step ~phase in
      if Word.is_illegal v && not (Word.is_illegal t.visible.(s)) then
        t.conflicts <- (step, phase, t.sched.Sched.sink_name.(s)) :: t.conflicts;
      t.visible.(s) <- v;
      t.st_resolutions <- t.st_resolutions + 1
    end
  done;
  for i = 0 to t.pend_n - 1 do
    let s = t.pend_ids.(i) in
    let v = Sched.resolve_value t.sched s ~step ~phase t.acc.(s) in
    if Word.is_illegal v && not (Word.is_illegal t.visible.(s)) then
      t.conflicts <- (step, phase, t.sched.Sched.sink_name.(s)) :: t.conflicts;
    t.visible.(s) <- v;
    t.st_resolutions <- t.st_resolutions + 1
  done;
  let freed = t.live_ids in
  t.live_ids <- t.pend_ids;
  t.live_n <- t.pend_n;
  t.pend_ids <- freed;
  t.pend_n <- 0;
  for i = 0 to t.live_n - 1 do
    let s = t.live_ids.(i) in
    t.in_pending.(s) <- false;
    t.acc.(s) <- Word.disc
  done

let exec_step t step =
  let cm = Phase.to_int Phase.Cm and cr = Phase.to_int Phase.Cr in
  begin
    for pi = 0 to Phase.count - 1 do
      let phase = Phase.of_int_exn pi in
      flip t ~step ~phase;
      let acts = t.sched.Sched.slots.(((step - 1) * Phase.count) + pi) in
      for a = 0 to Array.length acts - 1 do
        let { Sched.src; dst } = acts.(a) in
        let v =
          match src with
          | Sched.Const w -> w
          | Sched.Reg r -> t.reg_vis.(r)
          | Sched.Bus s -> t.visible.(s)
          | Sched.Fu f -> t.fu_out.(f)
        in
        contribute t dst v
      done;
      if pi = cm then
        for f = 0 to Array.length t.fu_states - 1 do
          let u = t.sched.Sched.fu_plans.(f) in
          t.fu_out.(f) <-
            Fu_state.step t.fu_states.(f)
              ~op_index:t.visible.(u.Sched.op_sink)
              t.visible.(u.Sched.in1_sink) t.visible.(u.Sched.in2_sink);
          t.st_fu_evals <- t.st_fu_evals + 1
        done
      else if pi = cr then begin
        for r = 0 to t.sched.Sched.nregs - 1 do
          let v = t.visible.(t.sched.Sched.reg_in_sink.(r)) in
          if not (Word.is_disc v) then begin
            t.regs.(r) <- v;
            t.reg_vis.(r) <- Sched.reg_view_latch t.sched r ~step v;
            t.st_latches <- t.st_latches + 1
          end
        done;
        for o = 0 to Array.length t.sched.Sched.out_sink - 1 do
          let v = t.visible.(t.sched.Sched.out_sink.(o)) in
          if not (Word.is_disc v) then begin
            let n = t.out_n.(o) in
            t.out_steps.(o).(n) <- step;
            t.out_vals.(o).(n) <- v;
            t.out_n.(o) <- n + 1
          end
        done;
        for r = 0 to t.sched.Sched.nregs - 1 do
          t.traces.(r).(step - 1) <- t.reg_vis.(r)
        done
      end
    done
  end

let observation t =
  let m = model t in
  { Observation.model_name = m.Model.name; cs_max = m.Model.cs_max;
    regs =
      List.mapi
        (fun i (r : Model.register) -> (r.reg_name, Array.copy t.traces.(i)))
        m.Model.registers;
    outputs =
      List.mapi
        (fun o name ->
          ( name,
            List.init t.out_n.(o) (fun k ->
                (t.out_steps.(o).(k), t.out_vals.(o).(k))) ))
        m.Model.outputs;
    conflicts = List.rev t.conflicts }

let run t =
  reset t;
  for step = 1 to (model t).Model.cs_max do
    exec_step t step
  done;
  observation t

(* ---- control-step snapshots ------------------------------------- *)

(* The per-port write arrays, re-serialized as the single
   chronological list {!Interp} accumulates: per step, ports in
   declaration order. *)
let out_writes_upto t ~step =
  let m = model t in
  let nports = List.length m.Model.outputs in
  let cursor = Array.make (max nports 1) 0 in
  let acc = ref [] in
  for s = 1 to step do
    List.iteri
      (fun o name ->
        let k = cursor.(o) in
        if k < t.out_n.(o) && t.out_steps.(o).(k) = s then begin
          acc := (name, (s, t.out_vals.(o).(k))) :: !acc;
          cursor.(o) <- k + 1
        end)
      m.Model.outputs
  done;
  List.rev !acc

let capture t ~digest ~step =
  let m = model t in
  { Snapshot.model_name = m.Model.name;
    digest;
    step;
    regs =
      List.mapi
        (fun i (r : Model.register) -> (r.reg_name, t.regs.(i)))
        m.Model.registers;
    fu_out =
      List.mapi (fun i (f : Model.fu) -> (f.fu_name, t.fu_out.(i)))
        m.Model.fus;
    fu_slots =
      List.mapi
        (fun i (f : Model.fu) -> (f.fu_name, Fu_state.slots t.fu_states.(i)))
        m.Model.fus;
    trace =
      List.mapi
        (fun i (r : Model.register) ->
          (r.reg_name, Array.sub t.traces.(i) 0 step))
        m.Model.registers;
    out_writes = out_writes_upto t ~step;
    conflicts = Snapshot.sort_conflicts t.conflicts }

let snapshots_at t ~steps =
  let m = model t in
  List.iter
    (fun s ->
      if s < 0 || s > m.Model.cs_max then
        invalid_arg
          (Printf.sprintf "Compiled.snapshots_at: step %d outside [0, %d]" s
             m.Model.cs_max))
    steps;
  let want = List.sort_uniq compare steps in
  let digest = Snapshot.digest_of_model m in
  reset t;
  let snaps = ref [] in
  if List.mem 0 want then snaps := capture t ~digest ~step:0 :: !snaps;
  for step = 1 to m.Model.cs_max do
    exec_step t step;
    if List.mem step want then snaps := capture t ~digest ~step :: !snaps
  done;
  List.rev !snaps

let snapshot_at t ~step =
  match snapshots_at t ~steps:[ step ] with
  | [ s ] -> s
  | _ -> assert false

let resume t ~(from : Snapshot.t) =
  let m = model t in
  Snapshot.validate_exn m from;
  reset t;
  List.iteri (fun i (_, v) -> t.regs.(i) <- v) from.regs;
  for r = 0 to t.sched.Sched.nregs - 1 do
    (* same rule as a latch in the uninterrupted run: the tampered
       output view re-resolves from the current register value *)
    t.reg_vis.(r) <-
      Sched.reg_view_resume t.sched r ~boundary:from.step t.regs.(r)
  done;
  List.iteri (fun i (_, v) -> t.fu_out.(i) <- v) from.fu_out;
  List.iteri
    (fun i (_, slots) -> Fu_state.restore t.fu_states.(i) slots)
    from.fu_slots;
  List.iteri
    (fun i (_, a) -> Array.blit a 0 t.traces.(i) 0 (Array.length a))
    from.trace;
  List.iter
    (fun (name, (s, v)) ->
      List.iteri
        (fun o n ->
          if n = name then begin
            let k = t.out_n.(o) in
            t.out_steps.(o).(k) <- s;
            t.out_vals.(o).(k) <- v;
            t.out_n.(o) <- k + 1
          end)
        m.Model.outputs)
    from.out_writes;
  t.conflicts <- List.rev from.conflicts;
  for step = from.step + 1 to m.Model.cs_max do
    exec_step t step
  done;
  observation t

let last_stats t =
  { static_actions = t.sched.Sched.static_actions;
    contributions = t.st_contributions;
    resolutions = t.st_resolutions; fu_evals = t.st_fu_evals;
    latches = t.st_latches }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v>schedule actions : %d@,contributions    : %d@,resolutions      \
     : %d@,unit evaluations : %d@,register latches : %d@]"
    s.static_actions s.contributions s.resolutions s.fu_evals s.latches
