(* The phase-compiled executor.  Compilation lowers the model's legs
   and op-selections onto integer sink ids and flattens them into one
   action array per (control step, phase) slot; execution walks the
   6 * cs_max slots replaying {!Interp}'s one-phase-lagged visibility
   discipline over preallocated arrays.  The only allocations after
   [of_model] are conflict report entries and the final observation. *)

type src =
  | Sconst of Word.t  (* input-port reads and op-select indices *)
  | Sreg of int  (* register file index *)
  | Sbus of int  (* sink id (a bus is also a sink) *)
  | Sfu of int  (* functional-unit output latch index *)

type action = { src : src; dst : int }

type fu_spec = {
  fu_state : Fu_state.t;
  op_sink : int;
  in1_sink : int;
  in2_sink : int;
}

type stats = {
  static_actions : int;
  contributions : int;
  resolutions : int;
  fu_evals : int;
  latches : int;
}

type t = {
  model : Model.t;
  cycles : int;
  nsinks : int;
  sink_name : string array;
  slots : action array array;  (* index (step - 1) * Phase.count + phase *)
  static_actions : int;
  fus : fu_spec array;
  reg_init : Word.t array;
  reg_in_sink : int array;
  out_sink : int array;  (* per model output, in declaration order *)
  (* ---- per-run state, preallocated and reset by [run] ---- *)
  visible : Word.t array;
  regs : Word.t array;
  fu_out : Word.t array;
  (* pending contributions of the current phase: [acc] accumulates via
     the resolution monoid, [pend_ids]/[pend_n] list the touched sinks,
     [in_pending] dedups.  At each flip the pending set becomes the
     live set (whose drivers release one phase later) and the arrays
     swap — a double buffer, no allocation. *)
  acc : Word.t array;
  in_pending : bool array;
  mutable pend_ids : int array;
  mutable pend_n : int;
  mutable live_ids : int array;
  mutable live_n : int;
  traces : Word.t array array;  (* register index -> per-step values *)
  out_steps : int array array;  (* output index -> steps written *)
  out_vals : Word.t array array;
  out_n : int array;
  mutable conflicts : (int * Phase.t * string) list;
  mutable st_contributions : int;
  mutable st_resolutions : int;
  mutable st_fu_evals : int;
  mutable st_latches : int;
}

let model t = t.model
let cycles t = t.cycles

let compilable ?(inject = Inject.none) ?(config = Simulate.default)
    (_ : Model.t) =
  if not (Inject.is_none inject) then
    Error
      "fault injection is dynamic: tampers, saboteurs, oscillators and \
       dropped legs need the event kernel or the interpreter"
  else
    match config.Simulate.on_illegal with
    | Simulate.Record -> Ok ()
    | Simulate.Halt ->
      Error "the Halt conflict policy stops mid-schedule; use the kernel"
    | Simulate.Degrade ->
      Error "the Degrade conflict policy is not static; use the kernel"

let of_model (m : Model.t) =
  Model.validate_exn m;
  let sink_ids = Hashtbl.create 64 in
  let names = ref [] in
  let add_sink n =
    if not (Hashtbl.mem sink_ids n) then begin
      Hashtbl.add sink_ids n (Hashtbl.length sink_ids);
      names := n :: !names
    end
  in
  List.iter add_sink m.buses;
  List.iter
    (fun (r : Model.register) -> add_sink (r.reg_name ^ ".in"))
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      add_sink (f.fu_name ^ ".in1");
      add_sink (f.fu_name ^ ".in2");
      add_sink (f.fu_name ^ ".op"))
    m.fus;
  List.iter add_sink m.outputs;
  let nsinks = Hashtbl.length sink_ids in
  let sink_name = Array.make (max nsinks 1) "" in
  List.iter (fun n -> sink_name.(Hashtbl.find sink_ids n) <- n) !names;
  let sink_id site n =
    match Hashtbl.find_opt sink_ids n with
    | Some i -> i
    | None ->
      (* validated models only reference declared resources, so this
         is a compiler bug — mirror the elaboration diagnostic *)
      invalid_arg
        (Printf.sprintf
           "Compiled: model %s declares no resource signal %S \
            (referenced by %s)"
           m.name n site)
  in
  let reg_index = Hashtbl.create 16 in
  List.iteri
    (fun i (r : Model.register) -> Hashtbl.replace reg_index r.reg_name i)
    m.registers;
  let fu_index = Hashtbl.create 8 in
  List.iteri
    (fun i (f : Model.fu) -> Hashtbl.replace fu_index f.fu_name i)
    m.fus;
  let compile_src (l : Transfer.leg) =
    match l.src with
    | Transfer.Reg_out r -> Sreg (Hashtbl.find reg_index r)
    | Transfer.In_port i ->
      (* input-port values are a pure function of the control step, so
         the read folds to a constant at compile time *)
      let v =
        match
          List.find_opt (fun (x : Model.input) -> x.in_name = i) m.inputs
        with
        | Some inp -> Model.input_value inp l.step
        | None -> Word.disc
      in
      Sconst v
    | Transfer.Bus b -> Sbus (sink_id "a transfer leg" b)
    | Transfer.Fu_out f -> Sfu (Hashtbl.find fu_index f)
    | Transfer.Reg_in _ | Transfer.Fu_in _ | Transfer.Out_port _ ->
      Sconst Word.disc
  in
  let nslots = m.cs_max * Phase.count in
  let slot_rev = Array.make nslots [] in
  let slot_of step phase = ((step - 1) * Phase.count) + Phase.to_int phase in
  let legs, selects = Model.all_legs m in
  List.iter
    (fun (l : Transfer.leg) ->
      let a =
        { src = compile_src l;
          dst = sink_id "a transfer leg" (Transfer.endpoint_name l.dst) }
      in
      let s = slot_of l.step l.phase in
      slot_rev.(s) <- a :: slot_rev.(s))
    legs;
  List.iter
    (fun (s : Transfer.op_select) ->
      match Hashtbl.find_opt fu_index s.sel_fu with
      | None -> ()
      | Some fi ->
        let f = List.nth m.fus fi in
        let rec find i = function
          | [] -> Word.illegal
          | o :: rest -> if Ops.equal o s.sel_op then i else find (i + 1) rest
        in
        let a =
          { src = Sconst (find 0 f.ops);
            dst = sink_id "an op selection" (s.sel_fu ^ ".op") }
        in
        let k = slot_of s.sel_step Phase.Rb in
        slot_rev.(k) <- a :: slot_rev.(k))
    selects;
  let slots = Array.map (fun l -> Array.of_list (List.rev l)) slot_rev in
  let static_actions =
    Array.fold_left (fun n a -> n + Array.length a) 0 slots
  in
  let fus =
    Array.of_list
      (List.map
         (fun (f : Model.fu) ->
           { fu_state = Fu_state.create f;
             op_sink = sink_id "a unit" (f.fu_name ^ ".op");
             in1_sink = sink_id "a unit" (f.fu_name ^ ".in1");
             in2_sink = sink_id "a unit" (f.fu_name ^ ".in2") })
         m.fus)
  in
  let nregs = List.length m.registers in
  let n1 = max nsinks 1 in
  { model = m; cycles = Simulate.expected_cycles m; nsinks; sink_name;
    slots; static_actions; fus;
    reg_init =
      Array.of_list
        (List.map (fun (r : Model.register) -> r.init) m.registers);
    reg_in_sink =
      Array.of_list
        (List.map
           (fun (r : Model.register) ->
             sink_id "a register" (r.reg_name ^ ".in"))
           m.registers);
    out_sink =
      Array.of_list (List.map (sink_id "an output port") m.outputs);
    visible = Array.make n1 Word.disc;
    regs = Array.make (max nregs 1) Word.disc;
    fu_out = Array.make (max (Array.length fus) 1) Word.disc;
    acc = Array.make n1 Word.disc; in_pending = Array.make n1 false;
    pend_ids = Array.make n1 0; pend_n = 0; live_ids = Array.make n1 0;
    live_n = 0;
    traces =
      Array.init (max nregs 1) (fun _ -> Array.make m.cs_max Word.disc);
    out_steps =
      Array.init
        (max (List.length m.outputs) 1)
        (fun _ -> Array.make m.cs_max 0);
    out_vals =
      Array.init
        (max (List.length m.outputs) 1)
        (fun _ -> Array.make m.cs_max Word.disc);
    out_n = Array.make (max (List.length m.outputs) 1) 0;
    conflicts = []; st_contributions = 0; st_resolutions = 0;
    st_fu_evals = 0; st_latches = 0 }

let reset t =
  Array.fill t.visible 0 (Array.length t.visible) Word.disc;
  Array.fill t.acc 0 (Array.length t.acc) Word.disc;
  Array.fill t.in_pending 0 (Array.length t.in_pending) false;
  t.pend_n <- 0;
  t.live_n <- 0;
  Array.blit t.reg_init 0 t.regs 0 (Array.length t.reg_init);
  Array.iter (fun (f : fu_spec) -> Fu_state.reset f.fu_state) t.fus;
  Array.fill t.fu_out 0 (Array.length t.fu_out) Word.disc;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) Word.disc) t.traces;
  Array.fill t.out_n 0 (Array.length t.out_n) 0;
  t.conflicts <- [];
  t.st_contributions <- 0;
  t.st_resolutions <- 0;
  t.st_fu_evals <- 0;
  t.st_latches <- 0

let[@inline] contribute t s v =
  t.st_contributions <- t.st_contributions + 1;
  if t.in_pending.(s) then t.acc.(s) <- Resolve.combine t.acc.(s) v
  else begin
    t.in_pending.(s) <- true;
    t.acc.(s) <- v;
    t.pend_ids.(t.pend_n) <- s;
    t.pend_n <- t.pend_n + 1
  end

(* Resolve last phase's contributions into this phase's visible values:
   live sinks not re-contributed release to DISC, pending sinks take
   their accumulated resolution, and a sink newly becoming ILLEGAL is
   localized as a conflict — the same two re-resolution cases as
   [Interp.flip_phase], over a swap of preallocated id arrays. *)
let flip t ~step ~phase =
  for i = 0 to t.live_n - 1 do
    let s = t.live_ids.(i) in
    if not t.in_pending.(s) then begin
      t.visible.(s) <- Word.disc;
      t.st_resolutions <- t.st_resolutions + 1
    end
  done;
  for i = 0 to t.pend_n - 1 do
    let s = t.pend_ids.(i) in
    let v = t.acc.(s) in
    if Word.is_illegal v && not (Word.is_illegal t.visible.(s)) then
      t.conflicts <- (step, phase, t.sink_name.(s)) :: t.conflicts;
    t.visible.(s) <- v;
    t.st_resolutions <- t.st_resolutions + 1
  done;
  let freed = t.live_ids in
  t.live_ids <- t.pend_ids;
  t.live_n <- t.pend_n;
  t.pend_ids <- freed;
  t.pend_n <- 0;
  for i = 0 to t.live_n - 1 do
    let s = t.live_ids.(i) in
    t.in_pending.(s) <- false;
    t.acc.(s) <- Word.disc
  done

let exec_step t step =
  let cm = Phase.to_int Phase.Cm and cr = Phase.to_int Phase.Cr in
  begin
    for pi = 0 to Phase.count - 1 do
      let phase = Phase.of_int_exn pi in
      flip t ~step ~phase;
      let acts = t.slots.(((step - 1) * Phase.count) + pi) in
      for a = 0 to Array.length acts - 1 do
        let { src; dst } = acts.(a) in
        let v =
          match src with
          | Sconst w -> w
          | Sreg r -> t.regs.(r)
          | Sbus s -> t.visible.(s)
          | Sfu f -> t.fu_out.(f)
        in
        contribute t dst v
      done;
      if pi = cm then
        for f = 0 to Array.length t.fus - 1 do
          let u = t.fus.(f) in
          t.fu_out.(f) <-
            Fu_state.step u.fu_state ~op_index:t.visible.(u.op_sink)
              t.visible.(u.in1_sink) t.visible.(u.in2_sink);
          t.st_fu_evals <- t.st_fu_evals + 1
        done
      else if pi = cr then begin
        for r = 0 to Array.length t.reg_in_sink - 1 do
          let v = t.visible.(t.reg_in_sink.(r)) in
          if not (Word.is_disc v) then begin
            t.regs.(r) <- v;
            t.st_latches <- t.st_latches + 1
          end
        done;
        for o = 0 to Array.length t.out_sink - 1 do
          let v = t.visible.(t.out_sink.(o)) in
          if not (Word.is_disc v) then begin
            let n = t.out_n.(o) in
            t.out_steps.(o).(n) <- step;
            t.out_vals.(o).(n) <- v;
            t.out_n.(o) <- n + 1
          end
        done;
        for r = 0 to Array.length t.reg_in_sink - 1 do
          t.traces.(r).(step - 1) <- t.regs.(r)
        done
      end
    done
  end

let observation t =
  { Observation.model_name = t.model.name; cs_max = t.model.cs_max;
    regs =
      List.mapi
        (fun i (r : Model.register) -> (r.reg_name, Array.copy t.traces.(i)))
        t.model.registers;
    outputs =
      List.mapi
        (fun o name ->
          ( name,
            List.init t.out_n.(o) (fun k ->
                (t.out_steps.(o).(k), t.out_vals.(o).(k))) ))
        t.model.outputs;
    conflicts = List.rev t.conflicts }

let run t =
  reset t;
  for step = 1 to t.model.cs_max do
    exec_step t step
  done;
  observation t

(* ---- control-step snapshots ------------------------------------- *)

(* The per-port write arrays, re-serialized as the single
   chronological list {!Interp} accumulates: per step, ports in
   declaration order. *)
let out_writes_upto t ~step =
  let nports = List.length t.model.outputs in
  let cursor = Array.make (max nports 1) 0 in
  let acc = ref [] in
  for s = 1 to step do
    List.iteri
      (fun o name ->
        let k = cursor.(o) in
        if k < t.out_n.(o) && t.out_steps.(o).(k) = s then begin
          acc := (name, (s, t.out_vals.(o).(k))) :: !acc;
          cursor.(o) <- k + 1
        end)
      t.model.outputs
  done;
  List.rev !acc

let capture t ~digest ~step =
  let m = t.model in
  { Snapshot.model_name = m.name;
    digest;
    step;
    regs =
      List.mapi
        (fun i (r : Model.register) -> (r.reg_name, t.regs.(i)))
        m.registers;
    fu_out =
      List.mapi (fun i (f : Model.fu) -> (f.fu_name, t.fu_out.(i))) m.fus;
    fu_slots =
      List.mapi
        (fun i (f : Model.fu) -> (f.fu_name, Fu_state.slots t.fus.(i).fu_state))
        m.fus;
    trace =
      List.mapi
        (fun i (r : Model.register) ->
          (r.reg_name, Array.sub t.traces.(i) 0 step))
        m.registers;
    out_writes = out_writes_upto t ~step;
    conflicts = Snapshot.sort_conflicts t.conflicts }

let snapshots_at t ~steps =
  List.iter
    (fun s ->
      if s < 0 || s > t.model.cs_max then
        invalid_arg
          (Printf.sprintf "Compiled.snapshots_at: step %d outside [0, %d]" s
             t.model.cs_max))
    steps;
  let want = List.sort_uniq compare steps in
  let digest = Snapshot.digest_of_model t.model in
  reset t;
  let snaps = ref [] in
  if List.mem 0 want then snaps := capture t ~digest ~step:0 :: !snaps;
  for step = 1 to t.model.cs_max do
    exec_step t step;
    if List.mem step want then snaps := capture t ~digest ~step :: !snaps
  done;
  List.rev !snaps

let snapshot_at t ~step =
  match snapshots_at t ~steps:[ step ] with
  | [ s ] -> s
  | _ -> assert false

let resume t ~(from : Snapshot.t) =
  Snapshot.validate_exn t.model from;
  reset t;
  List.iteri (fun i (_, v) -> t.regs.(i) <- v) from.regs;
  List.iteri (fun i (_, v) -> t.fu_out.(i) <- v) from.fu_out;
  List.iteri
    (fun i (_, slots) -> Fu_state.restore t.fus.(i).fu_state slots)
    from.fu_slots;
  List.iteri
    (fun i (_, a) -> Array.blit a 0 t.traces.(i) 0 (Array.length a))
    from.trace;
  List.iter
    (fun (name, (s, v)) ->
      List.iteri
        (fun o n ->
          if n = name then begin
            let k = t.out_n.(o) in
            t.out_steps.(o).(k) <- s;
            t.out_vals.(o).(k) <- v;
            t.out_n.(o) <- k + 1
          end)
        t.model.outputs)
    from.out_writes;
  t.conflicts <- List.rev from.conflicts;
  for step = from.step + 1 to t.model.cs_max do
    exec_step t step
  done;
  observation t

let last_stats t =
  { static_actions = t.static_actions; contributions = t.st_contributions;
    resolutions = t.st_resolutions; fu_evals = t.st_fu_evals;
    latches = t.st_latches }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v>schedule actions : %d@,contributions    : %d@,resolutions      \
     : %d@,unit evaluations : %d@,register latches : %d@]"
    s.static_actions s.contributions s.resolutions s.fu_evals s.latches
