type tamper = step:int -> phase:Phase.t -> Word.t -> Word.t

type saboteur = {
  sab_sink : string;
  sab_step : int;
  sab_phase : Phase.t;
  sab_value : Word.t;
}

type oscillator = {
  osc_sink : string;
  osc_step : int;
  osc_phase : Phase.t;
}

type t = {
  tampers : (string * tamper) list;
  drop_legs : int list;
  saboteurs : saboteur list;
  fu_latency : (string * int) list;
  oscillators : oscillator list;
}

let none =
  { tampers = []; drop_legs = []; saboteurs = []; fu_latency = [];
    oscillators = [] }

let is_none i =
  i.tampers = [] && i.drop_legs = [] && i.saboteurs = []
  && i.fu_latency = [] && i.oscillators = []

let tamper_for i name = List.assoc_opt name i.tampers
let latency_for i name = List.assoc_opt name i.fu_latency
let drops_leg i idx = List.mem idx i.drop_legs

let stuck v : tamper = fun ~step:_ ~phase:_ _ -> v

let transient ~step ~phase v : tamper =
 fun ~step:s ~phase:p clean ->
  if s = step && Phase.equal p phase then v else clean

let stuck_sink ~sink v = { none with tampers = [ (sink, stuck v) ] }

let transient_sink ~sink ~step ~phase v =
  { none with tampers = [ (sink, transient ~step ~phase v) ] }

let dropped_leg idx = { none with drop_legs = [ idx ] }

let extra_driver ~sink ~step ~phase v =
  if Phase.equal phase Phase.Cr then
    invalid_arg "Inject.extra_driver: a driver cannot be released past cr";
  { none with
    saboteurs =
      [ { sab_sink = sink; sab_step = step; sab_phase = phase;
          sab_value = v } ] }

let fu_latency ~fu latency =
  if latency < 1 then invalid_arg "Inject.fu_latency: latency < 1";
  { none with fu_latency = [ (fu, latency) ] }

let oscillator ~sink ~step ~phase =
  { none with
    oscillators = [ { osc_sink = sink; osc_step = step; osc_phase = phase } ] }

let merge a b =
  { tampers = a.tampers @ b.tampers;
    drop_legs = a.drop_legs @ b.drop_legs;
    saboteurs = a.saboteurs @ b.saboteurs;
    fu_latency = a.fu_latency @ b.fu_latency;
    oscillators = a.oscillators @ b.oscillators }
