(** Phase-compiled execution of static models — the fast path.

    A conflict-free clock-free model has a {e static} schedule: the
    paper's delta-cycle law pins every activity to one (control step,
    phase) slot, so the event queue, the waiter tables and the process
    machinery of the kernel are pure overhead.  [of_model] flattens an
    elaborated model (via {!Sched}) into per-(step, phase) action
    arrays — bus drives, operation selections, unit evaluations,
    register latches — over integer-indexed value buffers; [run]
    executes that schedule with no event queue, no closures and no
    allocation in the hot loop (conflicts, when they happen, allocate
    their report entries).

    The executor implements exactly the dedicated semantics of
    {!Interp} (one-phase-lagged visibility, the resolution monoid,
    newly-ILLEGAL conflict localization), so for every model the three
    engines agree on the full {!Observation.t}; the differential
    qcheck suite ([test/test_compiled.ml]) pins this.

    Most injection plans compile into the schedule as an overlay
    (see {!Sched}): dropped legs vanish from their slots, saboteurs
    become extra constant actions, tampers wrap re-resolutions and the
    latched register view, latency overrides rewrite unit pipelines.
    What remains kernel-only: oscillators (no static schedule),
    saboteurs contributing during [cr] (they release into the next
    step), and the [Halt] / [Degrade] conflict policies — see
    {!compilable} and the dispatch in [bin/csrtl.ml] and
    {!Csrtl_fault.Campaign}. *)

type t
(** A compiled plan: the static schedule plus preallocated run-state
    buffers.  Reusable — each {!run} resets the buffers — but not
    shareable between domains; compile one plan per domain. *)

type stats = {
  static_actions : int;  (** contribute actions in the flattened schedule *)
  contributions : int;  (** dynamic sink contributions of the last run *)
  resolutions : int;  (** visibility flips applied to some sink *)
  fu_evals : int;
  latches : int;  (** register latches that stored a value *)
}

val compilable :
  ?inject:Inject.t -> ?config:Simulate.config -> Model.t ->
  (unit, string) result
(** [Ok ()] when the model/run combination has a static schedule the
    compiler covers; [Error why] names {e every} feature that forces
    the kernel path ("; "-separated): an oscillator in the plan, a
    saboteur contributing during [cr], or a conflict policy other than
    [Record].  Tampers, dropped legs, non-[cr] saboteurs and latency
    overrides compile. *)

val of_model : ?inject:Inject.t -> Model.t -> t
(** Validates ({!Model.validate_exn}) and compiles, realizing [inject]
    as a schedule overlay.  Models with dynamic conflicts are fine —
    resolution and ILLEGAL localization are part of the schedule.
    Raises [Invalid_argument] on plans {!compilable} rejects. *)

val of_sched : Sched.t -> t
(** Executor state over an already-compiled schedule — {!of_model}
    minus the compile.  The schedule must come from {!Sched.compile}
    (or {!Sched.overlay}) of a validated model; campaigns use this to
    run the golden plan they already compiled for the batch executor
    instead of compiling it again. *)

val model : t -> Model.t

val cycles : t -> int
(** What the kernel would report: {!Simulate.expected_cycles_injected}
    — the law is the compiler's soundness argument, and the
    differential suite checks the kernel agrees. *)

val run : t -> Observation.t
(** Execute the schedule once from the model's initial state.  The
    returned observation owns fresh arrays (safe to keep across
    subsequent runs of the same plan). *)

val snapshot_at : t -> step:int -> Snapshot.t
(** Execute from the initial state through control step [step] and
    capture the machine state at that boundary (0 captures the initial
    state).  Raises [Invalid_argument] outside [0, cs_max]. *)

val snapshots_at : t -> steps:int list -> Snapshot.t list
(** One run, capturing every requested boundary; ascending order,
    duplicates removed. *)

val resume : t -> from:Snapshot.t -> Observation.t
(** Reinstall a snapshot (from any engine) and execute the remaining
    control steps; equals the uninterrupted {!run} observation.
    Raises [Invalid_argument] when the snapshot does not validate
    against the plan's model. *)

val last_stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
