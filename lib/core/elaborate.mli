(** Elaboration: turn a {!Model.t} into kernel signals and processes.

    Mirrors the paper's §2.7 structural VHDL architecture: one
    CONTROLLER instance, one resolved signal per bus / unit input
    port / register input / op-select port, one plain signal per
    unit output / register output / entity port, one REG process per
    register, one module process per unit, and one TRANS process per
    transfer leg. *)

type t = {
  kernel : Csrtl_kernel.Scheduler.t;
  model : Model.t;
  ctrl : Controller.t;
  signal_of : Transfer.endpoint -> Csrtl_kernel.Signal.t;
      (** lookup by endpoint; raises [Invalid_argument] naming the
          resource and the reference site for unknown names *)
  find_signal : string -> Csrtl_kernel.Signal.t option;
      (** non-raising lookup by canonical signal name ([R.out],
          [ADD.in1], bus and port names, ...) *)
  fu_states : (string * Fu_state.t) list;
      (** the pipeline state each module process closes over, in
          declaration order — read by {!Simulate.snapshot_at} *)
}

val build :
  ?kernel:Csrtl_kernel.Scheduler.t ->
  ?wait_impl:[ `Keyed | `Predicate ] ->
  ?resolution_impl:[ `Incremental | `Fold ] ->
  ?inject:Inject.t ->
  ?degrade_illegal:bool ->
  ?from:Snapshot.t ->
  Model.t -> t
(** Validates the model ({!Model.validate_exn}) and instantiates all
    processes on a fresh kernel (or the given one).  Running the
    kernel then simulates the model; use {!Simulate.run} for the
    packaged observation flow.

    [wait_impl] selects how TRANS/REG/module processes suspend:
    [`Keyed] (default) uses the kernel's value-indexed waits, so a
    process is only scanned when its phase value occurs; [`Predicate]
    is the literal VHDL [wait until CS = S and PH = P], re-evaluated
    on every control-signal event.  [resolution_impl] likewise selects
    O(1) counter-based bus resolution ([`Incremental], default) or a
    fold over all drivers per update ([`Fold]).  All four combinations
    are observably identical (tested); the ablation benches quantify
    the differences.

    [inject] realizes a fault-injection plan ({!Inject}) on the
    kernel without touching the model: tampers wrap the resolution
    functions of the named sinks, dropped legs skip their TRANS
    instantiation, saboteurs become extra driver processes, and
    latency overrides replace the per-unit pipeline depth.
    [degrade_illegal] switches the REG processes to fail-soft
    latching: an ILLEGAL register input is ignored instead of stored
    (used by {!Simulate}'s [Degrade] policy).

    [from] resumes from a control-step boundary: the controller starts
    at the snapshot step, register and unit-output initial assignments
    come from the snapshot (the unit pipelines are restored in place),
    scheduled inputs begin at the boundary's value, and every
    statically-scheduled process (TRANS leg, op selection, saboteur,
    oscillator) whose slot lies at or before the boundary is not
    elaborated — the quiescence property of SEMANTICS §10 makes this
    complete.  Raises [Invalid_argument] when the snapshot does not
    validate against the model, or when a latency override conflicts
    with the snapshot's pipeline depth. *)

val bus_signals : t -> (string * Csrtl_kernel.Signal.t) list
val register_outputs : t -> (string * Csrtl_kernel.Signal.t) list
val output_ports : t -> (string * Csrtl_kernel.Signal.t) list
