type t =
  | Add | Sub | Mul
  | Band | Bor | Bxor
  | Shl | Shr | Asr
  | Shli of int | Shri of int | Asri of int
  | Addi of int | Subi of int | Muli of int
  | Mulfx of int
  | Min | Max
  | Eq | Lt | Lts
  | Pass
  | Neg | Bnot | Abs
  | Const of int
  | Mac

let arity = function
  | Const _ -> 0
  | Pass | Neg | Bnot | Abs | Shli _ | Shri _ | Asri _ | Addi _ | Subi _
  | Muli _ ->
    1
  | Add | Sub | Mul | Band | Bor | Bxor | Shl | Shr | Asr | Min | Max | Eq
  | Lt | Lts | Mac | Mulfx _ ->
    2

let is_stateful = function
  | Mac -> true
  | Add | Sub | Mul | Band | Bor | Bxor | Shl | Shr | Asr | Shli _ | Shri _
  | Asri _ | Addi _ | Subi _ | Muli _ | Mulfx _ | Min | Max | Eq | Lt | Lts
  | Pass | Neg | Bnot | Abs | Const _ ->
    false

let bool_word b = if b then 1 else 0

(* Shift amounts are clamped to the word width: shifting a 32-bit
   value by >= 32 yields 0 (or the sign fill for [Asr]). *)
let clamp_shift n = if n < 0 then 0 else min n Word.width

let eval op (args : int array) =
  let a i = args.(i) in
  let m = Word.mask in
  match op with
  | Add -> m (a 0 + a 1)
  | Sub -> m (a 0 - a 1)
  | Mul -> m (a 0 * a 1)
  | Band -> a 0 land a 1
  | Bor -> a 0 lor a 1
  | Bxor -> a 0 lxor a 1
  | Shl -> m (a 0 lsl clamp_shift (a 1))
  | Shr -> a 0 lsr clamp_shift (a 1)
  | Asr -> m (Word.to_signed (a 0) asr clamp_shift (a 1))
  | Shli n -> m (a 0 lsl clamp_shift n)
  | Shri n -> a 0 lsr clamp_shift n
  | Asri n -> m (Word.to_signed (a 0) asr clamp_shift n)
  | Addi n -> m (a 0 + n)
  | Subi n -> m (a 0 - n)
  | Muli n -> m (a 0 * n)
  | Mulfx n ->
    m ((Word.to_signed (a 0) * Word.to_signed (a 1)) asr clamp_shift n)
  | Min -> min (a 0) (a 1)
  | Max -> max (a 0) (a 1)
  | Eq -> bool_word (a 0 = a 1)
  | Lt -> bool_word (a 0 < a 1)
  | Lts -> bool_word (Word.to_signed (a 0) < Word.to_signed (a 1))
  | Pass -> a 0
  | Neg -> m (- Word.to_signed (a 0))
  | Bnot -> m (lnot (a 0))
  | Abs -> m (abs (Word.to_signed (a 0)))
  | Const c -> m c
  | Mac -> m (a 2 + (a 0 * a 1))

(* [eval] without the operand array: the batched executor calls this
   once per unit per step per variant, so it must not allocate. *)
let eval2 op x y =
  let m = Word.mask in
  match op with
  | Add -> m (x + y)
  | Sub -> m (x - y)
  | Mul -> m (x * y)
  | Band -> x land y
  | Bor -> x lor y
  | Bxor -> x lxor y
  | Shl -> m (x lsl clamp_shift y)
  | Shr -> x lsr clamp_shift y
  | Asr -> m (Word.to_signed x asr clamp_shift y)
  | Shli n -> m (x lsl clamp_shift n)
  | Shri n -> x lsr clamp_shift n
  | Asri n -> m (Word.to_signed x asr clamp_shift n)
  | Addi n -> m (x + n)
  | Subi n -> m (x - n)
  | Muli n -> m (x * n)
  | Mulfx n -> m ((Word.to_signed x * Word.to_signed y) asr clamp_shift n)
  | Min -> min x y
  | Max -> max x y
  | Eq -> bool_word (x = y)
  | Lt -> bool_word (x < y)
  | Lts -> bool_word (Word.to_signed x < Word.to_signed y)
  | Pass -> x
  | Neg -> m (- Word.to_signed x)
  | Bnot -> m (lnot x)
  | Abs -> m (abs (Word.to_signed x))
  | Const c -> m c
  | Mac -> m (x * y)  (* accumulator folded in by [apply] *)

let apply op ~prev x y =
  let n = arity op in
  let any_illegal =
    match n with
    | 0 -> false
    | 1 -> Word.is_illegal x
    | _ -> Word.is_illegal x || Word.is_illegal y
  in
  let all_disc =
    match n with
    | 0 -> false
    | 1 -> Word.is_disc x
    | _ -> Word.is_disc x && Word.is_disc y
  in
  let any_disc =
    match n with
    | 0 -> false
    | 1 -> Word.is_disc x
    | _ -> Word.is_disc x || Word.is_disc y
  in
  if any_illegal then Word.illegal
  else if all_disc then
    (* Paper ADD: both operands DISC -> DISC.  A MAC with no new
       operands holds its accumulator. *)
    if is_stateful op then prev else Word.disc
  else if any_disc then
    (* "either both operand values are natural values or both are
       DISC" — a partial supply is a scheduling error. *)
    Word.illegal
  else
    match op with
    | Mac ->
      if Word.is_illegal prev then Word.illegal
      else
        let acc = if Word.is_disc prev then 0 else prev in
        Word.mask (acc + (x * y))
    | Add | Sub | Mul | Band | Bor | Bxor | Shl | Shr | Asr | Shli _
    | Shri _ | Asri _ | Addi _ | Subi _ | Muli _ | Mulfx _ | Min | Max
    | Eq | Lt | Lts | Pass | Neg | Bnot | Abs | Const _ ->
      eval2 op x y

let to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Band -> "and"
  | Bor -> "or"
  | Bxor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Asr -> "asr"
  | Shli n -> Printf.sprintf "shli:%d" n
  | Shri n -> Printf.sprintf "shri:%d" n
  | Asri n -> Printf.sprintf "asri:%d" n
  | Addi n -> Printf.sprintf "addi:%d" n
  | Subi n -> Printf.sprintf "subi:%d" n
  | Muli n -> Printf.sprintf "muli:%d" n
  | Mulfx n -> Printf.sprintf "mulfx:%d" n
  | Min -> "min"
  | Max -> "max"
  | Eq -> "eq"
  | Lt -> "lt"
  | Lts -> "lts"
  | Pass -> "pass"
  | Neg -> "neg"
  | Bnot -> "not"
  | Abs -> "abs"
  | Const c -> Printf.sprintf "const:%d" c
  | Mac -> "mac"

let of_string s =
  let simple =
    [ ("add", Add); ("sub", Sub); ("mul", Mul); ("and", Band); ("or", Bor);
      ("xor", Bxor); ("shl", Shl); ("shr", Shr); ("asr", Asr); ("min", Min);
      ("max", Max); ("eq", Eq); ("lt", Lt); ("lts", Lts); ("pass", Pass);
      ("neg", Neg); ("not", Bnot); ("abs", Abs); ("mac", Mac) ]
  in
  match List.assoc_opt s simple with
  | Some op -> Some op
  | None ->
    (match String.index_opt s ':' with
     | None -> None
     | Some i ->
       let head = String.sub s 0 i in
       let tail = String.sub s (i + 1) (String.length s - i - 1) in
       (match int_of_string_opt tail with
        | None -> None
        | Some n ->
          (match head with
           | "shli" -> Some (Shli n)
           | "shri" -> Some (Shri n)
           | "asri" -> Some (Asri n)
           | "addi" -> Some (Addi n)
           | "subi" -> Some (Subi n)
           | "muli" -> Some (Muli n)
           | "mulfx" -> Some (Mulfx n)
           | "const" -> Some (Const n)
           | _ -> None)))

let equal (a : t) (b : t) = a = b
let pp ppf op = Format.pp_print_string ppf (to_string op)

let commutative = function
  | Add | Mul | Band | Bor | Bxor | Min | Max | Eq -> true
  | Mulfx _ -> true
  | Sub | Shl | Shr | Asr | Shli _ | Shri _ | Asri _ | Addi _ | Subi _
  | Muli _ | Lt | Lts | Pass | Neg | Bnot | Abs | Const _ | Mac ->
    false
