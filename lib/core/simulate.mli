(** Event-driven simulation of a clock-free model with observation.

    Elaborates the model onto the kernel, attaches monitors (register
    snapshots at the start of each step, output-port sampling at [cr],
    ILLEGAL localization on every resolved sink), runs to quiescence,
    and packages an {!Observation.t} plus kernel statistics. *)

type illegal_policy =
  | Halt  (** stop the kernel at the first localized conflict *)
  | Record  (** keep simulating, collect every conflict (default) *)
  | Degrade
      (** fail-soft: conflicts are recorded but registers refuse to
          latch ILLEGAL and output ports refuse to sample it, so the
          machine keeps its last good state *)

type outcome =
  | Finished  (** ran to quiescence *)
  | Halted of int * Phase.t * string
      (** [Halt] policy stopped the run at the first conflict —
          (control step, phase, sink) of that conflict *)
  | Watchdog_tripped of int
      (** the watchdog cut the run after this many delta cycles *)
  | Kernel_overflow of Csrtl_kernel.Types.delta_overflow
      (** runaway delta iteration within one time point; the kernel is
          poisoned (see {!Csrtl_kernel.Scheduler.run}) but the partial
          observation is still reported *)

type config = {
  wait_impl : [ `Keyed | `Predicate ];
  resolution_impl : [ `Incremental | `Fold ];
  on_illegal : illegal_policy;
  watchdog : bool;
}
(** Everything about a kernel run that is policy rather than model:
    the wait and resolution implementations (ablation choices), the
    conflict policy, and the watchdog.  Collected in one record so
    campaign drivers, the parallel engine and the CLI thread a single
    value instead of four optional arguments. *)

val default : config
(** [`Keyed], [`Incremental], [Record], watchdog off — the defaults
    {!run} has always had. *)

type result = {
  obs : Observation.t;
  cycles : int;  (** simulation cycles executed: [6 * cs_max], plus one
                     when a transfer writes back in the final step *)
  stats : Csrtl_kernel.Types.stats;
  elaborated : Elaborate.t;
  outcome : outcome;
}

val run_cfg :
  ?vcd:Buffer.t -> ?trace:bool -> ?inject:Inject.t -> ?config:config ->
  Model.t -> result
(** Like {!run}, with the four policy choices bundled in a {!config}
    (default {!default}). *)

val run :
  ?vcd:Buffer.t -> ?trace:bool -> ?wait_impl:[ `Keyed | `Predicate ] ->
  ?resolution_impl:[ `Incremental | `Fold ] -> ?inject:Inject.t ->
  ?on_illegal:illegal_policy -> ?watchdog:bool ->
  Model.t -> result
(** [vcd] streams a waveform of all signals (delta-cycle axis).
    [trace] additionally prints each event to the [csrtl.sim] log
    source (debug level).  [inject] realizes a fault-injection plan
    ({!Inject}) during elaboration.  [on_illegal] selects the failure
    policy (default [Record], today's behaviour).  [watchdog] (default
    off) bounds the run at {!expected_cycles} plus a fixed slack, so a
    fault that stalls or livelocks the controller surfaces as
    [Watchdog_tripped] instead of a hang.  Never raises for in-model
    failures: kernel delta overflow comes back as [Kernel_overflow]. *)

val expected_cycles : Model.t -> int
(** The paper's delta-cycle law for this model: [6 * cs_max], plus the
    trailing driver-release/register-update cycle if any transfer
    writes back in step [cs_max]. *)

val expected_cycles_from : Model.t -> int -> int
(** The law for the segment of a run resumed at boundary [s0]:
    [6 * (cs_max - s0)] plus the same trailing cycle.
    [expected_cycles m = expected_cycles_from m 0]. *)

val expected_cycles_injected : inject:Inject.t -> Model.t -> int -> int
(** The law for a {e faulted} segment resumed at boundary [s0]: an
    injection moves only the trailing driver-release edge, so the
    count is [6 * (cs_max - s0)] plus one exactly when a final-step
    [wb] driver survives it — a [wb] leg the plan does not drop, or a
    saboteur contributing at [(cs_max, wb)].  Tampers and latency
    overrides never change the count (they rewrite values, not
    transactions).  This is what the batch executor reports as a
    variant's kernel cycles; the differential suite pins it against
    the event kernel.  [expected_cycles_injected ~inject:Inject.none m
    s0 = expected_cycles_from m s0]. *)

val snapshot_at : ?config:config -> step:int -> Model.t -> Snapshot.t
(** Run the model uninjected through control step [step] (0 means the
    initial state) and capture the machine state at that boundary —
    the kernel realization of {!Interp.snapshot_at}; for the same
    model and step all engines produce byte-identical serializations.
    Raises [Invalid_argument] when [step] is outside [0, cs_max]. *)

val resume :
  ?vcd:Buffer.t -> ?trace:bool -> ?inject:Inject.t -> ?config:config ->
  from:Snapshot.t -> Model.t -> result
(** Reinstall a snapshot (from any engine) and run the remaining
    control steps on the kernel.  Without [inject] the observation
    equals the uninterrupted run's; the reported [cycles] cover only
    the resumed segment ({!expected_cycles_from}).  With [inject] the
    result is meaningful when the fault cannot act at or before the
    boundary ({!Csrtl_fault.Fault.first_step}); the watchdog, when
    enabled, bounds the segment by its own law.  Raises
    [Invalid_argument] when the snapshot does not validate. *)

val watchdog_slack : int
(** Delta cycles of grace beyond {!expected_cycles} before the
    watchdog classifies a run as hung. *)

val pp_outcome : Format.formatter -> outcome -> unit
