(** Textual exchange format for clock-free models (".rtm").

    A line-based format mirroring the paper's tuple notation, used by
    the [csrtl] command-line tool and the test corpus:

    {v
    model fig1
    csmax 7
    reg R1 init 3
    reg R2 init 4
    bus B1
    bus B2
    unit ADD ops add latency 1
    # srcA busA srcB busB read fu[:op] write wbus dst
    transfer R1 B1 R2 B2 5 ADD 6 B1 R1
    v}

    Sources named [X!] refer to input ports, destinations [Y!] to
    output ports; ["-"] marks an absent tuple field.  [unit]
    attributes: [ops <op>[,<op>...]], [latency <n>], [nonpipelined],
    [transparent-illegal].  [input] drives: [const <w>] or
    [schedule <step>:<w> ...].  [#] starts a comment. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val parse :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string -> string ->
  (Model.t * Csrtl_diag.Diag.t list, Csrtl_diag.Diag.t list) result
(** Total multi-error parse for untrusted input: never raises; each
    broken line yields one located diagnostic (rule [rtm.parse]) and
    parsing continues on the next line, so one pass reports them all.
    Resource guards cap input bytes, declared resources, steps and
    transfers (rules [limits.input-bytes], [limits.model]).  [Ok]
    carries any non-fatal diagnostics; the model is {e not} validated
    (use {!Model.validate_diags}). *)

val of_string : string -> Model.t
(** Parse; the result is {e not} validated (use {!Model.validate} so
    tools can report conflicts in invalid files).  Raises
    {!Parse_error} with the first diagnostic; prefer {!parse} on
    untrusted input. *)

val of_file : string -> Model.t

val to_string : Model.t -> string
(** Render a model; [of_string (to_string m)] equals [m] up to input
    schedule normalization. *)

val to_file : Model.t -> string -> unit
