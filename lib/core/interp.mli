(** Direct control-step interpreter — the paper's dedicated semantics.

    Executes a model by iterating steps and phases directly, with no
    event kernel: values contributed by transfers during one phase
    are resolved and become visible in the next phase, exactly the
    one-delta lag of the VHDL realization.  §2.7 argues this "close
    relationship of the register transfer model to the VHDL
    simulation delta cycle allows to prove the consistency of the
    dedicated semantics with VHDL simulation semantics";
    {!Csrtl_verify.Consist} checks that theorem empirically against
    {!Simulate}.  The interpreter is also the fast execution path
    (see the [speed/kernel-vs-interp] ablation bench). *)

exception Unstable of int * Phase.t * string
(** Raised at the trigger slot of an injected {!Inject.oscillator}:
    the phase the oscillating driver engages in has no fixpoint, so
    the dedicated semantics cannot assign the run a meaning.  The
    kernel path exhibits the same fault as a livelock (watchdog trip
    or delta overflow); {!Csrtl_fault.Campaign} classifies both as
    hung. *)

val run : ?inject:Inject.t -> Model.t -> Observation.t
(** Validates and runs the model for [cs_max] control steps.

    [inject] applies the same fault-injection plan the kernel path
    realizes in {!Elaborate.build}: sink tampers rewrite each
    re-resolution (value or driver-release) at its visibility flip,
    dropped legs never contribute, saboteurs contribute like an extra
    transfer leg, and latency overrides reshape the unit pipelines.
    Tampers are supported on buses, ports and register outputs;
    register-output tampers must be step/phase-insensitive (stuck
    faults) for the two paths to agree on the reported conflict
    point.  Saboteur and oscillator sinks must exist in the model
    ([Invalid_argument] otherwise, mirroring the kernel elaboration);
    oscillators raise {!Unstable}. *)

type hook = step:int -> phase:Phase.t -> sink:string -> Word.t -> unit

val run_with_hook :
  ?on_visible:hook -> ?inject:Inject.t -> Model.t -> Observation.t
(** Like {!run}, also reporting every resolved sink value as it
    becomes visible (used by the symbolic/diagnostic layers). *)

val snapshot_at : step:int -> Model.t -> Snapshot.t
(** Run the model uninjected through control step [step] (0 means
    before the first step) and capture the machine state at that
    boundary.  Raises [Invalid_argument] when [step] is outside
    [0, cs_max]. *)

val snapshots_at : steps:int list -> Model.t -> Snapshot.t list
(** One golden run, capturing every requested boundary; returned in
    ascending step order with duplicates removed. *)

val resume : ?inject:Inject.t -> from:Snapshot.t -> Model.t -> Observation.t
(** Reinstall a snapshot and run the remaining [cs_max - from.step]
    control steps.  Without [inject], the result equals the
    uninterrupted {!run} observation-for-observation.  With [inject],
    this is only meaningful when the injection cannot act before the
    snapshot boundary (the campaign guarantees it via
    {!Csrtl_fault.Fault.first_step}); latency overrides that reshape a
    unit pipeline are rejected with [Invalid_argument].  Raises
    [Invalid_argument] when the snapshot does not validate against the
    model. *)
