module Diag = Csrtl_diag.Diag

exception Parse_error of int * string

(* Internal: abandons the current line during diagnostic parsing; the
   driver records the diagnostic and moves on to the next line. *)
exception Line_error of Diag.t

type ctx = { file : string option; line : int }

(* Words with their 1-based starting column. *)
let split_words s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\t') do
      incr i
    done;
    if !i < n then begin
      let start = !i in
      while !i < n && s.[!i] <> ' ' && s.[!i] <> '\t' do
        incr i
      done;
      out := (String.sub s start (!i - start), start + 1) :: !out
    end
  done;
  List.rev !out

let fail_at ctx col len fmt =
  Format.kasprintf
    (fun m ->
      raise
        (Line_error
           (Diag.error
              ~span:(Diag.span ?file:ctx.file ~len ~line:ctx.line ~col ())
              ~rule:"rtm.parse" "%s" m)))
    fmt

let fail ctx (s, col) fmt = fail_at ctx col (String.length s) fmt

let strip_comment s =
  match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let parse_word ctx ((s, _) as w) =
  match Word.of_string s with
  | Some v -> v
  | None -> fail ctx w "expected a value (natural, DISC or ILLEGAL): %s" s

let parse_op ctx ((s, _) as w) =
  match Ops.of_string s with
  | Some op -> op
  | None -> fail ctx w "unknown operation %s" s

(* [FU] or [FU:op] *)
let parse_fu_field ctx (s, col) =
  match String.index_opt s ':' with
  | None -> (s, None)
  | Some i ->
    let fu = String.sub s 0 i in
    let op = String.sub s (i + 1) (String.length s - i - 1) in
    (fu, Some (parse_op ctx (op, col + i + 1)))

let parse_source (s, _) =
  if s = "-" then None
  else if String.length s > 1 && s.[String.length s - 1] = '!' then
    Some (Transfer.From_input (String.sub s 0 (String.length s - 1)))
  else Some (Transfer.From_reg s)

let parse_dest (s, _) =
  if s = "-" then None
  else if String.length s > 1 && s.[String.length s - 1] = '!' then
    Some (Transfer.To_output (String.sub s 0 (String.length s - 1)))
  else Some (Transfer.To_reg s)

let parse_opt_field (s, _) = if s = "-" then None else Some s

let parse_opt_int ctx ((s, _) as w) =
  if s = "-" then None
  else
    match int_of_string_opt s with
    | Some n -> Some n
    | None -> fail ctx w "expected a step number or -: %s" s

let parse_unit_attrs ctx words =
  let ops = ref [] in
  let latency = ref 1 in
  let pipelined = ref true in
  let sticky = ref true in
  let rec go = function
    | [] -> ()
    | ("ops", _) :: (spec, scol) :: rest ->
      let parts = String.split_on_char ',' spec in
      let col = ref scol in
      ops :=
        List.map
          (fun p ->
            let op = parse_op ctx (p, !col) in
            col := !col + String.length p + 1;
            op)
          parts;
      go rest
    | ("latency", _) :: ((n, _) as nw) :: rest ->
      (match int_of_string_opt n with
       | Some v when v >= 1 -> latency := v
       | Some _ | None -> fail ctx nw "bad latency %s" n);
      go rest
    | ("nonpipelined", _) :: rest ->
      pipelined := false;
      go rest
    | ("pipelined", _) :: rest ->
      pipelined := true;
      go rest
    | ("transparent-illegal", _) :: rest ->
      sticky := false;
      go rest
    | ((w, _) as ww) :: _ -> fail ctx ww "unknown unit attribute %s" w
  in
  go words;
  (match words with
   | [] when !ops = [] -> fail_at ctx 1 1 "unit needs an ops list"
   | ((_, col) as w) :: _ when !ops = [] ->
     fail_at ctx col (String.length (fst w)) "unit needs an ops list"
   | _ -> ());
  (!ops, !latency, !pipelined, !sticky)

let parse_input_drive ctx words =
  match words with
  | [ ("const", _); v ] -> Model.Const (parse_word ctx v)
  | ("schedule", _) :: entries when entries <> [] ->
    let parse_entry ((e, col) as ew) =
      match String.index_opt e ':' with
      | None -> fail ctx ew "schedule entry must be step:value, got %s" e
      | Some i ->
        let s = String.sub e 0 i in
        let v = String.sub e (i + 1) (String.length e - i - 1) in
        (match int_of_string_opt s with
         | Some step -> (step, parse_word ctx (v, col + i + 1))
         | None -> fail ctx ew "bad step in schedule entry %s" e)
    in
    Model.Schedule (List.sort Stdlib.compare (List.map parse_entry entries))
  | [] -> Model.Const Word.disc
  | ((w, _) as ww) :: _ -> fail ctx ww "unknown input drive %s" w

let parse ?(limits = Diag.Limits.default) ?file text =
  let diags = ref [] in
  let record d = diags := d :: !diags in
  match Diag.Limits.check_input_bytes ?file limits text with
  | Some d -> Error [ d ]
  | None ->
    let name = ref "model" in
    let cs_max = ref None in
    let registers = ref [] in
    let fus = ref [] in
    let buses = ref [] in
    let inputs = ref [] in
    let outputs = ref [] in
    let transfers = ref [] in
    let seen_regs = Hashtbl.create 16 in
    let seen_fus = Hashtbl.create 16 in
    (* transfer step operands, remembered with their source positions
       so the range check against csmax (which may appear later in the
       file) can still point at the offending word *)
    let step_sites = ref [] in
    let note_step ctx what ((w, col) : string * int) v =
      match v with
      | None -> ()
      | Some n ->
        step_sites :=
          (ctx.line, col, String.length w, what, n) :: !step_sites
    in
    let handle_line ctx raw =
      let words = split_words (strip_comment raw) in
      match words with
      | [] -> ()
      | [ ("model", _); (n, _) ] -> name := n
      | [ ("csmax", _); nw ] | [ ("cs_max", _); nw ] ->
        (match int_of_string_opt (fst nw) with
         | Some v when v >= 0 && v <= limits.Diag.Limits.max_steps ->
           cs_max := Some v
         | Some v when v > limits.Diag.Limits.max_steps ->
           fail ctx nw "csmax %d exceeds the step limit %d" v
             limits.Diag.Limits.max_steps
         | Some _ | None -> fail ctx nw "bad csmax %s" (fst nw))
      | ("reg", _) :: ((n, _) as nw) :: rest -> (
        if Hashtbl.mem seen_regs n then
          fail ctx nw "register %s is declared twice" n;
        Hashtbl.replace seen_regs n ();
        match rest with
        | [] -> registers := Model.register n :: !registers
        | [ ("init", _); v ] ->
          registers :=
            Model.register ~init:(parse_word ctx v) n :: !registers
        | w :: _ -> fail ctx w "reg takes at most `init <value>`")
      | ("unit", _) :: ((n, _) as nw) :: attrs ->
        if Hashtbl.mem seen_fus n then
          fail ctx nw "unit %s is declared twice" n;
        Hashtbl.replace seen_fus n ();
        let ops, latency, pipelined, sticky_illegal =
          parse_unit_attrs ctx attrs
        in
        fus :=
          Model.fu ~latency ~pipelined ~sticky_illegal ~ops n :: !fus
      | [ ("bus", _); (n, _) ] -> buses := n :: !buses
      | ("bus", _) :: ns when ns <> [] ->
        buses := List.rev_map fst ns @ !buses
      | ("input", _) :: (n, _) :: drive ->
        inputs :=
          { Model.in_name = n; drive = parse_input_drive ctx drive }
          :: !inputs
      | [ ("output", _); (n, _) ] -> outputs := n :: !outputs
      | [ ("transfer", _); sa; ba; sb; bb; rs; fu_field; ws; wb; dst ] ->
        let fu, op = parse_fu_field ctx fu_field in
        let read_step = parse_opt_int ctx rs in
        let write_step = parse_opt_int ctx ws in
        note_step ctx "read" rs read_step;
        note_step ctx "write" ws write_step;
        transfers :=
          { Transfer.src_a = parse_source sa;
            bus_a = parse_opt_field ba;
            src_b = parse_source sb;
            bus_b = parse_opt_field bb;
            read_step; fu; op;
            write_step;
            write_bus = parse_opt_field wb;
            dst = parse_dest dst }
          :: !transfers
      | (("transfer", _) as w) :: _ ->
        fail ctx w "transfer needs 9 tuple fields"
      | ((w, _) as ww) :: _ -> fail ctx ww "unknown directive %s" w
    in
    List.iteri
      (fun i l ->
        let ctx = { file; line = i + 1 } in
        try handle_line ctx l with Line_error d -> record d)
      (String.split_on_char '\n' text);
    let check_count what count cap =
      if count > cap then
        record
          (Diag.error ~rule:"limits.model"
             "%d %s exceed the limit of %d" count what cap)
    in
    check_count "registers" (List.length !registers)
      limits.Diag.Limits.max_registers;
    check_count "units" (List.length !fus) limits.Diag.Limits.max_fus;
    check_count "buses" (List.length !buses) limits.Diag.Limits.max_buses;
    check_count "transfers" (List.length !transfers)
      limits.Diag.Limits.max_transfers;
    (match !cs_max with
     | Some n ->
       List.iter
         (fun (line, col, len, what, v) ->
           if v < 1 || v > n then
             record
               (Diag.error
                  ~span:{ Diag.file; line; col; len }
                  ~rule:"rtm.parse" "%s step %d outside [1, %d]" what v n))
         !step_sites
     | None ->
       record
         (Diag.error
            ~span:{ Diag.file; line = 1; col = 1; len = 1 }
            ~rule:"rtm.parse" "missing csmax directive"));
    let diags = List.stable_sort Diag.by_position (List.rev !diags) in
    if Diag.has_errors diags then Error diags
    else
      Ok
        ({ Model.name = !name;
           cs_max = Option.value ~default:0 !cs_max;
           registers = List.rev !registers;
           fus = List.rev !fus;
           buses = List.rev !buses;
           inputs = List.rev !inputs;
           outputs = List.rev !outputs;
           transfers = List.rev !transfers },
         diags)

let of_string text =
  match parse ~limits:Diag.Limits.unlimited text with
  | Ok (m, _) -> m
  | Error diags ->
    let d = List.find (fun d -> d.Diag.severity = Diag.Error) diags in
    let line = match d.Diag.span with Some s -> s.Diag.line | None -> 0 in
    raise (Parse_error (line, d.Diag.message))

let of_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string text

let render_source = function
  | None -> "-"
  | Some (Transfer.From_reg r) -> r
  | Some (Transfer.From_input i) -> i ^ "!"

let render_dest = function
  | None -> "-"
  | Some (Transfer.To_reg r) -> r
  | Some (Transfer.To_output o) -> o ^ "!"

let render_opt = function None -> "-" | Some s -> s
let render_opt_int = function None -> "-" | Some n -> string_of_int n

let to_string (m : Model.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "model %s" m.name;
  line "csmax %d" m.cs_max;
  List.iter
    (fun (r : Model.register) ->
      if Word.is_disc r.init then line "reg %s" r.reg_name
      else line "reg %s init %s" r.reg_name (Word.to_string r.init))
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      line "unit %s ops %s latency %d%s%s" f.fu_name
        (String.concat "," (List.map Ops.to_string f.ops))
        f.latency
        (if f.pipelined then "" else " nonpipelined")
        (if f.sticky_illegal then "" else " transparent-illegal"))
    m.fus;
  List.iter (fun b -> line "bus %s" b) m.buses;
  List.iter
    (fun (i : Model.input) ->
      match i.drive with
      | Model.Const v -> line "input %s const %s" i.in_name (Word.to_string v)
      | Model.Schedule entries ->
        line "input %s schedule %s" i.in_name
          (String.concat " "
             (List.map
                (fun (s, v) -> Printf.sprintf "%d:%s" s (Word.to_string v))
                entries)))
    m.inputs;
  List.iter (fun o -> line "output %s" o) m.outputs;
  List.iter
    (fun (t : Transfer.t) ->
      let fu_field =
        match t.op with
        | None -> t.fu
        | Some op -> t.fu ^ ":" ^ Ops.to_string op
      in
      line "transfer %s %s %s %s %s %s %s %s %s"
        (render_source t.src_a) (render_opt t.bus_a)
        (render_source t.src_b) (render_opt t.bus_b)
        (render_opt_int t.read_step) fu_field
        (render_opt_int t.write_step) (render_opt t.write_bus)
        (render_dest t.dst))
    m.transfers;
  Buffer.contents buf

let to_file m path =
  let oc = open_out path in
  output_string oc (to_string m);
  close_out oc
