type t = {
  model_name : string;
  digest : string;
  step : int;
  regs : (string * Word.t) list;
  fu_out : (string * Word.t) list;
  fu_slots : (string * Word.t array) list;
  trace : (string * Word.t array) list;
  out_writes : (string * (int * Word.t)) list;
  conflicts : (int * Phase.t * string) list;
}

let digest_of_model m = Digest.to_hex (Digest.string (Rtm.to_string m))

let compare_conflict (s1, p1, n1) (s2, p2, n2) =
  match compare (s1 : int) s2 with
  | 0 -> (
      match compare (Phase.to_int p1) (Phase.to_int p2) with
      | 0 -> String.compare n1 n2
      | c -> c)
  | c -> c

let sort_conflicts cs = List.sort_uniq compare_conflict cs

let equal a b = a = b

(* ---- validation ------------------------------------------------- *)

let validate (m : Model.t) s =
  let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  if s.model_name <> m.name then
    err "snapshot is of model %s, not %s" s.model_name m.name
  else if s.digest <> digest_of_model m then
    err "snapshot digest %s does not match the model (%s)" s.digest
      (digest_of_model m)
  else if s.step < 0 || s.step > m.cs_max then
    err "snapshot step %d outside [0, %d]" s.step m.cs_max
  else
    let reg_names = List.map (fun (r : Model.register) -> r.reg_name) m.registers in
    let fu_names = List.map (fun (f : Model.fu) -> f.fu_name) m.fus in
    if List.map fst s.regs <> reg_names then err "snapshot register set differs"
    else if List.map fst s.fu_out <> fu_names then err "snapshot unit set differs"
    else if List.map fst s.fu_slots <> fu_names then
      err "snapshot unit pipeline set differs"
    else if
      List.exists2
        (fun (f : Model.fu) (_, slots) -> Array.length slots <> f.latency)
        m.fus s.fu_slots
    then err "snapshot pipeline depth differs from unit latency"
    else if List.map fst s.trace <> reg_names then err "snapshot trace set differs"
    else if
      List.exists (fun (_, a) -> Array.length a <> s.step) s.trace
    then err "snapshot trace length differs from its step"
    else if
      List.exists (fun (_, (w, _)) -> w < 1 || w > s.step) s.out_writes
    then err "snapshot output write outside [1, %d]" s.step
    else Ok ()

let validate_exn m s =
  match validate m s with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Snapshot.validate: " ^ msg)

(* ---- serialization ---------------------------------------------- *)

let magic = "csrtl-snapshot 1"

let to_string s =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  let words a = String.concat " " (List.map Word.to_string (Array.to_list a)) in
  line "%s" magic;
  line "model %s" s.model_name;
  line "digest %s" s.digest;
  line "step %d" s.step;
  List.iter (fun (n, v) -> line "reg %s %s" n (Word.to_string v)) s.regs;
  List.iter
    (fun (n, out) ->
      let slots = List.assoc n s.fu_slots in
      line "fu %s %s %s" n (Word.to_string out) (words slots))
    s.fu_out;
  List.iter (fun (n, a) ->
      if Array.length a = 0 then line "trace %s" n else line "trace %s %s" n (words a))
    s.trace;
  List.iter (fun (n, (w, v)) -> line "out %s %d %s" n w (Word.to_string v)) s.out_writes;
  List.iter
    (fun (w, p, n) -> line "conflict %d %s %s" w (Phase.to_string p) n)
    s.conflicts;
  line "end";
  Buffer.contents b

exception Bad of string

let of_string text =
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let word tok =
    match Word.of_string tok with
    | Some w -> w
    | None -> bad "bad word %S" tok
  in
  let int_of tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> bad "bad integer %S" tok
  in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let fields l = String.split_on_char ' ' l |> List.filter (fun t -> t <> "") in
  try
    match lines with
    | m :: rest when String.trim m = magic ->
      let model_name = ref "" and digest = ref "" and step = ref (-1) in
      let regs = ref [] and fu_out = ref [] and fu_slots = ref [] in
      let trace = ref [] and out_writes = ref [] and conflicts = ref [] in
      let seen_end = ref false in
      List.iter
        (fun l ->
          if !seen_end then bad "content after end marker";
          match fields l with
          | [ "model"; n ] -> model_name := n
          | [ "digest"; d ] -> digest := d
          | [ "step"; s ] -> step := int_of s
          | [ "reg"; n; v ] -> regs := (n, word v) :: !regs
          | "fu" :: n :: out :: slots ->
            if slots = [] then bad "unit %s has no pipeline slots" n;
            fu_out := (n, word out) :: !fu_out;
            fu_slots := (n, Array.of_list (List.map word slots)) :: !fu_slots
          | "trace" :: n :: vs ->
            trace := (n, Array.of_list (List.map word vs)) :: !trace
          | [ "out"; n; w; v ] -> out_writes := (n, (int_of w, word v)) :: !out_writes
          | [ "conflict"; w; p; n ] ->
            let p =
              match Phase.of_string p with
              | Some p -> p
              | None -> bad "bad phase %S" p
            in
            conflicts := (int_of w, p, n) :: !conflicts
          | [ "end" ] -> seen_end := true
          | _ -> bad "unrecognized line %S" l)
        rest;
      if not !seen_end then bad "truncated snapshot (no end marker)";
      if !model_name = "" then bad "missing model line";
      if !digest = "" then bad "missing digest line";
      if !step < 0 then bad "missing step line";
      Ok
        {
          model_name = !model_name;
          digest = !digest;
          step = !step;
          regs = List.rev !regs;
          fu_out = List.rev !fu_out;
          fu_slots = List.rev !fu_slots;
          trace = List.rev !trace;
          out_writes = List.rev !out_writes;
          conflicts = List.rev !conflicts;
        }
    | _ -> Error "not a csrtl snapshot (bad magic line)"
  with Bad msg -> Error msg

let save path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_string s))

let load path =
  match
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> of_string text

let pp ppf s =
  Format.fprintf ppf "@[<v>snapshot of %s at step %d/%s@," s.model_name s.step
    s.digest;
  List.iter (fun (n, v) -> Format.fprintf ppf "  %s = %a@," n Word.pp v) s.regs;
  Format.fprintf ppf "@]"
