type t = {
  fu : Model.fu;
  slots : Word.t array;  (* slots.(0) = newest, slots.(latency-1) = oldest *)
}

let create (fu : Model.fu) = { fu; slots = Array.make fu.latency Word.disc }

let reset u = Array.fill u.slots 0 (Array.length u.slots) Word.disc

let busy u =
  (* A non-pipelined unit is busy while any slot other than the one
     being output this step still holds a value. *)
  let n = Array.length u.slots in
  let rec check i = i < n - 1 && (not (Word.is_disc u.slots.(i)) || check (i + 1)) in
  n > 1 && check 0

let peek_output u = u.slots.(Array.length u.slots - 1)

let slots u = Array.copy u.slots

let restore u slots =
  if Array.length slots <> Array.length u.slots then
    invalid_arg
      (Printf.sprintf "Fu_state.restore: %s expects %d slots, got %d"
         u.fu.fu_name (Array.length u.slots) (Array.length slots));
  Array.blit slots 0 u.slots 0 (Array.length slots)

let compute u ~op_index a b =
  let prev = u.slots.(0) in
  let no_operands = Word.is_disc a && Word.is_disc b in
  if u.fu.sticky_illegal && Word.is_illegal prev then Word.illegal
  else if Word.is_illegal op_index then Word.illegal
  else if Word.is_illegal a || Word.is_illegal b then Word.illegal
  else if no_operands && Word.is_disc op_index then
    (* Idle step: nothing selected, nothing supplied. *)
    (match u.fu.ops with
     | op :: _ when Ops.is_stateful op && List.length u.fu.ops = 1 -> prev
     | _ -> Word.disc)
  else
    let op =
      if Word.is_disc op_index then None
      else List.nth_opt u.fu.ops op_index
    in
    match op with
    | None ->
      (* Operands without a selection, or an out-of-range index. *)
      Word.illegal
    | Some op ->
      if (not u.fu.pipelined) && busy u && not no_operands then Word.illegal
      else Ops.apply op ~prev a b

let step u ~op_index a b =
  let n = Array.length u.slots in
  let out = u.slots.(n - 1) in
  let next = compute u ~op_index a b in
  for i = n - 1 downto 1 do
    u.slots.(i) <- u.slots.(i - 1)
  done;
  u.slots.(0) <- next;
  out
