(* The pipeline semantics live in [compute_flat], written over a flat
   slot slice (array + offset + latency) so the record-based executors
   and the batched structure-of-arrays arena share one implementation.
   Nothing on this path allocates: the op table is a precomputed array
   (not the model's list), and idle/illegal classification is pure
   integer work — the batched inner loop relies on this. *)

type profile = {
  ops : Ops.t array;
  sticky : bool;
  pipelined : bool;
  solo_stateful : bool;
      (* exactly one op and it is stateful: an idle step holds the
         accumulator instead of releasing to DISC *)
}

let profile (fu : Model.fu) =
  { ops = Array.of_list fu.ops;
    sticky = fu.sticky_illegal;
    pipelined = fu.pipelined;
    solo_stateful =
      (match fu.ops with [ op ] -> Ops.is_stateful op | _ -> false) }

type t = {
  fu : Model.fu;
  prof : profile;
  slots : Word.t array;  (* slots.(0) = newest, slots.(latency-1) = oldest *)
}

let create (fu : Model.fu) =
  { fu; prof = profile fu; slots = Array.make fu.latency Word.disc }

let reset u = Array.fill u.slots 0 (Array.length u.slots) Word.disc

(* A non-pipelined unit is busy while any slot other than the one
   being output this step still holds a value.  Top-level recursion,
   not a local [let rec]: a local closure would capture slots/off/lat
   and allocate on every call from the batched inner loop. *)
let rec busy_scan (slots : Word.t array) off lat i =
  i < lat - 1
  && ((not (Word.is_disc slots.(off + i))) || busy_scan slots off lat (i + 1))

let busy_flat slots off lat = lat > 1 && busy_scan slots off lat 0

let busy u = busy_flat u.slots 0 (Array.length u.slots)

let peek_output u = u.slots.(Array.length u.slots - 1)

let slots u = Array.copy u.slots

let restore u slots =
  if Array.length slots <> Array.length u.slots then
    invalid_arg
      (Printf.sprintf "Fu_state.restore: %s expects %d slots, got %d"
         u.fu.fu_name (Array.length u.slots) (Array.length slots))
  else Array.blit slots 0 u.slots 0 (Array.length slots)

let compute_flat (p : profile) ~slots ~off ~lat ~op_index a b =
  let prev = slots.(off) in
  let no_operands = Word.is_disc a && Word.is_disc b in
  if p.sticky && Word.is_illegal prev then Word.illegal
  else if Word.is_illegal op_index then Word.illegal
  else if Word.is_illegal a || Word.is_illegal b then Word.illegal
  else if no_operands && Word.is_disc op_index then
    (* Idle step: nothing selected, nothing supplied. *)
    if p.solo_stateful then prev else Word.disc
  else if Word.is_disc op_index then
    (* Operands without a selection. *)
    Word.illegal
  else if op_index < 0 then
    (* a saboteur can drive an arbitrary negative onto the .op sink;
       the historical list lookup raised here, and campaign reports
       pin the resulting Crashed classification byte-for-byte *)
    invalid_arg "List.nth"
  else if op_index >= Array.length p.ops then
    (* out-of-range index *)
    Word.illegal
  else
    let op = p.ops.(op_index) in
    if (not p.pipelined) && busy_flat slots off lat && not no_operands then
      Word.illegal
    else Ops.apply op ~prev a b

let step_flat (p : profile) ~slots ~off ~lat ~op_index a b =
  let out = slots.(off + lat - 1) in
  let next = compute_flat p ~slots ~off ~lat ~op_index a b in
  for i = lat - 1 downto 1 do
    slots.(off + i) <- slots.(off + i - 1)
  done;
  slots.(off) <- next;
  out

let step u ~op_index a b =
  step_flat u.prof ~slots:u.slots ~off:0 ~lat:(Array.length u.slots) ~op_index
    a b
