(* Lockstep execution of K fault variants plus the golden run over the
   shared static schedule, on a structure-of-arrays arena.

   All per-variant machine state lives in flat unboxed-int arrays, one
   contiguous row per variant (row 0 is the golden run): sink values,
   registers, FU pipelines, traces and output writes are all
   [row * stride + index] into a handful of big [int array]s, so the
   lockstep inner loop walks memory linearly and allocates nothing —
   no per-step boxing, no GC traffic, no pointer chasing across K
   heap-separate rows.  The arena itself is cached per domain
   ({!Domain.DLS}) and rebound per chunk, so a campaign's thousands of
   chunks reuse one allocation per worker.

   The step function is the same slot walk as {!Compiled}'s, and the
   differential suite pins the two executors (and the kernel, and the
   interpreter) against each other on the full observation. *)

type variant_spec = { inject : Inject.t; join : int; settle : int }

type verdict = Finished of Observation.t | Converged of int

type result = { verdict : verdict; cycles : int }

(* A reusable compile of the golden schedule plus the per-unit
   profiles — everything about the model that is shared, read-only,
   across every chunk and every domain of a campaign. *)
type plan = {
  pmodel : Model.t;
  base : Sched.t;
  profs : Fu_state.profile array;
  pid : int;
}

let plan_ids = Atomic.make 0

let plan (m : Model.t) =
  Model.validate_exn m;
  let base = Sched.compile m in
  { pmodel = m; base;
    profs =
      Array.map
        (fun (p : Sched.fu_plan) -> Fu_state.profile p.Sched.fu)
        base.Sched.fu_plans;
    pid = Atomic.fetch_and_add plan_ids 1 }

let base_sched p = p.base

(* Variant lifecycle, encoded in an int so the dispatch loop reads a
   flat array: -2 waiting to join, -1 running, s >= 0 retired at s. *)
let st_waiting = -2
let st_running = -1

type arena = {
  pid : int;
  ns : int;  (* sinks *)
  nr : int;  (* registers *)
  nf : int;  (* functional units *)
  np : int;  (* output ports *)
  cs : int;  (* cs_max *)
  rows : int;  (* row capacity, golden included *)
  mutable profs : Fu_state.profile array;
  (* -- sink state, stride [ns] -- *)
  visible : Word.t array;
  acc : Word.t array;
  in_pending : Bytes.t;
  (* pend/live double buffer: per-row id scratch, swapped by pointer *)
  pend_ids : int array array;
  live_ids : int array array;
  pend_n : int array;
  live_n : int array;
  (* -- register state, stride [nr] -- *)
  regs : Word.t array;
  reg_vis : Word.t array;
  (* -- unit state -- *)
  fu_out : Word.t array;  (* stride [nf] *)
  fu_lat : int array;  (* stride [nf]: this row's pipeline depth *)
  mutable fu_cap : int array;  (* shared per-unit slot capacity *)
  mutable fu_off : int array;  (* nf + 1 prefix sums of [fu_cap] *)
  mutable fu_row : int;  (* = fu_off.(nf) *)
  mutable fu_slots : Word.t array;  (* stride [fu_row] *)
  (* -- observables -- *)
  traces : Word.t array;  (* (row * nr + reg) * cs + (step - 1) *)
  out_steps : int array;  (* (row * np + port) * cs + write index *)
  out_vals : Word.t array;
  out_n : int array;  (* stride [np] *)
  conflicts : (int * Phase.t * string) list array;  (* per row *)
  (* -- per-row dispatch state (index 0 unused except [scheds]) -- *)
  scheds : Sched.t array;
  v_join : int array;
  v_settle : int array;
  v_retire : int array;
  v_state : int array;
  v_dirty : Bytes.t;
      (* an already-recorded observable (trace cell, output write)
         differs from the golden row's: the final observation cannot
         equal the golden one, so retirement is off the table *)
}

let make_arena (plan : plan) rows =
  let b = plan.base in
  let ns = b.Sched.nsinks and nr = b.Sched.nregs in
  let nf = Array.length b.Sched.fu_plans in
  let np = Array.length b.Sched.out_sink in
  let cs = plan.pmodel.Model.cs_max in
  let fu_cap =
    Array.map
      (fun (p : Sched.fu_plan) -> p.Sched.fu.Model.latency)
      b.Sched.fu_plans
  in
  let fu_off = Array.make (nf + 1) 0 in
  for f = 0 to nf - 1 do
    fu_off.(f + 1) <- fu_off.(f) + fu_cap.(f)
  done;
  let fu_row = fu_off.(nf) in
  { pid = plan.pid; ns; nr; nf; np; cs; rows;
    profs = plan.profs;
    visible = Array.make (rows * ns) Word.disc;
    acc = Array.make (rows * ns) Word.disc;
    in_pending = Bytes.make (max (rows * ns) 1) '\000';
    pend_ids = Array.init rows (fun _ -> Array.make ns 0);
    live_ids = Array.init rows (fun _ -> Array.make ns 0);
    pend_n = Array.make rows 0;
    live_n = Array.make rows 0;
    regs = Array.make (rows * nr) Word.disc;
    reg_vis = Array.make (rows * nr) Word.disc;
    fu_out = Array.make (rows * nf) Word.disc;
    fu_lat = Array.make (rows * nf) 0;
    fu_cap; fu_off; fu_row;
    fu_slots = Array.make (rows * fu_row) Word.disc;
    traces = Array.make (rows * nr * cs) Word.disc;
    out_steps = Array.make (rows * np * cs) 0;
    out_vals = Array.make (rows * np * cs) Word.disc;
    out_n = Array.make (rows * np) 0;
    conflicts = Array.make rows [];
    scheds = Array.make rows b;
    v_join = Array.make rows 0;
    v_settle = Array.make rows 0;
    v_retire = Array.make rows 0;
    v_state = Array.make rows st_waiting;
    v_dirty = Bytes.make rows '\000' }

(* One arena per domain, rebound in place chunk after chunk as long as
   the campaign keeps the same plan and the batch fits.  Domain-local,
   so pool workers never share scratch; callers that multiplex
   system threads on one domain must serialize their campaigns (the
   serve daemon's admission control already does). *)
let arena_slot : arena option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let get_arena (plan : plan) k =
  let slot = Domain.DLS.get arena_slot in
  let rows = k + 1 in
  match !slot with
  | Some a when a.pid = plan.pid && a.rows >= rows ->
    a.profs <- plan.profs;
    a
  | _ ->
    let a = make_arena plan rows in
    slot := Some a;
    a

(* First boundary from which every remaining slot — including the
   boundary step's own (step, wb) slot, whose drivers are the live set
   crossing it — is physically the golden array.  [Sched.overlay]
   hands us the highest patched slot directly. *)
let retire_from_of (m : Model.t) last_patched =
  let wb = Phase.to_int Phase.Wb in
  let rec find step =
    if step > m.Model.cs_max then step
    else if ((step - 1) * Phase.count) + wb > last_patched then step
    else find (step + 1)
  in
  find 1

(* Bind K specs onto the arena: overlay schedules, per-row pipeline
   depths (growing the shared slot capacity under a latency override),
   and a full state reset of rows 0..K.  Everything here is per-chunk
   cost — the step loop below does the per-step work. *)
let bind (plan : plan) specs =
  let m = plan.pmodel in
  List.iter
    (fun { inject; join; settle = _ } ->
      (match Compiled.compilable ~inject m with
       | Ok () -> ()
       | Error why ->
         invalid_arg (Printf.sprintf "Batch: model %s: %s" m.Model.name why));
      if join < 0 || join > m.Model.cs_max then
        invalid_arg
          (Printf.sprintf "Batch: join boundary %d outside [0, %d]" join
             m.Model.cs_max))
    specs;
  let k = List.length specs in
  let a = get_arena plan k in
  a.scheds.(0) <- plan.base;
  List.iteri
    (fun i spec ->
      let sched = Sched.overlay plan.base spec.inject in
      a.scheds.(i + 1) <- sched;
      a.v_join.(i + 1) <- spec.join;
      a.v_settle.(i + 1) <- spec.settle;
      a.v_retire.(i + 1) <- retire_from_of m sched.Sched.last_patched;
      a.v_state.(i + 1) <-
        (if spec.join = 0 then st_running else st_waiting))
    specs;
  Bytes.fill a.v_dirty 0 (k + 1) '\000';
  (* pipeline depths; a latency override above the shared capacity
     grows every row's unit region (rare: one realloc per campaign) *)
  let grew = ref false in
  for r = 0 to k do
    let plans = a.scheds.(r).Sched.fu_plans in
    for f = 0 to a.nf - 1 do
      let lat = plans.(f).Sched.fu.Model.latency in
      a.fu_lat.((r * a.nf) + f) <- lat;
      if lat > a.fu_cap.(f) then begin
        a.fu_cap.(f) <- lat;
        grew := true
      end
    done
  done;
  if !grew then begin
    for f = 0 to a.nf - 1 do
      a.fu_off.(f + 1) <- a.fu_off.(f) + a.fu_cap.(f)
    done;
    a.fu_row <- a.fu_off.(a.nf);
    a.fu_slots <- Array.make (a.rows * a.fu_row) Word.disc
  end;
  (* state reset of the bound rows *)
  let nrows = k + 1 in
  Array.fill a.visible 0 (nrows * a.ns) Word.disc;
  Array.fill a.acc 0 (nrows * a.ns) Word.disc;
  if a.ns > 0 then Bytes.fill a.in_pending 0 (nrows * a.ns) '\000';
  Array.fill a.pend_n 0 nrows 0;
  Array.fill a.live_n 0 nrows 0;
  for r = 0 to k do
    let sch = a.scheds.(r) in
    Array.blit sch.Sched.reg_init 0 a.regs (r * a.nr) a.nr;
    for i = 0 to a.nr - 1 do
      a.reg_vis.((r * a.nr) + i) <- Sched.reg_view_init sch i
    done
  done;
  Array.fill a.fu_out 0 (nrows * a.nf) Word.disc;
  Array.fill a.fu_slots 0 (nrows * a.fu_row) Word.disc;
  Array.fill a.traces 0 (nrows * a.nr * a.cs) Word.disc;
  Array.fill a.out_n 0 (nrows * a.np) 0;
  Array.fill a.conflicts 0 nrows [];
  (a, k)

let phase_table = Array.of_list Phase.all
let cm_i = Phase.to_int Phase.Cm
let cr_i = Phase.to_int Phase.Cr

(* One control step of one row.  Zero allocation on the happy path:
   conflict records are the only conses, and only when a sink newly
   turns ILLEGAL. *)
let exec_row (a : arena) (sch : Sched.t) ~row ~step =
  let ns = a.ns in
  let sb = row * ns in
  let rb = row * a.nr in
  let fb = row * a.nf in
  for pi = 0 to Phase.count - 1 do
    let phase = phase_table.(pi) in
    (* flip: resolve last phase's contributions into this phase's
       visible values — live sinks not re-contributed release, pending
       sinks take their accumulated resolution, and a sink newly
       becoming ILLEGAL is localized as a conflict *)
    let live = a.live_ids.(row) in
    let ln = a.live_n.(row) in
    for i = 0 to ln - 1 do
      let s = live.(i) in
      if Bytes.get a.in_pending (sb + s) = '\000' then begin
        let v = Sched.resolve_release sch s ~step ~phase in
        if Word.is_illegal v && not (Word.is_illegal a.visible.(sb + s))
        then
          a.conflicts.(row) <-
            (step, phase, sch.Sched.sink_name.(s)) :: a.conflicts.(row);
        a.visible.(sb + s) <- v
      end
    done;
    let pend = a.pend_ids.(row) in
    let pn = a.pend_n.(row) in
    for i = 0 to pn - 1 do
      let s = pend.(i) in
      let v = Sched.resolve_value sch s ~step ~phase a.acc.(sb + s) in
      if Word.is_illegal v && not (Word.is_illegal a.visible.(sb + s)) then
        a.conflicts.(row) <-
          (step, phase, sch.Sched.sink_name.(s)) :: a.conflicts.(row);
      a.visible.(sb + s) <- v
    done;
    a.live_ids.(row) <- pend;
    a.live_n.(row) <- pn;
    a.pend_ids.(row) <- live;
    a.pend_n.(row) <- 0;
    for i = 0 to pn - 1 do
      let s = pend.(i) in
      Bytes.set a.in_pending (sb + s) '\000';
      a.acc.(sb + s) <- Word.disc
    done;
    (* this slot's contributions *)
    let acts = sch.Sched.slots.(((step - 1) * Phase.count) + pi) in
    for i = 0 to Array.length acts - 1 do
      let { Sched.src; dst } = acts.(i) in
      let v =
        match src with
        | Sched.Const w -> w
        | Sched.Reg r -> a.reg_vis.(rb + r)
        | Sched.Bus s -> a.visible.(sb + s)
        | Sched.Fu f -> a.fu_out.(fb + f)
      in
      if Bytes.get a.in_pending (sb + dst) = '\001' then
        a.acc.(sb + dst) <- Resolve.combine a.acc.(sb + dst) v
      else begin
        Bytes.set a.in_pending (sb + dst) '\001';
        a.acc.(sb + dst) <- v;
        let p = a.pend_ids.(row) in
        p.(a.pend_n.(row)) <- dst;
        a.pend_n.(row) <- a.pend_n.(row) + 1
      end
    done;
    if pi = cm_i then begin
      let fob = row * a.fu_row in
      for f = 0 to a.nf - 1 do
        let u = sch.Sched.fu_plans.(f) in
        a.fu_out.(fb + f) <-
          Fu_state.step_flat a.profs.(f) ~slots:a.fu_slots
            ~off:(fob + a.fu_off.(f))
            ~lat:a.fu_lat.(fb + f)
            ~op_index:a.visible.(sb + u.Sched.op_sink)
            a.visible.(sb + u.Sched.in1_sink)
            a.visible.(sb + u.Sched.in2_sink)
      done
    end
    else if pi = cr_i then begin
      for i = 0 to a.nr - 1 do
        let v = a.visible.(sb + sch.Sched.reg_in_sink.(i)) in
        if not (Word.is_disc v) then begin
          a.regs.(rb + i) <- v;
          a.reg_vis.(rb + i) <- Sched.reg_view_latch sch i ~step v
        end
      done;
      let ob = row * a.np in
      for o = 0 to a.np - 1 do
        let v = a.visible.(sb + sch.Sched.out_sink.(o)) in
        if not (Word.is_disc v) then begin
          let n = a.out_n.(ob + o) in
          a.out_steps.(((ob + o) * a.cs) + n) <- step;
          a.out_vals.(((ob + o) * a.cs) + n) <- v;
          a.out_n.(ob + o) <- n + 1
        end
      done;
      let tb = rb * a.cs in
      for i = 0 to a.nr - 1 do
        a.traces.(tb + (i * a.cs) + (step - 1)) <- a.reg_vis.(rb + i)
      done
    end
  done

(* Copy the golden row's state at boundary [b] into a variant — the
   in-memory equivalent of restoring a golden checkpoint: raw machine
   state verbatim, the register view re-resolved through the variant's
   tamper at its next visibility point (the kernel's resume rule), the
   conflict prefix in the snapshot's sorted order. *)
let join_row (a : arena) ~row ~boundary =
  let sb = row * a.ns and rb = row * a.nr and fb = row * a.nf in
  Array.blit a.visible 0 a.visible sb a.ns;
  Array.blit a.live_ids.(0) 0 a.live_ids.(row) 0 a.live_n.(0);
  a.live_n.(row) <- a.live_n.(0);
  a.pend_n.(row) <- 0;
  Array.blit a.regs 0 a.regs rb a.nr;
  let sch = a.scheds.(row) in
  for i = 0 to a.nr - 1 do
    a.reg_vis.(rb + i) <- Sched.reg_view_resume sch i ~boundary a.regs.(rb + i)
  done;
  Array.blit a.fu_out 0 a.fu_out fb a.nf;
  let fob = row * a.fu_row in
  for f = 0 to a.nf - 1 do
    let lat_g = a.fu_lat.(f) and lat_v = a.fu_lat.(fb + f) in
    if lat_g <> lat_v then
      (* the historical restore-from-snapshot error: a variant whose
         pipeline depth differs cannot adopt golden state (campaigns
         give latency overrides join = 0, so they never land here) *)
      invalid_arg
        (Printf.sprintf "Fu_state.restore: %s expects %d slots, got %d"
           sch.Sched.fu_plans.(f).Sched.fu.Model.fu_name lat_v lat_g);
    Array.blit a.fu_slots a.fu_off.(f) a.fu_slots (fob + a.fu_off.(f)) lat_g
  done;
  for i = 0 to a.nr - 1 do
    Array.blit a.traces (i * a.cs) a.traces ((rb + i) * a.cs) boundary
  done;
  for o = 0 to a.np - 1 do
    let n = a.out_n.(o) in
    Array.blit a.out_steps (o * a.cs) a.out_steps (((row * a.np) + o) * a.cs) n;
    Array.blit a.out_vals (o * a.cs) a.out_vals (((row * a.np) + o) * a.cs) n;
    a.out_n.((row * a.np) + o) <- n
  done;
  a.conflicts.(row) <- List.rev (Snapshot.sort_conflicts a.conflicts.(0))

let observation (a : arena) row =
  let m = a.scheds.(row).Sched.model in
  let rb = row * a.nr and ob = row * a.np in
  { Observation.model_name = m.Model.name; cs_max = m.Model.cs_max;
    regs =
      List.mapi
        (fun i (reg : Model.register) ->
          (reg.reg_name, Array.sub a.traces ((rb + i) * a.cs) a.cs))
        m.Model.registers;
    outputs =
      List.mapi
        (fun o name ->
          ( name,
            List.init a.out_n.(ob + o) (fun k ->
                ( a.out_steps.(((ob + o) * a.cs) + k),
                  a.out_vals.(((ob + o) * a.cs) + k) )) ))
        m.Model.outputs;
    conflicts = List.rev a.conflicts.(row) }

(* Helpers of [rows_equal], at top level so the per-step retirement
   check allocates no closures. *)
let rec eq_range (arr : Word.t array) base n i =
  i >= n || (Word.equal arr.(i) arr.(base + i) && eq_range arr base n (i + 1))

let rec slots_eq (slots : Word.t array) off0 offr lat i =
  i >= lat
  || (Word.equal slots.(off0 + i) slots.(offr + i)
      && slots_eq slots off0 offr lat (i + 1))

let rec fus_eq (a : arena) row fob f =
  f >= a.nf
  || (a.fu_lat.(f) = a.fu_lat.((row * a.nf) + f)
      && slots_eq a.fu_slots a.fu_off.(f) (fob + a.fu_off.(f)) a.fu_lat.(f) 0
      && fus_eq a row fob (f + 1))

(* State-row equality against the golden row, cheapest component
   first; all equal (with no observable delta accrued) means the rows
   cannot diverge again. *)
let rows_equal (a : arena) row =
  eq_range a.regs (row * a.nr) a.nr 0
  && eq_range a.reg_vis (row * a.nr) a.nr 0
  && eq_range a.fu_out (row * a.nf) a.nf 0
  && eq_range a.visible (row * a.ns) a.ns 0
  && fus_eq a row (row * a.fu_row) 0
  && (match (a.conflicts.(0), a.conflicts.(row)) with
     | [], [] -> true  (* the conflict-free fast path must not reach
                          [List.sort_uniq], which allocates its merge
                          closures even for empty input *)
     | c0, cr -> Snapshot.sort_conflicts c0 = Snapshot.sort_conflicts cr)

exception Obs_differs

(* Exact per-boundary check that the observables recorded {e this}
   step equal the golden row's; once any differs the flag latches and
   the variant must run to completion.  The constant exception keeps
   the check allocation-free (a [ref] cell would be a minor-heap
   allocation per variant per step). *)
let update_obs_dirty (a : arena) row ~step =
  if Bytes.get a.v_dirty row = '\000' then begin
    let rb = row * a.nr and ob = row * a.np in
    try
      for i = 0 to a.nr - 1 do
        if
          not
            (Word.equal
               a.traces.(((rb + i) * a.cs) + (step - 1))
               a.traces.((i * a.cs) + (step - 1)))
        then raise_notrace Obs_differs
      done;
      for o = 0 to a.np - 1 do
        let vn = a.out_n.(ob + o) and gn = a.out_n.(o) in
        if vn <> gn then raise_notrace Obs_differs
        else if
          vn > 0
          && a.out_steps.(((ob + o) * a.cs) + vn - 1) = step
          && not
               (Word.equal
                  a.out_vals.(((ob + o) * a.cs) + vn - 1)
                  a.out_vals.((o * a.cs) + gn - 1))
        then raise_notrace Obs_differs
      done
    with Obs_differs -> Bytes.set a.v_dirty row '\001'
  end

let run_arena (a : arena) k =
  let cs = a.cs in
  for step = 1 to cs do
    for r = 1 to k do
      if a.v_state.(r) = st_waiting && a.v_join.(r) = step - 1 then begin
        join_row a ~row:r ~boundary:(step - 1);
        a.v_state.(r) <- st_running
      end
    done;
    exec_row a a.scheds.(0) ~row:0 ~step;
    for r = 1 to k do
      if a.v_state.(r) = st_running then begin
        exec_row a a.scheds.(r) ~row:r ~step;
        update_obs_dirty a r ~step;
        if
          Bytes.get a.v_dirty r = '\000'
          && step < cs
          && step >= a.v_settle.(r)
          && step >= a.v_retire.(r)
          && rows_equal a r
        then a.v_state.(r) <- step
      end
    done
  done

let golden_with (plan : plan) specs =
  let a, k = bind plan specs in
  run_arena a k;
  let results =
    List.mapi
      (fun i spec ->
        let r = i + 1 in
        let verdict =
          match a.v_state.(r) with
          | -1 -> Finished (observation a r)
          | -2 ->
            (* joined at the final boundary: the fault never acts, the
               observation is the golden one by construction *)
            Converged plan.pmodel.Model.cs_max
          | s -> Converged s
        in
        { verdict;
          cycles =
            Simulate.expected_cycles_injected ~inject:spec.inject plan.pmodel
              spec.join })
      specs
  in
  (observation a 0, results)

let run_with plan specs = snd (golden_with plan specs)

let golden (m : Model.t) specs = golden_with (plan m) specs

let run m specs = snd (golden m specs)

(* The pinned-law probe: minor-heap words allocated by the lockstep
   step loop alone — bind and result materialization excluded.  The
   scaling suite asserts this is 0 for conflict-free specs. *)
let alloc_probe plan specs =
  let a, k = bind plan specs in
  (* [Gc.minor_words] boxes its float result on the minor heap, so a
     naive before/after delta can never read 0.  Calibrate that
     overhead with an empty probe first and subtract it. *)
  let b0 = Gc.minor_words () in
  let b1 = Gc.minor_words () in
  let overhead = b1 -. b0 in
  let w0 = Gc.minor_words () in
  run_arena a k;
  let w1 = Gc.minor_words () in
  (w1 -. w0) -. overhead
