(* Lockstep execution of K fault variants plus the golden run over the
   shared static schedule.  Each variant owns one state row (flat
   arrays over sink/register/unit indices); the step function is the
   same slot walk as {!Compiled}'s, and the differential suite pins
   the two executors (and the kernel, and the interpreter) against
   each other on the full observation. *)

type variant_spec = { inject : Inject.t; join : int; settle : int }

type verdict = Finished of Observation.t | Converged of int

type result = { verdict : verdict; cycles : int }

(* One state row: everything a run mutates.  [pend]/[live] double
   buffer the contribution sets exactly as in {!Compiled}. *)
type row = {
  sched : Sched.t;
  visible : Word.t array;
  acc : Word.t array;
  in_pending : bool array;
  mutable pend_ids : int array;
  mutable pend_n : int;
  mutable live_ids : int array;
  mutable live_n : int;
  regs : Word.t array;
  reg_vis : Word.t array;
  fu_states : Fu_state.t array;
  fu_out : Word.t array;
  traces : Word.t array array;
  out_steps : int array array;
  out_vals : Word.t array array;
  out_n : int array;
  mutable conflicts : (int * Phase.t * string) list;
}

type state = Waiting | Running | Retired of int

type variant = {
  spec : variant_spec;
  row : row;
  retire_from : int;
      (* first boundary s such that every slot from (s, wb) on is
         physically shared with the golden plan — from there the live
         driver set and the remaining schedule are the golden ones *)
  mutable state : state;
  mutable obs_dirty : bool;
      (* an already-recorded observable (trace cell, output write)
         differs from the golden row's: the final observation cannot
         equal the golden one, so retirement is off the table *)
}

let make_row (sched : Sched.t) (m : Model.t) =
  let n1 = max sched.Sched.nsinks 1 in
  { sched;
    visible = Array.make n1 Word.disc;
    acc = Array.make n1 Word.disc;
    in_pending = Array.make n1 false;
    pend_ids = Array.make n1 0; pend_n = 0;
    live_ids = Array.make n1 0; live_n = 0;
    regs = Array.make (max sched.Sched.nregs 1) Word.disc;
    reg_vis = Array.make (max sched.Sched.nregs 1) Word.disc;
    fu_states =
      Array.map (fun (p : Sched.fu_plan) -> Fu_state.create p.Sched.fu)
        sched.Sched.fu_plans;
    fu_out = Array.make (max (Array.length sched.Sched.fu_plans) 1) Word.disc;
    traces =
      Array.init (max sched.Sched.nregs 1) (fun _ ->
          Array.make m.Model.cs_max Word.disc);
    out_steps =
      Array.init
        (max (Array.length sched.Sched.out_sink) 1)
        (fun _ -> Array.make m.Model.cs_max 0);
    out_vals =
      Array.init
        (max (Array.length sched.Sched.out_sink) 1)
        (fun _ -> Array.make m.Model.cs_max Word.disc);
    out_n = Array.make (max (Array.length sched.Sched.out_sink) 1) 0;
    conflicts = [] }

let reset_row (r : row) =
  Array.fill r.visible 0 (Array.length r.visible) Word.disc;
  Array.fill r.acc 0 (Array.length r.acc) Word.disc;
  Array.fill r.in_pending 0 (Array.length r.in_pending) false;
  r.pend_n <- 0;
  r.live_n <- 0;
  Array.blit r.sched.Sched.reg_init 0 r.regs 0 r.sched.Sched.nregs;
  for i = 0 to r.sched.Sched.nregs - 1 do
    r.reg_vis.(i) <- Sched.reg_view_init r.sched i
  done;
  Array.iter Fu_state.reset r.fu_states;
  Array.fill r.fu_out 0 (Array.length r.fu_out) Word.disc;
  Array.iter (fun a -> Array.fill a 0 (Array.length a) Word.disc) r.traces;
  Array.fill r.out_n 0 (Array.length r.out_n) 0;
  r.conflicts <- []

let[@inline] contribute (r : row) s v =
  if r.in_pending.(s) then r.acc.(s) <- Resolve.combine r.acc.(s) v
  else begin
    r.in_pending.(s) <- true;
    r.acc.(s) <- v;
    r.pend_ids.(r.pend_n) <- s;
    r.pend_n <- r.pend_n + 1
  end

let flip (r : row) ~step ~phase =
  for i = 0 to r.live_n - 1 do
    let s = r.live_ids.(i) in
    if not r.in_pending.(s) then begin
      let v = Sched.resolve_release r.sched s ~step ~phase in
      if Word.is_illegal v && not (Word.is_illegal r.visible.(s)) then
        r.conflicts <- (step, phase, r.sched.Sched.sink_name.(s)) :: r.conflicts;
      r.visible.(s) <- v
    end
  done;
  for i = 0 to r.pend_n - 1 do
    let s = r.pend_ids.(i) in
    let v = Sched.resolve_value r.sched s ~step ~phase r.acc.(s) in
    if Word.is_illegal v && not (Word.is_illegal r.visible.(s)) then
      r.conflicts <- (step, phase, r.sched.Sched.sink_name.(s)) :: r.conflicts;
    r.visible.(s) <- v
  done;
  let freed = r.live_ids in
  r.live_ids <- r.pend_ids;
  r.live_n <- r.pend_n;
  r.pend_ids <- freed;
  r.pend_n <- 0;
  for i = 0 to r.live_n - 1 do
    let s = r.live_ids.(i) in
    r.in_pending.(s) <- false;
    r.acc.(s) <- Word.disc
  done

let exec_step (r : row) step =
  let cm = Phase.to_int Phase.Cm and cr = Phase.to_int Phase.Cr in
  for pi = 0 to Phase.count - 1 do
    let phase = Phase.of_int_exn pi in
    flip r ~step ~phase;
    let acts = r.sched.Sched.slots.(((step - 1) * Phase.count) + pi) in
    for a = 0 to Array.length acts - 1 do
      let { Sched.src; dst } = acts.(a) in
      let v =
        match src with
        | Sched.Const w -> w
        | Sched.Reg i -> r.reg_vis.(i)
        | Sched.Bus s -> r.visible.(s)
        | Sched.Fu f -> r.fu_out.(f)
      in
      contribute r dst v
    done;
    if pi = cm then
      for f = 0 to Array.length r.fu_states - 1 do
        let u = r.sched.Sched.fu_plans.(f) in
        r.fu_out.(f) <-
          Fu_state.step r.fu_states.(f)
            ~op_index:r.visible.(u.Sched.op_sink)
            r.visible.(u.Sched.in1_sink) r.visible.(u.Sched.in2_sink)
      done
    else if pi = cr then begin
      for i = 0 to r.sched.Sched.nregs - 1 do
        let v = r.visible.(r.sched.Sched.reg_in_sink.(i)) in
        if not (Word.is_disc v) then begin
          r.regs.(i) <- v;
          r.reg_vis.(i) <- Sched.reg_view_latch r.sched i ~step v
        end
      done;
      for o = 0 to Array.length r.sched.Sched.out_sink - 1 do
        let v = r.visible.(r.sched.Sched.out_sink.(o)) in
        if not (Word.is_disc v) then begin
          let n = r.out_n.(o) in
          r.out_steps.(o).(n) <- step;
          r.out_vals.(o).(n) <- v;
          r.out_n.(o) <- n + 1
        end
      done;
      for i = 0 to r.sched.Sched.nregs - 1 do
        r.traces.(i).(step - 1) <- r.reg_vis.(i)
      done
    end
  done

(* Copy the golden row's state at boundary [b] into a variant — the
   in-memory equivalent of restoring a golden checkpoint: raw machine
   state verbatim, the register view re-resolved through the variant's
   tamper at its next visibility point (the kernel's resume rule), the
   conflict prefix in the snapshot's sorted order. *)
let join_row ~(golden : row) (v : row) ~boundary =
  Array.blit golden.visible 0 v.visible 0 (Array.length golden.visible);
  Array.blit golden.live_ids 0 v.live_ids 0 golden.live_n;
  v.live_n <- golden.live_n;
  v.pend_n <- 0;
  Array.blit golden.regs 0 v.regs 0 (Array.length golden.regs);
  for i = 0 to v.sched.Sched.nregs - 1 do
    v.reg_vis.(i) <- Sched.reg_view_resume v.sched i ~boundary v.regs.(i)
  done;
  Array.blit golden.fu_out 0 v.fu_out 0 (Array.length golden.fu_out);
  Array.iteri
    (fun i st -> Fu_state.restore v.fu_states.(i) (Fu_state.slots st))
    golden.fu_states;
  Array.iteri
    (fun i tr -> Array.blit tr 0 v.traces.(i) 0 boundary)
    golden.traces;
  Array.iteri
    (fun o steps ->
      Array.blit steps 0 v.out_steps.(o) 0 golden.out_n.(o);
      Array.blit golden.out_vals.(o) 0 v.out_vals.(o) 0 golden.out_n.(o);
      v.out_n.(o) <- golden.out_n.(o))
    golden.out_steps;
  v.conflicts <- List.rev (Snapshot.sort_conflicts golden.conflicts)

let observation (r : row) =
  let m = r.sched.Sched.model in
  { Observation.model_name = m.Model.name; cs_max = m.Model.cs_max;
    regs =
      List.mapi
        (fun i (reg : Model.register) ->
          (reg.reg_name, Array.copy r.traces.(i)))
        m.Model.registers;
    outputs =
      List.mapi
        (fun o name ->
          ( name,
            List.init r.out_n.(o) (fun k ->
                (r.out_steps.(o).(k), r.out_vals.(o).(k))) ))
        m.Model.outputs;
    conflicts = List.rev r.conflicts }

(* First boundary from which every remaining slot — including the
   boundary step's own (step, wb) slot, whose drivers are the live set
   crossing it — is physically the golden array. *)
let retire_from_of (golden : Sched.t) (s : Sched.t) (m : Model.t) =
  let wb = Phase.to_int Phase.Wb in
  let last_patched = ref (-1) in
  Array.iteri
    (fun k a -> if a != golden.Sched.slots.(k) then last_patched := k)
    s.Sched.slots;
  let rec find step =
    if step > m.Model.cs_max then step
    else if ((step - 1) * Phase.count) + wb > !last_patched then step
    else find (step + 1)
  in
  find 1

let rows_equal (g : row) (v : row) =
  let arrays_eq a b =
    let n = Array.length a in
    let rec go i = i >= n || (Word.equal a.(i) b.(i) && go (i + 1)) in
    go 0
  in
  (* component bits of the divergence mask, cheapest first; all clear
     means the rows cannot diverge again *)
  arrays_eq g.regs v.regs
  && arrays_eq g.reg_vis v.reg_vis
  && arrays_eq g.fu_out v.fu_out
  && arrays_eq g.visible v.visible
  && (let n = Array.length g.fu_states in
      let rec go i =
        i >= n
        || (Fu_state.slots g.fu_states.(i) = Fu_state.slots v.fu_states.(i)
            && go (i + 1))
      in
      go 0)
  && Snapshot.sort_conflicts g.conflicts = Snapshot.sort_conflicts v.conflicts

(* Exact per-boundary check that the observables recorded {e this}
   step equal the golden row's; once any differs the flag latches and
   the variant must run to completion. *)
let update_obs_dirty ~(golden : row) (var : variant) ~step =
  let v = var.row in
  if not var.obs_dirty then begin
    let dirty = ref false in
    for i = 0 to v.sched.Sched.nregs - 1 do
      if not (Word.equal v.traces.(i).(step - 1) golden.traces.(i).(step - 1))
      then dirty := true
    done;
    for o = 0 to Array.length v.out_n - 1 do
      if v.out_n.(o) <> golden.out_n.(o) then dirty := true
      else if
        v.out_n.(o) > 0
        && v.out_steps.(o).(v.out_n.(o) - 1) = step
        && not (Word.equal v.out_vals.(o).(v.out_n.(o) - 1)
                  golden.out_vals.(o).(golden.out_n.(o) - 1))
      then dirty := true
    done;
    if !dirty then var.obs_dirty <- true
  end

let prepare (m : Model.t) specs =
  Model.validate_exn m;
  List.iter
    (fun { inject; join; settle = _ } ->
      (match Compiled.compilable ~inject m with
       | Ok () -> ()
       | Error why ->
         invalid_arg (Printf.sprintf "Batch: model %s: %s" m.Model.name why));
      if join < 0 || join > m.Model.cs_max then
        invalid_arg
          (Printf.sprintf "Batch: join boundary %d outside [0, %d]" join
             m.Model.cs_max))
    specs;
  let golden_sched = Sched.compile m in
  let golden = make_row golden_sched m in
  reset_row golden;
  let variants =
    List.map
      (fun spec ->
        let sched = Sched.compile ~inject:spec.inject m in
        Sched.share_slots ~base:golden_sched sched;
        let row = make_row sched m in
        reset_row row;
        { spec; row;
          retire_from = retire_from_of golden_sched sched m;
          state = (if spec.join = 0 then Running else Waiting);
          obs_dirty = false })
      specs
  in
  (golden, variants)

let golden (m : Model.t) specs =
  let golden, variants = prepare m specs in
  for step = 1 to m.Model.cs_max do
    List.iter
      (fun v ->
        if v.state = Waiting && v.spec.join = step - 1 then begin
          join_row ~golden v.row ~boundary:(step - 1);
          v.state <- Running
        end)
      variants;
    exec_step golden step;
    List.iter
      (fun v ->
        if v.state = Running then begin
          exec_step v.row step;
          update_obs_dirty ~golden v ~step;
          if
            (not v.obs_dirty) && step < m.Model.cs_max
            && step >= v.spec.settle && step >= v.retire_from
            && rows_equal golden v.row
          then v.state <- Retired step
        end)
      variants
  done;
  let results =
    List.map
      (fun v ->
        let verdict =
          match v.state with
          | Retired s -> Converged s
          | Running -> Finished (observation v.row)
          | Waiting ->
            (* joined at the final boundary: the fault never acts, the
               observation is the golden one by construction *)
            Converged m.Model.cs_max
        in
        { verdict;
          cycles =
            Simulate.expected_cycles_injected ~inject:v.spec.inject m
              v.spec.join })
      variants
  in
  (observation golden, results)

let run m specs = snd (golden m specs)
