type src = Const of Word.t | Reg of int | Bus of int | Fu of int

type action = { src : src; dst : int }

type fu_plan = {
  fu : Model.fu;
  op_sink : int;
  in1_sink : int;
  in2_sink : int;
}

type t = {
  model : Model.t;
  inject : Inject.t;
  nsinks : int;
  sink_name : string array;
  sink_index : (string, int) Hashtbl.t;
  slots : action array array;
  slot_prov : int array array;
  static_actions : int;
  fu_plans : fu_plan array;
  nregs : int;
  reg_init : Word.t array;
  reg_in_sink : int array;
  out_sink : int array;
  sink_tamper : Inject.tamper option array;
  reg_tamper : Inject.tamper option array;
  mutable last_patched : int;
}

let oscillator_error (m : Model.t) =
  invalid_arg
    (Printf.sprintf
       "Compiled: model %s: an injected oscillator never settles, so \
        there is no static schedule; use the kernel or the interpreter"
       m.name)

let sink_id_in (m : Model.t) sink_index site n =
  match Hashtbl.find_opt sink_index n with
  | Some i -> i
  | None ->
    (* validated models only reference declared resources, so this
       is a compiler bug — mirror the elaboration diagnostic.
       Injected saboteurs also land here: their sinks are arbitrary
       user input, checked with the same message as the kernel's. *)
    invalid_arg
      (Printf.sprintf
         "Compiled: model %s declares no resource signal %S \
          (referenced by %s)"
         m.name n site)

(* Compile the clean model: every leg, every op-selection, no overlay.
   Fault overlays are patched onto this by [overlay] — they never
   recompile, so a campaign pays the hashtable and list walks below
   once per model, not once per variant. *)
let compile_base (m : Model.t) =
  let sink_ids = Hashtbl.create 64 in
  let names = ref [] in
  let add_sink n =
    if not (Hashtbl.mem sink_ids n) then begin
      Hashtbl.add sink_ids n (Hashtbl.length sink_ids);
      names := n :: !names
    end
  in
  List.iter add_sink m.buses;
  List.iter
    (fun (r : Model.register) -> add_sink (r.reg_name ^ ".in"))
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      add_sink (f.fu_name ^ ".in1");
      add_sink (f.fu_name ^ ".in2");
      add_sink (f.fu_name ^ ".op"))
    m.fus;
  List.iter add_sink m.outputs;
  let nsinks = Hashtbl.length sink_ids in
  let sink_name = Array.make (max nsinks 1) "" in
  List.iter (fun n -> sink_name.(Hashtbl.find sink_ids n) <- n) !names;
  let sink_id site n = sink_id_in m sink_ids site n in
  let reg_index = Hashtbl.create 16 in
  List.iteri
    (fun i (r : Model.register) -> Hashtbl.replace reg_index r.reg_name i)
    m.registers;
  let fu_index = Hashtbl.create 8 in
  List.iteri
    (fun i (f : Model.fu) -> Hashtbl.replace fu_index f.fu_name i)
    m.fus;
  let compile_src (l : Transfer.leg) =
    match l.src with
    | Transfer.Reg_out r -> Reg (Hashtbl.find reg_index r)
    | Transfer.In_port i ->
      (* input-port values are a pure function of the control step, so
         the read folds to a constant at compile time *)
      let v =
        match
          List.find_opt (fun (x : Model.input) -> x.in_name = i) m.inputs
        with
        | Some inp -> Model.input_value inp l.step
        | None -> Word.disc
      in
      Const v
    | Transfer.Bus b -> Bus (sink_id "a transfer leg" b)
    | Transfer.Fu_out f -> Fu (Hashtbl.find fu_index f)
    | Transfer.Reg_in _ | Transfer.Fu_in _ | Transfer.Out_port _ ->
      Const Word.disc
  in
  let nslots = m.cs_max * Phase.count in
  let slot_rev = Array.make nslots [] in
  let prov_rev = Array.make nslots [] in
  let slot_of step phase = ((step - 1) * Phase.count) + Phase.to_int phase in
  let legs, selects = Model.all_legs m in
  List.iteri
    (fun idx (l : Transfer.leg) ->
      let a =
        { src = compile_src l;
          dst = sink_id "a transfer leg" (Transfer.endpoint_name l.dst) }
      in
      let s = slot_of l.step l.phase in
      slot_rev.(s) <- a :: slot_rev.(s);
      prov_rev.(s) <- idx :: prov_rev.(s))
    legs;
  List.iter
    (fun (s : Transfer.op_select) ->
      match Hashtbl.find_opt fu_index s.sel_fu with
      | None -> ()
      | Some fi ->
        let f = List.nth m.fus fi in
        let rec find i = function
          | [] -> Word.illegal
          | o :: rest -> if Ops.equal o s.sel_op then i else find (i + 1) rest
        in
        let a =
          { src = Const (find 0 f.ops);
            dst = sink_id "an op selection" (s.sel_fu ^ ".op") }
        in
        let k = slot_of s.sel_step Phase.Rb in
        slot_rev.(k) <- a :: slot_rev.(k);
        prov_rev.(k) <- -1 :: prov_rev.(k))
    selects;
  let slots = Array.map (fun l -> Array.of_list (List.rev l)) slot_rev in
  let slot_prov = Array.map (fun l -> Array.of_list (List.rev l)) prov_rev in
  let static_actions =
    Array.fold_left (fun n a -> n + Array.length a) 0 slots
  in
  let fu_plans =
    Array.of_list
      (List.map
         (fun (f : Model.fu) ->
           { fu = f;
             op_sink = sink_id "a unit" (f.fu_name ^ ".op");
             in1_sink = sink_id "a unit" (f.fu_name ^ ".in1");
             in2_sink = sink_id "a unit" (f.fu_name ^ ".in2") })
         m.fus)
  in
  { model = m; inject = Inject.none; nsinks; sink_name;
    sink_index = sink_ids; slots; slot_prov; static_actions; fu_plans;
    nregs = List.length m.registers;
    reg_init =
      Array.of_list
        (List.map (fun (r : Model.register) -> r.init) m.registers);
    reg_in_sink =
      Array.of_list
        (List.map
           (fun (r : Model.register) ->
             sink_id "a register" (r.reg_name ^ ".in"))
           m.registers);
    out_sink =
      Array.of_list (List.map (sink_id "an output port") m.outputs);
    sink_tamper = Array.make (max nsinks 1) None;
    reg_tamper =
      Array.of_list (List.map (fun (_ : Model.register) -> None) m.registers);
    last_patched = -1 }

(* Patch an injection overlay onto a clean compile.  Only the slots a
   dropped leg or an in-range saboteur touches get fresh action
   arrays; every other slot of the result is [base]'s array — physical
   equality IS the "this slot is unpatched" relation the batch
   executor's early-retirement argument needs, and [last_patched]
   records the highest patched slot exactly.  The patched slot
   contents replay [compile_base]'s ordering: surviving legs in leg
   order, then op-selects, then saboteurs in plan order — so an
   overlay is action-for-action identical to a from-scratch compile of
   the injected model. *)
let overlay (base : t) (inject : Inject.t) =
  if not (Inject.is_none base.inject) then
    invalid_arg "Sched.overlay: base must be a clean compile";
  if Inject.is_none inject then base
  else begin
    let m = base.model in
    if inject.Inject.oscillators <> [] then oscillator_error m;
    let slots = Array.copy base.slots in
    let last_patched = ref (-1) in
    let note k = if k > !last_patched then last_patched := k in
    (if inject.Inject.drop_legs <> [] then
       Array.iteri
         (fun k prov ->
           let dropped = ref 0 in
           Array.iter
             (fun leg ->
               if leg >= 0 && Inject.drops_leg inject leg then incr dropped)
             prov;
           if !dropped > 0 then begin
             let old = base.slots.(k) in
             let kept = Array.length old - !dropped in
             let na =
               if kept = 0 then [||] else Array.make kept old.(0)
             in
             let j = ref 0 in
             Array.iteri
               (fun i leg ->
                 if leg < 0 || not (Inject.drops_leg inject leg) then begin
                   na.(!j) <- old.(i);
                   incr j
                 end)
               prov;
             slots.(k) <- na;
             note k
           end)
         base.slot_prov);
    let slot_of step phase = ((step - 1) * Phase.count) + Phase.to_int phase in
    List.iter
      (fun (sb : Inject.saboteur) ->
        let dst =
          sink_id_in m base.sink_index "an injected saboteur"
            sb.Inject.sab_sink
        in
        if sb.Inject.sab_step >= 1 && sb.Inject.sab_step <= m.cs_max then begin
          let k = slot_of sb.Inject.sab_step sb.Inject.sab_phase in
          slots.(k) <-
            Array.append slots.(k)
              [| { src = Const sb.Inject.sab_value; dst } |];
          note k
        end)
      inject.Inject.saboteurs;
    let static_actions =
      Array.fold_left (fun n a -> n + Array.length a) 0 slots
    in
    let fu_plans =
      if inject.Inject.fu_latency = [] then base.fu_plans
      else
        Array.map
          (fun (p : fu_plan) ->
            match Inject.latency_for inject p.fu.Model.fu_name with
            | Some latency -> { p with fu = { p.fu with Model.latency } }
            | None -> p)
          base.fu_plans
    in
    let sink_tamper =
      if inject.Inject.tampers = [] then base.sink_tamper
      else begin
        let st = Array.make (max base.nsinks 1) None in
        Array.iteri
          (fun i n -> if n <> "" then st.(i) <- Inject.tamper_for inject n)
          base.sink_name;
        st
      end
    in
    let reg_tamper =
      if inject.Inject.tampers = [] then base.reg_tamper
      else
        Array.of_list
          (List.map
             (fun (r : Model.register) ->
               Inject.tamper_for inject (r.reg_name ^ ".out"))
             m.registers)
    in
    { base with
      inject; slots; static_actions; fu_plans; sink_tamper; reg_tamper;
      last_patched = !last_patched }
  end

let compile ?(inject = Inject.none) (m : Model.t) =
  if inject.Inject.oscillators <> [] then oscillator_error m;
  overlay (compile_base m) inject

let share_slots ~base t =
  Array.iteri
    (fun k a -> if a != base.slots.(k) && a = base.slots.(k) then
        t.slots.(k) <- base.slots.(k))
    t.slots;
  let lp = ref (-1) in
  Array.iteri
    (fun k a -> if a != base.slots.(k) then lp := k)
    t.slots;
  t.last_patched <- !lp

let resolve_value t id ~step ~phase v =
  match t.sink_tamper.(id) with
  | None -> v
  | Some tam -> tam ~step ~phase v

let resolve_release t id ~step ~phase =
  match t.sink_tamper.(id) with
  | None -> Word.disc
  | Some tam -> tam ~step ~phase Word.disc

(* The kernel's REG process only drives the output when the initial
   value is not DISC, so the tamper only fires then; register-output
   tampers are step/phase-insensitive (stuck faults), so the exact
   point reported is immaterial — the same convention as {!Interp}. *)
let reg_view_init t r =
  match t.reg_tamper.(r) with
  | None -> t.reg_init.(r)
  | Some tam ->
    if Word.is_disc t.reg_init.(r) then Word.disc
    else tam ~step:1 ~phase:Phase.Ra t.reg_init.(r)

let reg_view_latch t r ~step v =
  match t.reg_tamper.(r) with
  | None -> v
  | Some tam ->
    let vis_step = if step < t.model.cs_max then step + 1 else step in
    tam ~step:vis_step ~phase:Phase.Ra v

let reg_view_resume t r ~boundary v =
  match t.reg_tamper.(r) with
  | None -> v
  | Some tam ->
    if Word.is_disc v then Word.disc
    else tam ~step:(boundary + 1) ~phase:Phase.Ra v
