(** The control-step controller (paper §2.2).

    Drives the [CS] (natural) and [PH] (phase) signals purely in delta
    time: starting from [CS = 0, PH = cr], each simulation cycle
    advances the phase, wrapping from [cr] to [ra] while incrementing
    the step, until [CS = cs_max] completes.  Simulating a model hence
    takes exactly [6 * cs_max] delta cycles (plus one final cycle if a
    register latches in the last step). *)

type t = {
  cs : Csrtl_kernel.Signal.t;  (** control step, 0 before the run *)
  ph : Csrtl_kernel.Signal.t;  (** current phase, encoded via {!Phase.to_int} *)
}

val add : ?init_step:int -> Csrtl_kernel.Scheduler.t -> cs_max:int -> t
(** Instantiate the controller process and its two signals.
    [init_step] (default 0) starts [CS] at a later boundary — the
    controller then drives steps [init_step + 1 .. cs_max], which is
    how {!Simulate.resume} re-enters the schedule mid-run. *)

val current_step : t -> int
val current_phase : t -> Phase.t

val phase_printer : Word.t -> string
(** Signal printer rendering the {!Phase} encoding. *)
