(** Batched lockstep execution of fault variants on the compiled
    schedule.

    A fault campaign runs the same model hundreds of times, each run
    differing from the golden one by a small injection overlay.  This
    executor runs K faulted variants {e plus} the golden run in one
    pass over the shared static schedule ({!Sched}): one state row per
    variant (flat [Word.t] arrays — unboxed int rows), the golden row
    stepped first, every variant stepped in lockstep over slots that
    are physically shared with the golden plan except where its
    overlay patched them ({!Sched.share_slots}).

    Two campaign-shaped shortcuts make this faster than K independent
    compiled runs:

    - {e joining}: a variant whose fault provably cannot act before
      control step [join + 1] ({!Csrtl_fault.Fault.first_step}) skips
      its prefix entirely — at boundary [join] the golden row's state
      is copied into it (the in-memory equivalent of restoring a
      golden checkpoint, including the tampered register view and the
      snapshot's sorted conflict prefix, so its observation is
      byte-identical to a kernel resumed from that snapshot);
    - {e early retirement}: a variant whose fault can no longer act
      (past [settle] and past its last patched slot) and whose state
      row has re-converged with the golden row — with no observable
      delta accrued — is retired as {!Converged}: its remaining
      future is the golden row's, so its full observation equals the
      golden observation and a campaign classifies it masked without
      executing the tail.

    Soundness of retirement rests on the static schedule: at a step
    boundary the pending set is empty and the live driver set is
    exactly the destination set of the (step, [wb]) slot, so physical
    slot sharing plus state-row equality implies equal futures.  The
    differential suite ([test/test_batch.ml]) pins batched results
    against the kernel, the interpreter and the per-variant compiled
    overlay. *)

type variant_spec = {
  inject : Inject.t;  (** must be compilable ({!Compiled.compilable}) *)
  join : int;
      (** golden boundary to join from, [0 .. cs_max]; must be strictly
          below the first step the injection can act in ([0] = run the
          variant from reset) *)
  settle : int;
      (** last control step the injection can act in
          ({!Csrtl_fault.Fault.last_step}); the variant is not
          considered for retirement before this boundary *)
}

type verdict =
  | Finished of Observation.t  (** ran (or joined and ran) to [cs_max] *)
  | Converged of int
      (** retired at this boundary: the full observation provably
          equals the golden run's *)

type result = {
  verdict : verdict;
  cycles : int;
      (** what the kernel would report for this variant resumed at
          [join]: {!Simulate.expected_cycles_injected} *)
}

val run : Model.t -> variant_spec list -> result list
(** Execute the golden run and every variant in lockstep; results are
    in input order.  Raises [Invalid_argument] when the model does not
    validate or a spec's injection has no static schedule
    ({!Compiled.compilable}); campaigns route those variants to the
    kernel instead. *)

val golden : Model.t -> variant_spec list -> Observation.t * result list
(** Like {!run}, also returning the golden row's observation (equal to
    {!Compiled.run} of the uninjected plan). *)
