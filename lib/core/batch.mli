(** Batched lockstep execution of fault variants on the compiled
    schedule.

    A fault campaign runs the same model hundreds of times, each run
    differing from the golden one by a small injection overlay.  This
    executor runs K faulted variants {e plus} the golden run in one
    pass over the shared static schedule ({!Sched}): the per-variant
    state lives in one structure-of-arrays {e arena} — flat unboxed
    [Word.t] (and [int]) arrays with one contiguous row per variant,
    the golden run in row 0 — stepped in lockstep over slots that are
    physically shared with the golden plan except where each variant's
    overlay patched them ({!Sched.overlay}).

    The arena is preallocated and cached per domain ({!Domain.DLS}):
    consecutive campaign chunks dispatched to the same worker reuse
    the same rows (grown monotonically, never shrunk), so the steady
    state of a campaign performs {e zero} minor-heap allocation in the
    step loop — the law {!alloc_probe} exposes and the scaling suite
    pins.  Rows are row-major and stride-contiguous, so a variant's
    whole state is cache-linear and no step boxes a value.

    Two campaign-shaped shortcuts make this faster than K independent
    compiled runs:

    - {e joining}: a variant whose fault provably cannot act before
      control step [join + 1] ({!Csrtl_fault.Fault.first_step}) skips
      its prefix entirely — at boundary [join] the golden row's state
      is copied into it (the in-memory equivalent of restoring a
      golden checkpoint, including the tampered register view and the
      snapshot's sorted conflict prefix, so its observation is
      byte-identical to a kernel resumed from that snapshot);
    - {e early retirement}: a variant whose fault can no longer act
      (past [settle] and past its last patched slot) and whose state
      row has re-converged with the golden row — with no observable
      delta accrued — is retired as {!Converged}: its remaining
      future is the golden row's, so its full observation equals the
      golden observation and a campaign classifies it masked without
      executing the tail.

    Soundness of retirement rests on the static schedule: at a step
    boundary the pending set is empty and the live driver set is
    exactly the destination set of the (step, [wb]) slot, so physical
    slot sharing plus state-row equality implies equal futures.  The
    arena layout itself is observation-invariant (SEMANTICS §10): the
    differential suite ([test/test_batch.ml]) pins batched results
    against the kernel, the interpreter and the per-variant compiled
    overlay, and the scaling suite ([test/test_scaling.ml]) pins
    report bytes across every (engine, jobs, batch) combination. *)

type variant_spec = {
  inject : Inject.t;  (** must be compilable ({!Compiled.compilable}) *)
  join : int;
      (** golden boundary to join from, [0 .. cs_max]; must be strictly
          below the first step the injection can act in ([0] = run the
          variant from reset) *)
  settle : int;
      (** last control step the injection can act in
          ({!Csrtl_fault.Fault.last_step}); the variant is not
          considered for retirement before this boundary *)
}

type verdict =
  | Finished of Observation.t  (** ran (or joined and ran) to [cs_max] *)
  | Converged of int
      (** retired at this boundary: the full observation provably
          equals the golden run's *)

type result = {
  verdict : verdict;
  cycles : int;
      (** what the kernel would report for this variant resumed at
          [join]: {!Simulate.expected_cycles_injected} *)
}

type plan
(** The reusable per-model part: the validated model, its compiled
    base schedule and the per-unit pipeline profiles.  Building one
    per campaign (instead of per chunk) is what lets parallel workers
    share the compilation work — only the arena is per-domain. *)

val plan : Model.t -> plan
(** Validate and compile the model once.  Raises [Invalid_argument]
    when the model does not validate. *)

val base_sched : plan -> Sched.t
(** The plan's uninjected compiled schedule — campaigns derive their
    golden fast path ({!Compiled.of_sched}) and checkpoints from it
    instead of recompiling. *)

val run_with : plan -> variant_spec list -> result list
(** Execute the golden run and every variant in lockstep on the
    calling domain's cached arena; results are in input order.  Raises
    [Invalid_argument] when a spec's injection has no static schedule
    ({!Compiled.compilable}); campaigns route those variants to the
    kernel instead. *)

val golden_with : plan -> variant_spec list -> Observation.t * result list
(** Like {!run_with}, also returning the golden row's observation
    (equal to {!Compiled.run} of the uninjected plan). *)

val run : Model.t -> variant_spec list -> result list
(** [run m specs] is [run_with (plan m) specs]. *)

val golden : Model.t -> variant_spec list -> Observation.t * result list
(** [golden m specs] is [golden_with (plan m) specs]. *)

val alloc_probe : plan -> variant_spec list -> float
(** Minor-heap words allocated by the lockstep step loop alone — arena
    binding and result materialization excluded, the probe's own
    bookkeeping calibrated out.  The scaling suite asserts this is [0.]
    for conflict-free specs; recording a conflict is the one step-loop
    path allowed to allocate (it conses the localization). *)
