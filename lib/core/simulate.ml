open Csrtl_kernel

type illegal_policy = Halt | Record | Degrade

type config = {
  wait_impl : [ `Keyed | `Predicate ];
  resolution_impl : [ `Incremental | `Fold ];
  on_illegal : illegal_policy;
  watchdog : bool;
}

let default =
  { wait_impl = `Keyed; resolution_impl = `Incremental;
    on_illegal = Record; watchdog = false }

type outcome =
  | Finished
  | Halted of int * Phase.t * string
  | Watchdog_tripped of int
  | Kernel_overflow of Types.delta_overflow

type result = {
  obs : Observation.t;
  cycles : int;
  stats : Types.stats;
  elaborated : Elaborate.t;
  outcome : outcome;
}

let src = Logs.Src.create "csrtl.sim" ~doc:"clock-free model simulation"

module Log = (val Logs.src_log src : Logs.LOG)

let expected_cycles_from (m : Model.t) s0 =
  (* A [wb] leg in the final step releases its driver during the last
     [cr] cycle, and a latching register schedules its output update
     there too: either adds one trailing cycle. *)
  let wb_leg_in_last_step =
    List.exists
      (fun (t : Transfer.t) ->
        t.write_step = Some m.cs_max && t.dst <> None)
      m.transfers
  in
  (Phase.count * (m.cs_max - s0)) + if wb_leg_in_last_step then 1 else 0

let expected_cycles m = expected_cycles_from m 0

(* An injection never changes how many deltas a run takes except at
   the trailing edge: tampers and latency overrides rewrite values,
   not transactions; a dropped leg removes a contribute/release pair
   that matured within its own step; a saboteur adds one that does.
   The only transactions that can mature after the final [cr] are the
   releases of drivers contributing during the last [wb] — a
   legitimate final-step [wb] leg or a saboteur scheduled there — so
   the faulted count is the law for the segment plus one exactly when
   some such driver survives the injection.  The batch executor emits
   this prediction as the run's kernel cycle count, and the
   differential suite ([test/test_batch.ml]) pins it against the
   event kernel. *)
let expected_cycles_injected ~(inject : Inject.t) (m : Model.t) s0 =
  let legs, _ = Model.all_legs m in
  let surviving_wb_leg =
    let i = ref (-1) in
    List.exists
      (fun (l : Transfer.leg) ->
        incr i;
        l.Transfer.step = m.cs_max
        && Phase.equal l.Transfer.phase Phase.Wb
        && not (Inject.drops_leg inject !i))
      legs
  in
  let wb_saboteur =
    List.exists
      (fun (sb : Inject.saboteur) ->
        sb.Inject.sab_step = m.cs_max
        && Phase.equal sb.Inject.sab_phase Phase.Wb)
      inject.Inject.saboteurs
  in
  (Phase.count * (m.cs_max - s0))
  + if surviving_wb_leg || wb_saboteur then 1 else 0

let watchdog_slack = 16

let run_internal ?vcd ?(trace = false) ?inject ?(config = default) ?from
    ?capture_at (m : Model.t) =
  let { wait_impl; resolution_impl; on_illegal; watchdog } = config in
  let e =
    Elaborate.build ~wait_impl ~resolution_impl ?inject
      ~degrade_illegal:(on_illegal = Degrade) ?from m
  in
  let s0 = match from with Some s -> s.Snapshot.step | None -> 0 in
  let k = e.kernel in
  let cs = e.ctrl.cs and ph = e.ctrl.ph in
  (* ILLEGAL localization on resolved sinks. *)
  let resolved_sinks = Hashtbl.create 32 in
  let remember name =
    match e.Elaborate.find_signal name with
    | Some s -> Hashtbl.replace resolved_sinks (Signal.id s) name
    | None ->
      (* every monitored name comes from the validated model, so a
         miss is an elaboration bug — fail loudly, never silently
         drop a conflict sink *)
      invalid_arg
        (Printf.sprintf
           "Simulate: elaboration of %s produced no signal %S to monitor"
           m.name name)
  in
  List.iter remember m.buses;
  List.iter remember m.outputs;
  List.iter
    (fun (r : Model.register) -> remember (r.reg_name ^ ".in"))
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      remember (f.fu_name ^ ".in1");
      remember (f.fu_name ^ ".in2");
      remember (f.fu_name ^ ".op"))
    m.fus;
  let conflicts =
    ref (match from with Some s -> List.rev s.Snapshot.conflicts | None -> [])
  in
  Scheduler.on_event k (fun s ->
      if Word.is_illegal (Signal.value s) then
        match Hashtbl.find_opt resolved_sinks (Signal.id s) with
        | Some name ->
          let step = Signal.value cs in
          let phase = Phase.of_int_exn (Signal.value ph) in
          conflicts := (step, phase, name) :: !conflicts;
          if on_illegal = Halt then Scheduler.request_stop k
        | None -> ());
  if trace then
    Scheduler.on_event k (fun s ->
        Log.debug (fun f ->
            f "[cycle %d cs=%d ph=%s] %a" (Scheduler.delta_count k)
              (Signal.value cs)
              (Controller.phase_printer (Signal.value ph))
              Signal.pp s));
  (match vcd with
   | Some buf -> ignore (Vcd.attach k ~out:buf [])
   | None -> ());
  (* Register snapshots: at each [ra] the previous step's latches have
     just matured. *)
  let reg_signals = Elaborate.register_outputs e in
  let snapshots = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      let arr = Array.make m.cs_max Word.disc in
      (match from with
       | Some s ->
         let prefix = List.assoc name s.Snapshot.trace in
         Array.blit prefix 0 arr 0 (Array.length prefix)
       | None -> ());
      Hashtbl.replace snapshots name arr)
    reg_signals;
  let snapshot step =
    if step >= 1 && step <= m.cs_max then
      List.iter
        (fun (name, s) ->
          (Hashtbl.find snapshots name).(step - 1) <- Signal.value s)
        reg_signals
  in
  ignore
    (Scheduler.add_process k ~name:"$monitor_regs" (fun () ->
         while true do
           Process.wait_keyed ph (Phase.to_int Phase.Ra);
           snapshot (Signal.value cs - 1)
         done));
  (* Output-port sampling at [cr]. *)
  let out_ports = Elaborate.output_ports e in
  let out_writes =
    ref (match from with Some s -> List.rev s.Snapshot.out_writes | None -> [])
  in
  if out_ports <> [] then
    ignore
      (Scheduler.add_process k ~name:"$monitor_outs" (fun () ->
           while true do
             Process.wait_keyed ph (Phase.to_int Phase.Cr);
             let step = Signal.value cs in
             List.iter
               (fun (name, s) ->
                 let v = Signal.value s in
                 if
                   (not (Word.is_disc v))
                   && not (on_illegal = Degrade && Word.is_illegal v)
                 then out_writes := (name, (step, v)) :: !out_writes)
               out_ports
           done));
  (* Boundary capture: at the [ra] cycle of step [s + 1] every sink
     has been released (SEMANTICS §10), so the machine state is the
     register file plus the unit pipelines and output latches.  The
     trace cell of step [s] is read from the matured register signals
     rather than the monitor table, so capture does not depend on
     process ordering against [$monitor_regs]. *)
  let captured = ref None in
  let capture step =
    { Snapshot.model_name = m.name;
      digest = Snapshot.digest_of_model m;
      step;
      regs = List.map (fun (n, s) -> (n, Signal.value s)) reg_signals;
      fu_out =
        List.map
          (fun (f : Model.fu) ->
            match e.Elaborate.find_signal (f.fu_name ^ ".out") with
            | Some s -> (f.fu_name, Signal.value s)
            | None -> (f.fu_name, Word.disc))
          m.fus;
      fu_slots =
        List.map (fun (n, st) -> (n, Fu_state.slots st)) e.Elaborate.fu_states;
      trace =
        List.map
          (fun (n, s) ->
            let a = Array.sub (Hashtbl.find snapshots n) 0 step in
            if step > 0 then a.(step - 1) <- Signal.value s;
            (n, a))
          reg_signals;
      out_writes = List.rev !out_writes;
      conflicts = Snapshot.sort_conflicts !conflicts }
  in
  (match capture_at with
   | Some step when step < m.cs_max ->
     ignore
       (Scheduler.add_process k ~name:"$capture" (fun () ->
            Process.wait_keyed cs (step + 1);
            captured := Some (capture step)))
   | Some _ | None -> ());
  let run_result =
    if watchdog then
      (* Control-step watchdog: the delta-cycle law bounds a healthy
         run, so anything past the law plus slack is a hang. *)
      Scheduler.run ~max_cycles:(expected_cycles_from m s0 + watchdog_slack) k
    else Scheduler.run k
  in
  (match capture_at with
   | Some step when step = m.cs_max && !captured = None ->
     (* the final boundary is the quiescent post-run state *)
     captured := Some (capture step)
   | Some _ | None -> ());
  let outcome =
    match run_result with
    | Scheduler.Completed | Scheduler.Stopped Scheduler.Stop_raised
    | Scheduler.Stopped Scheduler.Max_time ->
      Finished
    | Scheduler.Stopped Scheduler.Stop_requested ->
      (match List.rev !conflicts with
       | (s, p, n) :: _ -> Halted (s, p, n)
       | [] -> Finished)
    | Scheduler.Stopped Scheduler.Max_cycles ->
      Watchdog_tripped (Scheduler.delta_count k)
    | Scheduler.Overflow ov -> Kernel_overflow ov
  in
  (* The final step's register updates mature in the very last cycle;
     sample them from the quiescent signal state. *)
  snapshot m.cs_max;
  let obs =
    { Observation.model_name = m.name; cs_max = m.cs_max;
      regs =
        List.map (fun (name, _) -> (name, Hashtbl.find snapshots name))
          reg_signals;
      outputs =
        List.map
          (fun (o, _) ->
            ( o,
              List.rev
                (List.filter_map
                   (fun (name, w) -> if name = o then Some w else None)
                   !out_writes) ))
          out_ports;
      conflicts = List.rev !conflicts }
  in
  ( { obs; cycles = Scheduler.delta_count k; stats = Scheduler.stats k;
      elaborated = e; outcome },
    !captured )

let run_cfg ?vcd ?trace ?inject ?config m =
  fst (run_internal ?vcd ?trace ?inject ?config m)

let snapshot_at ?(config = default) ~step (m : Model.t) =
  if step < 0 || step > m.cs_max then
    invalid_arg
      (Printf.sprintf "Simulate.snapshot_at: step %d outside [0, %d]" step
         m.cs_max);
  match run_internal ~config ~capture_at:step m with
  | _, Some s -> s
  | _, None ->
    (* only reachable when the run aborted before the boundary, which
       an uninjected model cannot do *)
    invalid_arg "Simulate.snapshot_at: run ended before the boundary"

let resume ?vcd ?trace ?inject ?config ~from m =
  fst (run_internal ?vcd ?trace ?inject ?config ~from m)

let run ?vcd ?trace ?wait_impl ?resolution_impl ?inject ?on_illegal
    ?watchdog m =
  let pick v dflt = Option.value ~default:dflt v in
  let config =
    { wait_impl = pick wait_impl default.wait_impl;
      resolution_impl = pick resolution_impl default.resolution_impl;
      on_illegal = pick on_illegal default.on_illegal;
      watchdog = pick watchdog default.watchdog }
  in
  run_cfg ?vcd ?trace ?inject ~config m

let pp_outcome ppf = function
  | Finished -> Format.pp_print_string ppf "finished"
  | Halted (s, p, n) ->
    Format.fprintf ppf "halted on ILLEGAL at step %d phase %s on %s" s
      (Phase.to_string p) n
  | Watchdog_tripped cycles ->
    Format.fprintf ppf "watchdog tripped after %d cycles" cycles
  | Kernel_overflow ov -> Types.pp_delta_overflow ppf ov
