(** Durable machine state at a control-step boundary.

    The six-phase discipline makes every control-step boundary a
    quiescent point (SEMANTICS §10): after [cr] of step [k] every bus
    and port has been released — or is about to be released, with no
    reader left to observe it — so the complete machine state is the
    register contents plus the functional-unit pipelines.  A snapshot
    captures exactly that, together with the observation prefix
    (register trace, output writes, conflicts) accumulated so far, so
    that resuming from a snapshot reproduces the uninterrupted run's
    {!Observation} bit for bit.

    Snapshots are engine-independent: the kernel, the interpreter and
    the phase-compiled executor all capture and accept the same value,
    and for the same model and step they produce byte-identical
    serializations.  Snapshots are only defined for uninjected
    (golden) runs; resuming {e with} an injection is how fault
    campaigns skip the fault-free prefix. *)

type t = {
  model_name : string;
  digest : string;
      (** hex digest of the canonical model text ({!digest_of_model});
          guards against restoring into a different model *)
  step : int;  (** completed control steps, [0 <= step <= cs_max] *)
  regs : (string * Word.t) list;  (** declaration order *)
  fu_out : (string * Word.t) list;
      (** output-port latch of each unit, declaration order *)
  fu_slots : (string * Word.t array) list;
      (** pipeline slots of each unit, newest first *)
  trace : (string * Word.t array) list;
      (** per-register observed values for steps [1..step] *)
  out_writes : (string * (int * Word.t)) list;
      (** output-port writes so far, chronological *)
  conflicts : (int * Phase.t * string) list;
      (** conflicts so far, sorted canonically (step, phase, sink) *)
}

val digest_of_model : Model.t -> string
(** Hex digest of [Rtm.to_string m] — the canonical model text. *)

val sort_conflicts :
  (int * Phase.t * string) list -> (int * Phase.t * string) list
(** Canonical order: by step, then phase, then sink name.  Engines
    discover simultaneous conflicts in different (equivalent) orders;
    snapshots store the sorted form so serializations agree. *)

val validate : Model.t -> t -> (unit, string) result
(** Structural compatibility with a model: digest, step range,
    register/unit names and order, pipeline depths, trace lengths. *)

val validate_exn : Model.t -> t -> unit
(** Raises [Invalid_argument] when {!validate} fails. *)

val equal : t -> t -> bool

val to_string : t -> string
(** Stable line-based text form; [of_string (to_string s) = Ok s]. *)

val of_string : string -> (t, string) result

val save : string -> t -> unit
(** Write [to_string] to a file. *)

val load : string -> (t, string) result
(** Read a file written by {!save}; [Error] on I/O or parse failure. *)

val pp : Format.formatter -> t -> unit
