(** Fault-injection plans, applied to both execution paths.

    An injection describes how to corrupt a run of a clean model
    {e without modifying the model}: {!Elaborate.build} realizes it
    with wrapped resolution functions and saboteur processes on the
    kernel, and {!Interp.run} applies the same corruption at its
    phase flips, so a faulted model still has one semantics checkable
    on both paths.  {!Csrtl_fault} enumerates injections from a fault
    taxonomy and runs golden-vs-faulted campaigns. *)

type tamper = step:int -> phase:Phase.t -> Word.t -> Word.t
(** A tamper rewrites the {e resolved} value of a sink at the moment
    it becomes visible — the (step, phase) arguments are the
    visibility point, exactly where the paper's resolution function
    output appears.  It is applied only when the sink actually
    resolves (a value or release transaction occurred); a sink whose
    drivers are silent keeps its previous — possibly tampered —
    value, on both paths. *)

type saboteur = {
  sab_sink : string;  (** resolved sink to drive (a bus) *)
  sab_step : int;
  sab_phase : Phase.t;
      (** phase {e during} which the spurious driver contributes; its
          value is visible at the successor phase.  Must not be [Cr]
          (there is no later phase in the step to release in). *)
  sab_value : Word.t;
}

type oscillator = {
  osc_sink : string;  (** resolved sink whose driver set never settles *)
  osc_step : int;
  osc_phase : Phase.t;
      (** first (step, phase) at which the metastable driver engages;
          from then on the net re-evaluates on every delta cycle and
          never reaches quiescence *)
}
(** A metastable net.  The kernel realizes it as a self-retriggering
    process, so the run livelocks (caught by the {!Simulate} watchdog
    or the kernel's delta-overflow bound); the interpreter, which
    computes one fixpoint per phase, {e proves} there is none and
    raises {!Interp.Unstable} at the trigger slot.  Both paths
    classify as hung in a campaign. *)

type t = {
  tampers : (string * tamper) list;  (** per-sink resolution wraps *)
  drop_legs : int list;
      (** indices into the leg list of {!Model.all_legs}: these TRANS
          instances are not instantiated *)
  saboteurs : saboteur list;
  fu_latency : (string * int) list;
      (** forced pipeline depth per functional unit, replacing the
          model's latency without re-validating the schedule *)
  oscillators : oscillator list;
}

val none : t
val is_none : t -> bool

val tamper_for : t -> string -> tamper option
val latency_for : t -> string -> int option
val drops_leg : t -> int -> bool

val stuck : Word.t -> tamper
(** Resolution always yields the given word. *)

val transient : step:int -> phase:Phase.t -> Word.t -> tamper
(** Resolution yields the given word only at one visibility slot. *)

val stuck_sink : sink:string -> Word.t -> t
val transient_sink : sink:string -> step:int -> phase:Phase.t -> Word.t -> t
val dropped_leg : int -> t

val extra_driver : sink:string -> step:int -> phase:Phase.t -> Word.t -> t
(** Raises [Invalid_argument] if [phase] is [Cr]. *)

val fu_latency : fu:string -> int -> t
(** Raises [Invalid_argument] if the latency is below 1. *)

val oscillator : sink:string -> step:int -> phase:Phase.t -> t
(** A metastable driver on [sink] engaging at (step, phase) — see
    {!type:oscillator}. *)

val merge : t -> t -> t
