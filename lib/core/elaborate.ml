open Csrtl_kernel

type t = {
  kernel : Scheduler.t;
  model : Model.t;
  ctrl : Controller.t;
  signal_of : Transfer.endpoint -> Signal.t;
  find_signal : string -> Signal.t option;
  fu_states : (string * Fu_state.t) list;
}

let word_printer = Word.to_string

let op_printer (ops : Ops.t list) v =
  if Word.is_disc v then "DISC"
  else if Word.is_illegal v then "ILLEGAL"
  else
    match List.nth_opt ops v with
    | Some op -> Ops.to_string op
    | None -> Printf.sprintf "?op:%d" v

let build ?kernel ?(wait_impl = `Keyed) ?(resolution_impl = `Incremental)
    ?(inject = Inject.none) ?(degrade_illegal = false) ?from (m : Model.t) =
  Model.validate_exn m;
  (match from with Some s -> Snapshot.validate_exn m s | None -> ());
  (* Resuming from a control-step boundary: the controller starts at
     the snapshot step, restored state becomes each process's initial
     assignment, and every statically-scheduled process whose slot lies
     at or before the boundary is simply not elaborated. *)
  let s0 = match from with Some s -> s.Snapshot.step | None -> 0 in
  let resolution =
    match resolution_impl with
    | `Incremental -> Resolve.kernel_resolution
    | `Fold -> Csrtl_kernel.Types.Fold Resolve.resolve
  in
  let k = match kernel with Some k -> k | None -> Scheduler.create () in
  let ctrl = Controller.add ~init_step:s0 k ~cs_max:m.cs_max in
  let cs = ctrl.cs and ph = ctrl.ph in
  (* An injected tamper rewrites the resolution output at the moment
     the value becomes visible; the control signals carry the lowest
     sids, so they are already resolved (see Scheduler.fire_events)
     and [cs]/[ph] read the visibility point. *)
  let tampered_resolution (tam : Inject.tamper) base =
    let apply v =
      tam ~step:(Signal.value cs)
        ~phase:(Phase.of_int_exn (Signal.value ph))
        v
    in
    match base with
    | Csrtl_kernel.Types.Fold f ->
      Csrtl_kernel.Types.Fold (fun arr -> apply (f arr))
    | Csrtl_kernel.Types.Incremental mk ->
      Csrtl_kernel.Types.Incremental
        (fun () ->
          let st = mk () in
          { st with
            Csrtl_kernel.Types.incr_read =
              (fun () -> apply (st.Csrtl_kernel.Types.incr_read ())) })
  in
  let table : (string, Signal.t) Hashtbl.t = Hashtbl.create 64 in
  let declare ?resolution ?printer name init =
    let s = Scheduler.signal k ?resolution ?printer ~name ~init () in
    Hashtbl.replace table name s;
    s
  in
  let resolved ?printer name =
    let resolution =
      match Inject.tamper_for inject name with
      | None -> resolution
      | Some tam -> tampered_resolution tam resolution
    in
    declare ~resolution
      ~printer:(Option.value ~default:word_printer printer) name Word.disc
  in
  let plain ?printer name init =
    match Inject.tamper_for inject name with
    | None ->
      declare ~printer:(Option.value ~default:word_printer printer) name init
    | Some tam ->
      (* A tampered single-driver signal (a register output) becomes a
         one-driver resolved signal so the tamper sits at the same
         place as on a bus: the resolution output. *)
      let res =
        tampered_resolution tam
          (Csrtl_kernel.Types.Fold
             (fun arr -> if Array.length arr = 0 then init else arr.(0)))
      in
      declare ~resolution:res
        ~printer:(Option.value ~default:word_printer printer) name init
  in
  (* Signals. *)
  List.iter (fun b -> ignore (resolved b)) m.buses;
  List.iter
    (fun (r : Model.register) ->
      ignore (resolved (r.reg_name ^ ".in"));
      ignore (plain (r.reg_name ^ ".out") Word.disc))
    m.registers;
  List.iter
    (fun (f : Model.fu) ->
      ignore (resolved (f.fu_name ^ ".in1"));
      ignore (resolved (f.fu_name ^ ".in2"));
      ignore (plain (f.fu_name ^ ".out") Word.disc);
      ignore (resolved ~printer:(op_printer f.ops) (f.fu_name ^ ".op")))
    m.fus;
  List.iter
    (fun (i : Model.input) -> ignore (plain i.in_name Word.disc))
    m.inputs;
  List.iter (fun o -> ignore (resolved o)) m.outputs;
  let sig_named ?(site = "elaboration") n =
    match Hashtbl.find_opt table n with
    | Some s -> s
    | None ->
      invalid_arg
        (Printf.sprintf
           "Elaborate: model %s declares no resource signal %S \
            (referenced by %s)"
           m.name n site)
  in
  let signal_of ep =
    sig_named ~site:"a signal_of lookup" (Transfer.endpoint_name ep)
  in
  (* Wait for a phase (any step), with either implementation. *)
  let wait_phase phase =
    match wait_impl with
    | `Keyed -> Process.wait_keyed ph (Phase.to_int phase)
    | `Predicate ->
      Process.wait_until [ ph ] (fun () ->
          Signal.value ph = Phase.to_int phase)
  in
  (* First activation of a transfer at (step, phase): in keyed mode,
     wake on the step-counter event (the [ra] cycle of that step --
     the bucket holds only that step's transfers), then on the phase
     value if the phase is later in the step.  Waking costs O(1) per
     leg instead of a scan of every pending leg per cycle. *)
  let wait_first step phase =
    match wait_impl with
    | `Keyed ->
      Process.wait_keyed cs step;
      if phase <> Phase.Ra then Process.wait_keyed ph (Phase.to_int phase)
    | `Predicate ->
      Process.wait_until [ cs; ph ] (fun () ->
          Signal.value cs = step && Signal.value ph = Phase.to_int phase)
  in
  (* Second activation (the DISC release): same step, one phase
     later; legs exist only for phases [ra..wb], so the successor is
     never [ra] and a phase-keyed wait suffices. *)
  let wait_release step phase =
    match wait_impl with
    | `Keyed -> Process.wait_keyed ph (Phase.to_int phase)
    | `Predicate ->
      Process.wait_until [ cs; ph ] (fun () ->
          Signal.value cs = step && Signal.value ph = Phase.to_int phase)
  in
  (* Input drivers. *)
  List.iter
    (fun (i : Model.input) ->
      let s = sig_named i.in_name in
      match i.drive with
      | Model.Const v ->
        ignore
          (Scheduler.add_process k ~name:("IN_" ^ i.in_name) (fun () ->
               Scheduler.assign k s v))
      | Model.Schedule _ ->
        ignore
          (Scheduler.add_process k ~name:("IN_" ^ i.in_name) (fun () ->
               Scheduler.assign k s (Model.input_value i (s0 + 1));
               while true do
                 wait_phase Phase.Cr;
                 let next = Signal.value cs + 1 in
                 if next <= m.cs_max then
                   Scheduler.assign k s (Model.input_value i next)
               done)))
    m.inputs;
  (* Register processes (paper §2.5). *)
  List.iter
    (fun (r : Model.register) ->
      let r_in = sig_named (r.reg_name ^ ".in") in
      let r_out = sig_named (r.reg_name ^ ".out") in
      let init_v =
        match from with
        | None -> r.init
        | Some snap -> List.assoc r.reg_name snap.Snapshot.regs
      in
      ignore
        (Scheduler.add_process k ~name:("REG_" ^ r.reg_name) (fun () ->
             if not (Word.is_disc init_v) then Scheduler.assign k r_out init_v;
             while true do
               wait_phase Phase.Cr;
               let v = Signal.value r_in in
               (* fail-soft policy: under [degrade_illegal] a conflict
                  is recorded but never latched, so the register keeps
                  its last good value *)
               if
                 (not (Word.is_disc v))
                 && not (degrade_illegal && Word.is_illegal v)
               then Scheduler.assign k r_out v
             done)))
    m.registers;
  (* Module processes (paper §2.6). *)
  let fu_states =
    List.map
      (fun (f : Model.fu) ->
        let in1 = sig_named (f.fu_name ^ ".in1") in
        let in2 = sig_named (f.fu_name ^ ".in2") in
        let out = sig_named (f.fu_name ^ ".out") in
        let op = sig_named (f.fu_name ^ ".op") in
        let st =
          Fu_state.create
            (match Inject.latency_for inject f.fu_name with
             | Some latency -> { f with latency }
             | None -> f)
        in
        let out0 =
          match from with
          | None -> Word.disc
          | Some snap ->
            Fu_state.restore st (List.assoc f.fu_name snap.Snapshot.fu_slots);
            List.assoc f.fu_name snap.Snapshot.fu_out
        in
        ignore
          (Scheduler.add_process k ~name:("FU_" ^ f.fu_name) (fun () ->
               if not (Word.is_disc out0) then Scheduler.assign k out out0;
               while true do
                 wait_phase Phase.Cm;
                 let v =
                   Fu_state.step st ~op_index:(Signal.value op)
                     (Signal.value in1) (Signal.value in2)
                 in
                 Scheduler.assign k out v
               done));
        (f.fu_name, st))
      m.fus
  in
  (* Transfer processes, one per leg (paper §2.4), plus op selection. *)
  let legs, selects = Model.all_legs m in
  List.iteri
    (fun idx (l : Transfer.leg) ->
      if l.step > s0 && not (Inject.drops_leg inject idx) then begin
        let site = Format.asprintf "TRANS leg %a" Transfer.pp_leg l in
        let src = sig_named ~site (Transfer.endpoint_name l.src) in
        let dst = sig_named ~site (Transfer.endpoint_name l.dst) in
        let name = "TRANS" ^ string_of_int idx in
        ignore
          (Scheduler.add_process k ~name (fun () ->
               wait_first l.step l.phase;
               Scheduler.assign k dst (Signal.value src);
               wait_release l.step (Phase.succ l.phase);
               Scheduler.assign k dst Word.disc))
      end)
    legs;
  List.iteri
    (fun idx (s : Transfer.op_select) ->
      match Model.find_fu m s.sel_fu with
      | _ when s.sel_step <= s0 -> ()
      | None -> ()
      | Some f ->
        let op_sig = sig_named (f.fu_name ^ ".op") in
        let index =
          let rec find i = function
            | [] -> Word.illegal
            | op :: rest -> if Ops.equal op s.sel_op then i else find (i + 1) rest
          in
          find 0 f.ops
        in
        let name = "OPSEL" ^ string_of_int idx in
        ignore
          (Scheduler.add_process k ~name (fun () ->
               wait_first s.sel_step Phase.Rb;
               Scheduler.assign k op_sig index;
               wait_release s.sel_step Phase.Cm;
               Scheduler.assign k op_sig Word.disc)))
    selects;
  (* Saboteur processes: spurious extra drivers, shaped exactly like a
     TRANS leg (drive during the phase, release one phase later) so an
     injected driver obeys the same visibility discipline. *)
  List.iteri
    (fun idx (sb : Inject.saboteur) ->
      let s = sig_named ~site:"an injected saboteur" sb.sab_sink in
      if sb.Inject.sab_step > s0 then begin
        let name = "SAB" ^ string_of_int idx in
        ignore
          (Scheduler.add_process k ~name (fun () ->
               wait_first sb.sab_step sb.sab_phase;
               Scheduler.assign k s sb.sab_value;
               wait_release sb.sab_step (Phase.succ sb.sab_phase);
               Scheduler.assign k s Word.disc))
      end)
    inject.Inject.saboteurs;
  (* Oscillator processes: a metastable net.  From the trigger slot on,
     the process re-triggers itself through a private toggle signal
     every delta cycle, so the run never reaches quiescence — the
     bounded realization of "this driver set has no fixpoint". *)
  List.iteri
    (fun idx (o : Inject.oscillator) ->
      let s = sig_named ~site:"an injected oscillator" o.Inject.osc_sink in
      if o.Inject.osc_step > s0 then begin
        let name = "OSC" ^ string_of_int idx in
        let tick = Scheduler.signal k ~name:(name ^ ".tick") ~init:0 () in
        ignore
          (Scheduler.add_process k ~name (fun () ->
               wait_first o.Inject.osc_step o.Inject.osc_phase;
               let v = ref 0 in
               while true do
                 Scheduler.assign k s !v;
                 v := 1 - !v;
                 Scheduler.assign k tick (1 - Signal.value tick);
                 Process.wait_on [ tick ]
               done))
      end)
    inject.Inject.oscillators;
  { kernel = k; model = m; ctrl; signal_of;
    find_signal = Hashtbl.find_opt table; fu_states }

let lookup t names =
  List.filter_map
    (fun n -> Option.map (fun s -> (n, s)) (t.find_signal n))
    names

let bus_signals t = lookup t t.model.buses

let register_outputs t =
  List.map
    (fun (r : Model.register) ->
      (r.reg_name, t.signal_of (Transfer.Reg_out r.reg_name)))
    t.model.registers

let output_ports t =
  List.map (fun o -> (o, t.signal_of (Transfer.Out_port o))) t.model.outputs
