type t = {
  model_name : string;
  cs_max : int;
  regs : (string * Word.t array) list;
  outputs : (string * (int * Word.t) list) list;
  conflicts : (int * Phase.t * string) list;
}

let reg_trace t name = List.assoc_opt name t.regs

let final_reg t name =
  match reg_trace t name with
  | Some arr when Array.length arr > 0 -> Some arr.(Array.length arr - 1)
  | Some _ | None -> None

let output_writes t name =
  Option.value ~default:[] (List.assoc_opt name t.outputs)

let has_conflict t = t.conflicts <> []

let compare_conflict (s1, p1, n1) (s2, p2, n2) =
  let c = Int.compare s1 s2 in
  if c <> 0 then c
  else
    let c = Phase.compare p1 p2 in
    if c <> 0 then c else String.compare n1 n2

let normalize t =
  let by_name (a, _) (b, _) = String.compare a b in
  { t with
    regs = List.sort by_name t.regs;
    outputs =
      List.map (fun (n, ws) -> (n, List.sort Stdlib.compare ws)) t.outputs
      |> List.sort by_name;
    conflicts = List.sort_uniq compare_conflict t.conflicts }

let equal a b = normalize a = normalize b

let diff a b =
  let a = normalize a and b = normalize b in
  let out = ref [] in
  let say fmt = Format.kasprintf (fun s -> out := s :: !out) fmt in
  if a.cs_max <> b.cs_max then say "cs_max: %d vs %d" a.cs_max b.cs_max;
  let reg_names o = List.map fst o.regs in
  if reg_names a <> reg_names b then
    say "register sets differ: [%s] vs [%s]"
      (String.concat " " (reg_names a))
      (String.concat " " (reg_names b))
  else
    List.iter2
      (fun (n, va) (_, vb) ->
        if va <> vb then
          Array.iteri
            (fun i x ->
              if i < Array.length vb && x <> vb.(i) then
                say "%s at step %d: %s vs %s" n (i + 1) (Word.to_string x)
                  (Word.to_string vb.(i)))
            va)
      a.regs b.regs;
  if a.outputs <> b.outputs then say "output traces differ";
  if a.conflicts <> b.conflicts then begin
    let show (s, p, n) =
      Printf.sprintf "%d/%s:%s" s (Phase.to_string p) n
    in
    say "conflicts: [%s] vs [%s]"
      (String.concat " " (List.map show a.conflicts))
      (String.concat " " (List.map show b.conflicts))
  end;
  List.rev !out

(* ---- serialization ----------------------------------------------
   Same line discipline as {!Snapshot}: one versioned magic line, one
   space-separated record per line, an explicit end marker.  The
   artifact cache embeds these bytes verbatim, so the format must
   round-trip exactly — [of_string (to_string t) = Ok t]. *)

let magic = "csrtl-observation 1"

let to_string t =
  let b = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf
      (fun l ->
        Buffer.add_string b l;
        Buffer.add_char b '\n')
      fmt
  in
  let words a = String.concat " " (List.map Word.to_string (Array.to_list a)) in
  line "%s" magic;
  line "model %s" t.model_name;
  line "cs_max %d" t.cs_max;
  List.iter
    (fun (n, a) ->
      if Array.length a = 0 then line "reg %s" n else line "reg %s %s" n (words a))
    t.regs;
  List.iter
    (fun (n, ws) ->
      let pairs =
        String.concat " "
          (List.map
             (fun (s, v) -> Printf.sprintf "%d %s" s (Word.to_string v))
             ws)
      in
      if ws = [] then line "out %s" n else line "out %s %s" n pairs)
    t.outputs;
  List.iter
    (fun (s, p, n) -> line "conflict %d %s %s" s (Phase.to_string p) n)
    t.conflicts;
  line "end";
  Buffer.contents b

exception Bad of string

let of_string text =
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let word tok =
    match Word.of_string tok with
    | Some w -> w
    | None -> bad "bad word %S" tok
  in
  let int_of tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> bad "bad integer %S" tok
  in
  let rec pairs = function
    | [] -> []
    | s :: v :: rest -> (int_of s, word v) :: pairs rest
    | [ odd ] -> bad "dangling output token %S" odd
  in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let fields l = String.split_on_char ' ' l |> List.filter (fun t -> t <> "") in
  try
    match lines with
    | m :: rest when String.trim m = magic ->
      let model_name = ref "" and cs_max = ref (-1) in
      let regs = ref [] and outputs = ref [] and conflicts = ref [] in
      let seen_end = ref false in
      List.iter
        (fun l ->
          if !seen_end then bad "content after end marker";
          match fields l with
          | [ "model"; n ] -> model_name := n
          | [ "cs_max"; c ] -> cs_max := int_of c
          | "reg" :: n :: vs ->
            regs := (n, Array.of_list (List.map word vs)) :: !regs
          | "out" :: n :: toks -> outputs := (n, pairs toks) :: !outputs
          | [ "conflict"; s; p; n ] ->
            let p =
              match Phase.of_string p with
              | Some p -> p
              | None -> bad "bad phase %S" p
            in
            conflicts := (int_of s, p, n) :: !conflicts
          | [ "end" ] -> seen_end := true
          | _ -> bad "unrecognized line %S" l)
        rest;
      if not !seen_end then bad "truncated observation (no end marker)";
      if !model_name = "" then bad "missing model line";
      if !cs_max < 0 then bad "missing cs_max line";
      Ok
        {
          model_name = !model_name;
          cs_max = !cs_max;
          regs = List.rev !regs;
          outputs = List.rev !outputs;
          conflicts = List.rev !conflicts;
        }
    | _ -> Error "not a csrtl observation (bad magic line)"
  with Bad msg -> Error msg

let pp ppf t =
  Format.fprintf ppf "@[<v>observation of %s (cs_max=%d)@," t.model_name
    t.cs_max;
  List.iter
    (fun (n, arr) ->
      Format.fprintf ppf "  %s: %s@," n
        (String.concat " "
           (Array.to_list (Array.map Word.to_string arr))))
    t.regs;
  List.iter
    (fun (n, ws) ->
      Format.fprintf ppf "  out %s: %s@," n
        (String.concat " "
           (List.map
              (fun (s, v) -> Printf.sprintf "%d:%s" s (Word.to_string v))
              ws)))
    t.outputs;
  List.iter
    (fun (s, p, n) ->
      Format.fprintf ppf "  ILLEGAL at step %d phase %s on %s@," s
        (Phase.to_string p) n)
    t.conflicts;
  Format.fprintf ppf "@]"
