(** Functional-unit execution state, shared between the kernel
    elaboration and the reference interpreter.

    A unit owns a pipeline of [latency] slots (the paper's variable
    [M], generalized).  Each control step, at phase [cm], {!step}
    returns the value the unit drives on its output port (the oldest
    slot) and inserts the result computed from this step's operands
    at the head.  Implementing the behaviour once guarantees the two
    execution paths agree — the consistency property of DESIGN.md
    experiment C6. *)

type t

type profile
(** The per-unit facts {!step} branches on — op table as a flat array,
    stickiness, pipelining, the solo-stateful idle rule — precomputed
    once so the hot path does no list traversal and no allocation. *)

val profile : Model.fu -> profile
(** Latency-independent: a latency override changes the slot count a
    unit binds ({!step_flat}'s [lat]), never its profile. *)

val create : Model.fu -> t
val reset : t -> unit

val step_flat :
  profile ->
  slots:Word.t array ->
  off:int ->
  lat:int ->
  op_index:Word.t ->
  Word.t ->
  Word.t ->
  Word.t
(** {!step} over a flat pipeline slice: the unit's [lat] slots live at
    [slots.(off) .. slots.(off + lat - 1)], newest first.  This is the
    single implementation of the pipeline semantics — {!step} is this
    applied to the record's own slot array — and it allocates nothing,
    which the batched executor's structure-of-arrays inner loop
    ([Batch]) depends on. *)

val step : t -> op_index:Word.t -> Word.t -> Word.t -> Word.t
(** [step u ~op_index a b] processes one [cm] phase.  [op_index] is
    the resolved value of the unit's op-select port: an index into
    [fu.ops], [Word.disc] when no transfer reads the unit this step,
    or [Word.illegal] on a select conflict.  Returns the output-port
    value for this step.

    Behaviour (paper §2.6, extended):
    - output = oldest pipeline slot;
    - new head = DISC when no operands arrive (stateful operations
      hold their accumulator);
    - ILLEGAL when: the select or an operand is ILLEGAL, operands are
      partially supplied, operands arrive with a DISC select, the
      select is out of range, or — for non-pipelined units — operands
      arrive while a previous computation is still in flight;
    - when [sticky_illegal], an ILLEGAL head persists. *)

val busy : t -> bool
(** True while any in-flight slot holds a value (non-pipelined
    conflict condition). *)

val peek_output : t -> Word.t
(** The value the unit would output at the next [cm] (oldest slot). *)

val slots : t -> Word.t array
(** A copy of the pipeline slots, newest first — the unit's entire
    mutable state, used by control-step snapshots. *)

val restore : t -> Word.t array -> unit
(** Reinstall pipeline slots captured by {!slots}.  Raises
    [Invalid_argument] on a latency mismatch. *)
