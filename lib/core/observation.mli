(** What a simulation of a clock-free model observes.

    Both execution paths — the event-driven kernel ({!Simulate}) and
    the direct control-step interpreter ({!Interp}) — produce this
    record, so consistency between the paper's semantics and the VHDL
    simulation semantics is checkable by structural equality. *)

type t = {
  model_name : string;
  cs_max : int;
  regs : (string * Word.t array) list;
      (** per register, the value at the {e end} of each control step
          (index [step - 1]); registers keep DISC until first latched *)
  outputs : (string * (int * Word.t) list) list;
      (** per output port, the non-DISC values seen at phase [cr],
          with their step *)
  conflicts : (int * Phase.t * string) list;
      (** resolved sinks that {e became} ILLEGAL: control step, phase
          at which the value is visible, canonical signal name *)
}

val reg_trace : t -> string -> Word.t array option
val final_reg : t -> string -> Word.t option
(** Register value after the last control step. *)

val output_writes : t -> string -> (int * Word.t) list
val has_conflict : t -> bool
val normalize : t -> t
(** Sort all association lists and conflict entries, for comparison. *)

val equal : t -> t -> bool
(** Equality modulo {!normalize}. *)

val diff : t -> t -> string list
(** Human-readable differences (empty iff {!equal}). *)

val to_string : t -> string
(** Versioned text serialization in {!Snapshot}'s line discipline
    (magic ["csrtl-observation 1"], one record per line, explicit end
    marker).  Round-trips exactly through {!of_string} — the on-disk
    golden-artifact cache embeds these bytes verbatim. *)

val of_string : string -> (t, string) result
(** Total inverse of {!to_string}: any input yields [Ok] or a
    human-readable [Error], never an exception. *)

val pp : Format.formatter -> t -> unit
