(* Tuples are indexed by position in [m.transfers].  A tuple is
   "movable" when it is full (read and write parts) and reads no
   schedule-driven input; everything else is pinned. *)

type job = {
  index : int;
  tuple : Transfer.t;
  read : int;
  latency : int;  (* write = read + latency *)
  movable : bool;
  sources : string list;  (* registers read *)
  dst_reg : string option;
  read_buses : string list;
  write_bus : string option;
  fu : string;
  fu_pipelined : bool;
  fu_stateful : bool;
  fu_latency : int;
}

let jobs_of_model (m : Model.t) =
  let schedule_inputs =
    List.filter_map
      (fun (i : Model.input) ->
        match i.drive with
        | Model.Schedule _ -> Some i.in_name
        | Model.Const _ -> None)
      m.inputs
  in
  List.mapi
    (fun index (t : Transfer.t) ->
      let fu = Model.find_fu m t.fu in
      let fu_latency = Model.fu_latency m t.fu in
      let sources =
        List.filter_map
          (function
            | Some (Transfer.From_reg r) -> Some r
            | Some (Transfer.From_input _) | None -> None)
          [ t.src_a; t.src_b ]
      in
      let reads_scheduled_input =
        List.exists
          (function
            | Some (Transfer.From_input i) -> List.mem i schedule_inputs
            | Some (Transfer.From_reg _) | None -> false)
          [ t.src_a; t.src_b ]
      in
      let fu_stateful =
        match fu with
        | Some f -> List.exists Ops.is_stateful f.Model.ops
        | None -> false
      in
      let fu_can_reset =
        (* a stateful unit with other operations resets its state on
           idle steps (Fu_state), so even its gaps carry meaning *)
        fu_stateful
        && (match fu with
            | Some f -> List.length f.Model.ops > 1
            | None -> false)
      in
      let movable =
        (match t.read_step, t.write_step with
         | Some r, Some w -> w = r + fu_latency
         | _, _ -> false)
        && (not reads_scheduled_input)
        && not fu_can_reset
      in
      { index; tuple = t;
        read = Option.value ~default:1 t.read_step;
        latency = fu_latency;
        movable;
        sources;
        dst_reg =
          (* outputs participate too: their writers keep their order
             (no tuple ever reads an output, so the read-after-write
             and write-after-read relations are vacuous for them) *)
          (match t.dst with
           | Some (Transfer.To_reg r) -> Some r
           | Some (Transfer.To_output o) -> Some o
           | None -> None);
        read_buses = List.filter_map (fun b -> b) [ t.bus_a; t.bus_b ];
        write_bus = t.write_bus;
        fu = t.fu;
        fu_pipelined =
          (match fu with Some f -> f.Model.pipelined | None -> true);
        fu_stateful;
        fu_latency })
    m.transfers

(* The tuple that produced the value register [r] holds at the
   beginning of step [step] under schedule [reads]: the writer with
   the largest write step strictly before [step]'s read... i.e. with
   write < step is wrong — a register latched at the end of step w is
   readable from step w + 1, and a read at step w still sees the old
   value, so the producing writer has write <= step - 1. *)
let producer jobs reads r step =
  List.fold_left
    (fun best (j : job) ->
      if j.dst_reg = Some r then begin
        let w = reads.(j.index) + j.latency in
        if w < step then
          match best with
          | Some (bw, _) when bw >= w -> best
          | _ -> Some (w, j.index)
        else best
      end
      else best)
    None jobs

let compact (m : Model.t) =
  Model.validate_exn m;
  (match Conflict.check m with
   | [] -> ()
   | cs ->
     invalid_arg
       (Printf.sprintf "Reschedule.compact: model has conflicts (%s)"
          (Conflict.to_string (List.hd cs))));
  let jobs = jobs_of_model m in
  let reads = Array.of_list (List.map (fun j -> j.read) jobs) in
  (* original data relations, fixed before any movement *)
  let orig_producer r step = producer jobs reads r step in
  let orig_readers_of_previous_value (k : job) =
    (* tuples that read dst(k)'s pre-k value in the original schedule:
       their producing writer is not k, and they read at or before
       k's write *)
    match k.dst_reg with
    | None -> []
    | Some r ->
      List.filter
        (fun (j : job) ->
          List.mem r j.sources
          && j.read <= k.read + k.latency
          && (match orig_producer r j.read with
              | Some (_, i) -> i <> k.index
              | None -> true))
        jobs
  in
  let raw_deps =
    List.map
      (fun (j : job) ->
        List.filter_map (fun r -> orig_producer r j.read) j.sources
        |> List.map snd)
      jobs
    |> Array.of_list
  in
  let war_readers =
    List.map (fun j -> List.map (fun (x : job) -> x.index)
                 (orig_readers_of_previous_value j)) jobs
    |> Array.of_list
  in
  let waw_prev =
    (* immediately preceding writer of the same register *)
    List.map
      (fun (j : job) ->
        match j.dst_reg with
        | None -> None
        | Some r ->
          List.fold_left
            (fun best (i : job) ->
              if i.index <> j.index && i.dst_reg = Some r
                 && i.read + i.latency < j.read + j.latency
              then
                match best with
                | Some (bw, _) when bw >= i.read + i.latency -> best
                | _ -> Some (i.read + i.latency, i.index)
              else best)
            None jobs
          |> Option.map snd)
      jobs
    |> Array.of_list
  in
  (* accumulator units: the k-th read must stay the k-th read (the
     state folds over reads in step order; hold-on-idle units are
     insensitive to the gaps, reset-on-idle ones were pinned above) *)
  let stateful_prev =
    List.map
      (fun (j : job) ->
        if not j.fu_stateful then None
        else
          List.fold_left
            (fun best (i : job) ->
              if i.index <> j.index && i.fu = j.fu && i.read < j.read then
                match best with
                | Some (br, _) when br >= i.read -> best
                | _ -> Some (i.read, i.index)
              else best)
            None jobs
          |> Option.map snd)
      jobs
    |> Array.of_list
  in
  let placed = Array.make (List.length jobs) false in
  (* resource feasibility of read step [r] for job [j], against
     already-placed jobs only (unplaced jobs will avoid us later) *)
  let resources_ok (j : job) r =
    List.for_all
      (fun (other : job) ->
        (not placed.(other.index)) || other.index = j.index
        ||
        let ro = reads.(other.index) in
        let wo = ro + other.latency in
        let w = r + j.latency in
        (* bus read sides *)
        (ro <> r
         || not
              (List.exists (fun b -> List.mem b other.read_buses)
                 j.read_buses))
        (* bus write sides *)
        && (wo <> w
            || j.write_bus = None || other.write_bus = None
            || j.write_bus <> other.write_bus)
        (* one operand set per unit per step; latency window for
           non-pipelined units *)
        && (other.fu <> j.fu
            ||
            if j.fu_pipelined then ro <> r
            else r + j.fu_latency <= ro || ro + other.fu_latency <= r))
      jobs
  in
  let order =
    List.sort
      (fun (a : job) (b : job) ->
        let c = Int.compare a.read b.read in
        if c <> 0 then c else Int.compare a.index b.index)
      jobs
  in
  List.iter
    (fun (j : job) ->
      if not j.movable then placed.(j.index) <- true
      else begin
        let lower_raw =
          List.fold_left
            (fun acc i -> max acc (reads.(i) + (List.nth jobs i).latency + 1))
            1 raw_deps.(j.index)
        in
        let lower_waw =
          match waw_prev.(j.index) with
          | None -> 1
          | Some i ->
            (* strictly later write than the previous writer *)
            reads.(i) + (List.nth jobs i).latency + 1 - j.latency
        in
        let lower_stateful =
          match stateful_prev.(j.index) with
          | None -> 1
          | Some i -> reads.(i) + 1
        in
        let lower_war =
          (* our write must not land before any reader of the value we
             overwrite: write >= their read, i.e. read >= r_j - lat *)
          List.fold_left
            (fun acc i ->
              if i = j.index then acc
              else max acc (reads.(i) - j.latency))
            1 war_readers.(j.index)
        in
        let rec place r =
          if r > j.read then j.read  (* never move later *)
          else if resources_ok j r then r
          else place (r + 1)
        in
        let r' =
          place
            (max 1
               (max lower_raw
                  (max lower_waw (max lower_war lower_stateful))))
        in
        reads.(j.index) <- r';
        placed.(j.index) <- true
      end)
    order;
  let transfers =
    List.map
      (fun (j : job) ->
        if not j.movable then j.tuple
        else
          { j.tuple with
            Transfer.read_step = Some reads.(j.index);
            write_step = Some (reads.(j.index) + j.latency) })
      jobs
  in
  let cs_max =
    List.fold_left
      (fun acc (t : Transfer.t) ->
        let acc =
          match t.read_step with Some r -> max acc r | None -> acc
        in
        match t.write_step with Some w -> max acc w | None -> acc)
      1 transfers
  in
  let m' = { m with Model.transfers; cs_max = max cs_max 1 } in
  Model.validate_exn m';
  (match Conflict.check m' with
   | [] -> ()
   | cs ->
     invalid_arg
       (Printf.sprintf
          "Bug: Reschedule.compact produced a conflict (%s)"
          (Conflict.to_string (List.hd cs))));
  m'

let compaction m =
  let m' = compact m in
  (m.Model.cs_max, m'.Model.cs_max)
