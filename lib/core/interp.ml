type hook = step:int -> phase:Phase.t -> sink:string -> Word.t -> unit

exception Unstable of int * Phase.t * string

let () =
  Printexc.register_printer (function
    | Unstable (step, phase, sink) ->
      Some
        (Printf.sprintf
           "Interp.Unstable(no fixpoint at step %d phase %s on %s)" step
           (Phase.to_string phase) sink)
    | _ -> None)

type state = {
  model : Model.t;
  inject : Inject.t;
  regs : (string, Word.t) Hashtbl.t;
  (* visible (possibly tampered) register-output values; only
     populated for registers whose [.out] carries a tamper *)
  reg_vis : (string, Word.t) Hashtbl.t;
  fus : (string, Fu_state.t) Hashtbl.t;
  fu_out : (string, Word.t) Hashtbl.t;
  legs_at : (int * int, Transfer.leg list) Hashtbl.t;
  selects_at : (int, Transfer.op_select list) Hashtbl.t;
  sabs_at : (int * int, Inject.saboteur list) Hashtbl.t;
  oscs_at : (int * int, Inject.oscillator list) Hashtbl.t;
  op_index : (string, Ops.t -> Word.t) Hashtbl.t;
  (* one-phase-lagged resolved view of all contribution sinks *)
  mutable contribs : (string, Word.t list) Hashtbl.t;
  mutable visible : (string, Word.t) Hashtbl.t;
  (* sinks contributed during the previous phase: their drivers
     release in the current phase, so the sink re-resolves (to DISC
     before tampering) at the next flip *)
  mutable last_contributed : (string, unit) Hashtbl.t;
  mutable conflicts : (int * Phase.t * string) list;
  reg_trace : (string, Word.t array) Hashtbl.t;
  mutable out_writes : (string * (int * Word.t)) list;
}

let apply_tamper st sink ~step ~phase v =
  match Inject.tamper_for st.inject sink with
  | None -> v
  | Some tam -> tam ~step ~phase v

let init ~inject (m : Model.t) =
  (* Injection sinks must exist, with the same diagnosis the kernel
     elaboration gives — a campaign classifies the failure identically
     on both paths. *)
  let declared = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace declared n ()) (Model.signal_names m);
  let check_sink site n =
    if not (Hashtbl.mem declared n) then
      invalid_arg
        (Printf.sprintf
           "Interp: model %s declares no resource signal %S (referenced \
            by %s)"
           m.name n site)
  in
  List.iter
    (fun (sb : Inject.saboteur) ->
      check_sink "an injected saboteur" sb.Inject.sab_sink)
    inject.Inject.saboteurs;
  List.iter
    (fun (o : Inject.oscillator) ->
      check_sink "an injected oscillator" o.Inject.osc_sink)
    inject.Inject.oscillators;
  let regs = Hashtbl.create 16 in
  List.iter
    (fun (r : Model.register) -> Hashtbl.replace regs r.reg_name r.init)
    m.registers;
  let reg_vis = Hashtbl.create 4 in
  List.iter
    (fun (r : Model.register) ->
      match Inject.tamper_for inject (r.reg_name ^ ".out") with
      | None -> ()
      | Some tam ->
        (* the kernel's REG process only drives the output when the
           initial value is not DISC, so the tamper only fires then;
           register-output tampers are step/phase-insensitive (stuck
           faults), so the exact point reported here is immaterial *)
        let v =
          if Word.is_disc r.init then Word.disc
          else tam ~step:1 ~phase:Phase.Ra r.init
        in
        Hashtbl.replace reg_vis r.reg_name v)
    m.registers;
  let fus = Hashtbl.create 8 in
  let fu_out = Hashtbl.create 8 in
  let op_index = Hashtbl.create 8 in
  List.iter
    (fun (f : Model.fu) ->
      let f =
        match Inject.latency_for inject f.fu_name with
        | Some latency -> { f with latency }
        | None -> f
      in
      Hashtbl.replace fus f.fu_name (Fu_state.create f);
      Hashtbl.replace fu_out f.fu_name Word.disc;
      Hashtbl.replace op_index f.fu_name (fun op ->
          let rec find i = function
            | [] -> Word.illegal
            | o :: rest -> if Ops.equal o op then i else find (i + 1) rest
          in
          find 0 f.ops))
    m.fus;
  let legs, selects = Model.all_legs m in
  let legs_at = Hashtbl.create 32 in
  List.iteri
    (fun idx (l : Transfer.leg) ->
      if not (Inject.drops_leg inject idx) then begin
        let key = (l.step, Phase.to_int l.phase) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt legs_at key) in
        Hashtbl.replace legs_at key (prev @ [ l ])
      end)
    legs;
  let selects_at = Hashtbl.create 16 in
  List.iter
    (fun (s : Transfer.op_select) ->
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt selects_at s.sel_step)
      in
      Hashtbl.replace selects_at s.sel_step (prev @ [ s ]))
    selects;
  let sabs_at = Hashtbl.create 4 in
  List.iter
    (fun (sb : Inject.saboteur) ->
      let key = (sb.Inject.sab_step, Phase.to_int sb.Inject.sab_phase) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt sabs_at key) in
      Hashtbl.replace sabs_at key (prev @ [ sb ]))
    inject.Inject.saboteurs;
  let oscs_at = Hashtbl.create 4 in
  List.iter
    (fun (o : Inject.oscillator) ->
      let key = (o.Inject.osc_step, Phase.to_int o.Inject.osc_phase) in
      let prev = Option.value ~default:[] (Hashtbl.find_opt oscs_at key) in
      Hashtbl.replace oscs_at key (prev @ [ o ]))
    inject.Inject.oscillators;
  let reg_trace = Hashtbl.create 16 in
  List.iter
    (fun (r : Model.register) ->
      Hashtbl.replace reg_trace r.reg_name (Array.make m.cs_max Word.disc))
    m.registers;
  { model = m; inject; regs; reg_vis; fus; fu_out; legs_at; selects_at;
    sabs_at; oscs_at; op_index; contribs = Hashtbl.create 16;
    visible = Hashtbl.create 16; last_contributed = Hashtbl.create 16;
    conflicts = []; reg_trace; out_writes = [] }

let contribute st sink v =
  let prev = Option.value ~default:[] (Hashtbl.find_opt st.contribs sink) in
  Hashtbl.replace st.contribs sink (v :: prev)

let visible st sink =
  Option.value ~default:Word.disc (Hashtbl.find_opt st.visible sink)

(* Turn last phase's contributions into this phase's visible values,
   recording sinks that newly become ILLEGAL.  A sink re-resolves at a
   flip in exactly two cases, mirroring the kernel: its drivers
   contributed during the previous phase (a value resolution), or they
   contributed during the phase before that and released since (a DISC
   resolution).  Each re-resolution passes through the sink's tamper,
   if any; sinks with no transaction keep their previous — possibly
   tampered — value untouched, exactly like an undisturbed kernel
   signal. *)
let flip_phase ?on_visible st ~step ~phase =
  let new_visible = Hashtbl.copy st.visible in
  let newly_illegal sink v =
    if Word.is_illegal v && not (Word.is_illegal (visible st sink)) then
      st.conflicts <- (step, phase, sink) :: st.conflicts
  in
  Hashtbl.iter
    (fun sink () ->
      if not (Hashtbl.mem st.contribs sink) then begin
        let v = apply_tamper st sink ~step ~phase Word.disc in
        newly_illegal sink v;
        Hashtbl.replace new_visible sink v
      end)
    st.last_contributed;
  Hashtbl.iter
    (fun sink vs ->
      let v = apply_tamper st sink ~step ~phase (Resolve.resolve_list vs) in
      Hashtbl.replace new_visible sink v;
      (match on_visible with
       | Some f -> f ~step ~phase ~sink v
       | None -> ());
      newly_illegal sink v)
    st.contribs;
  let consumed = Hashtbl.create 16 in
  Hashtbl.iter (fun sink _ -> Hashtbl.replace consumed sink ()) st.contribs;
  st.last_contributed <- consumed;
  st.visible <- new_visible;
  st.contribs <- Hashtbl.create 16

let reg_out_view st r =
  match Hashtbl.find_opt st.reg_vis r with
  | Some v -> v
  | None -> Option.value ~default:Word.disc (Hashtbl.find_opt st.regs r)

let source_value st step = function
  | Transfer.Reg_out r -> reg_out_view st r
  | Transfer.In_port i ->
    (match
       List.find_opt (fun (x : Model.input) -> x.in_name = i)
         st.model.inputs
     with
     | Some inp -> Model.input_value inp step
     | None -> Word.disc)
  | Transfer.Bus b -> visible st b
  | Transfer.Fu_out f ->
    Option.value ~default:Word.disc (Hashtbl.find_opt st.fu_out f)
  | Transfer.Reg_in _ | Transfer.Fu_in _ | Transfer.Out_port _ ->
    Word.disc

let run_phase st ~step ~(phase : Phase.t) =
  (* The interpreter computes one fixpoint per phase; a metastable
     driver has none, so the run cannot continue — the dedicated
     semantics proves the livelock the kernel merely exhibits. *)
  (match Hashtbl.find_opt st.oscs_at (step, Phase.to_int phase) with
   | Some (o :: _) -> raise (Unstable (step, phase, o.Inject.osc_sink))
   | Some [] | None -> ());
  let legs =
    Option.value ~default:[]
      (Hashtbl.find_opt st.legs_at (step, Phase.to_int phase))
  in
  List.iter
    (fun (l : Transfer.leg) ->
      contribute st
        (Transfer.endpoint_name l.dst)
        (source_value st step l.src))
    legs;
  (match Hashtbl.find_opt st.sabs_at (step, Phase.to_int phase) with
   | Some sabs ->
     List.iter
       (fun (sb : Inject.saboteur) ->
         contribute st sb.Inject.sab_sink sb.Inject.sab_value)
       sabs
   | None -> ());
  match phase with
  | Phase.Rb ->
    let selects =
      Option.value ~default:[] (Hashtbl.find_opt st.selects_at step)
    in
    List.iter
      (fun (s : Transfer.op_select) ->
        match Hashtbl.find_opt st.op_index s.sel_fu with
        | Some index -> contribute st (s.sel_fu ^ ".op") (index s.sel_op)
        | None -> ())
      selects
  | Phase.Cm ->
    List.iter
      (fun (f : Model.fu) ->
        let u = Hashtbl.find st.fus f.fu_name in
        let out =
          Fu_state.step u
            ~op_index:(visible st (f.fu_name ^ ".op"))
            (visible st (f.fu_name ^ ".in1"))
            (visible st (f.fu_name ^ ".in2"))
        in
        Hashtbl.replace st.fu_out f.fu_name out)
      st.model.fus
  | Phase.Cr ->
    List.iter
      (fun (r : Model.register) ->
        let v = visible st (r.reg_name ^ ".in") in
        if not (Word.is_disc v) then begin
          Hashtbl.replace st.regs r.reg_name v;
          if Hashtbl.mem st.reg_vis r.reg_name then
            (* a latch drives the (tampered) output signal: it
               re-resolves at the next visibility point *)
            let vis_step = if step < st.model.cs_max then step + 1 else step in
            Hashtbl.replace st.reg_vis r.reg_name
              (apply_tamper st (r.reg_name ^ ".out") ~step:vis_step
                 ~phase:Phase.Ra v)
        end)
      st.model.registers;
    List.iter
      (fun o ->
        let v = visible st o in
        if not (Word.is_disc v) then
          st.out_writes <- (o, (step, v)) :: st.out_writes)
      st.model.outputs;
    List.iter
      (fun (r : Model.register) ->
        let arr = Hashtbl.find st.reg_trace r.reg_name in
        arr.(step - 1) <- reg_out_view st r.reg_name)
      st.model.registers
  | Phase.Ra | Phase.Wa | Phase.Wb -> ()

let exec ?on_visible st ~from_step =
  for step = from_step + 1 to st.model.cs_max do
    List.iter
      (fun phase ->
        flip_phase ?on_visible st ~step ~phase;
        run_phase st ~step ~phase)
      Phase.all
  done

let finish st =
  let m = st.model in
  let outputs =
    List.map
      (fun o ->
        ( o,
          List.rev
            (List.filter_map
               (fun (name, w) -> if name = o then Some w else None)
               st.out_writes) ))
      m.outputs
  in
  { Observation.model_name = m.name; cs_max = m.cs_max;
    regs =
      List.map
        (fun (r : Model.register) ->
          (r.reg_name, Hashtbl.find st.reg_trace r.reg_name))
        m.registers;
    outputs;
    conflicts = List.rev st.conflicts }

let run_with_hook ?on_visible ?inject (m : Model.t) =
  Model.validate_exn m;
  let inject = Option.value ~default:Inject.none inject in
  let st = init ~inject m in
  exec ?on_visible st ~from_step:0;
  finish st

let run ?inject m = run_with_hook ?inject m

(* ---- control-step snapshots ------------------------------------- *)

let capture st ~digest ~step =
  let m = st.model in
  { Snapshot.model_name = m.name;
    digest;
    step;
    regs =
      List.map
        (fun (r : Model.register) ->
          (r.reg_name, Hashtbl.find st.regs r.reg_name))
        m.registers;
    fu_out =
      List.map
        (fun (f : Model.fu) -> (f.fu_name, Hashtbl.find st.fu_out f.fu_name))
        m.fus;
    fu_slots =
      List.map
        (fun (f : Model.fu) ->
          (f.fu_name, Fu_state.slots (Hashtbl.find st.fus f.fu_name)))
        m.fus;
    trace =
      List.map
        (fun (r : Model.register) ->
          (r.reg_name, Array.sub (Hashtbl.find st.reg_trace r.reg_name) 0 step))
        m.registers;
    out_writes = List.rev st.out_writes;
    conflicts = Snapshot.sort_conflicts st.conflicts }

let snapshots_at ~steps (m : Model.t) =
  Model.validate_exn m;
  List.iter
    (fun s ->
      if s < 0 || s > m.cs_max then
        invalid_arg
          (Printf.sprintf "Interp.snapshots_at: step %d outside [0, %d]" s
             m.cs_max))
    steps;
  let want = List.sort_uniq compare steps in
  let digest = Snapshot.digest_of_model m in
  let st = init ~inject:Inject.none m in
  let snaps = ref [] in
  if List.mem 0 want then snaps := capture st ~digest ~step:0 :: !snaps;
  for step = 1 to m.cs_max do
    List.iter
      (fun phase ->
        flip_phase st ~step ~phase;
        run_phase st ~step ~phase)
      Phase.all;
    if List.mem step want then snaps := capture st ~digest ~step :: !snaps
  done;
  List.rev !snaps

let snapshot_at ~step m =
  match snapshots_at ~steps:[ step ] m with
  | [ s ] -> s
  | _ -> assert false

let resume ?inject ~(from : Snapshot.t) (m : Model.t) =
  Model.validate_exn m;
  Snapshot.validate_exn m from;
  let inject = Option.value ~default:Inject.none inject in
  let st = init ~inject m in
  List.iter (fun (n, v) -> Hashtbl.replace st.regs n v) from.regs;
  List.iter
    (fun (r : Model.register) ->
      if Hashtbl.mem st.reg_vis r.reg_name then begin
        (* same rule as a latch in the uninterrupted run: the tampered
           output view re-resolves from the current register value *)
        let v = List.assoc r.reg_name from.regs in
        let vis =
          if Word.is_disc v then Word.disc
          else
            apply_tamper st (r.reg_name ^ ".out") ~step:(from.step + 1)
              ~phase:Phase.Ra v
        in
        Hashtbl.replace st.reg_vis r.reg_name vis
      end)
    m.registers;
  List.iter (fun (n, v) -> Hashtbl.replace st.fu_out n v) from.fu_out;
  List.iter
    (fun (n, slots) -> Fu_state.restore (Hashtbl.find st.fus n) slots)
    from.fu_slots;
  List.iter
    (fun (n, a) ->
      Array.blit a 0 (Hashtbl.find st.reg_trace n) 0 (Array.length a))
    from.trace;
  st.out_writes <- List.rev from.out_writes;
  st.conflicts <- List.rev from.conflicts;
  exec st ~from_step:from.step;
  finish st
