(** A complete clock-free register-transfer model (paper §2.7).

    "A concrete register transfer model consists of ... the control
    step and phase signals, ... ports of functional units and the
    buses, register, module and transfer processes."  Here a model is
    the declarative description; {!Elaborate} turns it into kernel
    processes and {!Interp} executes it directly. *)

type register = {
  reg_name : string;
  init : Word.t;  (** usually [Word.disc]; registers drive their
                      output only once a first value was latched *)
}

type fu = {
  fu_name : string;
  ops : Ops.t list;  (** operations selectable by transfers; nonempty *)
  latency : int;  (** control steps from operand read to result write *)
  pipelined : bool;  (** if false, overlapping uses produce ILLEGAL *)
  sticky_illegal : bool;
      (** paper ADD semantics: once the internal variable is ILLEGAL
          it stays ILLEGAL *)
}

type input_drive =
  | Const of Word.t  (** the port holds one value for the whole run *)
  | Schedule of (int * Word.t) list
      (** step [s] onwards the port holds the mapped value; steps
          before the first entry read [Word.disc] *)

type input = { in_name : string; drive : input_drive }

type t = {
  name : string;
  cs_max : int;
  registers : register list;
  fus : fu list;
  buses : string list;
  inputs : input list;
  outputs : string list;
  transfers : Transfer.t list;
}

val register : ?init:Word.t -> string -> register
val fu :
  ?latency:int -> ?pipelined:bool -> ?sticky_illegal:bool ->
  ops:Ops.t list -> string -> fu

val input_value : input -> int -> Word.t
(** Value the input port presents during the given control step. *)

val signal_names : t -> string list
(** Every resource-signal name the elaboration declares for this
    model: buses, [R.in]/[R.out] per register, [F.in1]/[F.in2]/[F.out]/
    [F.op] per unit, input and output ports.  Both execution paths use
    it to reject injections on nonexistent sinks identically. *)

val find_register : t -> string -> register option
val find_fu : t -> string -> fu option
val fu_latency : t -> string -> int
(** Latency of a unit, 1 if unknown (used by {!Transfer.merge}). *)

val effective_op : t -> Transfer.t -> Ops.t option
(** The operation a tuple selects: its [op] field or the unit's first
    operation; [None] if the tuple has no read part or no unit. *)

type error = {
  transfer : Transfer.t option;
  message : string;
}

val validate : t -> error list
(** Static well-formedness: unique names; referenced resources exist;
    steps within [1, cs_max]; operation supported by the unit and of
    matching arity; full tuples respect [write = read + latency];
    stateful operations only on latency-1 units. *)

val validate_exn : t -> unit
(** Raises [Invalid_argument] with all messages if {!validate} is
    nonempty. *)

val error_to_diag : t -> error -> Csrtl_diag.Diag.t
(** A validation error in the shared diagnostic type (rule
    [model.validate]); the message names the model and, for tuple
    errors, the transfer's unit. *)

val check_limits :
  ?limits:Csrtl_diag.Diag.Limits.t -> t -> Csrtl_diag.Diag.t list
(** Resource-guard check of the elaborated size — registers, units,
    buses, control steps, transfers — against the caps (rule
    [limits.model]).  Empty when the model is within bounds. *)

val validate_diags :
  ?limits:Csrtl_diag.Diag.Limits.t -> t -> Csrtl_diag.Diag.t list
(** {!check_limits} followed by {!validate}, all as diagnostics; the
    no-crash entry point for untrusted models. *)

val all_legs : t -> Transfer.leg list * Transfer.op_select list
(** Decomposition of every transfer, with operation defaults filled
    in from the units. *)

val pp_error : Format.formatter -> error -> unit
val pp : Format.formatter -> t -> unit
