(** The shared schedule compiler behind the phase-compiled executors.

    A conflict-free model's run is a static schedule: every
    contribution sits in one (control step, phase) slot.  [compile]
    lowers the model's legs and op-selections onto integer sink ids
    and flattens them into one action array per slot.  {!Compiled}
    (single run) and {!Batch} (lockstep fault batches) both execute
    this representation, so the two executors cannot drift apart.

    An injection plan ({!Inject.t}) compiles into the same structure —
    the overlay that lets fault campaigns stay on the fast path:

    - a {e dropped leg} is simply not compiled into its slot;
    - a {e saboteur} becomes one extra constant action in its slot
      (the spurious driver's release is the ordinary one-phase-later
      re-resolution every action already has);
    - {e tampers} become per-sink wrappers applied at each
      re-resolution ([sink_tamper]), or — for register outputs, which
      are not resolved sinks — a wrapper on the latched view
      ([reg_tamper], mirroring {!Interp}'s tampered register view);
    - a {e latency override} rewrites the unit's pipeline depth before
      its state is created.

    Oscillators have no static schedule and are rejected
    ([Invalid_argument]); {!Compiled.compilable} reports them (and
    every other blocker) before anything calls [compile]. *)

type src =
  | Const of Word.t  (** input-port reads, op-select indices, saboteurs *)
  | Reg of int  (** register file index (read through the latched view) *)
  | Bus of int  (** sink id (a bus is also a sink) *)
  | Fu of int  (** functional-unit output latch index *)

type action = { src : src; dst : int }

type fu_plan = {
  fu : Model.fu;  (** latency override already applied *)
  op_sink : int;
  in1_sink : int;
  in2_sink : int;
}

type t = {
  model : Model.t;
  inject : Inject.t;
  nsinks : int;
  sink_name : string array;
  sink_index : (string, int) Hashtbl.t;
      (** name -> sink id, kept so overlays can validate saboteur
          sinks without rebuilding the table *)
  slots : action array array;
      (** index [(step - 1) * Phase.count + phase] *)
  slot_prov : int array array;
      (** provenance, parallel to [slots] on a clean compile: the leg
          index ({!Model.all_legs} order) that produced each action,
          [-1] for op-selects and saboteurs.  Overlays patch slots
          without maintaining it — read it only on a clean compile. *)
  static_actions : int;
  fu_plans : fu_plan array;
  nregs : int;
  reg_init : Word.t array;
  reg_in_sink : int array;
  out_sink : int array;  (** per model output, in declaration order *)
  sink_tamper : Inject.tamper option array;
  reg_tamper : Inject.tamper option array;
      (** register-output tampers, by register index *)
  mutable last_patched : int;
      (** highest slot index where [slots] is not physically the base
          compile's array; [-1] on a clean compile.  The batch
          executor derives its earliest sound retirement boundary from
          this. *)
}

val compile : ?inject:Inject.t -> Model.t -> t
(** Flatten the model (and the injection overlay) into slots.  Raises
    [Invalid_argument] when a saboteur references an undeclared sink
    or the plan contains an oscillator.  The model is {e not}
    validated here — executors call {!Model.validate_exn} once.
    [compile ~inject m] is [overlay (compile m) inject]. *)

val overlay : t -> Inject.t -> t
(** Patch an injection overlay onto a clean compile without
    recompiling: only the slots a dropped leg or an in-range saboteur
    touches get fresh arrays (with [compile]'s action ordering —
    surviving legs, then op-selects, then saboteurs); every other slot
    is physically the base's, and [last_patched] records the highest
    patched slot.  Tamper wrappers and latency overrides rebuild only
    their own small arrays.  Raises [Invalid_argument] on an
    oscillator, an unknown saboteur sink (both with [compile]'s
    messages), or a base that is itself an overlay.  A campaign
    compiles the model once and overlays each fault, which is what
    makes per-chunk batch setup cheap. *)

val share_slots : base:t -> t -> unit
(** Replace every slot of the second schedule that is structurally
    equal to [base]'s with [base]'s array, so untouched slots are
    physically shared between a golden plan and its fault overlays —
    the batch executor's per-variant patches are exactly the slots
    left unshared, and physical equality is its cheap "this slot is
    unpatched" test.  Recomputes the target's [last_patched].
    Superseded by {!overlay}, which shares by construction. *)

(** {1 Overlay semantics helpers}

    Both executors apply tampers through these, so the overlay has one
    definition.  They mirror {!Interp}: a sink tamper wraps every
    re-resolution (value or release-to-DISC); a register tamper wraps
    the latched output view at its next visibility point. *)

val resolve_value : t -> int -> step:int -> phase:Phase.t -> Word.t -> Word.t
(** Tamper applied to a value re-resolution of sink [id]. *)

val resolve_release : t -> int -> step:int -> phase:Phase.t -> Word.t
(** Tamper applied to a release re-resolution (clean value DISC). *)

val reg_view_init : t -> int -> Word.t
(** Initial latched view of register [r] (tampered when its init
    drives the output, i.e. is not DISC). *)

val reg_view_latch : t -> int -> step:int -> Word.t -> Word.t
(** View after a latch at [step]'s [cr]: the tamper fires at the
    value's next visibility point ([step + 1], capped at [cs_max]). *)

val reg_view_resume : t -> int -> boundary:int -> Word.t -> Word.t
(** View reinstalled from a snapshot at [boundary] — the same rule as
    a latch in the uninterrupted run. *)
