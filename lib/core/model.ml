type register = { reg_name : string; init : Word.t }

type fu = {
  fu_name : string;
  ops : Ops.t list;
  latency : int;
  pipelined : bool;
  sticky_illegal : bool;
}

type input_drive = Const of Word.t | Schedule of (int * Word.t) list
type input = { in_name : string; drive : input_drive }

type t = {
  name : string;
  cs_max : int;
  registers : register list;
  fus : fu list;
  buses : string list;
  inputs : input list;
  outputs : string list;
  transfers : Transfer.t list;
}

let register ?(init = Word.disc) name = { reg_name = name; init }

let fu ?(latency = 1) ?(pipelined = true) ?(sticky_illegal = true) ~ops name =
  if ops = [] then invalid_arg "Model.fu: empty operation list";
  if latency < 1 then invalid_arg "Model.fu: latency < 1";
  { fu_name = name; ops; latency; pipelined; sticky_illegal }

let input_value i step =
  match i.drive with
  | Const v -> v
  | Schedule entries ->
    let applicable =
      List.filter (fun (s, _) -> s <= step) entries
    in
    (match List.rev applicable with
     | [] -> Word.disc
     | (_, v) :: _ ->
       (* entries are kept sorted by step; the last applicable wins *)
       v)

let signal_names m =
  List.concat
    [ m.buses;
      List.concat_map
        (fun r -> [ r.reg_name ^ ".in"; r.reg_name ^ ".out" ])
        m.registers;
      List.concat_map
        (fun f ->
          [ f.fu_name ^ ".in1"; f.fu_name ^ ".in2"; f.fu_name ^ ".out";
            f.fu_name ^ ".op" ])
        m.fus;
      List.map (fun i -> i.in_name) m.inputs;
      m.outputs ]

let find_register m name =
  List.find_opt (fun r -> r.reg_name = name) m.registers

let find_fu m name = List.find_opt (fun f -> f.fu_name = name) m.fus

let fu_latency m name =
  match find_fu m name with
  | Some f -> f.latency
  | None -> 1

let effective_op m (t : Transfer.t) =
  match t.op with
  | Some op -> Some op
  | None ->
    (match t.read_step, find_fu m t.fu with
     | Some _, Some f -> (match f.ops with op :: _ -> Some op | [] -> None)
     | _, _ -> None)

type error = { transfer : Transfer.t option; message : string }

let err ?transfer fmt =
  Format.kasprintf (fun message -> { transfer; message }) fmt

let duplicates names =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun n ->
      if Hashtbl.mem seen n then Some n
      else begin
        Hashtbl.replace seen n ();
        None
      end)
    names

let validate m =
  let errors = ref [] in
  let add e = errors := e :: !errors in
  if m.cs_max < 1 then add (err "cs_max must be >= 1 (got %d)" m.cs_max);
  let all_names =
    List.map (fun r -> r.reg_name) m.registers
    @ List.map (fun f -> f.fu_name) m.fus
    @ m.buses
    @ List.map (fun i -> i.in_name) m.inputs
    @ m.outputs
  in
  List.iter
    (fun n -> add (err "duplicate resource name %s" n))
    (duplicates all_names);
  let has_reg n = find_register m n <> None in
  let has_bus n = List.mem n m.buses in
  let has_input n = List.exists (fun i -> i.in_name = n) m.inputs in
  let has_output n = List.mem n m.outputs in
  List.iter
    (fun f ->
      if List.exists Ops.is_stateful f.ops && f.latency <> 1 then
        add
          (err "unit %s has a stateful operation but latency %d (must be 1)"
             f.fu_name f.latency))
    m.fus;
  let check_step t what = function
    | None -> ()
    | Some s ->
      if s < 1 || s > m.cs_max then
        add (err ~transfer:t "%s step %d outside [1, %d]" what s m.cs_max)
  in
  let check_source t = function
    | None -> ()
    | Some (Transfer.From_reg r) ->
      if not (has_reg r) then add (err ~transfer:t "unknown register %s" r)
    | Some (Transfer.From_input i) ->
      if not (has_input i) then add (err ~transfer:t "unknown input %s" i)
  in
  let check_bus t = function
    | None -> ()
    | Some b ->
      if not (has_bus b) then add (err ~transfer:t "unknown bus %s" b)
  in
  List.iter
    (fun (t : Transfer.t) ->
      let fu = find_fu m t.fu in
      if fu = None then add (err ~transfer:t "unknown unit %s" t.fu);
      check_source t t.src_a;
      check_source t t.src_b;
      check_bus t t.bus_a;
      check_bus t t.bus_b;
      check_bus t t.write_bus;
      check_step t "read" t.read_step;
      check_step t "write" t.write_step;
      (match t.dst with
       | None -> ()
       | Some (Transfer.To_reg r) ->
         if not (has_reg r) then add (err ~transfer:t "unknown register %s" r)
       | Some (Transfer.To_output o) ->
         if not (has_output o) then
           add (err ~transfer:t "unknown output %s" o));
      (* Structural coherence of the tuple itself. *)
      (match t.src_a, t.bus_a with
       | Some _, None | None, Some _ ->
         add (err ~transfer:t "source A and bus A must be given together")
       | _, _ -> ());
      (match t.src_b, t.bus_b with
       | Some _, None | None, Some _ ->
         add (err ~transfer:t "source B and bus B must be given together")
       | _, _ -> ());
      if (t.src_a <> None || t.src_b <> None) && t.read_step = None then
        add (err ~transfer:t "sources given but no read step");
      if t.dst <> None && t.write_step = None then
        add (err ~transfer:t "destination given but no write step");
      if t.write_step <> None && t.write_bus = None then
        add (err ~transfer:t "write step given but no write bus");
      (match fu with
       | None -> ()
       | Some f ->
         (match t.read_step, t.write_step with
          | Some r, Some w when w <> r + f.latency ->
            add
              (err ~transfer:t
                 "unit %s has latency %d but write step is %d after read \
                  step %d"
                 f.fu_name f.latency w r)
          | _, _ -> ());
         (match effective_op m t with
          | None -> ()
          | Some op ->
            if not (List.mem op f.ops) then
              add
                (err ~transfer:t "unit %s does not implement %s" f.fu_name
                   (Ops.to_string op));
            if t.read_step <> None then begin
              let supplied =
                (if t.src_a <> None then 1 else 0)
                + if t.src_b <> None then 1 else 0
              in
              let needed = Ops.arity op in
              if supplied <> needed then
                add
                  (err ~transfer:t
                     "operation %s needs %d operand(s) but %d supplied"
                     (Ops.to_string op) needed supplied)
            end)))
    m.transfers;
  List.rev !errors

let validate_exn m =
  match validate m with
  | [] -> ()
  | errs ->
    let msgs = List.map (fun e -> e.message) errs in
    invalid_arg
      (Printf.sprintf "model %s: %s" m.name (String.concat "; " msgs))

let error_to_diag m (e : error) =
  let module Diag = Csrtl_diag.Diag in
  let where =
    match e.transfer with
    | None -> m.name
    | Some t -> Printf.sprintf "%s transfer via %s" m.name t.Transfer.fu
  in
  Diag.error ~rule:"model.validate" "%s: %s" where e.message

let check_limits ?(limits = Csrtl_diag.Diag.Limits.default) m =
  let module Diag = Csrtl_diag.Diag in
  let out = ref [] in
  let cap what count cap =
    if count > cap then
      out :=
        Diag.error ~rule:"limits.model" "model %s: %d %s exceed the limit %d"
          m.name count what cap
        :: !out
  in
  cap "registers" (List.length m.registers) limits.Diag.Limits.max_registers;
  cap "units" (List.length m.fus) limits.Diag.Limits.max_fus;
  cap "buses" (List.length m.buses) limits.Diag.Limits.max_buses;
  cap "control steps" m.cs_max limits.Diag.Limits.max_steps;
  cap "transfers" (List.length m.transfers) limits.Diag.Limits.max_transfers;
  List.rev !out

let validate_diags ?limits m =
  check_limits ?limits m @ List.map (error_to_diag m) (validate m)

let all_legs m =
  let legs, selects =
    List.fold_left
      (fun (legs, sels) t ->
        let t =
          match (t : Transfer.t).op with
          | Some _ -> t
          | None -> { t with op = effective_op m t }
        in
        let l, s = Transfer.decompose t in
        (List.rev_append l legs, List.rev_append s sels))
      ([], []) m.transfers
  in
  (List.rev legs, List.rev selects)

let pp_error ppf e =
  match e.transfer with
  | None -> Format.pp_print_string ppf e.message
  | Some t -> Format.fprintf ppf "%a: %s" Transfer.pp t e.message

let pp ppf m =
  Format.fprintf ppf "@[<v>model %s (cs_max=%d)@," m.name m.cs_max;
  List.iter
    (fun r ->
      Format.fprintf ppf "  reg %s init %a@," r.reg_name Word.pp r.init)
    m.registers;
  List.iter
    (fun f ->
      Format.fprintf ppf "  unit %s latency %d%s ops [%s]@," f.fu_name
        f.latency
        (if f.pipelined then " pipelined" else "")
        (String.concat " " (List.map Ops.to_string f.ops)))
    m.fus;
  List.iter (fun b -> Format.fprintf ppf "  bus %s@," b) m.buses;
  List.iter (fun i -> Format.fprintf ppf "  input %s@," i.in_name) m.inputs;
  List.iter (fun o -> Format.fprintf ppf "  output %s@," o) m.outputs;
  List.iter
    (fun t -> Format.fprintf ppf "  transfer %a@," Transfer.pp t)
    m.transfers;
  Format.fprintf ppf "@]"
