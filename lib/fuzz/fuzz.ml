module Diag = Csrtl_diag.Diag
module C = Csrtl_core
module V = Csrtl_vhdl
module H = Csrtl_hls
module S = Csrtl_serve
module Par = Csrtl_par.Par

(* -- deterministic PRNG (splitmix64) -------------------------------------- *)

module Rng = struct
  type t = { mutable s : int64 }

  let make seed = { s = Int64.of_int seed }

  let next r =
    let open Int64 in
    r.s <- add r.s 0x9E3779B97F4A7C15L;
    let z = r.s in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  (* uniform in [0, bound) for bound >= 1 *)
  let int r bound =
    if bound <= 0 then 0
    else Int64.to_int (Int64.rem (Int64.logand (next r) Int64.max_int)
                         (Int64.of_int bound))

  let bool r = int r 2 = 0
  let pick r arr = arr.(int r (Array.length arr))
  let pick_list r l = List.nth l (int r (List.length l))

  (* derive an independent stream for run [i] of master seed [s] *)
  let split seed i =
    let r = make (seed lxor (0x2545F491 * (i + 1))) in
    ignore (next r);
    r
end

(* -- targets ---------------------------------------------------------------- *)

type target = Vhdl | Rtm | Alg | Frame

let all_targets = [ Vhdl; Rtm; Alg; Frame ]

let target_to_string = function
  | Vhdl -> "vhdl"
  | Rtm -> "rtm"
  | Alg -> "alg"
  | Frame -> "frame"

let target_of_string = function
  | "vhdl" -> Some Vhdl
  | "rtm" -> Some Rtm
  | "alg" -> Some Alg
  | "frame" -> Some Frame
  | _ -> None

let extension = function
  | Vhdl -> ".vhd"
  | Rtm -> ".rtm"
  | Alg -> ".alg"
  | Frame -> ".json"

(* -- seed corpus ------------------------------------------------------------ *)

(* A tiny valid model: enough structure for Emit / Rtm round-trips to
   give the mutators meaningful bytes to chew on. *)
let tiny_model =
  let open C in
  {
    Model.name = "fuzzseed";
    cs_max = 3;
    registers = [ Model.register ~init:(Word.nat 1) "A"; Model.register "B" ];
    fus = [ Model.fu ~ops:[ Ops.Pass ] "P1" ];
    buses = [ "B1"; "B2" ];
    inputs = [];
    outputs = [];
    transfers =
      [
        {
          Transfer.src_a = Some (Transfer.From_reg "A");
          bus_a = Some "B1";
          src_b = None;
          bus_b = None;
          read_step = Some 1;
          fu = "P1";
          op = None;
          write_step = Some 2;
          write_bus = Some "B2";
          dst = Some (Transfer.To_reg "B");
        };
      ];
  }

let vhdl_fragments =
  [|
    "entity"; "architecture"; "package"; "end"; "is"; "of"; "begin";
    "process"; "wait"; "until"; "signal"; "constant"; "port"; "generic";
    "map"; "in"; "out"; "integer"; "and"; "or"; "not"; "if"; "then";
    "elsif"; "else"; "for"; "loop"; "use"; "work.all"; "type"; "<="; ":=";
    "=>"; "("; ")"; ";"; ":"; ","; "'"; "\""; "CS"; "PH"; "0"; "1"; "42";
    "-1"; "R1"; "B1"; "T0"; "--x"; "\n";
  |]

let rtm_fragments =
  [|
    "model"; "csmax"; "reg"; "unit"; "bus"; "input"; "output"; "transfer";
    "init"; "ops"; "latency"; "pipelined"; "nonpipelined";
    "transparent-illegal"; "const"; "schedule"; "add"; "sub"; "pass";
    "mul"; "R1"; "R2"; "B1"; "ADD"; "X!"; "-"; "0"; "1"; "7"; "1:3";
    "ADD:add"; "#c"; "\n";
  |]

let alg_fragments =
  [|
    "program"; "inputs"; "outputs"; "="; "+"; "-"; "*"; "<"; "<s"; "==";
    "("; ")"; ","; "max"; "min"; "abs"; "pass"; "shl"; "x"; "y"; "u";
    "dx"; "3"; "0"; "#c"; "\n";
  |]

let frame_fragments =
  [|
    "{"; "}"; "["; "]"; ":"; ","; "\"csrtl\""; "\"req\""; "\"resp\"";
    "\"v\""; "1"; "2"; "-3"; "\"op\""; "\"ping\""; "\"stats\"";
    "\"shutdown\""; "\"inject\""; "\"model\""; "\"engine\"";
    "\"kernel\""; "\"compiled\""; "\"batch\""; "\"limit\"";
    "\"budget_ms\""; "\"deadline_ms\""; "\"table\""; "\"stream\"";
    "\"resume\""; "true"; "false"; "null"; "32"; "\\n"; "\\u0041"; "\\";
    "\"";
  |]

(* grammar-aware generation: assemble plausible lines, most of them
   well-formed, so mutation explores the deep end of each parser
   instead of bouncing off the first token *)
let gen_vhdl r =
  let b = Buffer.create 256 in
  let name () = Rng.pick r [| "t0"; "reg1"; "ctl"; "top"; "bad_1"; "x" |] in
  let expr () =
    Rng.pick r
      [| "0"; "1"; "CS + 1"; "(CS = 2) and (PH = RA)"; "R1 + R2 * 2";
         "resolve(B1)"; "Phase'pos(PH)"; "-(42)" |]
  in
  let n_units = 1 + Rng.int r 3 in
  for _ = 1 to n_units do
    match Rng.int r 4 with
    | 0 ->
      Buffer.add_string b
        (Printf.sprintf "entity %s is\n  port (%s : in integer);\nend %s;\n"
           (name ()) (name ()) (name ()))
    | 1 ->
      let e = name () and a = name () in
      Buffer.add_string b
        (Printf.sprintf "architecture %s of %s is\n  signal s1 : integer;\n"
           a e);
      Buffer.add_string b "begin\n";
      let n_stmts = Rng.int r 4 in
      for _ = 1 to n_stmts do
        match Rng.int r 3 with
        | 0 ->
          Buffer.add_string b
            (Printf.sprintf "  s1 <= %s;\n" (expr ()))
        | 1 ->
          Buffer.add_string b
            (Printf.sprintf
               "  p : process\n  begin\n    wait until %s;\n    s1 <= %s;\n  end process;\n"
               (expr ()) (expr ()))
        | _ ->
          Buffer.add_string b
            (Printf.sprintf
               "  u%d : entity work.TRANS generic map (%d, RA) port map \
                (CS, PH, s1, s1);\n"
               (Rng.int r 9) (1 + Rng.int r 7))
      done;
      Buffer.add_string b (Printf.sprintf "end %s;\n" a)
    | 2 ->
      Buffer.add_string b
        (Printf.sprintf
           "package %s is\n  type Phase is (RA, RB, CM, WA, WB, CR);\n  \
            constant DISC : integer := -1;\nend %s;\n"
           (name ()) (name ()))
    | _ ->
      (* word salad: pure fragment soup *)
      let n = 3 + Rng.int r 20 in
      for _ = 1 to n do
        Buffer.add_string b (Rng.pick r vhdl_fragments);
        Buffer.add_char b ' '
      done;
      Buffer.add_char b '\n'
  done;
  Buffer.contents b

let gen_rtm r =
  let b = Buffer.create 128 in
  Buffer.add_string b "model fz\n";
  if Rng.int r 8 <> 0 then
    Buffer.add_string b (Printf.sprintf "csmax %d\n" (1 + Rng.int r 9));
  let n = 1 + Rng.int r 8 in
  for _ = 1 to n do
    match Rng.int r 6 with
    | 0 -> Buffer.add_string b (Printf.sprintf "reg R%d\n" (Rng.int r 4))
    | 1 ->
      Buffer.add_string b
        (Printf.sprintf "reg R%d init %d\n" (Rng.int r 4) (Rng.int r 9))
    | 2 ->
      Buffer.add_string b
        (Printf.sprintf "unit U%d ops %s latency %d\n" (Rng.int r 3)
           (Rng.pick r [| "add"; "pass"; "add,sub"; "frobnicate" |])
           (Rng.int r 3))
    | 3 -> Buffer.add_string b (Printf.sprintf "bus B%d\n" (Rng.int r 3))
    | 4 ->
      Buffer.add_string b
        (Printf.sprintf "transfer R%d B%d %s - %d U%d %d B%d R%d\n"
           (Rng.int r 4) (Rng.int r 3)
           (Rng.pick r [| "-"; "R2"; "X!" |])
           (Rng.int r 9) (Rng.int r 3) (Rng.int r 9) (Rng.int r 3)
           (Rng.int r 4))
    | _ ->
      let k = 2 + Rng.int r 8 in
      for _ = 1 to k do
        Buffer.add_string b (Rng.pick r rtm_fragments);
        Buffer.add_char b ' '
      done;
      Buffer.add_char b '\n'
  done;
  Buffer.contents b

let gen_alg r =
  let b = Buffer.create 128 in
  Buffer.add_string b "program fz\n";
  Buffer.add_string b "inputs x y dx\n";
  if Rng.bool r then Buffer.add_string b "outputs x1\n";
  let n = 1 + Rng.int r 5 in
  for _ = 1 to n do
    match Rng.int r 3 with
    | 0 ->
      Buffer.add_string b
        (Printf.sprintf "x1 = x %s y * %d\n"
           (Rng.pick r [| "+"; "-"; "*"; "<"; "<s"; "==" |])
           (Rng.int r 9))
    | 1 ->
      Buffer.add_string b
        (Printf.sprintf "y1 = %s(x, dx)\n"
           (Rng.pick r [| "max"; "min"; "shl"; "bogus" |]))
    | _ ->
      let k = 2 + Rng.int r 8 in
      for _ = 1 to k do
        Buffer.add_string b (Rng.pick r alg_fragments);
        Buffer.add_char b ' '
      done;
      Buffer.add_char b '\n'
  done;
  Buffer.contents b

(* request frames the daemon must accept: the seeds are valid wire
   lines, so the mutators start from deep inside the decoder *)
let gen_frame r =
  match Rng.int r 3 with
  | 0 ->
    (* a well-formed request straight from the encoder *)
    let req =
      match Rng.int r 4 with
      | 0 -> S.Frame.Ping
      | 1 -> S.Frame.Stats
      | 2 -> S.Frame.Shutdown
      | _ ->
        S.Frame.Inject
          { S.Frame.model =
              (if Rng.bool r then C.Rtm.to_string tiny_model else gen_rtm r);
            engine = Rng.pick r [| `Auto; `Kernel; `Compiled |];
            batch = 1 + Rng.int r 64;
            limit = (if Rng.bool r then None else Some (1 + Rng.int r 99));
            budget_ms =
              (if Rng.bool r then None else Some (1 + Rng.int r 999));
            deadline_ms = (if Rng.bool r then None else Some (Rng.int r 999));
            table = Rng.bool r; stream = Rng.bool r; resume = Rng.bool r }
    in
    S.Frame.encode_request req
  | 1 ->
    (* hand-assembled object: valid header, shuffled tail *)
    let b = Buffer.create 128 in
    Buffer.add_string b "{\"csrtl\":\"req\",\"v\":1";
    let key () =
      Rng.pick r
        [| "op"; "model"; "engine"; "batch"; "limit"; "budget_ms";
           "deadline_ms"; "table"; "stream"; "resume"; "x" |]
    in
    let value () =
      Rng.pick r
        [| "\"ping\""; "\"stats\""; "\"inject\"";
           "\"model m\\ncsmax 2\\nreg A\\n\""; "\"auto\""; "\"kernel\"";
           "\"frobnicate\""; "1"; "32"; "-3"; "true"; "false"; "null";
           "[]"; "{}"; "[1,2]" |]
    in
    let n = Rng.int r 8 in
    for _ = 1 to n do
      Buffer.add_string b (Printf.sprintf ",%S:%s" (key ()) (value ()))
    done;
    Buffer.add_char b '}';
    Buffer.contents b
  | _ ->
    (* token soup *)
    let b = Buffer.create 64 in
    let k = 2 + Rng.int r 24 in
    for _ = 1 to k do
      Buffer.add_string b (Rng.pick r frame_fragments)
    done;
    Buffer.contents b

let seeds target =
  match target with
  | Vhdl -> [ V.Emit.to_string tiny_model; "entity e is\nend e;\n" ]
  | Rtm -> [ C.Rtm.to_string tiny_model; "model m\ncsmax 2\nreg A\n" ]
  | Alg -> [ "program p\ninputs x\noutputs y\ny = x + 1\n" ]
  | Frame ->
    [ S.Frame.encode_request
        (S.Frame.Inject
           { S.Frame.model = C.Rtm.to_string tiny_model; engine = `Auto;
             batch = 32; limit = None; budget_ms = None; deadline_ms = None;
             table = false; stream = false; resume = true });
      S.Frame.encode_request S.Frame.Ping;
      "{\"csrtl\":\"req\",\"v\":1,\"op\":\"stats\"}" ]

(* -- mutation --------------------------------------------------------------- *)

let mutate r s =
  let n = String.length s in
  if n = 0 then String.make 1 (Char.chr (Rng.int r 256))
  else
    match Rng.int r 7 with
    | 0 ->
      (* flip one byte *)
      let b = Bytes.of_string s in
      Bytes.set b (Rng.int r n) (Char.chr (Rng.int r 256));
      Bytes.to_string b
    | 1 ->
      (* truncate *)
      String.sub s 0 (Rng.int r n)
    | 2 ->
      (* delete a span *)
      let i = Rng.int r n in
      let len = min (n - i) (1 + Rng.int r 16) in
      String.sub s 0 i ^ String.sub s (i + len) (n - i - len)
    | 3 ->
      (* insert a fragment *)
      let i = Rng.int r (n + 1) in
      let frag =
        Rng.pick r
          (match Rng.int r 4 with
           | 0 -> vhdl_fragments
           | 1 -> rtm_fragments
           | 2 -> alg_fragments
           | _ -> frame_fragments)
      in
      String.sub s 0 i ^ frag ^ String.sub s i (n - i)
    | 4 ->
      (* insert raw bytes, including non-UTF8 *)
      let i = Rng.int r (n + 1) in
      let k = 1 + Rng.int r 8 in
      let frag = String.init k (fun _ -> Char.chr (Rng.int r 256)) in
      String.sub s 0 i ^ frag ^ String.sub s i (n - i)
    | 5 ->
      (* duplicate a chunk (grows nesting / repetition) *)
      let i = Rng.int r n in
      let len = min (n - i) (1 + Rng.int r 32) in
      let chunk = String.sub s i len in
      String.sub s 0 i ^ chunk ^ chunk ^ String.sub s (i + len) (n - i - len)
    | _ ->
      (* swap two halves *)
      let i = Rng.int r n in
      String.sub s i (n - i) ^ String.sub s 0 i

let gen_fresh r = function
  | Vhdl -> gen_vhdl r
  | Rtm -> gen_rtm r
  | Alg -> gen_alg r
  | Frame -> gen_frame r

let gen_input r target =
  match Rng.int r 4 with
  | 0 ->
    (* fresh grammar-aware generation *)
    gen_fresh r target
  | _ ->
    (* mutate a seed (or a fresh generation) a few times *)
    let base =
      if Rng.bool r then Rng.pick_list r (seeds target)
      else gen_fresh r target
    in
    let rec go s k = if k = 0 then s else go (mutate r s) (k - 1) in
    go base (1 + Rng.int r 4)

(* -- the pipeline under test ------------------------------------------------ *)

let sim_once m =
  (* the watchdog bounds delta cycles, cs_max is already capped by the
     limits, so this terminates on any validated model *)
  ignore (C.Simulate.run ~watchdog:true m)

let exercise ?(limits = Diag.Limits.default) target (src : string) =
  match target with
  | Vhdl ->
    let r = V.Parser.parse ~limits src in
    let findings = V.Lint.check ~spans:r.V.Parser.spans r.V.Parser.units in
    ignore (List.map V.Lint.to_diag findings);
    if Diag.has_errors r.V.Parser.diags then `Rejected
    else (
      match V.Extract.model_of_string_diag ~limits src with
      | Error _ -> `Rejected
      | Ok (m, _) ->
        (match C.Model.validate_diags ~limits m with
         | [] ->
           sim_once m;
           `Clean
         | _ -> `Rejected))
  | Rtm ->
    (match C.Rtm.parse ~limits src with
     | Error _ -> `Rejected
     | Ok (m, _) ->
       (match C.Model.validate_diags ~limits m with
        | [] ->
          sim_once m;
          `Clean
        | _ -> `Rejected))
  | Alg ->
    (match H.Parse.parse ~limits src with
     | Error _ -> `Rejected
     | Ok (p, _) ->
       ignore (H.Dfg.of_program p);
       `Clean)
  | Frame ->
    (* the response decoder must be total on the same bytes *)
    ignore (S.Frame.decode_response ~limits src);
    (match S.Frame.decode_request ~limits src with
     | Error [] -> failwith "Bug: frame rejected without diagnostics"
     | Error _ -> `Rejected
     | Ok req ->
       (* accepted frames must survive an encode/decode round trip:
          the daemon journals and the client replays what the encoder
          emits, so drift here silently corrupts resume *)
       let line = S.Frame.encode_request req in
       (match S.Frame.decode_request ~limits line with
        | Ok req2 when req2 = req -> `Clean
        | Ok _ -> failwith "Bug: request round-trip changed the frame"
        | Error _ -> failwith "Bug: re-encoded request rejected"))

(* -- crash bookkeeping ------------------------------------------------------ *)

type crash = {
  target : target;
  run : int;
  signature : string;
  error : string;
  input : string;
  original_size : int;
}

type report = {
  runs : int;
  rejected : int;
  accepted : int;
  crashes : crash list;
}

(* collapse digits and hex-ish noise so the same bug at different
   offsets dedups to one signature *)
let signature_of error =
  let first_line =
    match String.index_opt error '\n' with
    | Some i -> String.sub error 0 i
    | None -> error
  in
  String.map
    (fun c -> if c >= '0' && c <= '9' then '#' else c)
    first_line

(* -- shrinking -------------------------------------------------------------- *)

(* does [input] still die with the same signature? *)
let still_crashes ?limits ~budget target signature input =
  match
    Par.run_supervised ~budget ~retries:0 (fun () ->
        exercise ?limits target input)
  with
  | Par.Done _ -> false
  | Par.Crashed { error; _ } -> signature_of error = signature
  | Par.Over_budget _ -> signature = "over-budget"

let shrink ?limits ~budget target signature input =
  let attempts = ref 0 in
  let max_attempts = 300 in
  let try_keep candidate current =
    if
      !attempts < max_attempts
      && String.length candidate < String.length current
      && still_crashes ?limits ~budget target signature candidate
    then (incr attempts; Some candidate)
    else (incr attempts; None)
  in
  (* pass 1: drop lines, coarsest first *)
  let drop_lines input =
    let changed = ref true in
    let cur = ref input in
    while !changed && !attempts < max_attempts do
      changed := false;
      let lines = String.split_on_char '\n' !cur in
      let n = List.length lines in
      let k = ref (max 1 (n / 2)) in
      while !k >= 1 && !attempts < max_attempts do
        let i = ref 0 in
        while !i + !k <= List.length (String.split_on_char '\n' !cur)
              && !attempts < max_attempts do
          let ls = String.split_on_char '\n' !cur in
          let candidate =
            String.concat "\n"
              (List.filteri (fun j _ -> j < !i || j >= !i + !k) ls)
          in
          (match try_keep candidate !cur with
           | Some c ->
             cur := c;
             changed := true
           | None -> i := !i + !k)
        done;
        k := !k / 2
      done
    done;
    !cur
  in
  (* pass 2: chop character spans *)
  let drop_chars input =
    let cur = ref input in
    let k = ref (max 1 (String.length input / 2)) in
    while !k >= 1 && !attempts < max_attempts do
      let i = ref 0 in
      while !i + !k <= String.length !cur && !attempts < max_attempts do
        let s = !cur in
        let candidate =
          String.sub s 0 !i
          ^ String.sub s (!i + !k) (String.length s - !i - !k)
        in
        (match try_keep candidate !cur with
         | Some c -> cur := c
         | None -> i := !i + !k)
      done;
      k := !k / 2
    done;
    !cur
  in
  drop_chars (drop_lines input)

(* -- driver ----------------------------------------------------------------- *)

let run ?limits ?(budget = 5.0) ?out_dir ?progress ~seed ~runs targets =
  let targets = if targets = [] then all_targets else targets in
  let targets = Array.of_list targets in
  let rejected = ref 0 in
  let accepted = ref 0 in
  let crashes = ref [] in
  let seen = Hashtbl.create 16 in
  for i = 0 to runs - 1 do
    let target = targets.(i mod Array.length targets) in
    let r = Rng.split seed i in
    let input = gen_input r target in
    (match
       Par.run_supervised ~budget ~retries:0 (fun () ->
           exercise ?limits target input)
     with
     | Par.Done `Clean -> incr accepted
     | Par.Done `Rejected -> incr rejected
     | Par.Crashed { error; _ } ->
       let signature = signature_of error in
       if not (Hashtbl.mem seen (target, signature)) then begin
         Hashtbl.replace seen (target, signature) ();
         let shrunk = shrink ?limits ~budget target signature input in
         crashes :=
           {
             target;
             run = i;
             signature;
             error;
             input = shrunk;
             original_size = String.length input;
           }
           :: !crashes
       end
     | Par.Over_budget _ ->
       let signature = "over-budget" in
       if not (Hashtbl.mem seen (target, signature)) then begin
         Hashtbl.replace seen (target, signature) ();
         crashes :=
           {
             target;
             run = i;
             signature;
             error = Printf.sprintf "run exceeded the %gs budget" budget;
             input;
             original_size = String.length input;
           }
           :: !crashes
       end);
    match progress with
    | Some f when (i + 1) mod 250 = 0 -> f (i + 1) (List.length !crashes)
    | _ -> ()
  done;
  let crashes = List.rev !crashes in
  (match out_dir with
   | None -> ()
   | Some dir ->
     (try Unix.mkdir dir 0o755 with _ -> ());
     List.iteri
       (fun i c ->
         let stem =
           Printf.sprintf "%s/crash-%02d-%s" dir i
             (target_to_string c.target)
         in
         let write path contents =
           let oc = open_out path in
           output_string oc contents;
           close_out oc
         in
         write (stem ^ extension c.target) c.input;
         write (stem ^ ".err")
           (Printf.sprintf "run: %d\nsignature: %s\nerror: %s\n" c.run
              c.signature c.error))
       crashes);
  { runs; rejected = !rejected; accepted = !accepted; crashes }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fuzzed %d inputs: %d accepted, %d rejected with diagnostics, %d \
     crash signature(s)"
    r.runs r.accepted r.rejected (List.length r.crashes);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,  [%s] run %d: %s (%d -> %d bytes)"
        (target_to_string c.target) c.run c.signature c.original_size
        (String.length c.input))
    r.crashes;
  Format.fprintf ppf "@]"
