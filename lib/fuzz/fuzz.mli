(** Deterministic fuzzing of the untrusted-input frontier.

    Every entry point that accepts bytes from outside — the VHDL
    lexer/parser/linter/extractor, the [.rtm] corpus reader, the
    [.alg] program parser, the serve daemon's wire-frame decoder,
    model validation and one bounded simulation
    step — promises to return diagnostics instead of raising.  This
    harness hammers that promise: seeded grammar-aware generation plus
    byte-level mutation produce inputs, each input is pushed through
    the full pipeline under {!Csrtl_par.Par.run_supervised}, and {e
    any} escaped exception is a bug.

    Everything is a pure function of [seed]: the PRNG is a local
    splitmix64, no wall clock or global [Random] state is consulted,
    so a crash found on one machine replays everywhere.  Crashes are
    deduplicated by signature (exception text with digits masked) and
    shrunk greedily before being reported or written out. *)

type target = Vhdl | Rtm | Alg | Frame

val target_of_string : string -> target option
val target_to_string : target -> string
val all_targets : target list

type crash = {
  target : target;
  run : int;  (** 0-based index of the run that found it *)
  signature : string;  (** dedup key: first line, digits masked *)
  error : string;  (** the escaped exception, verbatim *)
  input : string;  (** shrunk reproducer *)
  original_size : int;  (** bytes before shrinking *)
}

type report = {
  runs : int;  (** inputs executed *)
  rejected : int;  (** inputs answered with error diagnostics *)
  accepted : int;  (** inputs that sailed through cleanly *)
  crashes : crash list;  (** deduplicated, in discovery order *)
}

val exercise :
  ?limits:Csrtl_diag.Diag.Limits.t -> target -> string -> [ `Clean | `Rejected ]
(** One pipeline pass over one input: parse, lint, extract/validate,
    and — when everything is accepted — one bounded simulation under
    the watchdog.  [`Rejected] means error diagnostics came back.
    The [Frame] target drives the serve daemon's wire codec instead:
    both decoders must be total, a rejected frame must carry
    diagnostics, and an accepted request must survive an
    encode/decode round trip unchanged.  Raising is precisely the bug
    the fuzzer exists to find; the {!run} driver supervises this
    call, tests may call it directly. *)

val run :
  ?limits:Csrtl_diag.Diag.Limits.t ->
  ?budget:float ->
  ?out_dir:string ->
  ?progress:(int -> int -> unit) ->
  seed:int -> runs:int -> target list -> report
(** Fuzz [runs] inputs spread round-robin over the targets.  [budget]
    (seconds, default 5.0) is the supervision bound per input — an
    input that exceeds it counts as a crash (the pipeline is supposed
    to be internally bounded).  With [out_dir], each deduplicated
    crash is written as a reproducer file plus an [.err] sidecar.
    [progress] is called with (runs done, crashes so far) every few
    hundred inputs. *)

val pp_report : Format.formatter -> report -> unit
