type severity = Error | Warning | Note

type span = {
  file : string option;
  line : int;
  col : int;
  len : int;
}

type t = {
  severity : severity;
  rule : string;
  span : span option;
  message : string;
}

type diag = t

let span ?file ?(len = 1) ~line ~col () =
  { file; line = max 1 line; col = max 1 col; len = max 1 len }

let make severity ?span ~rule fmt =
  Format.kasprintf (fun message -> { severity; rule; span; message }) fmt

let error ?span ~rule fmt = make Error ?span ~rule fmt
let warning ?span ~rule fmt = make Warning ?span ~rule fmt
let note ?span ~rule fmt = make Note ?span ~rule fmt

let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let severity_rank = function Error -> 0 | Warning -> 1 | Note -> 2

let by_position a b =
  let key d =
    match d.span with
    | None -> ("", max_int, max_int)
    | Some s -> ((match s.file with None -> "" | Some f -> f), s.line, s.col)
  in
  let c = compare (key a) (key b) in
  if c <> 0 then c
  else
    let c = compare (severity_rank a.severity) (severity_rank b.severity) in
    if c <> 0 then c else compare a.rule b.rule

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Note -> "note"

let pp ppf d =
  (match d.span with
   | Some s ->
     (match s.file with
      | Some f -> Format.fprintf ppf "%s:%d:%d: " f s.line s.col
      | None -> Format.fprintf ppf "%d:%d: " s.line s.col)
   | None -> ());
  Format.fprintf ppf "%s[%s]: %s" (severity_to_string d.severity) d.rule
    d.message

(* The offending source line, windowed and sanitized, with a caret
   marker.  Bytes outside printable ASCII become '.' so arbitrary
   input cannot smuggle control sequences into the terminal. *)
let snippet source s =
  let lines = String.split_on_char '\n' source in
  match List.nth_opt lines (s.line - 1) with
  | None -> None
  | Some raw ->
    let raw =
      String.map (fun c -> if c >= ' ' && c <= '~' then c else '.') raw
    in
    let width = 72 in
    let n = String.length raw in
    let col0 = s.col - 1 in
    if col0 > n then None
    else begin
      let start = if col0 <= width - 8 then 0 else col0 - (width - 8) in
      let visible = min (n - start) width in
      let text = String.sub raw start visible in
      let prefix = if start > 0 then "..." else "" in
      let suffix = if start + visible < n then "..." else "" in
      let caret_col = String.length prefix + (col0 - start) in
      let caret_len = max 1 (min s.len (width - (col0 - start))) in
      Some
        (Printf.sprintf "  %s%s%s\n  %s%s" prefix text suffix
           (String.make caret_col ' ')
           (String.make caret_len '^'))
    end

let render ?source d =
  let head = Format.asprintf "%a" pp d in
  match source, d.span with
  | Some src, Some s ->
    (match snippet src s with
     | Some snip -> head ^ "\n" ^ snip
     | None -> head)
  | _ -> head

let render_all ?source ds =
  let ds = List.stable_sort by_position ds in
  String.concat "" (List.map (fun d -> render ?source d ^ "\n") ds)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when c < ' ' || c >= '\127' ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"severity\":\"%s\",\"rule\":\"%s\""
       (severity_to_string d.severity)
       (json_escape d.rule));
  (match d.span with
   | None -> ()
   | Some s ->
     (match s.file with
      | Some f ->
        Buffer.add_string buf
          (Printf.sprintf ",\"file\":\"%s\"" (json_escape f))
      | None -> ());
     Buffer.add_string buf
       (Printf.sprintf ",\"line\":%d,\"col\":%d,\"len\":%d" s.line s.col
          s.len));
  Buffer.add_string buf
    (Printf.sprintf ",\"message\":\"%s\"}" (json_escape d.message));
  Buffer.contents buf

let list_to_json ds =
  let ds = List.stable_sort by_position ds in
  "[" ^ String.concat "," (List.map to_json ds) ^ "]"

let exit_code ds = if has_errors ds then 2 else 0

module Limits = struct
  type t = {
    max_input_bytes : int;
    max_tokens : int;
    max_nesting : int;
    max_registers : int;
    max_fus : int;
    max_buses : int;
    max_steps : int;
    max_transfers : int;
  }

  let default =
    { max_input_bytes = 8 * 1024 * 1024;
      max_tokens = 1_000_000;
      max_nesting = 200;
      max_registers = 4_096;
      max_fus = 4_096;
      max_buses = 4_096;
      max_steps = 1_000_000;
      max_transfers = 100_000 }

  let unlimited =
    { max_input_bytes = max_int;
      max_tokens = max_int;
      max_nesting = max_int;
      max_registers = max_int;
      max_fus = max_int;
      max_buses = max_int;
      max_steps = max_int;
      max_transfers = max_int }

  let check_input_bytes ?file t src =
    if String.length src > t.max_input_bytes then
      Some
        (error
           ~span:(span ?file ~line:1 ~col:1 ())
           ~rule:"limits.input-bytes"
           "input is %d bytes; the limit is %d" (String.length src)
           t.max_input_bytes)
    else None
end
