(** Structured diagnostics for every untrusted entry point.

    The parse / lint / elaborate pipeline is the trust boundary of the
    whole system: a description is valid exactly when it stays inside
    the paper's subset, so hostile or merely broken text must come
    back as {e located, structured findings} — never as an escaped
    exception, an OOM or a stack overflow.  Every frontend (VHDL
    lexer/parser, [.rtm] reader, [.alg] reader, model validation)
    reports through this one type; the CLI renders the list to stderr
    in one format and maps it to one exit-code contract (see
    [docs/DIAGNOSTICS.md]).

    Internal invariants keep their exceptions, but with [Bug:]-prefixed
    messages: an escaped exception is a defect of this repository, not
    of the input. *)

type severity = Error | Warning | Note

type span = {
  file : string option;  (** source path, when known *)
  line : int;  (** 1-based *)
  col : int;  (** 1-based column of the first offending byte *)
  len : int;  (** bytes the caret underlines; at least 1 *)
}

type t = {
  severity : severity;
  rule : string;  (** stable machine-readable id, e.g. ["vhdl.syntax"] *)
  span : span option;  (** [None] only for whole-file findings *)
  message : string;
}

type diag = t

val span : ?file:string -> ?len:int -> line:int -> col:int -> unit -> span

val error : ?span:span -> rule:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val warning : ?span:span -> rule:string -> ('a, Format.formatter, unit, t) format4 -> 'a
val note : ?span:span -> rule:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val has_errors : t list -> bool
(** Any [Error]-severity entry. *)

val by_position : t -> t -> int
(** Source order: (file, line, col), then severity, then rule. *)

val pp : Format.formatter -> t -> unit
(** One line: [file:line:col: error[rule]: message]. *)

val render : ?source:string -> t -> string
(** {!pp}, plus — when [source] is the original text and the span is
    in range — the offending source line with a caret marker under the
    span.  Tab-safe; long lines are windowed around the span; bytes
    outside printable ASCII are shown as [.] so non-UTF8 input cannot
    corrupt the terminal. *)

val render_all : ?source:string -> t list -> string
(** Every diagnostic through {!render}, in {!by_position} order,
    newline-separated (trailing newline included when nonempty). *)

val to_json : t -> string
(** One-object JSON encoding (hand-rolled, no dependencies):
    [{"severity":"error","rule":"...","file":...,"line":N,"col":N,
    "len":N,"message":"..."}]. *)

val list_to_json : t list -> string
(** JSON array of {!to_json} objects, in {!by_position} order. *)

val exit_code : t list -> int
(** The CLI contract for a frontend result: [2] when the list has
    errors (bad input), [0] otherwise. *)

(** {1 Resource guards}

    Configurable caps applied {e at} the boundary, so oversized or
    adversarial inputs surface as diagnostics instead of OOM or stack
    overflow.  A cap of [max_int] disables the guard. *)

module Limits : sig
  type t = {
    max_input_bytes : int;  (** bytes of source text accepted *)
    max_tokens : int;  (** tokens a lexer will produce *)
    max_nesting : int;  (** parser recursion depth (parens, if/for) *)
    max_registers : int;
    max_fus : int;
    max_buses : int;
    max_steps : int;  (** elaborated [cs_max] *)
    max_transfers : int;
  }

  val default : t
  val unlimited : t

  val check_input_bytes : ?file:string -> t -> string -> diag option
  (** [Some] error diagnostic (rule [limits.input-bytes]) when the
      text exceeds [max_input_bytes]. *)
end
