(** The cacheable golden work of a fault campaign.

    An artifact holds everything a campaign computes {e before} it
    runs its first fault: both engines' clean golden observations, the
    golden {!Csrtl_core.Snapshot} checkpoints at every control-step
    boundary some enumerated fault can restore from, and the measured
    wall cost of one golden run (which shapes chunk planning only,
    never report bytes).  Build one with {!Campaign.prepare}; pass it
    back via the campaign entry points' [?golden] argument and the
    warm campaign skips compilation {e and} the golden simulations.

    Artifacts are content-addressed by (model digest, config tag):
    {!Csrtl_core.Snapshot.digest_of_model} covers the raw model text,
    so editing the model can never reuse a stale artifact — the key
    changes, the old entry ages out of its LRU.  The compiled plan is
    deliberately not part of the artifact (closures don't serialize
    and recompiling is cheap); {!Csrtl_core.Batch.plan} rebuilds it.

    The daemon keys its in-memory golden tier with these; [csrtl
    inject --artifact-cache DIR] stores {!to_string} bytes on disk,
    one file per key. *)

open Csrtl_core

type t = {
  digest : string;  (** {!Csrtl_core.Snapshot.digest_of_model} *)
  config : string;  (** {!Journal.config_tag} of the build config *)
  golden_k : Observation.t;  (** kernel-side clean golden *)
  golden_i : Observation.t;  (** interpreter clean golden *)
  checkpoints : Snapshot.t list;
      (** golden state at each restore boundary, ascending by step;
          empty when the build config's [on_illegal] is not [Record]
          (checkpoint restore is unsound there, so none are taken) *)
  est_us : float;  (** measured golden wall cost, microseconds *)
}

val matches : digest:string -> config_tag:string -> t -> bool
(** O(1) header check: the artifact records exactly this model digest
    and config tag.  Sufficient for in-memory tiers that are already
    content-addressed by (digest | config tag) — the deep {!validate}
    walk there would cost more than the golden work the hit saves.
    Bytes from outside the process (disk cache, worker pipe) get the
    full {!validate} instead. *)

val validate : Model.t -> config:Simulate.config -> t -> (unit, string) result
(** Structural check against the model and config the artifact is
    about to serve: digest and config tag must match, goldens must be
    of this model, every checkpoint must pass
    {!Csrtl_core.Snapshot.validate} and steps must be strictly
    ascending.  An artifact read from disk must pass this before use
    — a corrupt or mismatched entry is a cache miss, never a crash. *)

val to_string : t -> string
(** Versioned text serialization (magic ["csrtl-artifact 1"]): the
    golden observations and checkpoints are embedded verbatim in
    their own versioned formats between section markers. *)

val of_string : string -> (t, string) result
(** Total inverse of {!to_string} — any input yields [Ok] or a
    human-readable [Error], never an exception. *)

val save : string -> t -> unit
(** Write-then-rename: a concurrent {!load} sees complete bytes or
    nothing.  Raises [Sys_error] on I/O failure. *)

val load : string -> (t, string) result
(** Read and parse; I/O errors come back as [Error]. *)
