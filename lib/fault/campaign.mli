(** Golden-vs-faulted campaigns over both execution paths.

    For every enumerated fault, the campaign runs the faulted model on
    the event kernel ({!Csrtl_core.Simulate}, watchdog armed) and on
    the reference interpreter ({!Csrtl_core.Interp}), compares each
    against its own clean golden run, and classifies the outcome.  A
    campaign never raises for in-model failures: anything escaping a
    run is reported as [Crashed].

    Two robustness layers wrap every fault run:

    - {b checkpoint restore}: under the default [Record] policy both
      engines resume from a golden checkpoint at the last boundary
      before the fault can act ({!Fault.first_step}), instead of
      re-simulating the healthy prefix from step 0.  Classifications
      are unchanged — SEMANTICS §10's quiescence property makes the
      restored state indistinguishable from the simulated one;
    - {b supervision}: a run that raises is retried once then
      classified [Crashed]; with [budget], a run exceeding its
      wall-clock budget classifies as [Hung] — neither aborts the
      campaign or its pool. *)

open Csrtl_core

type outcome = Outcome.t =
  | Masked  (** observation identical to the golden run *)
  | Detected of int * Phase.t * string
      (** a conflict the golden run does not have, localized to the
          first (control step, phase, sink) where it became visible *)
  | Corrupted of string list
      (** silent data corruption: no new conflict, but the observation
          differs (the differences, human-readable) *)
  | Hung of string  (** watchdog trip, kernel delta overflow, or
                        work-budget overrun *)
  | Crashed of string  (** an exception escaped the run *)

type entry = {
  fault : Fault.t;
  kernel_outcome : outcome;
  interp_outcome : outcome;
  kernel_cycles : int;
  law_ok : bool;
      (** for masked kernel runs: delta cycles within one of the
          law for the simulated segment ({!Simulate.expected_cycles},
          or {!Simulate.expected_cycles_from} the restored boundary) *)
}

type report = {
  model : string;
  total : int;
  masked : int;
  detected : int;
  corrupted : int;
  hung : int;
  crashed : int;  (** counts over kernel outcomes *)
  disagreements : int;  (** entries where the two paths differ in class *)
  law_violations : int;
  coverage : float option;
      (** [detected / (total - masked)]; [None] if all masked *)
  entries : entry list;
}

type engine = [ `Auto | `Kernel | `Compiled ]
(** Which realization runs the faulted observations.  [`Kernel] is the
    event kernel plus the interpreter per fault — the reference path.
    [`Auto] (the default) and [`Compiled] batch every fault whose
    injection compiles into the static schedule
    ({!Csrtl_core.Compiled.compilable}) onto the lockstep executor
    ({!Csrtl_core.Batch}) and derive both engines' outcomes from the
    one batched observation; faults with no static schedule
    (oscillators, [cr] saboteurs) and non-[Record] configs stay on the
    kernel path either way.  Reports, journals and classifications are
    byte-identical across engines — the batched path is a pure
    optimization, pinned by the determinism suite. *)

type batch_stats = {
  batched : int;  (** faults that ran on the batched lockstep path *)
  kernel_path : int;  (** faults that ran the reference path *)
  retired_early : int;
      (** batched variants retired at a re-convergence boundary
          before [cs_max] ({!Csrtl_core.Batch.Converged}) *)
}

val boundary_of_fault : Model.t -> Fault.t -> int
(** The latest golden boundary a run of this fault may restore from:
    [min (Fault.first_step m f - 1) cs_max]. *)

val prepare :
  ?config:Simulate.config -> ?plan:Batch.plan -> Model.t -> Artifact.t
(** Compute the campaign's golden work once, as a cacheable
    {!Artifact}: both engines' clean golden runs, checkpoints at every
    boundary an enumerated fault can restore from (a superset of what
    any limited, filtered or resumed campaign needs — per-fault
    restores are keyed by the fault's own boundary, so the superset
    never changes which snapshot a fault uses), and the measured
    golden wall cost.  [plan] reuses an existing compile.  Passing the
    artifact back through [?golden] below yields byte-identical
    reports to a cold run — the warm path is a pure optimization. *)

val run :
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool -> ?engine:engine -> ?batch:int ->
  ?plan:Batch.plan -> ?golden:Artifact.t ->
  Model.t -> report
(** [faults] overrides {!Fault.enumerate} (then [limit] is unused).
    [config] selects the kernel policies of every run (default
    {!Simulate.default}); the watchdog is always forced on so a
    stalling fault classifies as [Hung] instead of hanging the
    campaign.  The clean kernel golden takes the phase-compiled fast
    path when [config] permits.  [budget] bounds each fault run's wall
    clock (seconds; overruns classify as [Hung]; a batched chunk that
    overruns falls back to budgeted per-fault kernel runs).  [restore]
    (default on) enables the checkpoint fast path; it only engages
    under the [Record] policy, where golden checkpoints are
    engine-independent.  [engine] (default [`Auto]) selects the
    batched fast path; [batch] (default 32) is the lockstep batch
    size K — results do not depend on it.

    [plan] supplies a pre-compiled {!Csrtl_core.Batch.plan} (a
    plan-cache hit) and [golden] a pre-built {!Artifact} (a golden
    hit): with both, the campaign skips compilation and the golden
    simulations entirely and starts on its first fault immediately.
    Both are pure optimizations — report bytes are unchanged, which
    the warm-path qcheck suite pins.  A [golden] whose digest or
    config tag does not match this campaign raises
    [Invalid_argument]; validate cached artifacts before passing
    them. *)

val run_parallel :
  ?pool:Csrtl_par.Par.t -> ?jobs:int -> ?chunks:int ->
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool -> ?engine:engine -> ?batch:int ->
  ?plan:Batch.plan -> ?golden:Artifact.t ->
  Model.t -> report
(** {!run} with the fault list sharded across a domain pool.  The
    goldens and checkpoints are computed once in the caller; each
    faulted run owns its kernel/interpreter state, so runs are
    embarrassingly parallel.  Entry order follows the fault list
    regardless of scheduling: the report is {e identical} to {!run}'s
    — same bytes from {!pp_report} at any [jobs]/[chunks]/[batch] —
    which the determinism suite checks.  [pool] reuses an existing pool (then
    [jobs] is ignored); otherwise a pool of [jobs] (default
    {!Csrtl_par.Par.default_jobs}) is created for the call, sized to
    the host's cores and with campaign-tuned worker nurseries; when
    the runtime cannot provide the requested domains the pool shrinks
    gracefully down to sequential ({!Csrtl_par.Par.create}).
    [chunks], when omitted, is planned from the measured golden-run
    cost ({!Csrtl_par.Par.plan_chunks}) — the measurement shapes
    scheduling only, never the report bytes. *)

type resume_info = {
  reused : int;  (** journal entries accepted without re-running *)
  rerun : int;  (** faults (re)computed this invocation *)
  torn : int;  (** journal lines discarded: truncated by a crash,
                   failed their integrity hash, out of range,
                   duplicated, or label-mismatched *)
  remaining : int;
      (** faults left unrun because [should_stop] drained the
          campaign; [0] for a completed run.  When non-zero the
          report is partial — its [total] counts only the entries it
          has — and re-invoking with [resume:true] finishes it. *)
}

val run_journaled :
  ?pool:Csrtl_par.Par.t -> ?jobs:int -> ?chunks:int ->
  ?config:Simulate.config -> ?digest:string -> ?limit:int ->
  ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool -> ?engine:engine -> ?batch:int ->
  ?plan:Batch.plan -> ?golden:Artifact.t ->
  ?should_stop:(unit -> bool) -> ?on_entry:(int -> entry -> unit) ->
  journal:string -> resume:bool ->
  Model.t -> (report * resume_info, string) result
(** {!run_parallel} with crash durability: every finished fault is
    appended to the JSONL [journal] ({!Journal}) before the campaign
    moves on, and the journal is fsynced ({!Journal.sync}) when the
    campaign completes or drains with new entries — a wholesale replay
    writes nothing and skips the fsync.  With [resume] false the
    journal is truncated and the whole campaign runs.  [digest], when
    given, must be [Snapshot.digest_of_model m] (a caller that already
    computed it — the daemon — skips the per-request model re-render
    and hash; a wrong value can only fail the header match, never
    corrupt a report).  With [resume] true the
    journal is read first: entries that parse, pass their integrity
    hash and match the fault list are reused verbatim; torn or
    missing entries are re-run (and appended).  The resumed report is
    byte-identical to an uninterrupted run's — reused entries
    round-trip through the journal losslessly.  [Error] when the
    journal is unreadable, malformed, or was written for a different
    campaign (model digest, config tag, or fault-list digest
    disagree).

    [should_stop] is polled between work items (from pool domains —
    it must be thread-safe and cheap, e.g. an [Atomic.t] read or a
    deadline comparison); once true, unstarted items are skipped and
    the run returns early with [resume_info.remaining] counting the
    skipped faults — the daemon's graceful-drain path.  [on_entry]
    fires after each computed entry has been journaled (also from
    pool domains), so a streaming consumer never sees an entry the
    journal could lose. *)

val run_with_stats :
  ?pool:Csrtl_par.Par.t -> ?jobs:int -> ?chunks:int ->
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool -> ?engine:engine -> ?batch:int ->
  ?plan:Batch.plan -> ?golden:Artifact.t ->
  Model.t -> report * batch_stats
(** {!run_parallel}, additionally reporting how the faults were
    dispatched — the bench harness uses the early-retirement hit rate
    and the batched/kernel split for the C12 table. *)

val outcomes_agree : outcome -> outcome -> bool
(** Same class; [Detected] additionally requires the same localization. *)

val classify : golden:Observation.t -> Observation.t -> outcome
(** Classification of one faulted observation against a golden one
    (no Hung/Crashed cases — those come from the runner). *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
