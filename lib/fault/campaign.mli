(** Golden-vs-faulted campaigns over both execution paths.

    For every enumerated fault, the campaign runs the faulted model on
    the event kernel ({!Csrtl_core.Simulate}, watchdog armed) and on
    the reference interpreter ({!Csrtl_core.Interp}), compares each
    against its own clean golden run, and classifies the outcome.  A
    campaign never raises for in-model failures: anything escaping a
    run is reported as [Crashed]. *)

open Csrtl_core

type outcome =
  | Masked  (** observation identical to the golden run *)
  | Detected of int * Phase.t * string
      (** a conflict the golden run does not have, localized to the
          first (control step, phase, sink) where it became visible *)
  | Corrupted of string list
      (** silent data corruption: no new conflict, but the observation
          differs (the differences, human-readable) *)
  | Hung of string  (** watchdog trip or kernel delta overflow *)
  | Crashed of string  (** an exception escaped the run *)

type entry = {
  fault : Fault.t;
  kernel_outcome : outcome;
  interp_outcome : outcome;
  kernel_cycles : int;
  law_ok : bool;
      (** for masked kernel runs: delta cycles within one of
          {!Simulate.expected_cycles} (trailing-release slack) *)
}

type report = {
  model : string;
  total : int;
  masked : int;
  detected : int;
  corrupted : int;
  hung : int;
  crashed : int;  (** counts over kernel outcomes *)
  disagreements : int;  (** entries where the two paths differ in class *)
  law_violations : int;
  coverage : float option;
      (** [detected / (total - masked)]; [None] if all masked *)
  entries : entry list;
}

val run : ?limit:int -> ?faults:Fault.t list -> Model.t -> report
(** [faults] overrides {!Fault.enumerate} (then [limit] is unused). *)

val outcomes_agree : outcome -> outcome -> bool
(** Same class; [Detected] additionally requires the same localization. *)

val classify : golden:Observation.t -> Observation.t -> outcome
(** Classification of one faulted observation against a golden one
    (no Hung/Crashed cases — those come from the runner). *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
