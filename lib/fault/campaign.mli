(** Golden-vs-faulted campaigns over both execution paths.

    For every enumerated fault, the campaign runs the faulted model on
    the event kernel ({!Csrtl_core.Simulate}, watchdog armed) and on
    the reference interpreter ({!Csrtl_core.Interp}), compares each
    against its own clean golden run, and classifies the outcome.  A
    campaign never raises for in-model failures: anything escaping a
    run is reported as [Crashed]. *)

open Csrtl_core

type outcome =
  | Masked  (** observation identical to the golden run *)
  | Detected of int * Phase.t * string
      (** a conflict the golden run does not have, localized to the
          first (control step, phase, sink) where it became visible *)
  | Corrupted of string list
      (** silent data corruption: no new conflict, but the observation
          differs (the differences, human-readable) *)
  | Hung of string  (** watchdog trip or kernel delta overflow *)
  | Crashed of string  (** an exception escaped the run *)

type entry = {
  fault : Fault.t;
  kernel_outcome : outcome;
  interp_outcome : outcome;
  kernel_cycles : int;
  law_ok : bool;
      (** for masked kernel runs: delta cycles within one of
          {!Simulate.expected_cycles} (trailing-release slack) *)
}

type report = {
  model : string;
  total : int;
  masked : int;
  detected : int;
  corrupted : int;
  hung : int;
  crashed : int;  (** counts over kernel outcomes *)
  disagreements : int;  (** entries where the two paths differ in class *)
  law_violations : int;
  coverage : float option;
      (** [detected / (total - masked)]; [None] if all masked *)
  entries : entry list;
}

val run :
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  Model.t -> report
(** [faults] overrides {!Fault.enumerate} (then [limit] is unused).
    [config] selects the kernel policies of every run (default
    {!Simulate.default}); the watchdog is always forced on so a
    stalling fault classifies as [Hung] instead of hanging the
    campaign.  The clean kernel golden takes the phase-compiled fast
    path when [config] permits. *)

val run_parallel :
  ?pool:Csrtl_par.Par.t -> ?jobs:int -> ?chunks:int ->
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  Model.t -> report
(** {!run} with the fault list sharded across a domain pool.  The
    goldens are computed once in the caller; each faulted run owns its
    kernel/interpreter state, so runs are embarrassingly parallel.
    Entry order follows the fault list regardless of scheduling: the
    report is {e identical} to {!run}'s — same bytes from
    {!pp_report} at any [jobs]/[chunks] — which the determinism suite
    checks.  [pool] reuses an existing pool (then [jobs] is ignored);
    otherwise a pool of [jobs] (default
    {!Csrtl_par.Par.default_jobs}) is created for the call. *)

val outcomes_agree : outcome -> outcome -> bool
(** Same class; [Detected] additionally requires the same localization. *)

val classify : golden:Observation.t -> Observation.t -> outcome
(** Classification of one faulted observation against a golden one
    (no Hung/Crashed cases — those come from the runner). *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
