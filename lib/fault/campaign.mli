(** Golden-vs-faulted campaigns over both execution paths.

    For every enumerated fault, the campaign runs the faulted model on
    the event kernel ({!Csrtl_core.Simulate}, watchdog armed) and on
    the reference interpreter ({!Csrtl_core.Interp}), compares each
    against its own clean golden run, and classifies the outcome.  A
    campaign never raises for in-model failures: anything escaping a
    run is reported as [Crashed].

    Two robustness layers wrap every fault run:

    - {b checkpoint restore}: under the default [Record] policy both
      engines resume from a golden checkpoint at the last boundary
      before the fault can act ({!Fault.first_step}), instead of
      re-simulating the healthy prefix from step 0.  Classifications
      are unchanged — SEMANTICS §10's quiescence property makes the
      restored state indistinguishable from the simulated one;
    - {b supervision}: a run that raises is retried once then
      classified [Crashed]; with [budget], a run exceeding its
      wall-clock budget classifies as [Hung] — neither aborts the
      campaign or its pool. *)

open Csrtl_core

type outcome = Outcome.t =
  | Masked  (** observation identical to the golden run *)
  | Detected of int * Phase.t * string
      (** a conflict the golden run does not have, localized to the
          first (control step, phase, sink) where it became visible *)
  | Corrupted of string list
      (** silent data corruption: no new conflict, but the observation
          differs (the differences, human-readable) *)
  | Hung of string  (** watchdog trip, kernel delta overflow, or
                        work-budget overrun *)
  | Crashed of string  (** an exception escaped the run *)

type entry = {
  fault : Fault.t;
  kernel_outcome : outcome;
  interp_outcome : outcome;
  kernel_cycles : int;
  law_ok : bool;
      (** for masked kernel runs: delta cycles within one of the
          law for the simulated segment ({!Simulate.expected_cycles},
          or {!Simulate.expected_cycles_from} the restored boundary) *)
}

type report = {
  model : string;
  total : int;
  masked : int;
  detected : int;
  corrupted : int;
  hung : int;
  crashed : int;  (** counts over kernel outcomes *)
  disagreements : int;  (** entries where the two paths differ in class *)
  law_violations : int;
  coverage : float option;
      (** [detected / (total - masked)]; [None] if all masked *)
  entries : entry list;
}

val run :
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool ->
  Model.t -> report
(** [faults] overrides {!Fault.enumerate} (then [limit] is unused).
    [config] selects the kernel policies of every run (default
    {!Simulate.default}); the watchdog is always forced on so a
    stalling fault classifies as [Hung] instead of hanging the
    campaign.  The clean kernel golden takes the phase-compiled fast
    path when [config] permits.  [budget] bounds each fault run's wall
    clock (seconds; overruns classify as [Hung]).  [restore] (default
    on) enables the checkpoint fast path; it only engages under the
    [Record] policy, where golden checkpoints are engine-independent. *)

val run_parallel :
  ?pool:Csrtl_par.Par.t -> ?jobs:int -> ?chunks:int ->
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool ->
  Model.t -> report
(** {!run} with the fault list sharded across a domain pool.  The
    goldens and checkpoints are computed once in the caller; each
    faulted run owns its kernel/interpreter state, so runs are
    embarrassingly parallel.  Entry order follows the fault list
    regardless of scheduling: the report is {e identical} to {!run}'s
    — same bytes from {!pp_report} at any [jobs]/[chunks] — which the
    determinism suite checks.  [pool] reuses an existing pool (then
    [jobs] is ignored); otherwise a pool of [jobs] (default
    {!Csrtl_par.Par.default_jobs}) is created for the call; when the
    runtime cannot provide the requested domains the pool shrinks
    gracefully down to sequential ({!Csrtl_par.Par.create}). *)

type resume_info = {
  reused : int;  (** journal entries accepted without re-running *)
  rerun : int;  (** faults (re)computed this invocation *)
  torn : int;  (** journal lines discarded: truncated by a crash,
                   failed their integrity hash, out of range,
                   duplicated, or label-mismatched *)
}

val run_journaled :
  ?pool:Csrtl_par.Par.t -> ?jobs:int -> ?chunks:int ->
  ?config:Simulate.config -> ?limit:int -> ?faults:Fault.t list ->
  ?budget:float -> ?restore:bool ->
  journal:string -> resume:bool ->
  Model.t -> (report * resume_info, string) result
(** {!run_parallel} with crash durability: every finished fault is
    appended to the JSONL [journal] ({!Journal}) before the campaign
    moves on.  With [resume] false the journal is truncated and the
    whole campaign runs.  With [resume] true the journal is read
    first: entries that parse, pass their integrity hash and match
    the fault list are reused verbatim; torn or missing entries are
    re-run (and appended).  The resumed report is byte-identical to
    an uninterrupted run's — reused entries round-trip through the
    journal losslessly.  [Error] when the journal is unreadable,
    malformed, or was written for a different campaign (model digest,
    config tag, or fault-list digest disagree). *)

val outcomes_agree : outcome -> outcome -> bool
(** Same class; [Detected] additionally requires the same localization. *)

val classify : golden:Observation.t -> Observation.t -> outcome
(** Classification of one faulted observation against a golden one
    (no Hung/Crashed cases — those come from the runner). *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp_report : Format.formatter -> report -> unit
