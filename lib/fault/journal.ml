(* Crash-durable campaign journal: one JSON object per line, appended
   and flushed as each fault finishes, so a killed campaign loses at
   most the entry being written.  Every entry carries an integrity
   hash over (model digest, entry body); a torn tail line or a line
   from a different campaign fails the hash and is re-run on resume
   instead of poisoning the report.

   There is no JSON library in the toolchain, so a minimal generator
   and recursive-descent parser for the subset we emit (objects,
   arrays, strings, integers, booleans) live here.  The writer is
   mutex-protected: parallel campaigns append from worker domains. *)

open Csrtl_core

(* ------------------------------------------------------------------ *)
(* JSON subset                                                        *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Bool of bool
    | Int of int
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let buf_add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

  let rec buf_add_json b = function
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Str s ->
    Buffer.add_char b '"';
    buf_add_escaped b s;
    Buffer.add_char b '"'
  | Arr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        buf_add_json b v)
      vs;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        buf_add_json b (Str k);
        Buffer.add_char b ':';
        buf_add_json b v)
      fields;
    Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 128 in
    buf_add_json b v;
    Buffer.contents b

  exception Bad of string

  (* [max_depth] bounds container nesting: this parser also sits on the
     serve daemon's wire frontier, where an adversarial ["[[[[..."] line
     must yield a [Bad] diagnostic, not a stack overflow.  Journal lines
     nest two levels deep; the default leaves ample headroom. *)
  let parse ?(max_depth = 64) (s : string) : t =
    let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit
    then (pos := !pos + String.length lit; v)
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
             | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
             | Some _ -> fail "non-ASCII \\u escape"
             | None -> fail "bad \\u escape");
            pos := !pos + 4
          | _ -> fail "unknown escape");
         advance ());
        loop ()
      | c ->
        Buffer.add_char b c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents b
  in
    let rec parse_value depth =
      if depth > max_depth then fail "nesting too deep";
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); Arr [])
        else
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
      | Some ('-' | '0' .. '9') ->
        let start = !pos in
        if peek () = Some '-' then advance ();
        while
          !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
        do
          advance ()
        done;
        (match int_of_string_opt (String.sub s start (!pos - start)) with
         | Some i -> Int i
         | None -> fail "bad integer")
      | _ -> fail "expected a JSON value"
    in
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let field name = function
    | Obj fields -> List.assoc_opt name fields
    | _ -> None

  let str_field name j =
    match field name j with
    | Some (Str s) -> s
    | _ -> raise (Bad (Printf.sprintf "missing string field %S" name))

  let int_field name j =
    match field name j with
    | Some (Int i) -> i
    | _ -> raise (Bad (Printf.sprintf "missing integer field %S" name))

  let bool_field name j =
    match field name j with
    | Some (Bool v) -> v
    | _ -> raise (Bad (Printf.sprintf "missing boolean field %S" name))
end

open Json

let json_to_string = Json.to_string
let parse_json s = Json.parse s
let field = Json.field
let str_field = Json.str_field
let int_field = Json.int_field
let bool_field = Json.bool_field

(* ------------------------------------------------------------------ *)
(* Wire types                                                         *)
(* ------------------------------------------------------------------ *)

type header = {
  model : string;
  digest : string;  (** {!Csrtl_core.Snapshot.digest_of_model} *)
  config : string;  (** {!config_tag} of the campaign's kernel config *)
  total : int;
  faults_digest : string;
}

type entry = {
  index : int;
  fault_label : string;
  kernel : Outcome.t;
  interp : Outcome.t;
  cycles : int;
  law_ok : bool;
}

let config_tag (c : Simulate.config) =
  Printf.sprintf "%s+%s+%s"
    (match c.Simulate.wait_impl with `Keyed -> "keyed" | `Predicate -> "pred")
    (match c.Simulate.resolution_impl with
     | `Incremental -> "incr"
     | `Fold -> "fold")
    (match c.Simulate.on_illegal with
     | Simulate.Halt -> "halt"
     | Simulate.Record -> "record"
     | Simulate.Degrade -> "degrade")

let faults_digest labels =
  Digest.to_hex
    (Digest.string (String.concat "\n" labels))

(* ------------------------------------------------------------------ *)
(* Outcome (de)serialization                                          *)
(* ------------------------------------------------------------------ *)

let json_of_outcome = function
  | Outcome.Masked -> Obj [ ("o", Str "masked") ]
  | Outcome.Detected (step, phase, sink) ->
    Obj
      [ ("o", Str "detected"); ("step", Int step);
        ("phase", Str (Phase.to_string phase)); ("sink", Str sink) ]
  | Outcome.Corrupted diffs ->
    Obj [ ("o", Str "corrupted"); ("diffs", Arr (List.map (fun d -> Str d) diffs)) ]
  | Outcome.Hung why -> Obj [ ("o", Str "hung"); ("why", Str why) ]
  | Outcome.Crashed why -> Obj [ ("o", Str "crashed"); ("why", Str why) ]

let outcome_of_json j =
  match str_field "o" j with
  | "masked" -> Outcome.Masked
  | "detected" ->
    let phase =
      match Phase.of_string (str_field "phase" j) with
      | Some p -> p
      | None -> raise (Bad "bad phase in detected outcome")
    in
    Outcome.Detected (int_field "step" j, phase, str_field "sink" j)
  | "corrupted" ->
    let diffs =
      match field "diffs" j with
      | Some (Arr vs) ->
        List.map
          (function Str s -> s | _ -> raise (Bad "bad diff entry"))
          vs
      | _ -> raise (Bad "missing diffs")
    in
    Outcome.Corrupted diffs
  | "hung" -> Outcome.Hung (str_field "why" j)
  | "crashed" -> Outcome.Crashed (str_field "why" j)
  | other -> raise (Bad (Printf.sprintf "unknown outcome %S" other))

(* ------------------------------------------------------------------ *)
(* Lines                                                              *)
(* ------------------------------------------------------------------ *)

let header_line h =
  json_to_string
    (Obj
       [ ("journal", Str "csrtl-fault-campaign"); ("v", Int 1);
         ("model", Str h.model); ("digest", Str h.digest);
         ("config", Str h.config); ("total", Int h.total);
         ("faults", Str h.faults_digest) ])

let header_of_line line =
  let j = parse_json line in
  if field "journal" j <> Some (Str "csrtl-fault-campaign") then
    raise (Bad "not a campaign journal");
  if field "v" j <> Some (Int 1) then raise (Bad "unsupported journal version");
  { model = str_field "model" j; digest = str_field "digest" j;
    config = str_field "config" j; total = int_field "total" j;
    faults_digest = str_field "faults" j }

(* The integrity hash binds an entry to its campaign: md5 over the
   model digest and the entry body (the line without the "h" field).
   A line truncated by a crash, or copied from another campaign's
   journal, fails the check and counts as torn. *)
let entry_body (e : entry) =
  json_to_string
    (Obj
       [ ("i", Int e.index); ("fault", Str e.fault_label);
         ("kernel", json_of_outcome e.kernel);
         ("interp", json_of_outcome e.interp); ("cycles", Int e.cycles);
         ("law_ok", Bool e.law_ok) ])

let entry_hash ~digest body = Digest.to_hex (Digest.string (digest ^ body))

let entry_line ~digest e =
  let body = entry_body e in
  let h = entry_hash ~digest body in
  json_to_string
    (Obj
       [ ("i", Int e.index); ("fault", Str e.fault_label);
         ("kernel", json_of_outcome e.kernel);
         ("interp", json_of_outcome e.interp); ("cycles", Int e.cycles);
         ("law_ok", Bool e.law_ok); ("h", Str h) ])

let entry_of_line ~digest line =
  let j = parse_json line in
  let e =
    { index = int_field "i" j; fault_label = str_field "fault" j;
      kernel =
        (match field "kernel" j with
         | Some o -> outcome_of_json o
         | None -> raise (Bad "missing kernel outcome"));
      interp =
        (match field "interp" j with
         | Some o -> outcome_of_json o
         | None -> raise (Bad "missing interp outcome"));
      cycles = int_field "cycles" j; law_ok = bool_field "law_ok" j }
  in
  let h = str_field "h" j in
  if h <> entry_hash ~digest (entry_body e) then
    raise (Bad "integrity hash mismatch");
  e

(* ------------------------------------------------------------------ *)
(* Writer                                                             *)
(* ------------------------------------------------------------------ *)

type io_op = [ `Create of string | `Append of string | `Sync of string ]

(* Fault-injection seam for the chaos harness: consulted before each
   journal I/O operation, [None] in production (one load per append).
   A hook that raises (say ENOSPC) makes the write fail exactly as a
   full disk would, so the daemon's crash-only recovery path can be
   driven deterministically. *)
let chaos : (io_op -> unit) option ref = ref None

let chaos_poke op = match !chaos with None -> () | Some f -> f op

type writer = {
  oc : out_channel;
  path : string;
  digest : string;
  lock : Mutex.t;
}

(* Durability of the file's *existence*: creating and fsyncing a file
   pins its bytes, but the name lives in the directory — until the
   directory is fsynced too, a crash can forget the journal entirely
   and a resumed campaign silently starts from zero. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error (_, _, _) -> ())
  | exception Unix.Unix_error (_, _, _) -> ()

let start path (h : header) =
  chaos_poke (`Create path);
  (* O_APPEND even for a fresh journal: if two daemons race on the same
     path (or a stale writer survives a partial shutdown), appends from
     both interleave at line granularity instead of overwriting each
     other — the reader's integrity hash then sorts out any torn line *)
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_append ] 0o644 path
  in
  output_string oc (header_line h);
  output_char oc '\n';
  flush oc;
  fsync_dir path;
  { oc; path; digest = h.digest; lock = Mutex.create () }

let reopen path (h : header) =
  (* a crash can leave a torn final line without its newline; seal it
     so the next append starts a fresh line and the torn one stays an
     isolated parse failure *)
  let needs_newline =
    match open_in_bin path with
    | ic ->
      let len = in_channel_length ic in
      let missing =
        len > 0
        && (seek_in ic (len - 1);
            input_char ic <> '\n')
      in
      close_in ic;
      missing
    | exception Sys_error _ -> false
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  if needs_newline then (output_char oc '\n'; flush oc);
  { oc; path; digest = h.digest; lock = Mutex.create () }

let append w (e : entry) =
  let line = entry_line ~digest:w.digest e in
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      chaos_poke (`Append w.path);
      output_string w.oc line;
      output_char w.oc '\n';
      flush w.oc)

let sync w =
  Mutex.lock w.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock w.lock)
    (fun () ->
      chaos_poke (`Sync w.path);
      flush w.oc;
      (* flush hands the bytes to the kernel; fsync pins them to the
         platter.  Called at checkpoint boundaries (campaign completion,
         daemon drain) — per-entry fsync would serialize the campaign on
         disk latency for durability nobody asked for *)
      try Unix.fsync (Unix.descr_of_out_channel w.oc)
      with Unix.Unix_error (_, _, _) -> ())

let close w = close_out w.oc

(* ------------------------------------------------------------------ *)
(* Reader                                                             *)
(* ------------------------------------------------------------------ *)

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec loop acc =
        match input_line ic with
        | line -> loop (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      loop [])

let read path : (header * entry list * int, string) result =
  match read_lines path with
  | exception Sys_error msg -> Error msg
  | [] -> Error "empty journal (no header line)"
  | first :: rest ->
    (match header_of_line first with
     | exception Bad msg -> Error (Printf.sprintf "bad journal header: %s" msg)
     | h ->
       let torn = ref 0 in
       let seen = Hashtbl.create 64 in
       let entries =
         List.filter_map
           (fun line ->
             if String.trim line = "" then None
             else
               match entry_of_line ~digest:h.digest line with
               | e ->
                 if
                   e.index < 0 || e.index >= h.total
                   || Hashtbl.mem seen e.index
                 then (incr torn; None)
                 else (Hashtbl.replace seen e.index (); Some e)
               | exception Bad _ -> incr torn; None)
           rest
       in
       Ok (h, entries, !torn))
