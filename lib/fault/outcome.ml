(* Fault-run classification, shared by {!Campaign} (which produces
   outcomes) and {!Journal} (which persists them).  A separate module
   only to break the dependency cycle; {!Campaign} re-exports the
   constructors, so [Campaign.Masked] keeps working everywhere. *)

open Csrtl_core

type t =
  | Masked
  | Detected of int * Phase.t * string
  | Corrupted of string list
  | Hung of string
  | Crashed of string

let agree a b =
  match a, b with
  | Masked, Masked -> true
  | Detected (s1, p1, n1), Detected (s2, p2, n2) ->
    s1 = s2 && Phase.equal p1 p2 && n1 = n2
  | Corrupted _, Corrupted _ -> true
  (* the interpreter cannot hang (fixed iteration count), so a kernel
     hang is intrinsically a disagreement unless the interpreter
     crashed trying *)
  | Hung _, Hung _ -> true
  | Crashed _, Crashed _ -> true
  | _, _ -> false

let pp ppf = function
  | Masked -> Format.pp_print_string ppf "masked"
  | Detected (s, p, n) ->
    Format.fprintf ppf "detected at (%d, %s) on %s" s (Phase.to_string p) n
  | Corrupted ds ->
    Format.fprintf ppf "silent corruption (%d differences)" (List.length ds)
  | Hung why -> Format.fprintf ppf "hung: %s" why
  | Crashed why -> Format.fprintf ppf "crashed: %s" why
