open Csrtl_core

type outcome =
  | Masked
  | Detected of int * Phase.t * string
  | Corrupted of string list
  | Hung of string
  | Crashed of string

type entry = {
  fault : Fault.t;
  kernel_outcome : outcome;
  interp_outcome : outcome;
  kernel_cycles : int;
  law_ok : bool;
}

type report = {
  model : string;
  total : int;
  masked : int;
  detected : int;
  corrupted : int;
  hung : int;
  crashed : int;
  disagreements : int;
  law_violations : int;
  coverage : float option;
  entries : entry list;
}

let outcomes_agree a b =
  match a, b with
  | Masked, Masked -> true
  | Detected (s1, p1, n1), Detected (s2, p2, n2) ->
    s1 = s2 && Phase.equal p1 p2 && n1 = n2
  | Corrupted _, Corrupted _ -> true
  (* the interpreter cannot hang (fixed iteration count), so a kernel
     hang is intrinsically a disagreement unless the interpreter
     crashed trying *)
  | Hung _, Hung _ -> true
  | Crashed _, Crashed _ -> true
  | _, _ -> false

(* A fault is detected iff it produces a conflict the golden run does
   not have; the first chronological new conflict is the diagnosis
   point.  Anything else that changes the observation is silent data
   corruption. *)
let classify ~golden (faulted : Observation.t) =
  let fresh =
    List.filter
      (fun c -> not (List.mem c golden.Observation.conflicts))
      faulted.Observation.conflicts
    (* several sinks can turn ILLEGAL in the same delta; the paths
       report them in different (but equivalent) orders, so the
       diagnosis point is the least (step, phase, sink) *)
    |> List.sort
         (fun (s1, p1, n1) (s2, p2, n2) ->
           compare
             (s1, Phase.to_int p1, n1)
             (s2, Phase.to_int p2, n2))
  in
  match fresh with
  | (s, p, n) :: _ -> Detected (s, p, n)
  | [] ->
    let strip o = { o with Observation.conflicts = [] } in
    (match Observation.diff (strip golden) (strip faulted) with
     | [] -> Masked
     | ds -> Corrupted ds)

let kernel_entry ~config ~golden m inj =
  (* campaigns always arm the watchdog: a fault that stalls the
     controller must classify as Hung, not hang the campaign *)
  let config = { config with Simulate.watchdog = true } in
  match Simulate.run_cfg ~inject:inj ~config m with
  | r ->
    (match r.Simulate.outcome with
     | Simulate.Watchdog_tripped c ->
       (Hung (Printf.sprintf "watchdog tripped after %d cycles" c),
        r.Simulate.cycles)
     | Simulate.Kernel_overflow ov ->
       (Hung (Format.asprintf "%a" Csrtl_kernel.Types.pp_delta_overflow ov),
        r.Simulate.cycles)
     | Simulate.Finished | Simulate.Halted _ ->
       (classify ~golden r.Simulate.obs, r.Simulate.cycles))
  | exception e -> (Crashed (Printexc.to_string e), 0)

let interp_entry ~golden m inj =
  match Interp.run ~inject:inj m with
  | o -> classify ~golden o
  | exception Interp.Unstable (step, phase, sink) ->
    (* the kernel path livelocks on the same fault and trips the
       watchdog: both paths classify as hung *)
    Hung
      (Printf.sprintf "no fixpoint at step %d phase %s on %s" step
         (Phase.to_string phase) sink)
  | exception e -> Crashed (Printexc.to_string e)

(* The campaign's goldens: the kernel side takes the phase-compiled
   fast path when the configuration stays on its schedule (fault runs
   themselves always need the kernel or the interpreter — injection is
   dynamic).  The differential suite pins Compiled = Simulate on the
   full observation, so classification is unchanged. *)
let golden_kernel ~config m =
  match Compiled.compilable ~config m with
  | Ok () -> Compiled.run (Compiled.of_model m)
  | Error _ ->
    (Simulate.run_cfg ~config:{ config with Simulate.watchdog = true } m)
      .Simulate.obs

let entry_of_fault ~config ~golden_k ~golden_i ~expected m fault =
  let inj = Fault.to_inject fault in
  let kernel_outcome, kernel_cycles =
    kernel_entry ~config ~golden:golden_k m inj
  in
  let interp_outcome = interp_entry ~golden:golden_i m inj in
  let law_ok =
    (* the delta-cycle law must keep holding when the fault is
       masked; the one-cycle slack covers the trailing
       driver-release edge an injection can add or remove *)
    match kernel_outcome with
    | Masked -> abs (kernel_cycles - expected) <= 1
    | _ -> true
  in
  { fault; kernel_outcome; interp_outcome; kernel_cycles; law_ok }

let summarize (m : Model.t) entries =
  let count p = List.length (List.filter p entries) in
  let masked = count (fun e -> e.kernel_outcome = Masked) in
  let detected =
    count (fun e -> match e.kernel_outcome with Detected _ -> true | _ -> false)
  in
  let corrupted =
    count (fun e ->
        match e.kernel_outcome with Corrupted _ -> true | _ -> false)
  in
  let hung =
    count (fun e -> match e.kernel_outcome with Hung _ -> true | _ -> false)
  in
  let crashed =
    count (fun e -> match e.kernel_outcome with Crashed _ -> true | _ -> false)
  in
  let total = List.length entries in
  let coverage =
    if total - masked = 0 then None
    else Some (float_of_int detected /. float_of_int (total - masked))
  in
  { model = m.Model.name; total; masked; detected; corrupted; hung; crashed;
    disagreements =
      count (fun e -> not (outcomes_agree e.kernel_outcome e.interp_outcome));
    law_violations = count (fun e -> not e.law_ok);
    coverage;
    entries }

let fault_list ?limit ?faults m =
  match faults with Some fs -> fs | None -> Fault.enumerate ?limit m

let run ?(config = Simulate.default) ?limit ?faults (m : Model.t) =
  let faults = fault_list ?limit ?faults m in
  let golden_k = golden_kernel ~config m in
  let golden_i = Interp.run m in
  let expected = Simulate.expected_cycles m in
  summarize m
    (List.map (entry_of_fault ~config ~golden_k ~golden_i ~expected m) faults)

let run_parallel ?pool ?jobs ?chunks ?(config = Simulate.default) ?limit
    ?faults (m : Model.t) =
  let faults = fault_list ?limit ?faults m in
  (* goldens computed once in the caller and shared read-only with
     every domain; each faulted run owns all its mutable state *)
  let golden_k = golden_kernel ~config m in
  let golden_i = Interp.run m in
  let expected = Simulate.expected_cycles m in
  let compute = entry_of_fault ~config ~golden_k ~golden_i ~expected m in
  let entries =
    match pool with
    | Some p -> Csrtl_par.Par.map ?chunks p compute faults
    | None ->
      let jobs =
        match jobs with
        | Some j -> j
        | None -> Csrtl_par.Par.default_jobs ()
      in
      Csrtl_par.Par.with_pool ~jobs (fun p ->
          Csrtl_par.Par.map ?chunks p compute faults)
  in
  summarize m entries

let pp_outcome ppf = function
  | Masked -> Format.pp_print_string ppf "masked"
  | Detected (s, p, n) ->
    Format.fprintf ppf "detected at (%d, %s) on %s" s (Phase.to_string p) n
  | Corrupted ds ->
    Format.fprintf ppf "silent corruption (%d differences)" (List.length ds)
  | Hung why -> Format.fprintf ppf "hung: %s" why
  | Crashed why -> Format.fprintf ppf "crashed: %s" why

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>%-50s kernel: %a | interp: %a%s@]"
    (Fault.to_string e.fault) pp_outcome e.kernel_outcome pp_outcome
    e.interp_outcome
    (if outcomes_agree e.kernel_outcome e.interp_outcome then ""
     else "  << DISAGREE")

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fault campaign: %s (%d faults)@ \
     masked %d | detected %d | corrupted %d | hung %d | crashed %d@ \
     coverage (detected / non-masked): %s@ \
     kernel/interp agreement: %d/%d@ \
     delta-cycle law on masked runs: %s@]"
    r.model r.total r.masked r.detected r.corrupted r.hung r.crashed
    (match r.coverage with
     | None -> "n/a (all faults masked)"
     | Some c -> Printf.sprintf "%.1f%%" (100. *. c))
    (r.total - r.disagreements)
    r.total
    (if r.law_violations = 0 then "held"
     else Printf.sprintf "%d violations" r.law_violations)
