open Csrtl_core

type outcome = Outcome.t =
  | Masked
  | Detected of int * Phase.t * string
  | Corrupted of string list
  | Hung of string
  | Crashed of string

type entry = {
  fault : Fault.t;
  kernel_outcome : outcome;
  interp_outcome : outcome;
  kernel_cycles : int;
  law_ok : bool;
}

type report = {
  model : string;
  total : int;
  masked : int;
  detected : int;
  corrupted : int;
  hung : int;
  crashed : int;
  disagreements : int;
  law_violations : int;
  coverage : float option;
  entries : entry list;
}

let outcomes_agree = Outcome.agree

(* A fault is detected iff it produces a conflict the golden run does
   not have; the first chronological new conflict is the diagnosis
   point.  Anything else that changes the observation is silent data
   corruption. *)
let classify ~golden (faulted : Observation.t) =
  let fresh =
    List.filter
      (fun c -> not (List.mem c golden.Observation.conflicts))
      faulted.Observation.conflicts
    (* several sinks can turn ILLEGAL in the same delta; the paths
       report them in different (but equivalent) orders, so the
       diagnosis point is the least (step, phase, sink) *)
    |> List.sort
         (fun (s1, p1, n1) (s2, p2, n2) ->
           compare
             (s1, Phase.to_int p1, n1)
             (s2, Phase.to_int p2, n2))
  in
  match fresh with
  | (s, p, n) :: _ -> Detected (s, p, n)
  | [] ->
    let strip o = { o with Observation.conflicts = [] } in
    (match Observation.diff (strip golden) (strip faulted) with
     | [] -> Masked
     | ds -> Corrupted ds)

(* Shared read-only state for every fault run of one campaign: the
   goldens, the one compile of the golden schedule (the batch plan),
   plus golden checkpoints at each boundary some fault wants to resume
   from.  Computed once in the caller, read concurrently by the pool
   domains. *)
type ctx = {
  m : Model.t;
  config : Simulate.config;
  golden_k : Observation.t;
  golden_i : Observation.t;
  checkpoints : (int, Snapshot.t) Hashtbl.t;
  budget : float option;
  plan : Batch.plan option;
      (* None only when the model does not validate or compile — and
         then no fault is batchable either, so it is never consulted *)
  est_us : float;
      (* measured wall cost of one golden run, the campaign's proxy
         for per-fault cost.  Feeds only the chunk-count heuristic —
         never report bytes, which stay wall-clock-independent. *)
}

let boundary_of_fault (m : Model.t) f =
  min (Fault.first_step m f - 1) m.Model.cs_max

(* One compile of the clean schedule serves the whole campaign: the
   lockstep batches overlay it per fault, and the golden run and the
   checkpoint snapshots execute it through {!Compiled.of_sched} — the
   per-worker golden recompiles this used to pay are gone.  A caller
   holding a plan-cache hit passes it in and skips even the one. *)
let make_plan ?plan m =
  match plan with
  | Some _ as p -> p
  | None -> ( match Batch.plan m with p -> Some p | exception _ -> None)

let compiled_of ~config ~plan m =
  match Compiled.compilable ~config m with
  | Error _ -> None
  | Ok () ->
    Some
      (match plan with
       | Some p -> Compiled.of_sched (Batch.base_sched p)
       | None -> Compiled.of_model m)

let golden_snapshots ~compiled m boundaries =
  match compiled with
  | Some cp -> Compiled.snapshots_at cp ~steps:boundaries
  | None -> Interp.snapshots_at ~steps:boundaries m

let boundaries_of ~faults m =
  List.sort_uniq compare
    (List.filter_map
       (fun f ->
         let b = boundary_of_fault m f in
         if b >= 1 then Some b else None)
       faults)

let prepare ?(config = Simulate.default) ?plan (m : Model.t) =
  let plan = make_plan ?plan m in
  let compiled = compiled_of ~config ~plan m in
  let t0 = Unix.gettimeofday () in
  let golden_k =
    match compiled with
    | Some cp -> Compiled.run cp
    | None ->
      (Simulate.run_cfg ~config:{ config with Simulate.watchdog = true } m)
        .Simulate.obs
  in
  let est_us = (Unix.gettimeofday () -. t0) *. 1e6 in
  let golden_i = Interp.run m in
  let checkpoints =
    (* every boundary any enumerated fault can restore from — a
       superset of what any limited or resumed campaign needs, so one
       artifact serves them all.  Per-fault lookups are keyed by the
       fault's own boundary, so extra checkpoints never change which
       snapshot a given fault restores from. *)
    if config.Simulate.on_illegal = Simulate.Record then
      match boundaries_of ~faults:(Fault.enumerate m) m with
      | [] -> []
      | bs -> golden_snapshots ~compiled m bs
    else []
  in
  { Artifact.digest = Snapshot.digest_of_model m;
    config = Journal.config_tag config;
    golden_k; golden_i; checkpoints; est_us }

let make_ctx ~config ?budget ?plan:plan0 ?golden ~restore ~faults
    (m : Model.t) =
  let plan = make_plan ?plan:plan0 m in
  match golden with
  | Some (a : Artifact.t) ->
    if
      a.Artifact.digest <> Snapshot.digest_of_model m
      || a.Artifact.config <> Journal.config_tag config
    then
      invalid_arg
        (Printf.sprintf
           "Campaign: golden artifact (digest %s, config %s) does not match \
            this campaign"
           a.Artifact.digest a.Artifact.config);
    let checkpoints = Hashtbl.create 16 in
    (if restore && config.Simulate.on_illegal = Simulate.Record then begin
       List.iter
         (fun (s : Snapshot.t) ->
           Hashtbl.replace checkpoints s.Snapshot.step s)
         a.Artifact.checkpoints;
       (* a caller-supplied fault list can want a boundary the
          enumerate-derived artifact never took; compute exactly those,
          so a warm campaign restores from the same boundaries a cold
          one would — same joins, same cycle counts, same bytes *)
       let missing =
         List.filter
           (fun b -> not (Hashtbl.mem checkpoints b))
           (boundaries_of ~faults m)
       in
       if missing <> [] then
         let compiled = compiled_of ~config ~plan m in
         List.iter
           (fun (s : Snapshot.t) ->
             Hashtbl.replace checkpoints s.Snapshot.step s)
           (golden_snapshots ~compiled m missing)
     end);
    { m; config; golden_k = a.Artifact.golden_k;
      golden_i = a.Artifact.golden_i; checkpoints; budget; plan;
      est_us = a.Artifact.est_us }
  | None ->
    let compiled = compiled_of ~config ~plan m in
    let t0 = Unix.gettimeofday () in
    let golden_k =
      (* the kernel-side golden takes the phase-compiled fast path when
         the configuration stays on its schedule (fault runs themselves
         always need the kernel or the interpreter — injection is
         dynamic).  The differential suite pins Compiled = Simulate on
         the full observation, so classification is unchanged. *)
      match compiled with
      | Some cp -> Compiled.run cp
      | None ->
        (Simulate.run_cfg ~config:{ config with Simulate.watchdog = true } m)
          .Simulate.obs
    in
    let est_us = (Unix.gettimeofday () -. t0) *. 1e6 in
    let golden_i = Interp.run m in
    let checkpoints = Hashtbl.create 16 in
    (* Checkpoints are only sound when the golden kernel state equals
       the interpreter state at every boundary — true under [Record]
       (the differential suite pins it); [Halt]/[Degrade] goldens
       diverge, so those campaigns re-simulate from step 0. *)
    (if restore && config.Simulate.on_illegal = Simulate.Record then
       match boundaries_of ~faults m with
       | [] -> ()
       | boundaries ->
         List.iter
           (fun (s : Snapshot.t) ->
             Hashtbl.replace checkpoints s.Snapshot.step s)
           (golden_snapshots ~compiled m boundaries));
    { m; config; golden_k; golden_i; checkpoints; budget; plan; est_us }

let kernel_entry ~ctx ~snap inj =
  (* campaigns always arm the watchdog: a fault that stalls the
     controller must classify as Hung, not hang the campaign *)
  let config = { ctx.config with Simulate.watchdog = true } in
  let full_expected = Simulate.expected_cycles ctx.m in
  let run () =
    match snap with
    | Some from ->
      ( Simulate.resume ~inject:inj ~config ~from ctx.m,
        Simulate.expected_cycles_from ctx.m from.Snapshot.step )
    | None -> (Simulate.run_cfg ~inject:inj ~config ctx.m, full_expected)
  in
  match run () with
  | r, expected ->
    (match r.Simulate.outcome with
     | Simulate.Watchdog_tripped c ->
       (Hung (Printf.sprintf "watchdog tripped after %d cycles" c),
        r.Simulate.cycles, expected)
     | Simulate.Kernel_overflow ov ->
       (Hung (Format.asprintf "%a" Csrtl_kernel.Types.pp_delta_overflow ov),
        r.Simulate.cycles, expected)
     | Simulate.Finished | Simulate.Halted _ ->
       (classify ~golden:ctx.golden_k r.Simulate.obs, r.Simulate.cycles,
        expected))
  | exception e -> (Crashed (Printexc.to_string e), 0, full_expected)

let interp_entry ~ctx ~snap inj =
  let run () =
    match snap with
    | Some from -> Interp.resume ~inject:inj ~from ctx.m
    | None -> Interp.run ~inject:inj ctx.m
  in
  match run () with
  | o -> classify ~golden:ctx.golden_i o
  | exception Interp.Unstable (step, phase, sink) ->
    (* the kernel path livelocks on the same fault and trips the
       watchdog: both paths classify as hung *)
    Hung
      (Printf.sprintf "no fixpoint at step %d phase %s on %s" step
         (Phase.to_string phase) sink)
  | exception e -> Crashed (Printexc.to_string e)

let entry_of_fault ~ctx fault =
  let inj = Fault.to_inject fault in
  let snap =
    (* resume both engines from the latest golden checkpoint strictly
       before the fault can first act ({!Fault.first_step} is a sound
       lower bound), skipping the steps the fault provably cannot
       touch *)
    let b = boundary_of_fault ctx.m fault in
    if b < 1 then None else Hashtbl.find_opt ctx.checkpoints b
  in
  let kernel_outcome, kernel_cycles, expected = kernel_entry ~ctx ~snap inj in
  let interp_outcome = interp_entry ~ctx ~snap inj in
  let law_ok =
    (* the delta-cycle law must keep holding when the fault is
       masked; the one-cycle slack covers the trailing
       driver-release edge an injection can add or remove *)
    match kernel_outcome with
    | Masked -> abs (kernel_cycles - expected) <= 1
    | _ -> true
  in
  { fault; kernel_outcome; interp_outcome; kernel_cycles; law_ok }

(* One fault run under supervision: a raise is retried once and then
   classified as Crashed, a budget overrun as Hung — the campaign and
   the pool keep going either way.  [entry_of_fault] already fences
   per-engine exceptions, so the supervisor only sees failures of the
   harness itself (e.g. [Out_of_memory]). *)
let supervised_entry ~ctx fault =
  match
    Csrtl_par.Par.run_supervised ?budget:ctx.budget ~retries:1 (fun () ->
        entry_of_fault ~ctx fault)
  with
  | Csrtl_par.Par.Done e -> e
  | Csrtl_par.Par.Crashed { error; _ } ->
    { fault; kernel_outcome = Crashed error; interp_outcome = Crashed error;
      kernel_cycles = 0; law_ok = true }
  | Csrtl_par.Par.Over_budget { budget; _ } ->
    let why = Printf.sprintf "work budget of %gs exceeded" budget in
    { fault; kernel_outcome = Hung why; interp_outcome = Hung why;
      kernel_cycles = 0; law_ok = true }

(* ---- the batched fast path ------------------------------------- *)

type engine = [ `Auto | `Kernel | `Compiled ]

type batch_stats = {
  batched : int;
  kernel_path : int;
  retired_early : int;
}

let no_stats = { batched = 0; kernel_path = 0; retired_early = 0 }

let add_stats a b =
  { batched = a.batched + b.batched;
    kernel_path = a.kernel_path + b.kernel_path;
    retired_early = a.retired_early + b.retired_early }

(* A fault rides the batched executor when its injection has a static
   schedule under this campaign's config — the same gate the golden
   takes, evaluated per overlay. *)
let batchable ~ctx f =
  Compiled.compilable ~inject:(Fault.to_inject f) ~config:ctx.config ctx.m
  = Ok ()

(* The variant spec mirrors the kernel path decision for the same
   fault: join at the checkpoint boundary exactly when [kernel_entry]
   would restore a snapshot there, else run from reset. *)
let batch_spec ~ctx f =
  let b = boundary_of_fault ctx.m f in
  let join = if b >= 1 && Hashtbl.mem ctx.checkpoints b then b else 0 in
  { Batch.inject = Fault.to_inject f; join; settle = Fault.last_step ctx.m f }

(* Entry from a batched verdict, byte-compatible with what
   [entry_of_fault] computes for the same fault: a retired variant's
   observation provably equals the golden one, so both engines
   classify it masked without materializing it; a finished variant's
   observation classifies against each engine's own golden (the
   differential suite pins the batched observation against both
   engines).  The cycle count is the law's prediction — which the
   suite pins against the cycles the kernel actually runs. *)
let entry_of_verdict ~ctx fault (spec : Batch.variant_spec)
    (r : Batch.result) =
  let kernel_outcome, interp_outcome =
    match r.Batch.verdict with
    | Batch.Converged _ -> (Masked, Masked)
    | Batch.Finished obs ->
      (classify ~golden:ctx.golden_k obs, classify ~golden:ctx.golden_i obs)
  in
  let law_ok =
    match kernel_outcome with
    | Masked ->
      let expected = Simulate.expected_cycles_from ctx.m spec.Batch.join in
      abs (r.Batch.cycles - expected) <= 1
    | _ -> true
  in
  { fault; kernel_outcome; interp_outcome; kernel_cycles = r.Batch.cycles;
    law_ok }

(* One unit of campaign work: a lockstep batch of compilable faults,
   or a single fault on the kernel path. *)
type work =
  | Chunk of (int * Fault.t) list
  | Single of (int * Fault.t)

let plan_work ~ctx ~engine ~batch indexed =
  if batch < 1 then
    invalid_arg (Printf.sprintf "Campaign: batch size %d < 1" batch);
  let work =
    match engine with
    | `Kernel -> List.map (fun x -> Single x) indexed
    | `Auto | `Compiled ->
      let fast, slow = List.partition (fun (_, f) -> batchable ~ctx f) indexed in
      let rec chunk acc = function
        | [] -> List.rev acc
        | l ->
          let rec take n = function
            | x :: rest when n > 0 ->
              let t, d = take (n - 1) rest in
              (x :: t, d)
            | rest -> ([], rest)
          in
          let c, rest = take batch l in
          chunk (Chunk c :: acc) rest
      in
      chunk [] fast @ List.map (fun x -> Single x) slow
  in
  (* keep work in fault order by first index, so sequential runs and
     journals visit faults in a predictable order *)
  let first = function
    | Chunk ((i, _) :: _) -> i
    | Chunk [] -> max_int
    | Single (i, _) -> i
  in
  List.sort (fun a b -> compare (first a) (first b)) work

(* A batch that crashes or overruns the budget falls back to the
   per-fault kernel path, whose entries the batched ones are
   byte-compatible with — so pathological chunks degrade to exactly
   the unbatched campaign. *)
let compute_work ~ctx ~on_entry = function
  | Single (i, f) ->
    let e = supervised_entry ~ctx f in
    on_entry i e;
    ([ (i, e) ], { no_stats with kernel_path = 1 })
  | Chunk ifs ->
    let specs = List.map (fun (_, f) -> batch_spec ~ctx f) ifs in
    (match
       Csrtl_par.Par.run_supervised ?budget:ctx.budget ~retries:1 (fun () ->
           (* the shared plan: chunk N + 1 reuses chunk N's compile and
              this domain's arena instead of recompiling the model *)
           match ctx.plan with
           | Some p -> Batch.run_with p specs
           | None -> Batch.run ctx.m specs)
     with
     | Csrtl_par.Par.Done results ->
       let entries =
         List.map2
           (fun (i, f) (spec, r) -> (i, entry_of_verdict ~ctx f spec r))
           ifs (List.combine specs results)
       in
       List.iter (fun (i, e) -> on_entry i e) entries;
       let retired =
         List.length
           (List.filter
              (fun (r : Batch.result) ->
                match r.Batch.verdict with
                | Batch.Converged _ -> true
                | Batch.Finished _ -> false)
              results)
       in
       ( entries,
         { no_stats with batched = List.length ifs; retired_early = retired } )
     | Csrtl_par.Par.Crashed _ | Csrtl_par.Par.Over_budget _ ->
       let entries =
         List.map
           (fun (i, f) ->
             let e = supervised_entry ~ctx f in
             on_entry i e;
             (i, e))
           ifs
       in
       (entries, { no_stats with kernel_path = List.length ifs }))

let summarize (m : Model.t) entries =
  let count p = List.length (List.filter p entries) in
  let masked = count (fun e -> e.kernel_outcome = Masked) in
  let detected =
    count (fun e -> match e.kernel_outcome with Detected _ -> true | _ -> false)
  in
  let corrupted =
    count (fun e ->
        match e.kernel_outcome with Corrupted _ -> true | _ -> false)
  in
  let hung =
    count (fun e -> match e.kernel_outcome with Hung _ -> true | _ -> false)
  in
  let crashed =
    count (fun e -> match e.kernel_outcome with Crashed _ -> true | _ -> false)
  in
  let total = List.length entries in
  let coverage =
    if total - masked = 0 then None
    else Some (float_of_int detected /. float_of_int (total - masked))
  in
  { model = m.Model.name; total; masked; detected; corrupted; hung; crashed;
    disagreements =
      count (fun e -> not (outcomes_agree e.kernel_outcome e.interp_outcome));
    law_violations = count (fun e -> not e.law_ok);
    coverage;
    entries }

let fault_list ?limit ?faults m =
  match faults with Some fs -> fs | None -> Fault.enumerate ?limit m

(* A fault run allocates freely (observations, diffs, entries), so
   campaign-owned pools give each worker a roomy nursery: fewer minor
   collections means fewer of OCaml 5's global stop-the-world barriers
   across the pool.  2^20 words = 8 MiB per domain. *)
let campaign_minor_heap_words = 1 lsl 20

let map_faults ?pool ?jobs ?chunks ~est_us compute work =
  (* when the caller did not fix a chunk count, plan one from the
     measured golden cost: a work item is one fault or one batched
     chunk, both within a small factor of a golden run's wall time.
     The chunk count only shapes scheduling — results are chunk-count
     invariant (the pool's contract), so feeding it a measurement
     keeps reports deterministic. *)
  let planned p =
    match chunks with
    | Some _ -> chunks
    | None ->
      Some
        (Csrtl_par.Par.plan_chunks ~jobs:(Csrtl_par.Par.jobs p)
           ~items:(List.length work)
           ~item_cost_us:(est_us *. 2.))
  in
  match pool with
  | Some p -> Csrtl_par.Par.map ?chunks:(planned p) p compute work
  | None ->
    let jobs =
      match jobs with
      | Some j -> j
      | None -> Csrtl_par.Par.default_jobs ()
    in
    Csrtl_par.Par.with_pool ~minor_heap_words:campaign_minor_heap_words ~jobs
      (fun p -> Csrtl_par.Par.map ?chunks:(planned p) p compute work)

(* Shard the planned work across the pool (or run it inline), then
   reassemble entries in fault order — the report is independent of
   jobs, chunking and batch size.  [should_stop] is polled before each
   work item: once it answers true, remaining items are skipped (their
   faults simply produce no entry), which is how a daemon drains an
   in-flight campaign to its journal checkpoint without killing the
   pool.  Completed items are never discarded, so a drained campaign
   plus its resumption is byte-identical to an uninterrupted one. *)
let compute_all ?pool ?jobs ?chunks ?(should_stop = fun () -> false) ~par
    ~ctx ~engine ~batch ~on_entry indexed =
  let work = plan_work ~ctx ~engine ~batch indexed in
  let compute w =
    if should_stop () then ([], no_stats) else compute_work ~ctx ~on_entry w
  in
  let results =
    if par then map_faults ?pool ?jobs ?chunks ~est_us:ctx.est_us compute work
    else List.map compute work
  in
  let entries =
    List.sort
      (fun (i, _) (j, _) -> compare (i : int) j)
      (List.concat_map fst results)
  in
  (entries, List.fold_left (fun a (_, s) -> add_stats a s) no_stats results)

let run ?(config = Simulate.default) ?limit ?faults ?budget ?(restore = true)
    ?(engine : engine = `Auto) ?(batch = 32) ?plan ?golden (m : Model.t) =
  let faults = fault_list ?limit ?faults m in
  let ctx = make_ctx ~config ?budget ?plan ?golden ~restore ~faults m in
  let entries, _ =
    compute_all ~par:false ~ctx ~engine ~batch
      ~on_entry:(fun _ _ -> ())
      (List.mapi (fun i f -> (i, f)) faults)
  in
  summarize m (List.map snd entries)

let run_with_stats ?pool ?jobs ?chunks ?(config = Simulate.default) ?limit
    ?faults ?budget ?(restore = true) ?(engine : engine = `Auto)
    ?(batch = 32) ?plan ?golden (m : Model.t) =
  let faults = fault_list ?limit ?faults m in
  (* goldens and checkpoints computed once in the caller and shared
     read-only with every domain; each faulted run owns all its
     mutable state *)
  let ctx = make_ctx ~config ?budget ?plan ?golden ~restore ~faults m in
  let entries, stats =
    compute_all ?pool ?jobs ?chunks ~par:true ~ctx ~engine ~batch
      ~on_entry:(fun _ _ -> ())
      (List.mapi (fun i f -> (i, f)) faults)
  in
  (summarize m (List.map snd entries), stats)

let run_parallel ?pool ?jobs ?chunks ?config ?limit ?faults ?budget ?restore
    ?engine ?batch ?plan ?golden (m : Model.t) =
  fst
    (run_with_stats ?pool ?jobs ?chunks ?config ?limit ?faults ?budget
       ?restore ?engine ?batch ?plan ?golden m)

type resume_info = { reused : int; rerun : int; torn : int; remaining : int }

let run_journaled ?pool ?jobs ?chunks ?(config = Simulate.default) ?digest
    ?limit ?faults ?budget ?(restore = true) ?(engine : engine = `Auto)
    ?(batch = 32) ?plan ?golden ?should_stop ?on_entry:user_on_entry ~journal
    ~resume (m : Model.t) =
  let faults = fault_list ?limit ?faults m in
  let labels = List.map Fault.to_string faults in
  let total = List.length faults in
  let header =
    { Journal.model = m.Model.name;
      digest =
        (match digest with
         | Some d -> d
         | None -> Snapshot.digest_of_model m);
      config = Journal.config_tag config;
      total;
      faults_digest = Journal.faults_digest labels }
  in
  let fault_arr = Array.of_list faults in
  let label_arr = Array.of_list labels in
  let reuse =
    if not resume then Ok ([], 0)
    else
      match Journal.read journal with
      | Error msg ->
        Error (Printf.sprintf "cannot resume from %s: %s" journal msg)
      | Ok (h, entries, torn) ->
        if h <> header then
          Error
            (Printf.sprintf
               "journal %s was written for a different campaign: it records \
                model %s, %d faults, config %s, but this run is model %s, %d \
                faults, config %s"
               journal h.Journal.model h.Journal.total h.Journal.config
               header.Journal.model header.Journal.total header.Journal.config)
        else
          (* an entry whose label disagrees with the fault at its
             index is as untrustworthy as a torn line *)
          let good, bad =
            List.partition
              (fun (e : Journal.entry) ->
                e.Journal.fault_label = label_arr.(e.Journal.index))
              entries
          in
          Ok (good, torn + List.length bad)
  in
  match reuse with
  | Error _ as e -> e
  | Ok (reused_entries, torn) ->
    let done_tbl = Hashtbl.create 64 in
    List.iter
      (fun (e : Journal.entry) -> Hashtbl.replace done_tbl e.Journal.index e)
      reused_entries;
    let todo =
      List.filter
        (fun i -> not (Hashtbl.mem done_tbl i))
        (List.init total Fun.id)
    in
    let w =
      if resume then Journal.reopen journal header
      else Journal.start journal header
    in
    Fun.protect ~finally:(fun () -> Journal.close w) @@ fun () ->
    let ctx =
      (* checkpoints only for the faults actually re-run *)
      make_ctx ~config ?budget ?plan ?golden ~restore
        ~faults:(List.map (fun i -> fault_arr.(i)) todo)
        m
    in
    (* every finished fault is journaled before its work item returns
       — batched chunks append their entries as a group, so a crash
       loses at most the chunk in flight.  The user callback (a daemon
       streaming entries to its client) fires after the journal write:
       a streamed entry is always recoverable from disk *)
    let on_entry i (e : entry) =
      Journal.append w
        { Journal.index = i; fault_label = label_arr.(i);
          kernel = e.kernel_outcome; interp = e.interp_outcome;
          cycles = e.kernel_cycles; law_ok = e.law_ok };
      match user_on_entry with None -> () | Some f -> f i e
    in
    let computed, _ =
      compute_all ?pool ?jobs ?chunks ?should_stop ~par:true ~ctx ~engine
        ~batch ~on_entry
        (List.map (fun i -> (i, fault_arr.(i))) todo)
    in
    (* a wholesale replay appends nothing — there is nothing new to
       pin, so skip the fsync instead of paying disk latency per
       re-render of a completed campaign *)
    if todo <> [] then Journal.sync w;
    let computed_tbl = Hashtbl.create 64 in
    List.iter
      (fun (i, e) -> Hashtbl.replace computed_tbl i e)
      computed;
    (* a drained run leaves faults with neither a reused nor a computed
       entry; they are simply absent from the (partial) report and
       counted in [remaining] *)
    let entries =
      List.filter_map
        (fun i ->
          match Hashtbl.find_opt computed_tbl i with
          | Some e -> Some e
          | None ->
            (match Hashtbl.find_opt done_tbl i with
             | Some je ->
               Some
                 { fault = fault_arr.(i);
                   kernel_outcome = je.Journal.kernel;
                   interp_outcome = je.Journal.interp;
                   kernel_cycles = je.Journal.cycles;
                   law_ok = je.Journal.law_ok }
             | None -> None))
        (List.init total Fun.id)
    in
    let rerun = List.length computed in
    Ok
      ( summarize m entries,
        { reused = List.length reused_entries; rerun; torn;
          remaining = total - List.length reused_entries - rerun } )

let pp_outcome = Outcome.pp

let pp_entry ppf e =
  Format.fprintf ppf "@[<h>%-50s kernel: %a | interp: %a%s@]"
    (Fault.to_string e.fault) pp_outcome e.kernel_outcome pp_outcome
    e.interp_outcome
    (if outcomes_agree e.kernel_outcome e.interp_outcome then ""
     else "  << DISAGREE")

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>fault campaign: %s (%d faults)@ \
     masked %d | detected %d | corrupted %d | hung %d | crashed %d@ \
     coverage (detected / non-masked): %s@ \
     kernel/interp agreement: %d/%d@ \
     delta-cycle law on masked runs: %s@]"
    r.model r.total r.masked r.detected r.corrupted r.hung r.crashed
    (match r.coverage with
     | None -> "n/a (all faults masked)"
     | Some c -> Printf.sprintf "%.1f%%" (100. *. c))
    (r.total - r.disagreements)
    r.total
    (if r.law_violations = 0 then "held"
     else Printf.sprintf "%d violations" r.law_violations)
