(** Fault taxonomy over clock-free models.

    A fault names a single structural corruption of a model's
    realization — not of the model text — and compiles to an
    {!Csrtl_core.Inject.t} plan that both execution paths apply
    identically (kernel: wrapped resolutions and saboteur processes;
    interpreter: tampered phase flips). *)

open Csrtl_core

type t =
  | Stuck_sink of { sink : string; value : Word.t }
      (** every resolution of the sink yields [value]; [sink] is a bus
          or a register output ([R.out]).  Stuck-at-ILLEGAL models a
          permanently conflicting net, stuck-at-DISC a net whose
          drivers never connect. *)
  | Dropped_leg of { index : int; desc : string }
      (** the [index]-th transfer leg of {!Model.all_legs} is never
          instantiated: an open switch in the interconnect *)
  | Extra_driver of { sink : string; step : int; phase : Phase.t; value : Word.t }
      (** a spurious driver contributes [value] to [sink] during
          (step, phase), releasing one phase later — a short between
          control lines *)
  | Fu_latency of { fu : string; latency : int }
      (** the unit's pipeline depth differs from what the schedule was
          validated against *)
  | Transient of { sink : string; step : int; phase : Phase.t; value : Word.t }
      (** a single-(step, phase) corruption of one resolution — an SEU
          at an exact visibility slot *)
  | Oscillator of { sink : string; step : int; phase : Phase.t }
      (** from (step, phase) on, a metastable driver toggles [sink]
          every delta cycle and never settles.  The kernel path
          livelocks (watchdog trip); the interpreter proves the
          missing fixpoint ({!Interp.Unstable}); a campaign classifies
          both as [Hung].  Not part of {!enumerate} — single-fault
          lists stay settle-able; inject it explicitly via
          [Campaign.run ~faults]. *)

val enumerate : ?limit:int -> Model.t -> t list
(** Deterministic single-fault list for a model: three stuck values
    per bus and per register output, every dropped leg, an extra
    driver on an active and on an idle slot per bus, latency [±1] per
    unit, and an ILLEGAL plus a value transient at the first write
    slot of each bus.  [limit] stride-subsamples the list (order
    preserved) for large models. *)

val subsample : int -> t list -> t list
(** The deterministic stride-subsample [enumerate ~limit] applies:
    [subsample n (enumerate m)] = [enumerate ~limit:n m].  Exposed so
    a cached full enumeration (the daemon's plan tier) can be limited
    without re-walking the model.  Raises [Invalid_argument] when
    [n < 1], exactly as [enumerate ~limit] does. *)

val to_inject : t -> Inject.t

val first_step : Model.t -> t -> int
(** Earliest control step at which the fault can make the faulted run
    diverge from the golden one — a {e sound lower bound}, never an
    exact answer.  A campaign may therefore restore a golden
    checkpoint of any boundary strictly below it instead of
    re-simulating from step 0; [first_step m f - 1] is the latest such
    boundary.  Returns [cs_max + 1] when the fault can never act
    (e.g. a stuck bus that nothing writes). *)

val last_step : Model.t -> t -> int
(** Last control step in which the fault's mechanism can still act —
    a {e sound upper bound}, the dual of {!first_step}.  Past this
    boundary the faulted realization has the golden transition
    function again, so a batched lockstep run ({!Csrtl_core.Batch})
    whose state row has re-converged with the golden row may retire
    the variant early.  Point faults (a transient, an extra driver, a
    dropped leg) end at their slot's step; faults that rewrite the
    realization permanently (stuck sinks, latency overrides,
    oscillators) return [cs_max] — they are never retired early. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
