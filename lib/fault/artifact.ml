open Csrtl_core

(* The cacheable result of a campaign's golden work: both engines'
   clean observations, the golden checkpoints at every control-step
   boundary some enumerated fault can resume from, and the measured
   golden wall cost that feeds chunk planning.  Content-addressed by
   (model digest, config tag): the digest covers the model text, so a
   changed model can never reuse a stale artifact.

   The plan (compiled Sched + Batch closures) is deliberately absent:
   it holds closures and hash tables and is cheap to rebuild from the
   model, whereas the golden simulations are the expensive part.  A
   warm campaign rebuilds the plan and skips the simulations. *)

type t = {
  digest : string;
  config : string;
  golden_k : Observation.t;
  golden_i : Observation.t;
  checkpoints : Snapshot.t list;
  est_us : float;
}

(* ---- validation ------------------------------------------------- *)

let matches ~digest ~config_tag a =
  a.digest = digest && a.config = config_tag

let validate (m : Model.t) ~config a =
  let err fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let digest = Snapshot.digest_of_model m in
  let tag = Journal.config_tag config in
  if a.digest <> digest then
    err "artifact digest %s does not match the model (%s)" a.digest digest
  else if a.config <> tag then
    err "artifact was built for config %s, not %s" a.config tag
  else if a.golden_k.Observation.model_name <> m.Model.name then
    err "artifact golden is of model %s, not %s"
      a.golden_k.Observation.model_name m.Model.name
  else if a.golden_i.Observation.model_name <> m.Model.name then
    err "artifact interpreter golden is of model %s, not %s"
      a.golden_i.Observation.model_name m.Model.name
  else
    let rec steps_ok prev = function
      | [] -> Ok ()
      | (s : Snapshot.t) :: rest ->
        if s.Snapshot.step <= prev then
          err "artifact checkpoints out of order at step %d" s.Snapshot.step
        else (
          match Snapshot.validate m s with
          | Error msg -> err "artifact checkpoint: %s" msg
          | Ok () -> steps_ok s.Snapshot.step rest)
    in
    steps_ok 0 a.checkpoints

(* ---- serialization ----------------------------------------------
   One versioned text format in {!Snapshot}'s line discipline.  The
   golden observations and checkpoints are embedded verbatim between
   section markers, so their own [end] lines never terminate the
   artifact — only the top-level [end] does. *)

let magic = "csrtl-artifact 1"

let to_string a =
  let b = Buffer.create 1024 in
  let line s =
    Buffer.add_string b s;
    Buffer.add_char b '\n'
  in
  line magic;
  line ("digest " ^ a.digest);
  line ("config " ^ a.config);
  line (Printf.sprintf "est_us %h" a.est_us);
  line "golden-kernel";
  Buffer.add_string b (Observation.to_string a.golden_k);
  line "golden-kernel-end";
  line "golden-interp";
  Buffer.add_string b (Observation.to_string a.golden_i);
  line "golden-interp-end";
  List.iter
    (fun s ->
      line "checkpoint";
      Buffer.add_string b (Snapshot.to_string s);
      line "checkpoint-end")
    a.checkpoints;
  line "end";
  Buffer.contents b

exception Bad of string

let of_string text =
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let section_text ls = String.concat "\n" (List.rev ls) ^ "\n" in
  try
    match lines with
    | m :: rest when String.trim m = magic ->
      let digest = ref "" and config = ref "" and est_us = ref 0. in
      let golden_k = ref None and golden_i = ref None in
      let checkpoints = ref [] in
      let seen_end = ref false in
      (* [section] is [Some (end_marker, deposit, accumulated)] while
         inside an embedded block; its lines are collected verbatim *)
      let section = ref None in
      List.iter
        (fun l ->
          match !section with
          | Some (marker, deposit, acc) ->
            if String.trim l = marker then begin
              deposit (section_text acc);
              section := None
            end
            else section := Some (marker, deposit, l :: acc)
          | None ->
            if !seen_end then bad "content after end marker";
            let fields =
              String.split_on_char ' ' l |> List.filter (fun t -> t <> "")
            in
            (match fields with
             | [ "digest"; d ] -> digest := d
             | [ "config"; c ] -> config := c
             | [ "est_us"; f ] ->
               (match float_of_string_opt f with
                | Some v when v >= 0. -> est_us := v
                | Some _ | None -> bad "bad est_us %S" f)
             | [ "golden-kernel" ] ->
               section :=
                 Some
                   ( "golden-kernel-end",
                     (fun t ->
                       match Observation.of_string t with
                       | Ok o -> golden_k := Some o
                       | Error msg -> bad "kernel golden: %s" msg),
                     [] )
             | [ "golden-interp" ] ->
               section :=
                 Some
                   ( "golden-interp-end",
                     (fun t ->
                       match Observation.of_string t with
                       | Ok o -> golden_i := Some o
                       | Error msg -> bad "interpreter golden: %s" msg),
                     [] )
             | [ "checkpoint" ] ->
               section :=
                 Some
                   ( "checkpoint-end",
                     (fun t ->
                       match Snapshot.of_string t with
                       | Ok s -> checkpoints := s :: !checkpoints
                       | Error msg -> bad "checkpoint: %s" msg),
                     [] )
             | [ "end" ] -> seen_end := true
             | _ -> bad "unrecognized line %S" l))
        rest;
      if !section <> None then bad "truncated artifact (unterminated section)";
      if not !seen_end then bad "truncated artifact (no end marker)";
      if !digest = "" then bad "missing digest line";
      if !config = "" then bad "missing config line";
      (match (!golden_k, !golden_i) with
       | Some golden_k, Some golden_i ->
         Ok
           {
             digest = !digest;
             config = !config;
             golden_k;
             golden_i;
             checkpoints = List.rev !checkpoints;
             est_us = !est_us;
           }
       | None, _ -> bad "missing kernel golden"
       | _, None -> bad "missing interpreter golden")
    | _ -> Error "not a csrtl artifact (bad magic line)"
  with Bad msg -> Error msg

let save path a =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () -> output_string oc (to_string a));
  (* rename is atomic on POSIX: a concurrent reader sees the old bytes
     or the new, never a torn file *)
  Sys.rename tmp path

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> of_string text
