(** Crash-durable campaign journal (JSONL).

    A campaign appends one line per finished fault and flushes
    immediately, so a killed run loses at most the line being written.
    The header line pins the campaign identity (model name, model
    digest, kernel-config tag, fault count, digest of the fault
    labels); each entry line carries an md5 integrity hash over the
    model digest and the entry body.  {!read} treats any line that
    fails to parse, fails its hash, is out of range, or duplicates an
    index as {e torn}: reported by count and re-run on resume, never
    folded into a report. *)

open Csrtl_core

(** The JSON subset the journal speaks (objects, arrays, strings,
    integers, booleans) — there is no JSON library in the toolchain, so
    this generator/parser pair is shared with the serve daemon's wire
    frames.  {!Json.parse} is total modulo {!Json.Bad}: malformed
    input, over-deep nesting, and non-ASCII escapes all raise [Bad],
    never anything else. *)
module Json : sig
  type t =
    | Bool of bool
    | Int of int
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  val to_string : t -> string

  val parse : ?max_depth:int -> string -> t
  (** Parse one value spanning the whole string (trailing garbage is
      [Bad]).  [max_depth] (default 64) bounds container nesting so a
      hostile ["[[[[..."] frame cannot overflow the stack. *)

  val field : string -> t -> t option
  (** [field k (Obj ...)] — [None] for a missing key or a non-object. *)

  val str_field : string -> t -> string
  (** Raise {!Bad} when missing or not a string; similarly below. *)

  val int_field : string -> t -> int
  val bool_field : string -> t -> bool
end

type header = {
  model : string;
  digest : string;  (** {!Csrtl_core.Snapshot.digest_of_model} *)
  config : string;  (** {!config_tag} of the campaign's kernel config *)
  total : int;  (** faults in the campaign *)
  faults_digest : string;  (** {!faults_digest} of the fault labels *)
}

type entry = {
  index : int;  (** position in the campaign's fault list *)
  fault_label : string;  (** {!Fault.to_string}, cross-checked on resume *)
  kernel : Outcome.t;
  interp : Outcome.t;
  cycles : int;
  law_ok : bool;
}

val config_tag : Simulate.config -> string
(** Stable tag of the config fields that shape outcomes, e.g.
    ["keyed+incr+record"].  (The watchdog flag is excluded: campaigns
    always force it on.) *)

val faults_digest : string list -> string
(** md5 over the newline-joined fault labels — resuming against a
    different fault list (other [--limit], edited model) must be
    rejected, not silently misindexed. *)

val json_of_outcome : Outcome.t -> Json.t

val outcome_of_json : Json.t -> Outcome.t
(** Raises {!Json.Bad} on anything {!json_of_outcome} would not
    produce.  Exposed so the serve daemon can stream journal-shaped
    entry objects over the wire without a second codec. *)

type writer
(** Append handle; thread-safe (one mutex-protected write+flush per
    entry), shared across pool domains.  The file is opened with
    [O_APPEND], so concurrent writers interleave at line granularity
    instead of clobbering each other's offsets. *)

type io_op = [ `Create of string | `Append of string | `Sync of string ]
(** A journal I/O operation about to happen, carrying the journal
    path so an injector can target one campaign and leave concurrent
    healthy ones alone. *)

val chaos : (io_op -> unit) option ref
(** Fault-injection seam for the chaos harness ([lib/chaos]): when
    set, called before every create/append/sync.  A hook that raises
    (say [Unix.Unix_error (ENOSPC, ...)]) makes the operation fail
    exactly as a full or dying disk would.  [None] in production —
    the cost is one pointer load per append.  Set only from tests and
    harnesses; the hook runs under the writer lock, so it must not
    call back into the same writer. *)

val start : string -> header -> writer
(** Truncate/create the file and write the header line.  The
    containing directory is fsynced after creation so a crash just
    after [start] cannot forget the file's very existence (the data
    fsync at checkpoints would otherwise pin bytes for a name that
    never got pinned). *)

val reopen : string -> header -> writer
(** Open for append, trusting the caller verified the on-disk header
    (see {!read}).  If a crash left a torn final line without its
    newline, a newline is inserted first so the torn line stays an
    isolated parse failure. *)

val append : writer -> entry -> unit

val sync : writer -> unit
(** Flush and [fsync] — a checkpoint boundary.  Appends are flushed
    per entry (crash loses at most the line being written); [sync]
    additionally survives the machine dying, so campaigns call it at
    completion and the daemon at drain points.  fsync failure (e.g. a
    filesystem that refuses it) is swallowed: durability degrades, the
    journal stays usable. *)

val close : writer -> unit

val read : string -> (header * entry list * int, string) result
(** [Ok (header, entries, torn)] — [entries] are the lines that
    parsed and passed their integrity hash, first occurrence winning
    per index; [torn] counts the rest.  [Error] for an unreadable
    file or a malformed/alien header line. *)
