open Csrtl_core

type t =
  | Stuck_sink of { sink : string; value : Word.t }
  | Dropped_leg of { index : int; desc : string }
  | Extra_driver of { sink : string; step : int; phase : Phase.t; value : Word.t }
  | Fu_latency of { fu : string; latency : int }
  | Transient of { sink : string; step : int; phase : Phase.t; value : Word.t }
  | Oscillator of { sink : string; step : int; phase : Phase.t }

(* Arbitrary but fixed corruption payloads, chosen to be unlikely to
   collide with real datapath values in the corpus models. *)
let stuck_payload = 13
let driver_payload = 7
let transient_payload = 11
let reg_payload = 9

let to_inject = function
  | Stuck_sink { sink; value } -> Inject.stuck_sink ~sink value
  | Dropped_leg { index; _ } -> Inject.dropped_leg index
  | Extra_driver { sink; step; phase; value } ->
    Inject.extra_driver ~sink ~step ~phase value
  | Fu_latency { fu; latency } -> Inject.fu_latency ~fu latency
  | Transient { sink; step; phase; value } ->
    Inject.transient_sink ~sink ~step ~phase value
  | Oscillator { sink; step; phase } -> Inject.oscillator ~sink ~step ~phase

let pp ppf = function
  | Stuck_sink { sink; value } ->
    Format.fprintf ppf "stuck-at %s on %s" (Word.to_string value) sink
  | Dropped_leg { index; desc } ->
    Format.fprintf ppf "dropped leg #%d (%s)" index desc
  | Extra_driver { sink; step; phase; value } ->
    Format.fprintf ppf "extra driver %s on %s during (%d, %s)"
      (Word.to_string value) sink step (Phase.to_string phase)
  | Fu_latency { fu; latency } ->
    Format.fprintf ppf "latency of %s forced to %d" fu latency
  | Transient { sink; step; phase; value } ->
    Format.fprintf ppf "transient %s on %s at (%d, %s)"
      (Word.to_string value) sink step (Phase.to_string phase)
  | Oscillator { sink; step; phase } ->
    Format.fprintf ppf "oscillator on %s from (%d, %s)" sink step
      (Phase.to_string phase)

let to_string f = Format.asprintf "%a" pp f

(* Earliest control step at which the fault can make the realization
   diverge from the golden run — a sound lower bound, used by the
   campaign to pick the latest golden checkpoint it may resume from
   (the boundary [first_step - 1]).  Soundness argument per case:

   - a latency override changes the unit pipeline from the first
     step, so 1;
   - a dropped leg first withholds its contribution at the leg's
     read/write slot;
   - a saboteur or oscillator is scheduled at its (step, phase) and
     contributes nothing before it;
   - a transient tampers the sink's re-resolutions at its exact
     (step, phase); a slot at [ra] can coincide with the release
     resolution of step-1 drivers, so it conservatively reaches back
     one step;
   - a stuck register output first differs when the register first
     drives: immediately when its init is not DISC, otherwise at the
     first write into [R.in];
   - a stuck bus (or unit input) yields [value] at every resolution,
     but before the first legitimate write the sink has no resolution
     events, so it still reads DISC on both paths. *)
let first_step (m : Model.t) fault =
  let legs, _ = Model.all_legs m in
  let first_write sink =
    List.fold_left
      (fun acc (l : Transfer.leg) ->
        if Transfer.endpoint_name l.dst = sink then min acc l.step else acc)
      (m.cs_max + 1) legs
  in
  match fault with
  | Fu_latency _ -> 1
  | Dropped_leg { index; _ } ->
    (match List.nth_opt legs index with
     | Some l -> l.Transfer.step
     | None -> 1)
  | Extra_driver { step; _ } | Oscillator { step; _ } -> step
  | Transient { step; phase; _ } ->
    if Phase.equal phase Phase.Ra then max 1 (step - 1) else step
  | Stuck_sink { sink; _ } ->
    let reg_of_out =
      if Filename.check_suffix sink ".out" then
        Model.find_register m (Filename.chop_suffix sink ".out")
      else None
    in
    (match reg_of_out with
     | Some r ->
       if not (Word.is_disc r.Model.init) then 1
       else first_write (r.Model.reg_name ^ ".in")
     | None ->
       if
         List.mem sink m.buses
         || List.exists
              (fun (l : Transfer.leg) -> Transfer.endpoint_name l.dst = sink)
              legs
       then first_write sink
       else 1)

(* Last step the fault's mechanism can act in — the dual bound to
   [first_step], used by the batched executor as the earliest
   retirement boundary.  A transient tampers exactly one (step,
   phase) resolution; an extra driver's contribution and release both
   mature within its step (the campaign only batches compilable
   faults, and a [cr] saboteur is not compilable); a dropped leg
   withholds exactly its slot's contribution.  Stuck sinks and
   latency overrides rewrite the transition function permanently, so
   re-converged state does not imply a converged future: [cs_max]. *)
let last_step (m : Model.t) fault =
  let clamp s = min (max s 1) m.cs_max in
  match fault with
  | Stuck_sink _ | Fu_latency _ | Oscillator _ -> m.cs_max
  | Dropped_leg { index; _ } ->
    let legs, _ = Model.all_legs m in
    (match List.nth_opt legs index with
     | Some l -> clamp l.Transfer.step
     | None -> 1)
  | Extra_driver { step; _ } | Transient { step; _ } -> clamp step

(* Deterministic stride subsample preserving enumeration order. *)
let subsample limit l =
  if limit < 1 then
    invalid_arg (Printf.sprintf "Fault.enumerate: limit %d < 1" limit);
  let n = List.length l in
  if n <= limit then l
  else
    let stride = (n + limit - 1) / limit in
    List.filteri (fun i _ -> i mod stride = 0) l

let enumerate ?limit (m : Model.t) =
  let legs, _ = Model.all_legs m in
  let legs_writing b =
    List.filter
      (fun (l : Transfer.leg) -> Transfer.endpoint_name l.dst = b)
      legs
  in
  let stuck_faults =
    List.concat_map
      (fun b ->
        List.map
          (fun value -> Stuck_sink { sink = b; value })
          [ Word.disc; Word.illegal; stuck_payload ])
      m.buses
    @ List.concat_map
        (fun (r : Model.register) ->
          List.map
            (fun value -> Stuck_sink { sink = r.reg_name ^ ".out"; value })
            [ Word.disc; Word.illegal; reg_payload ])
        m.registers
  in
  let drop_faults =
    List.mapi
      (fun index l ->
        Dropped_leg
          { index; desc = Format.asprintf "%a" Transfer.pp_leg l })
      legs
  in
  let driver_faults =
    List.concat_map
      (fun b ->
        let writers = legs_writing b in
        let active =
          match writers with
          | (l : Transfer.leg) :: _ ->
            [ Extra_driver
                { sink = b; step = l.step; phase = l.phase;
                  value = driver_payload } ]
          | [] -> []
        in
        (* one spurious driver on a slot where nothing legitimately
           writes the bus: the corruption flows silently if any reader
           samples it *)
        let phases = [ Phase.Ra; Phase.Rb; Phase.Wa; Phase.Wb ] in
        let slot_used step phase =
          List.exists
            (fun (l : Transfer.leg) ->
              l.step = step && Phase.equal l.phase phase)
            writers
        in
        let idle =
          let rec find step =
            if step > m.cs_max then []
            else
              match
                List.find_opt (fun ph -> not (slot_used step ph)) phases
              with
              | Some phase ->
                [ Extra_driver
                    { sink = b; step; phase; value = driver_payload } ]
              | None -> find (step + 1)
          in
          find 1
        in
        active @ idle)
      m.buses
  in
  let latency_faults =
    List.concat_map
      (fun (f : Model.fu) ->
        let candidates = [ f.latency + 1; f.latency - 1 ] in
        List.filter_map
          (fun latency ->
            if latency >= 1 && latency <> f.latency then
              Some (Fu_latency { fu = f.fu_name; latency })
            else None)
          candidates)
      m.fus
  in
  let transient_faults =
    List.concat_map
      (fun b ->
        match legs_writing b with
        | (l : Transfer.leg) :: _ ->
          (* the visibility slot of the first legitimate write *)
          let step = l.step and phase = Phase.succ l.phase in
          [ Transient { sink = b; step; phase; value = Word.illegal };
            Transient { sink = b; step; phase; value = transient_payload } ]
        | [] -> [])
      m.buses
  in
  let all =
    stuck_faults @ drop_faults @ driver_faults @ latency_faults
    @ transient_faults
  in
  match limit with None -> all | Some n -> subsample n all
