open Csrtl_kernel
module C = Csrtl_core

exception Not_sequential of string

type result = {
  final_regs : (string * C.Word.t) list;
  outputs : (string * (int * C.Word.t) list) list;
  transactions : int;
  stats : Types.stats;
}

let ordered_tuples (m : C.Model.t) =
  List.sort C.Transfer.compare m.transfers

(* Sequential execution is faithful unless a later-ordered tuple
   reads a register before an earlier-ordered tuple has written it in
   the clock-free schedule (a pipelining hazard the one-at-a-time
   handshake executor cannot express). *)
let check_sequential (m : C.Model.t) =
  let tuples = Array.of_list (ordered_tuples m) in
  let n = Array.length tuples in
  let reads_reg (t : C.Transfer.t) reg =
    let is_reg = function
      | Some (C.Transfer.From_reg r) -> r = reg
      | Some (C.Transfer.From_input _) | None -> false
    in
    is_reg t.src_a || is_reg t.src_b
  in
  let error = ref None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = tuples.(i) and b = tuples.(j) in
      match a.C.Transfer.write_step, a.C.Transfer.dst, b.C.Transfer.read_step
      with
      | Some w, Some (C.Transfer.To_reg reg), Some r
        when w > r && reads_reg b reg && !error = None ->
        error :=
          Some
            (Printf.sprintf
               "%s writes %s at step %d after %s reads it at step %d: \
                schedule is overlapped"
               (C.Transfer.to_string a) reg w (C.Transfer.to_string b) r)
      | _, _, _ -> ()
    done
  done;
  match !error with None -> Ok () | Some msg -> Error msg

(* A register server: answers pull requests on [get] with the stored
   value and accepts stores on [put]. *)
let reg_server k ~name ~init get put =
  let value = ref init in
  let at_zero s () = Signal.value s = 0 in
  ignore
    (Scheduler.add_process k ~name (fun () ->
         while true do
           let greq = Channel.req get and preq = Channel.req put in
           if Signal.value greq <> 1 && Signal.value preq <> 1 then
             Process.wait_until [ greq; preq ] (fun () ->
                 Signal.value greq = 1 || Signal.value preq = 1);
           if Signal.value greq = 1 then begin
             Scheduler.assign k (Channel.data get) !value;
             Scheduler.assign k (Channel.ack get) 1;
             Process.wait_until [ greq ] (at_zero greq);
             Scheduler.assign k (Channel.ack get) 0
           end
           else begin
             value := Signal.value (Channel.data put);
             Scheduler.assign k (Channel.ack put) 1;
             Process.wait_until [ preq ] (at_zero preq);
             Scheduler.assign k (Channel.ack put) 0
           end
         done));
  value

(* A functional-unit server: receives an operation index and the
   operands, computes, and answers the result request. *)
let fu_server k (f : C.Model.fu) ~op_ch ~a_ch ~b_ch ~res_ch =
  let state = ref C.Word.disc in
  ignore
    (Scheduler.add_process k ~name:("FU_" ^ f.fu_name) (fun () ->
         while true do
           let op_index = Channel.recv k op_ch in
           let op =
             match List.nth_opt f.ops op_index with
             | Some op -> op
             | None -> List.hd f.ops
           in
           let a =
             if C.Ops.arity op >= 1 then Channel.recv k a_ch else C.Word.disc
           in
           let b =
             if C.Ops.arity op >= 2 then Channel.recv k b_ch else C.Word.disc
           in
           let res = C.Ops.apply op ~prev:!state a b in
           state := res;
           Channel.serve k res_ch (fun () -> res)
         done))

let run (m : C.Model.t) =
  C.Model.validate_exn m;
  (match check_sequential m with
   | Ok () -> ()
   | Error msg -> raise (Not_sequential msg));
  let k = Scheduler.create () in
  let transactions = ref 0 in
  let tick () = incr transactions in
  let reg_chans = Hashtbl.create 16 in
  let reg_values = Hashtbl.create 16 in
  List.iter
    (fun (r : C.Model.register) ->
      let get = Channel.create k (r.reg_name ^ ".get") in
      let put = Channel.create k (r.reg_name ^ ".put") in
      Hashtbl.replace reg_chans r.reg_name (get, put);
      Hashtbl.replace reg_values r.reg_name
        (reg_server k ~name:("REG_" ^ r.reg_name) ~init:r.init get put))
    m.registers;
  let fu_chans = Hashtbl.create 8 in
  List.iter
    (fun (f : C.Model.fu) ->
      let op_ch = Channel.create k (f.fu_name ^ ".op") in
      let a_ch = Channel.create k (f.fu_name ^ ".a") in
      let b_ch = Channel.create k (f.fu_name ^ ".b") in
      let res_ch = Channel.create k (f.fu_name ^ ".res") in
      Hashtbl.replace fu_chans f.fu_name (op_ch, a_ch, b_ch, res_ch);
      fu_server k f ~op_ch ~a_ch ~b_ch ~res_ch)
    m.fus;
  let out_writes = ref [] in
  let tuples = ordered_tuples m in
  ignore
    (Scheduler.add_process k ~name:"sequencer" (fun () ->
         List.iter
           (fun (t : C.Transfer.t) ->
             match C.Model.find_fu m t.fu, C.Model.effective_op m t with
             | Some f, Some op ->
               let op_ch, a_ch, b_ch, res_ch =
                 Hashtbl.find fu_chans f.fu_name
               in
               let op_index =
                 let rec find i = function
                   | [] -> 0
                   | o :: rest ->
                     if C.Ops.equal o op then i else find (i + 1) rest
                 in
                 find 0 f.ops
               in
               let fetch = function
                 | C.Transfer.From_reg r ->
                   let get, _ = Hashtbl.find reg_chans r in
                   tick ();
                   Channel.request k get
                 | C.Transfer.From_input i ->
                   (match
                      List.find_opt
                        (fun (x : C.Model.input) -> x.in_name = i)
                        m.inputs
                    with
                    | Some inp ->
                      C.Model.input_value inp
                        (Option.value ~default:1 t.read_step)
                    | None -> C.Word.disc)
               in
               tick ();
               Channel.send k op_ch op_index;
               (match C.Ops.arity op, t.src_a, t.src_b with
                | 0, _, _ -> ()
                | 1, Some a, _ ->
                  let va = fetch a in
                  tick ();
                  Channel.send k a_ch va
                | 2, Some a, Some b ->
                  let va = fetch a in
                  tick ();
                  Channel.send k a_ch va;
                  let vb = fetch b in
                  tick ();
                  Channel.send k b_ch vb
                | _, _, _ -> ());
               tick ();
               let res = Channel.request k res_ch in
               (match t.dst with
                | Some (C.Transfer.To_reg r) ->
                  let _, put = Hashtbl.find reg_chans r in
                  if not (C.Word.is_disc res) then begin
                    tick ();
                    Channel.send k put res
                  end
                | Some (C.Transfer.To_output o) ->
                  if not (C.Word.is_disc res) then
                    out_writes :=
                      (o, (Option.value ~default:0 t.write_step, res))
                      :: !out_writes
                | None -> ())
             | _, _ -> ())
           tuples;
         raise Scheduler.Stop))
  ;
  let (_ : Scheduler.run_result) = Scheduler.run k in
  let final_regs =
    List.map
      (fun (r : C.Model.register) ->
        (r.reg_name, !(Hashtbl.find reg_values r.reg_name)))
      m.registers
  in
  let outputs =
    List.map
      (fun o ->
        ( o,
          List.rev
            (List.filter_map
               (fun (name, w) -> if name = o then Some w else None)
               !out_writes) ))
      m.outputs
  in
  { final_regs; outputs; transactions = !transactions;
    stats = Scheduler.stats k }
