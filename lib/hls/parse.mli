(** Text format for algorithmic programs (".alg").

    A small expression language for feeding custom programs to the
    HLS flow from the command line:

    {v
    program diffeq
    inputs x y u dx a
    outputs x1 y1 u1 c
    x1 = x + dx
    u1 = u - 3 * x * u * dx - 3 * y * dx
    y1 = y + u * dx
    c  = x1 < a
    v}

    Operators, loosest to tightest: comparisons [< <s == ] (unsigned,
    signed, equality), additive [+ -], multiplicative [*], unary [-].
    Named operations for the rest: [max(a,b)], [min(a,b)], [abs(a)],
    [and(a,b)], [or(a,b)], [xor(a,b)], [shl(a,b)], [shr(a,b)],
    [asr(a,b)], [pass(a)].  [#] starts a comment.  Assignments may
    reuse a name (sequential semantics, as in {!Ir}). *)

exception Parse_error of int * string

val parse :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string -> string ->
  (Ir.program * Csrtl_diag.Diag.t list, Csrtl_diag.Diag.t list) result
(** Total multi-error parse for untrusted input: never raises; each
    broken line yields one located diagnostic (rule [alg.parse]) and
    parsing continues, so one pass reports them all.  Semantic
    problems surface as rule [alg.validate]; resource guards cap the
    input size (rule [limits.input-bytes]). *)

val program_of_string : string -> Ir.program
(** Parsed and validated.  Raises {!Parse_error} with the first
    diagnostic; prefer {!parse} on untrusted input. *)

val program_of_file : string -> Ir.program

val to_string : Ir.program -> string
(** Render a program in the same format;
    [program_of_string (to_string p)] is equivalent to [p]. *)
