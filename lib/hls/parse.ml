module C = Csrtl_core
module Diag = Csrtl_diag.Diag

exception Parse_error of int * string

(* Internal: column + length + message; the drivers turn it into a
   located diagnostic (diagnostic parse) or a {!Parse_error}. *)
exception Line_error of int * int * string

let err_at ?(len = 1) col fmt =
  Format.kasprintf (fun m -> raise (Line_error (col, len, m))) fmt

(* -- tokenizer (per line) ------------------------------------------------- *)

type token =
  | Tid of string
  | Tnum of int
  | Tplus | Tminus | Tstar
  | Tlt | Tlts | Teq_eq
  | Tlparen | Trparen | Tcomma
  | Tassign

(* Tokens with their 1-based starting column. *)
let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9') || c = '_'
  in
  let emit start t = out := (t, start + 1) :: !out in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n
    else if c >= '0' && c <= '9' then begin
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      let text = String.sub s start (!i - start) in
      match int_of_string_opt text with
      | Some v -> emit start (Tnum v)
      | None ->
        err_at ~len:(!i - start) (start + 1)
          "number literal %s does not fit a machine int" text
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let start = !i in
      while !i < n && is_id s.[!i] do
        incr i
      done;
      emit start (Tid (String.sub s start (!i - start)))
    end
    else begin
      let two = if !i + 1 < n then Some (String.sub s !i 2) else None in
      let start = !i in
      match two with
      | Some "<s" ->
        emit start Tlts;
        i := !i + 2
      | Some "==" ->
        emit start Teq_eq;
        i := !i + 2
      | _ ->
        (match c with
         | '+' -> emit start Tplus
         | '-' -> emit start Tminus
         | '*' -> emit start Tstar
         | '<' -> emit start Tlt
         | '(' -> emit start Tlparen
         | ')' -> emit start Trparen
         | ',' -> emit start Tcomma
         | '=' -> emit start Tassign
         | _ -> err_at (start + 1) "unexpected character %C" c);
        incr i
    end
  done;
  List.rev !out

(* -- expression parser ----------------------------------------------------- *)

let named_ops =
  [ ("max", (C.Ops.Max, 2)); ("min", (C.Ops.Min, 2));
    ("abs", (C.Ops.Abs, 1)); ("and", (C.Ops.Band, 2));
    ("or", (C.Ops.Bor, 2)); ("xor", (C.Ops.Bxor, 2));
    ("shl", (C.Ops.Shl, 2)); ("shr", (C.Ops.Shr, 2));
    ("asr", (C.Ops.Asr, 2)); ("pass", (C.Ops.Pass, 1));
    ("not", (C.Ops.Bnot, 1)); ("neg", (C.Ops.Neg, 1)) ]

type pstate = { mutable toks : (token * int) list; mutable last_col : int }

let peek st = match st.toks with [] -> None | (t, _) :: _ -> Some t

let fail st fmt = err_at st.last_col fmt

let advance st =
  match st.toks with
  | [] -> err_at (st.last_col + 1) "unexpected end of line"
  | (t, c) :: rest ->
    st.toks <- rest;
    st.last_col <- c;
    t

let expect st t what =
  if advance st <> t then fail st "expected %s" what

let rec parse_cmp st =
  let a = parse_add st in
  match peek st with
  | Some Tlt ->
    ignore (advance st);
    Ir.Bin (C.Ops.Lt, a, parse_add st)
  | Some Tlts ->
    ignore (advance st);
    Ir.Bin (C.Ops.Lts, a, parse_add st)
  | Some Teq_eq ->
    ignore (advance st);
    Ir.Bin (C.Ops.Eq, a, parse_add st)
  | _ -> a

and parse_add st =
  let rec go a =
    match peek st with
    | Some Tplus ->
      ignore (advance st);
      go (Ir.Bin (C.Ops.Add, a, parse_mul st))
    | Some Tminus ->
      ignore (advance st);
      go (Ir.Bin (C.Ops.Sub, a, parse_mul st))
    | _ -> a
  in
  go (parse_mul st)

and parse_mul st =
  let rec go a =
    match peek st with
    | Some Tstar ->
      ignore (advance st);
      go (Ir.Bin (C.Ops.Mul, a, parse_unary st))
    | _ -> a
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Some Tminus ->
    ignore (advance st);
    Ir.Un (C.Ops.Neg, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match advance st with
  | Tnum n -> Ir.Lit n
  | Tlparen ->
    let e = parse_cmp st in
    expect st Trparen ")";
    e
  | Tid name -> (
      match peek st with
      | Some Tlparen -> (
          ignore (advance st);
          let rec args acc =
            let e = parse_cmp st in
            match advance st with
            | Tcomma -> args (e :: acc)
            | Trparen -> List.rev (e :: acc)
            | _ -> fail st "expected , or ) in arguments"
          in
          let actuals = args [] in
          match List.assoc_opt name named_ops, actuals with
          | Some (op, 2), [ a; b ] -> Ir.Bin (op, a, b)
          | Some (op, 1), [ a ] -> Ir.Un (op, a)
          | Some (_, k), _ ->
            fail st "%s takes %d argument(s)" name k
          | None, _ -> fail st "unknown operation %s" name)
      | _ -> Ir.Var name)
  | _ -> fail st "expected an expression"

(* -- program parser ---------------------------------------------------------- *)

let parse ?(limits = Diag.Limits.default) ?file text =
  match Diag.Limits.check_input_bytes ?file limits text with
  | Some d -> Error [ d ]
  | None ->
    let diags = ref [] in
    let pname = ref "program" in
    let inputs = ref [] in
    let outputs = ref [] in
    let stmts = ref [] in
    let handle_line raw =
      match tokenize raw with
      | [] -> ()
      | [ (Tid "program", _); (Tid n, _) ] -> pname := n
      | (Tid "inputs", _) :: rest ->
        inputs :=
          !inputs
          @ List.map
              (function
                | Tid n, _ -> n
                | _, col -> err_at col "inputs takes identifiers")
              rest
      | (Tid "outputs", _) :: rest ->
        outputs :=
          !outputs
          @ List.map
              (function
                | Tid n, _ -> n
                | _, col -> err_at col "outputs takes identifiers")
              rest
      | (Tid def, _) :: (Tassign, acol) :: rest ->
        let st = { toks = rest; last_col = acol } in
        let rhs = parse_cmp st in
        (match st.toks with
         | (_, col) :: _ -> err_at col "trailing tokens"
         | [] -> ());
        stmts := { Ir.def; rhs } :: !stmts
      | (_, col) :: _ -> err_at col "expected 'name = expression'"
    in
    List.iteri
      (fun idx raw ->
        try handle_line raw
        with Line_error (col, len, m) ->
          diags :=
            Diag.error
              ~span:(Diag.span ?file ~len ~line:(idx + 1) ~col ())
              ~rule:"alg.parse" "%s" m
            :: !diags)
      (String.split_on_char '\n' text);
    let p =
      { Ir.pname = !pname; inputs = !inputs; stmts = List.rev !stmts;
        outputs = !outputs }
    in
    (* semantic validation only makes sense on a fully parsed program:
       a failed line would otherwise show up again as a bogus
       undefined-variable error *)
    (if !diags = [] then
       match Ir.validate p with
       | () -> ()
       | exception Ir.Ill_formed m ->
         diags := Diag.error ~rule:"alg.validate" "%s" m :: !diags);
    let diags = List.stable_sort Diag.by_position (List.rev !diags) in
    if Diag.has_errors diags then Error diags else Ok (p, diags)

let program_of_string text =
  match parse ~limits:Diag.Limits.unlimited text with
  | Ok (p, _) -> p
  | Error diags ->
    let d = List.find (fun d -> d.Diag.severity = Diag.Error) diags in
    let line = match d.Diag.span with Some s -> s.Diag.line | None -> 0 in
    raise (Parse_error (line, d.Diag.message))

let program_of_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  program_of_string text

(* -- printer ------------------------------------------------------------------ *)

let rec expr_to_string (e : Ir.expr) =
  match e with
  | Ir.Var v -> v
  | Ir.Lit n -> string_of_int n
  | Ir.Bin (op, a, b) -> (
      let inline sym = Printf.sprintf "(%s %s %s)" (expr_to_string a) sym (expr_to_string b) in
      match op with
      | C.Ops.Add -> inline "+"
      | C.Ops.Sub -> inline "-"
      | C.Ops.Mul -> inline "*"
      | C.Ops.Lt -> inline "<"
      | C.Ops.Lts -> inline "<s"
      | C.Ops.Eq -> inline "=="
      | other -> (
          match
            List.find_opt (fun (_, (op', _)) -> C.Ops.equal op' other)
              named_ops
          with
          | Some (name, _) ->
            Printf.sprintf "%s(%s, %s)" name (expr_to_string a)
              (expr_to_string b)
          | None ->
            Printf.sprintf "%s(%s, %s)" (C.Ops.to_string other)
              (expr_to_string a) (expr_to_string b)))
  | Ir.Un (op, a) -> (
      match op with
      | C.Ops.Neg -> Printf.sprintf "(-%s)" (expr_to_string a)
      | other -> (
          match
            List.find_opt (fun (_, (op', _)) -> C.Ops.equal op' other)
              named_ops
          with
          | Some (name, _) ->
            Printf.sprintf "%s(%s)" name (expr_to_string a)
          | None ->
            Printf.sprintf "%s(%s)" (C.Ops.to_string other)
              (expr_to_string a)))

let to_string (p : Ir.program) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" p.Ir.pname);
  if p.Ir.inputs <> [] then
    Buffer.add_string buf
      (Printf.sprintf "inputs %s\n" (String.concat " " p.Ir.inputs));
  if p.Ir.outputs <> [] then
    Buffer.add_string buf
      (Printf.sprintf "outputs %s\n" (String.concat " " p.Ir.outputs));
  List.iter
    (fun (s : Ir.stmt) ->
      Buffer.add_string buf
        (Printf.sprintf "%s = %s\n" s.Ir.def (expr_to_string s.Ir.rhs)))
    p.Ir.stmts;
  Buffer.contents buf
