module C = Csrtl_core

exception Infeasible of string

let fail fmt = Format.kasprintf (fun m -> raise (Infeasible m)) fmt

(* Maximum concurrent occupancy per class (pipelined units occupy
   their read step; non-pipelined ones their whole latency window). *)
let units_needed (s : Sched.t) =
  let usage = Hashtbl.create 16 in
  Array.iter
    (fun (nd : Dfg.node) ->
      let cls = Sched.class_of s.Sched.resources nd.Dfg.op in
      let r = s.Sched.read_step.(nd.id) in
      let steps =
        if cls.Sched.pipelined then [ r ]
        else List.init cls.Sched.latency (fun i -> r + i)
      in
      List.iter
        (fun t ->
          let key = (cls.Sched.cls_name, t) in
          Hashtbl.replace usage key
            (1 + Option.value ~default:0 (Hashtbl.find_opt usage key)))
        steps)
    s.Sched.dfg.Dfg.nodes;
  let per_class = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (cls, _) n ->
      Hashtbl.replace per_class cls
        (max n (Option.value ~default:0 (Hashtbl.find_opt per_class cls))))
    usage;
  Hashtbl.fold (fun cls n acc -> (cls, n) :: acc) per_class []
  |> List.sort compare

let rec schedule_internal ?horizon ?(auto_extend = false)
    (res : Sched.resources) (dfg : Dfg.t) =
  let n = Array.length dfg.Dfg.nodes in
  if n = 0 then
    ({ Sched.dfg; resources = res; read_step = [||]; n_steps = 0 }, res)
  else begin
    let cls_of id = Sched.class_of res dfg.Dfg.nodes.(id).Dfg.op in
    let lat id = (cls_of id).Sched.latency in
    let asap0 = Sched.asap res dfg in
    let min_horizon =
      Array.fold_left max 1 (Array.mapi (fun i r -> r + lat i) asap0)
    in
    let user_fixed = horizon <> None && not auto_extend in
    let horizon =
      match horizon with
      | None -> min_horizon
      | Some h ->
        if h < min_horizon then
          fail "horizon %d below the critical path %d" h min_horizon
        else h
    in
    (* When the bus budget is infeasible at this latency, a longer
       schedule spreads the transfers out; retry with one more step
       unless the caller pinned the horizon. *)
    let retry () =
      if user_fixed || horizon > min_horizon + (8 * n) then None
      else
        Some
          (schedule_internal ~horizon:(horizon + 1) ~auto_extend:true res dfg)
    in
    try
    let fixed = Array.make n 0 in
    let is_fixed = Array.make n false in
    (* current time frames under the fixed assignments *)
    let asap = Array.make n 1 in
    let alap = Array.make n 1 in
    let recompute_frames () =
      Array.iter
        (fun (nd : Dfg.node) ->
          let dep =
            List.fold_left
              (fun acc p -> max acc (asap.(p) + lat p + 1))
              1 (Dfg.preds nd)
          in
          asap.(nd.id) <- (if is_fixed.(nd.id) then fixed.(nd.id) else dep))
        dfg.Dfg.nodes;
      for i = n - 1 downto 0 do
        let nd = dfg.Dfg.nodes.(i) in
        let latest =
          List.fold_left
            (fun acc s -> min acc (alap.(s) - lat i - 1))
            (horizon - lat i)
            (Dfg.succs dfg nd.Dfg.id)
        in
        alap.(i) <- (if is_fixed.(i) then fixed.(i) else latest)
      done
    in
    recompute_frames ();
    (* bus slots are a hard constraint, as in the list scheduler *)
    let bus_reads = Hashtbl.create 32 in
    let bus_writes = Hashtbl.create 32 in
    let used tbl t = Option.value ~default:0 (Hashtbl.find_opt tbl t) in
    let bus_ok id t =
      let arity = C.Ops.arity dfg.Dfg.nodes.(id).Dfg.op in
      used bus_reads t + arity <= res.Sched.buses
      && used bus_writes (t + lat id) + 1 <= res.Sched.buses
    in
    let bus_commit id t =
      let arity = C.Ops.arity dfg.Dfg.nodes.(id).Dfg.op in
      Hashtbl.replace bus_reads t (used bus_reads t + arity);
      Hashtbl.replace bus_writes (t + lat id)
        (used bus_writes (t + lat id) + 1)
    in
    (* distribution graph of one class at one step *)
    let dg cls t =
      Array.fold_left
        (fun acc (nd : Dfg.node) ->
          let c = cls_of nd.Dfg.id in
          if c.Sched.cls_name <> cls then acc
          else if is_fixed.(nd.id) then
            if fixed.(nd.id) = t then acc +. 1.0 else acc
          else if asap.(nd.id) <= t && t <= alap.(nd.id) then
            acc +. (1.0 /. float_of_int (alap.(nd.id) - asap.(nd.id) + 1))
          else acc)
        0.0 dfg.Dfg.nodes
    in
    (* average DG of a class over a frame *)
    let avg_dg cls lo hi =
      if hi < lo then 0.0
      else begin
        let sum = ref 0.0 in
        for t = lo to hi do
          sum := !sum +. dg cls t
        done;
        !sum /. float_of_int (hi - lo + 1)
      end
    in
    (* self force of assigning node id to step t *)
    let self_force id t =
      let cls = (cls_of id).Sched.cls_name in
      dg cls t -. avg_dg cls asap.(id) alap.(id)
    in
    (* first-order neighbour forces: the frame narrowing a tentative
       assignment imposes on direct predecessors and successors *)
    let neighbour_force id t =
      let nd = dfg.Dfg.nodes.(id) in
      let pred_force p =
        let new_hi = min alap.(p) (t - lat p - 1) in
        if is_fixed.(p) || new_hi >= alap.(p) then 0.0
        else
          let cls = (cls_of p).Sched.cls_name in
          avg_dg cls asap.(p) new_hi -. avg_dg cls asap.(p) alap.(p)
      in
      let succ_force s =
        let new_lo = max asap.(s) (t + lat id + 1) in
        if is_fixed.(s) || new_lo <= asap.(s) then 0.0
        else
          let cls = (cls_of s).Sched.cls_name in
          avg_dg cls new_lo alap.(s) -. avg_dg cls asap.(s) alap.(s)
      in
      List.fold_left (fun acc p -> acc +. pred_force p) 0.0 (Dfg.preds nd)
      +. List.fold_left
           (fun acc s -> acc +. succ_force s)
           0.0
           (Dfg.succs dfg nd.Dfg.id)
    in
    let remaining = ref n in
    let fix id t =
      fixed.(id) <- t;
      is_fixed.(id) <- true;
      bus_commit id t;
      decr remaining;
      recompute_frames ()
    in
    (* Constraint propagation: a node whose frame collapsed to one
       step is implicitly scheduled; commit it immediately (its self
       force is zero, so force selection would defer it while other
       assignments exhaust its only slot's buses). *)
    let rec propagate_forced () =
      let forced = ref None in
      Array.iter
        (fun (nd : Dfg.node) ->
          if
            (not is_fixed.(nd.id))
            && asap.(nd.id) = alap.(nd.id)
            && !forced = None
          then forced := Some nd.id)
        dfg.Dfg.nodes;
      match !forced with
      | None -> ()
      | Some id ->
        let t = asap.(id) in
        if not (bus_ok id t) then
          fail "forced assignment of node %d to step %d exceeds the bus \
                budget"
            id t;
        fix id t;
        propagate_forced ()
    in
    while !remaining > 0 do
      propagate_forced ();
      if !remaining > 0 then begin
      let best = ref None in
      Array.iter
        (fun (nd : Dfg.node) ->
          if not is_fixed.(nd.id) then
            for t = asap.(nd.id) to alap.(nd.id) do
              if bus_ok nd.id t then begin
                let force = self_force nd.id t +. neighbour_force nd.id t in
                match !best with
                | Some (_, _, f) when f <= force -> ()
                | Some _ | None -> best := Some (nd.id, t, force)
              end
            done)
        dfg.Dfg.nodes;
      (match !best with
       | None ->
         fail "no feasible assignment under the bus budget (%d buses)"
           res.Sched.buses
       | Some (id, t, _) -> fix id t)
      end
    done;
    let n_steps =
      Array.to_list dfg.Dfg.nodes
      |> List.fold_left
           (fun acc (nd : Dfg.node) -> max acc (fixed.(nd.id) + lat nd.id))
           1
    in
    let sched =
      { Sched.dfg; resources = res; read_step = fixed; n_steps }
    in
    let needed = units_needed sched in
    let resources =
      { res with
        Sched.classes =
          List.map
            (fun (cls : Sched.fu_class) ->
              match List.assoc_opt cls.Sched.cls_name needed with
              | Some count when count > 0 -> { cls with Sched.count }
              | Some _ | None -> cls)
            res.Sched.classes }
    in
    (match Sched.verify { sched with Sched.resources } with
     | Ok () -> ()
     | Error es -> fail "Bug: FDS emitted an unverifiable schedule: %s" (String.concat "; " es));
    ({ sched with Sched.resources }, resources)
    with Infeasible _ as e ->
      (match retry () with Some result -> result | None -> raise e)
  end

let schedule ?horizon res dfg = schedule_internal ?horizon res dfg
