(** Subset-conformance checking for clock-free RT VHDL.

    The paper's §1 frames the work as defining "a systematic but
    general way based on VHDL subsets" (citing the EVSWG Level-0
    effort): a description is portable exactly when it stays inside
    the subset.  This linter checks a parsed design file against the
    clock-free RT rules of §2:

    - no physical timing: no [wait for], no [after] (unrepresentable
      in the subset AST, reported if a foreign construct slipped
      through), and no clock-shaped signals (names like [clk],
      [clock], edge idioms);
    - processes are either sensitivity-list processes without wait
      statements or wait-statement processes without a sensitivity
      list, never both (VHDL legality) — and their waits are [wait
      until] conditions over the control signals [CS]/[PH] or plain
      [wait];
    - the phase enumeration, when declared, is exactly the paper's
      six phases in order;
    - the sentinel constants DISC/ILLEGAL, when declared, have the
      paper's values;
    - resolved signal declarations name a declared resolution
      function;
    - component instantiations reference declared entities (or the
      paper's CONTROLLER/TRANS/REG), with matching generic/port
      counts;
    - TRANS instances carry a (step, phase) generic pair.

    Violations are warnings or errors; a file is {e conformant} when
    it has no errors. *)

type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;  (** short rule identifier, e.g. ["no-clocks"] *)
  where : string;  (** design unit / label the finding points into *)
  span : Csrtl_diag.Diag.span option;
      (** source span of the enclosing construct, when the parse
          recorded one (see {!Parser.span_table}) *)
  message : string;
}

val check : ?spans:Parser.span_table -> Ast.design_file -> finding list
(** All findings, errors first.  With [spans] (from {!Parser.parse})
    findings carry the source span of their enclosing design unit,
    instance or process. *)

val check_source : string -> (finding list, string) result
(** Parse then {!check}; [Error] is a parse failure (which itself
    means the text leaves the subset grammar). *)

val check_source_diags :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string -> string ->
  finding list * Csrtl_diag.Diag.t list
(** Total variant for untrusted input: parse with recovery, then
    {!check} whatever units survived.  Returns the findings (with
    spans) alongside the parse diagnostics; never raises. *)

val conformant : finding list -> bool
(** No [Error]-severity findings. *)

val to_diag : finding -> Csrtl_diag.Diag.t
(** Render a finding in the shared diagnostic type (rule prefixed
    with ["lint."], [where] folded into the message). *)

val pp_finding : Format.formatter -> finding -> unit
