module Diag = Csrtl_diag.Diag

type token =
  | Id of string
  | Num of int
  | Str of string
  | Tick
  | Lparen | Rparen | Semi | Colon | Comma
  | Arrow
  | Assign
  | Leq
  | Eq | Neq | Lt | Gt | Geq
  | Plus | Minus | Star | Amp | Dot
  | Eof

type pos = { line : int; col : int }

exception Lex_error of int * string

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')

let is_id_char c =
  is_id_start c || (c >= '0' && c <= '9') || c = '_'

let tokenize_all ?(limits = Diag.Limits.default) ?file src =
  let diags = ref [] in
  let diag ~line ~col ?(len = 1) ~rule fmt =
    Format.kasprintf
      (fun m ->
        diags :=
          Diag.error ~span:(Diag.span ?file ~len ~line ~col ()) ~rule "%s" m
          :: !diags)
      fmt
  in
  match Diag.Limits.check_input_bytes ?file limits src with
  | Some d -> ([| (Eof, { line = 1; col = 1 }) |], [ d ])
  | None ->
    let n = String.length src in
    let out = ref [] in
    let count = ref 0 in
    let line = ref 1 in
    let bol = ref 0 in  (* byte offset of the current line's start *)
    let i = ref 0 in
    let col_of off = off - !bol + 1 in
    let emit_at off t =
      incr count;
      out := (t, { line = !line; col = col_of off }) :: !out
    in
    let over_budget = ref false in
    (* one extra slot is kept for Eof, so the guard fires strictly
       before the cap is reached *)
    while !i < n && not !over_budget do
      let c = src.[!i] in
      if !count >= limits.Diag.Limits.max_tokens then begin
        diag ~line:!line ~col:(col_of !i) ~rule:"limits.tokens"
          "more than %d tokens; giving up on the rest of the input"
          limits.Diag.Limits.max_tokens;
        over_budget := true
      end
      else if c = '\n' then begin
        incr line;
        incr i;
        bol := !i
      end
      else if c = ' ' || c = '\t' || c = '\r' then incr i
      else if c = '-' && !i + 1 < n && src.[!i + 1] = '-' then begin
        (* comment to end of line *)
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
      end
      else if is_id_start c then begin
        let start = !i in
        while !i < n && is_id_char src.[!i] do
          incr i
        done;
        emit_at start (Id (String.sub src start (!i - start)))
      end
      else if c >= '0' && c <= '9' then begin
        let start = !i in
        while !i < n && ((src.[!i] >= '0' && src.[!i] <= '9') || src.[!i] = '_')
        do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        let text = String.concat "" (String.split_on_char '_' text) in
        (match int_of_string_opt text with
         | Some v -> emit_at start (Num v)
         | None ->
           diag ~line:!line ~col:(col_of start) ~len:(!i - start)
             ~rule:"vhdl.lex" "number literal %s does not fit a machine int"
             (if String.length text > 24 then String.sub text 0 24 ^ "..."
              else text);
           emit_at start (Num 0))
      end
      else if c = '"' then begin
        let start = !i in
        let start_line = !line and start_col = col_of !i in
        let buf = Buffer.create 16 in
        incr i;
        let finished = ref false in
        while not !finished do
          if !i >= n then begin
            diag ~line:start_line ~col:start_col ~rule:"vhdl.lex"
              "unterminated string";
            finished := true
          end
          else if src.[!i] = '"' then begin
            finished := true;
            incr i
          end
          else if src.[!i] = '\n' then begin
            (* a VHDL string cannot span lines: diagnose and resume
               lexing at the newline *)
            diag ~line:start_line ~col:start_col ~rule:"vhdl.lex"
              "unterminated string";
            finished := true
          end
          else begin
            Buffer.add_char buf src.[!i];
            incr i
          end
        done;
        emit_at start (Str (Buffer.contents buf))
      end
      else begin
        let two =
          if !i + 1 < n then Some (String.sub src !i 2) else None
        in
        let start = !i in
        match two with
        | Some "=>" -> emit_at start Arrow; i := !i + 2
        | Some ":=" -> emit_at start Assign; i := !i + 2
        | Some "<=" -> emit_at start Leq; i := !i + 2
        | Some "/=" -> emit_at start Neq; i := !i + 2
        | Some ">=" -> emit_at start Geq; i := !i + 2
        | Some _ | None ->
          (match c with
           | '\'' -> emit_at start Tick; incr i
           | '(' -> emit_at start Lparen; incr i
           | ')' -> emit_at start Rparen; incr i
           | ';' -> emit_at start Semi; incr i
           | ':' -> emit_at start Colon; incr i
           | ',' -> emit_at start Comma; incr i
           | '=' -> emit_at start Eq; incr i
           | '<' -> emit_at start Lt; incr i
           | '>' -> emit_at start Gt; incr i
           | '+' -> emit_at start Plus; incr i
           | '-' -> emit_at start Minus; incr i
           | '*' -> emit_at start Star; incr i
           | '&' -> emit_at start Amp; incr i
           | '.' -> emit_at start Dot; incr i
           | _ ->
             diag ~line:!line ~col:(col_of start) ~rule:"vhdl.lex"
               "unexpected character %C" c;
             incr i)
      end
    done;
    out := (Eof, { line = !line; col = col_of (min !i n) }) :: !out;
    (Array.of_list (List.rev !out), List.rev !diags)

let tokenize src =
  let toks, diags = tokenize_all ~limits:Diag.Limits.unlimited src in
  match List.find_opt (fun d -> d.Diag.severity = Diag.Error) diags with
  | Some d ->
    let line = match d.Diag.span with Some s -> s.Diag.line | None -> 0 in
    raise (Lex_error (line, d.Diag.message))
  | None -> Array.map (fun (t, p) -> (t, p.line)) toks

let token_to_string = function
  | Id s -> s
  | Num n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Tick -> "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Semi -> ";"
  | Colon -> ":"
  | Comma -> ","
  | Arrow -> "=>"
  | Assign -> ":="
  | Leq -> "<="
  | Eq -> "="
  | Neq -> "/="
  | Lt -> "<"
  | Gt -> ">"
  | Geq -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Amp -> "&"
  | Dot -> "."
  | Eof -> "<eof>"
