(** Recursive-descent parser for the VHDL subset.

    Accepts everything {!Emit} produces (and the paper's hand-written
    style): packages with enumeration types, constants and resolution
    functions; entities; architectures with signal declarations,
    processes and component instantiations.  Keywords are recognized
    case-insensitively; identifier case is preserved.

    {!parse} is the untrusted-input entry point: it is {e total} —
    panic-mode recovery resynchronizes at [;] / [end] / design-unit
    boundaries, so one pass reports {e all} independent syntax errors
    as located diagnostics instead of dying at the first one.  A fuel
    bound and a nesting-depth guard ({!Csrtl_diag.Diag.Limits})
    guarantee termination and bounded stack on arbitrary token
    streams. *)

type span_table
(** Source spans of the named constructs a parse found, for
    diagnostics produced by later passes ({!Lint}).  Keys are built
    with the [key_*] functions below. *)

val key_entity : string -> string
val key_architecture : string -> string
val key_package : string -> string
val key_instance : arch:string -> string -> string
val key_process : arch:string -> string -> string
(** Keys are case-insensitive in all name components. *)

val spans_find : span_table -> string -> Csrtl_diag.Diag.span option

type parse_result = {
  units : Ast.design_file;
      (** the units that parsed; partial when [diags] has errors *)
  diags : Csrtl_diag.Diag.t list;  (** lexical + syntax, source order *)
  spans : span_table;
}

val parse :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string -> string ->
  parse_result
(** Never raises, never loops: errors come back in [diags]
    (rule [vhdl.syntax], plus the lexer's rules). *)

val parse_tokens :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string ->
  (Lexer.token * Lexer.pos) array -> parse_result
(** {!parse} over a pre-lexed (arbitrary) token stream.  A missing
    trailing {!Lexer.Eof} is tolerated. *)

exception Parse_error of int * string
(** Compatibility surface for {!design_file} / {!expr}. *)

val design_file : string -> Ast.design_file
(** [parse], raising {!Parse_error} with the first error diagnostic.
    Prefer {!parse} on untrusted input. *)

val expr : string -> Ast.expr
(** Parse a single expression (testing convenience). *)
