module Diag = Csrtl_diag.Diag

exception Parse_error of int * string

type span_table = (string, Diag.span) Hashtbl.t

let lc = String.lowercase_ascii

let key_entity n = "entity:" ^ lc n
let key_architecture n = "architecture:" ^ lc n
let key_package n = "package:" ^ lc n
let key_instance ~arch n = "instance:" ^ lc arch ^ "/" ^ lc n
let key_process ~arch n = "process:" ^ lc arch ^ "/" ^ lc n

let spans_find t k = Hashtbl.find_opt t k

type parse_result = {
  units : Ast.design_file;
  diags : Diag.t list;
  spans : span_table;
}

type state = {
  toks : (Lexer.token * Lexer.pos) array;
  mutable pos : int;
  mutable diags : Diag.t list;  (* reverse order *)
  mutable errors : int;
  mutable fuel : int;
  mutable depth : int;
  max_depth : int;
  file : string option;
  spans : span_table;
}

(* A syntax error inside one construct: recovered at the enclosing
   statement / concurrent-statement / design-unit loop. *)
exception Syntax_err of Diag.t

(* Fuel or error budget exhausted: unwind to the top and stop. *)
exception Give_up

let last st = Array.length st.toks - 1

let peek st =
  if st.pos > last st then Lexer.Eof else fst st.toks.(min st.pos (last st))

let peek2 st =
  if st.pos + 1 > last st then Lexer.Eof else fst st.toks.(st.pos + 1)

let cur_pos st =
  if last st < 0 then { Lexer.line = 1; col = 1 }
  else snd st.toks.(min st.pos (last st))

let advance st = if st.pos <= last st then st.pos <- st.pos + 1

let token_len = function
  | Lexer.Id s -> max 1 (String.length s)
  | Lexer.Num n -> max 1 (String.length (string_of_int n))
  | Lexer.Str s -> String.length s + 2
  | Lexer.Arrow | Lexer.Assign | Lexer.Leq | Lexer.Neq | Lexer.Geq -> 2
  | _ -> 1

let cur_span st =
  let p = cur_pos st in
  Diag.span ?file:st.file ~len:(token_len (peek st)) ~line:p.Lexer.line
    ~col:p.Lexer.col ()

let record st d =
  st.diags <- d :: st.diags;
  if d.Diag.severity = Diag.Error then st.errors <- st.errors + 1;
  if st.errors > 200 then raise Give_up

let fail st fmt =
  Format.kasprintf
    (fun m ->
      raise
        (Syntax_err (Diag.error ~span:(cur_span st) ~rule:"vhdl.syntax" "%s" m)))
    fmt

let check_fuel st =
  st.fuel <- st.fuel - 1;
  if st.fuel < 0 then begin
    record st
      (Diag.error ~span:(cur_span st) ~rule:"limits.fuel"
         "parser fuel exhausted; the input is pathological — stopping");
    raise Give_up
  end

let with_depth st f =
  st.depth <- st.depth + 1;
  if st.depth > st.max_depth then begin
    st.depth <- st.depth - 1;
    fail st "nesting deeper than %d levels" st.max_depth
  end
  else
    Fun.protect ~finally:(fun () -> st.depth <- st.depth - 1) f

let expect st tok =
  if peek st = tok then advance st
  else
    fail st "expected %s, found %s"
      (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek st))

(* Keyword test: identifiers match case-insensitively. *)
let at_kw st kw =
  match peek st with Lexer.Id s -> lc s = kw | _ -> false

let expect_kw st kw =
  if at_kw st kw then advance st
  else
    fail st "expected keyword %s, found %s" kw
      (Lexer.token_to_string (peek st))

let ident st =
  match peek st with
  | Lexer.Id s ->
    advance st;
    s
  | t -> fail st "expected identifier, found %s" (Lexer.token_to_string t)

let ident_list st =
  let rec go acc =
    let id = ident st in
    if peek st = Lexer.Comma then begin
      advance st;
      go (id :: acc)
    end
    else List.rev (id :: acc)
  in
  go []

let keywords =
  [ "entity"; "architecture"; "package"; "body"; "is"; "begin"; "end";
    "process"; "signal"; "variable"; "constant"; "type"; "subtype"; "port";
    "generic"; "map"; "wait"; "until"; "on"; "if"; "then"; "elsif"; "else";
    "for"; "loop"; "return"; "null"; "function"; "in"; "out"; "inout";
    "and"; "or"; "not"; "to"; "use"; "of"; "array"; "range";
    "assert"; "report"; "severity" ]

let is_keyword s = List.mem (lc s) keywords

(* -- expressions -------------------------------------------------------- *)

let rec parse_expr st = parse_or st

and parse_or st =
  with_depth st @@ fun () ->
  let a = parse_and st in
  if at_kw st "or" then begin
    advance st;
    Ast.Binop (Ast.Or, a, parse_or st)
  end
  else a

and parse_and st =
  with_depth st @@ fun () ->
  let a = parse_rel st in
  if at_kw st "and" then begin
    advance st;
    Ast.Binop (Ast.And, a, parse_and st)
  end
  else a

and parse_rel st =
  let a = parse_add st in
  let op =
    match peek st with
    | Lexer.Eq -> Some Ast.Eq
    | Lexer.Neq -> Some Ast.Neq
    | Lexer.Lt -> Some Ast.Lt
    | Lexer.Leq -> Some Ast.Le
    | Lexer.Gt -> Some Ast.Gt
    | Lexer.Geq -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> a
  | Some op ->
    advance st;
    Ast.Binop (op, a, parse_add st)

and parse_add st =
  let rec go a =
    match peek st with
    | Lexer.Plus ->
      advance st;
      go (Ast.Binop (Ast.Add, a, parse_mul st))
    | Lexer.Minus ->
      advance st;
      go (Ast.Binop (Ast.Sub, a, parse_mul st))
    | Lexer.Amp ->
      advance st;
      go (Ast.Binop (Ast.Concat, a, parse_mul st))
    | _ -> a
  in
  go (parse_mul st)

and parse_mul st =
  let rec go a =
    match peek st with
    | Lexer.Star ->
      advance st;
      go (Ast.Binop (Ast.Mul, a, parse_unary st))
    | _ -> a
  in
  go (parse_unary st)

and parse_unary st =
  with_depth st @@ fun () ->
  if at_kw st "not" then begin
    advance st;
    Ast.Unop (Ast.Not, parse_unary st)
  end
  else
    match peek st with
    | Lexer.Minus ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
    | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.Num n ->
    advance st;
    Ast.Int n
  | Lexer.Str s ->
    advance st;
    Ast.Str s
  | Lexer.Lparen ->
    with_depth st @@ fun () ->
    advance st;
    let e = parse_expr st in
    expect st Lexer.Rparen;
    Ast.Paren e
  | Lexer.Id _ ->
    let name = ident st in
    (match peek st with
     | Lexer.Tick ->
       advance st;
       let attr = ident st in
       if peek st = Lexer.Lparen then begin
         advance st;
         let args = parse_args st in
         expect st Lexer.Rparen;
         Ast.Attr_call (name, attr, args)
       end
       else Ast.Attr (name, attr)
     | Lexer.Lparen ->
       advance st;
       let args = parse_args st in
       expect st Lexer.Rparen;
       (match args with
        | [ one ] -> Ast.Index (name, one)
        | _ -> Ast.Call (name, args))
     | _ -> Ast.Name name)
  | t -> fail st "expected expression, found %s" (Lexer.token_to_string t)

and parse_args st =
  let rec go acc =
    let e = parse_expr st in
    if peek st = Lexer.Comma then begin
      advance st;
      go (e :: acc)
    end
    else List.rev (e :: acc)
  in
  go []

(* -- types & declarations ------------------------------------------------ *)

let parse_type_name st =
  let first = ident st in
  (* Two consecutive identifiers: resolution function + base type. *)
  match peek st with
  | Lexer.Id s when not (is_keyword s) ->
    advance st;
    { Ast.base = s; resolution = Some first }
  | _ -> { Ast.base = first; resolution = None }

let parse_init_opt st =
  if peek st = Lexer.Assign then begin
    advance st;
    Some (parse_expr st)
  end
  else None

let parse_object_decl st =
  if at_kw st "signal" then begin
    advance st;
    let names = ident_list st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    let init = parse_init_opt st in
    expect st Lexer.Semi;
    Some (Ast.Signal_decl (names, t, init))
  end
  else if at_kw st "variable" then begin
    advance st;
    let names = ident_list st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    let init = parse_init_opt st in
    expect st Lexer.Semi;
    Some (Ast.Variable_decl (names, t, init))
  end
  else if at_kw st "constant" then begin
    advance st;
    let name = ident st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    expect st Lexer.Assign;
    let e = parse_expr st in
    expect st Lexer.Semi;
    Some (Ast.Constant_decl (name, t, e))
  end
  else None

(* -- recovery ------------------------------------------------------------- *)

(* Panic-mode resynchronization after a statement-level error: make
   progress, then skip to just after the next [;], stopping early at
   tokens that close the enclosing construct. *)
let stmt_stopper st =
  match peek st with
  | Lexer.Eof -> true
  | Lexer.Id s ->
    List.mem (lc s)
      [ "end"; "elsif"; "else"; "begin"; "entity"; "architecture";
        "package" ]
  | _ -> false

let sync_stmt st before =
  if st.pos = before then advance st;
  let rec go () =
    check_fuel st;
    if stmt_stopper st then ()
    else if peek st = Lexer.Semi then advance st
    else begin
      advance st;
      go ()
    end
  in
  go ()

(* After a failed design unit: skip to the next token that can start a
   design unit and follows a [;] (so [end entity;] does not fool the
   sync), or to Eof. *)
let sync_unit st before =
  if st.pos = before then advance st;
  let unit_start () =
    match peek st with
    | Lexer.Id s -> List.mem (lc s) [ "entity"; "architecture"; "package"; "use" ]
    | _ -> false
  in
  let prev_semi () = st.pos > 0 && fst st.toks.(st.pos - 1) = Lexer.Semi in
  let rec go () =
    check_fuel st;
    if peek st = Lexer.Eof then ()
    else if unit_start () && prev_semi () then ()
    else begin
      advance st;
      go ()
    end
  in
  go ()

(* -- statements ----------------------------------------------------------- *)

let rec parse_stmt st =
  with_depth st @@ fun () ->
  if at_kw st "wait" then begin
    advance st;
    if at_kw st "until" then begin
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Wait_until e
    end
    else if at_kw st "on" then begin
      advance st;
      let sigs = ident_list st in
      expect st Lexer.Semi;
      Ast.Wait_on sigs
    end
    else begin
      expect st Lexer.Semi;
      Ast.Wait
    end
  end
  else if at_kw st "if" then parse_if st
  else if at_kw st "for" then begin
    advance st;
    let v = ident st in
    expect_kw st "in";
    let lo = parse_expr st in
    expect_kw st "to";
    let hi = parse_expr st in
    expect_kw st "loop";
    let body = parse_stmts st in
    expect_kw st "end";
    expect_kw st "loop";
    expect st Lexer.Semi;
    Ast.For (v, lo, hi, body)
  end
  else if at_kw st "return" then begin
    advance st;
    let e = parse_expr st in
    expect st Lexer.Semi;
    Ast.Return e
  end
  else if at_kw st "assert" then begin
    advance st;
    let cond = parse_expr st in
    expect_kw st "report";
    let msg =
      match peek st with
      | Lexer.Str s ->
        advance st;
        s
      | t -> fail st "expected a report string, found %s"
               (Lexer.token_to_string t)
    in
    expect_kw st "severity";
    let _level = ident st in
    expect st Lexer.Semi;
    Ast.Assert_stmt (cond, msg)
  end
  else if at_kw st "null" then begin
    advance st;
    expect st Lexer.Semi;
    Ast.Null_stmt
  end
  else begin
    let name = ident st in
    match peek st with
    | Lexer.Leq ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Signal_assign (name, e)
    | Lexer.Assign ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Var_assign (name, e)
    | t ->
      fail st "expected <= or := after %s, found %s" name
        (Lexer.token_to_string t)
  end

and parse_if st =
  expect_kw st "if";
  let cond = parse_expr st in
  expect_kw st "then";
  let body = parse_stmts st in
  let rec branches acc =
    if at_kw st "elsif" then begin
      advance st;
      let c = parse_expr st in
      expect_kw st "then";
      let b = parse_stmts st in
      branches ((c, b) :: acc)
    end
    else if at_kw st "else" then begin
      advance st;
      let b = parse_stmts st in
      expect_kw st "end";
      expect_kw st "if";
      expect st Lexer.Semi;
      (List.rev acc, b)
    end
    else begin
      expect_kw st "end";
      expect_kw st "if";
      expect st Lexer.Semi;
      (List.rev acc, [])
    end
  in
  let rest, els = branches [] in
  Ast.If ((cond, body) :: rest, els)

and at_stmt_start st =
  match peek st with
  | Lexer.Id s ->
    not
      (List.mem (lc s)
         [ "end"; "elsif"; "else"; "begin"; "process"; "entity";
           "architecture" ])
  | _ -> false

and parse_stmts st =
  let rec go acc =
    check_fuel st;
    if at_stmt_start st then begin
      let before = st.pos in
      match parse_stmt st with
      | s -> go (s :: acc)
      | exception Syntax_err d ->
        record st d;
        sync_stmt st before;
        go acc
    end
    else List.rev acc
  in
  go []

(* -- concurrent statements -------------------------------------------------- *)

let parse_assoc st =
  let rec go acc =
    (* Named association: Id => expr; otherwise positional. *)
    let item =
      match peek st, peek2 st with
      | Lexer.Id n, Lexer.Arrow ->
        advance st;
        advance st;
        (Some n, parse_expr st)
      | _, _ -> (None, parse_expr st)
    in
    if peek st = Lexer.Comma then begin
      advance st;
      go (item :: acc)
    end
    else List.rev (item :: acc)
  in
  go []

let parse_process st ~arch label =
  let sp = cur_span st in
  expect_kw st "process";
  (match label with
   | Some l -> Hashtbl.replace st.spans (key_process ~arch l) sp
   | None -> ());
  let sensitivity =
    if peek st = Lexer.Lparen then begin
      advance st;
      let l = ident_list st in
      expect st Lexer.Rparen;
      l
    end
    else []
  in
  if at_kw st "is" then advance st;
  let rec decls acc =
    match parse_object_decl st with
    | Some d -> decls (d :: acc)
    | None -> List.rev acc
  in
  let proc_decls = decls [] in
  expect_kw st "begin";
  let body = parse_stmts st in
  expect_kw st "end";
  expect_kw st "process";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  Ast.Proc { proc_label = label; sensitivity; proc_decls; body }

let parse_instance st ~arch label =
  let component = ident st in
  let generic_map =
    if at_kw st "generic" then begin
      advance st;
      expect_kw st "map";
      expect st Lexer.Lparen;
      let a = parse_assoc st in
      expect st Lexer.Rparen;
      a
    end
    else []
  in
  let port_map =
    if at_kw st "port" then begin
      advance st;
      expect_kw st "map";
      expect st Lexer.Lparen;
      let a = parse_assoc st in
      expect st Lexer.Rparen;
      a
    end
    else []
  in
  expect st Lexer.Semi;
  ignore arch;
  Ast.Instance { inst_label = label; component; generic_map; port_map }

let parse_concurrent st ~arch =
  if at_kw st "process" then parse_process st ~arch None
  else begin
    let sp = cur_span st in
    let name = ident st in
    match peek st with
    | Lexer.Colon ->
      advance st;
      Hashtbl.replace st.spans (key_instance ~arch name) sp;
      if at_kw st "process" then parse_process st ~arch (Some name)
      else parse_instance st ~arch name
    | Lexer.Leq ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Semi;
      Ast.Concurrent_assign (name, e)
    | t ->
      fail st "expected : or <= after %s, found %s" name
        (Lexer.token_to_string t)
  end

(* -- design units -------------------------------------------------------- *)

let parse_generics st =
  if at_kw st "generic" then begin
    advance st;
    expect st Lexer.Lparen;
    let rec go acc =
      let name = ident st in
      expect st Lexer.Colon;
      let ty = ident st in
      let default = parse_init_opt st in
      let g = { Ast.gen_name = name; gen_type = ty; gen_default = default } in
      if peek st = Lexer.Semi then begin
        advance st;
        go (g :: acc)
      end
      else List.rev (g :: acc)
    in
    let gs = go [] in
    expect st Lexer.Rparen;
    expect st Lexer.Semi;
    gs
  end
  else []

let parse_ports st =
  if at_kw st "port" then begin
    advance st;
    expect st Lexer.Lparen;
    let rec go acc =
      let names = ident_list st in
      expect st Lexer.Colon;
      let mode =
        if at_kw st "in" then (advance st; Ast.In)
        else if at_kw st "out" then (advance st; Ast.Out)
        else if at_kw st "inout" then (advance st; Ast.Inout)
        else Ast.In
      in
      let ty = parse_type_name st in
      let default = parse_init_opt st in
      let ps =
        List.map
          (fun n ->
            { Ast.port_name = n; mode; port_type = ty;
              port_default = default })
          names
      in
      let acc = acc @ ps in
      if peek st = Lexer.Semi then begin
        advance st;
        go acc
      end
      else acc
    in
    let ps = go [] in
    expect st Lexer.Rparen;
    expect st Lexer.Semi;
    ps
  end
  else []

let parse_entity st =
  expect_kw st "entity";
  let sp = cur_span st in
  let name = ident st in
  Hashtbl.replace st.spans (key_entity name) sp;
  expect_kw st "is";
  let generics = parse_generics st in
  let ports = parse_ports st in
  expect_kw st "end";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | Lexer.Id s when lc s = "entity" -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  Ast.Entity { ent_name = name; generics; ports }

let parse_architecture st =
  expect_kw st "architecture";
  let sp = cur_span st in
  let arch_name = ident st in
  Hashtbl.replace st.spans (key_architecture arch_name) sp;
  expect_kw st "of";
  let arch_entity = ident st in
  expect_kw st "is";
  let rec decls acc =
    match parse_object_decl st with
    | Some d -> decls (d :: acc)
    | None -> List.rev acc
  in
  let arch_decls = decls [] in
  expect_kw st "begin";
  let rec stmts acc =
    check_fuel st;
    if at_kw st "end" || peek st = Lexer.Eof then List.rev acc
    else begin
      let before = st.pos in
      match parse_concurrent st ~arch:arch_name with
      | s -> stmts (s :: acc)
      | exception Syntax_err d ->
        record st d;
        sync_stmt st before;
        stmts acc
    end
  in
  let arch_stmts = stmts [] in
  expect_kw st "end";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  Ast.Architecture { arch_name; arch_entity; arch_decls; arch_stmts }

let parse_subprogram st =
  expect_kw st "function";
  let fun_name = ident st in
  expect st Lexer.Lparen;
  let rec params acc =
    let names = ident_list st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    let p = (names, t) in
    if peek st = Lexer.Semi then begin
      advance st;
      params (p :: acc)
    end
    else List.rev (p :: acc)
  in
  let fun_params = params [] in
  expect st Lexer.Rparen;
  expect_kw st "return";
  let fun_return = ident st in
  if at_kw st "is" then begin
    advance st;
    let rec decls acc =
      match parse_object_decl st with
      | Some d -> decls (d :: acc)
      | None -> List.rev acc
    in
    let fun_decls = decls [] in
    expect_kw st "begin";
    let fun_body = parse_stmts st in
    expect_kw st "end";
    (match peek st with
     | Lexer.Id s when not (is_keyword s) -> advance st
     | _ -> ());
    expect st Lexer.Semi;
    Ast.Pkg_function { fun_name; fun_params; fun_return; fun_decls; fun_body }
  end
  else begin
    expect st Lexer.Semi;
    Ast.Pkg_function_decl fun_name
  end

let parse_package_decl st =
  if at_kw st "type" then begin
    advance st;
    let name = ident st in
    expect_kw st "is";
    if at_kw st "array" then begin
      advance st;
      expect st Lexer.Lparen;
      let index = ident st in
      expect_kw st "range";
      expect st Lexer.Lt;
      expect st Lexer.Gt;
      expect st Lexer.Rparen;
      expect_kw st "of";
      let elem = ident st in
      expect st Lexer.Semi;
      Some (Ast.Pkg_type_array (name, index, elem))
    end
    else begin
      expect st Lexer.Lparen;
      let items = ident_list st in
      expect st Lexer.Rparen;
      expect st Lexer.Semi;
      Some (Ast.Pkg_type_enum (name, items))
    end
  end
  else if at_kw st "subtype" then begin
    advance st;
    let name = ident st in
    expect_kw st "is";
    let t = parse_type_name st in
    expect st Lexer.Semi;
    Some (Ast.Pkg_subtype (name, t))
  end
  else if at_kw st "constant" then begin
    advance st;
    let name = ident st in
    expect st Lexer.Colon;
    let t = parse_type_name st in
    expect st Lexer.Assign;
    let e = parse_expr st in
    expect st Lexer.Semi;
    Some (Ast.Pkg_constant (name, t, e))
  end
  else if at_kw st "function" then Some (parse_subprogram st)
  else None

let parse_package st =
  expect_kw st "package";
  let is_body = at_kw st "body" in
  if is_body then advance st;
  let sp = cur_span st in
  let name = ident st in
  Hashtbl.replace st.spans (key_package name) sp;
  expect_kw st "is";
  let rec decls acc =
    check_fuel st;
    match parse_package_decl st with
    | Some d -> decls (d :: acc)
    | None -> List.rev acc
  in
  let ds = decls [] in
  expect_kw st "end";
  (match peek st with
   | Lexer.Id s when not (is_keyword s) -> advance st
   | _ -> ());
  expect st Lexer.Semi;
  if is_body then Ast.Package_body { pkgb_name = name; pkgb_decls = ds }
  else Ast.Package { pkg_name = name; pkg_decls = ds }

let parse_use st =
  expect_kw st "use";
  let buf = Buffer.create 16 in
  Buffer.add_string buf (ident st);
  let rec go () =
    match peek st with
    | Lexer.Dot ->
      advance st;
      Buffer.add_char buf '.';
      Buffer.add_string buf (ident st);
      go ()
    | _ -> ()
  in
  go ();
  expect st Lexer.Semi;
  Ast.Use_clause (Buffer.contents buf)

let parse_design_file st =
  let acc = ref [] in
  let unit_guard f =
    let before = st.pos in
    match f st with
    | u -> acc := u :: !acc
    | exception Syntax_err d ->
      record st d;
      sync_unit st before
  in
  (try
     let continue = ref true in
     while !continue do
       check_fuel st;
       if peek st = Lexer.Eof then continue := false
       else if at_kw st "entity" then unit_guard parse_entity
       else if at_kw st "architecture" then unit_guard parse_architecture
       else if at_kw st "package" then unit_guard parse_package
       else if at_kw st "use" then unit_guard parse_use
       else
         unit_guard (fun st ->
             fail st "expected a design unit, found %s"
               (Lexer.token_to_string (peek st)))
     done
   with Give_up -> ());
  List.rev !acc

let state_of_tokens ?(limits = Diag.Limits.default) ?file toks lex_diags =
  let toks =
    (* a missing trailing Eof (arbitrary token streams) is tolerated *)
    let n = Array.length toks in
    if n > 0 && fst toks.(n - 1) = Lexer.Eof then toks
    else
      Array.append toks [| (Lexer.Eof, { Lexer.line = 1; col = 1 }) |]
  in
  { toks;
    pos = 0;
    diags = List.rev lex_diags;
    errors = List.length (List.filter Diag.(fun d -> d.severity = Error) lex_diags);
    fuel = 64 + (16 * Array.length toks);
    depth = 0;
    max_depth = limits.Diag.Limits.max_nesting;
    file;
    spans = Hashtbl.create 32 }

let result_of st units =
  { units; diags = List.rev st.diags; spans = st.spans }

let parse_tokens ?limits ?file toks =
  let st = state_of_tokens ?limits ?file toks [] in
  let units = parse_design_file st in
  result_of st units

let parse ?(limits = Diag.Limits.default) ?file src =
  let toks, lex_diags = Lexer.tokenize_all ~limits ?file src in
  let st = state_of_tokens ~limits ?file toks lex_diags in
  let units = parse_design_file st in
  result_of st units

(* -- compatibility surface ------------------------------------------------- *)

let raise_first diags =
  match
    List.find_opt (fun d -> d.Diag.severity = Diag.Error)
      (List.stable_sort Diag.by_position diags)
  with
  | Some d ->
    let line = match d.Diag.span with Some s -> s.Diag.line | None -> 0 in
    raise (Parse_error (line, d.Diag.message))
  | None -> ()

let design_file src =
  let r = parse ~limits:Diag.Limits.unlimited src in
  raise_first r.diags;
  r.units

let expr src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (l, m) -> raise (Parse_error (l, m))
  in
  let toks = Array.map (fun (t, l) -> (t, { Lexer.line = l; col = 1 })) toks in
  let st = state_of_tokens ~limits:Diag.Limits.unlimited toks [] in
  match
    (fun () ->
      let e = parse_expr st in
      if peek st <> Lexer.Eof then fail st "trailing tokens after expression";
      e)
      ()
  with
  | e -> e
  | exception Syntax_err d ->
    let line = match d.Diag.span with Some s -> s.Diag.line | None -> 0 in
    raise (Parse_error (line, d.Diag.message))
