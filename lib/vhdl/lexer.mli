(** Lexer for the VHDL subset.

    The lexer is {e total} over arbitrary bytes: {!tokenize_all} never
    raises, whatever the input — unexpected bytes, unterminated
    strings and oversized literals come back as located diagnostics,
    and resource guards ({!Csrtl_diag.Diag.Limits}) cap the bytes read
    and tokens produced so hostile input cannot exhaust memory. *)

type token =
  | Id of string  (** identifier, original case preserved *)
  | Num of int
  | Str of string
  | Tick
  | Lparen | Rparen | Semi | Colon | Comma
  | Arrow  (** [=>] *)
  | Assign  (** [:=] *)
  | Leq  (** [<=], both assignment and comparison *)
  | Eq | Neq | Lt | Gt | Geq
  | Plus | Minus | Star | Amp | Dot
  | Eof

type pos = { line : int; col : int }
(** 1-based source position of the token's first byte. *)

val tokenize_all :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string -> string ->
  (token * pos) array * Csrtl_diag.Diag.t list
(** Tokens with positions; comments ([-- ...]) are skipped.  Total:
    the array always ends in {!Eof} and lexical problems are reported
    as diagnostics (rules [vhdl.lex], [limits.input-bytes],
    [limits.tokens]) rather than exceptions.  Bytes that cannot start
    a token are skipped after being diagnosed. *)

exception Lex_error of int * string
(** Line number and message — compatibility surface for {!tokenize}. *)

val tokenize : string -> (token * int) array
(** Tokens with their 1-based line numbers.  Raises {!Lex_error} on
    the first lexical diagnostic; prefer {!tokenize_all} on untrusted
    input. *)

val token_to_string : token -> string
