open Csrtl_kernel

exception Elab_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Elab_error m)) fmt
let lc = String.lowercase_ascii

type t = {
  kernel : Scheduler.t;
  lookup : string -> Signal.t;
  failures : string list ref;
}

(* Interpreter values: the subset computes over integers; array values
   appear only inside resolution-function calls. *)
type value = V_int of int | V_arr of int array

let as_int = function
  | V_int n -> n
  | V_arr _ -> fail "array value where an integer is expected"

(* Static design database. *)
type design = {
  enums : (string, string array) Hashtbl.t;  (* type -> constructors *)
  enum_lits : (string, int) Hashtbl.t;  (* constructor -> position *)
  consts : (string, int) Hashtbl.t;
  funs : (string, Ast.subprogram) Hashtbl.t;
  entities : (string, Ast.generic list * Ast.port list) Hashtbl.t;
  archs : (string, Ast.object_decl list * Ast.concurrent list) Hashtbl.t;
      (* entity -> (decls, stmts) of its last architecture *)
}

let load_design (units : Ast.design_file) =
  let d =
    { enums = Hashtbl.create 8; enum_lits = Hashtbl.create 16;
      consts = Hashtbl.create 16; funs = Hashtbl.create 8;
      entities = Hashtbl.create 16; archs = Hashtbl.create 16 }
  in
  let load_pkg_decl decl =
    match decl with
    | Ast.Pkg_type_enum (n, items) ->
      Hashtbl.replace d.enums (lc n) (Array.of_list items);
      List.iteri (fun i item -> Hashtbl.replace d.enum_lits (lc item) i) items
    | Ast.Pkg_constant (n, _, e) ->
      let v =
        match e with
        | Ast.Int n -> n
        | Ast.Unop (Ast.Neg, Ast.Int n) -> -n
        | _ -> fail "package constant %s must be an integer literal" n
      in
      Hashtbl.replace d.consts (lc n) v
    | Ast.Pkg_function f -> Hashtbl.replace d.funs (lc f.Ast.fun_name) f
    | Ast.Pkg_type_array _ | Ast.Pkg_subtype _ | Ast.Pkg_function_decl _
    | Ast.Pkg_comment _ ->
      ()
  in
  List.iter
    (fun u ->
      match u with
      | Ast.Package { pkg_decls; _ } | Ast.Package_body { pkgb_decls = pkg_decls; _ }
        ->
        List.iter load_pkg_decl pkg_decls
      | Ast.Entity { ent_name; generics; ports } ->
        Hashtbl.replace d.entities (lc ent_name) (generics, ports)
      | Ast.Architecture { arch_entity; arch_decls; arch_stmts; _ } ->
        Hashtbl.replace d.archs (lc arch_entity) (arch_decls, arch_stmts)
      | Ast.Use_clause _ | Ast.Comment _ -> ())
    units;
  d

(* One elaborated scope: constants/generics and visible signals. *)
type scope = {
  design : design;
  k : Scheduler.t;
  values : (string, int) Hashtbl.t;  (* generics + package constants *)
  sigs : (string, Signal.t) Hashtbl.t;
  failures : string list ref;
}

exception Return_value of value

let rec eval_expr (sc : scope) (locals : (string, value ref) Hashtbl.t) e :
  value =
  let int_of e = as_int (eval_expr sc locals e) in
  match e with
  | Ast.Int n -> V_int n
  | Ast.Str _ -> fail "string value in an expression"
  | Ast.Paren e -> eval_expr sc locals e
  | Ast.Name n -> (
      let n = lc n in
      match Hashtbl.find_opt locals n with
      | Some r -> !r
      | None ->
        (match Hashtbl.find_opt sc.values n with
         | Some v -> V_int v
         | None ->
           (match Hashtbl.find_opt sc.sigs n with
            | Some s -> V_int (Signal.value s)
            | None ->
              (match Hashtbl.find_opt sc.design.enum_lits n with
               | Some i -> V_int i
               | None ->
                 (match Hashtbl.find_opt sc.design.consts n with
                  | Some v -> V_int v
                  | None -> fail "unbound name %s" n)))))
  | Ast.Attr (n, attr) -> (
      match Hashtbl.find_opt locals (lc n) with
      | Some { contents = V_arr a } -> (
          match lc attr with
          | "low" -> V_int 0
          | "high" -> V_int (Array.length a - 1)
          | "length" -> V_int (Array.length a)
          | _ -> fail "unsupported array attribute '%s" attr)
      | _ -> (
          match Hashtbl.find_opt sc.design.enums (lc n) with
          | Some items -> (
              match lc attr with
              | "low" | "left" -> V_int 0
              | "high" | "right" -> V_int (Array.length items - 1)
              | _ -> fail "unsupported attribute %s'%s" n attr)
          | None -> fail "attribute on unknown name %s" n))
  | Ast.Attr_call (n, attr, [ arg ]) -> (
      match Hashtbl.find_opt sc.design.enums (lc n), lc attr with
      | Some items, "succ" ->
        let v = int_of arg in
        if v + 1 >= Array.length items then
          fail "%s'Succ beyond the last constructor" n
        else V_int (v + 1)
      | Some items, "pred" ->
        let v = int_of arg in
        if v = 0 then fail "%s'Pred below the first constructor" n
        else V_int (v - 1) |> fun x -> ignore items; x
      | _, _ -> fail "unsupported attribute call %s'%s" n attr)
  | Ast.Attr_call (n, attr, _) ->
    fail "attribute call %s'%s arity" n attr
  | Ast.Index (n, i) -> (
      (* array indexing when the name is a local array, otherwise a
         unary function call *)
      match Hashtbl.find_opt locals (lc n) with
      | Some { contents = V_arr a } ->
        let idx = int_of i in
        if idx < 0 || idx >= Array.length a then
          fail "index %d out of bounds for %s" idx n
        else V_int a.(idx)
      | _ -> call_function sc n [ eval_expr sc locals i ])
  | Ast.Call (f, args) ->
    call_function sc f (List.map (eval_expr sc locals) args)
  | Ast.Unop (Ast.Neg, e) -> V_int (-int_of e)
  | Ast.Unop (Ast.Not, e) -> V_int (if int_of e = 0 then 1 else 0)
  | Ast.Binop (op, a, b) ->
    let bi f = V_int (f (int_of a) (int_of b)) in
    let bb f = V_int (if f (int_of a) (int_of b) then 1 else 0) in
    (match op with
     | Ast.Add -> bi ( + )
     | Ast.Sub -> bi ( - )
     | Ast.Mul -> bi ( * )
     | Ast.Eq -> bb ( = )
     | Ast.Neq -> bb ( <> )
     | Ast.Lt -> bb ( < )
     | Ast.Le -> bb ( <= )
     | Ast.Gt -> bb ( > )
     | Ast.Ge -> bb ( >= )
     | Ast.And -> bb (fun x y -> x <> 0 && y <> 0)
     | Ast.Or -> bb (fun x y -> x <> 0 || y <> 0)
     | Ast.Concat -> fail "concatenation is outside the subset")

(* The emitted architectures reference helper functions for
   operations VHDL expressions cannot spell (shifts, bitwise, the
   fixed-point multiply); like a simulator's builtin library, the
   elaborator supplies their semantics directly. *)
and builtin name (args : value list) : value option =
  let prefix = "csrtl_" in
  let n = String.length prefix in
  if String.length name <= n || String.sub (lc name) 0 n <> prefix then None
  else begin
    let base = String.sub (lc name) n (String.length name - n) in
    let candidates =
      base
      :: (match String.rindex_opt base '_' with
          | Some i ->
            [ String.sub base 0 i ^ ":"
              ^ String.sub base (i + 1) (String.length base - i - 1) ]
          | None -> [])
    in
    let op = List.find_map Csrtl_core.Ops.of_string candidates in
    match op with
    | None -> None
    | Some op ->
      let ints = Array.of_list (List.map as_int args) in
      let arity = Csrtl_core.Ops.arity op in
      let ints =
        if Array.length ints >= arity then Array.sub ints 0 (max arity 1)
        else ints
      in
      Some (V_int (Csrtl_core.Ops.eval op ints))
  end

and call_function (sc : scope) name (args : value list) : value =
  match Hashtbl.find_opt sc.design.funs (lc name) with
  | None -> (
      match builtin name args with
      | Some v -> v
      | None -> fail "call of undeclared function %s" name)
  | Some f ->
    let locals : (string, value ref) Hashtbl.t = Hashtbl.create 8 in
    let formals = List.concat_map (fun (ns, _) -> ns) f.Ast.fun_params in
    (try
       List.iter2
         (fun formal arg -> Hashtbl.replace locals (lc formal) (ref arg))
         formals args
     with Invalid_argument _ ->
       fail "function %s arity mismatch" name);
    List.iter
      (fun d ->
        match d with
        | Ast.Variable_decl (ns, _, init) ->
          let v =
            match init with
            | Some e -> eval_expr sc locals e
            | None -> V_int 0
          in
          List.iter (fun n -> Hashtbl.replace locals (lc n) (ref v)) ns
        | Ast.Signal_decl _ | Ast.Constant_decl _ ->
          fail "unsupported declaration in function %s" name)
      f.Ast.fun_decls;
    (try
       exec_function_body sc locals f.Ast.fun_body;
       fail "function %s returned without a value" name
     with Return_value v -> v)

and exec_function_body sc locals stmts =
  List.iter
    (fun (s : Ast.stmt) ->
      match s with
      | Ast.Var_assign (n, e) -> (
          match Hashtbl.find_opt locals (lc n) with
          | Some r -> r := eval_expr sc locals e
          | None -> fail "assignment to undeclared variable %s" n)
      | Ast.If (branches, els) ->
        let rec pick = function
          | [] -> exec_function_body sc locals els
          | (c, body) :: rest ->
            if as_int (eval_expr sc locals c) <> 0 then
              exec_function_body sc locals body
            else pick rest
        in
        pick branches
      | Ast.For (v, lo, hi, body) ->
        let lo = as_int (eval_expr sc locals lo) in
        let hi = as_int (eval_expr sc locals hi) in
        let r = ref (V_int lo) in
        Hashtbl.replace locals (lc v) r;
        for i = lo to hi do
          r := V_int i;
          exec_function_body sc locals body
        done;
        Hashtbl.remove locals (lc v)
      | Ast.Return e -> raise (Return_value (eval_expr sc locals e))
      | Ast.Null_stmt -> ()
      | Ast.Assert_stmt _ | Ast.Wait | Ast.Wait_on _ | Ast.Wait_until _
      | Ast.Signal_assign _ ->
        fail "unsupported statement in a function body")
    stmts

(* Default initial value by type: VHDL would use Integer'left; the
   subset's integers are DISC-based, so DISC is the faithful default
   for Integer, 0 for Natural, the first constructor for enums. *)
let default_init (sc : scope) (ty : Ast.type_name) =
  match lc ty.Ast.base with
  | "integer" ->
    Option.value ~default:(-1) (Hashtbl.find_opt sc.design.consts "disc")
  | "natural" -> 0
  | other -> if Hashtbl.mem sc.design.enums other then 0 else 0

let signals_in_expr (sc : scope) e =
  let rec names (e : Ast.expr) =
    match e with
    | Ast.Int _ | Ast.Str _ -> []
    | Ast.Name n -> [ n ]
    | Ast.Attr _ -> []
    | Ast.Attr_call (_, _, args) -> List.concat_map names args
    | Ast.Index (_, i) -> names i
    | Ast.Call (_, args) -> List.concat_map names args
    | Ast.Binop (_, a, b) -> names a @ names b
    | Ast.Unop (_, a) -> names a
    | Ast.Paren a -> names a
  in
  List.filter_map
    (fun n -> Hashtbl.find_opt sc.sigs (lc n))
    (names e)
  |> List.sort_uniq compare

(* Execute one process statement inside a kernel process. *)
let rec exec_stmt (sc : scope) locals (s : Ast.stmt) =
  match s with
  | Ast.Wait -> Process.wait_forever ()
  | Ast.Wait_on names ->
    let sigs =
      List.map
        (fun n ->
          match Hashtbl.find_opt sc.sigs (lc n) with
          | Some s -> s
          | None -> fail "wait on unknown signal %s" n)
        names
    in
    Process.wait_on sigs
  | Ast.Wait_until e -> (
      (* Fast path for the paper's TRANS/REG idiom: conditions of the
         shape [SIG = const] or [SIG1 = c1 and SIG2 = c2] wake through
         the kernel's value-keyed index instead of re-evaluating the
         interpreted predicate on every control event. *)
      let is_const_rhs rhs =
        match rhs with
        | Ast.Int _ | Ast.Attr _ -> true
        | Ast.Name m -> not (Hashtbl.mem sc.sigs (lc m))
        | _ -> false
      in
      let keyed_pair n rhs =
        if Hashtbl.mem sc.sigs (lc n) && is_const_rhs rhs then
          match eval_expr sc locals rhs with
          | V_int v -> Some (lc n, Hashtbl.find sc.sigs (lc n), v)
          | V_arr _ -> None
          | exception Elab_error _ -> None
        else None
      in
      let keyed_leg leg =
        match leg with
        | Ast.Binop (Ast.Eq, Ast.Name n, rhs) -> keyed_pair n rhs
        | Ast.Binop (Ast.Eq, lhs, Ast.Name n) when is_const_rhs lhs ->
          keyed_pair n lhs
        | _ -> None
      in
      let fast =
        match e with
        | Ast.Binop (Ast.And, a, b) -> (
            (* sound only for the paper's idiom [CS = S and PH = P]:
               CS and PH receive their events in the same delta cycle
               (the CONTROLLER drives both), so keying on PH with CS
               as the extra condition cannot miss a wake.  Arbitrary
               conjunctions fall back to the predicate path. *)
            match keyed_leg a, keyed_leg b with
            | Some ("cs", cs_sig, v1), Some ("ph", s2, v2) ->
              Some (s2, v2, Some (cs_sig, v1))
            | _, _ -> None)
        | _ -> (
            (* a single equality over one signal is always sound: the
               condition can only change on that signal's events *)
            match keyed_leg e with
            | Some (_, s, v) -> Some (s, v, None)
            | None -> None)
      in
      match fast with
      | Some (s, v, extra) ->
        (* loop: the keyed wake guarantees [s = v] and the extra
           equality, which is the whole condition *)
        let rec wait () =
          Process.wait_keyed ?extra s v;
          if as_int (eval_expr sc locals e) = 0 then wait ()
        in
        wait ()
      | None ->
        let sigs = signals_in_expr sc e in
        if sigs = [] then
          fail "wait until with no signals in the condition";
        Process.wait_until sigs (fun () ->
            as_int (eval_expr sc locals e) <> 0))
  | Ast.Signal_assign (n, e) -> (
      match Hashtbl.find_opt sc.sigs (lc n) with
      | Some s -> Scheduler.assign sc.k s (as_int (eval_expr sc locals e))
      | None -> fail "assignment to unknown signal %s" n)
  | Ast.Var_assign (n, e) -> (
      match Hashtbl.find_opt locals (lc n) with
      | Some r -> r := eval_expr sc locals e
      | None -> fail "assignment to undeclared variable %s" n)
  | Ast.If (branches, els) ->
    let rec pick = function
      | [] -> List.iter (exec_stmt sc locals) els
      | (c, body) :: rest ->
        if as_int (eval_expr sc locals c) <> 0 then
          List.iter (exec_stmt sc locals) body
        else pick rest
    in
    pick branches
  | Ast.For (v, lo, hi, body) ->
    let lo = as_int (eval_expr sc locals lo) in
    let hi = as_int (eval_expr sc locals hi) in
    let r = ref (V_int lo) in
    Hashtbl.replace locals (lc v) r;
    for i = lo to hi do
      r := V_int i;
      List.iter (exec_stmt sc locals) body
    done;
    Hashtbl.remove locals (lc v)
  | Ast.Assert_stmt (c, msg) ->
    if as_int (eval_expr sc locals c) = 0 then
      sc.failures := msg :: !(sc.failures)
  | Ast.Return _ -> fail "return outside a function"
  | Ast.Null_stmt -> ()

let add_process (sc : scope) (p : Ast.process) =
  let locals : (string, value ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun d ->
      match d with
      | Ast.Variable_decl (ns, _, init) ->
        List.iter
          (fun n ->
            let v =
              match init with
              | Some e -> eval_expr sc locals e
              | None -> V_int 0
            in
            Hashtbl.replace locals (lc n) (ref v))
          ns
      | Ast.Signal_decl _ | Ast.Constant_decl _ ->
        fail "unsupported declaration in a process")
    p.Ast.proc_decls;
  let name = Option.value ~default:"process" p.Ast.proc_label in
  match p.Ast.sensitivity with
  | [] ->
    ignore
      (Scheduler.add_process sc.k ~name (fun () ->
           while true do
             List.iter (exec_stmt sc locals) p.Ast.body
           done))
  | sens ->
    let sigs =
      List.map
        (fun n ->
          match Hashtbl.find_opt sc.sigs (lc n) with
          | Some s -> s
          | None -> fail "sensitivity to unknown signal %s" n)
        sens
    in
    ignore
      (Scheduler.add_process sc.k ~name (fun () ->
           while true do
             List.iter (exec_stmt sc locals) p.Ast.body;
             Process.wait_on sigs
           done))

(* Elaborate the architecture of [entity] into a fresh scope whose
   signal table starts from the port connections. *)
let rec elaborate_entity (d : design) k failures ~prefix entity
    ~(generic_values : (string * int) list)
    ~(port_signals : (string * Signal.t) list) =
  let decls, stmts =
    match Hashtbl.find_opt d.archs (lc entity) with
    | Some a -> a
    | None -> fail "no architecture for entity %s" entity
  in
  let sc =
    { design = d; k; values = Hashtbl.create 8; sigs = Hashtbl.create 16;
      failures }
  in
  List.iter
    (fun (n, v) -> Hashtbl.replace sc.values (lc n) v)
    generic_values;
  List.iter
    (fun (n, s) -> Hashtbl.replace sc.sigs (lc n) s)
    port_signals;
  (* architecture signals *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Signal_decl (names, ty, init) ->
        let resolution =
          match ty.Ast.resolution with
          | None -> None
          | Some f ->
            let fname = f in
            Some
              (Types.Fold
                 (fun arr ->
                   as_int (call_function sc fname [ V_arr arr ])))
        in
        let init_v =
          match init with
          | Some e -> as_int (eval_expr sc (Hashtbl.create 1) e)
          | None -> default_init sc ty
        in
        List.iter
          (fun n ->
            let s =
              Scheduler.signal k ?resolution ~name:(prefix ^ n) ~init:init_v
                ()
            in
            Hashtbl.replace sc.sigs (lc n) s)
          names
      | Ast.Constant_decl (n, _, e) ->
        Hashtbl.replace sc.values (lc n)
          (as_int (eval_expr sc (Hashtbl.create 1) e))
      | Ast.Variable_decl _ ->
        fail "variable declaration outside a process")
    decls;
  (* concurrent statements *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Proc p -> add_process sc p
      | Ast.Concurrent_assign (n, e) ->
        (* a <= expr;  ==  process (signals of expr) begin a <= expr; *)
        let sigs = signals_in_expr sc e in
        let target =
          match Hashtbl.find_opt sc.sigs (lc n) with
          | Some s -> s
          | None -> fail "concurrent assignment to unknown signal %s" n
        in
        ignore
          (Scheduler.add_process sc.k ~name:("assign_" ^ n) (fun () ->
               while true do
                 Scheduler.assign sc.k target
                   (as_int (eval_expr sc (Hashtbl.create 1) e));
                 if sigs = [] then Process.wait_forever ()
                 else Process.wait_on sigs
               done))
      | Ast.Instance { inst_label; component; generic_map; port_map } ->
        let gens, ports =
          match Hashtbl.find_opt d.entities (lc component) with
          | Some x -> x
          | None -> fail "instantiation of unknown entity %s" component
        in
        let bind formals actuals what =
          (* positional or named association *)
          List.mapi
            (fun i (formal : string) ->
              let actual =
                match
                  List.find_opt
                    (fun (name, _) ->
                      match name with
                      | Some n -> lc n = lc formal
                      | None -> false)
                    actuals
                with
                | Some (_, e) -> Some e
                | None ->
                  (match List.nth_opt actuals i with
                   | Some (None, e) -> Some e
                   | _ -> None)
              in
              (formal, actual, what))
            formals
        in
        let generic_values =
          List.map
            (fun (formal, actual, _) ->
              match actual with
              | Some e ->
                (formal, as_int (eval_expr sc (Hashtbl.create 1) e))
              | None -> fail "generic %s of %s unbound" formal inst_label)
            (bind (List.map (fun g -> g.Ast.gen_name) gens) generic_map
               "generic")
        in
        let port_signals =
          List.map
            (fun (formal, actual, _) ->
              match actual with
              | Some (Ast.Name n) -> (
                  match Hashtbl.find_opt sc.sigs (lc n) with
                  | Some s -> (formal, s)
                  | None -> fail "port actual %s of %s unknown" n inst_label)
              | Some e ->
                (* a literal actual: materialize a constant signal *)
                let v = as_int (eval_expr sc (Hashtbl.create 1) e) in
                let s =
                  Scheduler.signal k
                    ~name:(prefix ^ inst_label ^ "." ^ formal)
                    ~init:v ()
                in
                (formal, s)
              | None ->
                (* open port: a fresh local signal with the default *)
                let port =
                  List.find (fun p -> lc p.Ast.port_name = lc formal) ports
                in
                let init =
                  match port.Ast.port_default with
                  | Some e -> as_int (eval_expr sc (Hashtbl.create 1) e)
                  | None -> default_init sc port.Ast.port_type
                in
                let s =
                  Scheduler.signal k
                    ~name:(prefix ^ inst_label ^ "." ^ formal)
                    ~init ()
                in
                (formal, s))
            (bind
               (List.map (fun p -> p.Ast.port_name) ports)
               port_map "port")
        in
        ignore
          (elaborate_entity d k failures
             ~prefix:(prefix ^ inst_label ^ ".")
             component ~generic_values ~port_signals))
    stmts;
  sc

let elaborate ?(generics = []) ~top units =
  let d = load_design units in
  let k = Scheduler.create () in
  let failures = ref [] in
  let _, ports =
    match Hashtbl.find_opt d.entities (lc top) with
    | Some x -> x
    | None -> fail "no entity %s" top
  in
  (* top ports become free-standing signals, drivable externally *)
  let tmp_sc =
    { design = d; k; values = Hashtbl.create 1; sigs = Hashtbl.create 1;
      failures }
  in
  let port_signals =
    List.map
      (fun (p : Ast.port) ->
        let init =
          match p.Ast.port_default with
          | Some e -> as_int (eval_expr tmp_sc (Hashtbl.create 1) e)
          | None -> default_init tmp_sc p.Ast.port_type
        in
        ( p.Ast.port_name,
          Scheduler.signal k ~name:p.Ast.port_name ~init () ))
      ports
  in
  let sc =
    elaborate_entity d k failures ~prefix:"" top ~generic_values:generics
      ~port_signals
  in
  { kernel = k;
    lookup =
      (fun n ->
        match Hashtbl.find_opt sc.sigs (lc n) with
        | Some s -> s
        | None -> raise Not_found);
    failures =
      (failures := List.rev !failures;
       failures) }

let run ?(max_cycles = 1_000_000) t =
  let (_ : Scheduler.run_result) = Scheduler.run ~max_cycles t.kernel in
  t.failures := List.rev !(t.failures)

let elaborate_and_run ?generics ~top src =
  match Parser.design_file src with
  | exception Parser.Parse_error (l, m) ->
    Error (Printf.sprintf "parse error at line %d: %s" l m)
  | units -> (
      match elaborate ?generics ~top units with
      | exception Elab_error m -> Error m
      | t ->
        (match run t with
         | () -> Ok t
         | exception Elab_error m -> Error m))
