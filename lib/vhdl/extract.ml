module C = Csrtl_core

exception Extract_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Extract_error m)) fmt

let pragma_lines src =
  String.split_on_char '\n' src
  |> List.filter_map (fun line ->
         let line = String.trim line in
         let prefix = "-- csrtl " in
         let n = String.length prefix in
         if String.length line > n && String.sub line 0 n = prefix then
           Some (String.sub line n (String.length line - n))
         else None)

(* Skeleton model (resources, no transfers) from pragma payloads. *)
let skeleton pragmas =
  let text = String.concat "\n" ("csmax 1" :: pragmas) in
  try C.Rtm.of_string text
  with C.Rtm.Parse_error (l, m) ->
    fail "bad csrtl pragma (line %d of pragma block): %s" l m

type classification =
  | Endpoint of C.Transfer.endpoint
  | Op_port of string  (* functional unit name *)
  | Control  (* CS / PH *)

let classify_table (m : C.Model.t) =
  let table = Hashtbl.create 32 in
  let put name c = Hashtbl.replace table (Emit.mangle name) c in
  put "CS" Control;
  put "PH" Control;
  List.iter (fun b -> put b (Endpoint (C.Transfer.Bus b))) m.buses;
  List.iter
    (fun (r : C.Model.register) ->
      put (r.reg_name ^ ".in") (Endpoint (C.Transfer.Reg_in r.reg_name));
      put (r.reg_name ^ ".out") (Endpoint (C.Transfer.Reg_out r.reg_name)))
    m.registers;
  List.iter
    (fun (f : C.Model.fu) ->
      put (f.fu_name ^ ".in1") (Endpoint (C.Transfer.Fu_in (f.fu_name, 1)));
      put (f.fu_name ^ ".in2") (Endpoint (C.Transfer.Fu_in (f.fu_name, 2)));
      put (f.fu_name ^ ".out") (Endpoint (C.Transfer.Fu_out f.fu_name));
      put (f.fu_name ^ ".op") (Op_port f.fu_name))
    m.fus;
  List.iter
    (fun (i : C.Model.input) ->
      put i.in_name (Endpoint (C.Transfer.In_port i.in_name)))
    m.inputs;
  List.iter (fun o -> put o (Endpoint (C.Transfer.Out_port o))) m.outputs;
  table

let positional assoc_list =
  List.map
    (fun (name, e) ->
      match name with
      | None -> e
      | Some n ->
        fail "named associations are not produced by Emit (%s =>)" n)
    assoc_list

let int_of_expr = function
  | Ast.Int n -> Some n
  | Ast.Unop (Ast.Neg, Ast.Int n) -> Some (-n)
  | _ -> None

let phase_of_expr = function
  | Ast.Name n -> C.Phase.of_string (String.lowercase_ascii n)
  | _ -> None

let model_of_ast ~pragmas units =
  let skel = skeleton pragmas in
  let table = classify_table skel in
  let top_name = Emit.mangle skel.name in
  let arch_stmts =
    List.find_map
      (function
        | Ast.Architecture { arch_entity; arch_stmts; _ }
          when arch_entity = top_name ->
          Some arch_stmts
        | _ -> None)
      units
  in
  let arch_stmts =
    match arch_stmts with
    | Some stmts -> stmts
    | None -> fail "no architecture of entity %s found" top_name
  in
  let cs_max = ref None in
  let legs = ref [] in
  let selects = ref [] in
  let regs_seen = ref [] in
  let classify name =
    match Hashtbl.find_opt table name with
    | Some c -> c
    | None -> fail "signal %s is not declared by the pragma inventory" name
  in
  let handle_trans generic_map port_map =
    let step, phase =
      match positional generic_map with
      | [ s; p ] ->
        (match int_of_expr s, phase_of_expr p with
         | Some s, Some p -> (s, p)
         | _, _ -> fail "bad TRANS generic map")
      | _ -> fail "TRANS needs generic map (S, P)"
    in
    match positional port_map with
    | [ _cs; _ph; src; dst ] ->
      (match src, dst with
       | Ast.Int index, Ast.Name dst_name ->
         (* A literal source drives an op-select port. *)
         (match classify dst_name with
          | Op_port fu ->
            let op =
              match C.Model.find_fu skel fu with
              | Some f -> List.nth_opt f.ops index
              | None -> None
            in
            (match op with
             | Some op ->
               selects :=
                 { C.Transfer.sel_step = step; sel_fu = fu; sel_op = op }
                 :: !selects
             | None ->
               fail "op index %d out of range for unit %s" index fu)
          | Endpoint _ | Control ->
            fail "literal TRANS source must target an op port")
       | Ast.Name src_name, Ast.Name dst_name ->
         (match classify src_name, classify dst_name with
          | Endpoint src, Endpoint dst ->
            legs := { C.Transfer.step; phase; src; dst } :: !legs
          | _, _ -> fail "TRANS endpoints must be data signals")
       | _, _ -> fail "unsupported TRANS port map shape")
    | _ -> fail "TRANS needs port map (CS, PH, src, dst)"
  in
  List.iter
    (function
      | Ast.Instance { component; generic_map; port_map; _ } ->
        (match String.uppercase_ascii component with
         | "CONTROLLER" ->
           (match positional generic_map with
            | [ e ] ->
              (match int_of_expr e with
               | Some n -> cs_max := Some n
               | None -> fail "CONTROLLER generic must be an integer")
            | _ -> fail "CONTROLLER needs generic map (CS_MAX)")
         | "TRANS" -> handle_trans generic_map port_map
         | "REG" ->
           (match positional port_map with
            | [ _ph; _in; Ast.Name out_name ] ->
              (match classify out_name with
               | Endpoint (C.Transfer.Reg_out r) ->
                 regs_seen := r :: !regs_seen
               | _ -> fail "REG output %s is not a register" out_name)
            | _ -> fail "REG needs port map (PH, R_in, R_out)")
         | _ ->
           (* functional-unit instances carry no tuple information *)
           ())
      | Ast.Proc _ | Ast.Concurrent_assign _ -> ())
    arch_stmts;
  let cs_max =
    match !cs_max with
    | Some n -> n
    | None -> fail "no CONTROLLER instance found"
  in
  (* Cross-check: every pragma register has a REG instance. *)
  List.iter
    (fun (r : C.Model.register) ->
      if not (List.mem r.reg_name !regs_seen) then
        fail "register %s has no REG instance" r.reg_name)
    skel.registers;
  let tuples =
    C.Transfer.merge
      ~latency_of:(C.Model.fu_latency skel)
      (C.Transfer.compose (List.rev !legs) (List.rev !selects))
  in
  let m = { skel with cs_max; transfers = tuples } in
  C.Model.validate_exn m;
  m

let model_of_string src =
  let pragmas = pragma_lines src in
  let units =
    try Parser.design_file src
    with Parser.Parse_error (l, m) -> fail "parse error at line %d: %s" l m
  in
  model_of_ast ~pragmas units

let model_of_string_diag ?limits ?file src =
  let module Diag = Csrtl_diag.Diag in
  let r = Parser.parse ?limits ?file src in
  if Diag.has_errors r.Parser.diags then Error r.Parser.diags
  else
    match model_of_ast ~pragmas:(pragma_lines src) r.Parser.units with
    | m -> Ok (m, r.Parser.diags)
    | exception Extract_error m ->
      Error (r.Parser.diags @ [ Diag.error ~rule:"vhdl.extract" "%s" m ])
    | exception Invalid_argument m ->
      Error (r.Parser.diags @ [ Diag.error ~rule:"model.validate" "%s" m ])
