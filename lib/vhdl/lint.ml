module Diag = Csrtl_diag.Diag

type severity = Error | Warning

type finding = {
  severity : severity;
  rule : string;
  where : string;
  span : Diag.span option;
  message : string;
}

let lc = String.lowercase_ascii

let clock_like name =
  let n = lc name in
  let has frag =
    let nh = String.length n and nn = String.length frag in
    let rec go i = i + nn <= nh && (String.sub n i nn = frag || go (i + 1)) in
    nn = 0 || go 0
  in
  has "clk" || has "clock"

let paper_phases = [ "ra"; "rb"; "cm"; "wa"; "wb"; "cr" ]

(* Names an expression mentions. *)
let rec expr_names (e : Ast.expr) =
  match e with
  | Ast.Int _ | Ast.Str _ -> []
  | Ast.Name n -> [ n ]
  | Ast.Attr (n, _) -> [ n ]
  | Ast.Attr_call (n, _, args) -> n :: List.concat_map expr_names args
  | Ast.Index (n, i) -> n :: expr_names i
  | Ast.Call (n, args) -> n :: List.concat_map expr_names args
  | Ast.Binop (_, a, b) -> expr_names a @ expr_names b
  | Ast.Unop (_, a) -> expr_names a
  | Ast.Paren a -> expr_names a

let rec stmt_has_wait (s : Ast.stmt) =
  match s with
  | Ast.Wait | Ast.Wait_on _ | Ast.Wait_until _ -> true
  | Ast.If (branches, els) ->
    List.exists (fun (_, body) -> List.exists stmt_has_wait body) branches
    || List.exists stmt_has_wait els
  | Ast.For (_, _, _, body) -> List.exists stmt_has_wait body
  | Ast.Signal_assign _ | Ast.Var_assign _ | Ast.Return _ | Ast.Assert_stmt _
  | Ast.Null_stmt ->
    false

let rec collect_waits (s : Ast.stmt) =
  match s with
  | Ast.Wait -> [ `Plain ]
  | Ast.Wait_on sigs -> [ `On sigs ]
  | Ast.Wait_until e -> [ `Until e ]
  | Ast.If (branches, els) ->
    List.concat_map (fun (_, body) -> List.concat_map collect_waits body)
      branches
    @ List.concat_map collect_waits els
  | Ast.For (_, _, _, body) -> List.concat_map collect_waits body
  | Ast.Signal_assign _ | Ast.Var_assign _ | Ast.Return _ | Ast.Assert_stmt _
  | Ast.Null_stmt ->
    []

let check ?spans (units : Ast.design_file) =
  let find_span key =
    match spans with
    | None -> None
    | Some tbl -> Parser.spans_find tbl key
  in
  let findings = ref [] in
  let add ?span severity rule where fmt =
    Format.kasprintf
      (fun message ->
        findings := { severity; rule; where; span; message } :: !findings)
      fmt
  in
  (* inventory of declared entities for instantiation checking *)
  let entities = Hashtbl.create 16 in
  List.iter
    (fun u ->
      match u with
      | Ast.Entity { ent_name; generics; ports } ->
        Hashtbl.replace entities (lc ent_name)
          (List.length generics, List.length ports)
      | Ast.Architecture _ | Ast.Package _ | Ast.Package_body _
      | Ast.Use_clause _ | Ast.Comment _ ->
        ())
    units;
  let known_functions = ref [ "resolve" ] in
  let check_signal_decl span where (d : Ast.object_decl) =
    let add sev rule where fmt = add ?span sev rule where fmt in
    match d with
    | Ast.Signal_decl (names, ty, _) ->
      List.iter
        (fun n ->
          if clock_like n then
            add Error "no-clocks" where
              "signal %s looks like a clock; the subset has no clock \
               signals"
              n)
        names;
      (match ty.Ast.resolution with
       | Some f when not (List.mem (lc f) (List.map lc !known_functions)) ->
         add Error "resolved-signals" where
           "resolution function %s is not declared" f
       | Some _ | None -> ())
    | Ast.Variable_decl _ | Ast.Constant_decl _ -> ()
  in
  let check_process span where (p : Ast.process) =
    let add sev rule where fmt = add ?span sev rule where fmt in
    let has_waits = List.exists stmt_has_wait p.Ast.body in
    (match p.Ast.sensitivity, has_waits with
     | _ :: _, true ->
       add Error "process-shape" where
         "process has both a sensitivity list and wait statements"
     | [], false ->
       add Warning "process-shape" where
         "process neither suspends nor has a sensitivity list; it would \
          loop forever"
     | _, _ -> ());
    List.iter
      (fun w ->
        match w with
        | `Plain -> ()
        | `On sigs ->
          List.iter
            (fun s ->
              if clock_like s then
                add Error "no-clocks" where "process waits on clock %s" s)
            sigs
        | `Until e ->
          let names = List.map lc (expr_names e) in
          List.iter
            (fun n ->
              if clock_like n then
                add Error "no-clocks" where
                  "wait condition mentions clock-like name %s" n)
            names;
          if List.exists (fun n -> n = "rising_edge" || n = "falling_edge")
               names
          then
            add Error "no-clocks" where "edge idiom in a wait condition";
          (* the control-step discipline: conditions range over the
             control signals and generics *)
          if
            not
              (List.exists
                 (fun n -> n = "cs" || n = "ph")
                 names)
          then
            add Warning "control-steps" where
              "wait condition does not mention the control signals CS/PH")
      (List.concat_map collect_waits p.Ast.body)
  in
  List.iter
    (fun u ->
      match u with
      | Ast.Package { pkg_name; pkg_decls } ->
        let add sev rule where fmt =
          add ?span:(find_span (Parser.key_package pkg_name)) sev rule where
            fmt
        in
        List.iter
          (fun d ->
            match d with
            | Ast.Pkg_type_enum (n, items) when lc n = "phase" ->
              if List.map lc items <> paper_phases then
                add Error "phase-enum" pkg_name
                  "type Phase must be (ra, rb, cm, wa, wb, cr); found (%s)"
                  (String.concat ", " items)
            | Ast.Pkg_constant (n, _, e) when lc n = "disc" ->
              if e <> Ast.Int (-1) && e <> Ast.Unop (Ast.Neg, Ast.Int 1) then
                add Error "sentinels" pkg_name "DISC must be -1"
            | Ast.Pkg_constant (n, _, e) when lc n = "illegal" ->
              if e <> Ast.Int (-2) && e <> Ast.Unop (Ast.Neg, Ast.Int 2) then
                add Error "sentinels" pkg_name "ILLEGAL must be -2"
            | Ast.Pkg_function f ->
              known_functions := f.Ast.fun_name :: !known_functions
            | Ast.Pkg_function_decl n -> known_functions := n :: !known_functions
            | Ast.Pkg_type_enum _ | Ast.Pkg_type_array _ | Ast.Pkg_subtype _
            | Ast.Pkg_constant _ | Ast.Pkg_comment _ ->
              ())
          pkg_decls
      | Ast.Entity { ent_name; ports; _ } ->
        let add sev rule where fmt =
          add ?span:(find_span (Parser.key_entity ent_name)) sev rule where fmt
        in
        List.iter
          (fun (p : Ast.port) ->
            if clock_like p.Ast.port_name then
              add Error "no-clocks" ent_name "port %s looks like a clock"
                p.Ast.port_name)
          ports
      | Ast.Architecture { arch_name; arch_entity; arch_decls; arch_stmts } ->
        let where = Printf.sprintf "%s(%s)" arch_name arch_entity in
        let aspan = find_span (Parser.key_architecture arch_name) in
        if not (Hashtbl.mem entities (lc arch_entity)) then
          add ?span:aspan Warning "structure" where
            "architecture of undeclared entity %s" arch_entity;
        List.iter (check_signal_decl aspan where) arch_decls;
        List.iter
          (fun stmt ->
            match stmt with
            | Ast.Proc p ->
              let pspan =
                match p.Ast.proc_label with
                | Some l -> (
                  match find_span (Parser.key_process ~arch:arch_name l) with
                  | Some _ as s -> s
                  | None -> aspan)
                | None -> aspan
              in
              check_process pspan where p
            | Ast.Concurrent_assign _ -> ()
            | Ast.Instance { inst_label; component; generic_map; port_map }
              -> (
                let iwhere = where ^ "/" ^ inst_label in
                let add sev rule where fmt =
                  add
                    ?span:
                      (match
                         find_span
                           (Parser.key_instance ~arch:arch_name inst_label)
                       with
                       | Some _ as s -> s
                       | None -> aspan)
                    sev rule where fmt
                in
                match Hashtbl.find_opt entities (lc component) with
                | None ->
                  add Error "structure" iwhere
                    "instantiation of undeclared entity %s" component
                | Some (ngen, nports) ->
                  if List.length generic_map > ngen then
                    add Error "structure" iwhere
                      "%d generics supplied, entity %s declares %d"
                      (List.length generic_map) component ngen;
                  if List.length port_map > nports then
                    add Error "structure" iwhere
                      "%d ports supplied, entity %s declares %d"
                      (List.length port_map) component nports;
                  if lc component = "trans" then begin
                    match generic_map with
                    | [ (_, step); (_, phase) ] ->
                      (match step with
                       | Ast.Int s when s >= 1 -> ()
                       | _ ->
                         add Error "trans-generics" iwhere
                           "TRANS step generic must be a positive literal");
                      (match phase with
                       | Ast.Name p when List.mem (lc p) paper_phases -> ()
                       | _ ->
                         add Error "trans-generics" iwhere
                           "TRANS phase generic must be one of the six \
                            phases")
                    | _ ->
                      add Error "trans-generics" iwhere
                        "TRANS needs generic map (S, P)"
                  end))
          arch_stmts
      | Ast.Package_body _ | Ast.Use_clause _ | Ast.Comment _ -> ())
    units;
  List.stable_sort
    (fun a b ->
      compare
        (match a.severity with Error -> 0 | Warning -> 1)
        (match b.severity with Error -> 0 | Warning -> 1))
    (List.rev !findings)

let check_source src =
  match Parser.design_file src with
  | units -> Ok (check units)
  | exception Parser.Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s (outside the subset grammar)" line msg)
  | exception Lexer.Lex_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s (outside the subset lexicon)" line msg)

let check_source_diags ?limits ?file src =
  let r = Parser.parse ?limits ?file src in
  let findings = check ~spans:r.Parser.spans r.Parser.units in
  (findings, r.Parser.diags)

let conformant findings =
  not (List.exists (fun f -> f.severity = Error) findings)

let to_diag f =
  {
    Diag.severity =
      (match f.severity with Error -> Diag.Error | Warning -> Diag.Warning);
    rule = "lint." ^ f.rule;
    span = f.span;
    message = Printf.sprintf "%s: %s" f.where f.message;
  }

let pp_finding ppf f =
  Format.fprintf ppf "%s[%s] %s: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    f.rule f.where f.message
