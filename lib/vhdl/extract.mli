(** Recover a clock-free model from its VHDL text.

    The inverse of {!Emit}, implementing the paper's §2.7 direction
    "if we know the transfer process, the tuples can be easily
    constructed": TRANS instances (step and phase generics, source
    and sink port associations) become legs, legs recompose into
    tuples ({!Csrtl_core.Transfer.compose}) and merge into full
    9-tuples using unit latencies; the CONTROLLER generic yields
    [cs_max]; REG instances are cross-checked against the register
    inventory.  Resource attributes without VHDL syntax (operation
    lists, latencies, input drives) are read from the [-- csrtl]
    pragma comments. *)

exception Extract_error of string

val model_of_string : string -> Csrtl_core.Model.t
(** Parse, extract, and return the model (validated). *)

val model_of_string_diag :
  ?limits:Csrtl_diag.Diag.Limits.t -> ?file:string -> string ->
  (Csrtl_core.Model.t * Csrtl_diag.Diag.t list, Csrtl_diag.Diag.t list)
    result
(** Total variant for untrusted input: never raises.  [Ok] carries
    the model plus any non-fatal parse diagnostics; [Error] carries
    the parse / extraction / validation diagnostics (rules
    [vhdl.syntax], [vhdl.extract], [model.validate]). *)

val model_of_ast :
  pragmas:string list -> Ast.design_file -> Csrtl_core.Model.t
(** Extraction from a parsed design file; [pragmas] are the [csrtl]
    directive payloads (without the comment marker). *)

val pragma_lines : string -> string list
(** The [csrtl] pragma payloads of a source text. *)
