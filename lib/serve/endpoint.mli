(** Daemon addresses: a Unix socket path or a TCP host:port.

    The same line-framed protocol runs over both; everything that
    dials or binds a daemon goes through here so the transports only
    differ below the connect.  TCP sockets get NODELAY + KEEPALIVE on
    both ends and REUSEADDR on the listener (replica restarts must
    rebind instantly). *)

type t =
  | Unix_path of string
  | Tcp of string * int

val of_string : string -> (t, string) result
(** ["HOST:PORT"] (port in 1..65535) parses as {!Tcp}; anything else
    is a {!Unix_path}.  Only an out-of-range explicit port errors. *)

val to_string : t -> string

val is_tcp : t -> bool

val connect : t -> (Unix.file_descr, [ `Unix of Unix.error | `Msg of string ]) result
(** Dial the endpoint.  [`Unix e] preserves the errno so callers can
    tell a missing daemon ([ENOENT]/[ECONNREFUSED]) from a permission
    problem ([EACCES]); [`Msg] covers resolution failures. *)

val listen : ?backlog:int -> t -> (Unix.file_descr, string) result
(** Bind + listen.  Unlinks a stale Unix socket file first. *)

val setup_accepted : t -> Unix.file_descr -> unit
(** Apply per-connection socket options to an accepted fd. *)

val cleanup : t -> unit
(** Remove the Unix socket file (no-op for TCP). *)
