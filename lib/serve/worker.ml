(* Fork-and-supervise: run one campaign in a worker process and stream
   its response frames back to the daemon over a pipe.

   This is the crash-only boundary.  Whatever happens inside the
   worker — an OOM kill, a segfault in a C stub, a stray signal, a
   runaway model — the damage is confined to that process; the daemon
   observes an EOF on the pipe, reaps the corpse, classifies how it
   died, and decides whether to restart from the journal checkpoint.

   Fork discipline: the daemon never spawns domains (its [Par] pool is
   lazy and only materialises in in-process mode), so at [fork] time
   the parent is a plain multi-threaded process — POSIX guarantees the
   child gets exactly the forking thread.  The child writes frames and
   [Unix._exit]s; it must never [exit], or it would run the parent's
   [at_exit] handlers and flush the parent's buffered channels.

   One sharp edge remains: POSIX only promises async-signal-safe calls
   in the child of a multi-threaded fork, and the OCaml runtime is
   not that — if another thread is mid-GC or holds a runtime lock at
   fork time, the child can deadlock on its first allocation.  In the
   daemon this is benign in practice because every other thread parks
   in [select]/[read] between requests, but a host process that
   embeds {!Server} alongside busy compute threads (the benchmark
   harness used to) will hit it; such hosts must run the daemon as a
   separate process instead. *)

type crash =
  | Exited of int  (* worker exited without delivering a terminal frame *)
  | Signaled of int  (* killed by a signal (OCaml signal numbering) *)
  | Hung  (* blew through its wall-clock cap; SIGKILLed by us *)

type outcome =
  | Terminal  (* the worker delivered Report/Drained/Refused *)
  | Crashed of crash

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigill then "SIGILL"
  else if s = Sys.sigfpe then "SIGFPE"
  else Printf.sprintf "signal %d" s

let describe = function
  | Exited n -> Printf.sprintf "exited with code %d before finishing" n
  | Signaled s -> Printf.sprintf "was killed by %s" (signal_name s)
  | Hung -> "missed its wall-clock cap and was killed"

let ignoring_unix f = try f () with Unix.Unix_error (_, _, _) -> ()

let supervise ?timeout_s ~grace_s ~should_stop ~on_spawn ~child ~on_line () =
  let r, w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    (* worker: only this thread survived the fork *)
    ignoring_unix (fun () -> Unix.close r);
    (try child w with _ -> Unix._exit 1);
    Unix._exit 0
  | pid ->
    ignoring_unix (fun () -> Unix.close w);
    on_spawn pid;
    let t0 = Unix.gettimeofday () in
    let terminal = ref false in
    let termed = ref None in  (* when we sent SIGTERM *)
    let killed = ref false in
    let soft_kill () =
      match !termed with
      | Some _ -> ()
      | None ->
        termed := Some (Unix.gettimeofday ());
        ignoring_unix (fun () -> Unix.kill pid Sys.sigterm)
    in
    let hard_kill () =
      if not !killed then begin
        killed := true;
        ignoring_unix (fun () -> Unix.kill pid Sys.sigkill)
      end
    in
    (* pump complete lines to [on_line] until a terminal frame or EOF,
       turning drain requests and wall caps into signals as we go *)
    let pending = ref "" in
    let feed data =
      pending := !pending ^ data;
      let rec split () =
        if not !terminal then
          match String.index_opt !pending '\n' with
          | None -> ()
          | Some i ->
            let line = String.sub !pending 0 i in
            pending :=
              String.sub !pending (i + 1) (String.length !pending - i - 1);
            (match on_line line with
             | `Terminal -> terminal := true
             | `Continue -> ());
            split ()
      in
      split ()
    in
    let chunk = Bytes.create 65536 in
    let rec pump () =
      if not !terminal then begin
        if should_stop () then soft_kill ();
        (match timeout_s with
         | Some cap when Unix.gettimeofday () -. t0 > cap -> soft_kill ()
         | _ -> ());
        (match !termed with
         | Some at when Unix.gettimeofday () -. at > grace_s -> hard_kill ()
         | _ -> ());
        match Unix.select [ r ] [] [] 0.05 with
        | [], _, _ -> pump ()
        | _ ->
          (match Unix.read r chunk 0 (Bytes.length chunk) with
           | 0 -> ()  (* EOF: the worker is gone or closed its end *)
           | n ->
             feed (Bytes.sub_string chunk 0 n);
             pump ()
           | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
           | exception Unix.Unix_error (_, _, _) -> ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> pump ()
      end
    in
    pump ();
    ignoring_unix (fun () -> Unix.close r);
    (* reap, escalating to SIGKILL if the worker lingers past grace —
       a worker that delivered its terminal frame but will not die
       still must not become a zombie *)
    let rec reap deadline =
      match Unix.waitpid [ Unix.WNOHANG ] pid with
      | 0, _ ->
        if Unix.gettimeofday () > deadline then begin
          hard_kill ();
          match Unix.waitpid [] pid with
          | _, st -> st
          | exception Unix.Unix_error (_, _, _) -> Unix.WEXITED 0
        end
        else begin
          Thread.delay 0.01;
          reap deadline
        end
      | _, st -> st
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> Unix.WEXITED 0
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap deadline
    in
    let status = reap (Unix.gettimeofday () +. grace_s) in
    if !terminal then Terminal
    else if !killed then Crashed Hung
    else
      (match status with
       | Unix.WEXITED 0 ->
         (* protocol violation: a clean exit with no terminal frame
            still counts as a crash — the campaign did not finish *)
         Crashed (Exited 0)
       | Unix.WEXITED n -> Crashed (Exited n)
       | Unix.WSIGNALED s | Unix.WSTOPPED s -> Crashed (Signaled s))
