(** The daemon's request engine, socket-free.

    {!handle} maps one decoded request to a sequence of emitted
    responses and {e never raises}: admission failures, bad models,
    stale journals and even daemon bugs all come back as status-coded
    [Refused] frames.  The server layer adds line framing and threads;
    the differential and fuzz suites drive [handle] directly, so the
    bytes they pin are the bytes the socket carries.

    Campaign responses are byte-identical to offline [csrtl inject]
    stdout for the same (model, fault list, config) — the report
    renderer is margin-independent, and campaigns reuse
    {!Csrtl_fault.Campaign.run_journaled} unchanged. *)

module Diag = Csrtl_diag.Diag
module F = Csrtl_fault

type config = {
  state_dir : string;  (** journals live here, one per resume token *)
  jobs : int;  (** pool width; [<= 0] means {!Csrtl_par.Par.default_jobs} *)
  cache_capacity : int;  (** compile-cache entries (LRU beyond that) *)
  limits : Diag.Limits.t;  (** applied to every request's model text *)
  max_pending : int;
      (** campaigns admitted concurrently (queued on the shared pool);
          excess requests are refused with status 1, rule [serve.busy] *)
  default_deadline_ms : int option;
      (** server-wide per-request deadline when the request names none *)
}

val default_config : config

type t

val create : config -> t
(** Creates the state directory and spawns the domain pool. *)

val dispose : t -> unit
(** Join the pool.  The engine is unusable after. *)

val request_stop : t -> unit
(** Flip the drain flag: in-flight campaigns checkpoint at the next
    work-item boundary and answer [Drained]; new inject requests are
    refused.  Signal-handler safe (one atomic store). *)

val stopping : t -> bool

val handle : t -> Frame.request -> emit:(Frame.response -> unit) -> unit
(** Process one request, calling [emit] for each response frame in
    order.  Never raises; [emit] may be called from pool domains while
    a streamed campaign runs, so it must be thread-safe. *)

val stats : t -> Frame.stats

val render_report : table:bool -> F.Campaign.report -> string
(** Exactly the bytes offline [csrtl inject] writes to stdout for this
    report (entry table when [table], then the summary block). *)

val inject_code : F.Campaign.report -> int
(** The offline exit code for a finished campaign: 5 for crashes,
    disagreements or law violations; 4 for hangs; else 0. *)

val token_of :
  digest:string -> config_tag:string -> faults_digest:string -> string
(** The deterministic resume token: truncated md5 over the campaign
    identity.  Same request, same token, same journal — crash recovery
    is "resend the request". *)
