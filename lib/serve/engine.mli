(** The daemon's request engine, socket-free.

    {!handle} maps one decoded request to a sequence of emitted
    responses and {e never raises}: admission failures, bad models,
    stale journals and even daemon bugs all come back as status-coded
    [Refused] frames.  The server layer adds line framing and threads;
    the differential, chaos, and fuzz suites drive [handle] directly,
    so the bytes they pin are the bytes the socket carries.

    Campaign responses are byte-identical to offline [csrtl inject]
    stdout for the same (model, fault list, config) — the report
    renderer is margin-independent, and campaigns reuse
    {!Csrtl_fault.Campaign.run_journaled} unchanged.

    The engine is {e crash-only}: in [`Forked] isolation each campaign
    runs in a supervised worker process, restarted from its journal
    checkpoint (capped exponential backoff) when it crashes, and a
    model whose workers keep crashing is quarantined by a per-digest
    circuit breaker.  Admission is a bounded per-client-fair queue
    ({!Admission}); busy and quarantined refusals carry a
    [retry_after_ms] hint. *)

module Diag = Csrtl_diag.Diag
module F = Csrtl_fault

type config = {
  state_dir : string;  (** journals live here, one per resume token *)
  jobs : int;  (** pool width; [<= 0] means {!Csrtl_par.Par.default_jobs} *)
  cache_capacity : int;  (** compile-cache entries (LRU beyond that) *)
  plan_cache_capacity : int;
      (** compiled {!Csrtl_core.Batch.plan} tier, keyed by (model
          digest | config tag); [<= 0] disables it — every campaign
          then compiles its own plan, the pre-tier behaviour *)
  golden_cache_capacity : int;
      (** golden {!Csrtl_fault.Artifact} tier (clean observations +
          checkpoints), same key; [<= 0] disables it.  Warm campaigns
          skip the golden simulations entirely; reports stay
          byte-identical either way *)
  limits : Diag.Limits.t;  (** applied to every request's model text *)
  max_pending : int;
      (** campaigns running concurrently; excess requests queue.
          [<= 0] means always busy (refuse immediately) — the
          zero-width configuration the admission tests use *)
  default_deadline_ms : int option;
      (** server-wide per-request deadline when the request names none *)
  isolation : [ `In_process | `Forked ];
      (** [`Forked] (the CLI daemon's default) runs each campaign in a
          supervised worker process — the crash-only mode.
          [`In_process] is the PR 6 behaviour for embedders: campaigns
          share the daemon's lazy domain pool *)
  max_queue : int;  (** total requests waiting in the admission queue *)
  max_queue_per_client : int;  (** one client's share of that queue *)
  max_restarts : int;
      (** crash-restarts per request before giving up with
          [serve.worker]; each restart resumes from the journal *)
  backoff_base_ms : int;  (** restart backoff: base * 2^attempt ... *)
  backoff_cap_ms : int;  (** ... capped here *)
  quarantine_threshold : int;
      (** consecutive worker crashes (per model digest) that open the
          circuit breaker; [<= 0] disables quarantine *)
  quarantine_cooloff_ms : int;
      (** how long an open breaker refuses the model before letting a
          half-open probe through *)
  worker_grace_ms : int;
      (** SIGTERM-to-SIGKILL grace when draining or timing out a
          worker — long enough to checkpoint, short enough to die *)
  worker_timeout_ms : int option;
      (** wall cap for workers on requests with no deadline; [None]
          means no cap (deadlined requests get deadline + grace) *)
  on_worker : (pid:int -> token:string -> unit) option;
      (** test/chaos hook: called with each spawned worker pid *)
}

val default_config : config
(** [`In_process], max_pending 4, queue 16 (8 per client), 3 restarts
    with 25ms..1s backoff, quarantine after 3 crashes for 30s, 2s
    worker grace. *)

type t

val create : config -> t
(** Creates the state directory.  The domain pool is lazy: it only
    materialises when an in-process campaign runs, so a [`Forked]
    daemon stays domain-free — the precondition for [Unix.fork]. *)

val dispose : t -> unit
(** Join the pool (if one materialised).  The engine is unusable
    after. *)

val note_auth_failure : t -> unit
(** Count one failed TCP authentication handshake (the server layer
    refuses those before the engine sees any request; this keeps the
    refusal visible in {!stats}). *)

val request_stop : t -> unit
(** Flip the drain flag: in-flight campaigns checkpoint at the next
    work-item boundary and answer [Drained] (forked workers get
    SIGTERM and the grace period to do the same); queued requests are
    released with [serve.draining]; new inject requests are refused.
    Signal-handler safe (one atomic store). *)

val stopping : t -> bool

val handle :
  ?client:int -> t -> Frame.request -> emit:(Frame.response -> unit) -> unit
(** Process one request, calling [emit] for each response frame in
    order.  [client] identifies the connection for queue fairness
    (default 0 — embedders that don't multiplex clients get plain
    FIFO).  Never raises; [emit] may be called from pool domains or
    the worker supervisor while a streamed campaign runs, so it must
    be thread-safe. *)

val stats : t -> Frame.stats

val render_report : table:bool -> F.Campaign.report -> string
(** Exactly the bytes offline [csrtl inject] writes to stdout for this
    report (entry table when [table], then the summary block). *)

val inject_code : F.Campaign.report -> int
(** The offline exit code for a finished campaign: 5 for crashes,
    disagreements or law violations; 4 for hangs; else 0. *)

val token_of :
  digest:string -> config_tag:string -> faults_digest:string -> string
(** The deterministic resume token: truncated md5 over the campaign
    identity.  Same request, same token, same journal — crash recovery
    is "resend the request". *)
