(* Bounded line framing over a file descriptor, shared by the server
   and the client.  The reader enforces a per-line byte cap at the
   transport, so an attacker streaming an endless line costs a bounded
   buffer and gets a diagnostic — the frame parser never even sees the
   flood.  An optional idle timeout bounds how long a read may sit in
   [select] with no bytes arriving, so a dead or partitioned TCP peer
   cannot pin a connection thread forever. *)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet consumed *)
  chunk : Bytes.t;
  max_line : int;
  mutable idle_timeout : float option;
      (* seconds with no bytes before [Idle]; mutable so a client can
         time out the handshake alone and then wait patiently *)
}

type line =
  | Line of string
  | Too_long  (* the oversized line has been consumed and discarded *)
  | Idle  (* no bytes within the idle timeout; the peer may be dead *)
  | Eof

let reader ?(max_line = 16 * 1024 * 1024) ?idle_timeout fd =
  { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536;
    max_line;
    idle_timeout =
      (match idle_timeout with
       | Some t when t > 0. -> Some t
       | Some _ | None -> None) }

let set_idle_timeout r t =
  r.idle_timeout <- (match t with Some v when v > 0. -> Some v | _ -> None)

let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    (* tolerate CRLF clients *)
    let line = if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
      else String.sub s 0 i
    in
    Some line

(* One transport read, gated by the idle timeout when there is one.
   [`Bytes 0] is EOF. *)
let fill r =
  let ready =
    match r.idle_timeout with
    | None -> true
    | Some t ->
      (match Unix.select [ r.fd ] [] [] t with
       | [], _, _ -> false
       | _ -> true
       | exception Unix.Unix_error (Unix.EINTR, _, _) ->
         (* treat the interrupted wait as "not yet"; the caller loops *)
         true)
  in
  if not ready then `Idle
  else
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | n -> `Bytes n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Again
    | exception Unix.Unix_error (_, _, _) -> `Bytes 0

let rec read_line r =
  match take_line r with
  | Some line ->
    if String.length line > r.max_line then Too_long else Line line
  | None ->
    if Buffer.length r.buf > r.max_line then begin
      (* drop the flood, then skip until the newline that ends it *)
      Buffer.clear r.buf;
      skip_to_newline r
    end
    else begin
      match fill r with
      | `Idle -> Idle
      | `Again -> read_line r
      | `Bytes 0 ->
        (* EOF with bytes still buffered: the peer's final line had no
           trailing newline.  Deliver it — a drained daemon's last
           frame, or a hand-piped request, must not vanish — and
           report Eof on the next call, when the buffer is empty *)
        if Buffer.length r.buf = 0 then Eof
        else begin
          let s = Buffer.contents r.buf in
          Buffer.clear r.buf;
          Line s
        end
      | `Bytes n ->
        Buffer.add_subbytes r.buf r.chunk 0 n;
        read_line r
    end

and skip_to_newline r =
  match take_line r with
  | Some _ -> Too_long
  | None ->
    Buffer.clear r.buf;
    (match fill r with
     | `Idle -> Idle
     | `Again -> skip_to_newline r
     | `Bytes 0 -> Eof
     | `Bytes n ->
       Buffer.add_subbytes r.buf r.chunk 0 n;
       skip_to_newline r)

(* Write a full line or learn the peer is gone; partial writes are
   retried, EPIPE/reset surface as [false] so the caller can mark the
   connection dead without tearing anything else down. *)
let write_line fd s =
  let line = s ^ "\n" in
  let b = Bytes.of_string line in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0
