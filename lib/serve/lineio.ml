(* Bounded line framing over a file descriptor, shared by the server
   and the client.  The reader enforces a per-line byte cap at the
   transport, so an attacker streaming an endless line costs a bounded
   buffer and gets a diagnostic — the frame parser never even sees the
   flood. *)

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes read but not yet consumed *)
  chunk : Bytes.t;
  max_line : int;
}

type line =
  | Line of string
  | Too_long  (* the oversized line has been consumed and discarded *)
  | Eof

let reader ?(max_line = 16 * 1024 * 1024) fd =
  { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536;
    max_line }

let take_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    (* tolerate CRLF clients *)
    let line = if i > 0 && s.[i - 1] = '\r' then String.sub s 0 (i - 1)
      else String.sub s 0 i
    in
    Some line

let rec read_line r =
  match take_line r with
  | Some line ->
    if String.length line > r.max_line then Too_long else Line line
  | None ->
    if Buffer.length r.buf > r.max_line then begin
      (* drop the flood, then skip until the newline that ends it *)
      Buffer.clear r.buf;
      skip_to_newline r
    end
    else begin
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 -> if Buffer.length r.buf = 0 then Eof else (Buffer.clear r.buf; Eof)
      | n ->
        Buffer.add_subbytes r.buf r.chunk 0 n;
        read_line r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line r
      | exception Unix.Unix_error (_, _, _) -> Eof
    end

and skip_to_newline r =
  match take_line r with
  | Some _ -> Too_long
  | None ->
    Buffer.clear r.buf;
    (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
     | 0 -> Eof
     | n ->
       Buffer.add_subbytes r.buf r.chunk 0 n;
       skip_to_newline r
     | exception Unix.Unix_error (Unix.EINTR, _, _) -> skip_to_newline r
     | exception Unix.Unix_error (_, _, _) -> Eof)

(* Write a full line or learn the peer is gone; partial writes are
   retried, EPIPE/reset surface as [false] so the caller can mark the
   connection dead without tearing anything else down. *)
let write_line fd s =
  let line = s ^ "\n" in
  let b = Bytes.of_string line in
  let len = Bytes.length b in
  let rec go off =
    if off >= len then true
    else
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0
