(** Client plumbing for the daemon transport, shared by the [csrtl
    request] subcommand, the fleet router ({!Fleet}), the lifecycle
    tests and the C13 bench. *)

type conn

val connect :
  ?retries:int -> ?delay:float -> ?secret:string -> ?hello_timeout_s:float ->
  Endpoint.t -> (conn, string) result
(** Connect to the daemon, retrying {e transient} failures (missing
    socket file, connection refused, resets, timeouts) [retries] times
    (default 0) every [delay] seconds — the "wait for the daemon to
    come up" loop.  Non-transient errors (EACCES and friends) fail
    immediately: retrying a permission problem only hides it.  The
    error message carries a hint for the common cases — ENOENT means
    the daemon was probably never started, ECONNREFUSED on a Unix
    socket means a stale file from a crashed daemon.

    On TCP the connection starts with the daemon's [Hello] challenge
    (awaited for at most [hello_timeout_s], default 10): when the
    daemon demands auth and [secret] is given, the challenge is
    answered with {!Auth.hmac} before [connect] returns.  With no
    [secret] the connection still opens — the first request will come
    back as a status-1 [serve.auth] refusal, which is the diagnostic
    the operator needs.  Unix sockets have no handshake. *)

val advertised : conn -> string list
(** The fleet endpoints the daemon advertised in its [Hello] frame
    (empty on Unix sockets and undecorated replicas). *)

val send : conn -> Frame.request -> (unit, string) result

val send_raw : conn -> string -> (unit, string) result
(** Ship one line verbatim (no validation) — for protocol poking:
    the daemon must answer any byte salad with a status-coded
    [Refused], never a dead socket. *)

val next :
  ?limits:Frame.Diag.Limits.t -> conn ->
  (string * (Frame.response, Frame.Diag.t list) result) option
(** The next response line: [None] at EOF (daemon gone), otherwise
    the raw line plus its decoded frame. *)

val close : conn -> unit

val close_with_reset : conn -> unit
(** Close with SO_LINGER 0, so a TCP peer sees a hard RST instead of
    a FIN — how a crashed client looks from the daemon's side.  The
    chaos harness injects resets mid-frame with this; on Unix sockets
    it degrades to a plain {!close}. *)

val retryable : Frame.response -> int option option
(** [Some retry_after_ms] when the response is a transient refusal a
    client should retry — [serve.busy], [serve.quarantined],
    [serve.draining] — carrying the daemon's hint if it sent one.
    [None] for everything else (terminal responses, bad-model and bug
    refusals: resending those is pure load). *)

val backoff_delay :
  ?base:float -> ?cap:float -> attempt:int ->
  retry_after_ms:int option -> (unit -> float) -> float
(** Seconds to sleep before retry number [attempt] (0-based):
    exponential ([base] * 2^attempt, default base 50ms, capped at
    [cap], default 2s), floored by the daemon's [retry_after_ms] hint,
    with full jitter (uniform in [d/2, d], drawn from [rng] returning
    uniform [0,1) floats) so a fleet of refused clients decorrelates
    instead of re-arriving as the same herd. *)
