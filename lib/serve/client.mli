(** Client plumbing for the daemon socket, shared by the [csrtl
    request] subcommand, the lifecycle tests and the C13 bench. *)

type conn

val connect :
  ?retries:int -> ?delay:float -> string -> (conn, string) result
(** Connect to the Unix socket at the given path, retrying a refused
    or missing socket [retries] times (default 0) every [delay]
    seconds — the "wait for the daemon to come up" loop. *)

val send : conn -> Frame.request -> (unit, string) result

val send_raw : conn -> string -> (unit, string) result
(** Ship one line verbatim (no validation) — for protocol poking:
    the daemon must answer any byte salad with a status-coded
    [Refused], never a dead socket. *)

val next :
  ?limits:Frame.Diag.Limits.t -> conn ->
  (string * (Frame.response, Frame.Diag.t list) result) option
(** The next response line: [None] at EOF (daemon gone), otherwise
    the raw line plus its decoded frame. *)

val close : conn -> unit

val retryable : Frame.response -> int option option
(** [Some retry_after_ms] when the response is a transient refusal a
    client should retry — [serve.busy], [serve.quarantined],
    [serve.draining] — carrying the daemon's hint if it sent one.
    [None] for everything else (terminal responses, bad-model and bug
    refusals: resending those is pure load). *)

val backoff_delay :
  ?base:float -> ?cap:float -> attempt:int ->
  retry_after_ms:int option -> (unit -> float) -> float
(** Seconds to sleep before retry number [attempt] (0-based):
    exponential ([base] * 2^attempt, default base 50ms, capped at
    [cap], default 2s), floored by the daemon's [retry_after_ms] hint,
    with full jitter (uniform in [d/2, d], drawn from [rng] returning
    uniform [0,1) floats) so a fleet of refused clients decorrelates
    instead of re-arriving as the same herd. *)
