(** Client plumbing for the daemon socket, shared by the [csrtl
    request] subcommand, the lifecycle tests and the C13 bench. *)

type conn

val connect :
  ?retries:int -> ?delay:float -> string -> (conn, string) result
(** Connect to the Unix socket at the given path, retrying a refused
    or missing socket [retries] times (default 0) every [delay]
    seconds — the "wait for the daemon to come up" loop. *)

val send : conn -> Frame.request -> (unit, string) result

val send_raw : conn -> string -> (unit, string) result
(** Ship one line verbatim (no validation) — for protocol poking:
    the daemon must answer any byte salad with a status-coded
    [Refused], never a dead socket. *)

val next :
  ?limits:Frame.Diag.Limits.t -> conn ->
  (string * (Frame.response, Frame.Diag.t list) result) option
(** The next response line: [None] at EOF (daemon gone), otherwise
    the raw line plus its decoded frame. *)

val close : conn -> unit
