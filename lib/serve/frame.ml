(* The wire codec for campaign-as-a-service: one JSON object per line,
   in the same hand-rolled JSON subset the journal speaks
   ({!Csrtl_fault.Journal.Json}) — the daemon streams journal-shaped
   entry objects, so one codec serves both the durable file and the
   socket.

   Decoding sits on the untrusted frontier and follows the PR 5
   totality discipline: any byte sequence comes back as either a
   request/response or a list of located diagnostics — never an escaped
   exception, an OOM, or a stack overflow (the JSON parser bounds
   nesting).  The fuzz harness drives [decode_request] with the same
   grammar-aware generators the [.rtm] reader gets. *)

module Diag = Csrtl_diag.Diag
module Journal = Csrtl_fault.Journal
module Json = Journal.Json
open Json

let version = 3

type engine = [ `Auto | `Kernel | `Compiled ]

type inject = {
  model : string;  (* inline .rtm text *)
  engine : engine;
  batch : int;
  limit : int option;
  budget_ms : int option;
  deadline_ms : int option;
  table : bool;
  stream : bool;
  resume : bool;
}

type request =
  | Ping
  | Stats
  | Shutdown
  | Auth of { mac : string }
  | Inject of inject

type tier = {
  hits : int;
  misses : int;
  evictions : int;
  entries : int;
  capacity : int;
}

type stats = {
  requests : int;
  campaigns : int;
  drained : int;
  refused : int;
  active : int;
  queued : int;
  restarts : int;
  crashes : int;
  quarantined : int;
  auth_failures : int;
  model : tier;
  plan : tier;
  golden : tier;
}

type response =
  | Hello of { nonce : string; auth : bool; endpoints : string list }
  | Pong of { version : string }
  | Started of {
      token : string;
      total : int;
      cached : bool;
      plan_cached : bool;
      golden_cached : bool;
    }
  | Artifact of { key : string; text : string }
  | Entry of Journal.entry
  | Report of {
      status : int;
      code : int;
      token : string;
      reused : int;
      rerun : int;
      torn : int;
      text : string;
    }
  | Drained of {
      status : int;
      token : string;
      completed : int;
      total : int;
      reason : string;
    }
  | Queued of { position : int; retry_after_ms : int }
  | Refused of {
      status : int;
      retry_after_ms : int option;
          (* backpressure hint: how long a well-behaved client should
             wait before resending (busy/quarantined refusals) *)
      diags : Diag.t list;
    }
  | Stats_reply of stats
  | Bye

(* ---- diagnostics on the wire ------------------------------------- *)

let severity_to_string = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Note -> "note"

let severity_of_string = function
  | "error" -> Diag.Error
  | "warning" -> Diag.Warning
  | "note" -> Diag.Note
  | s -> raise (Bad (Printf.sprintf "unknown severity %S" s))

let json_of_diag (d : Diag.t) =
  let span_fields =
    match d.Diag.span with
    | None -> []
    | Some sp ->
      (match sp.Diag.file with
       | None -> []
       | Some f -> [ ("file", Str f) ])
      @ [ ("line", Int sp.Diag.line); ("col", Int sp.Diag.col);
          ("len", Int sp.Diag.len) ]
  in
  Obj
    ([ ("severity", Str (severity_to_string d.Diag.severity));
       ("rule", Str d.Diag.rule); ("message", Str d.Diag.message) ]
     @ span_fields)

let diag_of_json j =
  let span =
    match Json.field "line" j with
    | None -> None
    | Some _ ->
      Some
        { Diag.file =
            (match Json.field "file" j with
             | Some (Str f) -> Some f
             | _ -> None);
          line = int_field "line" j; col = int_field "col" j;
          len = int_field "len" j }
  in
  { Diag.severity = severity_of_string (str_field "severity" j);
    rule = str_field "rule" j; span; message = str_field "message" j }

(* ---- encoding ----------------------------------------------------- *)

let hdr kind = [ ("csrtl", Str kind); ("v", Int version) ]

let engine_to_string = function
  | `Auto -> "auto"
  | `Kernel -> "kernel"
  | `Compiled -> "compiled"

let opt_int name = function None -> [] | Some i -> [ (name, Int i) ]

let encode_request = function
  | Ping -> to_string (Obj (hdr "req" @ [ ("op", Str "ping") ]))
  | Stats -> to_string (Obj (hdr "req" @ [ ("op", Str "stats") ]))
  | Shutdown -> to_string (Obj (hdr "req" @ [ ("op", Str "shutdown") ]))
  | Auth { mac } ->
    to_string (Obj (hdr "req" @ [ ("op", Str "auth"); ("mac", Str mac) ]))
  | Inject q ->
    to_string
      (Obj
         (hdr "req"
          @ [ ("op", Str "inject"); ("model", Str q.model);
              ("engine", Str (engine_to_string q.engine));
              ("batch", Int q.batch) ]
          @ opt_int "limit" q.limit
          @ opt_int "budget_ms" q.budget_ms
          @ opt_int "deadline_ms" q.deadline_ms
          @ [ ("table", Bool q.table); ("stream", Bool q.stream);
              ("resume", Bool q.resume) ]))

let json_of_entry (e : Journal.entry) =
  Obj
    (hdr "resp"
     @ [ ("resp", Str "entry"); ("i", Int e.Journal.index);
         ("fault", Str e.Journal.fault_label);
         ("kernel", Journal.json_of_outcome e.Journal.kernel);
         ("interp", Journal.json_of_outcome e.Journal.interp);
         ("cycles", Int e.Journal.cycles);
         ("law_ok", Bool e.Journal.law_ok) ])

let encode_response = function
  | Hello { nonce; auth; endpoints } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "hello"); ("nonce", Str nonce);
              ("auth", Bool auth);
              ("endpoints", Arr (List.map (fun e -> Str e) endpoints)) ]))
  | Pong { version = v } ->
    to_string (Obj (hdr "resp" @ [ ("resp", Str "pong"); ("version", Str v) ]))
  | Started { token; total; cached; plan_cached; golden_cached } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "start"); ("token", Str token);
              ("total", Int total); ("cached", Bool cached);
              ("plan_cached", Bool plan_cached);
              ("golden_cached", Bool golden_cached) ]))
  | Artifact { key; text } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "artifact"); ("key", Str key);
              ("text", Str text) ]))
  | Entry e -> to_string (json_of_entry e)
  | Report { status; code; token; reused; rerun; torn; text } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "report"); ("status", Int status);
              ("code", Int code); ("token", Str token);
              ("reused", Int reused); ("rerun", Int rerun);
              ("torn", Int torn); ("text", Str text) ]))
  | Drained { status; token; completed; total; reason } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "drained"); ("status", Int status);
              ("token", Str token); ("done", Int completed);
              ("total", Int total); ("reason", Str reason) ]))
  | Queued { position; retry_after_ms } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "queued"); ("position", Int position);
              ("retry_after_ms", Int retry_after_ms) ]))
  | Refused { status; retry_after_ms; diags } ->
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "refused"); ("status", Int status) ]
          @ opt_int "retry_after_ms" retry_after_ms
          @ [ ("diags", Arr (List.map json_of_diag diags)) ]))
  | Stats_reply s ->
    let tier prefix (t : tier) =
      [ (prefix ^ "_hits", Int t.hits); (prefix ^ "_misses", Int t.misses);
        (prefix ^ "_evictions", Int t.evictions);
        (prefix ^ "_entries", Int t.entries);
        (prefix ^ "_capacity", Int t.capacity) ]
    in
    to_string
      (Obj
         (hdr "resp"
          @ [ ("resp", Str "stats"); ("requests", Int s.requests);
              ("campaigns", Int s.campaigns); ("drained", Int s.drained);
              ("refused", Int s.refused); ("active", Int s.active);
              ("queued", Int s.queued); ("restarts", Int s.restarts);
              ("crashes", Int s.crashes);
              ("quarantined", Int s.quarantined);
              ("auth_failures", Int s.auth_failures) ]
          @ tier "model" s.model @ tier "plan" s.plan
          @ tier "golden" s.golden))
  | Bye -> to_string (Obj (hdr "resp" @ [ ("resp", Str "bye") ]))

(* ---- decoding ----------------------------------------------------- *)

(* A semantic rejection distinct from [Json.Bad]: the frame is valid
   JSON but not a valid request — reported under its own rule so
   clients can tell transport rot from API misuse. *)
exception Reject of string

let check_header ~kind j =
  (match Json.field "csrtl" j with
   | Some (Str k) when k = kind -> ()
   | Some (Str k) ->
     raise (Reject (Printf.sprintf "frame kind %S, expected %S" k kind))
   | _ -> raise (Reject "not a csrtl frame (missing \"csrtl\" field)"));
  match Json.field "v" j with
  | Some (Int v) when v = version -> ()
  | Some (Int v) ->
    raise
      (Reject
         (Printf.sprintf "unsupported protocol version %d (this is v%d)" v
            version))
  | _ -> raise (Reject "missing protocol version")

let opt_int_field ~min name j =
  match Json.field name j with
  | None -> None
  | Some (Int i) when i >= min -> Some i
  | Some (Int i) ->
    raise (Reject (Printf.sprintf "%S must be >= %d (got %d)" name min i))
  | Some _ -> raise (Reject (Printf.sprintf "%S must be an integer" name))

let opt_bool_field ~default name j =
  match Json.field name j with
  | None -> default
  | Some (Bool b) -> b
  | Some _ -> raise (Reject (Printf.sprintf "%S must be a boolean" name))

let request_of_json j =
  check_header ~kind:"req" j;
  match str_field "op" j with
  | "ping" -> Ping
  | "stats" -> Stats
  | "shutdown" -> Shutdown
  | "auth" ->
    (match Json.field "mac" j with
     | Some (Str mac) -> Auth { mac }
     | Some _ -> raise (Reject "\"mac\" must be a string")
     | None -> raise (Reject "auth request without a \"mac\""))
  | "inject" ->
    let model =
      match Json.field "model" j with
      | Some (Str s) -> s
      | Some _ -> raise (Reject "\"model\" must be a string")
      | None -> raise (Reject "inject request without a \"model\"")
    in
    let engine =
      match Json.field "engine" j with
      | None -> `Auto
      | Some (Str "auto") -> `Auto
      | Some (Str "kernel") -> `Kernel
      | Some (Str "compiled") -> `Compiled
      | Some (Str e) ->
        raise
          (Reject
             (Printf.sprintf
                "unknown engine %S (expected auto, kernel or compiled)" e))
      | Some _ -> raise (Reject "\"engine\" must be a string")
    in
    let batch =
      Option.value (opt_int_field ~min:1 "batch" j) ~default:32
    in
    Inject
      { model; engine; batch;
        limit = opt_int_field ~min:1 "limit" j;
        budget_ms = opt_int_field ~min:1 "budget_ms" j;
        (* 0 is legal and means "already expired": drain immediately
           to a resume token — the deterministic drain the lifecycle
           tests rely on *)
        deadline_ms = opt_int_field ~min:0 "deadline_ms" j;
        table = opt_bool_field ~default:false "table" j;
        stream = opt_bool_field ~default:false "stream" j;
        resume = opt_bool_field ~default:true "resume" j }
  | op -> raise (Reject (Printf.sprintf "unknown op %S" op))

let entry_of_json j =
  { Journal.index = int_field "i" j; fault_label = str_field "fault" j;
    kernel =
      (match Json.field "kernel" j with
       | Some o -> Journal.outcome_of_json o
       | None -> raise (Bad "missing kernel outcome"));
    interp =
      (match Json.field "interp" j with
       | Some o -> Journal.outcome_of_json o
       | None -> raise (Bad "missing interp outcome"));
    cycles = int_field "cycles" j; law_ok = bool_field "law_ok" j }

let int_field_min ~min name j =
  let i = int_field name j in
  if i < min then
    raise (Reject (Printf.sprintf "%S must be >= %d (got %d)" name min i));
  i

let response_of_json j =
  check_header ~kind:"resp" j;
  match str_field "resp" j with
  | "hello" ->
    let endpoints =
      match Json.field "endpoints" j with
      | Some (Arr es) ->
        List.map
          (function
            | Str e -> e
            | _ -> raise (Reject "\"endpoints\" must be strings"))
          es
      | Some _ -> raise (Reject "\"endpoints\" must be an array")
      | None -> raise (Reject "hello response without \"endpoints\"")
    in
    Hello
      { nonce = str_field "nonce" j; auth = bool_field "auth" j; endpoints }
  | "pong" -> Pong { version = str_field "version" j }
  | "start" ->
    Started
      { token = str_field "token" j;
        total = int_field_min ~min:0 "total" j;
        cached = bool_field "cached" j;
        plan_cached = bool_field "plan_cached" j;
        golden_cached = bool_field "golden_cached" j }
  | "artifact" ->
    Artifact { key = str_field "key" j; text = str_field "text" j }
  | "entry" -> Entry (entry_of_json j)
  | "report" ->
    Report
      { status = int_field_min ~min:0 "status" j;
        code = int_field_min ~min:0 "code" j; token = str_field "token" j;
        reused = int_field_min ~min:0 "reused" j;
        rerun = int_field_min ~min:0 "rerun" j;
        torn = int_field_min ~min:0 "torn" j; text = str_field "text" j }
  | "drained" ->
    Drained
      { status = int_field_min ~min:0 "status" j;
        token = str_field "token" j;
        completed = int_field_min ~min:0 "done" j;
        total = int_field_min ~min:0 "total" j;
        reason = str_field "reason" j }
  | "queued" ->
    Queued
      { position = int_field_min ~min:1 "position" j;
        retry_after_ms = int_field_min ~min:0 "retry_after_ms" j }
  | "refused" ->
    let diags =
      match Json.field "diags" j with
      | Some (Arr ds) -> List.map diag_of_json ds
      | _ -> raise (Reject "refused response without a \"diags\" array")
    in
    Refused
      { status = int_field_min ~min:0 "status" j;
        retry_after_ms = opt_int_field ~min:0 "retry_after_ms" j; diags }
  | "stats" ->
    let f name = int_field_min ~min:0 name j in
    let tier prefix =
      { hits = f (prefix ^ "_hits"); misses = f (prefix ^ "_misses");
        evictions = f (prefix ^ "_evictions");
        entries = f (prefix ^ "_entries");
        capacity = f (prefix ^ "_capacity") }
    in
    Stats_reply
      { requests = f "requests"; campaigns = f "campaigns";
        drained = f "drained"; refused = f "refused"; active = f "active";
        queued = f "queued"; restarts = f "restarts";
        crashes = f "crashes"; quarantined = f "quarantined";
        auth_failures = f "auth_failures";
        model = tier "model"; plan = tier "plan"; golden = tier "golden" }
  | "bye" -> Bye
  | r -> raise (Reject (Printf.sprintf "unknown response kind %S" r))

let decode of_json ?(limits = Diag.Limits.default) line =
  match Json.parse ~max_depth:limits.Diag.Limits.max_nesting line with
  | exception Bad msg ->
    Error [ Diag.error ~rule:"serve.frame" "bad frame: %s" msg ]
  | j ->
    (match of_json j with
     | v -> Ok v
     | exception Bad msg ->
       Error [ Diag.error ~rule:"serve.frame" "bad frame: %s" msg ]
     | exception Reject msg ->
       Error [ Diag.error ~rule:"serve.request" "%s" msg ])

let decode_request ?limits line = decode request_of_json ?limits line
let decode_response ?limits line = decode response_of_json ?limits line
