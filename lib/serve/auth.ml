(* Per-connection challenge/response authentication for the TCP
   transport.  The server sends a fresh nonce in its [Hello] frame;
   the client answers with HMAC(secret, nonce); the server verifies in
   constant time.  The secret itself never crosses the wire, and a
   sniffed response is useless against any other nonce.

   The MAC is HMAC over the stdlib's Digest (MD5) — the only hash the
   toolchain ships.  That is an integrity/identity gate against
   misconfigured or unauthorized clients, the threat model of a
   private campaign fleet; it is not a defence against an active
   on-path attacker (use a tunnel for hostile networks —
   docs/SERVICE.md "Multi-host deployment"). *)

let block_size = 64

let hmac ~secret msg =
  let key =
    if String.length secret > block_size then Digest.string secret
    else secret
  in
  let key = key ^ String.make (block_size - String.length key) '\000' in
  let xored c = String.map (fun k -> Char.chr (Char.code k lxor c)) key in
  Digest.to_hex
    (Digest.string (xored 0x5c ^ Digest.string (xored 0x36 ^ msg)))

(* Constant-time equality: a timing oracle over the MAC comparison
   would let an attacker grind out a valid response byte by byte. *)
let equal_macs a b =
  String.length a = String.length b
  && begin
    let diff = ref 0 in
    String.iteri
      (fun i c -> diff := !diff lor (Char.code c lxor Char.code b.[i]))
      a;
    !diff = 0
  end

let verify ~secret ~nonce ~mac = equal_macs (hmac ~secret nonce) mac

(* Nonce freshness: /dev/urandom when the platform has it, otherwise
   a digest over (time, pid, counter) — unpredictable enough to keep
   responses single-use, and never a blocking read. *)
let counter = Atomic.make 0

let urandom n =
  match Unix.openfile "/dev/urandom" [ Unix.O_RDONLY ] 0 with
  | fd ->
    let b = Bytes.create n in
    let got =
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          try Unix.read fd b 0 n with Unix.Unix_error (_, _, _) -> 0)
    in
    if got = n then Some (Bytes.to_string b) else None
  | exception Unix.Unix_error (_, _, _) -> None

let fresh_nonce () =
  let entropy =
    match urandom 16 with
    | Some bytes -> bytes
    | None ->
      Digest.string
        (Printf.sprintf "%.9f|%d|%d"
           (Unix.gettimeofday ())
           (Unix.getpid ())
           (Atomic.fetch_and_add counter 1))
  in
  Digest.to_hex (Digest.string entropy)

(* The secret file: first line, surrounding whitespace stripped —
   `echo $SECRET > file` and a trailing-newline-free file provision
   the same key.  Unreadable or empty files are configuration errors
   reported to the operator, never a silently-open daemon. *)
let load_secret path =
  match open_in_bin path with
  | exception Sys_error e -> Error (Printf.sprintf "cannot read secret: %s" e)
  | ic ->
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let stop =
      match String.index_opt text '\n' with
      | Some i -> i
      | None -> String.length text
    in
    let secret = String.trim (String.sub text 0 stop) in
    if secret = "" then
      Error (Printf.sprintf "secret file %s is empty" path)
    else Ok secret
